package vqf

import (
	"bytes"
	"strconv"
	"testing"
)

func TestShardedFilterBasic(t *testing.T) {
	f := NewSharded(20000, 4, WithSeed(5))
	if f.NumShards() != 4 {
		t.Fatalf("got %d shards, want 4", f.NumShards())
	}
	if New(100).NumShards() != 1 {
		t.Fatal("unsharded filter should report 1 shard")
	}
	for i := 0; i < 10000; i++ {
		if err := f.AddString("key-" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		if !f.ContainsString("key-" + strconv.Itoa(i)) {
			t.Fatal("false negative")
		}
	}
	if f.Count() != 10000 {
		t.Fatalf("count %d", f.Count())
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.ContainsString("other-" + strconv.Itoa(i)) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 3*f.FalsePositiveRate() {
		t.Fatalf("false-positive rate %g far above analytic %g", rate, f.FalsePositiveRate())
	}
	if !f.RemoveString("key-0") {
		t.Fatal("remove failed")
	}
	// The 16-bit geometry shards too.
	g := NewSharded(5000, 8, WithFalsePositiveRate(1.0/65536))
	if g.NumShards() != 8 {
		t.Fatalf("16-bit sharded: got %d shards", g.NumShards())
	}
	for i := 0; i < 2000; i++ {
		if err := g.AddUint64(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if !g.ContainsUint64(uint64(i)) {
			t.Fatal("16-bit sharded false negative")
		}
	}
}

func TestFilterHashBatch(t *testing.T) {
	for name, mk := range map[string]func() *Filter{
		"sequential": func() *Filter { return New(8000) },
		"concurrent": func() *Filter { return NewConcurrent(8000) },
		"sharded":    func() *Filter { return NewSharded(8000, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			f := mk()
			hs := make([]uint64, 4000)
			rng := uint64(0x9e3779b97f4a7c15)
			for i := range hs {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				hs[i] = rng
			}
			if n := f.AddHashBatch(hs); n != len(hs) {
				t.Fatalf("AddHashBatch inserted %d of %d at low load", n, len(hs))
			}
			out := f.ContainsHashBatch(hs, nil)
			for i := range out {
				if !out[i] {
					t.Fatalf("batch false negative at %d", i)
				}
			}
			if n := f.RemoveHashBatch(hs); n != len(hs) {
				t.Fatalf("RemoveHashBatch removed %d of %d", n, len(hs))
			}
			if f.Count() != 0 {
				t.Fatalf("count %d after removing everything", f.Count())
			}
		})
	}
}

func TestShardedSerializePublic(t *testing.T) {
	f := NewSharded(10000, 4, WithSeed(99))
	for i := 0; i < 6000; i++ {
		if err := f.AddString("key-" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumShards() != 4 || g.Count() != f.Count() {
		t.Fatalf("shape after round trip: %d shards, %d keys", g.NumShards(), g.Count())
	}
	for i := 0; i < 6000; i++ {
		if !g.ContainsString("key-" + strconv.Itoa(i)) {
			t.Fatal("false negative after sharded public round trip")
		}
	}
	if !g.RemoveString("key-1") {
		t.Fatal("remove failed after round trip")
	}
}

// TestConcurrentSerializePublic covers the newly serializable concurrent
// variant and the cross-variant loads: concurrent streams into sequential
// filters and back.
func TestConcurrentSerializePublic(t *testing.T) {
	f := NewConcurrent(10000, WithSeed(3))
	for i := 0; i < 5000; i++ {
		if err := f.AddString("key-" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte{}, buf.Bytes()...)

	g, err := Read(bytes.NewReader(raw)) // loads as sequential
	if err != nil {
		t.Fatal(err)
	}
	h, err := ReadConcurrent(bytes.NewReader(raw)) // loads as concurrent
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		k := "key-" + strconv.Itoa(i)
		if !g.ContainsString(k) || !h.ContainsString(k) {
			t.Fatal("false negative after concurrent round trip")
		}
	}
	// Sequential stream loads concurrent, too.
	seq := New(1000, WithSeed(4))
	for i := 0; i < 500; i++ {
		seq.AddUint64(uint64(i))
	}
	buf.Reset()
	if _, err := seq.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cf, err := ReadConcurrent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if !cf.ContainsUint64(uint64(i)) {
			t.Fatal("false negative loading sequential stream as concurrent")
		}
	}
}

func TestShardedElasticBasic(t *testing.T) {
	e := NewShardedElastic(4, WithSeed(8), WithFalsePositiveRate(0.01), WithInitialCapacity(1024))
	if e.NumShards() != 4 {
		t.Fatalf("got %d shards, want 4", e.NumShards())
	}
	if NewElastic().NumShards() != 1 {
		t.Fatal("unsharded elastic should report 1 shard")
	}
	const n = 50000
	for i := 0; i < n; i++ {
		if err := e.AddUint64(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if !e.ContainsUint64(uint64(i)) {
			t.Fatal("false negative after elastic sharded growth")
		}
	}
	if e.Count() != n {
		t.Fatalf("count %d != %d", e.Count(), n)
	}
	if e.Levels() < 2 {
		t.Fatalf("expected growth, got %d levels", e.Levels())
	}
	fp := 0
	for i := 0; i < n; i++ {
		if e.ContainsUint64(uint64(n + i)) {
			fp++
		}
	}
	if rate := float64(fp) / n; rate > 0.02 {
		t.Fatalf("false-positive rate %g above 2x the 0.01 budget", rate)
	}
}
