package vqf

import (
	"vqf/internal/core"
	"vqf/internal/hashing"
	"vqf/internal/minifilter"
	"vqf/internal/stats"
)

// Map is a value-associating vector quotient filter: an approximate map from
// keys to one-byte values (paper §8). It has the same space and cache
// profile as Filter plus one byte per slot. Lookups of keys never stored
// miss with probability ≥ 1−ε; on the ε chance of a fingerprint collision,
// Get returns the colliding key's value.
//
// Applications use the value byte for shard IDs, level numbers, small
// counters, or flags riding along with membership (as the paper's storage
// references do with the CQF's value bits).
type Map struct {
	impl *core.KVFilter8
	seed uint64
}

// NewMap returns a Map sized to hold n keys at ≈90% of capacity.
func NewMap(n uint64, opts ...Option) *Map {
	c, err := buildConfig(opts)
	if err != nil {
		panic(err)
	}
	slots := uint64(float64(n)/c.sizingLoad) + 1
	return &Map{impl: core.NewKV8(slots), seed: c.seed}
}

// Put stores key with value v. It returns ErrFull if both candidate blocks
// are full.
func (m *Map) Put(key []byte, v byte) error { return m.PutHash(hashing.HashBytes(key, m.seed), v) }

// PutString stores a string key with value v.
func (m *Map) PutString(key string, v byte) error {
	return m.PutHash(hashing.HashString(key, m.seed), v)
}

// PutHash stores a pre-hashed key with value v.
func (m *Map) PutHash(h uint64, v byte) error {
	if !m.impl.Put(h, v) {
		return ErrFull
	}
	return nil
}

// Get returns the value stored for key; ok is false if the key's fingerprint
// is absent.
func (m *Map) Get(key []byte) (byte, bool) { return m.impl.Get(hashing.HashBytes(key, m.seed)) }

// GetString looks up a string key.
func (m *Map) GetString(key string) (byte, bool) {
	return m.impl.Get(hashing.HashString(key, m.seed))
}

// GetHash looks up a pre-hashed key.
func (m *Map) GetHash(h uint64) (byte, bool) { return m.impl.Get(h) }

// Update changes the value of a stored key, returning false if absent.
func (m *Map) Update(key []byte, v byte) bool {
	return m.impl.Update(hashing.HashBytes(key, m.seed), v)
}

// UpdateString changes the value of a stored string key.
func (m *Map) UpdateString(key string, v byte) bool {
	return m.impl.Update(hashing.HashString(key, m.seed), v)
}

// UpdateHash changes the value of a stored pre-hashed key.
func (m *Map) UpdateHash(h uint64, v byte) bool { return m.impl.Update(h, v) }

// Delete removes one stored instance of key, returning false if absent.
func (m *Map) Delete(key []byte) bool { return m.impl.Delete(hashing.HashBytes(key, m.seed)) }

// DeleteHash removes one stored instance of a pre-hashed key.
func (m *Map) DeleteHash(h uint64) bool { return m.impl.Delete(h) }

// Count returns the number of stored key/value pairs.
func (m *Map) Count() uint64 { return m.impl.Count() }

// Capacity returns the total number of slots.
func (m *Map) Capacity() uint64 { return m.impl.Capacity() }

// LoadFactor returns Count divided by Capacity.
func (m *Map) LoadFactor() float64 { return m.impl.LoadFactor() }

// SizeBytes returns the Map's memory footprint.
func (m *Map) SizeBytes() uint64 { return m.impl.SizeBytes() }

// mapFPR is the Map's analytic false-positive rate at full load: the 8-bit
// geometry's 2·(s/b)·2⁻⁸ (the Map always uses 8-bit fingerprints).
const mapFPR = 2.0 * float64(minifilter.B8Slots) / float64(minifilter.B8Buckets) / 256

// FalsePositiveRate returns the Map's analytic false-positive rate at full
// load; see Filter.FalsePositiveRate.
func (m *Map) FalsePositiveRate() float64 { return mapFPR }

// Stats returns the Map's cumulative operation counters: Puts count as
// inserts, Gets and Updates as lookups, Deletes as removes. Like every other
// Map method, it must not race with mutations.
func (m *Map) Stats() OpStats { return m.impl.Stats() }

// Snapshot returns a full structural snapshot of the Map; see
// Filter.Snapshot.
func (m *Map) Snapshot() Snapshot {
	return stats.BuildSnapshot(
		m.impl.Count(), m.impl.Capacity(), m.impl.SizeBytes(), mapFPR,
		m.impl.BlockOccupancies(), m.impl.SlotsPerBlock(), m.impl.Stats())
}
