package vqf

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestElasticFPRBudgetAcrossGrowth is the headline elastic guarantee: after
// several growth events the empirical false-positive rate over a million-plus
// never-added keys must still sit under the configured budget ε.
func TestElasticFPRBudgetAcrossGrowth(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"default-eps", []Option{WithInitialCapacity(8192)}},
		{"loose-eps-8bit-start", []Option{WithInitialCapacity(8192), WithFalsePositiveRate(0.01)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := NewElastic(tc.opts...)
			eps := f.FalsePositiveRate()
			const inserts = 120_000 // ≈ 15× the initial capacity
			for i := uint64(0); i < inserts; i++ {
				if err := f.AddUint64(i); err != nil {
					t.Fatal(err)
				}
			}
			if f.Levels() < 4 {
				t.Fatalf("want ≥4 levels (≥3 growth events), got %d", f.Levels())
			}
			const probes = 1_200_000
			fps := 0
			for i := uint64(0); i < probes; i++ {
				if f.ContainsUint64(1<<40 + i) { // disjoint from the inserted range
					fps++
				}
			}
			measured := float64(fps) / probes
			t.Logf("levels=%d measured FPR=%.6f budget=%.6f estimate=%.6f",
				f.Levels(), measured, eps, f.Snapshot().FPREstimate)
			if measured > eps {
				t.Fatalf("measured FPR %.6f exceeds budget %.6f after %d growths",
					measured, eps, f.Levels()-1)
			}
			// No false negatives, ever.
			for i := uint64(0); i < inserts; i += 97 {
				if !f.ContainsUint64(i) {
					t.Fatal("false negative")
				}
			}
		})
	}
}

// TestElasticConcurrentContainsDuringGrowth races lock-free lookups against
// a grower adding levels (run with -race for the acceptance check).
func TestElasticConcurrentContainsDuringGrowth(t *testing.T) {
	f := NewConcurrentElastic(WithInitialCapacity(1024))
	for i := uint64(0); i < 800; i++ {
		f.AddUint64(i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(off uint64) {
			defer wg.Done()
			for n := uint64(0); !stop.Load(); n++ {
				if !f.ContainsUint64(n % 800) {
					t.Error("false negative during growth")
					return
				}
				f.ContainsUint64(1<<50 + off + n)
			}
		}(uint64(r) << 32)
	}
	start := f.Levels()
	for i := uint64(1000); f.Levels() < start+3; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Error(err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestElasticSerializeRoundTrip(t *testing.T) {
	f := NewElastic(WithInitialCapacity(1024), WithSeed(99))
	for i := 0; i < 10_000; i++ {
		if err := f.AddString("elastic-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadElastic(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.Levels() != f.Levels() || g.Count() != f.Count() {
		t.Fatalf("round trip: levels %d/%d count %d/%d", g.Levels(), f.Levels(), g.Count(), f.Count())
	}
	if g.FalsePositiveRate() != f.FalsePositiveRate() {
		t.Fatal("FPR budget lost in round trip")
	}
	for i := 0; i < 10_000; i++ {
		if !g.ContainsString("elastic-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))) {
			t.Fatal("false negative after round trip")
		}
	}
}

func TestElasticConcurrentSerializationUnsupported(t *testing.T) {
	f := NewConcurrentElastic()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err == nil {
		t.Error("concurrent elastic serialization should fail")
	}
}

// TestEnvelopeKindMismatch checks that each reader names the right decoder
// when handed another type's stream.
func TestEnvelopeKindMismatch(t *testing.T) {
	var filterBuf, elasticBuf, mapBuf bytes.Buffer
	pf := New(100)
	pf.AddString("x")
	pf.WriteTo(&filterBuf)
	ef := NewElastic()
	ef.AddString("x")
	ef.WriteTo(&elasticBuf)
	m := NewMap(100)
	m.PutString("x", 1)
	m.WriteTo(&mapBuf)

	if _, err := Read(bytes.NewReader(elasticBuf.Bytes())); err == nil || !strings.Contains(err.Error(), "ReadElastic") {
		t.Errorf("Read of elastic stream: %v", err)
	}
	if _, err := ReadElastic(bytes.NewReader(mapBuf.Bytes())); err == nil || !strings.Contains(err.Error(), "NewMapFromReader") {
		t.Errorf("ReadElastic of map stream: %v", err)
	}
	if _, err := NewMapFromReader(bytes.NewReader(filterBuf.Bytes())); err == nil || !strings.Contains(err.Error(), "vqf.Read") {
		t.Errorf("NewMapFromReader of filter stream: %v", err)
	}
}

func TestElasticMetricsExport(t *testing.T) {
	f := NewElastic(WithInitialCapacity(1024))
	for i := uint64(0); i < 5000; i++ {
		f.AddUint64(i)
	}
	if f.Levels() < 2 {
		t.Fatalf("want ≥2 levels, got %d", f.Levels())
	}
	h := MetricsHandler(map[string]Source{"grow": f})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `vqf_items{filter="grow"} 5000`) {
		t.Errorf("aggregate item count missing:\n%s", body)
	}
	for i := 0; i < f.Levels(); i++ {
		if !strings.Contains(body, `vqf_load_factor{filter="grow.level`+string(rune('0'+i))+`"}`) {
			t.Errorf("per-level series for level %d missing", i)
		}
	}
	cs := f.CascadeSnapshot()
	if len(cs.Levels) != f.Levels() {
		t.Fatalf("cascade snapshot has %d levels, filter reports %d", len(cs.Levels), f.Levels())
	}
}

func TestElasticOptionValidation(t *testing.T) {
	for name, opts := range map[string][]Option{
		"bad-growth":  {WithGrowthFactor(1.01)},
		"bad-tighten": {WithTightenRatio(0.99)},
		"bad-thresh":  {WithGrowthThreshold(0.99)},
		"bad-fpr":     {WithFalsePositiveRate(0)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewElastic accepted invalid option", name)
				}
			}()
			NewElastic(opts...)
		}()
	}
}

func TestElasticRemovePublic(t *testing.T) {
	f := NewElastic(WithInitialCapacity(1024))
	for i := uint64(0); i < 4000; i++ {
		f.AddUint64(i)
	}
	for i := uint64(0); i < 4000; i++ {
		if !f.RemoveUint64(i) {
			t.Fatal("remove of added key failed")
		}
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after removing everything", f.Count())
	}
}
