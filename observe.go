package vqf

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// Latency and event observability. Filters sample a configurable 1-in-N
// slice of their single-key operations into log-bucketed latency
// histograms (batch calls are always timed — the clock read amortizes over
// the batch), and record rare structural events — elastic growth, seqlock
// fallbacks, sharded batch-pool stalls — into a bounded overwrite ring.
// Both are cheap enough to leave on in production: the sampling gate costs
// a couple of arithmetic ops per operation and the ring is written only on
// events that are already off the fast path.

// DefaultLatencySamplingRate is the 1-in-N sampling rate filters use when
// WithLatencySampling is not given.
const DefaultLatencySamplingRate = telemetry.DefaultSamplingRate

// WithLatencySampling sets the filter's latency sampling rate: one in rate
// single-key operations is timed (rate is rounded up to a power of two;
// 1 times every operation). A rate <= 0 disables latency recording
// entirely, reducing the per-operation cost to one nil check.
func WithLatencySampling(rate int) Option {
	return func(c *config) {
		c.latencyRate = rate
		c.latencySet = true
	}
}

// LatencySummary is a quantile digest of one operation's sampled latency
// histogram: observation count, mean, and p50/p90/p99/p999 in nanoseconds.
// Quantiles are bucket upper bounds of a histogram with 8 buckets per
// octave, so they carry at most ~12% relative bucketing error.
type LatencySummary = telemetry.Summary

// LatencySnapshot is a point-in-time reading of every per-operation
// latency histogram of one filter. Operations that never ran (or were
// never sampled) have zero-count summaries. Batch summaries describe
// per-key amortized latencies.
type LatencySnapshot struct {
	SamplingRate int            `json:"sampling_rate"`
	Insert       LatencySummary `json:"insert"`
	Lookup       LatencySummary `json:"lookup"`
	Remove       LatencySummary `json:"remove"`
	InsertBatch  LatencySummary `json:"insert_batch"`
	LookupBatch  LatencySummary `json:"lookup_batch"`
	RemoveBatch  LatencySummary `json:"remove_batch"`
}

func latencySnapshot(rec *telemetry.Recorder) LatencySnapshot {
	return LatencySnapshot{
		SamplingRate: rec.Rate(),
		Insert:       rec.Snapshot(telemetry.OpInsert).Summary(),
		Lookup:       rec.Snapshot(telemetry.OpLookup).Summary(),
		Remove:       rec.Snapshot(telemetry.OpRemove).Summary(),
		InsertBatch:  rec.Snapshot(telemetry.OpInsertBatch).Summary(),
		LookupBatch:  rec.Snapshot(telemetry.OpLookupBatch).Summary(),
		RemoveBatch:  rec.Snapshot(telemetry.OpRemoveBatch).Summary(),
	}
}

// Latency returns the filter's sampled latency snapshot. Safe at any time
// on concurrent filters. With sampling disabled every summary is empty and
// SamplingRate is 0.
func (f *Filter) Latency() LatencySnapshot { return latencySnapshot(f.rec) }

// Latency returns the elastic filter's sampled latency snapshot; see
// Filter.Latency.
func (e *Elastic) Latency() LatencySnapshot { return latencySnapshot(e.rec) }

// latencyOps pairs each recorder op with its exposition label.
var latencyOps = []struct {
	op    telemetry.Op
	label string
}{
	{telemetry.OpInsert, "insert"},
	{telemetry.OpLookup, "lookup"},
	{telemetry.OpRemove, "remove"},
	{telemetry.OpInsertBatch, "insert_batch"},
	{telemetry.OpLookupBatch, "lookup_batch"},
	{telemetry.OpRemoveBatch, "remove_batch"},
}

// latencySeries renders a recorder's non-empty histograms as exposition
// series for one named filter.
func latencySeries(name string, rec *telemetry.Recorder) []stats.LatencySeries {
	if rec == nil {
		return nil
	}
	var out []stats.LatencySeries
	for _, lo := range latencyOps {
		if snap := rec.Snapshot(lo.op); snap.Count > 0 {
			out = append(out, stats.LatencySeries{Filter: name, Op: lo.label, Hist: snap})
		}
	}
	return out
}

// latencySource is the internal surface MetricsHandler uses to pull full
// latency histograms (not just summaries) out of a Source.
type latencySource interface {
	latencyRecorder() *telemetry.Recorder
}

func (f *Filter) latencyRecorder() *telemetry.Recorder  { return f.rec }
func (e *Elastic) latencyRecorder() *telemetry.Recorder { return e.rec }

// Event is one rare structural event drained from a filter's event ring:
// elastic level growth (A=level, B=allocated slots, C=build ns), seqlock
// retry-exhaustion fallback (A=block, B=retries), sharded batch-pool claim
// stall (A=idle workers, B=pool size, C=batch keys), or an assembly-kernel
// dispatch decision on the global ring (A=asm enabled, B=fused probe,
// C=asm available).
type Event = telemetry.Event

// Events drains the filter's event ring, oldest first, without consuming:
// repeated calls return overlapping windows of the most recent events.
// Safe at any time on concurrent filters.
func (f *Filter) Events() []Event { return f.ring.Events() }

// Events drains the elastic filter's event ring; see Filter.Events. Growth
// events (kind "elastic_grow"/"elastic_swap") land here.
func (e *Elastic) Events() []Event { return e.ring.Events() }

// GlobalEvents drains the process-wide event ring, which carries events
// not tied to one filter instance — currently assembly-kernel dispatch
// decisions ("asm_dispatch").
func GlobalEvents() []Event { return telemetry.Global().Events() }

// EventSource is anything exposing an event ring: *Filter and *Elastic.
type EventSource interface {
	Events() []Event
}

// EventsHandler returns an http.Handler serving the sources' event rings
// as one JSON object mapping each name to its events (oldest first), plus
// a "global" entry with the process-wide ring. Mount it for incident
// debugging:
//
//	mux.Handle("/debug/vqf/events", vqf.EventsHandler(map[string]vqf.EventSource{
//		"cache": filter,
//	}))
func EventsHandler(sources map[string]EventSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string][]Event, len(sources)+1)
		for name, src := range sources {
			out[name] = src.Events()
		}
		out["global"] = GlobalEvents()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// ShardedSnapshot is the per-shard heat view of a sharded filter: the
// merged aggregate, one snapshot per shard, and the max/mean imbalance
// metric (1.0 = perfectly balanced; sustained higher values mean the
// workload's top hash bits are skewed).
type ShardedSnapshot = stats.ShardedSnapshot

// shardedSource is the internal surface MetricsHandler uses to detect
// sharded filters and pull their per-shard series.
type shardedSource interface {
	ShardedSnapshot() (ShardedSnapshot, bool)
}

// ShardedSnapshot returns the filter's per-shard snapshots and imbalance.
// ok is false for non-sharded filters (from New or NewConcurrent), whose
// heat view would be a single shard.
func (f *Filter) ShardedSnapshot() (ShardedSnapshot, bool) {
	s, ok := f.impl.(interface {
		ShardSnapshots(fprFullLoad float64) []stats.Snapshot
	})
	if !ok {
		return ShardedSnapshot{}, false
	}
	return stats.BuildShardedSnapshot(f.Snapshot(), s.ShardSnapshots(f.fpr)), true
}

// ShardedSnapshot returns the elastic filter's per-shard cascade
// aggregates and imbalance; ok is false unless built by NewShardedElastic.
func (e *Elastic) ShardedSnapshot() (ShardedSnapshot, bool) {
	s, ok := e.impl.(interface{ ShardSnapshots() []stats.Snapshot })
	if !ok {
		return ShardedSnapshot{}, false
	}
	return stats.BuildShardedSnapshot(e.Snapshot(), s.ShardSnapshots()), true
}

// appendShardSeries renders a sharded source's per-shard series: the same
// metric set as the aggregate with an extra shard="i" label, plus one
// vqf_shard_imbalance gauge sample.
func appendShardSeries(snaps []stats.NamedSnapshot, gauges []stats.NamedGauge, name string, ss ShardedSnapshot) ([]stats.NamedSnapshot, []stats.NamedGauge) {
	for i := range ss.Shards {
		snaps = append(snaps, stats.NamedSnapshot{
			Name: name, Shard: strconv.Itoa(i), Snap: ss.Shards[i]})
	}
	gauges = append(gauges, stats.NamedGauge{Name: name, Value: ss.Imbalance})
	return snaps, gauges
}

// compactCounters carries the compaction- and freeze-lifecycle counter
// samples for the cascades in one metrics collection pass.
type compactCounters struct {
	passes  []stats.NamedCounter
	levels  []stats.NamedCounter
	freezes []stats.NamedCounter
	frozen  []stats.NamedCounter
	thaws   []stats.NamedCounter
}

// collectMetrics assembles the exposition series for a sorted name list:
// per-filter snapshots (with per-level series for cascades and per-shard
// series for sharded filters), imbalance gauges, compaction counters, and
// latency histograms.
func collectMetrics(names []string, sources map[string]Source) (snaps []stats.NamedSnapshot, gauges []stats.NamedGauge, compact compactCounters, lat []stats.LatencySeries) {
	for _, name := range names {
		src := sources[name]
		switch {
		case isCascade(src):
			cascade := src.(cascadeSource).CascadeSnapshot()
			snaps = append(snaps, stats.NamedSnapshot{Name: name, Snap: cascade.Aggregate})
			for i, lvl := range cascade.Levels {
				snaps = append(snaps, stats.NamedSnapshot{
					Name: name + ".level" + strconv.Itoa(i), Snap: lvl})
			}
			compact.passes = append(compact.passes,
				stats.NamedCounter{Name: name, Value: cascade.Compactions})
			compact.levels = append(compact.levels,
				stats.NamedCounter{Name: name, Value: cascade.CompactionLevelsMerged})
			compact.freezes = append(compact.freezes,
				stats.NamedCounter{Name: name, Value: cascade.Freezes})
			compact.frozen = append(compact.frozen,
				stats.NamedCounter{Name: name, Value: cascade.FreezeLevelsFrozen})
			compact.thaws = append(compact.thaws,
				stats.NamedCounter{Name: name, Value: cascade.Thaws})
		default:
			snaps = append(snaps, stats.NamedSnapshot{Name: name, Snap: src.Snapshot()})
		}
		if sh, ok := src.(shardedSource); ok {
			if ss, sharded := sh.ShardedSnapshot(); sharded {
				snaps, gauges = appendShardSeries(snaps, gauges, name, ss)
			}
		}
		if ls, ok := src.(latencySource); ok {
			lat = append(lat, latencySeries(name, ls.latencyRecorder())...)
		}
	}
	return snaps, gauges, compact, lat
}

func isCascade(src Source) bool {
	_, ok := src.(cascadeSource)
	return ok
}

// sortedNames returns the sources' names in stable exposition order.
func sortedNames(sources map[string]Source) []string {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
