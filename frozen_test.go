package vqf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"
)

func frozenTestKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("frozen-key-%d", i))
	}
	return keys
}

// TestFrozenMembershipAndFPR is the standalone frozen filter's contract: no
// false negatives ever, and a measured false-positive rate within the
// analytic width guarantee at both fingerprint widths.
func TestFrozenMembershipAndFPR(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"width-8", nil},
		{"width-16", []Option{WithFalsePositiveRate(1.0 / 65536)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keys := frozenTestKeys(50_000)
			f, err := NewFrozen(keys, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if f.Count() != uint64(len(keys)) {
				t.Fatalf("Count = %d, want %d", f.Count(), len(keys))
			}
			for _, k := range keys {
				if !f.Contains(k) {
					t.Fatalf("false negative for %q", k)
				}
			}
			const probes = 400_000
			fps := 0
			for i := 0; i < probes; i++ {
				if f.ContainsString(fmt.Sprintf("absent-key-%d", i)) {
					fps++
				}
			}
			// 4× the analytic rate plus a fixed allowance keeps binomial
			// noise out of the verdict while still catching broken hashing.
			limit := 4*f.FalsePositiveRate()*probes + 10
			if float64(fps) > limit {
				t.Fatalf("%d false positives over %d probes exceeds limit %.0f (ε=%g)",
					fps, probes, limit, f.FalsePositiveRate())
			}
			if bpi := f.BitsPerItem(); bpi <= 0 || bpi > 2*float64(16+2) {
				t.Fatalf("implausible bits/item %.2f", bpi)
			}
		})
	}
}

// TestFrozenDuplicatesCollapse: duplicate build keys count once and stay
// members.
func TestFrozenDuplicatesCollapse(t *testing.T) {
	keys := frozenTestKeys(1000)
	dup := append(append([][]byte{}, keys...), keys[:500]...)
	f, err := NewFrozen(dup)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("Count = %d after duplicate collapse, want %d", f.Count(), len(keys))
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatal("false negative after duplicate collapse")
		}
	}
}

// TestFrozenRejectsUnrealizableFPR: no fingerprint width realizes rates
// below 2⁻¹⁶.
func TestFrozenRejectsUnrealizableFPR(t *testing.T) {
	if _, err := NewFrozen(frozenTestKeys(10), WithFalsePositiveRate(1.0/(1<<17))); err == nil {
		t.Fatal("want error for FPR below 2^-16")
	}
}

// TestFrozenSerializeRoundTrip: WriteTo/ReadFrozen reproduce membership
// bit-exactly (the seed travels with the stream), batch lookups agree with
// single lookups, and the envelope kind routes a mismatched reader to a
// useful error.
func TestFrozenSerializeRoundTrip(t *testing.T) {
	keys := frozenTestKeys(20_000)
	f, err := NewFrozen(keys, WithSeed(12345))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrozen(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() || g.FalsePositiveRate() != f.FalsePositiveRate() {
		t.Fatalf("reload mismatch: count %d/%d fpr %g/%g",
			g.Count(), f.Count(), g.FalsePositiveRate(), f.FalsePositiveRate())
	}
	hs := make([]uint64, 0, 41_000)
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatal("reload lost a key")
		}
	}
	// Membership must agree probe-for-probe, false positives included.
	for i := 0; i < 41_000; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i)*0x9e3779b97f4a7c15)
		if f.Contains(b[:]) != g.Contains(b[:]) {
			t.Fatal("reload answers differently from original")
		}
		hs = append(hs, uint64(i)*0x9e3779b97f4a7c15)
	}
	got := g.ContainsHashBatch(hs, nil)
	for i, h := range hs {
		if got[i] != g.ContainsHash(h) {
			t.Fatal("batch lookup disagrees with single lookup")
		}
	}

	// A frozen stream handed to the wrong reader names the right one.
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "ReadFrozen") {
		t.Fatalf("want kind mismatch naming ReadFrozen, got %v", err)
	}
}

// TestElasticFreezeFacade drives the public freeze surface end to end:
// churn an elastic filter, FreezeNow, and check the result plus continued
// service; WithAutoFreeze must freeze without an explicit call.
func TestElasticFreezeFacade(t *testing.T) {
	e := NewElastic(WithInitialCapacity(512))
	const n = 30_000
	for i := uint64(0); i < n; i++ {
		if err := e.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n*3/4; i++ {
		if i%16 == 0 {
			continue
		}
		if !e.RemoveUint64(i) {
			t.Fatal("remove of live key failed")
		}
	}
	before := e.SizeBytes()
	fr := e.FreezeNow()
	if fr.LevelsFrozen == 0 || fr.FuseLevels == 0 {
		t.Fatalf("expected a freeze on the churned cascade, got %+v", fr)
	}
	if e.SizeBytes() >= before {
		t.Fatalf("freeze did not shrink the cascade: %d -> %d bytes", before, e.SizeBytes())
	}
	for i := uint64(0); i < n*3/4; i += 16 {
		if !e.ContainsUint64(i) {
			t.Fatal("freeze lost a long-lived key")
		}
	}
	for i := uint64(n * 3 / 4); i < n; i++ {
		if !e.ContainsUint64(i) {
			t.Fatal("freeze lost a recent key")
		}
	}
	// The frozen tier keeps serving writes: inserts land in the live level,
	// removes of frozen keys tombstone exactly once.
	if err := e.AddUint64(1 << 50); err != nil {
		t.Fatal(err)
	}
	if !e.ContainsUint64(1 << 50) {
		t.Fatal("insert after freeze not visible")
	}
	if !e.RemoveUint64(0) {
		t.Fatal("remove of frozen key failed")
	}
	if e.RemoveUint64(0) {
		t.Fatal("second remove of the same frozen instance succeeded")
	}

	auto := NewElastic(WithInitialCapacity(512), WithAutoFreeze(0, 1), WithFalsePositiveRate(1.0/256))
	for i := uint64(0); i < n; i++ {
		if err := auto.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	if auto.CascadeSnapshot().Freezes == 0 {
		t.Fatal("auto-freeze never fired across growths")
	}
	for i := uint64(0); i < n; i += 101 {
		if !auto.ContainsUint64(i) {
			t.Fatal("auto-freeze lost a key")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("want panic for negative freeze min age")
			}
		}()
		NewElastic(WithAutoFreeze(-time.Second, 0.5))
	}()
}
