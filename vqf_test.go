package vqf

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

func TestFilterBasicRoundTrip(t *testing.T) {
	f := New(1000)
	keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), {}, {0}}
	for _, k := range keys {
		if err := f.Add(k); err != nil {
			t.Fatalf("Add(%q): %v", k, err)
		}
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("Contains(%q) = false after Add", k)
		}
	}
	if f.Contains([]byte("delta")) {
		t.Log("note: 'delta' is a false positive (allowed, p≈0.004)")
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("Count = %d, want %d", f.Count(), len(keys))
	}
	for _, k := range keys {
		if !f.Remove(k) {
			t.Fatalf("Remove(%q) = false", k)
		}
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d after removing all", f.Count())
	}
}

func TestFilterKeyKindsAgree(t *testing.T) {
	f := New(1000)
	if err := f.AddString("hello"); err != nil {
		t.Fatal(err)
	}
	// A []byte with identical content must be found.
	if !f.Contains([]byte("hello")) {
		t.Error("bytes key does not find string-added key")
	}
	if !f.ContainsString("hello") {
		t.Error("string lookup failed")
	}
	if !f.RemoveString("hello") {
		t.Error("string remove failed")
	}

	if err := f.AddUint64(12345); err != nil {
		t.Fatal(err)
	}
	if !f.ContainsUint64(12345) {
		t.Error("uint64 lookup failed")
	}
	if f.ContainsUint64(12346) {
		t.Log("note: 12346 is a false positive (allowed)")
	}
}

func TestFilterHashInterface(t *testing.T) {
	f := New(1000)
	const h = 0xfeedface12345678
	if err := f.AddHash(h); err != nil {
		t.Fatal(err)
	}
	if !f.ContainsHash(h) {
		t.Fatal("ContainsHash false after AddHash")
	}
	if !f.RemoveHash(h) {
		t.Fatal("RemoveHash failed")
	}
}

func TestFilterSeedsDisagree(t *testing.T) {
	a := New(10000, WithSeed(1))
	b := New(10000, WithSeed(2))
	for i := 0; i < 1000; i++ {
		a.AddString(strconv.Itoa(i))
	}
	// Filter b shares no keys; its hit rate on a's keys should be ≈ ε, i.e.
	// almost always zero out of 1000.
	hits := 0
	for i := 0; i < 1000; i++ {
		if b.ContainsString(strconv.Itoa(i)) {
			hits++
		}
	}
	if hits > 50 {
		t.Errorf("filter with different seed hit %d/1000 keys", hits)
	}
}

func TestFilterCapacityHoldsN(t *testing.T) {
	const n = 100000
	f := New(n)
	for i := 0; i < n; i++ {
		if err := f.AddUint64(uint64(i)); err != nil {
			t.Fatalf("Add failed at item %d (sizing should guarantee n fit)", i)
		}
	}
	for i := 0; i < n; i++ {
		if !f.ContainsUint64(uint64(i)) {
			t.Fatalf("false negative at %d", i)
		}
	}
}

func TestFilterLowFPRGeometry(t *testing.T) {
	f8 := New(1000)
	f16 := New(1000, WithFalsePositiveRate(1.0/65536))
	if f8.FalsePositiveRate() <= f16.FalsePositiveRate() {
		t.Errorf("8-bit fpr %g should exceed 16-bit fpr %g",
			f8.FalsePositiveRate(), f16.FalsePositiveRate())
	}
	// The 16-bit geometry must empirically deliver a much lower FPR.
	for i := 0; i < 1000; i++ {
		f16.AddUint64(uint64(i))
	}
	fp := 0
	for i := 1000; i < 101000; i++ {
		if f16.ContainsUint64(uint64(i)) {
			fp++
		}
	}
	if fp > 10 {
		t.Errorf("16-bit filter had %d/100000 false positives", fp)
	}
}

func TestFilterEmpiricalFPRWithinBound(t *testing.T) {
	const n = 50000
	f := New(n)
	for i := 0; i < n; i++ {
		f.AddUint64(uint64(i))
	}
	fp := 0
	const probes = 200000
	for i := n; i < n+probes; i++ {
		if f.ContainsUint64(uint64(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > f.FalsePositiveRate()*1.5 {
		t.Errorf("empirical FPR %.5f exceeds analytic %.5f", rate, f.FalsePositiveRate())
	}
}

func TestFilterInvalidOptionsPanic(t *testing.T) {
	for name, opts := range map[string][]Option{
		"fpr-too-low":   {WithFalsePositiveRate(1.0 / (1 << 20))},
		"load-too-high": {WithSizingLoadFactor(0.99)},
		"load-zero":     {WithSizingLoadFactor(0)},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(100, opts...)
		})
	}
}

func TestFilterErrFull(t *testing.T) {
	f := New(100) // tiny filter: capacity 2 blocks = 96+ slots
	var err error
	for i := 0; i < 100000 && err == nil; i++ {
		err = f.AddUint64(uint64(i))
	}
	if err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if f.LoadFactor() < 0.80 {
		t.Errorf("filter reported full at load factor %.3f", f.LoadFactor())
	}
}

func TestConcurrentFilter(t *testing.T) {
	f := NewConcurrent(100000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := f.AddString(key); err != nil {
					t.Errorf("AddString: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Count() != 80000 {
		t.Fatalf("Count = %d, want 80000", f.Count())
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 20000; i += 97 {
			if !f.ContainsString(fmt.Sprintf("w%d-%d", w, i)) {
				t.Fatal("false negative after concurrent adds")
			}
		}
	}
}

func TestConcurrentFilter16(t *testing.T) {
	f := NewConcurrent(10000, WithFalsePositiveRate(1.0/65536))
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				f.AddUint64(uint64(w*100000 + i))
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 2; w++ {
		for i := 0; i < 4000; i += 13 {
			if !f.ContainsUint64(uint64(w*100000 + i)) {
				t.Fatal("false negative")
			}
		}
	}
}

func TestWithoutShortcutStillCorrect(t *testing.T) {
	f := New(10000, WithoutShortcut())
	for i := 0; i < 10000; i++ {
		if err := f.AddUint64(uint64(i)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	for i := 0; i < 10000; i++ {
		if !f.ContainsUint64(uint64(i)) {
			t.Fatal("false negative")
		}
	}
}

func ExampleFilter() {
	f := New(1000)
	f.Add([]byte("needle"))
	fmt.Println(f.Contains([]byte("needle")))
	fmt.Println(f.Count())
	// Output:
	// true
	// 1
}

func BenchmarkFilterAddString(b *testing.B) {
	f := New(uint64(b.N) + 1000)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = "user:" + strconv.Itoa(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddString(keys[i&4095])
	}
}

func BenchmarkFilterContainsHash(b *testing.B) {
	f := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<19; i++ {
		f.AddHash(rng.Uint64())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.ContainsHash(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}
