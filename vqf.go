// Package vqf is a pure-Go implementation of the vector quotient filter, the
// approximate-membership data structure of Pandey, Conway, Durie, Bender,
// Farach-Colton and Johnson, "Vector Quotient Filters: Overcoming the
// Time/Space Trade-Off in Filter Design" (SIGMOD 2021).
//
// A filter for n items with false-positive rate ε uses roughly
// (log₂(1/ε)+2.914)/0.93 bits per item and answers membership queries with no
// false negatives. Unlike Bloom, cuckoo and classic quotient filters, its
// insertion throughput stays flat from empty to ≈93% full: items are placed
// in the emptier of two cache-line-sized blocks and never relocated.
//
// Basic usage:
//
//	f := vqf.New(1_000_000)
//	f.Add([]byte("alpha"))
//	f.Contains([]byte("alpha")) // true
//	f.Contains([]byte("beta"))  // false (w.p. ≥ 1−ε)
//	f.Remove([]byte("alpha"))
//
// Keys may also be supplied as strings, uint64s, or pre-hashed 64-bit values
// (AddHash and friends), which skips the internal hashing step entirely.
// NewConcurrent returns a filter safe for concurrent use by any number of
// goroutines.
package vqf

import (
	"errors"
	"fmt"
	"time"

	"vqf/internal/core"
	"vqf/internal/hashing"
	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// ErrFull is returned by Add when both candidate blocks for the key are full.
// With default sizing this does not happen with high probability until the
// filter holds ≈ 93% of Capacity items.
var ErrFull = errors.New("vqf: filter is full")

// hashedFilter is the common surface of the four core filter variants.
type hashedFilter interface {
	Insert(h uint64) bool
	Contains(h uint64) bool
	Remove(h uint64) bool
	Count() uint64
	Capacity() uint64
	SizeBytes() uint64
	Stats() stats.OpCounts
	BlockOccupancies() []uint
	SlotsPerBlock() uint
}

// Filter is a vector quotient filter. The zero value is not usable; create
// filters with New or NewConcurrent.
type Filter struct {
	impl hashedFilter
	seed uint64
	fpr  float64
	rec  *telemetry.Recorder
	ring *telemetry.Ring
}

type config struct {
	fpr         float64
	seed        uint64
	noShortcut  bool
	sizingLoad  float64
	latencyRate int
	latencySet  bool

	// Elastic-only knobs (see NewElastic); ignored by New/NewConcurrent.
	initialCap       uint64
	growthFactor     float64
	tightenRatio     float64
	growThreshold    float64
	compactMinLevels int
	compactMaxLoad   float64
	autoFreeze       bool
	freezeMinAge     time.Duration
	freezeMaxLoad    float64
}

// Option configures New and NewConcurrent.
type Option func(*config)

// WithFalsePositiveRate selects the filter geometry by target false-positive
// rate. The paper's prototype supports two rates: requests the 8-bit
// geometry can meet (fpr ≥ 2·(48/80)·2⁻⁸ ≈ 0.0047) use 8-bit fingerprints;
// tighter requests use 16-bit fingerprints (ε ≈ 0.000024). Rates below 2⁻¹⁷
// cannot be met by either geometry and are rejected.
func WithFalsePositiveRate(fpr float64) Option {
	return func(c *config) { c.fpr = fpr }
}

// WithSeed sets the hash seed used for []byte/string/uint64 keys. Filters
// must use identical seeds to answer queries for keys added through another
// filter instance.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithoutShortcut disables the single-block insertion shortcut (paper §6.2).
// Inserts become slightly slower at low occupancy but the maximum load factor
// rises from ≈ 93.5% to ≈ 94.4%.
func WithoutShortcut() Option {
	return func(c *config) { c.noShortcut = true }
}

// WithInitialCapacity sets the item count an elastic filter's first level
// is provisioned for; each growth multiplies capacity by the growth factor.
// Only NewElastic and NewConcurrentElastic use it. The default is 4096.
func WithInitialCapacity(n uint64) Option {
	return func(c *config) { c.initialCap = n }
}

// WithGrowthFactor sets the capacity ratio between consecutive levels of an
// elastic filter (default 2; valid range [1.5, 16]). Only NewElastic and
// NewConcurrentElastic use it.
func WithGrowthFactor(g float64) Option {
	return func(c *config) { c.growthFactor = g }
}

// WithTightenRatio sets the geometric decay r of an elastic filter's
// per-level false-positive budgets εᵢ = ε·(1−r)·rⁱ (default 0.5; valid
// range (0, 0.9]). Smaller r spends the budget faster on early levels,
// keeping deep cascades cheaper per level; larger r delays the switch to
// 16-bit fingerprints. Only NewElastic and NewConcurrentElastic use it.
func WithTightenRatio(r float64) Option {
	return func(c *config) { c.tightenRatio = r }
}

// WithGrowthThreshold sets the fraction of a level's item budget at which
// an elastic filter appends its next level (default 0.85; valid range
// (0, 0.93]). Only NewElastic and NewConcurrentElastic use it.
func WithGrowthThreshold(t float64) Option {
	return func(c *config) { c.growThreshold = t }
}

// WithAutoCompaction enables automatic cascade compaction on elastic
// filters: whenever the cascade has at least minLevels levels and the
// frozen (non-newest) levels are loaded at or below the maxLoad fraction
// of their combined capacity, qualifying runs of old levels are merged
// into right-sized replacements, restoring negative-lookup speed after
// insert/remove churn (see Elastic.CompactNow). minLevels must be in
// [3, 64]; maxLoad in (0, 1], or 0 for the default 0.5. On concurrent and
// sharded filters the compaction runs in a background goroutine; on
// sequential filters it runs inline in the triggering operation. Only
// NewElastic, NewConcurrentElastic and NewShardedElastic use it.
func WithAutoCompaction(minLevels int, maxLoad float64) Option {
	return func(c *config) {
		c.compactMinLevels = minLevels
		c.compactMaxLoad = maxLoad
	}
}

// WithAutoFreeze enables the automatic frozen tier on elastic filters:
// cascade levels that have been out of the insert path for at least minAge
// and are loaded at or below the maxLoad fraction of their capacity are
// rebuilt into immutable binary-fuse levels — ~30–40% smaller and one probe
// instead of two per lookup, at the cost of tombstone-based removes (see
// Elastic.FreezeNow). minAge must be ≥ 0 (0 freezes any superseded level
// immediately); maxLoad in (0, 1], or 0 for the default 1 (any load
// qualifies). On concurrent and sharded filters the freeze runs in a
// background goroutine; on sequential filters it runs inline in the
// triggering operation. Only NewElastic, NewConcurrentElastic and
// NewShardedElastic use it.
func WithAutoFreeze(minAge time.Duration, maxLoad float64) Option {
	return func(c *config) {
		c.autoFreeze = true
		c.freezeMinAge = minAge
		c.freezeMaxLoad = maxLoad
	}
}

// WithSizingLoadFactor sets the load factor the filter is provisioned for:
// capacity is chosen so that n items fill the filter to at most this
// fraction. The default is 0.90; values above 0.93 risk Add failing before n
// items are inserted.
func WithSizingLoadFactor(lf float64) Option {
	return func(c *config) { c.sizingLoad = lf }
}

func buildConfig(opts []Option) (config, error) {
	c := config{fpr: fpr8Cutoff, sizingLoad: 0.90}
	for _, o := range opts {
		o(&c)
	}
	if !c.latencySet {
		c.latencyRate = telemetry.DefaultSamplingRate
	}
	if c.fpr < 1.0/(1<<17) {
		return c, fmt.Errorf("vqf: false-positive rate %g below supported minimum 2^-17", c.fpr)
	}
	if c.sizingLoad <= 0 || c.sizingLoad > 0.93 {
		return c, fmt.Errorf("vqf: sizing load factor %g outside (0, 0.93]", c.sizingLoad)
	}
	return c, nil
}

// initObservability attaches the filter's latency recorder and event ring.
// concurrent selects the thread-safe sampling gate; it must match the
// impl's threading contract. Called from every constructor, including the
// deserializing ones (which use the default sampling rate).
func (f *Filter) initObservability(rate int, concurrent bool) {
	f.rec = telemetry.NewRecorder(rate, concurrent)
	f.ring = telemetry.NewRing(telemetry.DefaultRingSize)
	if h, ok := f.impl.(interface{ SetEventRing(*telemetry.Ring) }); ok {
		h.SetEventRing(f.ring)
	}
}

// fpr8Cutoff is the 8-bit geometry's analytic false-positive rate,
// 2·(48/80)·2⁻⁸: the loosest target it actually meets. It is also the
// default rate for New.
const fpr8Cutoff = 2.0 * 48 / 80 / 256

// New returns a filter sized to hold n items. It panics on invalid options
// (mirroring make's behaviour for invalid sizes); use the Option docs for
// valid ranges.
func New(n uint64, opts ...Option) *Filter {
	c, err := buildConfig(opts)
	if err != nil {
		panic(err)
	}
	slots := uint64(float64(n)/c.sizingLoad) + 1
	coreOpts := core.Options{NoShortcut: c.noShortcut}
	f := &Filter{seed: c.seed}
	if c.fpr >= fpr8Cutoff {
		f.impl = core.NewFilter8(slots, coreOpts)
		f.fpr = 2 * float64(minifilter.B8Slots) / float64(minifilter.B8Buckets) / 256
	} else {
		f.impl = core.NewFilter16(slots, coreOpts)
		f.fpr = 2 * float64(minifilter.B16Slots) / float64(minifilter.B16Buckets) / 65536
	}
	f.initObservability(c.latencyRate, false)
	return f
}

// NewConcurrent returns a filter safe for concurrent use. Sizing and options
// are as for New.
func NewConcurrent(n uint64, opts ...Option) *Filter {
	c, err := buildConfig(opts)
	if err != nil {
		panic(err)
	}
	slots := uint64(float64(n)/c.sizingLoad) + 1
	coreOpts := core.Options{NoShortcut: c.noShortcut}
	f := &Filter{seed: c.seed}
	if c.fpr >= fpr8Cutoff {
		f.impl = core.NewCFilter8(slots, coreOpts)
		f.fpr = 2 * float64(minifilter.B8Slots) / float64(minifilter.B8Buckets) / 256
	} else {
		f.impl = core.NewCFilter16(slots, coreOpts)
		f.fpr = 2 * float64(minifilter.B16Slots) / float64(minifilter.B16Buckets) / 65536
	}
	f.initObservability(c.latencyRate, true)
	return f
}

func (f *Filter) hash(key []byte) uint64 { return hashing.HashBytes(key, f.seed) }

// Add inserts key into the filter. It returns ErrFull if both candidate
// blocks are full.
func (f *Filter) Add(key []byte) error { return f.AddHash(f.hash(key)) }

// AddString inserts a string key.
func (f *Filter) AddString(key string) error { return f.AddHash(hashing.HashString(key, f.seed)) }

// AddUint64 inserts a uint64 key.
func (f *Filter) AddUint64(key uint64) error { return f.AddHash(hashing.HashUint64(key, f.seed)) }

// AddHash inserts a pre-hashed 64-bit key. The hash must be uniformly
// distributed (use AddString/AddUint64/Add for raw keys).
func (f *Filter) AddHash(h uint64) error {
	var ok bool
	if f.rec.Sample(h) {
		start := time.Now()
		ok = f.impl.Insert(h)
		f.rec.Record(telemetry.OpInsert, h, time.Since(start))
	} else {
		ok = f.impl.Insert(h)
	}
	if !ok {
		return ErrFull
	}
	return nil
}

// Contains reports whether key may be in the filter: true for every added
// key, and false with probability ≥ 1−ε for keys never added.
func (f *Filter) Contains(key []byte) bool { return f.ContainsHash(f.hash(key)) }

// ContainsString queries a string key.
func (f *Filter) ContainsString(key string) bool {
	return f.ContainsHash(hashing.HashString(key, f.seed))
}

// ContainsUint64 queries a uint64 key.
func (f *Filter) ContainsUint64(key uint64) bool {
	return f.ContainsHash(hashing.HashUint64(key, f.seed))
}

// ContainsHash queries a pre-hashed 64-bit key.
func (f *Filter) ContainsHash(h uint64) bool {
	if f.rec.Sample(h) {
		start := time.Now()
		found := f.impl.Contains(h)
		f.rec.Record(telemetry.OpLookup, h, time.Since(start))
		return found
	}
	return f.impl.Contains(h)
}

// Remove deletes one previously added instance of key. It returns false if
// key's fingerprint is not present. Only keys that were actually added may be
// removed; removing an arbitrary key can evict a colliding key's fingerprint
// (a property shared by every deletion-capable filter).
func (f *Filter) Remove(key []byte) bool { return f.RemoveHash(f.hash(key)) }

// RemoveString removes a string key.
func (f *Filter) RemoveString(key string) bool {
	return f.RemoveHash(hashing.HashString(key, f.seed))
}

// RemoveUint64 removes a uint64 key.
func (f *Filter) RemoveUint64(key uint64) bool {
	return f.RemoveHash(hashing.HashUint64(key, f.seed))
}

// RemoveHash removes a pre-hashed 64-bit key.
func (f *Filter) RemoveHash(h uint64) bool {
	if f.rec.Sample(h) {
		start := time.Now()
		ok := f.impl.Remove(h)
		f.rec.Record(telemetry.OpRemove, h, time.Since(start))
		return ok
	}
	return f.impl.Remove(h)
}

// Count returns the number of items currently stored (added minus removed).
func (f *Filter) Count() uint64 { return f.impl.Count() }

// Capacity returns the total number of fingerprint slots. The filter
// operates reliably up to ≈ 93% of this.
func (f *Filter) Capacity() uint64 { return f.impl.Capacity() }

// LoadFactor returns Count divided by Capacity.
func (f *Filter) LoadFactor() float64 {
	return float64(f.impl.Count()) / float64(f.impl.Capacity())
}

// SizeBytes returns the filter's memory footprint.
func (f *Filter) SizeBytes() uint64 { return f.impl.SizeBytes() }

// FalsePositiveRate returns the filter's analytic false-positive rate at full
// load (2·(s/b)·2⁻ʳ, paper §5). The realized rate is proportionally lower at
// lower load factors.
func (f *Filter) FalsePositiveRate() float64 { return f.fpr }

// Stats returns the filter's cumulative operation counters. On concurrent
// filters it is safe to call at any time — counters are summed with atomic
// loads and writers are never blocked — and each counter is individually
// exact and monotone, though the set is not a single consistent cut (see
// Snapshot). On sequential filters it must not race with mutations, like
// every other method.
func (f *Filter) Stats() OpStats { return f.impl.Stats() }

// Snapshot returns a full structural snapshot: operation counters, load
// factor, space efficiency, estimated false-positive rate, and the per-block
// occupancy distribution. On concurrent filters the occupancy scan reads each
// block optimistically (briefly locking only blocks with an active writer),
// so it can run alongside live traffic; blocks are sampled one at a time, so
// the histogram is a smear over the scan window rather than an instantaneous
// cut. Snapshot reads are not recorded in the operation counters.
func (f *Filter) Snapshot() Snapshot {
	return stats.BuildSnapshot(
		f.impl.Count(), f.impl.Capacity(), f.impl.SizeBytes(), f.fpr,
		f.impl.BlockOccupancies(), f.impl.SlotsPerBlock(), f.impl.Stats())
}
