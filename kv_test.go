package vqf

import (
	"strconv"
	"testing"
)

func TestMapBasic(t *testing.T) {
	m := NewMap(10000)
	if err := m.Put([]byte("shard-key"), 3); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get([]byte("shard-key")); !ok || v != 3 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	if _, ok := m.Get([]byte("never-stored")); ok {
		t.Log("note: false positive on absent key (allowed)")
	}
	if !m.Update([]byte("shard-key"), 5) {
		t.Fatal("update failed")
	}
	if v, _ := m.Get([]byte("shard-key")); v != 5 {
		t.Fatalf("value after update = %d", v)
	}
	if !m.Delete([]byte("shard-key")) {
		t.Fatal("delete failed")
	}
	if m.Count() != 0 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestMapManyKeys(t *testing.T) {
	const n = 20000
	m := NewMap(n)
	for i := 0; i < n; i++ {
		if err := m.PutString("key-"+strconv.Itoa(i), byte(i%251)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	wrong := 0
	for i := 0; i < n; i++ {
		v, ok := m.GetString("key-" + strconv.Itoa(i))
		if !ok {
			t.Fatal("false negative")
		}
		if v != byte(i%251) {
			wrong++
		}
	}
	if wrong > n/100 {
		t.Errorf("%d/%d wrong values", wrong, n)
	}
	if m.LoadFactor() > 0.93 {
		t.Errorf("load factor %.3f above max", m.LoadFactor())
	}
}

func TestMapHashInterface(t *testing.T) {
	m := NewMap(1000, WithSeed(9))
	if err := m.PutHash(0xabcdef, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.GetHash(0xabcdef); !ok || v != 42 {
		t.Fatalf("GetHash = (%d, %v)", v, ok)
	}
	if !m.DeleteHash(0xabcdef) {
		t.Fatal("DeleteHash failed")
	}
}
