package vqf

import (
	"time"

	"vqf/internal/core"
	"vqf/internal/elastic"
	"vqf/internal/minifilter"
	"vqf/internal/telemetry"
)

// NewSharded returns a concurrent filter sized for n items and split into
// nshards independent shards (rounded up to a power of two, clamped to
// [1, 256]) selected by the top hash bits. Each shard is a self-contained
// concurrent filter with private locks, version stripes, and counters, so
// operations on different shards share no mutable cache lines at all —
// sharding multiplies every contended resource by the shard count, which is
// what turns per-core throughput into multi-core throughput on insert-heavy
// workloads. Sizing and options are as for New; the filter's semantics
// (bounded false-positive rate, no false negatives, removability) are
// identical to NewConcurrent.
//
// Batch operations (AddHashBatch and friends) partition keys by shard and
// fan out over shard-disjoint workers, so two workers never touch the same
// shard.
func NewSharded(n uint64, nshards int, opts ...Option) *Filter {
	c, err := buildConfig(opts)
	if err != nil {
		panic(err)
	}
	slots := uint64(float64(n)/c.sizingLoad) + 1
	coreOpts := core.Options{NoShortcut: c.noShortcut}
	f := &Filter{seed: c.seed}
	if c.fpr >= fpr8Cutoff {
		f.impl = core.NewSharded8(slots, nshards, coreOpts)
		f.fpr = 2 * float64(minifilter.B8Slots) / float64(minifilter.B8Buckets) / 256
	} else {
		f.impl = core.NewSharded16(slots, nshards, coreOpts)
		f.fpr = 2 * float64(minifilter.B16Slots) / float64(minifilter.B16Buckets) / 65536
	}
	f.initObservability(c.latencyRate, true)
	return f
}

// NumShards returns the filter's shard count: 1 for filters from New and
// NewConcurrent, the (rounded-up) configured count for NewSharded.
func (f *Filter) NumShards() int {
	if s, ok := f.impl.(interface{ NumShards() int }); ok {
		return s.NumShards()
	}
	return 1
}

// NewShardedElastic returns a growing filter split into nshards independent
// concurrent cascades selected by the top hash bits. Each shard grows on
// its own schedule, so one shard appending a level never serializes inserts
// into the others. Every query probes exactly one shard, whose cascade
// honors the full configured false-positive budget, so the sharded filter's
// rate is bounded by the same ε with no budget splitting. Options are as
// for NewElastic; the configured initial capacity is divided across shards.
//
// Sharded elastic filters do not support serialization.
func NewShardedElastic(nshards int, opts ...Option) *Elastic {
	ec, c, err := elasticConfig(opts)
	if err != nil {
		panic(err)
	}
	impl, err := elastic.NewSharded(ec, nshards)
	if err != nil {
		panic(err)
	}
	e := &Elastic{impl: impl, seed: c.seed}
	e.initObservability(c.latencyRate, true)
	return e
}

// NumShards returns the elastic filter's shard count (1 unless built by
// NewShardedElastic).
func (e *Elastic) NumShards() int {
	if s, ok := e.impl.(interface{ NumShards() int }); ok {
		return s.NumShards()
	}
	return 1
}

// batchFilter is the batch surface shared by every core variant (sequential,
// concurrent, and sharded, in both geometries).
type batchFilter interface {
	InsertBatch(hs []uint64) int
	ContainsBatch(hs []uint64, dst []bool) []bool
	RemoveBatch(hs []uint64) int
}

// AddHashBatch inserts a slice of pre-hashed keys and returns the number
// successfully inserted (the rest hit full blocks; see ErrFull). Keys are
// processed in a cache-friendly order — sorted by block, and on sharded
// filters partitioned across shard-disjoint parallel workers — which is
// substantially faster than a loop over AddHash for large batches. On
// concurrent filters it is safe alongside any other operations.
func (f *Filter) AddHashBatch(hs []uint64) int {
	end := telemetry.Region("vqf.batch.insert")
	start := time.Now()
	n := 0
	if b, ok := f.impl.(batchFilter); ok {
		n = b.InsertBatch(hs)
	} else {
		for _, h := range hs {
			if f.impl.Insert(h) {
				n++
			}
		}
	}
	f.rec.RecordBatch(telemetry.OpInsertBatch, 0, time.Since(start), len(hs))
	end()
	return n
}

// ContainsHashBatch reports membership for each pre-hashed key of hs, in
// input order. The result reuses dst if it has sufficient capacity (dst may
// be nil). On concurrent filters lookups run lock-free.
func (f *Filter) ContainsHashBatch(hs []uint64, dst []bool) []bool {
	end := telemetry.Region("vqf.batch.lookup")
	start := time.Now()
	var out []bool
	if b, ok := f.impl.(batchFilter); ok {
		out = b.ContainsBatch(hs, dst)
	} else {
		out = dst
		if cap(out) < len(hs) {
			out = make([]bool, len(hs))
		}
		out = out[:len(hs)]
		for i, h := range hs {
			out[i] = f.impl.Contains(h)
		}
	}
	f.rec.RecordBatch(telemetry.OpLookupBatch, 0, time.Since(start), len(hs))
	end()
	return out
}

// RemoveHashBatch removes one instance of each pre-hashed key of hs and
// returns the number found and removed.
func (f *Filter) RemoveHashBatch(hs []uint64) int {
	end := telemetry.Region("vqf.batch.remove")
	start := time.Now()
	n := 0
	if b, ok := f.impl.(batchFilter); ok {
		n = b.RemoveBatch(hs)
	} else {
		for _, h := range hs {
			if f.impl.Remove(h) {
				n++
			}
		}
	}
	f.rec.RecordBatch(telemetry.OpRemoveBatch, 0, time.Since(start), len(hs))
	end()
	return n
}
