package vqf

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRead feeds arbitrary bytes to every deserializer in the package —
// Filter, Map and Elastic share the envelope format, so each decoder sees
// the others' streams too. All three must reject malformed input with an
// error (never a panic or a giant allocation) and round-trip anything they
// accept.
func FuzzRead(f *testing.F) {
	var filterBuf bytes.Buffer
	g := New(100)
	g.AddString("seed")
	g.WriteTo(&filterBuf)
	f.Add(filterBuf.Bytes())

	var mapBuf bytes.Buffer
	m := NewMap(100)
	m.PutString("seed", 42)
	m.WriteTo(&mapBuf)
	f.Add(mapBuf.Bytes())

	var elasticBuf bytes.Buffer
	e := NewElastic(WithInitialCapacity(256))
	for i := uint64(0); i < 1500; i++ { // force a couple of growth events
		e.AddUint64(i)
	}
	e.WriteTo(&elasticBuf)
	f.Add(elasticBuf.Bytes())

	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 100))

	// Rejected shapes the hardened readers must refuse before allocating:
	// a core header whose count exceeds the block array's capacity, and an
	// elastic level stream whose block count disagrees with the geometry the
	// cascade config dictates. Offsets: 16-byte envelope, then the core header
	// (count at +16, block count at +8) or the 56-byte cascade header.
	forgedCount := append([]byte(nil), filterBuf.Bytes()...)
	binary.LittleEndian.PutUint64(forgedCount[16+16:], ^uint64(0))
	f.Add(forgedCount)

	forgedKV := append([]byte(nil), mapBuf.Bytes()...)
	binary.LittleEndian.PutUint64(forgedKV[16+16:], ^uint64(0))
	f.Add(forgedKV)

	forgedLevel := append([]byte(nil), elasticBuf.Bytes()...)
	lvlBlocks := binary.LittleEndian.Uint64(forgedLevel[16+56+8:])
	binary.LittleEndian.PutUint64(forgedLevel[16+56+8:], lvlBlocks/2)
	f.Add(forgedLevel)
	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := Read(bytes.NewReader(data)); err == nil {
			// Anything accepted must be a usable filter that re-serializes.
			got.ContainsString("probe")
			var out bytes.Buffer
			if _, err := got.WriteTo(&out); err != nil {
				t.Fatalf("re-serialize of accepted filter failed: %v", err)
			}
		}
		if got, err := NewMapFromReader(bytes.NewReader(data)); err == nil {
			got.GetString("probe")
			var out bytes.Buffer
			if _, err := got.WriteTo(&out); err != nil {
				t.Fatalf("re-serialize of accepted map failed: %v", err)
			}
		}
		if got, err := ReadElastic(bytes.NewReader(data)); err == nil {
			got.ContainsString("probe")
			var out bytes.Buffer
			if _, err := got.WriteTo(&out); err != nil {
				t.Fatalf("re-serialize of accepted elastic failed: %v", err)
			}
		}
	})
}

// FuzzFilterOps drives the public API with fuzz-chosen keys: added keys must
// always be found, and Count must track adds minus removes of added keys.
func FuzzFilterOps(f *testing.F) {
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(i)*7919)
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		filter := New(1000)
		var added []uint64
		for i := 0; i+7 < len(data) && len(added) < 900; i += 8 {
			k := binary.LittleEndian.Uint64(data[i:])
			if err := filter.AddUint64(k); err != nil {
				break
			}
			added = append(added, k)
		}
		for _, k := range added {
			if !filter.ContainsUint64(k) {
				t.Fatalf("false negative for %d", k)
			}
		}
		for _, k := range added {
			if !filter.RemoveUint64(k) {
				t.Fatalf("remove of added key %d failed", k)
			}
		}
		if filter.Count() != 0 {
			t.Fatalf("count %d after removing all", filter.Count())
		}
	})
}
