package vqf

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the filter deserializer: it must reject
// malformed input with an error, never panic, and round-trip its own output.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	g := New(100)
	g.AddString("seed")
	g.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be a usable filter that re-serializes.
		got.ContainsString("probe")
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize of accepted filter failed: %v", err)
		}
	})
}

// FuzzFilterOps drives the public API with fuzz-chosen keys: added keys must
// always be found, and Count must track adds minus removes of added keys.
func FuzzFilterOps(f *testing.F) {
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(i)*7919)
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		filter := New(1000)
		var added []uint64
		for i := 0; i+7 < len(data) && len(added) < 900; i += 8 {
			k := binary.LittleEndian.Uint64(data[i:])
			if err := filter.AddUint64(k); err != nil {
				break
			}
			added = append(added, k)
		}
		for _, k := range added {
			if !filter.ContainsUint64(k) {
				t.Fatalf("false negative for %d", k)
			}
		}
		for _, k := range added {
			if !filter.RemoveUint64(k) {
				t.Fatalf("remove of added key %d failed", k)
			}
		}
		if filter.Count() != 0 {
			t.Fatalf("count %d after removing all", filter.Count())
		}
	})
}
