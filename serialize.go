package vqf

import (
	"encoding/binary"
	"fmt"
	"io"

	"vqf/internal/core"
)

// Serialization of the public Filter type: a small envelope (geometry kind
// and hash seed) around the core filter stream, so a filter saved by one
// process answers queries identically in another.

const (
	envMagic   = 0x53465156 // "VQFS"
	envVersion = 1
	kind8      = 8
	kind16     = 16
)

// WriteTo serializes the filter. Only filters created with New (not
// NewConcurrent) support serialization; concurrent filters should quiesce
// and be rebuilt, or use the pre-hashed API against a reloaded filter.
// It implements io.WriterTo.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var kind uint16
	var wt io.WriterTo
	switch impl := f.impl.(type) {
	case *core.Filter8:
		kind, wt = kind8, impl
	case *core.Filter16:
		kind, wt = kind16, impl
	default:
		return 0, fmt.Errorf("vqf: filter type %T does not support serialization", f.impl)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], envMagic)
	binary.LittleEndian.PutUint16(hdr[4:], envVersion)
	binary.LittleEndian.PutUint16(hdr[6:], kind)
	binary.LittleEndian.PutUint64(hdr[8:], f.seed)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := wt.WriteTo(w)
	return n + int64(len(hdr)), err
}

// Read deserializes a filter previously written with WriteTo.
func Read(r io.Reader) (*Filter, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("vqf: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != envMagic {
		return nil, fmt.Errorf("vqf: not a serialized filter")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != envVersion {
		return nil, fmt.Errorf("vqf: unsupported serialization version %d", v)
	}
	f := &Filter{seed: binary.LittleEndian.Uint64(hdr[8:])}
	switch kind := binary.LittleEndian.Uint16(hdr[6:]); kind {
	case kind8:
		impl, err := core.ReadFilter8(r)
		if err != nil {
			return nil, err
		}
		f.impl = impl
		f.fpr = 2.0 * 48 / 80 / 256
	case kind16:
		impl, err := core.ReadFilter16(r)
		if err != nil {
			return nil, err
		}
		f.impl = impl
		f.fpr = 2.0 * 28 / 36 / 65536
	default:
		return nil, fmt.Errorf("vqf: unknown filter kind %d", kind)
	}
	return f, nil
}
