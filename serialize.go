package vqf

import (
	"encoding/binary"
	"fmt"
	"io"

	"vqf/internal/core"
	"vqf/internal/telemetry"
)

// Serialization of the public types: a small envelope (payload kind and
// hash seed) around the internal filter stream, so a filter saved by one
// process answers queries identically in another. Filter, Map and Elastic
// share the envelope format and differ only in the kind tag, which lets
// each reader reject the others' streams with a pointed error.

const (
	envMagic    = 0x53465156 // "VQFS"
	envVersion  = 1
	kind8       = 8
	kind16      = 16
	kindMap     = 0x4b // 'K': value-associating filter (Map)
	kindElastic = 0x45 // 'E': elastic cascade
	kindSharded = 0x53 // 'S': sharded concurrent filter
	kindFrozen  = 0x46 // 'F': standalone immutable binary fuse filter
)

// envelopeBytes is the envelope header size: magic(4) version(2) kind(2)
// seed(8).
const envelopeBytes = 16

// writeEnvelope writes the shared envelope header.
func writeEnvelope(w io.Writer, kind uint16, seed uint64) (int64, error) {
	var hdr [envelopeBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], envMagic)
	binary.LittleEndian.PutUint16(hdr[4:], envVersion)
	binary.LittleEndian.PutUint16(hdr[6:], kind)
	binary.LittleEndian.PutUint64(hdr[8:], seed)
	n, err := w.Write(hdr[:])
	return int64(n), err
}

// kindName names an envelope kind and the function that reads it, for
// mismatch errors.
func kindName(kind uint16) string {
	switch kind {
	case kind8, kind16:
		return "a Filter (use vqf.Read)"
	case kindMap:
		return "a Map (use vqf.NewMapFromReader)"
	case kindElastic:
		return "an Elastic filter (use vqf.ReadElastic)"
	case kindSharded:
		return "a sharded Filter (use vqf.Read or vqf.ReadConcurrent)"
	case kindFrozen:
		return "a Frozen filter (use vqf.ReadFrozen)"
	}
	return fmt.Sprintf("unknown kind %d", kind)
}

// readEnvelopeKind reads and validates the envelope header, returning the
// payload kind and seed.
func readEnvelopeKind(r io.Reader) (kind uint16, seed uint64, err error) {
	var hdr [envelopeBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("vqf: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != envMagic {
		return 0, 0, fmt.Errorf("vqf: not a serialized filter")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != envVersion {
		return 0, 0, fmt.Errorf("vqf: unsupported serialization version %d", v)
	}
	return binary.LittleEndian.Uint16(hdr[6:]), binary.LittleEndian.Uint64(hdr[8:]), nil
}

// readEnvelope reads the envelope header and requires the given kind.
func readEnvelope(r io.Reader, want uint16) (seed uint64, err error) {
	kind, seed, err := readEnvelopeKind(r)
	if err != nil {
		return 0, err
	}
	if kind != want {
		return 0, fmt.Errorf("vqf: stream holds %s", kindName(kind))
	}
	return seed, nil
}

// WriteTo serializes the filter; it implements io.WriterTo. All Filter
// variants serialize: sequential and concurrent filters share one stream
// format per geometry (a filter saved by either loads into either), and
// sharded filters add a sub-header recording the shard layout. Concurrent
// and sharded filters must be quiescent — no in-flight writers — while
// WriteTo runs; a held block lock is detected and reported as an error.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var kind uint16
	var wt io.WriterTo
	switch impl := f.impl.(type) {
	case *core.Filter8:
		kind, wt = kind8, impl
	case *core.Filter16:
		kind, wt = kind16, impl
	case *core.CFilter8:
		kind, wt = kind8, impl
	case *core.CFilter16:
		kind, wt = kind16, impl
	case *core.Sharded8:
		kind, wt = kindSharded, impl
	case *core.Sharded16:
		kind, wt = kindSharded, impl
	default:
		return 0, fmt.Errorf("vqf: filter type %T does not support serialization", f.impl)
	}
	n, err := writeEnvelope(w, kind, f.seed)
	if err != nil {
		return n, err
	}
	m, err := wt.WriteTo(w)
	return n + m, err
}

// fprFor returns the analytic full-load false-positive rate of a geometry
// kind (see Filter.FalsePositiveRate).
func fprFor(is16 bool) float64 {
	if is16 {
		return 2.0 * 28 / 36 / 65536
	}
	return 2.0 * 48 / 80 / 256
}

// Read deserializes a filter previously written with WriteTo. Streams of
// kind 8/16 load as sequential filters regardless of which variant wrote
// them (use ReadConcurrent to load them thread-safe); sharded streams
// always load as sharded (thread-safe) filters.
func Read(r io.Reader) (*Filter, error) {
	kind, seed, err := readEnvelopeKind(r)
	if err != nil {
		return nil, err
	}
	f := &Filter{seed: seed}
	switch kind {
	case kind8:
		impl, err := core.ReadFilter8(r)
		if err != nil {
			return nil, err
		}
		f.impl = impl
		f.fpr = fprFor(false)
	case kind16:
		impl, err := core.ReadFilter16(r)
		if err != nil {
			return nil, err
		}
		f.impl = impl
		f.fpr = fprFor(true)
	case kindSharded:
		return readShardedFilter(r, seed)
	default:
		return nil, fmt.Errorf("vqf: stream holds %s", kindName(kind))
	}
	f.initObservability(telemetry.DefaultSamplingRate, false)
	return f, nil
}

// ReadConcurrent deserializes a filter previously written with WriteTo into
// a thread-safe form: kind 8/16 streams load as concurrent filters, sharded
// streams as sharded filters. The stream format does not record which
// variant wrote it — Read and ReadConcurrent both accept any Filter stream.
func ReadConcurrent(r io.Reader) (*Filter, error) {
	kind, seed, err := readEnvelopeKind(r)
	if err != nil {
		return nil, err
	}
	f := &Filter{seed: seed}
	switch kind {
	case kind8:
		impl, err := core.ReadCFilter8(r)
		if err != nil {
			return nil, err
		}
		f.impl = impl
		f.fpr = fprFor(false)
	case kind16:
		impl, err := core.ReadCFilter16(r)
		if err != nil {
			return nil, err
		}
		f.impl = impl
		f.fpr = fprFor(true)
	case kindSharded:
		return readShardedFilter(r, seed)
	default:
		return nil, fmt.Errorf("vqf: stream holds %s", kindName(kind))
	}
	f.initObservability(telemetry.DefaultSamplingRate, true)
	return f, nil
}

// readShardedFilter reads the sharded payload following an envelope.
func readShardedFilter(r io.Reader, seed uint64) (*Filter, error) {
	s8, s16, err := core.ReadSharded(r)
	if err != nil {
		return nil, err
	}
	f := &Filter{seed: seed}
	if s8 != nil {
		f.impl, f.fpr = s8, fprFor(false)
	} else {
		f.impl, f.fpr = s16, fprFor(true)
	}
	f.initObservability(telemetry.DefaultSamplingRate, true)
	return f, nil
}

// WriteTo serializes the Map (envelope, blocks and values). It implements
// io.WriterTo.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	n, err := writeEnvelope(w, kindMap, m.seed)
	if err != nil {
		return n, err
	}
	k, err := m.impl.WriteTo(w)
	return n + k, err
}

// NewMapFromReader deserializes a Map written by Map.WriteTo. The hash seed
// travels with the Map, so keys stored by the writing process resolve
// identically.
func NewMapFromReader(r io.Reader) (*Map, error) {
	seed, err := readEnvelope(r, kindMap)
	if err != nil {
		return nil, err
	}
	impl, err := core.ReadKV8(r)
	if err != nil {
		return nil, err
	}
	return &Map{impl: impl, seed: seed}, nil
}
