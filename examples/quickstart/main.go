// Quickstart: the five-minute tour of the vqf package — create a filter,
// add keys of various types, query, observe the false-positive contract,
// delete, and inspect space usage.
package main

import (
	"fmt"

	"vqf"
)

func main() {
	// A filter sized for one million keys at the default ε ≈ 2⁻⁸.
	f := vqf.New(1_000_000)
	fmt.Printf("created filter: capacity %d slots, %.1f KiB, fpr %.4f\n",
		f.Capacity(), float64(f.SizeBytes())/1024, f.FalsePositiveRate())

	// Keys can be bytes, strings, uint64s, or pre-hashed 64-bit values.
	f.Add([]byte("alpha"))
	f.AddString("beta")
	f.AddUint64(42)

	fmt.Println(`contains "alpha":`, f.Contains([]byte("alpha"))) // true
	fmt.Println(`contains "beta": `, f.ContainsString("beta"))    // true
	fmt.Println("contains 42:     ", f.ContainsUint64(42))        // true
	fmt.Println(`contains "gamma":`, f.ContainsString("gamma"))   // false (w.h.p.)

	// No false negatives, ever: every added key is found.
	for i := uint64(0); i < 100_000; i++ {
		if err := f.AddUint64(i); err != nil {
			panic(err)
		}
	}
	for i := uint64(0); i < 100_000; i++ {
		if !f.ContainsUint64(i) {
			panic("false negative — impossible")
		}
	}

	// False positives occur at ≈ the configured rate for absent keys.
	fp := 0
	const probes = 100_000
	for i := uint64(0); i < probes; i++ {
		if f.ContainsUint64(1_000_000_000 + i) {
			fp++
		}
	}
	fmt.Printf("false-positive rate on absent keys: %.5f (analytic bound %.5f at full load)\n",
		float64(fp)/probes, f.FalsePositiveRate())

	// Deletion removes previously added keys.
	f.RemoveString("beta")
	fmt.Println(`after delete, contains "beta":`, f.ContainsString("beta"))

	fmt.Printf("final: %d keys at load factor %.3f in %.1f KiB (%.2f bits/key)\n",
		f.Count(), f.LoadFactor(), float64(f.SizeBytes())/1024,
		float64(f.SizeBytes()*8)/float64(f.Count()))
}
