// LSM-store example: the workload that motivates the paper's introduction.
//
// An LSM-tree key-value store keeps many immutable on-disk runs (SSTables);
// a point lookup must consult every run that might hold the key, so each run
// carries an in-memory filter and the store only "reads disk" when a run's
// filter says present. This example builds a miniature LSM store with one
// vector quotient filter per run, measures how many disk probes the filters
// eliminate, and shows the write path keeping filters updated during
// compaction (delete + reinsert) — the insert-heavy regime where the VQF's
// flat insertion throughput matters.
package main

import (
	"encoding/binary"
	"fmt"

	"vqf"
	"vqf/internal/workload"
)

// run models one SSTable: a sorted key set (stand-in for the on-disk file)
// plus its filter.
type run struct {
	keys   map[uint64]struct{}
	filter *vqf.Filter
}

func newRun(keys []uint64) *run {
	r := &run{keys: make(map[uint64]struct{}, len(keys)), filter: vqf.New(uint64(len(keys)))}
	for _, k := range keys {
		r.keys[k] = struct{}{}
		if err := r.filter.AddUint64(k); err != nil {
			panic(err)
		}
	}
	return r
}

// get reports (found, diskProbe): diskProbe is true when the filter forced
// us to consult the (simulated) on-disk run.
func (r *run) get(k uint64) (bool, bool) {
	if !r.filter.ContainsUint64(k) {
		return false, false
	}
	_, ok := r.keys[k]
	return ok, true
}

func main() {
	const (
		runs       = 8
		keysPerRun = 200_000
		lookups    = 500_000
	)
	src := workload.NewStream(1)

	// Build the store: 8 runs of 200k keys each.
	store := make([]*run, runs)
	allKeys := make([]uint64, 0, runs*keysPerRun)
	for i := range store {
		keys := src.Keys(keysPerRun)
		store[i] = newRun(keys)
		allKeys = append(allKeys, keys...)
	}
	fmt.Printf("built %d runs × %d keys; filter memory %.1f KiB/run\n",
		runs, keysPerRun, float64(store[0].filter.SizeBytes())/1024)

	// Mixed lookups: half for present keys, half for absent ones. Without
	// filters, every lookup would probe every run until a hit (avg ~runs/2
	// probes for present keys, runs probes for absent ones).
	probes, noFilterProbes, found := 0, 0, 0
	neg := workload.NewStream(2)
	for i := 0; i < lookups; i++ {
		var key uint64
		if i%2 == 0 {
			key = allKeys[(i*2654435761)%len(allKeys)]
		} else {
			key = neg.Next()
		}
		for j, r := range store {
			ok, disk := r.get(key)
			if disk {
				probes++
			}
			noFilterProbes++ // an unfiltered store probes this run regardless
			if ok {
				found++
				_ = j
				break
			}
		}
	}
	fmt.Printf("lookups: %d (found %d)\n", lookups, found)
	fmt.Printf("disk probes with filters:    %d\n", probes)
	fmt.Printf("disk probes without filters: %d\n", noFilterProbes)
	fmt.Printf("probe reduction: %.1f×\n", float64(noFilterProbes)/float64(probes))

	// Compaction: merge the two oldest runs into one, deleting from the old
	// filters is unnecessary (they are dropped whole), but the merged run's
	// filter must absorb both key sets — a bulk insert to high load factor,
	// exactly where the VQF keeps its speed.
	merged := make([]uint64, 0, 2*keysPerRun)
	for k := range store[0].keys {
		merged = append(merged, k)
	}
	for k := range store[1].keys {
		merged = append(merged, k)
	}
	newR := newRun(merged)
	store = append([]*run{newR}, store[2:]...)
	fmt.Printf("compacted runs 0+1: new run holds %d keys at load factor %.3f\n",
		newR.filter.Count(), newR.filter.LoadFactor())

	// Sealing a run: runs behind the compaction frontier are immutable —
	// an LSM store's defining property — so their per-run filters never see
	// another insert. A mutable VQF pays for update support it no longer
	// needs; rebuilding the key set as a Frozen binary-fuse filter answers
	// the same lookups in one probe at a fraction of the bits.
	oldest := store[len(store)-1]
	kb := make([][]byte, 0, len(oldest.keys))
	for k := range oldest.keys {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], k)
		kb = append(kb, b[:])
	}
	sealed, err := vqf.NewFrozen(kb)
	if err != nil {
		panic(err)
	}
	for _, b := range kb {
		if !sealed.Contains(b) {
			panic("sealed run filter lost a key")
		}
	}
	mutableBits := float64(oldest.filter.SizeBytes()) * 8 / float64(oldest.filter.Count())
	fmt.Printf("sealed oldest run: %.2f bits/key frozen vs %.2f mutable (%.0f%% drop) at FPR %.1e\n",
		sealed.BitsPerItem(), mutableBits, 100*(1-sealed.BitsPerItem()/mutableBits),
		sealed.FalsePositiveRate())

	// Store-wide ingest filter: per-run filters answer "is it in THIS run",
	// but an absent key still pays one filter probe per run. A single filter
	// over the whole store short-circuits those, yet the store's eventual size
	// is unknown when it opens — the case the elastic filter exists for. It
	// starts sized for one run and grows as ingest proceeds, keeping the
	// whole-cascade FPR under the configured budget through every growth.
	ingest := vqf.NewElastic(vqf.WithInitialCapacity(keysPerRun))
	for _, k := range allKeys {
		if err := ingest.AddUint64(k); err != nil {
			panic(err)
		}
	}
	skipped := 0
	negProbe := workload.NewStream(3)
	for i := 0; i < lookups; i++ {
		if !ingest.ContainsUint64(negProbe.Next()) {
			skipped++ // no run consulted at all
		}
	}
	fmt.Printf("elastic ingest filter: %d keys, %d levels grown from %d-key capacity, %.1f bits/key\n",
		ingest.Count(), ingest.Levels(), keysPerRun, float64(ingest.SizeBytes())*8/float64(ingest.Count()))
	fmt.Printf("absent-key lookups skipping every run: %d/%d (FPR budget %.1e)\n",
		skipped, lookups, ingest.FalsePositiveRate())

	// The frozen tier under churn. As the store ages, whole runs are
	// retired: their keys leave the ingest filter, but the cascade levels
	// that held them keep their allocated space — sparse VQF levels full of
	// dead slots. A handful of long-lived keys (here 1 in 16) survives every
	// retirement, so the levels cannot simply be dropped. FreezeNow rebuilds
	// those sparse old levels into immutable binary-fuse levels sized for
	// exactly the surviving keys, reclaiming the dead space while the
	// false-positive budget and every live key stay intact.
	retired := allKeys[: 6*keysPerRun : 6*keysPerRun]
	for i, k := range retired {
		if i%16 == 0 {
			continue // long-lived key: carried forward by the run rewrite
		}
		if !ingest.RemoveUint64(k) {
			panic("retiring a run lost track of a key")
		}
	}
	churnedBits := float64(ingest.SizeBytes()) * 8 / float64(ingest.Count())
	fr := ingest.FreezeNow()
	frozenBits := float64(ingest.SizeBytes()) * 8 / float64(ingest.Count())
	for i := 0; i < len(retired); i += 16 {
		if !ingest.ContainsUint64(retired[i]) {
			panic("freeze lost a long-lived key")
		}
	}
	fmt.Printf("retired runs 0-5 (1/16 keys live on): %d keys rattling in %d levels, %.1f bits/key\n",
		ingest.Count(), fr.LevelsBefore, churnedBits)
	fmt.Printf("froze %d sparse levels into %d fuse levels: %d levels, %.1f bits/key (%.0f%% drop)\n",
		fr.LevelsFrozen, fr.FuseLevels, ingest.Levels(), frozenBits, 100*(1-frozenBits/churnedBits))
}
