// k-mer set example: computational biology, the paper's other motivating
// domain. Genomic tools represent enormous sets of k-mers (length-k DNA
// substrings) in filters; queries ask whether a read's k-mers were seen in
// the reference. This example builds a filter over the k-mers of a synthetic
// reference genome, then screens sequencing reads — half real (error-free
// substrings of the reference), half alien — and reports per-read hit rates
// and the measured false-positive rate, using the 16-bit-fingerprint
// geometry for a 2⁻¹⁶-class FPR as such tools typically need.
package main

import (
	"fmt"
	"math/rand"

	"vqf"
)

const (
	genomeLen = 2_000_000
	k         = 31
	readLen   = 100
	nReads    = 2000
)

var bases = []byte("ACGT")

func randomGenome(rng *rand.Rand, n int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	return g
}

func main() {
	rng := rand.New(rand.NewSource(7))
	genome := randomGenome(rng, genomeLen)

	nKmers := genomeLen - k + 1
	f := vqf.New(uint64(nKmers), vqf.WithFalsePositiveRate(1.0/65536))
	for i := 0; i < nKmers; i++ {
		if err := f.Add(genome[i : i+k]); err != nil {
			panic(err)
		}
	}
	fmt.Printf("indexed %d %d-mers in %.1f MiB (%.2f bits/k-mer, load %.3f)\n",
		f.Count(), k, float64(f.SizeBytes())/(1<<20),
		float64(f.SizeBytes()*8)/float64(f.Count()), f.LoadFactor())

	// Screen reads: real reads are substrings of the reference, alien reads
	// are fresh random sequence.
	screen := func(read []byte) (hit, total int) {
		for i := 0; i+k <= len(read); i++ {
			total++
			if f.Contains(read[i : i+k]) {
				hit++
			}
		}
		return
	}

	var realHits, realTotal, alienHits, alienTotal int
	for r := 0; r < nReads; r++ {
		start := rng.Intn(genomeLen - readLen)
		h, t := screen(genome[start : start+readLen])
		realHits += h
		realTotal += t

		h, t = screen(randomGenome(rng, readLen))
		alienHits += h
		alienTotal += t
	}
	fmt.Printf("reference reads: %d/%d k-mers found (%.4f — must be 1.0, no false negatives)\n",
		realHits, realTotal, float64(realHits)/float64(realTotal))
	fmt.Printf("alien reads:     %d/%d k-mers found (%.6f — the false-positive rate)\n",
		alienHits, alienTotal, float64(alienHits)/float64(alienTotal))
	if realHits != realTotal {
		panic("false negative on a reference k-mer")
	}

	// Classification: a read "maps" if ≥80% of its k-mers are present.
	mapped := 0
	for r := 0; r < 500; r++ {
		h, t := screen(randomGenome(rng, readLen))
		if float64(h) >= 0.8*float64(t) {
			mapped++
		}
	}
	fmt.Printf("alien reads misclassified as mapping: %d/500\n", mapped)
}
