// Web-cache summary example: the networking use case from the paper's
// introduction (summary caches à la Fan et al.). A cluster of cache nodes
// each maintains a compact summary of its neighbours' contents; before
// fetching from origin, a node asks the summaries whether a peer likely has
// the object. Cache contents churn constantly, so the summary must support
// concurrent inserts AND deletes at high load — the write-heavy regime of
// the paper's Table 3, here driven through the thread-safe filter from
// several goroutines at once.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"vqf"
	"vqf/internal/workload"
)

const (
	cacheCapacity = 200_000 // objects a peer cache holds
	workers       = 4
	opsPerWorker  = 150_000
)

func main() {
	// The peer's summary, shared by all request-handling goroutines. Latency
	// sampling at the default 1/64 rate is cheap enough to leave on in
	// production; it feeds the p99 figures and Prometheus histograms below.
	summary := vqf.NewConcurrent(cacheCapacity, vqf.WithLatencySampling(vqf.DefaultLatencySamplingRate))

	// Pre-fill to ~90% of the cache capacity: a warm cache.
	warm := workload.NewStream(3).Keys(cacheCapacity * 9 / 10)
	for _, url := range warm {
		if err := summary.AddHash(url); err != nil {
			panic(err)
		}
	}
	fmt.Printf("warm summary: %d objects, %.1f KiB (%.2f bits/object), load %.3f\n",
		summary.Count(), float64(summary.SizeBytes())/1024,
		float64(summary.SizeBytes()*8)/float64(summary.Count()), summary.LoadFactor())

	// Expose the summary the way a cache node would: a Prometheus /metrics
	// endpoint a scraper can hit at any time, including while the request
	// handlers below are mutating the filter (snapshots never block writers).
	mux := http.NewServeMux()
	mux.Handle("/metrics", vqf.MetricsHandler(map[string]vqf.Source{"peer-summary": summary}))
	// Rare-event ring for incident debugging: seqlock fallbacks, shard claim
	// stalls and the like show up here with their arguments.
	mux.Handle("/debug/vqf/events", vqf.EventsHandler(map[string]vqf.EventSource{"peer-summary": summary}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	go http.Serve(ln, mux)

	// Each worker simulates a request handler: every admission to the local
	// cache evicts the oldest object (delete + insert on the summary), and
	// lookups check peer membership. Keys are pre-hashed URLs.
	var wg sync.WaitGroup
	var randHits, randTotal, cachedHits, evictions atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reqs := workload.NewStream(uint64(100 + w))
			fifo := append([]uint64(nil), warm[w*len(warm)/workers:(w+1)*len(warm)/workers]...)
			for i := 0; i < opsPerWorker; i++ {
				switch i % 3 {
				case 0: // peer-membership query for a random (almost surely absent) URL
					randTotal.Add(1)
					if summary.ContainsHash(reqs.Next()) {
						randHits.Add(1)
					}
				case 1: // query for a URL we know is cached
					if !summary.ContainsHash(fifo[i%len(fifo)]) {
						panic("false negative on a cached object")
					}
					cachedHits.Add(1)
				default: // admission: evict oldest, admit new
					old := fifo[0]
					fifo = fifo[1:]
					if !summary.RemoveHash(old) {
						panic("summary lost a cached object")
					}
					newURL := reqs.Next()
					if err := summary.AddHash(newURL); err != nil {
						panic(err)
					}
					fifo = append(fifo, newURL)
					evictions.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("%d workers × %d ops: %d cached-object hits, %d evictions\n",
		workers, opsPerWorker, cachedHits.Load(), evictions.Load())
	fmt.Printf("final summary: %d objects at load %.3f\n", summary.Count(), summary.LoadFactor())
	fmt.Printf("absent-URL false-positive rate: %.5f (analytic full-load bound %.5f)\n",
		float64(randHits.Load())/float64(randTotal.Load()), summary.FalsePositiveRate())

	// The filter kept count of everything the workers did.
	st := summary.Stats()
	fmt.Printf("op counters: %d inserts (%d shortcut), %d lookups, %d removes\n",
		st.Inserts, st.ShortcutInserts, st.Lookups, st.Removes)
	fmt.Printf("optimistic reads: %d attempts, %d retries, %d lock fallbacks\n",
		st.OptAttempts, st.OptRetries, st.OptFallbacks)

	// Sampled latency quantiles: the p99 story without timing every op.
	lat := summary.Latency()
	fmt.Printf("sampled lookup latency (1/%d ops, %d samples): p50 %dns  p99 %dns  p999 %dns\n",
		lat.SamplingRate, lat.Lookup.Count, lat.Lookup.P50, lat.Lookup.P99, lat.Lookup.P999)
	fmt.Printf("rare events on the ring: %d (seqlock fallbacks and friends)\n", len(summary.Events()))

	// Scrape our own endpoint and show a few series, as a monitoring stack
	// would see them.
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	fmt.Println("scraped /metrics excerpt:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "vqf_items{") || strings.HasPrefix(line, "vqf_load_factor{") ||
			strings.HasPrefix(line, "vqf_inserts_total{") || strings.HasPrefix(line, "vqf_optimistic_fallbacks_total{") ||
			strings.HasPrefix(line, "vqf_op_latency_seconds_count{") {
			fmt.Println("  " + line)
		}
	}
}
