// Shard-router example: the value-association feature of the paper's
// conclusion ("the ability to associate a small value with each key makes
// the vector quotient filter a go-to data structure").
//
// A storage frontend routes keys across shards. Instead of a full routing
// table, it keeps a vqf.Map from key to shard ID: ~12 bits + 8 value bits
// per key instead of the key itself. Misrouted requests (the ε fraction of
// fingerprint collisions) are detected at the shard and retried with a
// broadcast, so correctness is preserved while the common case needs one
// compact in-memory lookup.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"vqf"
	"vqf/internal/workload"
)

const (
	numShards = 16
	numKeys   = 500_000
)

func main() {
	// Authoritative shard assignment (what a directory service would hold).
	keys := workload.NewStream(11).Keys(numKeys)
	authoritative := make(map[uint64]byte, numKeys)
	shardSizes := make([]int, numShards)
	for i, k := range keys {
		shard := byte(i % numShards)
		authoritative[k] = shard
		shardSizes[shard]++
	}

	// The router's compact map.
	router := vqf.NewMap(numKeys)
	for k, shard := range authoritative {
		if err := router.PutHash(k, shard); err != nil {
			panic(err)
		}
	}
	fmt.Printf("router map: %d keys in %.1f KiB (%.2f bits/key) at load %.3f\n",
		router.Count(), float64(router.SizeBytes())/1024,
		float64(router.SizeBytes()*8)/float64(router.Count()), router.LoadFactor())

	// Route every key; count how many land on their authoritative shard.
	correct, misrouted, unknown := 0, 0, 0
	for k, want := range authoritative {
		shard, ok := router.GetHash(k)
		switch {
		case !ok:
			unknown++ // impossible: stored keys always resolve
		case shard == want:
			correct++
		default:
			misrouted++ // fingerprint collision returned another key's shard
		}
	}
	fmt.Printf("routing stored keys: %d correct, %d misrouted (collision rate %.5f), %d unknown\n",
		correct, misrouted, float64(misrouted)/float64(numKeys), unknown)
	if unknown > 0 {
		panic("a stored key failed to resolve")
	}

	// Unknown keys should be rejected at the router, not broadcast.
	neg := workload.NewStream(12)
	falseRoutes := 0
	const probes = 200_000
	for i := 0; i < probes; i++ {
		if _, ok := router.GetHash(neg.Next()); ok {
			falseRoutes++
		}
	}
	fmt.Printf("unknown keys routed anyway: %d/%d (%.5f — the filter FPR)\n",
		falseRoutes, probes, float64(falseRoutes)/float64(probes))

	// Shard rebalance: move every key of shard 3 to shard 7 using Update —
	// no rebuild, no extra space.
	moved := 0
	for k, shard := range authoritative {
		if shard == 3 {
			if !router.UpdateHash(k, 7) {
				panic("update of stored key failed")
			}
			authoritative[k] = 7
			moved++
		}
	}
	fmt.Printf("rebalanced %d keys from shard 3 to shard 7\n", moved)
	stillWrong := 0
	for k, want := range authoritative {
		if shard, ok := router.GetHash(k); !ok || shard != want {
			stillWrong++
		}
	}
	fmt.Printf("post-rebalance mismatches: %d (collision-scale only)\n", stillWrong)

	// The router's counters: Puts count as inserts, Gets/Updates as lookups.
	st := router.Stats()
	fmt.Printf("op counters: %d inserts, %d lookups, %d removes\n",
		st.Inserts, st.Lookups, st.Removes)

	// A vqf.Map serves the same /metrics endpoint as a Filter; a frontend
	// would mount this on its ops port next to its other handlers.
	mux := http.NewServeMux()
	mux.Handle("/metrics", vqf.MetricsHandler(map[string]vqf.Source{"shard-router": router}))
	// The events endpoint always carries the process-wide ring ("global"),
	// which records the assembly-kernel dispatch decision at startup — handy
	// for confirming which code path a deployed binary is actually running.
	mux.Handle("/debug/vqf/events", vqf.EventsHandler(nil))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	go http.Serve(ln, mux)
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	fmt.Println("scraped /metrics excerpt:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "vqf_items{") || strings.HasPrefix(line, "vqf_bits_per_item{") ||
			strings.HasPrefix(line, "vqf_lookups_total{") || strings.HasPrefix(line, "vqf_block_occupancy_stddev{") {
			fmt.Println("  " + line)
		}
	}

	resp, err = http.Get("http://" + ln.Addr().String() + "/debug/vqf/events")
	if err != nil {
		panic(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	var events map[string][]vqf.Event
	if err := json.Unmarshal(body, &events); err != nil {
		panic(err)
	}
	fmt.Printf("scraped /debug/vqf/events: %d global events", len(events["global"]))
	for _, ev := range events["global"] {
		fmt.Printf(" (%s: asm=%d fused-probe=%d available=%d)", ev.Kind, ev.A, ev.B, ev.C)
	}
	fmt.Println()
}
