// Shard-router example: the value-association feature of the paper's
// conclusion ("the ability to associate a small value with each key makes
// the vector quotient filter a go-to data structure") — served out of
// process by the vqfd daemon.
//
// A storage frontend routes keys across shards. Instead of a full routing
// table, it keeps a key→shard-ID map: ~12 bits + 8 value bits per key
// instead of the key itself. Here the map lives in a vqfd service (started
// in-process on loopback, but the client code is exactly what a remote
// frontend would run): the router is created over the HTTP admin API and
// all routing traffic — bulk Put, batched Get, Update for rebalancing —
// rides the binary batch protocol through the shared service client.
// Misrouted requests (the ε fraction of fingerprint collisions) are
// detected at the shard and retried with a broadcast, so correctness is
// preserved while the common case needs one compact RPC.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"vqf"
	"vqf/internal/service"
	"vqf/internal/workload"
)

const (
	numShards = 16
	numKeys   = 500_000
	batchSize = 4096
)

// batches cuts keys into wire-sized batches.
func batches(keys []uint64) [][]uint64 {
	var out [][]uint64
	for lo := 0; lo < len(keys); lo += batchSize {
		hi := lo + batchSize
		if hi > len(keys) {
			hi = len(keys)
		}
		out = append(out, keys[lo:hi])
	}
	return out
}

func main() {
	// The daemon. A real deployment runs `vqfd` as its own process; the
	// client side below is identical either way.
	srv, err := service.New(service.Config{HTTPAddr: "127.0.0.1:0", BinaryAddr: "127.0.0.1:0"})
	if err != nil {
		panic(err)
	}
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	admin := service.NewAdmin("http://" + srv.HTTPAddr())
	if _, err := admin.Create(service.Spec{Name: "router", Kind: service.KindMap, Capacity: numKeys}); err != nil {
		panic(err)
	}
	rpc, err := service.Dial(srv.BinaryAddr())
	if err != nil {
		panic(err)
	}
	defer rpc.Close()

	// Authoritative shard assignment (what a directory service would hold).
	keys := workload.NewStream(11).Keys(numKeys)
	authoritative := make(map[uint64]byte, numKeys)
	for i, k := range keys {
		authoritative[k] = byte(i % numShards)
	}

	// Bulk-load the router over the binary protocol: each frame carries one
	// key batch plus its shard IDs and becomes one radix-partitioned batch
	// insert on the daemon.
	vals := make([]byte, batchSize)
	for _, b := range batches(keys) {
		vals = vals[:len(b)]
		for i, k := range b {
			vals[i] = authoritative[k]
		}
		if n, err := rpc.Put("router", b, vals); err != nil || n != len(b) {
			panic(fmt.Sprintf("bulk put stored %d/%d: %v", n, len(b), err))
		}
	}
	info, err := admin.Inspect("router")
	if err != nil {
		panic(err)
	}
	fmt.Printf("router map: %d keys in %.1f KiB (%.2f bits/key) at load %.3f\n",
		info.Count, float64(info.SizeBytes)/1024,
		float64(info.SizeBytes*8)/float64(info.Count), info.LoadFactor)

	// Route every key with batched Gets; count how many land on their
	// authoritative shard.
	correct, misrouted, unknown := 0, 0, 0
	var shards []byte
	var found []bool
	for _, b := range batches(keys) {
		shards, found, err = rpc.Get("router", b, shards, found)
		if err != nil {
			panic(err)
		}
		for i, k := range b {
			switch {
			case !found[i]:
				unknown++ // impossible: stored keys always resolve
			case shards[i] == authoritative[k]:
				correct++
			default:
				misrouted++ // fingerprint collision returned another key's shard
			}
		}
	}
	fmt.Printf("routing stored keys: %d correct, %d misrouted (collision rate %.5f), %d unknown\n",
		correct, misrouted, float64(misrouted)/float64(numKeys), unknown)
	if unknown > 0 {
		panic("a stored key failed to resolve")
	}

	// Unknown keys should be rejected at the router, not broadcast.
	const probes = 200_000
	falseRoutes := 0
	for _, b := range batches(workload.NewStream(12).Keys(probes)) {
		shards, found, err = rpc.Get("router", b, shards, found)
		if err != nil {
			panic(err)
		}
		for i := range b {
			if found[i] {
				falseRoutes++
			}
		}
	}
	fmt.Printf("unknown keys routed anyway: %d/%d (%.5f — the filter FPR)\n",
		falseRoutes, probes, float64(falseRoutes)/float64(probes))

	// Shard rebalance: move every key of shard 3 to shard 7 using batched
	// Updates — no rebuild, no extra space, a few frames of traffic.
	var movedKeys []uint64
	for _, k := range keys {
		if authoritative[k] == 3 {
			movedKeys = append(movedKeys, k)
		}
	}
	moved := 0
	sevens := make([]byte, batchSize)
	for i := range sevens {
		sevens[i] = 7
	}
	for _, b := range batches(movedKeys) {
		n, err := rpc.Update("router", b, sevens[:len(b)])
		if err != nil {
			panic(err)
		}
		moved += n
	}
	for _, k := range movedKeys {
		authoritative[k] = 7
	}
	fmt.Printf("rebalanced %d keys from shard 3 to shard 7\n", moved)
	stillWrong := 0
	for _, b := range batches(keys) {
		shards, found, err = rpc.Get("router", b, shards, found)
		if err != nil {
			panic(err)
		}
		for i, k := range b {
			if !found[i] || shards[i] != authoritative[k] {
				stillWrong++
			}
		}
	}
	fmt.Printf("post-rebalance mismatches: %d (collision-scale only)\n", stillWrong)

	// The daemon exports every hosted filter on its own /metrics and
	// /debug/vqf/events endpoints; a frontend's monitoring scrapes the
	// service, not the client.
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	fmt.Println("scraped /metrics excerpt:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "vqf_items{") || strings.HasPrefix(line, "vqf_bits_per_item{") ||
			strings.HasPrefix(line, "vqf_lookups_total{") || strings.HasPrefix(line, "vqf_block_occupancy_stddev{") {
			fmt.Println("  " + line)
		}
	}

	// The events endpoint always carries the process-wide ring ("global"),
	// which records the assembly-kernel dispatch decision at startup — handy
	// for confirming which code path a deployed daemon is actually running.
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/debug/vqf/events")
	if err != nil {
		panic(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	var events map[string][]vqf.Event
	if err := json.Unmarshal(body, &events); err != nil {
		panic(err)
	}
	fmt.Printf("scraped /debug/vqf/events: %d global events", len(events["global"]))
	for _, ev := range events["global"] {
		fmt.Printf(" (%s: asm=%d fused-probe=%d available=%d)", ev.Kind, ev.A, ev.B, ev.C)
	}
	fmt.Println()
}
