package main

import (
	"encoding/json"
	"fmt"
	"os"

	"vqf/internal/analysis"
	"vqf/internal/harness"
)

// The kernels experiment benchmarks the fused hot-path kernels and records
// per-op samples; kernelgate compares two such recordings and fails on
// statistically significant slowdowns. Together they form the CI regression
// gate: the gate job runs `kernels` at the merge base and at HEAD, then
// `kernelgate -old base.json -new head.json`.

// kernelDoc is the BENCH_kernels.json schema, shared by writer and gate.
type kernelDoc struct {
	Experiment string                 `json:"experiment"`
	Env        harness.BenchEnv       `json:"env"`
	Log2Slots  uint                   `json:"log2_slots"`
	Load       float64                `json:"load"`
	Batch      int                    `json:"batch"`
	Reps       int                    `json:"reps"`
	Seed       uint64                 `json:"seed"`
	Results    []harness.KernelResult `json:"results"`
}

func runKernels(cfg config) {
	kcfg := harness.KernelConfig{
		NSlots: 1 << cfg.logSlotsRAM,
		Batch:  cfg.batch,
		Reps:   cfg.reps,
		Seed:   cfg.seed,
	}
	fmt.Printf("Fused-kernel microbenchmarks (2^%d slots, 85%% load, batch %d, %d reps)\n",
		cfg.logSlotsRAM, cfg.batch, cfg.reps)
	results := harness.RunKernels(kcfg)
	t := harness.NewTable("kernel", "Mops/s", "±95% CI")
	for _, r := range results {
		t.AddRow(r.Name, fmt.Sprintf("%.2f", r.Mops), fmt.Sprintf("%.2f", r.CI95))
	}
	emit(cfg, t)
	doc := kernelDoc{
		Experiment: "kernel-microbenchmarks",
		Env:        harness.CaptureEnv(),
		Log2Slots:  cfg.logSlotsRAM,
		Load:       0.85,
		Batch:      cfg.batch,
		Reps:       cfg.reps,
		Seed:       cfg.seed,
		Results:    results,
	}
	writeJSON(cfg, "kernels", doc)
}

func readKernelDoc(path string) (kernelDoc, error) {
	var doc kernelDoc
	buf, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

func runKernelGate(cfg config) {
	if cfg.oldJSON == "" || cfg.newJSON == "" {
		fmt.Fprintln(os.Stderr, "vqfbench: kernelgate requires -old and -new BENCH_kernels.json paths")
		os.Exit(2)
	}
	oldDoc, err := readKernelDoc(cfg.oldJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: kernelgate: %v\n", err)
		os.Exit(2)
	}
	newDoc, err := readKernelDoc(cfg.newJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: kernelgate: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("Kernel regression gate: %s vs %s (fail below -%.1f%% with non-overlapping 95%% CIs)\n",
		cfg.oldJSON, cfg.newJSON, cfg.gateThreshold)
	oldBy := make(map[string][]float64, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r.Samples
	}
	t := harness.NewTable("kernel", "old Mops/s", "new Mops/s", "delta %", "verdict")
	regressed := 0
	for _, nr := range newDoc.Results {
		olds, ok := oldBy[nr.Name]
		if !ok {
			t.AddRow(nr.Name, "-", fmt.Sprintf("%.2f", nr.Mops), "-", "new")
			continue
		}
		d, err := analysis.CompareBenchChecked(olds, nr.Samples)
		if err != nil {
			// An unmeasurable comparison must stop the gate, not sail through
			// with infinite intervals that can never flag a regression.
			fmt.Fprintf(os.Stderr, "vqfbench: kernelgate: %s: %v\n", nr.Name, err)
			os.Exit(2)
		}
		verdict := "~" // no significant change
		switch {
		case d.Regression(cfg.gateThreshold):
			verdict = "REGRESSION"
			regressed++
		case d.Significant && d.DeltaPct > 0:
			verdict = "improved"
		case d.Significant:
			verdict = "slower (within threshold)"
		}
		t.AddRow(nr.Name,
			fmt.Sprintf("%.2f ±%.2f", d.OldMean, d.OldCI),
			fmt.Sprintf("%.2f ±%.2f", d.NewMean, d.NewCI),
			fmt.Sprintf("%+.1f", d.DeltaPct), verdict)
	}
	emit(cfg, t)
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "vqfbench: kernelgate: %d kernel(s) regressed more than %.1f%%\n",
			regressed, cfg.gateThreshold)
		os.Exit(1)
	}
	fmt.Println("gate passed: no significant regression beyond threshold")
}
