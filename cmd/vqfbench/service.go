package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"vqf/internal/harness"
	"vqf/internal/service"
	"vqf/internal/workload"
)

// The service experiment measures the vqfd daemon end to end: an
// in-process server on loopback, a sharded filter prefilled to ~70%, and
// a closed-loop multi-connection client sweep over protocol × batch size.
// The headline ratio — binary batched vs HTTP per-key — is the design
// argument for the second listener: the batched wire path must deliver at
// least 5× the single-key HTTP throughput or the run fails loudly.

// serviceDoc is the BENCH_service.json schema.
type serviceDoc struct {
	Experiment string                 `json:"experiment"`
	Env        harness.BenchEnv       `json:"env"`
	Log2Slots  uint                   `json:"log2_slots"`
	Conns      int                    `json:"conns"`
	Ops        int                    `json:"ops"`
	Seed       uint64                 `json:"seed"`
	Prefill    uint64                 `json:"prefill_items"`
	Points     []harness.ServicePoint `json:"points"`
	// SpeedupBinary512VsHTTP1 is binary@batch512 Mops over http@batch1 Mops.
	SpeedupBinary512VsHTTP1 float64 `json:"speedup_binary512_vs_http1"`
}

// serviceBatches is the batch-size grid, shared with the docs.
var serviceBatches = []int{1, 64, 512}

func runService(cfg config) {
	srv, err := service.New(service.Config{
		HTTPAddr:   "127.0.0.1:0",
		BinaryAddr: "127.0.0.1:0",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: service: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: service: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	const filterName = "bench"
	nSlots := uint64(1) << cfg.logSlotsCache
	prefill := nSlots * 70 / 100
	info, err := srv.Registry().Create(service.Spec{
		Name: filterName, Kind: service.KindSharded, Capacity: nSlots, Seed: cfg.seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: service: create: %v\n", err)
		os.Exit(1)
	}
	// Prefill through the service itself (binary client, large batches) so
	// the measured filter took the same path a real daemon's would.
	loader, err := service.Dial(srv.BinaryAddr())
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: service: dial: %v\n", err)
		os.Exit(1)
	}
	keys := workload.NewStream(cfg.seed).Keys(int(prefill))
	for lo := 0; lo < len(keys); lo += 1 << 14 {
		hi := lo + 1<<14
		if hi > len(keys) {
			hi = len(keys)
		}
		if _, err := loader.Insert(filterName, keys[lo:hi]); err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: service: prefill: %v\n", err)
			os.Exit(1)
		}
	}
	loader.Close()

	httpBase := "http://" + srv.HTTPAddr()
	fmt.Printf("Service protocols: closed-loop Contains, %d conns, %d ops per cell (2^%d slots sharded @%d shards, %.0f%% full; NumCPU=%d)\n",
		cfg.conns, cfg.queries, cfg.logSlotsCache, info.Shards, 100*float64(prefill)/float64(nSlots), runtime.NumCPU())

	// measureHTTP issues batched Contains over the JSON data plane, one
	// Admin client per connection.
	measureHTTP := func(batch int) (harness.ServicePoint, error) {
		admins := make([]*service.Admin, cfg.conns)
		for i := range admins {
			admins[i] = service.NewAdmin(httpBase)
		}
		return harness.RunServiceLoad(harness.ServiceConfig{
			Protocol: "http", Conns: cfg.conns, Ops: cfg.queries, Batch: batch, Seed: cfg.seed,
		}, func(conn int, keys []uint64) error {
			_, err := admins[conn].ContainsU64(filterName, keys)
			return err
		})
	}
	// measureBinary issues the same workload over the binary batch
	// protocol, one connection and reusable result buffer per goroutine.
	measureBinary := func(batch int) (harness.ServicePoint, error) {
		clients := make([]*service.Client, cfg.conns)
		founds := make([][]bool, cfg.conns)
		for i := range clients {
			c, err := service.Dial(srv.BinaryAddr())
			if err != nil {
				return harness.ServicePoint{}, err
			}
			defer c.Close()
			clients[i] = c
		}
		return harness.RunServiceLoad(harness.ServiceConfig{
			Protocol: "binary", Conns: cfg.conns, Ops: cfg.queries, Batch: batch, Seed: cfg.seed,
		}, func(conn int, keys []uint64) error {
			found, err := clients[conn].Contains(filterName, keys, founds[conn])
			founds[conn] = found
			return err
		})
	}

	var points []harness.ServicePoint
	t := harness.NewTable("protocol", "batch", "Mops", "req-p50", "req-p99")
	measure := func(run func(int) (harness.ServicePoint, error), batch int) {
		p, err := run(batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: service: %v\n", err)
			os.Exit(1)
		}
		points = append(points, p)
		t.AddRow(p.Protocol, p.Batch, fmt.Sprintf("%.3f", p.Mops),
			fmt.Sprintf("%dns", p.RequestLatency.P50), fmt.Sprintf("%dns", p.RequestLatency.P99))
	}
	for _, b := range serviceBatches {
		measure(measureHTTP, b)
	}
	for _, b := range serviceBatches {
		measure(measureBinary, b)
	}
	emit(cfg, t)

	mops := func(proto string, batch int) float64 {
		for _, p := range points {
			if p.Protocol == proto && p.Batch == batch {
				return p.Mops
			}
		}
		return 0
	}
	speedup := mops("binary", 512) / mops("http", 1)
	fmt.Printf("binary@512 vs http@1: %.1fx\n", speedup)
	if speedup < 5 {
		fmt.Fprintf(os.Stderr, "vqfbench: service: batched binary path is only %.1fx the single-key HTTP path (want >=5x)\n", speedup)
		os.Exit(1)
	}

	writeJSON(cfg, "service", serviceDoc{
		Experiment:              "service-protocols",
		Env:                     harness.CaptureEnv(),
		Log2Slots:               cfg.logSlotsCache,
		Conns:                   cfg.conns,
		Ops:                     cfg.queries,
		Seed:                    cfg.seed,
		Prefill:                 prefill,
		Points:                  points,
		SpeedupBinary512VsHTTP1: speedup,
	})
}
