package main

import (
	"fmt"

	"vqf"
	"vqf/internal/harness"
	"vqf/internal/telemetry"
)

// The observe experiment validates the telemetry layer's own claims:
// sampling-gate overhead per rate against a sampling-off baseline from the
// same run, and histogram quantile accuracy against an exact-sample oracle.
// BENCH_observe.json is the artifact backing the "default-rate overhead
// under 2%" and "quantiles within one bucket" statements in DESIGN.md.

// observeDoc is the BENCH_observe.json schema.
type observeDoc struct {
	Experiment string                `json:"experiment"`
	Env        harness.BenchEnv      `json:"env"`
	Log2Slots  uint                  `json:"log2_slots"`
	Reps       int                   `json:"reps"`
	Rates      []int                 `json:"rates"`
	Seed       uint64                `json:"seed"`
	Result     harness.ObserveResult `json:"result"`
}

func runObserve(cfg config) {
	ocfg := harness.ObserveConfig{
		NewFilter: func(rate int) harness.ObserveFilter {
			return vqf.NewConcurrent(1<<cfg.logSlotsCache, vqf.WithLatencySampling(rate))
		},
		LookupSummary: func(f harness.ObserveFilter) (telemetry.Summary, bool) {
			snap := f.(*vqf.Filter).Latency()
			return snap.Lookup, snap.SamplingRate > 0
		},
		Reps: cfg.reps,
		Seed: cfg.seed,
	}
	ocfg = observeDefaults(ocfg)
	fmt.Printf("Telemetry overhead and accuracy (2^%d slots, 85%% load, %d reps, rates %v)\n",
		cfg.logSlotsCache, ocfg.Reps, ocfg.Rates)
	res := harness.RunObserve(ocfg)
	t := harness.NewTable("rate", "insert", "±ci95", "overhead%", "lookup", "±ci95", "overhead%")
	for _, p := range res.Points {
		label := fmt.Sprintf("1/%d", p.Rate)
		if p.Rate == 0 {
			label = "off"
		}
		t.AddRow(label,
			fmt.Sprintf("%.2f", p.InsertMops), fmt.Sprintf("%.2f", p.InsertCI95),
			fmt.Sprintf("%.2f", p.InsertOverheadPct),
			fmt.Sprintf("%.2f", p.LookupMops), fmt.Sprintf("%.2f", p.LookupCI95),
			fmt.Sprintf("%.2f", p.LookupOverheadPct))
	}
	emit(cfg, t)
	fmt.Println("histogram quantiles vs exact-sample oracle (every lookup timed):")
	a := harness.NewTable("quantile", "oracle(ns)", "hist(ns)", "bucket-delta")
	for _, q := range res.Accuracy {
		a.AddRow(q.Quantile, q.OracleNs, q.HistNs, q.BucketDelta)
	}
	emit(cfg, a)
	fmt.Printf("max |bucket delta|: %d (acceptance bound: <=1)\n", res.MaxAbsBucketDelta)
	doc := observeDoc{
		Experiment: "telemetry-overhead-accuracy",
		Env:        harness.CaptureEnv(),
		Log2Slots:  cfg.logSlotsCache,
		Reps:       ocfg.Reps,
		Rates:      ocfg.Rates,
		Seed:       cfg.seed,
		Result:     res,
	}
	writeJSON(cfg, "observe", doc)
}

// observeDefaults materializes the rate ladder so the printed header and the
// JSON stamp show the rates actually run.
func observeDefaults(ocfg harness.ObserveConfig) harness.ObserveConfig {
	if len(ocfg.Rates) == 0 {
		ocfg.Rates = []int{0, 64, 8, 1}
	}
	if ocfg.Reps == 0 {
		ocfg.Reps = 5
	}
	return ocfg
}
