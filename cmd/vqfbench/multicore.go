package main

import (
	"fmt"
	"runtime"

	"vqf/internal/harness"
)

// The multicore experiment is the repo's parallel-scaling story: locked vs
// optimistic vs sharded filters across a GOMAXPROCS ladder, with per-row
// scaling efficiency. BENCH_multicore.json embeds the BenchEnv stamp, so a
// run from an underprovisioned host is self-describing (and the run itself
// warns loudly on stderr).

// multicoreDoc is the BENCH_multicore.json schema.
type multicoreDoc struct {
	Experiment   string                     `json:"experiment"`
	Env          harness.BenchEnv           `json:"env"`
	Log2Slots    uint                       `json:"log2_slots"`
	OpsPerThread int                        `json:"ops_per_thread"`
	Repeat       int                        `json:"repeat"`
	Shards       int                        `json:"shards"`
	Threads      []int                      `json:"threads"`
	Seed         uint64                     `json:"seed"`
	Variants     []harness.MulticoreVariant `json:"variants"`
}

// multicoreThreads builds the GOMAXPROCS ladder {1, 2, 4, 8, NumCPU},
// deduplicated and ascending. The ladder is NOT clamped to NumCPU: on an
// underprovisioned host the high rows still run (RunMulticore warns loudly
// per row, and the env stamp in the JSON records the real CPU count) so the
// artifact always carries the full ladder and its honest, time-sliced
// numbers rather than silently omitting the interesting rows.
func multicoreThreads() []int {
	out := []int{1, 2, 4, 8}
	n := runtime.NumCPU()
	for i, t := range out {
		if t == n {
			return out
		}
		if t > n {
			return append(append(append([]int{}, out[:i]...), n), out[i:]...)
		}
	}
	return append(out, n)
}

func runMulticore(cfg config) {
	threads := multicoreThreads()
	mcfg := harness.MulticoreConfig{
		NSlots:       1 << cfg.logSlotsCache,
		Threads:      threads,
		OpsPerThread: cfg.queries,
		Repeat:       cfg.repeat,
		Seed:         cfg.seed,
		Shards:       8,
	}
	fmt.Printf("Multicore scaling: locked vs optimistic vs sharded (2^%d slots, %d shards; NumCPU=%d, GOMAXPROCS ladder %v)\n",
		cfg.logSlotsCache, mcfg.Shards, runtime.NumCPU(), threads)
	variants := harness.RunMulticore(mcfg)
	for _, v := range variants {
		fmt.Printf("variant: %s\n", v.Variant)
		t := harness.NewTable("threads", "insert", "eff", "lookup", "eff", "batch-lookup", "eff")
		for _, p := range v.Points {
			t.AddRow(p.Threads,
				fmt.Sprintf("%.2f", p.InsertMops), fmt.Sprintf("%.2f", p.InsertEff),
				fmt.Sprintf("%.2f", p.LookupMops), fmt.Sprintf("%.2f", p.LookupEff),
				fmt.Sprintf("%.2f", p.BatchMops), fmt.Sprintf("%.2f", p.BatchEff))
		}
		emit(cfg, t)
	}
	doc := multicoreDoc{
		Experiment:   "multicore-scaling",
		Env:          harness.CaptureEnv(),
		Log2Slots:    cfg.logSlotsCache,
		OpsPerThread: cfg.queries,
		Repeat:       cfg.repeat,
		Shards:       mcfg.Shards,
		Threads:      threads,
		Seed:         cfg.seed,
		Variants:     variants,
	}
	writeJSON(cfg, "multicore", doc)
}
