package main

import (
	"fmt"
	"os"

	"vqf/internal/oracle"
)

// The oracle experiment runs the differential/metamorphic verification
// campaign (internal/oracle) outside go test, with budgets scaled by flags
// instead of -short/-oracle.long: CI soak jobs run it with large budgets,
// and a post-change sanity run uses the defaults. Every property violation
// is reported with its seed and its shrunk repro trace path; the process
// exits 1 if any property failed.
func runOracle(cfg config) {
	ocfg := oracle.Config{
		Seed:     cfg.seed,
		Rounds:   cfg.oracleRounds,
		Ops:      cfg.oracleOps,
		Universe: cfg.oracleUniverse,
		ReproDir: cfg.oracleDir,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	fmt.Printf("Verification campaign: %d rounds x %d ops (universe %d, seed %#x)\n",
		ocfg.Rounds, ocfg.Ops, ocfg.Universe, ocfg.Seed)
	failures := oracle.Run(ocfg)
	if len(failures) == 0 {
		fmt.Println("all properties hold across all subjects")
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		if f.ReproPath != "" {
			fmt.Fprintf(os.Stderr, "     repro: %s\n", f.ReproPath)
		}
	}
	fmt.Fprintf(os.Stderr, "oracle: %d propert%s violated\n",
		len(failures), map[bool]string{true: "y", false: "ies"}[len(failures) == 1])
	os.Exit(1)
}
