// Command vqfbench regenerates every table and figure of the vector quotient
// filter paper's evaluation (Section 7) plus the analytic artifacts of
// Sections 5–6. Each experiment is a subcommand; `vqfbench all` runs the full
// suite. Output is aligned text (or CSV with -csv) with one series per paper
// line or bar.
//
// Usage:
//
//	vqfbench [flags] <experiment>
//
// Experiments:
//
//	table1   analytic bits-per-item formulas (Table 1)
//	fig2     false-positive rate vs bits per element (Figure 2)
//	fig3     mini-filter overhead vs s/b ratio (Figure 3)
//	table2   empirical space, FPR and efficiency (Table 2)
//	fig4     in-RAM throughput vs load factor (Figure 4a–d)
//	fig5     in-cache throughput vs load factor (Figure 5a–d)
//	fig6     aggregate throughput, 8/16-bit × RAM/cache (Figure 6a–d)
//	table3   write-heavy mixed workload at 90% load (Table 3)
//	table4   multi-threaded insert scaling (Table 4)
//	concurrent reader-scaling sweep, locked vs optimistic lookups (writes JSON)
//	observe  telemetry-layer overhead and quantile accuracy (writes JSON)
//	service  vqfd daemon protocols: HTTP/JSON vs binary batches (writes JSON)
//	elastic  online-growth cascade: throughput and FPR across growth events (writes JSON)
//	compact  cascade compaction: negative-lookup recovery after churn (writes JSON)
//	freeze   frozen tier: churned vs compacted vs fuse-frozen cascade (writes JSON)
//	maxload  maximum load factor per design variant (§3.4, §6.2)
//	choices  block-occupancy dispersion: two-choice vs single (Theorem 1)
//	ablation SWAR vs scalar block operations (§7.7 analog)
//	all      everything above
package main

import (
	"encoding/json"
	_ "expvar" // registers /debug/vars on the -httpserve endpoint
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the -httpserve endpoint
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"vqf/internal/analysis"
	"vqf/internal/elastic"
	"vqf/internal/harness"
	"vqf/internal/stats"
	"vqf/internal/swar"
)

type config struct {
	logSlotsRAM    uint
	logSlotsCache  uint
	queries        int
	mixedOps       int
	probes         int
	seed           uint64
	csv            bool
	which          string
	repeat         int
	batch          int
	reps           int
	oldJSON        string
	newJSON        string
	gateThreshold  float64
	benchout       string
	oracleRounds   int
	oracleOps      int
	oracleUniverse int
	oracleDir      string
	conns          int
	cpuprofile     string
	memprofile     string
	mutexprofile   string
	httpserve      string
	kernelsImpl    string
}

func main() {
	var cfg config
	fs := flag.NewFlagSet("vqfbench", flag.ExitOnError)
	fs.UintVar(&cfg.logSlotsRAM, "logslots", 22,
		"log2 of slot count for in-RAM experiments (paper: 28)")
	fs.UintVar(&cfg.logSlotsCache, "cachelogslots", 19,
		"log2 of slot count for in-cache experiments (paper: 22)")
	fs.IntVar(&cfg.queries, "queries", 200000, "lookups per sweep measurement point")
	fs.IntVar(&cfg.mixedOps, "ops", 3000000, "operations for the table3 mixed workload (paper: 100M)")
	fs.IntVar(&cfg.probes, "probes", 2000000, "random probes for table2 FPR measurement")
	fs.Uint64Var(&cfg.seed, "seed", 42, "workload seed")
	fs.StringVar(&cfg.which, "which", "", "fig6 sub-panel: a, b, c or d (default: all four)")
	fs.IntVar(&cfg.repeat, "repeat", 1, "repetitions to average for fig4/fig5 sweeps")
	fs.IntVar(&cfg.batch, "batch", 1<<14, "keys per sequential batch call for the kernels experiment")
	fs.IntVar(&cfg.reps, "reps", 5, "timed samples per op for the kernels experiment")
	fs.StringVar(&cfg.oldJSON, "old", "", "baseline BENCH_kernels.json for kernelgate")
	fs.StringVar(&cfg.newJSON, "new", "", "candidate BENCH_kernels.json for kernelgate")
	fs.Float64Var(&cfg.gateThreshold, "gatethreshold", 5.0,
		"kernelgate failure threshold: max tolerated significant slowdown in percent")
	fs.BoolVar(&cfg.csv, "csv", false, "emit CSV instead of aligned text")
	fs.StringVar(&cfg.benchout, "benchout", "auto",
		"output file for JSON-emitting experiments (fig4, fig5, concurrent, elastic, choices); \"auto\" writes BENCH_<experiment>.json, empty skips")
	fs.IntVar(&cfg.oracleRounds, "oracle-rounds", 4, "oracle: traces per (subject, property) pair")
	fs.IntVar(&cfg.oracleOps, "oracle-ops", 8000, "oracle: operations per trace")
	fs.IntVar(&cfg.oracleUniverse, "oracle-universe", 2000, "oracle: distinct keys per trace")
	fs.StringVar(&cfg.oracleDir, "oracle-dir", "oracle-repros", "oracle: directory for shrunk repro traces (empty skips)")
	fs.IntVar(&cfg.conns, "conns", 8, "concurrent client connections for the service experiment")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write an end-of-run heap profile to this file")
	fs.StringVar(&cfg.mutexprofile, "mutexprofile", "", "write an end-of-run mutex-contention profile to this file")
	fs.StringVar(&cfg.httpserve, "httpserve", "",
		"serve /metrics (Prometheus, live filters), /debug/pprof/ and /debug/vars on this address (e.g. 127.0.0.1:8080) while experiments run")
	fs.StringVar(&cfg.kernelsImpl, "kernels-impl", "auto",
		"kernel implementation: auto (assembly where built in), asm (require assembly), generic (portable Go)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vqfbench [flags] <experiment>\n\nexperiments: table1 fig2 fig3 table2 fig4 fig5 fig6 table3 table4 concurrent elastic compact freeze maxload maxloadscale choices ablation kernels kernelgate multicore observe oracle service all\n\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	switch cfg.kernelsImpl {
	case "auto":
	case "asm":
		if !swar.HasAsmKernels() {
			fmt.Fprintln(os.Stderr, "vqfbench: -kernels-impl=asm but this build has no assembly kernels (GOARCH or purego)")
			os.Exit(2)
		}
		swar.SetAsmKernels(true)
	case "generic":
		swar.SetAsmKernels(false)
	default:
		fmt.Fprintf(os.Stderr, "vqfbench: unknown -kernels-impl %q (want auto, asm or generic)\n", cfg.kernelsImpl)
		os.Exit(2)
	}

	if cfg.httpserve != "" {
		serveHTTP(cfg.httpserve)
	}
	stopProfiles := startProfiles(cfg)
	defer stopProfiles()

	cmd := fs.Arg(0)
	experiments := map[string]func(config){
		"table1":       runTable1,
		"fig2":         runFig2,
		"fig3":         runFig3,
		"table2":       runTable2,
		"fig4":         runFig4,
		"fig5":         runFig5,
		"fig6":         runFig6,
		"table3":       runTable3,
		"table4":       runTable4,
		"concurrent":   runConcurrent,
		"elastic":      runElastic,
		"compact":      runCompact,
		"freeze":       runFreeze,
		"maxload":      runMaxLoad,
		"maxloadscale": runMaxLoadScale,
		"choices":      runChoices,
		"ablation":     runAblation,
		"kernels":      runKernels,
		"kernelgate":   runKernelGate,
		"multicore":    runMulticore,
		"observe":      runObserve,
		"oracle":       runOracle,
		"service":      runService,
	}
	if cmd == "all" {
		for _, name := range []string{"table1", "fig2", "fig3", "table2", "fig4",
			"fig5", "fig6", "table3", "table4", "elastic", "maxload", "choices", "ablation"} {
			fmt.Printf("==== %s ====\n", name)
			experiments[name](cfg)
			fmt.Println()
		}
		return
	}
	run, ok := experiments[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "vqfbench: unknown experiment %q\n", cmd)
		fs.Usage()
		os.Exit(2)
	}
	run(cfg)
}

// serveHTTP starts the observability endpoint: /metrics renders Prometheus
// snapshots of the filters the running experiments have registered
// (harness.Observe), and the expvar/pprof imports contribute /debug/vars and
// /debug/pprof/. The listener is bound before the experiments start so the
// printed address is scrapeable for the whole run.
func serveHTTP(addr string) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", stats.ContentType)
		if err := harness.WriteObservedMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: listen %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Printf("serving metrics on http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: http serve: %v\n", err)
		}
	}()
}

// startProfiles begins the profiles requested by -cpuprofile, -memprofile
// and -mutexprofile, returning a function that finalizes them after the
// experiments complete.
func startProfiles(cfg config) func() {
	var cpuFile *os.File
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	if cfg.mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	writeProfile := func(name, path string, gcFirst bool) {
		if path == "" {
			return
		}
		if gcFirst {
			runtime.GC() // materialize reachable-heap numbers
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: %s profile: %v\n", name, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "vqfbench: %s profile: %v\n", name, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		writeProfile("heap", cfg.memprofile, true)
		writeProfile("mutex", cfg.mutexprofile, false)
	}
}

// benchPath resolves -benchout for one experiment: "auto" maps to
// BENCH_<experiment>.json, empty disables JSON output, anything else is used
// verbatim.
func benchPath(cfg config, experiment string) string {
	if cfg.benchout == "auto" {
		return "BENCH_" + experiment + ".json"
	}
	return cfg.benchout
}

// writeJSON marshals doc to the resolved -benchout path for experiment,
// doing nothing if JSON output is disabled.
func writeJSON(cfg config, experiment string, doc any) {
	path := benchPath(cfg, experiment)
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: marshal results: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "vqfbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

func emit(cfg config, t *harness.Table) {
	if cfg.csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}

func runTable1(cfg config) {
	fmt.Println("Table 1: analytic space usage (bits per item)")
	t := harness.NewTable("eps", "bloom", "quotient", "cuckoo", "morton", "vqf")
	for _, eps := range []float64{1.0 / 256, 1.0 / 1024, 1.0 / 65536} {
		b := analysis.Table1(eps)
		t.AddRow(fmt.Sprintf("2^%.0f", -log2(eps)), b.Bloom, b.Quotient, b.Cuckoo, b.Morton, b.VQF)
	}
	emit(cfg, t)
}

func runFig2(cfg config) {
	fmt.Println("Figure 2: -log2(FPR) vs bits per element (higher is better)")
	t := harness.NewTable("bits/elem", "vqf", "quotient", "cuckoo", "bloom")
	for _, p := range analysis.Figure2(5, 25, 1) {
		t.AddRow(p.BitsPerElement, p.VQF, p.Quotient, p.Cuckoo, p.Bloom)
	}
	emit(cfg, t)
}

func runFig3(cfg config) {
	fmt.Println("Figure 3: mini-filter overhead bits vs s/b (lower is better)")
	t := harness.NewTable("s/b", "log2(s/b)+b/s")
	for _, p := range analysis.Figure3(0.5, 1.0, 0.025) {
		t.AddRow(fmt.Sprintf("%.3f", p.Ratio), p.Overhead)
	}
	emit(cfg, t)
	fmt.Printf("optimal: s/b = ln2 = %.4f -> %.4f bits\n",
		analysis.OptimalRatio(), analysis.OverheadBits(analysis.OptimalRatio()))
	for _, c := range analysis.ChosenConfigs() {
		fmt.Printf("chosen:  s=%d b=%d (s/b=%.3f) -> %.4f bits\n", c.S, c.B, c.Ratio, c.Overhead)
	}
}

func runTable2(cfg config) {
	fmt.Printf("Table 2: empirical space and FPR (2^%d slots)\n", cfg.logSlotsRAM)
	for _, set := range []struct {
		label string
		specs []harness.Spec
	}{
		{"target FPR 2^-8", append(harness.SpecsFPR8(), harness.SpecBloom8())},
		{"target FPR 2^-16", harness.SpecsFPR16()},
	} {
		fmt.Println(set.label)
		t := harness.NewTable("filter", "items", "log2(FPR)", "space(MB)", "bits/key", "efficiency")
		for _, row := range harness.RunSpace(set.specs, 1<<cfg.logSlotsRAM, cfg.probes, cfg.seed) {
			t.AddRow(row.Name, row.Items, row.LogFPR, row.SpaceMB, row.BitsPerKey, row.Efficiency)
		}
		emit(cfg, t)
	}
}

func sweepTables(cfg config, logSlots uint, specs []harness.Spec) []harness.SweepResult {
	results := make([]harness.SweepResult, 0, len(specs))
	for _, spec := range specs {
		results = append(results,
			harness.RunSweepAveraged(spec, 1<<logSlots, cfg.queries, cfg.repeat, cfg.seed))
	}
	panels := []struct {
		label string
		pick  func(harness.SweepPoint) float64
	}{
		{"(a) insertion Mops/s", func(p harness.SweepPoint) float64 { return p.InsertMops }},
		{"(b) deletion Mops/s", func(p harness.SweepPoint) float64 { return p.DeleteMops }},
		{"(c) successful lookup Mops/s", func(p harness.SweepPoint) float64 { return p.PosLookupMops }},
		{"(d) random lookup Mops/s", func(p harness.SweepPoint) float64 { return p.RandLookupMops }},
	}
	for _, panel := range panels {
		fmt.Println(panel.label)
		header := []string{"load%"}
		for _, r := range results {
			header = append(header, r.Name)
		}
		t := harness.NewTable(header...)
		for i := 0; ; i++ {
			row := []any{(i + 1) * 5}
			any := false
			for _, r := range results {
				if i < len(r.Points) {
					row = append(row, panel.pick(r.Points[i]))
					any = true
				} else {
					row = append(row, "-")
				}
			}
			if !any {
				break
			}
			t.AddRow(row...)
		}
		emit(cfg, t)
	}
	return results
}

// sweepDoc is the JSON document fig4/fig5 emit: the full sweep series per
// filter plus, for the VQF variants, the operation-counter totals of the
// final repetition's sweep (stats field of each result).
type sweepDoc struct {
	Experiment string                `json:"experiment"`
	Env        harness.BenchEnv      `json:"env"`
	Log2Slots  uint                  `json:"log2_slots"`
	Queries    int                   `json:"queries_per_point"`
	Repeat     int                   `json:"repeat"`
	Seed       uint64                `json:"seed"`
	Results    []harness.SweepResult `json:"results"`
}

func runFig4(cfg config) {
	fmt.Printf("Figure 4: in-RAM throughput vs load factor (2^%d slots, FPR 2^-8)\n", cfg.logSlotsRAM)
	results := sweepTables(cfg, cfg.logSlotsRAM, harness.SpecsFPR8())
	writeJSON(cfg, "fig4", sweepDoc{"fig4-load-sweep-ram", harness.CaptureEnv(), cfg.logSlotsRAM, cfg.queries, cfg.repeat, cfg.seed, results})
}

func runFig5(cfg config) {
	fmt.Printf("Figure 5: in-cache throughput vs load factor (2^%d slots, FPR 2^-8)\n", cfg.logSlotsCache)
	results := sweepTables(cfg, cfg.logSlotsCache, harness.SpecsFPR8())
	writeJSON(cfg, "fig5", sweepDoc{"fig5-load-sweep-cache", harness.CaptureEnv(), cfg.logSlotsCache, cfg.queries, cfg.repeat, cfg.seed, results})
}

func runFig6(cfg config) {
	panels := map[string]struct {
		label    string
		logSlots uint
		specs    []harness.Spec
	}{
		"a": {"Figure 6a: aggregate, RAM, FPR 2^-8", cfg.logSlotsRAM,
			append([]harness.Spec{harness.SpecVQF8Generic()}, harness.SpecsFPR8()...)},
		"b": {"Figure 6b: aggregate, cache, FPR 2^-8", cfg.logSlotsCache,
			append([]harness.Spec{harness.SpecVQF8Generic()}, harness.SpecsFPR8()...)},
		"c": {"Figure 6c: aggregate, RAM, FPR 2^-16", cfg.logSlotsRAM,
			append([]harness.Spec{harness.SpecVQF16Generic()}, harness.SpecsFPR16()...)},
		"d": {"Figure 6d: aggregate, cache, FPR 2^-16", cfg.logSlotsCache,
			append([]harness.Spec{harness.SpecVQF16Generic()}, harness.SpecsFPR16()...)},
	}
	order := []string{"a", "b", "c", "d"}
	if cfg.which != "" {
		order = strings.Split(cfg.which, "")
	}
	for _, key := range order {
		p, ok := panels[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "vqfbench: unknown fig6 panel %q\n", key)
			os.Exit(2)
		}
		fmt.Println(p.label)
		t := harness.NewTable("filter", "insert", "pos-lookup", "rand-lookup", "delete")
		for _, spec := range p.specs {
			r := harness.RunAggregate(spec, 1<<p.logSlots, cfg.seed)
			if r.Failed {
				t.AddRow(r.Name, "FAILED", "-", "-", "-")
				continue
			}
			t.AddRow(r.Name, r.InsertMops, r.PosLookupMops, r.RandLookupMops, r.DeleteMops)
		}
		emit(cfg, t)
	}
}

func runTable3(cfg config) {
	fmt.Printf("Table 3: write-heavy mixed workload at 90%% load (%d ops, 2^%d slots)\n",
		cfg.mixedOps, cfg.logSlotsRAM)
	t := harness.NewTable("filter", "Mops/s")
	for _, spec := range []harness.Spec{
		harness.SpecVQF8Shortcut(), harness.SpecCF12(), harness.SpecMF8(),
	} {
		r := harness.RunMixed(spec, 1<<cfg.logSlotsRAM, cfg.mixedOps, cfg.seed)
		if r.Failed {
			t.AddRow(r.Name, "FAILED")
			continue
		}
		t.AddRow(r.Name, r.Mops)
	}
	emit(cfg, t)
}

func runTable4(cfg config) {
	fmt.Printf("Table 4: concurrent insert scaling (2^%d slots; GOMAXPROCS=%d, physical cores gate real scaling)\n",
		cfg.logSlotsRAM, runtime.GOMAXPROCS(0))
	t := harness.NewTable("threads", "Mops/s")
	for _, r := range harness.RunThreadScaling(1<<cfg.logSlotsRAM, []int{1, 2, 3, 4}, cfg.seed) {
		t.AddRow(r.Threads, r.Mops)
	}
	emit(cfg, t)
}

func runConcurrent(cfg config) {
	fmt.Printf("Concurrent reader scaling: locked vs optimistic lookups (2^%d slots, 85%% load, %d ops/goroutine; GOMAXPROCS=%d)\n",
		cfg.logSlotsCache, cfg.queries, runtime.GOMAXPROCS(0))
	threads := []int{1, 2, 4, 8}
	results := harness.RunReaderScaling(1<<cfg.logSlotsCache, threads, cfg.queries, cfg.repeat, cfg.seed)
	t := harness.NewTable("threads", "lookup-locked", "lookup-opt", "mixed90-locked", "mixed90-opt")
	for _, r := range results {
		t.AddRow(r.Threads, r.LookupLockedMops, r.LookupOptMops, r.MixedLockedMops, r.MixedOptMops)
	}
	emit(cfg, t)
	doc := struct {
		Experiment   string                        `json:"experiment"`
		Env          harness.BenchEnv              `json:"env"`
		Log2Slots    uint                          `json:"log2_slots"`
		OpsPerThread int                           `json:"ops_per_thread"`
		Seed         uint64                        `json:"seed"`
		Results      []harness.ReaderScalingResult `json:"results"`
	}{"concurrent-reader-scaling", harness.CaptureEnv(), cfg.logSlotsCache, cfg.queries, cfg.seed, results}
	writeJSON(cfg, "concurrent", doc)
}

func runElastic(cfg config) {
	// Start small enough (relative to -logslots) that the fill passes through
	// several growth events; with growth factor 2 the cascade reaches the
	// target item count after four to five levels.
	initialSlots := uint64(1) << (cfg.logSlotsCache - 3)
	totalItems := uint64(1) << cfg.logSlotsCache
	ecfg := elastic.Config{TargetFPR: 1.0 / 256, InitialSlots: initialSlots}
	fmt.Printf("Elastic growth: %d items through an initial capacity of %d slots (target FPR 2^-8)\n",
		totalItems, initialSlots)
	res := harness.RunGrowth(ecfg, totalItems, cfg.probes, cfg.queries, cfg.seed)
	t := harness.NewTable("levels", "items", "insert", "pos-lookup", "rand-lookup", "measured FPR", "bits/item")
	for _, s := range res.Segments {
		t.AddRow(s.Levels, s.Items, s.InsertMops, s.PosLookupMops, s.RandLookupMops,
			fmt.Sprintf("%.2e", s.MeasuredFPR), s.BitsPerItem)
	}
	emit(cfg, t)
	if res.Failed {
		fmt.Println("insert failed before reaching the target item count")
	}
	fmt.Printf("growth events: %d; FPR budget: %.2e (every checkpoint must stay below it)\n",
		res.GrowthEvents, res.TargetFPR)
	doc := struct {
		Experiment string               `json:"experiment"`
		Env        harness.BenchEnv     `json:"env"`
		Probes     int                  `json:"probes"`
		Queries    int                  `json:"queries_per_point"`
		Seed       uint64               `json:"seed"`
		Result     harness.GrowthResult `json:"result"`
	}{"elastic-growth", harness.CaptureEnv(), cfg.probes, cfg.queries, cfg.seed, res}
	writeJSON(cfg, "elastic", doc)
}

func runCompact(cfg config) {
	// Start far smaller than runElastic so the fill stacks many levels: the
	// point is a long churned cascade (≥6 levels) whose negative lookups pay
	// one block probe per level before compaction collapses it.
	initialSlots := uint64(1) << (cfg.logSlotsCache - 8)
	totalItems := uint64(1) << cfg.logSlotsCache
	probes := cfg.probes
	if probes < 1_000_000 {
		probes = 1_000_000 // FPR must be measured over at least a million probes
	}
	ecfg := elastic.Config{TargetFPR: 1.0 / 256, InitialSlots: initialSlots}
	fmt.Printf("Cascade compaction: %d items through an initial capacity of %d slots, then 75%% removed oldest-first\n",
		totalItems, initialSlots)
	res := harness.RunCompact(ecfg, totalItems, 0.75, probes, cfg.queries, cfg.seed)
	t := harness.NewTable("phase", "levels", "items", "neg-lookup", "pos-lookup", "measured FPR", "bits/item")
	for _, row := range []struct {
		name string
		s    harness.CompactSide
	}{{"before", res.Before}, {"after", res.After}} {
		t.AddRow(row.name, row.s.Levels, row.s.Items, row.s.NegLookupMops, row.s.PosLookupMops,
			fmt.Sprintf("%.2e", row.s.MeasuredFPR), row.s.BitsPerItem)
	}
	emit(cfg, t)
	if res.Failed {
		fmt.Println("compaction run FAILED: a live key went missing or an op was rejected")
	}
	fmt.Printf("merged %d levels in %.1f ms; negative-lookup speedup %.2fx (FPR budget %.2e)\n",
		res.LevelsMerged, res.CompactMs, res.NegSpeedup, res.TargetFPR)
	doc := struct {
		Experiment string                `json:"experiment"`
		Env        harness.BenchEnv      `json:"env"`
		Probes     int                   `json:"probes"`
		Queries    int                   `json:"queries_per_point"`
		Seed       uint64                `json:"seed"`
		Result     harness.CompactResult `json:"result"`
	}{"cascade-compaction", harness.CaptureEnv(), probes, cfg.queries, cfg.seed, res}
	writeJSON(cfg, "compact", doc)
}

func runFreeze(cfg config) {
	// The lsmstore churn: fill an 8-level cascade to ~90% of the next growth
	// trigger, then drop the oldest 85% of keys the way an LSM store retires
	// runs — every 16th old key survives as a long-lived straggler. Two
	// identically churned twins are then maintained both ways: CompactNow
	// (the all-VQF baseline) versus FreezeNow on the churned state (the
	// mixed VQF/fuse tier). The headline is bits/item against the churned
	// cascade and negative-lookup throughput against the compacted one.
	initialSlots := uint64(1) << (cfg.logSlotsCache - 8)
	// 195× the initial budget lands inside the 8-level regime (growth to a
	// 9th level would fire near 217×), so the insert-target level — the one
	// a freeze can never take — is well loaded when the churn stops.
	totalItems := initialSlots * 195
	probes := cfg.probes
	if probes < 1_000_000 {
		probes = 1_000_000 // FPR must be measured over at least a million probes
	}
	ecfg := elastic.Config{TargetFPR: 1.0 / 256, InitialSlots: initialSlots}
	fmt.Printf("Frozen tier: %d items through an initial capacity of %d slots, 85%% of runs retired oldest-first\n"+
		"(1/%d long-lived survivors), then compact vs freeze on churned twins\n",
		totalItems, initialSlots, harness.SurvivorStride)
	res := harness.RunFreeze(ecfg, totalItems, 0.85, probes, cfg.queries, cfg.seed)
	t := harness.NewTable("phase", "levels", "fuse", "items", "neg-lookup", "pos-lookup", "measured FPR", "bits/item")
	for _, row := range []struct {
		name string
		s    harness.FreezeSide
	}{{"churned", res.Churned}, {"compacted", res.Compacted}, {"frozen", res.Frozen}} {
		t.AddRow(row.name, row.s.Levels, row.s.FuseLevels, row.s.Items, row.s.NegLookupMops,
			row.s.PosLookupMops, fmt.Sprintf("%.2e", row.s.MeasuredFPR), row.s.BitsPerItem)
	}
	emit(cfg, t)
	if res.Failed {
		fmt.Println("freeze run FAILED: a live key went missing or an op was rejected")
	}
	fmt.Printf("froze %d levels into %d fuse levels in %.1f ms; bits/item %.2fx of churned, neg-lookup %.2fx of compacted (FPR budget %.2e)\n",
		res.LevelsFrozen, res.FuseLevels, res.FreezeMs,
		res.BitsRatioVsChurned, res.NegRatioVsCompacted, res.TargetFPR)
	doc := struct {
		Experiment string               `json:"experiment"`
		Env        harness.BenchEnv     `json:"env"`
		Probes     int                  `json:"probes"`
		Queries    int                  `json:"queries_per_point"`
		Seed       uint64               `json:"seed"`
		Result     harness.FreezeResult `json:"result"`
	}{"frozen-tier", harness.CaptureEnv(), probes, cfg.queries, cfg.seed, res}
	writeJSON(cfg, "freeze", doc)
}

func runMaxLoad(cfg config) {
	fmt.Printf("Max load factor by design variant (2^%d slots)\n", cfg.logSlotsRAM)
	t := harness.NewTable("config", "max load")
	for _, r := range harness.RunMaxLoad(1<<cfg.logSlotsRAM, cfg.seed) {
		t.AddRow(r.Config, fmt.Sprintf("%.4f", r.MaxLoad))
	}
	emit(cfg, t)
}

func runMaxLoadScale(cfg config) {
	fmt.Println("Max load factor vs filter scale (the xor trick's failure probability")
	fmt.Println("grows with filter size, §3.4; all values drop slowly as blocks multiply)")
	t := harness.NewTable("log2(slots)", "independent", "xor-trick", "shortcut-75%")
	for logSlots := uint(16); logSlots <= cfg.logSlotsRAM; logSlots += 2 {
		rows := harness.RunMaxLoad(1<<logSlots, cfg.seed)
		byName := map[string]float64{}
		for _, r := range rows {
			byName[r.Config] = r.MaxLoad
		}
		t.AddRow(logSlots,
			fmt.Sprintf("%.4f", byName["independent-hash, no shortcut"]),
			fmt.Sprintf("%.4f", byName["xor-trick, no shortcut"]),
			fmt.Sprintf("%.4f", byName["shortcut 75% (36/48)"]))
	}
	emit(cfg, t)
}

func runChoices(cfg config) {
	fmt.Printf("Placement-policy ablation at 85%% load (2^%d slots)\n", cfg.logSlotsCache)
	results := harness.RunChoices(1<<cfg.logSlotsCache, 0.85, cfg.seed)
	t := harness.NewTable("policy", "load", "mean occ", "stddev", "min occ", "max occ", "full blocks %")
	for _, r := range results {
		t.AddRow(r.Policy, r.Load, r.MeanOcc, r.StddevOcc, r.MinOcc, r.MaxOcc, r.FullPct)
	}
	emit(cfg, t)
	doc := struct {
		Experiment string                `json:"experiment"`
		Env        harness.BenchEnv      `json:"env"`
		Log2Slots  uint                  `json:"log2_slots"`
		Load       float64               `json:"load"`
		Seed       uint64                `json:"seed"`
		Results    []harness.ChoiceStats `json:"results"`
	}{"choices-placement-ablation", harness.CaptureEnv(), cfg.logSlotsCache, 0.85, cfg.seed, results}
	writeJSON(cfg, "choices", doc)
}

func runAblation(cfg config) {
	fmt.Printf("SWAR vs scalar block operations (§7.7 analog, 2^%d slots)\n", cfg.logSlotsRAM)
	t := harness.NewTable("variant", "insert", "pos-lookup", "rand-lookup", "delete")
	for _, spec := range []harness.Spec{
		harness.SpecVQF8Shortcut(), harness.SpecVQF8Generic(),
		harness.SpecVQF16Shortcut(), harness.SpecVQF16Generic(),
	} {
		r := harness.RunAggregate(spec, 1<<cfg.logSlotsRAM, cfg.seed)
		t.AddRow(r.Name, r.InsertMops, r.PosLookupMops, r.RandLookupMops, r.DeleteMops)
	}
	emit(cfg, t)
}

func log2(x float64) float64 {
	l := 0.0
	for x < 1 {
		x *= 2
		l++
	}
	return l
}
