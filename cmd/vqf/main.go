// Command vqf is a small command-line front end for the vector quotient
// filter: it builds a filter from newline-delimited keys and answers
// membership queries, or runs an interactive session.
//
// Usage:
//
//	vqf -n 1000000 [-fpr 0.004] [-load keys.txt] [-i]
//
// With -load, every line of the file is added to the filter; remaining
// stdin lines are then queried, echoing "present"/"absent" per line. With
// -i, stdin is an interactive command stream:
//
//	add <key>     insert a key
//	has <key>     query a key
//	del <key>     remove a key
//	stats         print count / capacity / load factor / size
//	save <path>   serialize the filter to a file
//	quit          exit
//
// A serialized filter (from `save` or -out) can be reopened with -in,
// skipping the build entirely.
//
// Two subcommands administer a running vqfd daemon over its HTTP API:
//
//	vqf snapshot [-addr http://127.0.0.1:7071]   persist the daemon's filters now
//	vqf restore  [-addr http://127.0.0.1:7071]   reload them from the last snapshot
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"vqf"
	"vqf/internal/service"
)

// runDaemonCmd handles the vqfd-administration subcommands; it returns
// false when argv names no subcommand (the legacy flag path applies).
func runDaemonCmd(args []string) bool {
	if len(args) == 0 || (args[0] != "snapshot" && args[0] != "restore") {
		return false
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7071", "vqfd admin HTTP base URL")
	fs.Parse(args[1:])
	admin := service.NewAdmin(*addr)
	switch cmd {
	case "snapshot":
		res, err := admin.Snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqf snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot: %d filter(s), %d bytes → %s\n", res.Filters, res.Bytes, res.Dir)
	case "restore":
		res, err := admin.Restore()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqf restore: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("restore: %d filter(s) loaded\n", res.Filters)
		for _, w := range res.Warnings {
			fmt.Fprintf(os.Stderr, "vqf restore: warning: %s\n", w)
		}
	}
	return true
}

func main() {
	if runDaemonCmd(os.Args[1:]) {
		return
	}
	n := flag.Uint64("n", 1_000_000, "expected number of keys")
	fpr := flag.Float64("fpr", 0.0047, "target false-positive rate")
	load := flag.String("load", "", "file of newline-delimited keys to add")
	in := flag.String("in", "", "reopen a serialized filter instead of creating one")
	outPath := flag.String("out", "", "serialize the filter to this file before exiting")
	interactive := flag.Bool("i", false, "interactive command mode")
	flag.Parse()

	var f *vqf.Filter
	if *in != "" {
		file, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqf: %v\n", err)
			os.Exit(1)
		}
		f, err = vqf.Read(bufio.NewReader(file))
		file.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqf: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "reopened filter: %d keys, load %.3f\n", f.Count(), f.LoadFactor())
	} else {
		f = vqf.New(*n, vqf.WithFalsePositiveRate(*fpr))
	}
	saveTo := func(path string) error {
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(file)
		if _, err := f.WriteTo(w); err != nil {
			file.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	if *outPath != "" {
		defer func() {
			if err := saveTo(*outPath); err != nil {
				fmt.Fprintf(os.Stderr, "vqf: save: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *load != "" {
		file, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqf: %v\n", err)
			os.Exit(1)
		}
		sc := bufio.NewScanner(file)
		added := 0
		for sc.Scan() {
			if err := f.AddString(sc.Text()); err != nil {
				fmt.Fprintf(os.Stderr, "vqf: filter full after %d keys\n", added)
				os.Exit(1)
			}
			added++
		}
		file.Close()
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "vqf: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded %d keys (load factor %.3f, %d KiB)\n",
			added, f.LoadFactor(), f.SizeBytes()/1024)
	}

	sc := bufio.NewScanner(os.Stdin)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if !*interactive {
		for sc.Scan() {
			if f.ContainsString(sc.Text()) {
				fmt.Fprintln(out, "present")
			} else {
				fmt.Fprintln(out, "absent")
			}
		}
		return
	}

	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := fields[0]
		arg := ""
		if len(fields) > 1 {
			arg = strings.Join(fields[1:], " ")
		}
		switch cmd {
		case "add":
			if err := f.AddString(arg); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintln(out, "ok")
			}
		case "has":
			fmt.Fprintln(out, f.ContainsString(arg))
		case "del":
			fmt.Fprintln(out, f.RemoveString(arg))
		case "stats":
			fmt.Fprintf(out, "count=%d capacity=%d load=%.4f size=%dB fpr=%.6f\n",
				f.Count(), f.Capacity(), f.LoadFactor(), f.SizeBytes(), f.FalsePositiveRate())
		case "save":
			if err := saveTo(arg); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintln(out, "saved")
			}
		case "quit", "exit":
			return
		default:
			fmt.Fprintf(out, "unknown command %q (add/has/del/stats/quit)\n", cmd)
		}
		out.Flush()
	}
}
