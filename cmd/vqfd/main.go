// Command vqfd is the filter-as-a-service daemon: it hosts any number of
// named vector quotient filters (plain, concurrent, sharded, elastic, or
// key-value map geometry) behind two protocols — an HTTP/JSON admin+data
// API and a length-prefixed binary batch protocol — with snapshot
// persistence and warm restart.
//
// Usage:
//
//	vqfd -http 127.0.0.1:7071 -bin 127.0.0.1:7072 -data /var/lib/vqfd \
//	     -snapshot-interval 30s \
//	     -create '{"name":"hot","kind":"sharded","capacity":16777216}'
//
// On SIGINT/SIGTERM the daemon drains in-flight requests, writes a final
// snapshot, and exits; every insert acknowledged before the signal is in
// the snapshot and survives a restart with the same -data directory.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vqf/internal/service"
)

// specList collects repeatable -create flags.
type specList []service.Spec

func (l *specList) String() string { return fmt.Sprintf("%d specs", len(*l)) }

func (l *specList) Set(v string) error {
	var spec service.Spec
	if err := json.Unmarshal([]byte(v), &spec); err != nil {
		return fmt.Errorf("parsing spec %q: %w", v, err)
	}
	*l = append(*l, spec)
	return nil
}

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:7071", "admin+data HTTP listen address")
		binAddr  = flag.String("bin", "127.0.0.1:7072", "binary protocol listen address (empty disables)")
		dataDir  = flag.String("data", "", "snapshot directory (empty disables persistence)")
		snapIvl  = flag.Duration("snapshot-interval", 0, "periodic snapshot interval (0: only on shutdown)")
		opTO     = flag.Duration("optimeout", 5*time.Second, "per-request filter wait budget")
		maxFrame = flag.Int("maxframe", service.DefaultMaxFrameBytes, "binary frame payload limit in bytes")
		creates  specList
	)
	flag.Var(&creates, "create", "create a filter at startup (JSON spec; repeatable)")
	flag.Parse()

	log.SetPrefix("vqfd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	srv, err := service.New(service.Config{
		HTTPAddr:      *httpAddr,
		BinaryAddr:    *binAddr,
		DataDir:       *dataDir,
		SnapshotEvery: *snapIvl,
		OpTimeout:     *opTO,
		MaxFrameBytes: *maxFrame,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range srv.Warnings() {
		log.Printf("warm restart: %v", w)
	}
	if n := srv.Registry().Len(); n > 0 {
		log.Printf("warm restart: %d filter(s) restored from %s", n, *dataDir)
	}
	for _, spec := range creates {
		info, err := srv.Registry().Create(spec)
		if err != nil {
			// Warm restart already hosting the name is expected on restart with
			// the same command line; anything else is fatal misconfiguration.
			if errors.Is(err, service.ErrExists) {
				log.Printf("create %q: already hosted (restored from snapshot)", spec.Name)
				continue
			}
			log.Fatalf("create %q: %v", spec.Name, err)
		}
		log.Printf("created filter %q kind=%s capacity=%d", info.Name, info.Kind, info.Capacity)
	}

	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	// These lines are parsed by clients and tests: keep the format stable.
	log.Printf("admin/data HTTP on %s", srv.HTTPAddr())
	if a := srv.BinaryAddr(); a != "" {
		log.Printf("binary protocol on %s", a)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("signal received; draining")

	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("shutdown complete")
}
