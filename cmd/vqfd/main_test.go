package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"vqf/internal/service"
	"vqf/internal/workload"
)

// buildVQFD compiles the daemon binary once per test run.
func buildVQFD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vqfd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var (
	httpAddrRe = regexp.MustCompile(`admin/data HTTP on (\S+)`)
	binAddrRe  = regexp.MustCompile(`binary protocol on (\S+)`)
)

// vqfdProc is one running daemon under test.
type vqfdProc struct {
	cmd      *exec.Cmd
	httpAddr string
	binAddr  string
	done     chan error
	logs     *strings.Builder
}

// startVQFD launches the daemon and waits for both listener lines.
func startVQFD(t *testing.T, bin string, args ...string) *vqfdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-http", "127.0.0.1:0", "-bin", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &vqfdProc{cmd: cmd, done: make(chan error, 1), logs: &strings.Builder{}}
	addrs := make(chan [2]string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		var httpA, binA string
		sent := false
		for sc.Scan() {
			line := sc.Text()
			p.logs.WriteString(line + "\n")
			if m := httpAddrRe.FindStringSubmatch(line); m != nil {
				httpA = m[1]
			}
			if m := binAddrRe.FindStringSubmatch(line); m != nil {
				binA = m[1]
			}
			if !sent && httpA != "" && binA != "" {
				addrs <- [2]string{httpA, binA}
				sent = true
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case a := <-addrs:
		p.httpAddr, p.binAddr = a[0], a[1]
	case err := <-p.done:
		t.Fatalf("vqfd exited before listening: %v\n%s", err, p.logs)
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("vqfd did not report listeners\n%s", p.logs)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}

// stop SIGTERMs the daemon and waits for a clean exit.
func (p *vqfdProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("vqfd exit after SIGTERM: %v\n%s", err, p.logs)
		}
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("vqfd did not exit after SIGTERM\n%s", p.logs)
	}
}

// TestSIGTERMWarmRestart is the durability smoke test: a daemon under
// sustained binary-protocol insert load is SIGTERMed mid-stream; after a
// warm restart from its data directory, every insert that was acknowledged
// before the signal must still be present.
func TestSIGTERMWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real daemon process")
	}
	bin := buildVQFD(t)
	dataDir := t.TempDir()
	spec := `{"name":"durable","kind":"sharded","capacity":1048576}`

	p := startVQFD(t, bin, "-data", dataDir, "-create", spec)
	c, err := service.Dial(p.binAddr)
	if err != nil {
		t.Fatal(err)
	}

	// Sustained load: batches of 64 keys; a batch counts as acknowledged
	// only when its response reports all keys stored.
	stream := workload.NewStream(77)
	var acked []uint64
	const batch = 64
	keys := make([]uint64, batch)
	sig := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond) // let some load through first
		p.cmd.Process.Signal(syscall.SIGTERM)
		close(sig)
	}()
	for {
		for i := range keys {
			keys[i] = stream.Next()
		}
		n, err := c.Insert("durable", keys)
		if err != nil {
			break // drain nudge or closed connection: nothing past here was acked
		}
		if n != batch {
			t.Fatalf("insert stored %d/%d into an oversized filter", n, batch)
		}
		acked = append(acked, keys...)
	}
	c.Close()
	<-sig
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("vqfd exit after SIGTERM under load: %v\n%s", err, p.logs)
		}
	case <-time.After(60 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("vqfd did not drain and exit\n%s", p.logs)
	}
	if len(acked) == 0 {
		t.Fatal("no batches were acknowledged before the signal; test proves nothing")
	}
	t.Logf("acknowledged %d keys before SIGTERM", len(acked))

	// Warm restart: same data dir, same -create (which must tolerate the
	// restored filter already existing).
	p2 := startVQFD(t, bin, "-data", dataDir, "-create", spec)
	c2, err := service.Dial(p2.binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var found []bool
	for lo := 0; lo < len(acked); lo += 512 {
		hi := lo + 512
		if hi > len(acked) {
			hi = len(acked)
		}
		found, err = c2.Contains("durable", acked[lo:hi], found)
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range found {
			if !ok {
				t.Fatalf("acknowledged key %d (of %d) lost across SIGTERM + warm restart", lo+i, len(acked))
			}
		}
	}

	// The admin surface survives too: the CLI's snapshot/restore path.
	admin := service.NewAdmin("http://" + p2.httpAddr)
	infos, err := admin.List()
	if err != nil || len(infos) != 1 || infos[0].Name != "durable" {
		t.Fatalf("restarted daemon list: %v, %v", infos, err)
	}
	if infos[0].Count < uint64(len(acked)) {
		t.Fatalf("restarted count %d < %d acknowledged", infos[0].Count, len(acked))
	}
	res, err := admin.Snapshot()
	if err != nil || res.Filters != 1 {
		t.Fatalf("snapshot on restarted daemon: %+v, %v", res, err)
	}
	p2.stop(t)
}

// TestCreateFlagAndPersistence checks the -create flag creates filters at
// startup and that a restart restores them without it.
func TestCreateFlagAndPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real daemon process")
	}
	bin := buildVQFD(t)
	dataDir := t.TempDir()
	p := startVQFD(t, bin, "-data", dataDir,
		"-create", `{"name":"one","kind":"plain","capacity":4096}`,
		"-create", `{"name":"two","kind":"map","capacity":4096}`)
	admin := service.NewAdmin("http://" + p.httpAddr)
	infos, err := admin.List()
	if err != nil || len(infos) != 2 {
		t.Fatalf("list: %v, %v", infos, err)
	}
	if _, err := admin.InsertU64("one", []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p.stop(t)

	p2 := startVQFD(t, bin, "-data", dataDir)
	admin2 := service.NewAdmin("http://" + p2.httpAddr)
	infos, err = admin2.List()
	if err != nil || len(infos) != 2 {
		t.Fatalf("list after restart: %v, %v", infos, err)
	}
	found, err := admin2.ContainsU64("one", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("key %d lost", i)
		}
	}
	p2.stop(t)
}
