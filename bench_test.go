package vqf

// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark executes the corresponding harness
// experiment at a reduced scale (so `go test -bench=.` completes in minutes;
// the cmd/vqfbench driver runs the full-scale versions) and reports the
// figure's key series as custom metrics. Shape expectations against the
// paper are recorded in EXPERIMENTS.md.

import (
	"testing"

	"vqf/internal/analysis"
	"vqf/internal/harness"
)

const (
	benchSlots      = 1 << 16 // reduced scale for bench iterations
	benchSlotsSmall = 1 << 14
	benchQueries    = 20000
)

// BenchmarkTable1SpaceFormulas regenerates Table 1 (analytic bits/item).
func BenchmarkTable1SpaceFormulas(b *testing.B) {
	var sink analysis.BitsPerItem
	for i := 0; i < b.N; i++ {
		sink = analysis.Table1(1.0 / 256)
	}
	b.ReportMetric(sink.VQF, "vqf-bits/item")
	b.ReportMetric(sink.Cuckoo, "cf-bits/item")
	b.ReportMetric(sink.Quotient, "qf-bits/item")
}

// BenchmarkFig2SpaceVsFPR regenerates the Figure 2 curves.
func BenchmarkFig2SpaceVsFPR(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(analysis.Figure2(5, 25, 0.5))
	}
	b.ReportMetric(float64(n), "points")
}

// BenchmarkFig3OverheadCurve regenerates the Figure 3 overhead curve and its
// chosen configuration points.
func BenchmarkFig3OverheadCurve(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		pts := analysis.Figure3(0.5, 1.0, 0.01)
		v = pts[len(pts)/2].Overhead
		for _, c := range analysis.ChosenConfigs() {
			v += c.Overhead
		}
	}
	b.ReportMetric(analysis.OverheadBits(analysis.OptimalRatio()), "optimal-bits")
	_ = v
}

// BenchmarkTable2EmpiricalSpace regenerates Table 2: empirical space and FPR
// for the ε≈2⁻⁸ line-up.
func BenchmarkTable2EmpiricalSpace(b *testing.B) {
	var rows []harness.SpaceRow
	for i := 0; i < b.N; i++ {
		rows = harness.RunSpace(harness.SpecsFPR8(), benchSlotsSmall, 100000, 42)
	}
	for _, r := range rows {
		b.ReportMetric(r.Efficiency, r.Name+"-efficiency")
	}
}

// sweepBench runs the Figure 4/5 sweep for one spec and reports the
// instantaneous insert throughput at low and high load, whose ratio is the
// paper's headline "does it degrade as it fills" metric.
func sweepBench(b *testing.B, spec harness.Spec, nslots uint64) {
	var res harness.SweepResult
	for i := 0; i < b.N; i++ {
		res = harness.RunSweep(spec, nslots, benchQueries, 42)
	}
	if res.Failed || len(res.Points) == 0 {
		b.Fatalf("%s: sweep failed", spec.Name)
	}
	first, last := res.Points[1], res.Points[len(res.Points)-1]
	b.ReportMetric(first.InsertMops, "insert-Mops@10")
	b.ReportMetric(last.InsertMops, "insert-Mops@max")
	b.ReportMetric(last.PosLookupMops, "poslookup-Mops@max")
	b.ReportMetric(last.RandLookupMops, "randlookup-Mops@max")
	b.ReportMetric(last.DeleteMops, "delete-Mops@max")
}

// BenchmarkFig4InRAMVQF .. BenchmarkFig4InRAMMorton regenerate the Figure 4
// panels (in-RAM load-factor sweeps), one benchmark per paper line.
func BenchmarkFig4InRAMVQF(b *testing.B) { sweepBench(b, harness.SpecVQF8(), benchSlots) }
func BenchmarkFig4InRAMVQFShortcut(b *testing.B) {
	sweepBench(b, harness.SpecVQF8Shortcut(), benchSlots)
}
func BenchmarkFig4InRAMQuotient(b *testing.B) { sweepBench(b, harness.SpecQF8(), benchSlots) }
func BenchmarkFig4InRAMCuckoo(b *testing.B)   { sweepBench(b, harness.SpecCF12(), benchSlots) }
func BenchmarkFig4InRAMMorton(b *testing.B)   { sweepBench(b, harness.SpecMF8(), benchSlots) }

// BenchmarkFig5InCache* regenerate the Figure 5 panels (filters sized to fit
// in cache).
func BenchmarkFig5InCacheVQF(b *testing.B) {
	sweepBench(b, harness.SpecVQF8Shortcut(), benchSlotsSmall)
}
func BenchmarkFig5InCacheQuotient(b *testing.B) { sweepBench(b, harness.SpecQF8(), benchSlotsSmall) }
func BenchmarkFig5InCacheCuckoo(b *testing.B)   { sweepBench(b, harness.SpecCF12(), benchSlotsSmall) }
func BenchmarkFig5InCacheMorton(b *testing.B)   { sweepBench(b, harness.SpecMF8(), benchSlotsSmall) }

func aggregateBench(b *testing.B, spec harness.Spec, nslots uint64) {
	var res harness.AggregateResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAggregate(spec, nslots, 42)
	}
	if res.Failed {
		b.Fatalf("%s: aggregate run failed", spec.Name)
	}
	b.ReportMetric(res.InsertMops, "insert-Mops")
	b.ReportMetric(res.PosLookupMops, "poslookup-Mops")
	b.ReportMetric(res.RandLookupMops, "randlookup-Mops")
	b.ReportMetric(res.DeleteMops, "delete-Mops")
}

// BenchmarkFig6a* regenerate Figure 6a (aggregate, RAM, ε≈2⁻⁸).
func BenchmarkFig6aVQF(b *testing.B)        { aggregateBench(b, harness.SpecVQF8Shortcut(), benchSlots) }
func BenchmarkFig6aVQFNoShort(b *testing.B) { aggregateBench(b, harness.SpecVQF8(), benchSlots) }
func BenchmarkFig6aQuotient(b *testing.B)   { aggregateBench(b, harness.SpecQF8(), benchSlots) }
func BenchmarkFig6aCuckoo(b *testing.B)     { aggregateBench(b, harness.SpecCF12(), benchSlots) }
func BenchmarkFig6aMorton(b *testing.B)     { aggregateBench(b, harness.SpecMF8(), benchSlots) }

// BenchmarkFig6b* regenerate Figure 6b (aggregate, cache, ε≈2⁻⁸).
func BenchmarkFig6bVQF(b *testing.B)    { aggregateBench(b, harness.SpecVQF8Shortcut(), benchSlotsSmall) }
func BenchmarkFig6bCuckoo(b *testing.B) { aggregateBench(b, harness.SpecCF12(), benchSlotsSmall) }
func BenchmarkFig6bMorton(b *testing.B) { aggregateBench(b, harness.SpecMF8(), benchSlotsSmall) }

// BenchmarkFig6c* regenerate Figure 6c (aggregate, RAM, ε≈2⁻¹⁶).
func BenchmarkFig6cVQF(b *testing.B)      { aggregateBench(b, harness.SpecVQF16Shortcut(), benchSlots) }
func BenchmarkFig6cQuotient(b *testing.B) { aggregateBench(b, harness.SpecQF16(), benchSlots) }
func BenchmarkFig6cCuckoo(b *testing.B)   { aggregateBench(b, harness.SpecCF16(), benchSlots) }
func BenchmarkFig6cMorton(b *testing.B)   { aggregateBench(b, harness.SpecMF16(), benchSlots) }

// BenchmarkFig6d* regenerate Figure 6d (aggregate, cache, ε≈2⁻¹⁶).
func BenchmarkFig6dVQF(b *testing.B)    { aggregateBench(b, harness.SpecVQF16Shortcut(), benchSlotsSmall) }
func BenchmarkFig6dCuckoo(b *testing.B) { aggregateBench(b, harness.SpecCF16(), benchSlotsSmall) }
func BenchmarkFig6dMorton(b *testing.B) { aggregateBench(b, harness.SpecMF16(), benchSlotsSmall) }

// BenchmarkTable3WriteHeavy regenerates Table 3: the write-heavy mixed
// workload at 90% load factor, one sub-benchmark per paper row.
func BenchmarkTable3WriteHeavy(b *testing.B) {
	for _, spec := range []harness.Spec{
		harness.SpecVQF8Shortcut(), harness.SpecCF12(), harness.SpecMF8(),
	} {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var res harness.MixedResult
			for i := 0; i < b.N; i++ {
				res = harness.RunMixed(spec, benchSlots, 300000, 42)
			}
			if res.Failed {
				b.Fatalf("%s: mixed run failed", spec.Name)
			}
			b.ReportMetric(res.Mops, "Mops")
		})
	}
}

// BenchmarkTable4ThreadScaling regenerates Table 4: concurrent insert
// throughput at 1–4 threads (real scaling is gated by physical cores; see
// EXPERIMENTS.md).
func BenchmarkTable4ThreadScaling(b *testing.B) {
	var rows []harness.ThreadResult
	for i := 0; i < b.N; i++ {
		rows = harness.RunThreadScaling(benchSlots, []int{1, 2, 3, 4}, 42)
	}
	for _, r := range rows {
		b.ReportMetric(r.Mops, "Mops-"+itoa(r.Threads)+"t")
	}
}

// BenchmarkMaxLoadFactor regenerates the §3.4/§6.2 maximum-load-factor
// measurements.
func BenchmarkMaxLoadFactor(b *testing.B) {
	var rows []harness.MaxLoadRow
	for i := 0; i < b.N; i++ {
		rows = harness.RunMaxLoad(benchSlots, 42)
	}
	for _, r := range rows {
		b.ReportMetric(r.MaxLoad, "maxload-"+shorten(r.Config))
	}
}

// BenchmarkAblationGenericBlock regenerates the §7.7 analog: aggregate
// throughput with SWAR block operations versus scalar loops.
func BenchmarkAblationGenericBlock(b *testing.B) {
	for _, spec := range []harness.Spec{harness.SpecVQF8Shortcut(), harness.SpecVQF8Generic()} {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			aggregateBench(b, spec, benchSlots)
		})
	}
}

// BenchmarkChoicesPlacement regenerates the Theorem 1 design ablation:
// block-occupancy dispersion under two-choice vs single-choice placement.
func BenchmarkChoicesPlacement(b *testing.B) {
	var rows []harness.ChoiceStats
	for i := 0; i < b.N; i++ {
		rows = harness.RunChoices(benchSlotsSmall, 0.85, 42)
	}
	for _, r := range rows {
		b.ReportMetric(r.StddevOcc, "stddev-"+shorten(r.Policy))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func shorten(s string) string {
	out := make([]rune, 0, 12)
	for _, r := range s {
		if r == ' ' || r == ',' || r == '(' {
			break
		}
		out = append(out, r)
	}
	return string(out)
}
