module vqf

go 1.22
