package vqf

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	"sort"

	"vqf/internal/stats"
)

// Observability surface. Filters keep cheap always-on operation counters
// (Filter.Stats) and can produce full structural snapshots on demand
// (Filter.Snapshot). This file exposes those two primitives in the shapes
// monitoring stacks expect — a Prometheus text-format HTTP handler and
// expvar publishing — using only the standard library.

// OpStats is a point-in-time reading of a filter's operation counters; all
// fields are cumulative totals since filter creation. See Filter.Stats for
// the consistency contract.
type OpStats = stats.OpCounts

// Occupancy describes the distribution of stored fingerprints over
// mini-filter blocks: a histogram (index = occupancy in slots, value =
// number of blocks), its summary statistics, and the count of full blocks.
type Occupancy = stats.Occupancy

// Snapshot is a full structural snapshot of one filter; see Filter.Snapshot.
type Snapshot = stats.Snapshot

// Source is anything that can produce a metrics snapshot: *Filter, *Map
// and *Elastic all implement it, as can application wrappers.
type Source interface {
	Snapshot() Snapshot
}

// cascadeSource is the additional surface multi-level sources (*Elastic)
// expose; MetricsHandler uses it to export per-level series.
type cascadeSource interface {
	CascadeSnapshot() CascadeSnapshot
}

// MetricsContentType is the Content-Type of MetricsHandler responses
// (Prometheus text exposition format 0.0.4).
const MetricsContentType = stats.ContentType

// MetricsHandler returns an http.Handler that serves the given filters'
// snapshots in Prometheus text format, one sample per filter distinguished
// by a filter="name" label. Mount it wherever the scraper looks:
//
//	mux.Handle("/metrics", vqf.MetricsHandler(map[string]vqf.Source{
//		"cache": filter,
//	}))
//
// Each request takes fresh snapshots; on concurrent filters this is safe
// alongside live traffic (see Filter.Snapshot). The handler holds only the
// sources map, so filters added to the map before the handler is created are
// the ones exported for its lifetime.
//
// An Elastic source exports its aggregate under the given name plus one
// series per cascade level under "name.level<i>" — the level set follows
// the filter's growth from scrape to scrape.
func MetricsHandler(sources map[string]Source) http.Handler {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snaps := make([]stats.NamedSnapshot, 0, len(names))
		for _, name := range names {
			if cs, ok := sources[name].(cascadeSource); ok {
				cascade := cs.CascadeSnapshot()
				snaps = append(snaps, stats.NamedSnapshot{Name: name, Snap: cascade.Aggregate})
				for i, lvl := range cascade.Levels {
					snaps = append(snaps, stats.NamedSnapshot{
						Name: fmt.Sprintf("%s.level%d", name, i), Snap: lvl})
				}
				continue
			}
			snaps = append(snaps, stats.NamedSnapshot{Name: name, Snap: sources[name].Snapshot()})
		}
		var buf bytes.Buffer
		if err := stats.WriteMetrics(&buf, snaps); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", MetricsContentType)
		w.Write(buf.Bytes())
	})
}

// PublishExpvar publishes f's snapshot under the given expvar name, making
// it visible on the standard /debug/vars endpoint as a JSON object. Each
// read of the variable takes a fresh snapshot. Like expvar.Publish, it
// panics if the name is already registered, so call it once per filter.
func PublishExpvar(name string, f Source) {
	expvar.Publish(name, expvar.Func(func() any {
		return f.Snapshot()
	}))
}
