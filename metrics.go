package vqf

import (
	"bytes"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"

	"vqf/internal/stats"
)

// Observability surface. Filters keep cheap always-on operation counters
// (Filter.Stats) and can produce full structural snapshots on demand
// (Filter.Snapshot). This file exposes those two primitives in the shapes
// monitoring stacks expect — a Prometheus text-format HTTP handler and
// expvar publishing — using only the standard library.

// OpStats is a point-in-time reading of a filter's operation counters; all
// fields are cumulative totals since filter creation. See Filter.Stats for
// the consistency contract.
type OpStats = stats.OpCounts

// Occupancy describes the distribution of stored fingerprints over
// mini-filter blocks: a histogram (index = occupancy in slots, value =
// number of blocks), its summary statistics, and the count of full blocks.
type Occupancy = stats.Occupancy

// Snapshot is a full structural snapshot of one filter; see Filter.Snapshot.
type Snapshot = stats.Snapshot

// Source is anything that can produce a metrics snapshot: *Filter, *Map
// and *Elastic all implement it, as can application wrappers.
type Source interface {
	Snapshot() Snapshot
}

// cascadeSource is the additional surface multi-level sources (*Elastic)
// expose; MetricsHandler uses it to export per-level series.
type cascadeSource interface {
	CascadeSnapshot() CascadeSnapshot
}

// MetricsContentType is the Content-Type of MetricsHandler responses
// (Prometheus text exposition format 0.0.4).
const MetricsContentType = stats.ContentType

// MetricsHandler returns an http.Handler that serves the given filters'
// snapshots in Prometheus text format, one sample per filter distinguished
// by a filter="name" label. Mount it wherever the scraper looks:
//
//	mux.Handle("/metrics", vqf.MetricsHandler(map[string]vqf.Source{
//		"cache": filter,
//	}))
//
// Each request takes fresh snapshots; on concurrent filters this is safe
// alongside live traffic (see Filter.Snapshot). The handler holds only the
// sources map, so filters added to the map before the handler is created are
// the ones exported for its lifetime.
//
// An Elastic source exports its aggregate under the given name plus one
// series per cascade level under "name.level<i>" — the level set follows
// the filter's growth from scrape to scrape.
//
// Sharded sources (NewSharded, NewShardedElastic) additionally export the
// whole metric set once per shard with a shard="<i>" label, plus a
// vqf_shard_imbalance gauge (max/mean of per-shard item counts, the heat
// skew indicator). Sources with latency sampling enabled export their
// per-operation histograms as vqf_op_latency_seconds{filter,op} with
// sparse cumulative buckets in seconds.
func MetricsHandler(sources map[string]Source) http.Handler {
	names := sortedNames(sources)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snaps, gauges, compact, lat := collectMetrics(names, sources)
		var buf bytes.Buffer
		err := stats.WriteMetrics(&buf, snaps)
		if err == nil {
			err = stats.WriteGauge(&buf, "vqf_shard_imbalance",
				"Max/mean of per-shard item counts (1 = balanced).", gauges)
		}
		if err == nil {
			err = stats.WriteCounter(&buf, "vqf_compactions_total",
				"Completed cascade compaction passes that merged levels.", compact.passes)
		}
		if err == nil {
			err = stats.WriteCounter(&buf, "vqf_compaction_levels_merged_total",
				"Source levels rebuilt away by cascade compactions.", compact.levels)
		}
		if err == nil {
			err = stats.WriteCounter(&buf, "vqf_freezes_total",
				"Completed freeze passes that built immutable fuse levels.", compact.freezes)
		}
		if err == nil {
			err = stats.WriteCounter(&buf, "vqf_freeze_levels_frozen_total",
				"Source VQF levels retired into the frozen tier.", compact.frozen)
		}
		if err == nil {
			err = stats.WriteCounter(&buf, "vqf_thaws_total",
				"Fuse levels rebuilt back into live form after tombstone pressure.", compact.thaws)
		}
		if err == nil {
			err = stats.WriteLatency(&buf, lat)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", MetricsContentType)
		w.Write(buf.Bytes())
	})
}

// expvarSlots holds the sources behind the expvar names this package has
// published. expvar offers no Unpublish, so re-publishing a name swaps the
// source inside the already-registered variable instead of calling
// expvar.Publish again (which would panic on the duplicate).
var (
	expvarMu    sync.Mutex
	expvarSlots = map[string]*atomic.Pointer[Source]{}
)

// PublishExpvar publishes f's snapshot under the given expvar name, making
// it visible on the standard /debug/vars endpoint as a JSON object. Each
// read of the variable takes a fresh snapshot. Publishing a name this
// package already published replaces that variable's source (a rebuilt
// filter after a config reload, for example) rather than panicking; names
// registered directly with expvar.Publish by other code still collide.
func PublishExpvar(name string, f Source) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if slot, ok := expvarSlots[name]; ok {
		slot.Store(&f)
		return
	}
	slot := &atomic.Pointer[Source]{}
	slot.Store(&f)
	expvarSlots[name] = slot
	expvar.Publish(name, expvar.Func(func() any {
		return (*slot.Load()).Snapshot()
	}))
}
