package vqf

import (
	"testing"
)

func TestWithSizingLoadFactor(t *testing.T) {
	// A lower sizing load factor buys more slack capacity for the same n.
	tight := New(100000, WithSizingLoadFactor(0.93))
	roomy := New(100000, WithSizingLoadFactor(0.50))
	if roomy.Capacity() <= tight.Capacity() {
		t.Errorf("capacity at LF 0.50 (%d) should exceed capacity at 0.93 (%d)",
			roomy.Capacity(), tight.Capacity())
	}
}

func TestGeometrySelectionByFPR(t *testing.T) {
	cases := []struct {
		fpr     float64
		wantFPR float64
	}{
		{0.005, 2.0 * 48 / 80 / 256},
		{1.0 / 100, 2.0 * 48 / 80 / 256},
		// The 8-bit geometry cannot meet 1/256 (it achieves ≈0.0047), so the
		// 16-bit geometry is selected for it and anything tighter.
		{1.0 / 256, 2.0 * 28 / 36 / 65536},
		{1.0 / 512, 2.0 * 28 / 36 / 65536},
		{1.0 / 65536, 2.0 * 28 / 36 / 65536},
	}
	for _, c := range cases {
		f := New(1000, WithFalsePositiveRate(c.fpr))
		if f.FalsePositiveRate() != c.wantFPR {
			t.Errorf("fpr %g: geometry FPR = %g, want %g", c.fpr, f.FalsePositiveRate(), c.wantFPR)
		}
	}
}

func TestMapErrFull(t *testing.T) {
	m := NewMap(50)
	var err error
	for i := 0; i < 100000 && err == nil; i++ {
		err = m.PutHash(uint64(i)*0x9e3779b97f4a7c15, byte(i))
	}
	if err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if m.LoadFactor() < 0.80 {
		t.Errorf("map full at load %.3f", m.LoadFactor())
	}
}

func TestConcurrentOptionsRespected(t *testing.T) {
	f := NewConcurrent(1000, WithFalsePositiveRate(1.0/65536), WithSeed(3))
	if f.FalsePositiveRate() > 1.0/10000 {
		t.Errorf("concurrent 16-bit geometry FPR = %g", f.FalsePositiveRate())
	}
	f.AddString("x")
	if !f.ContainsString("x") {
		t.Error("seeded concurrent filter lost a key")
	}
}
