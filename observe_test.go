package vqf

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape runs the handler once and returns the exposition body.
func scrape(t *testing.T, sources map[string]Source) string {
	t.Helper()
	rec := httptest.NewRecorder()
	MetricsHandler(sources).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body, _ := io.ReadAll(rec.Body)
	return string(body)
}

// TestShardLabelCardinality asserts the per-shard series of a sharded
// filter: every metric appears exactly NumShards times with a shard label
// (indices 0..N-1, no extras), the aggregate series keeps no shard label,
// and the imbalance gauge is exported.
func TestShardLabelCardinality(t *testing.T) {
	f := NewSharded(100_000, 4)
	for i := uint64(0); i < 10_000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	n := f.NumShards()
	if n != 4 {
		t.Fatalf("NumShards = %d, want 4", n)
	}
	text := scrape(t, map[string]Source{"s": f})

	for i := 0; i < n; i++ {
		want := fmt.Sprintf(`vqf_items{filter="s",shard="%d"} `, i)
		if !strings.Contains(text, want) {
			t.Fatalf("missing per-shard series %q", want)
		}
	}
	if strings.Contains(text, fmt.Sprintf(`shard="%d"`, n)) {
		t.Fatalf("shard label beyond NumShards-1 present")
	}
	if got := strings.Count(text, `vqf_items{filter="s",shard=`); got != n {
		t.Fatalf("vqf_items shard series count = %d, want %d", got, n)
	}
	if !strings.Contains(text, `vqf_items{filter="s"} `) {
		t.Fatal("aggregate series missing")
	}
	if !strings.Contains(text, `vqf_shard_imbalance{filter="s"} `) {
		t.Fatal("imbalance gauge missing")
	}

	// Per-shard item counts must sum to the aggregate.
	var sum uint64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `vqf_items{filter="s",shard=`) {
			v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			sum += v
		}
	}
	if sum != f.Count() {
		t.Fatalf("shard items sum %d != aggregate %d", sum, f.Count())
	}
}

// TestShardedSnapshotImbalance checks the heat metric: a uniform workload
// keeps max/mean near 1, and the non-sharded filters report no shard view.
func TestShardedSnapshotImbalance(t *testing.T) {
	f := NewSharded(100_000, 8)
	for i := uint64(0); i < 50_000; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	ss, ok := f.ShardedSnapshot()
	if !ok {
		t.Fatal("sharded filter reported no shard view")
	}
	if len(ss.Shards) != 8 {
		t.Fatalf("shards %d, want 8", len(ss.Shards))
	}
	if ss.Imbalance < 1.0 || ss.Imbalance > 1.2 {
		t.Fatalf("imbalance %g outside [1, 1.2] on a uniform workload", ss.Imbalance)
	}
	if ss.Aggregate.Count != f.Count() {
		t.Fatalf("aggregate count %d != %d", ss.Aggregate.Count, f.Count())
	}

	if _, ok := New(1000).ShardedSnapshot(); ok {
		t.Fatal("sequential filter claims a shard view")
	}
	if _, ok := NewConcurrent(1000).ShardedSnapshot(); ok {
		t.Fatal("concurrent filter claims a shard view")
	}

	e := NewShardedElastic(4)
	for i := uint64(0); i < 10_000; i++ {
		if err := e.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	ess, ok := e.ShardedSnapshot()
	if !ok {
		t.Fatal("sharded elastic reported no shard view")
	}
	if len(ess.Shards) != 4 || ess.Imbalance < 1.0 {
		t.Fatalf("sharded elastic heat view: %d shards, imbalance %g", len(ess.Shards), ess.Imbalance)
	}
}

// TestPublishExpvarRepublish asserts the duplicate-name fix: publishing the
// same name twice swaps the source instead of panicking, and reads follow
// the new source.
func TestPublishExpvarRepublish(t *testing.T) {
	a := New(1000)
	for i := uint64(0); i < 3; i++ {
		if err := a.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	PublishExpvar("vqf_test_republish", a)

	b := New(1000)
	for i := uint64(0); i < 7; i++ {
		if err := b.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	PublishExpvar("vqf_test_republish", b) // must not panic

	var snap Snapshot
	if err := json.Unmarshal([]byte(expvar.Get("vqf_test_republish").String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count != 7 {
		t.Fatalf("expvar still serves old source: count %d, want 7", snap.Count)
	}
}

// TestLatencySnapshot exercises every op at rate 1 (sample everything) and
// asserts the observation counts and basic sanity of the quantiles.
func TestLatencySnapshot(t *testing.T) {
	f := NewConcurrent(10_000, WithLatencySampling(1))
	for i := uint64(0); i < 500; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 300; i++ {
		f.ContainsUint64(i)
	}
	for i := uint64(0); i < 100; i++ {
		f.RemoveUint64(i)
	}
	hs := make([]uint64, 64)
	for i := range hs {
		hs[i] = uint64(0x5555_0000 + i)
	}
	f.AddHashBatch(hs)
	f.ContainsHashBatch(hs, nil)
	f.RemoveHashBatch(hs)

	lat := f.Latency()
	if lat.SamplingRate != 1 {
		t.Fatalf("sampling rate %d, want 1", lat.SamplingRate)
	}
	if lat.Insert.Count != 500 || lat.Lookup.Count != 300 || lat.Remove.Count != 100 {
		t.Fatalf("single-key counts insert=%d lookup=%d remove=%d, want 500/300/100",
			lat.Insert.Count, lat.Lookup.Count, lat.Remove.Count)
	}
	if lat.InsertBatch.Count != 64 || lat.LookupBatch.Count != 64 || lat.RemoveBatch.Count != 64 {
		t.Fatalf("batch counts %d/%d/%d, want 64 each",
			lat.InsertBatch.Count, lat.LookupBatch.Count, lat.RemoveBatch.Count)
	}
	for _, s := range []LatencySummary{lat.Insert, lat.Lookup, lat.Remove} {
		if s.P50 == 0 || s.P99 < s.P50 || s.P999 < s.P99 || s.MeanNs <= 0 {
			t.Fatalf("implausible summary %+v", s)
		}
	}

	// Sampling disabled: zero rate, empty summaries.
	off := NewConcurrent(1000, WithLatencySampling(0))
	if err := off.AddUint64(1); err != nil {
		t.Fatal(err)
	}
	off.ContainsUint64(1)
	if lat := off.Latency(); lat.SamplingRate != 0 || lat.Insert.Count != 0 || lat.Lookup.Count != 0 {
		t.Fatalf("disabled sampling recorded: %+v", lat)
	}

	// Elastic filters record through the same surface.
	e := NewElastic(WithLatencySampling(1))
	for i := uint64(0); i < 200; i++ {
		if err := e.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	e.ContainsUint64(5)
	elat := e.Latency()
	if elat.Insert.Count != 200 || elat.Lookup.Count != 1 {
		t.Fatalf("elastic latency counts insert=%d lookup=%d", elat.Insert.Count, elat.Lookup.Count)
	}
}

// TestHotPathZeroAlloc guards the sampled hot path: a timed lookup/insert
// must not allocate, at default rate and at rate 1, on both the sequential
// and concurrent gates.
func TestHotPathZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    *Filter
	}{
		{"sequential-rate1", New(100_000, WithLatencySampling(1))},
		{"concurrent-rate1", NewConcurrent(100_000, WithLatencySampling(1))},
		{"concurrent-default", NewConcurrent(100_000)},
		{"concurrent-off", NewConcurrent(100_000, WithLatencySampling(0))},
	} {
		for i := uint64(0); i < 1000; i++ {
			if err := tc.f.AddHash(i * 0x9e3779b97f4a7c15); err != nil {
				t.Fatal(err)
			}
		}
		var i uint64
		if allocs := testing.AllocsPerRun(2000, func() {
			tc.f.ContainsHash(i * 0x9e3779b97f4a7c15)
			i++
		}); allocs != 0 {
			t.Errorf("%s: ContainsHash allocates %.1f per op", tc.name, allocs)
		}
	}
}

// TestEventsAndHandler drives an elastic cascade through growth and checks
// the event stream end-to-end: typed events from Filter.Events, the JSON
// endpoint shape, and the global ring's kernel-dispatch record.
func TestEventsAndHandler(t *testing.T) {
	e := NewConcurrentElastic(WithInitialCapacity(4096))
	for i := uint64(0); i < 20_000; i++ {
		if err := e.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	if e.Levels() < 2 {
		t.Fatalf("cascade did not grow (levels %d)", e.Levels())
	}
	evs := e.Events()
	grows := 0
	var last Event
	for _, ev := range evs {
		if ev.Kind == "elastic-swap" {
			grows++
			last = ev
		}
	}
	if grows != e.Levels()-1 {
		t.Fatalf("recorded %d growth events for %d levels", grows, e.Levels())
	}
	if last.A != uint64(e.Levels()-1) || last.B == 0 || last.C == 0 {
		t.Fatalf("growth event args A=%d B=%d C=%d", last.A, last.B, last.C)
	}
	if last.TimeUnixNano <= 0 {
		t.Fatal("growth event has no timestamp")
	}

	rec := httptest.NewRecorder()
	EventsHandler(map[string]EventSource{"cache": e}).
		ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vqf/events", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var out map[string][]Event
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["cache"]) != len(evs) && len(out["cache"]) == 0 {
		t.Fatal("handler served no events for the filter")
	}
	if _, ok := out["global"]; !ok {
		t.Fatal("handler output missing global ring")
	}
	// The swar init dispatch record always lands in the global ring.
	found := false
	for _, ev := range GlobalEvents() {
		if ev.Kind == "asm-dispatch" {
			found = true
		}
	}
	if !found {
		t.Fatal("global ring missing the init asm-dispatch event")
	}
}

// TestMetricsHandlerLatencySeries checks the Prometheus latency exposition:
// histogram series appear per (filter, op), buckets are cumulative and
// monotone, and _count matches the recorded observations.
func TestMetricsHandlerLatencySeries(t *testing.T) {
	f := NewConcurrent(10_000, WithLatencySampling(1))
	for i := uint64(0); i < 400; i++ {
		if err := f.AddUint64(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 250; i++ {
		f.ContainsUint64(i)
	}
	text := scrape(t, map[string]Source{"lat": f})

	if n := strings.Count(text, "# HELP vqf_op_latency_seconds"); n != 1 {
		t.Fatalf("latency HELP emitted %d times", n)
	}
	for _, op := range []string{"insert", "lookup"} {
		prefix := fmt.Sprintf(`vqf_op_latency_seconds_bucket{filter="lat",op="%s",le=`, op)
		if !strings.Contains(text, prefix) {
			t.Fatalf("missing latency buckets for op %s:\n%s", op, text)
		}
	}
	wantCount := map[string]uint64{"insert": 400, "lookup": 250}
	for op, want := range wantCount {
		line := fmt.Sprintf(`vqf_op_latency_seconds_count{filter="lat",op="%s"} %d`, op, want)
		if !strings.Contains(text, line) {
			t.Fatalf("missing %q", line)
		}
	}
	// Bucket monotonicity per series: cumulative counts never decrease and
	// the +Inf bucket equals _count.
	for _, op := range []string{"insert", "lookup"} {
		prev := uint64(0)
		lastVal := uint64(0)
		prefix := fmt.Sprintf(`vqf_op_latency_seconds_bucket{filter="lat",op="%s",`, op)
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket series for %s not monotone: %d after %d", op, v, prev)
			}
			prev, lastVal = v, v
		}
		if lastVal != wantCount[op] {
			t.Fatalf("+Inf bucket for %s = %d, want %d", op, lastVal, wantCount[op])
		}
	}

	// A filter with sampling off exports no latency series at all.
	off := NewConcurrent(1000, WithLatencySampling(0))
	if err := off.AddUint64(1); err != nil {
		t.Fatal(err)
	}
	if text := scrape(t, map[string]Source{"off": off}); strings.Contains(text, "vqf_op_latency_seconds") {
		t.Fatal("disabled sampling still exports latency series")
	}
}

// TestObserveConcurrentRace hammers a sharded filter with mixed traffic
// while scraping metrics, latency and events from other goroutines — the
// race detector is the assertion.
func TestObserveConcurrentRace(t *testing.T) {
	f := NewSharded(200_000, 4, WithLatencySampling(8))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			hs := make([]uint64, 256)
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h := base + i
				f.AddHash(h * 0x9e3779b97f4a7c15)
				f.ContainsHash(h * 0x9e3779b97f4a7c15)
				if i%64 == 0 {
					for j := range hs {
						hs[j] = base + i + uint64(j)
					}
					f.AddHashBatch(hs)
					f.RemoveHashBatch(hs)
				}
			}
		}(w)
	}
	deadline := time.After(400 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
			f.Latency()
			f.Events()
			if _, ok := f.ShardedSnapshot(); !ok {
				t.Error("shard view vanished")
			}
			scrapeOnce(f)
		}
	}
}

func scrapeOnce(f *Filter) {
	rec := httptest.NewRecorder()
	MetricsHandler(map[string]Source{"race": f}).
		ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
}
