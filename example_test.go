package vqf_test

import (
	"bytes"
	"fmt"

	"vqf"
)

// The package-level example: build a filter, add keys, query, delete.
func Example() {
	f := vqf.New(100_000)
	f.AddString("alpha")
	f.AddString("beta")

	fmt.Println(f.ContainsString("alpha"))
	fmt.Println(f.ContainsString("gamma"))

	f.RemoveString("alpha")
	fmt.Println(f.ContainsString("alpha"))
	// Output:
	// true
	// false
	// false
}

// Pre-hashed keys skip the internal hash: useful when the application
// already computes a 64-bit hash for sharding or caching.
func ExampleFilter_AddHash() {
	f := vqf.New(1000)
	const h = 0x9e3779b97f4a7c15
	f.AddHash(h)
	fmt.Println(f.ContainsHash(h))
	// Output:
	// true
}

// Filters serialize with WriteTo and reopen with Read; the hash seed travels
// with the data, so queries behave identically after a round trip.
func ExampleFilter_WriteTo() {
	f := vqf.New(1000, vqf.WithSeed(42))
	f.AddString("persisted")

	var buf bytes.Buffer
	f.WriteTo(&buf)

	g, _ := vqf.Read(&buf)
	fmt.Println(g.ContainsString("persisted"))
	fmt.Println(g.Count())
	// Output:
	// true
	// 1
}

// WithFalsePositiveRate selects the 16-bit-fingerprint geometry for
// FPR-sensitive applications.
func ExampleWithFalsePositiveRate() {
	f := vqf.New(1000, vqf.WithFalsePositiveRate(1.0/65536))
	fmt.Printf("%.6f\n", f.FalsePositiveRate())
	// Output:
	// 0.000024
}

// A Map associates a one-byte value with each key — here, a shard ID.
func ExampleMap() {
	m := vqf.NewMap(1000)
	m.PutString("user:42", 3)

	shard, ok := m.GetString("user:42")
	fmt.Println(shard, ok)

	m.UpdateString("user:42", 7)
	shard, _ = m.GetString("user:42")
	fmt.Println(shard)
	// Output:
	// 3 true
	// 7
}

// NewConcurrent returns a filter safe for use from many goroutines; the
// paper's per-block lock bits make operations on distinct blocks proceed
// in parallel.
func ExampleNewConcurrent() {
	f := vqf.NewConcurrent(10_000)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				f.AddUint64(uint64(w*1000 + i))
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	fmt.Println(f.Count())
	// Output:
	// 400
}
