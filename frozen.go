package vqf

import (
	"fmt"
	"io"

	"vqf/internal/fuse"
	"vqf/internal/hashing"
)

// Frozen is a standalone immutable filter: a static 3-wise binary fuse
// filter built once over a fixed key set. It answers membership in a single
// probe of three fingerprint cells (~1.13·w bits per key for a w-bit
// fingerprint — roughly 30–40% smaller than the live VQF geometry at equal
// FPR) but supports no Add or Remove; rebuild it to change the set. Use it
// for sealed artifacts — an SSTable's key set, a finished shard, anything
// written once and queried forever. Inside an elastic cascade the same
// structure backs the frozen tier automatically (Elastic.FreezeNow); Frozen
// is the standalone form for key sets managed outside a cascade.
//
// All methods are safe for concurrent use: the filter is immutable.
type Frozen struct {
	f8   *fuse.Filter8
	f16  *fuse.Filter16
	seed uint64
	fpr  float64
}

// frozenFromHashes builds the fuse structure for the configured FPR: the
// 8-bit fingerprint meets rates down to 2⁻⁸, tighter rates take the 16-bit
// width (rejecting < 2⁻¹⁶, which no width meets).
func frozenFromHashes(hs []uint64, c config) (*Frozen, error) {
	f := &Frozen{seed: c.seed}
	var err error
	if c.fpr >= 1.0/256 {
		f.fpr = 1.0 / 256
		f.f8, err = fuse.Build8(hs)
	} else if c.fpr >= 1.0/65536 {
		f.fpr = 1.0 / 65536
		f.f16, err = fuse.Build16(hs)
	} else {
		return nil, fmt.Errorf("vqf: false-positive rate %g below frozen filter minimum 2^-16", c.fpr)
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// NewFrozen builds an immutable filter over keys. Duplicate keys collapse
// to one membership entry. The false-positive rate is set with
// WithFalsePositiveRate (2⁻⁸ and 2⁻¹⁶ are the realizable widths; the
// loosest width meeting the request is used) and the hash seed with
// WithSeed; other options are ignored. The keys slice is not retained.
func NewFrozen(keys [][]byte, opts ...Option) (*Frozen, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	hs := make([]uint64, len(keys))
	for i, k := range keys {
		hs[i] = hashing.HashBytes(k, c.seed)
	}
	return frozenFromHashes(hs, c)
}

// NewFrozenFromHashes builds an immutable filter over pre-hashed 64-bit
// keys, skipping the internal hashing step; see NewFrozen.
func NewFrozenFromHashes(hs []uint64, opts ...Option) (*Frozen, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return frozenFromHashes(hs, c)
}

// Contains reports whether key may be in the set: always true for built-in
// keys, false with probability ≥ 1−ε otherwise.
func (f *Frozen) Contains(key []byte) bool {
	return f.ContainsHash(hashing.HashBytes(key, f.seed))
}

// ContainsString queries a string key.
func (f *Frozen) ContainsString(key string) bool {
	return f.ContainsHash(hashing.HashString(key, f.seed))
}

// ContainsUint64 queries a uint64 key.
func (f *Frozen) ContainsUint64(key uint64) bool {
	return f.ContainsHash(hashing.HashUint64(key, f.seed))
}

// ContainsHash queries a pre-hashed 64-bit key.
func (f *Frozen) ContainsHash(h uint64) bool {
	if f.f8 != nil {
		return f.f8.Contains(h)
	}
	return f.f16.Contains(h)
}

// ContainsHashBatch answers membership for every pre-hashed key of hs in
// input order, reusing dst when it has capacity (dst may be nil).
func (f *Frozen) ContainsHashBatch(hs []uint64, dst []bool) []bool {
	if f.f8 != nil {
		return f.f8.ContainsBatch(hs, dst)
	}
	return f.f16.ContainsBatch(hs, dst)
}

// Count returns the number of distinct keys the filter was built over.
func (f *Frozen) Count() uint64 {
	if f.f8 != nil {
		return f.f8.Keys()
	}
	return f.f16.Keys()
}

// SizeBytes returns the fingerprint array's footprint.
func (f *Frozen) SizeBytes() uint64 {
	if f.f8 != nil {
		return f.f8.SizeBytes()
	}
	return f.f16.SizeBytes()
}

// BitsPerItem returns the realized space cost per key, ≈1.13·w for a large
// filter with w-bit fingerprints (0 when empty).
func (f *Frozen) BitsPerItem() float64 {
	if f.f8 != nil {
		return f.f8.BitsPerKey()
	}
	return f.f16.BitsPerKey()
}

// FalsePositiveRate returns the analytic false-positive rate of the chosen
// fingerprint width (2⁻⁸ or 2⁻¹⁶).
func (f *Frozen) FalsePositiveRate() float64 { return f.fpr }

// WriteTo serializes the filter (envelope, fingerprint width, fuse stream);
// it implements io.WriterTo.
func (f *Frozen) WriteTo(w io.Writer) (int64, error) {
	n, err := writeEnvelope(w, kindFrozen, f.seed)
	if err != nil {
		return n, err
	}
	width := []byte{16}
	if f.f8 != nil {
		width[0] = 8
	}
	if _, err := w.Write(width); err != nil {
		return n, err
	}
	n++
	var m int64
	if f.f8 != nil {
		m, err = f.f8.WriteTo(w)
	} else {
		m, err = f.f16.WriteTo(w)
	}
	return n + m, err
}

// ReadFrozen deserializes a filter written by Frozen.WriteTo. The hash seed
// travels with the filter, so keys stored by the writing process resolve
// identically.
func ReadFrozen(r io.Reader) (*Frozen, error) {
	seed, err := readEnvelope(r, kindFrozen)
	if err != nil {
		return nil, err
	}
	var width [1]byte
	if _, err := io.ReadFull(r, width[:]); err != nil {
		return nil, fmt.Errorf("vqf: reading frozen width: %w", err)
	}
	f := &Frozen{seed: seed}
	switch width[0] {
	case 8:
		f.fpr = 1.0 / 256
		f.f8, err = fuse.Read8(r)
	case 16:
		f.fpr = 1.0 / 65536
		f.f16, err = fuse.Read16(r)
	default:
		return nil, fmt.Errorf("vqf: frozen fingerprint width %d", width[0])
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}
