package vqf

import "testing"

// TestElasticBatchParity checks the Elastic batch methods against their
// single-key counterparts: same insert counts, identical membership
// answers (across several growth events so the cascade path is exercised),
// and matching remove counts.
func TestElasticBatchParity(t *testing.T) {
	const n = 60_000 // far beyond the 4096 initial capacity: multiple growths
	batched := NewElastic(WithSeed(3))
	single := NewElastic(WithSeed(3))

	hs := make([]uint64, n)
	rng := uint64(0x1234_5678_9abc_def0)
	for i := range hs {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		hs[i] = rng
	}

	if got := batched.AddHashBatch(hs); got != n {
		t.Fatalf("AddHashBatch inserted %d/%d", got, n)
	}
	for _, h := range hs {
		if err := single.AddHash(h); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Count() != single.Count() {
		t.Fatalf("counts diverge: batch %d, single %d", batched.Count(), single.Count())
	}
	if batched.Levels() < 2 {
		t.Fatalf("only %d level(s); the test did not exercise the cascade", batched.Levels())
	}

	// Membership parity on stored keys and on a disjoint negative stream.
	probe := make([]uint64, 2*n)
	copy(probe, hs)
	for i := n; i < len(probe); i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		probe[i] = rng
	}
	got := batched.ContainsHashBatch(probe, nil)
	for i, h := range probe {
		if want := single.ContainsHash(h); got[i] != want {
			t.Fatalf("probe %d: batch says %v, single says %v", i, got[i], want)
		}
	}
	for i := 0; i < n; i++ {
		if !got[i] {
			t.Fatalf("stored key %d missing from batch lookup", i)
		}
	}

	// Result-buffer reuse must not change answers.
	reused := batched.ContainsHashBatch(probe[:100], got[:0])
	for i := range reused {
		if reused[i] != single.ContainsHash(probe[i]) {
			t.Fatalf("reused-buffer probe %d diverged", i)
		}
	}

	// Remove parity on a slice of stored keys.
	if got, want := batched.RemoveHashBatch(hs[:5000]), 0; got < want {
		t.Fatalf("RemoveHashBatch returned %d", got)
	}
	for _, h := range hs[:5000] {
		single.RemoveHash(h)
	}
	if batched.Count() != single.Count() {
		t.Fatalf("counts diverge after removes: batch %d, single %d", batched.Count(), single.Count())
	}
}
