package stats

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text-format exposition (text/plain; version=0.0.4), stdlib
// only. WriteMetrics renders any number of named filter snapshots in one
// pass, emitting each metric's HELP/TYPE header exactly once with one sample
// per filter — the layout the format requires when several filters share a
// registry. The block-occupancy distribution is rendered as a native
// Prometheus histogram (cumulative le buckets; _sum is the total number of
// occupied slots, _count the number of blocks).

// ContentType is the Content-Type header value for WriteMetrics output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// NamedSnapshot pairs a filter's exposition label set with its snapshot.
// Shard, when non-empty, adds a shard="<i>" label — the per-shard series
// of a sharded filter, alongside the aggregate series without the label.
type NamedSnapshot struct {
	Name  string
	Shard string
	Snap  Snapshot
}

// labels renders the snapshot's label set, without a trailing separator:
// {filter="name"} or {filter="name",shard="i"}.
func (n *NamedSnapshot) labels() string {
	if n.Shard == "" {
		return fmt.Sprintf("{filter=%q}", n.Name)
	}
	return fmt.Sprintf("{filter=%q,shard=%q}", n.Name, n.Shard)
}

// labelsLE is labels with a trailing le bucket-boundary label.
func (n *NamedSnapshot) labelsLE(le string) string {
	if n.Shard == "" {
		return fmt.Sprintf("{filter=%q,le=%q}", n.Name, le)
	}
	return fmt.Sprintf("{filter=%q,shard=%q,le=%q}", n.Name, n.Shard, le)
}

// metricDef is one exposition metric: its name, type, help string, and how
// to read its value from a snapshot.
type metricDef struct {
	name, typ, help string
	value           func(*Snapshot) float64
}

var metricDefs = []metricDef{
	// Counters (monotone op totals).
	{"vqf_inserts_total", "counter", "Successful insertions.",
		func(s *Snapshot) float64 { return float64(s.Ops.Inserts) }},
	{"vqf_insert_failures_total", "counter", "Insertions rejected with both candidate blocks full.",
		func(s *Snapshot) float64 { return float64(s.Ops.InsertFailures) }},
	{"vqf_shortcut_inserts_total", "counter", "Insertions that took the single-block shortcut path.",
		func(s *Snapshot) float64 { return float64(s.Ops.ShortcutInserts) }},
	{"vqf_lookups_total", "counter", "Membership queries.",
		func(s *Snapshot) float64 { return float64(s.Ops.Lookups) }},
	{"vqf_removes_total", "counter", "Successful deletions.",
		func(s *Snapshot) float64 { return float64(s.Ops.Removes) }},
	{"vqf_remove_misses_total", "counter", "Deletions that found no matching fingerprint.",
		func(s *Snapshot) float64 { return float64(s.Ops.RemoveMisses) }},
	{"vqf_optimistic_attempts_total", "counter", "Optimistic (seqlock) block reads started.",
		func(s *Snapshot) float64 { return float64(s.Ops.OptAttempts) }},
	{"vqf_optimistic_retries_total", "counter", "Optimistic block reads that conflicted with a writer and re-ran.",
		func(s *Snapshot) float64 { return float64(s.Ops.OptRetries) }},
	{"vqf_optimistic_fallbacks_total", "counter", "Optimistic block reads that fell back to the block lock.",
		func(s *Snapshot) float64 { return float64(s.Ops.OptFallbacks) }},
	{"vqf_batch_ops_total", "counter", "Batch API calls.",
		func(s *Snapshot) float64 { return float64(s.Ops.BatchOps) }},
	{"vqf_batch_keys_total", "counter", "Keys carried by batch API calls.",
		func(s *Snapshot) float64 { return float64(s.Ops.BatchKeys) }},

	// Gauges (structural state).
	{"vqf_items", "gauge", "Fingerprints currently stored.",
		func(s *Snapshot) float64 { return float64(s.Count) }},
	{"vqf_capacity_slots", "gauge", "Total fingerprint slots.",
		func(s *Snapshot) float64 { return float64(s.Capacity) }},
	{"vqf_load_factor", "gauge", "Items divided by capacity.",
		func(s *Snapshot) float64 { return s.LoadFactor }},
	{"vqf_size_bytes", "gauge", "Memory footprint of the filter.",
		func(s *Snapshot) float64 { return float64(s.SizeBytes) }},
	{"vqf_bits_per_item", "gauge", "Space cost per stored item (0 when empty).",
		func(s *Snapshot) float64 { return s.BitsPerItem }},
	{"vqf_false_positive_rate", "gauge", "Estimated false-positive rate at the current load factor.",
		func(s *Snapshot) float64 { return s.FPREstimate }},
	{"vqf_blocks", "gauge", "Mini-filter blocks.",
		func(s *Snapshot) float64 { return float64(s.Occupancy.Blocks) }},
	{"vqf_block_occupancy_min", "gauge", "Minimum block occupancy.",
		func(s *Snapshot) float64 { return float64(s.Occupancy.Min) }},
	{"vqf_block_occupancy_max", "gauge", "Maximum block occupancy.",
		func(s *Snapshot) float64 { return float64(s.Occupancy.Max) }},
	{"vqf_block_occupancy_stddev", "gauge", "Standard deviation of block occupancy.",
		func(s *Snapshot) float64 { return s.Occupancy.Stddev }},
	{"vqf_full_blocks", "gauge", "Blocks that can accept no more insertions.",
		func(s *Snapshot) float64 { return float64(s.Occupancy.FullBlocks) }},
}

// WriteMetrics renders the snapshots in Prometheus text format 0.0.4.
func WriteMetrics(w io.Writer, snaps []NamedSnapshot) error {
	for _, def := range metricDefs {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", def.name, def.help, def.name, def.typ); err != nil {
			return err
		}
		for i := range snaps {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				def.name, snaps[i].labels(), formatValue(def.value(&snaps[i].Snap))); err != nil {
				return err
			}
		}
	}

	const hist = "vqf_block_occupancy"
	if _, err := fmt.Fprintf(w, "# HELP %s Distribution of fingerprints over blocks (bucket value = blocks at or below that occupancy).\n# TYPE %s histogram\n", hist, hist); err != nil {
		return err
	}
	for i := range snaps {
		occ := &snaps[i].Snap.Occupancy
		cum := uint64(0)
		occupied := uint64(0)
		for slots, blocks := range occ.Histogram {
			cum += blocks
			occupied += uint64(slots) * blocks
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", hist, snaps[i].labelsLE(strconv.Itoa(slots)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
			hist, snaps[i].labelsLE("+Inf"), cum, hist, snaps[i].labels(), occupied, hist, snaps[i].labels(), occ.Blocks); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders a sample value: integral values without an exponent,
// everything else in Go's shortest-roundtrip form (both valid Prometheus
// floats).
func formatValue(v float64) string {
	if v >= 0 && v < (1<<63) && v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
