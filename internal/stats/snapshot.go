package stats

import "math"

// Occupancy is a per-block occupancy distribution: how evenly the
// power-of-two-choices placement spread items over blocks (the dispersion
// behavior of the paper's Theorem 1). Built from a filter's block-occupancy
// vector by BuildOccupancy.
type Occupancy struct {
	SlotsPerBlock uint   `json:"slots_per_block"`
	Blocks        uint64 `json:"blocks"`
	// Histogram[i] is the number of blocks holding exactly i fingerprints;
	// its length is SlotsPerBlock+1.
	Histogram []uint64 `json:"histogram"`
	Min       uint     `json:"min"`
	Max       uint     `json:"max"`
	Mean      float64  `json:"mean"`
	Stddev    float64  `json:"stddev"`
	// FullBlocks is Histogram[SlotsPerBlock]: blocks that can accept no more
	// insertions.
	FullBlocks uint64 `json:"full_blocks"`
}

// BuildOccupancy summarizes a block-occupancy vector. Occupancies above
// slotsPerBlock are clamped into the top bucket (they cannot occur on a
// quiesced filter, but a concurrent snapshot is taken block-by-block and
// tolerates sampling skew rather than propagating it).
func BuildOccupancy(occs []uint, slotsPerBlock uint) Occupancy {
	o := Occupancy{
		SlotsPerBlock: slotsPerBlock,
		Blocks:        uint64(len(occs)),
		Histogram:     make([]uint64, slotsPerBlock+1),
	}
	if len(occs) == 0 {
		return o
	}
	o.Min = slotsPerBlock + 1
	var sum, sumsq float64
	for _, occ := range occs {
		if occ > slotsPerBlock {
			occ = slotsPerBlock
		}
		o.Histogram[occ]++
		if occ < o.Min {
			o.Min = occ
		}
		if occ > o.Max {
			o.Max = occ
		}
		sum += float64(occ)
		sumsq += float64(occ) * float64(occ)
	}
	n := float64(len(occs))
	o.Mean = sum / n
	o.Stddev = math.Sqrt(math.Max(sumsq/n-o.Mean*o.Mean, 0))
	o.FullBlocks = o.Histogram[slotsPerBlock]
	return o
}

// Snapshot is a filter's full observable state: structural gauges, the
// occupancy distribution, and the operation counters. Building one walks
// every block, so it costs O(blocks) — cheap enough to serve on a metrics
// endpoint, too expensive for a per-operation path.
type Snapshot struct {
	// Count and Capacity are items stored and total fingerprint slots;
	// LoadFactor is their ratio.
	Count      uint64  `json:"count"`
	Capacity   uint64  `json:"capacity"`
	LoadFactor float64 `json:"load_factor"`
	// SizeBytes is the filter's memory footprint; BitsPerItem is
	// SizeBytes·8/Count (0 when empty).
	SizeBytes   uint64  `json:"size_bytes"`
	BitsPerItem float64 `json:"bits_per_item"`
	// FPRFullLoad is the analytic false-positive rate at 100% load
	// (2·(s/b)·2⁻ʳ, paper §5); FPREstimate scales it by the current load
	// factor, since the realized rate is proportional to occupancy.
	FPRFullLoad float64 `json:"fpr_full_load"`
	FPREstimate float64 `json:"fpr_estimate"`

	Occupancy Occupancy `json:"occupancy"`
	Ops       OpCounts  `json:"ops"`
}

// CascadeSnapshot is the structural snapshot of a multi-level (elastic)
// filter: an aggregate over the whole cascade plus one Snapshot per level,
// oldest level first. In the aggregate, FPRFullLoad carries the configured
// total budget ε, FPREstimate the sum of per-level realized estimates (the
// quantity the budget bounds), and Occupancy the newest level's
// distribution — levels can mix fingerprint geometries, so their histograms
// do not merge meaningfully.
type CascadeSnapshot struct {
	Aggregate Snapshot   `json:"aggregate"`
	Levels    []Snapshot `json:"levels"`
	// Compactions counts completed compaction passes that merged at least
	// one run; CompactionLevelsMerged counts the source levels those passes
	// rebuilt away. Both are monotone counters over the filter's lifetime.
	Compactions            uint64 `json:"compactions"`
	CompactionLevelsMerged uint64 `json:"compaction_levels_merged"`
	// Freezes counts completed freeze passes that rebuilt at least one run
	// into the immutable fuse tier; FreezeLevelsFrozen counts the source
	// VQF levels those passes retired; Thaws counts fuse levels rebuilt
	// back into live form after tombstone pressure. All monotone.
	Freezes            uint64 `json:"freezes"`
	FreezeLevelsFrozen uint64 `json:"freeze_levels_frozen"`
	Thaws              uint64 `json:"thaws"`
	// BudgetReclaimed is the false-positive budget retired from dropped
	// (emptied) levels — part of the cascade invariant
	// Σ level budgets + BudgetReclaimed + future schedule = ε.
	BudgetReclaimed float64 `json:"budget_reclaimed"`
}

// ShardedSnapshot is the structural snapshot of a sharded filter: the
// merged aggregate, one Snapshot per shard (in shard-index order), and the
// shard-heat imbalance metric. Imbalance is max/mean over per-shard item
// counts: 1.0 is a perfectly balanced filter, NumShards is the worst case
// (all items in one shard), and 0 means the filter is empty. A uniform
// hash keeps it within a few percent of 1; sustained higher values mean
// the workload's hashes are skewed in their top (shard-selector) bits.
type ShardedSnapshot struct {
	Aggregate Snapshot   `json:"aggregate"`
	Shards    []Snapshot `json:"shards"`
	Imbalance float64    `json:"imbalance"`
}

// BuildShardedSnapshot assembles a ShardedSnapshot and computes the
// imbalance metric from the per-shard counts.
func BuildShardedSnapshot(aggregate Snapshot, shards []Snapshot) ShardedSnapshot {
	s := ShardedSnapshot{Aggregate: aggregate, Shards: shards}
	var total, max uint64
	for i := range shards {
		total += shards[i].Count
		if shards[i].Count > max {
			max = shards[i].Count
		}
	}
	if total > 0 && len(shards) > 0 {
		mean := float64(total) / float64(len(shards))
		s.Imbalance = float64(max) / mean
	}
	return s
}

// BuildSnapshot assembles a Snapshot from the primitive readings every
// introspectable filter exposes.
func BuildSnapshot(count, capacity, sizeBytes uint64, fprFullLoad float64, occs []uint, slotsPerBlock uint, ops OpCounts) Snapshot {
	s := Snapshot{
		Count:       count,
		Capacity:    capacity,
		SizeBytes:   sizeBytes,
		FPRFullLoad: fprFullLoad,
		Occupancy:   BuildOccupancy(occs, slotsPerBlock),
		Ops:         ops,
	}
	if capacity > 0 {
		s.LoadFactor = float64(count) / float64(capacity)
	}
	if count > 0 {
		s.BitsPerItem = float64(sizeBytes) * 8 / float64(count)
	}
	s.FPREstimate = fprFullLoad * s.LoadFactor
	return s
}

// Merge combines two occupancy summaries over disjoint block sets — the
// same cascade level observed across the shards of a sharded filter, for
// example. Both sides must describe the same block geometry (equal
// SlotsPerBlock); the merged moments are recomputed exactly from the summed
// histogram, so Merge(a, b) equals BuildOccupancy over the concatenated
// block vectors.
func (o Occupancy) Merge(other Occupancy) Occupancy {
	if o.Blocks == 0 {
		return other
	}
	if other.Blocks == 0 {
		return o
	}
	m := Occupancy{
		SlotsPerBlock: o.SlotsPerBlock,
		Blocks:        o.Blocks + other.Blocks,
		Histogram:     make([]uint64, o.SlotsPerBlock+1),
		Min:           o.Min,
		Max:           o.Max,
	}
	copy(m.Histogram, o.Histogram)
	for i, h := range other.Histogram {
		if i < len(m.Histogram) {
			m.Histogram[i] += h
		}
	}
	if other.Min < m.Min {
		m.Min = other.Min
	}
	if other.Max > m.Max {
		m.Max = other.Max
	}
	var sum, sumsq float64
	for i, h := range m.Histogram {
		sum += float64(i) * float64(h)
		sumsq += float64(i) * float64(i) * float64(h)
	}
	n := float64(m.Blocks)
	m.Mean = sum / n
	m.Stddev = math.Sqrt(math.Max(sumsq/n-m.Mean*m.Mean, 0))
	m.FullBlocks = m.Histogram[m.SlotsPerBlock]
	return m
}

// Merge combines two snapshots of disjoint same-geometry filter components
// (shards of one level): gauges and counters are summed, occupancy
// histograms merged, and the derived ratios recomputed. FPRFullLoad is a
// geometry constant shared by the components and carried through.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	m := Snapshot{
		Count:       s.Count + other.Count,
		Capacity:    s.Capacity + other.Capacity,
		SizeBytes:   s.SizeBytes + other.SizeBytes,
		FPRFullLoad: s.FPRFullLoad,
		Occupancy:   s.Occupancy.Merge(other.Occupancy),
		Ops:         s.Ops.Add(other.Ops),
	}
	if m.FPRFullLoad == 0 {
		m.FPRFullLoad = other.FPRFullLoad
	}
	if m.Capacity > 0 {
		m.LoadFactor = float64(m.Count) / float64(m.Capacity)
	}
	if m.Count > 0 {
		m.BitsPerItem = float64(m.SizeBytes) * 8 / float64(m.Count)
	}
	m.FPREstimate = m.FPRFullLoad * m.LoadFactor
	return m
}
