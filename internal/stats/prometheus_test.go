package stats

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line: metric name, label set (as the
// raw {...} string), and value.
type promSample struct {
	name   string
	labels string
	value  float64
}

// parseProm is a strict parser for the subset of the Prometheus text format
// 0.0.4 that WriteMetrics emits. It fails the test on any malformed line,
// HELP/TYPE duplication, or sample appearing outside its metric's block.
func parseProm(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	helps := map[string]bool{}
	current := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			if helps[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helps[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			types[name] = typ
			current = name
			continue
		}
		brace := strings.IndexByte(line, '{')
		if brace < 0 {
			t.Fatalf("line %d: sample without labels: %q", ln+1, line)
		}
		name := line[:brace]
		end := strings.IndexByte(line, '}')
		if end < brace {
			t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != current {
			t.Fatalf("line %d: sample %s outside its metric block (current %s)", ln+1, name, current)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[end+1:]), 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		samples = append(samples, promSample{name: name, labels: line[brace : end+1], value: v})
	}
	return samples, types
}

func findSample(t *testing.T, samples []promSample, name, filter string) float64 {
	t.Helper()
	want := fmt.Sprintf("{filter=%q}", filter)
	for _, s := range samples {
		if s.name == name && s.labels == want {
			return s.value
		}
	}
	t.Fatalf("no sample %s%s", name, want)
	return 0
}

func TestWriteMetricsRoundTrip(t *testing.T) {
	a := BuildSnapshot(90, 100, 6400, 0.004, []uint{45, 45}, 48,
		OpCounts{Inserts: 90, ShortcutInserts: 60, Lookups: 1000, OptAttempts: 2000, OptRetries: 3, OptFallbacks: 1})
	b := BuildSnapshot(0, 64, 4096, 0.004, []uint{0, 0}, 48, OpCounts{})
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, []NamedSnapshot{{Name: "hot", Snap: a}, {Name: "cold", Snap: b}}); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, buf.String())

	// Every declared metric must have exactly one sample per filter (plus
	// bucket/sum/count series for the histogram).
	for _, def := range metricDefs {
		if types[def.name] != def.typ {
			t.Fatalf("metric %s: type %q want %q", def.name, types[def.name], def.typ)
		}
		for _, f := range []string{"hot", "cold"} {
			findSample(t, samples, def.name, f)
		}
	}
	if types["vqf_block_occupancy"] != "histogram" {
		t.Fatalf("histogram type: %q", types["vqf_block_occupancy"])
	}

	// Spot-check values survive the round trip.
	if v := findSample(t, samples, "vqf_inserts_total", "hot"); v != 90 {
		t.Fatalf("inserts: %v", v)
	}
	if v := findSample(t, samples, "vqf_load_factor", "hot"); v != 0.9 {
		t.Fatalf("load factor: %v", v)
	}
	if v := findSample(t, samples, "vqf_items", "cold"); v != 0 {
		t.Fatalf("cold items: %v", v)
	}
	if v := findSample(t, samples, "vqf_full_blocks", "hot"); v != 0 {
		t.Fatalf("full blocks: %v", v)
	}

	// Histogram invariants per filter: cumulative buckets are monotone, the
	// +Inf bucket equals _count equals the block count, and _sum is the
	// occupied-slot total.
	for _, f := range []string{"hot", "cold"} {
		prefix := fmt.Sprintf("{filter=%q,le=", f)
		last := -1.0
		buckets := 0
		for _, s := range samples {
			if s.name != "vqf_block_occupancy_bucket" || !strings.HasPrefix(s.labels, prefix) {
				continue
			}
			if s.value < last {
				t.Fatalf("filter %s: bucket series not monotone: %v after %v", f, s.value, last)
			}
			last = s.value
			buckets++
		}
		if buckets != 48+2 { // le=0..48 plus +Inf
			t.Fatalf("filter %s: %d buckets", f, buckets)
		}
		count := findSample(t, samples, "vqf_block_occupancy_count", f)
		if last != count || count != 2 {
			t.Fatalf("filter %s: +Inf bucket %v, _count %v, want 2", f, last, count)
		}
	}
	if v := findSample(t, samples, "vqf_block_occupancy_sum", "hot"); v != 90 {
		t.Fatalf("hot occupancy sum: %v", v)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		90:       "90",
		0.9:      "0.9",
		-1:       "-1",
		1 << 62:  strconv.FormatUint(1<<62, 10),
		0.000023: "2.3e-05",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
