// Package stats is the filter-wide metrics substrate: hot-path operation
// counters for every filter variant, on-demand structural snapshots
// (per-block occupancy histograms, load factor, space efficiency), and a
// Prometheus text-format writer, all stdlib-only.
//
// Two counter carriers are provided, matching the two threading models of
// internal/core:
//
//   - Local: plain (non-atomic) counters for the single-threaded filters.
//     Increments cost one add on memory the owner already holds; the filters
//     embedding a Local are not safe for concurrent use, and neither are
//     these counters — exactly the host filter's own contract.
//
//   - Striped: cache-line-padded striped atomic counters for the concurrent
//     filters. Callers pass a stripe selector (the operation's primary block
//     index) so concurrent operations on different blocks usually land on
//     different cache lines; reading sums the stripes with atomic loads and
//     never blocks writers.
//
// Reads of either carrier produce an OpCounts value. A Striped read is not a
// consistent cut across counters — each counter is individually exact and
// monotone, but a snapshot taken mid-operation can, for example, show a
// lookup's optimistic attempt before the lookup itself is counted. Deltas
// computed between two snapshots of a quiesced filter are exact.
package stats

import "sync/atomic"

// Counter indices. OpCounts is the exported mirror; keep the two in sync
// (asserted by TestOpCountsMirrorsIndices).
const (
	opInserts = iota
	opInsertFailures
	opShortcutInserts
	opLookups
	opRemoves
	opRemoveMisses
	opOptAttempts
	opOptRetries
	opOptFallbacks
	opBatchOps
	opBatchKeys
	numOps
)

// OpCounts is a point-in-time reading of a filter's operation counters.
// All fields are totals since filter creation.
type OpCounts struct {
	// Inserts counts successful single-key insertions (including those that
	// arrived through a batch).
	Inserts uint64 `json:"inserts"`
	// InsertFailures counts insertions rejected because both candidate
	// blocks were full.
	InsertFailures uint64 `json:"insert_failures"`
	// ShortcutInserts counts the subset of Inserts that took the §6.2
	// single-block shortcut path (primary block below the threshold).
	ShortcutInserts uint64 `json:"shortcut_inserts"`
	// Lookups counts membership queries (Contains/Get calls, each counted
	// once regardless of how many blocks were probed).
	Lookups uint64 `json:"lookups"`
	// Removes counts successful deletions; RemoveMisses counts deletions
	// that found no matching fingerprint.
	Removes      uint64 `json:"removes"`
	RemoveMisses uint64 `json:"remove_misses"`
	// OptAttempts counts optimistic (seqlock) block reads started;
	// OptRetries counts conflicted attempts that had to re-run; and
	// OptFallbacks counts reads that exhausted their retry budget and fell
	// back to the block lock. Always zero on the single-threaded filters.
	OptAttempts  uint64 `json:"optimistic_attempts"`
	OptRetries   uint64 `json:"optimistic_retries"`
	OptFallbacks uint64 `json:"optimistic_fallbacks"`
	// BatchOps counts batch API calls; BatchKeys counts the keys they
	// carried (the per-key outcomes are folded into the counters above).
	BatchOps  uint64 `json:"batch_ops"`
	BatchKeys uint64 `json:"batch_keys"`
}

// fromArray converts the internal counter array to the exported struct.
func fromArray(c *[numOps]uint64) OpCounts {
	return OpCounts{
		Inserts:         c[opInserts],
		InsertFailures:  c[opInsertFailures],
		ShortcutInserts: c[opShortcutInserts],
		Lookups:         c[opLookups],
		Removes:         c[opRemoves],
		RemoveMisses:    c[opRemoveMisses],
		OptAttempts:     c[opOptAttempts],
		OptRetries:      c[opOptRetries],
		OptFallbacks:    c[opOptFallbacks],
		BatchOps:        c[opBatchOps],
		BatchKeys:       c[opBatchKeys],
	}
}

// Add returns the per-counter sum o + other, for aggregating counters
// across the members of a composite filter (e.g. the levels of an elastic
// cascade).
func (o OpCounts) Add(other OpCounts) OpCounts {
	return OpCounts{
		Inserts:         o.Inserts + other.Inserts,
		InsertFailures:  o.InsertFailures + other.InsertFailures,
		ShortcutInserts: o.ShortcutInserts + other.ShortcutInserts,
		Lookups:         o.Lookups + other.Lookups,
		Removes:         o.Removes + other.Removes,
		RemoveMisses:    o.RemoveMisses + other.RemoveMisses,
		OptAttempts:     o.OptAttempts + other.OptAttempts,
		OptRetries:      o.OptRetries + other.OptRetries,
		OptFallbacks:    o.OptFallbacks + other.OptFallbacks,
		BatchOps:        o.BatchOps + other.BatchOps,
		BatchKeys:       o.BatchKeys + other.BatchKeys,
	}
}

// Sub returns the per-counter difference o − prev: the operations that
// happened between two readings.
func (o OpCounts) Sub(prev OpCounts) OpCounts {
	return OpCounts{
		Inserts:         o.Inserts - prev.Inserts,
		InsertFailures:  o.InsertFailures - prev.InsertFailures,
		ShortcutInserts: o.ShortcutInserts - prev.ShortcutInserts,
		Lookups:         o.Lookups - prev.Lookups,
		Removes:         o.Removes - prev.Removes,
		RemoveMisses:    o.RemoveMisses - prev.RemoveMisses,
		OptAttempts:     o.OptAttempts - prev.OptAttempts,
		OptRetries:      o.OptRetries - prev.OptRetries,
		OptFallbacks:    o.OptFallbacks - prev.OptFallbacks,
		BatchOps:        o.BatchOps - prev.BatchOps,
		BatchKeys:       o.BatchKeys - prev.BatchKeys,
	}
}

// Local is the counter carrier for single-threaded filters: plain adds, no
// atomics. It shares its owner's threading contract (one goroutine at a
// time) and its zero value is ready to use.
type Local struct {
	c [numOps]uint64
}

// Insert counts a successful two-choice insertion.
func (l *Local) Insert() { l.c[opInserts]++ }

// ShortcutInsert counts a successful insertion via the §6.2 shortcut path.
func (l *Local) ShortcutInsert() { l.c[opInserts]++; l.c[opShortcutInserts]++ }

// InsertFailure counts an insertion rejected with both blocks full.
func (l *Local) InsertFailure() { l.c[opInsertFailures]++ }

// Lookup counts one membership query.
func (l *Local) Lookup() { l.c[opLookups]++ }

// Remove counts a successful deletion.
func (l *Local) Remove() { l.c[opRemoves]++ }

// RemoveMiss counts a deletion that found nothing.
func (l *Local) RemoveMiss() { l.c[opRemoveMisses]++ }

// Batch counts one batch call carrying n keys.
func (l *Local) Batch(n int) { l.c[opBatchOps]++; l.c[opBatchKeys] += uint64(n) }

// Counts returns the current totals.
func (l *Local) Counts() OpCounts { return fromArray(&l.c) }

// Striped configuration. 32 stripes of two cache lines each (2 KiB per
// filter) keeps concurrent goroutines operating on different blocks from
// bouncing a shared counter line; the selector is the operation's primary
// block index, so stripe collisions track block collisions.
const (
	stripeCount = 32
	stripeMask  = stripeCount - 1
)

// stripe is one padded counter bank. numOps atomic words are padded to a
// multiple of 128 bytes (two cache lines, covering the adjacent-line
// prefetcher) so neighboring stripes never share a line.
type stripe struct {
	c [numOps]atomic.Uint64
	_ [(128 - (numOps*8)%128) % 128]byte
}

// Striped is the counter carrier for concurrent filters: per-stripe atomic
// counters, selected by the operation's primary block index. The zero value
// is ready to use. All methods are safe for concurrent use.
type Striped struct {
	s [stripeCount]stripe
}

func (t *Striped) at(sel uint64) *stripe { return &t.s[sel&stripeMask] }

// Insert counts a successful two-choice insertion on stripe sel.
func (t *Striped) Insert(sel uint64) { t.at(sel).c[opInserts].Add(1) }

// ShortcutInsert counts a successful shortcut-path insertion on stripe sel.
func (t *Striped) ShortcutInsert(sel uint64) {
	s := t.at(sel)
	s.c[opInserts].Add(1)
	s.c[opShortcutInserts].Add(1)
}

// InsertFailure counts a rejected insertion on stripe sel.
func (t *Striped) InsertFailure(sel uint64) { t.at(sel).c[opInsertFailures].Add(1) }

// Lookup counts one membership query on stripe sel.
func (t *Striped) Lookup(sel uint64) { t.at(sel).c[opLookups].Add(1) }

// Remove counts a successful deletion on stripe sel.
func (t *Striped) Remove(sel uint64) { t.at(sel).c[opRemoves].Add(1) }

// RemoveMiss counts a missed deletion on stripe sel.
func (t *Striped) RemoveMiss(sel uint64) { t.at(sel).c[opRemoveMisses].Add(1) }

// Optimistic records one optimistic block read on stripe sel: retries is the
// number of conflicted attempts before it resolved, and fellBack reports
// whether it gave up and took the block lock.
func (t *Striped) Optimistic(sel uint64, retries uint, fellBack bool) {
	s := t.at(sel)
	s.c[opOptAttempts].Add(1)
	if retries > 0 {
		s.c[opOptRetries].Add(uint64(retries))
	}
	if fellBack {
		s.c[opOptFallbacks].Add(1)
	}
}

// Batch counts one batch call carrying n keys.
func (t *Striped) Batch(n int) {
	s := t.at(0)
	s.c[opBatchOps].Add(1)
	s.c[opBatchKeys].Add(uint64(n))
}

// Counts sums the stripes with atomic loads. It never blocks writers; each
// counter in the result is exact and monotone across successive calls, but
// the counters are not a single consistent cut (see the package comment).
func (t *Striped) Counts() OpCounts {
	var sum [numOps]uint64
	for i := range t.s {
		for j := 0; j < numOps; j++ {
			sum[j] += t.s[i].c[j].Load()
		}
	}
	return fromArray(&sum)
}
