package stats

import (
	"fmt"
	"io"
	"strconv"

	"vqf/internal/telemetry"
)

// Latency exposition: the sampled per-operation latency histograms from
// internal/telemetry rendered as native Prometheus histograms
// (vqf_op_latency_seconds with filter/op labels, cumulative le buckets in
// seconds). Only occupied buckets are emitted — the telemetry bucket table
// has 304 fixed edges and a filter's latencies typically span a dozen of
// them, so sparse emission keeps scrape size proportional to the observed
// range while the cumulative-bucket semantics stay exact.

// LatencySeries is one (filter, op) latency histogram to expose.
type LatencySeries struct {
	Filter string
	Shard  string // optional shard="i" label, as NamedSnapshot.Shard
	Op     string // "insert", "lookup", "remove", "insert_batch", ...
	Hist   telemetry.HistSnapshot
}

func (s *LatencySeries) labels(extra string) string {
	out := fmt.Sprintf("{filter=%q,op=%q", s.Filter, s.Op)
	if s.Shard != "" {
		out += fmt.Sprintf(",shard=%q", s.Shard)
	}
	return out + extra + "}"
}

// WriteLatency renders the series as one Prometheus histogram metric.
// Series with zero observations are skipped entirely (a filter with
// sampling disabled exposes no latency series rather than empty ones).
func WriteLatency(w io.Writer, series []LatencySeries) error {
	const name = "vqf_op_latency_seconds"
	any := false
	for i := range series {
		if series[i].Hist.Count > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s Sampled per-operation latency (batch ops record per-key amortized latency).\n# TYPE %s histogram\n", name, name); err != nil {
		return err
	}
	for i := range series {
		s := &series[i]
		if s.Hist.Count == 0 {
			continue
		}
		cum := uint64(0)
		for b, c := range s.Hist.Counts {
			if c == 0 {
				continue
			}
			cum += c
			le := strconv.FormatFloat(float64(telemetry.BucketUpper(b))/1e9, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, s.labels(fmt.Sprintf(",le=%q", le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
			name, s.labels(`,le="+Inf"`), cum,
			name, s.labels(""), formatValue(float64(s.Hist.Sum)/1e9),
			name, s.labels(""), s.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}

// NamedGauge is one labeled sample of a standalone gauge metric.
type NamedGauge struct {
	Name  string
	Value float64
}

// WriteGauge renders one gauge metric with a filter label per sample;
// used for derived metrics (shard imbalance) that no Snapshot field
// carries. No output when gauges is empty.
func WriteGauge(w io.Writer, metric, help string, gauges []NamedGauge) error {
	if len(gauges) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric); err != nil {
		return err
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "%s{filter=%q} %s\n", metric, g.Name, formatValue(g.Value)); err != nil {
			return err
		}
	}
	return nil
}

// NamedCounter is one labeled sample of a standalone cumulative counter
// metric (monotone over the source's lifetime).
type NamedCounter struct {
	Name  string
	Value uint64
}

// WriteCounter renders one counter metric with a filter label per sample;
// used for lifecycle counters (compactions) that live outside the
// per-level Snapshot set. No output when samples is empty.
func WriteCounter(w io.Writer, metric, help string, samples []NamedCounter) error {
	if len(samples) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", metric, help, metric); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s{filter=%q} %d\n", metric, s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
