package stats

import (
	"sync"
	"testing"
	"unsafe"
)

// TestOpCountsMirrorsIndices locks the counter-array ↔ struct mapping: every
// index must land in its own struct field.
func TestOpCountsMirrorsIndices(t *testing.T) {
	var c [numOps]uint64
	for i := range c {
		c[i] = uint64(i) + 1
	}
	o := fromArray(&c)
	want := OpCounts{
		Inserts:         opInserts + 1,
		InsertFailures:  opInsertFailures + 1,
		ShortcutInserts: opShortcutInserts + 1,
		Lookups:         opLookups + 1,
		Removes:         opRemoves + 1,
		RemoveMisses:    opRemoveMisses + 1,
		OptAttempts:     opOptAttempts + 1,
		OptRetries:      opOptRetries + 1,
		OptFallbacks:    opOptFallbacks + 1,
		BatchOps:        opBatchOps + 1,
		BatchKeys:       opBatchKeys + 1,
	}
	if o != want {
		t.Fatalf("fromArray mapping mismatch: got %+v want %+v", o, want)
	}
	if n := unsafe.Sizeof(o) / 8; n != numOps {
		t.Fatalf("OpCounts has %d fields, counter array has %d", n, numOps)
	}
}

func TestLocalCounts(t *testing.T) {
	var l Local
	l.Insert()
	l.Insert()
	l.ShortcutInsert()
	l.InsertFailure()
	l.Lookup()
	l.Lookup()
	l.Lookup()
	l.Remove()
	l.RemoveMiss()
	l.Batch(7)
	l.Batch(3)
	got := l.Counts()
	want := OpCounts{
		Inserts: 3, ShortcutInserts: 1, InsertFailures: 1,
		Lookups: 3, Removes: 1, RemoveMisses: 1,
		BatchOps: 2, BatchKeys: 10,
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestStripePadding(t *testing.T) {
	var s [2]stripe
	if sz := unsafe.Sizeof(s[0]); sz%128 != 0 {
		t.Fatalf("stripe size %d is not a multiple of 128", sz)
	}
	if d := uintptr(unsafe.Pointer(&s[1])) - uintptr(unsafe.Pointer(&s[0])); d%128 != 0 {
		t.Fatalf("adjacent stripes are %d bytes apart; want a multiple of 128", d)
	}
}

// TestStripedCounts exercises every Striped method across all stripes from
// several goroutines and checks the summed totals are exact.
func TestStripedCounts(t *testing.T) {
	var st Striped
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sel := uint64(w*perWorker + i) // walks all stripes
				st.Insert(sel)
				st.ShortcutInsert(sel)
				st.InsertFailure(sel)
				st.Lookup(sel)
				st.Remove(sel)
				st.RemoveMiss(sel)
				st.Optimistic(sel, 0, false)
				st.Optimistic(sel, 2, true)
			}
			st.Batch(perWorker)
		}(w)
	}
	wg.Wait()
	const n = workers * perWorker
	got := st.Counts()
	want := OpCounts{
		Inserts: 2 * n, ShortcutInserts: n, InsertFailures: n,
		Lookups: n, Removes: n, RemoveMisses: n,
		OptAttempts: 2 * n, OptRetries: 2 * n, OptFallbacks: n,
		BatchOps: workers, BatchKeys: n,
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestOpCountsSub(t *testing.T) {
	a := OpCounts{Inserts: 10, Lookups: 20, BatchKeys: 5}
	b := OpCounts{Inserts: 4, Lookups: 20, BatchKeys: 1}
	d := a.Sub(b)
	if d != (OpCounts{Inserts: 6, Lookups: 0, BatchKeys: 4}) {
		t.Fatalf("Sub: got %+v", d)
	}
}

func TestBuildOccupancy(t *testing.T) {
	occs := []uint{0, 3, 3, 5, 48, 48, 50} // 50 exceeds slotsPerBlock: clamped
	o := BuildOccupancy(occs, 48)
	if o.Blocks != 7 || o.SlotsPerBlock != 48 {
		t.Fatalf("blocks/slots: %+v", o)
	}
	if len(o.Histogram) != 49 {
		t.Fatalf("histogram length %d", len(o.Histogram))
	}
	if o.Histogram[0] != 1 || o.Histogram[3] != 2 || o.Histogram[5] != 1 || o.Histogram[48] != 3 {
		t.Fatalf("histogram %v", o.Histogram)
	}
	if o.Min != 0 || o.Max != 48 || o.FullBlocks != 3 {
		t.Fatalf("min/max/full: %+v", o)
	}
	// Mean/stddev computed over the clamped values.
	wantMean := float64(0+3+3+5+48+48+48) / 7
	if diff := o.Mean - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean %v want %v", o.Mean, wantMean)
	}
	if o.Stddev <= 0 {
		t.Fatalf("stddev %v", o.Stddev)
	}

	var total uint64
	for _, b := range o.Histogram {
		total += b
	}
	if total != o.Blocks {
		t.Fatalf("histogram sums to %d blocks, want %d", total, o.Blocks)
	}

	empty := BuildOccupancy(nil, 48)
	if empty.Blocks != 0 || empty.Min != 0 || empty.Max != 0 || empty.Mean != 0 {
		t.Fatalf("empty occupancy: %+v", empty)
	}
}

func TestBuildSnapshot(t *testing.T) {
	ops := OpCounts{Inserts: 90, Lookups: 10}
	s := BuildSnapshot(90, 100, 6400, 0.004, []uint{45, 45}, 48, ops)
	if s.LoadFactor != 0.9 {
		t.Fatalf("load factor %v", s.LoadFactor)
	}
	if s.BitsPerItem != 6400*8.0/90 {
		t.Fatalf("bits/item %v", s.BitsPerItem)
	}
	if s.FPREstimate != 0.004*s.LoadFactor {
		t.Fatalf("fpr estimate %v", s.FPREstimate)
	}
	if s.Ops != ops {
		t.Fatalf("ops %+v", s.Ops)
	}

	zero := BuildSnapshot(0, 0, 0, 0.004, nil, 48, OpCounts{})
	if zero.LoadFactor != 0 || zero.BitsPerItem != 0 {
		t.Fatalf("zero snapshot: %+v", zero)
	}
}
