//go:build amd64 && !purego

package swar

// hasAsm gates the assembly match kernels into the dispatch wrappers
// (match.go). The kernels use only SSE2, the amd64 architectural baseline,
// so no CPUID feature probe is needed.
const hasAsm = true

// match48Asm compares all 48 byte lanes against the pre-broadcast target:
// bit i of the result is set iff lane i matches. Implemented in
// match_amd64.s with PCMPEQB over three 16-byte loads.
//
//go:noescape
func match48Asm(fps *[Words8]uint64, bcast uint64) uint64

// match28Asm compares all 28 uint16 lanes against the pre-broadcast target;
// PCMPEQW + PACKSSWB in match_amd64.s.
//
//go:noescape
func match28Asm(fps *[Words16]uint64, bcast uint64) uint64

// matchRange48Asm is match48Asm fused with the [start, end) range mask.
// Requires start < end <= 48.
//
//go:noescape
func matchRange48Asm(fps *[Words8]uint64, bcast uint64, start, end uint) uint64

// matchRange28Asm is match28Asm fused with the [start, end) range mask.
// Requires start < end <= 28.
//
//go:noescape
func matchRange28Asm(fps *[Words16]uint64, bcast uint64, start, end uint) uint64
