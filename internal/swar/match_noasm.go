//go:build !amd64 || purego

package swar

// hasAsm is false on architectures without assembly match kernels (or under
// -tags purego); the dispatch wrappers fold their asm branches away and the
// stubs below are unreachable.
const hasAsm = false

// hasFastSelect mirrors the amd64 CPUID probe for PDEP/TZCNT/POPCNT; without
// assembly kernels there is nothing for it to gate.
const hasFastSelect = false

func match48Asm(fps *[Words8]uint64, bcast uint64) uint64 {
	panic("swar: no assembly kernels in this build")
}

func match28Asm(fps *[Words16]uint64, bcast uint64) uint64 {
	panic("swar: no assembly kernels in this build")
}

func matchRange48Asm(fps *[Words8]uint64, bcast uint64, start, end uint) uint64 {
	panic("swar: no assembly kernels in this build")
}

func matchRange28Asm(fps *[Words16]uint64, bcast uint64, start, end uint) uint64 {
	panic("swar: no assembly kernels in this build")
}
