package swar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// packLanes8 assembles 48 byte lanes into the word-native layout.
func packLanes8(lanes *[48]byte) (fps [Words8]uint64) {
	for i, b := range lanes {
		SetLane8(&fps, i, b)
	}
	return
}

// unpackLanes8 is the inverse of packLanes8, via the lane accessor.
func unpackLanes8(fps *[Words8]uint64) (lanes [48]byte) {
	for i := range lanes {
		lanes[i] = Lane8(fps, i)
	}
	return
}

func packLanes16(lanes *[28]uint16) (fps [Words16]uint64) {
	for i, v := range lanes {
		SetLane16(&fps, i, v)
	}
	return
}

func unpackLanes16(fps *[Words16]uint64) (lanes [28]uint16) {
	for i := range lanes {
		lanes[i] = Lane16(fps, i)
	}
	return
}

func TestMatchByteMaskExhaustivePattern(t *testing.T) {
	// Every target byte against words built from nearby values, which is
	// where zero-detection tricks typically break (off-by-one lanes).
	for target := 0; target < 256; target++ {
		var word uint64
		var data [8]byte
		for i := range data {
			data[i] = byte(target + i - 4)
			word |= uint64(data[i]) << (8 * i)
		}
		got := MatchByteMask(word, byte(target))
		var want uint8
		for i, b := range data {
			if b == byte(target) {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("MatchByteMask(%#x, %#x) = %#b, want %#b", word, target, got, want)
		}
	}
}

func TestMatchByteMaskRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		word := rng.Uint64()
		target := byte(rng.Intn(256))
		got := MatchByteMask(word, target)
		var want uint8
		for lane := 0; lane < 8; lane++ {
			if byte(word>>(8*lane)) == target {
				want |= 1 << lane
			}
		}
		if got != want {
			t.Fatalf("MatchByteMask(%#x, %#x) = %#b, want %#b", word, target, got, want)
		}
	}
}

func TestMatchU16MaskRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		word := rng.Uint64()
		target := uint16(rng.Intn(1 << 16))
		got := MatchU16Mask(word, target)
		var want uint8
		for lane := 0; lane < 4; lane++ {
			if uint16(word>>(16*lane)) == target {
				want |= 1 << lane
			}
		}
		if got != want {
			t.Fatalf("MatchU16Mask(%#x, %#x) = %#b, want %#b", word, target, got, want)
		}
	}
}

func TestMatchU16MaskAllLanesMatch(t *testing.T) {
	for _, v := range []uint16{0, 1, 0x7fff, 0x8000, 0xffff} {
		word := BroadcastU16(v)
		if got := MatchU16Mask(word, v); got != 0b1111 {
			t.Errorf("MatchU16Mask(broadcast %#x) = %#b, want 1111", v, got)
		}
	}
}

func TestMatch48(t *testing.T) {
	var lanes [48]byte
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		rng.Read(lanes[:])
		target := byte(rng.Intn(256))
		// Plant a few guaranteed matches.
		for j := 0; j < 3; j++ {
			lanes[rng.Intn(48)] = target
		}
		fps := packLanes8(&lanes)
		got := Match48(&fps, BroadcastByte(target))
		var want uint64
		for i, b := range lanes {
			if b == target {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("Match48 = %#x, want %#x", got, want)
		}
	}
}

func TestMatch28(t *testing.T) {
	var lanes [28]uint16
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		for i := range lanes {
			lanes[i] = uint16(rng.Intn(1 << 16))
		}
		target := uint16(rng.Intn(1 << 16))
		lanes[rng.Intn(28)] = target
		fps := packLanes16(&lanes)
		got := Match28(&fps, BroadcastU16(target))
		var want uint64
		for i, v := range lanes {
			if v == target {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("Match28 = %#x, want %#x", got, want)
		}
	}
}

func TestLaneAccessorsRoundTrip(t *testing.T) {
	var lanes [48]byte
	rng := rand.New(rand.NewSource(5))
	rng.Read(lanes[:])
	fps := packLanes8(&lanes)
	if unpackLanes8(&fps) != lanes {
		t.Fatal("Lane8/SetLane8 round trip mismatch")
	}
	var lanes16 [28]uint16
	for i := range lanes16 {
		lanes16[i] = uint16(rng.Intn(1 << 16))
	}
	fps16 := packLanes16(&lanes16)
	if unpackLanes16(&fps16) != lanes16 {
		t.Fatal("Lane16/SetLane16 round trip mismatch")
	}
}

func TestRangeMask(t *testing.T) {
	cases := []struct {
		start, end uint
		want       uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, ^uint64(0)},
		{3, 5, 0b11000},
		{63, 64, 1 << 63},
		{10, 10, 0},
	}
	for _, c := range cases {
		if got := RangeMask(c.start, c.end); got != c.want {
			t.Errorf("RangeMask(%d,%d) = %#x, want %#x", c.start, c.end, got, c.want)
		}
	}
}

func TestRangeMaskProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		start, end := uint(a)%65, uint(b)%65
		if start > end {
			start, end = end, start
		}
		m := RangeMask(start, end)
		for i := uint(0); i < 64; i++ {
			in := i >= start && i < end
			if (m>>i&1 == 1) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRemoveLane8AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5000; trial++ {
		var lanes [48]byte
		occ := rng.Intn(48) // insert requires a free top lane
		for i := 0; i < occ; i++ {
			lanes[i] = byte(1 + rng.Intn(255))
		}
		z := rng.Intn(occ + 1)
		fp := byte(rng.Intn(256))

		fps := packLanes8(&lanes)
		InsertLane8(&fps, z, fp)

		var want [48]byte
		copy(want[:z], lanes[:z])
		want[z] = fp
		copy(want[z+1:], lanes[z:47])
		if got := unpackLanes8(&fps); got != want {
			t.Fatalf("InsertLane8(z=%d): got %v, want %v", z, got, want)
		}

		// Removing the lane just inserted must restore the original array.
		RemoveLane8(&fps, z)
		if got := unpackLanes8(&fps); got != lanes {
			t.Fatalf("RemoveLane8(z=%d) did not invert insert: got %v, want %v", z, got, lanes)
		}
	}
}

func TestInsertRemoveLane16AgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		var lanes [28]uint16
		occ := rng.Intn(28)
		for i := 0; i < occ; i++ {
			lanes[i] = uint16(1 + rng.Intn(1<<16-1))
		}
		z := rng.Intn(occ + 1)
		fp := uint16(rng.Intn(1 << 16))

		fps := packLanes16(&lanes)
		InsertLane16(&fps, z, fp)

		var want [28]uint16
		copy(want[:z], lanes[:z])
		want[z] = fp
		copy(want[z+1:], lanes[z:27])
		if got := unpackLanes16(&fps); got != want {
			t.Fatalf("InsertLane16(z=%d): got %v, want %v", z, got, want)
		}

		RemoveLane16(&fps, z)
		if got := unpackLanes16(&fps); got != lanes {
			t.Fatalf("RemoveLane16(z=%d) did not invert insert: got %v, want %v", z, got, lanes)
		}
	}
}

func TestRemoveLane8FeedsZeroAtTop(t *testing.T) {
	var lanes [48]byte
	for i := range lanes {
		lanes[i] = byte(i + 1)
	}
	fps := packLanes8(&lanes)
	RemoveLane8(&fps, 0)
	got := unpackLanes8(&fps)
	for i := 0; i < 47; i++ {
		if got[i] != lanes[i+1] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], lanes[i+1])
		}
	}
	if got[47] != 0 {
		t.Fatalf("top lane = %d, want 0", got[47])
	}
}

func TestBroadcast(t *testing.T) {
	if BroadcastByte(0xab) != 0xabababababababab {
		t.Error("BroadcastByte wrong")
	}
	if BroadcastU16(0x1234) != 0x1234123412341234 {
		t.Error("BroadcastU16 wrong")
	}
}

func BenchmarkMatch48(b *testing.B) {
	var lanes [48]byte
	rand.New(rand.NewSource(5)).Read(lanes[:])
	fps := packLanes8(&lanes)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Match48(&fps, BroadcastByte(byte(i)))
	}
	_ = sink
}

func BenchmarkMatch28(b *testing.B) {
	var lanes [28]uint16
	rng := rand.New(rand.NewSource(6))
	for i := range lanes {
		lanes[i] = uint16(rng.Intn(1 << 16))
	}
	fps := packLanes16(&lanes)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Match28(&fps, BroadcastU16(uint16(i)))
	}
	_ = sink
}

func BenchmarkInsertRemoveLane8(b *testing.B) {
	var lanes [48]byte
	rand.New(rand.NewSource(7)).Read(lanes[:])
	lanes[47] = 0
	fps := packLanes8(&lanes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := i % 47
		InsertLane8(&fps, z, byte(i))
		RemoveLane8(&fps, z)
	}
}
