package swar

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatchByteMaskExhaustivePattern(t *testing.T) {
	// Every target byte against words built from nearby values, which is
	// where zero-detection tricks typically break (off-by-one lanes).
	for target := 0; target < 256; target++ {
		var data [8]byte
		for i := range data {
			data[i] = byte(target + i - 4)
		}
		word := binary.LittleEndian.Uint64(data[:])
		got := MatchByteMask(word, byte(target))
		var want uint8
		for i, b := range data {
			if b == byte(target) {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("MatchByteMask(%#x, %#x) = %#b, want %#b", word, target, got, want)
		}
	}
}

func TestMatchByteMaskRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		word := rng.Uint64()
		target := byte(rng.Intn(256))
		got := MatchByteMask(word, target)
		var want uint8
		for lane := 0; lane < 8; lane++ {
			if byte(word>>(8*lane)) == target {
				want |= 1 << lane
			}
		}
		if got != want {
			t.Fatalf("MatchByteMask(%#x, %#x) = %#b, want %#b", word, target, got, want)
		}
	}
}

func TestMatchU16MaskRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		word := rng.Uint64()
		target := uint16(rng.Intn(1 << 16))
		got := MatchU16Mask(word, target)
		var want uint8
		for lane := 0; lane < 4; lane++ {
			if uint16(word>>(16*lane)) == target {
				want |= 1 << lane
			}
		}
		if got != want {
			t.Fatalf("MatchU16Mask(%#x, %#x) = %#b, want %#b", word, target, got, want)
		}
	}
}

func TestMatchU16MaskAllLanesMatch(t *testing.T) {
	for _, v := range []uint16{0, 1, 0x7fff, 0x8000, 0xffff} {
		word := BroadcastU16(v)
		if got := MatchU16Mask(word, v); got != 0b1111 {
			t.Errorf("MatchU16Mask(broadcast %#x) = %#b, want 1111", v, got)
		}
	}
}

func TestMatchMaskBytes(t *testing.T) {
	data := make([]byte, 48)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		rng.Read(data)
		target := byte(rng.Intn(256))
		// Plant a few guaranteed matches.
		for j := 0; j < 3; j++ {
			data[rng.Intn(48)] = target
		}
		got := MatchMaskBytes(data, target)
		var want uint64
		for i, b := range data {
			if b == target {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("MatchMaskBytes = %#x, want %#x", got, want)
		}
	}
}

func TestMatchMaskU16(t *testing.T) {
	data := make([]uint16, 28)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		for i := range data {
			data[i] = uint16(rng.Intn(1 << 16))
		}
		target := uint16(rng.Intn(1 << 16))
		data[rng.Intn(28)] = target
		got := MatchMaskU16(data, target)
		var want uint64
		for i, v := range data {
			if v == target {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("MatchMaskU16 = %#x, want %#x", got, want)
		}
	}
}

func TestRangeMask(t *testing.T) {
	cases := []struct {
		start, end uint
		want       uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, ^uint64(0)},
		{3, 5, 0b11000},
		{63, 64, 1 << 63},
		{10, 10, 0},
	}
	for _, c := range cases {
		if got := RangeMask(c.start, c.end); got != c.want {
			t.Errorf("RangeMask(%d,%d) = %#x, want %#x", c.start, c.end, got, c.want)
		}
	}
}

func TestRangeMaskProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		start, end := uint(a)%65, uint(b)%65
		if start > end {
			start, end = end, start
		}
		m := RangeMask(start, end)
		for i := uint(0); i < 64; i++ {
			in := i >= start && i < end
			if (m>>i&1 == 1) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftBytesUpDown(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 0}
	ShiftBytesUp(data, 1, 5) // make room at index 1
	want := []byte{1, 2, 2, 3, 4, 5}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("after ShiftBytesUp: %v, want %v", data, want)
		}
	}
	data[1] = 9
	ShiftBytesDown(data, 1, 6) // remove index 1
	want = []byte{1, 2, 3, 4, 5, 0}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("after ShiftBytesDown: %v, want %v", data, want)
		}
	}
}

func TestShiftU16UpDown(t *testing.T) {
	data := []uint16{10, 20, 30, 0}
	ShiftU16Up(data, 0, 3)
	data[0] = 5
	want := []uint16{5, 10, 20, 30}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("after ShiftU16Up: %v, want %v", data, want)
		}
	}
	ShiftU16Down(data, 2, 4)
	want = []uint16{5, 10, 30, 0}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("after ShiftU16Down: %v, want %v", data, want)
		}
	}
}

func TestBroadcast(t *testing.T) {
	if BroadcastByte(0xab) != 0xabababababababab {
		t.Error("BroadcastByte wrong")
	}
	if BroadcastU16(0x1234) != 0x1234123412341234 {
		t.Error("BroadcastU16 wrong")
	}
}

func BenchmarkMatchMaskBytes48(b *testing.B) {
	data := make([]byte, 48)
	rand.New(rand.NewSource(5)).Read(data)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += MatchMaskBytes(data, byte(i))
	}
	_ = sink
}

func BenchmarkMatchMaskU16x28(b *testing.B) {
	data := make([]uint16, 28)
	rng := rand.New(rand.NewSource(6))
	for i := range data {
		data[i] = uint16(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += MatchMaskU16(data, uint16(i))
	}
	_ = sink
}
