//go:build amd64 && !purego

#include "textflag.h"

// SSE2 whole-block match kernels: the amd64 analog of the paper's AVX-512
// VPCMPB block probe. A mini-filter's 48 byte lanes (or 28 uint16 lanes) are
// loaded with three (or three and a half) 16-byte unaligned loads, compared
// lane-wise against the broadcast fingerprint with PCMPEQB/PCMPEQW, and
// compressed to a lane bitmask with PMOVMSKB. Everything is SSE2 — the
// amd64 architectural baseline — so no CPUID feature gate is needed.
//
// The caller passes the SWAR broadcast word (fingerprint replicated across
// a uint64); PUNPCKLQDQ widens it to all 16 XMM bytes, so the scalar and
// vector paths share one broadcast per probe.
//
// The range variants fuse the [start, end) bucket mask: callers guarantee
// start < end <= 48 (resp. 28), so both shift counts are < 64 and the mask
// arithmetic is exact.

// func match48Asm(fps *[6]uint64, bcast uint64) uint64
TEXT ·match48Asm(SB), NOSPLIT, $0-24
	MOVQ       fps+0(FP), SI
	MOVQ       bcast+8(FP), AX
	MOVQ       AX, X0
	PUNPCKLQDQ X0, X0
	MOVOU      (SI), X1
	MOVOU      16(SI), X2
	MOVOU      32(SI), X3
	PCMPEQB    X0, X1
	PCMPEQB    X0, X2
	PCMPEQB    X0, X3
	PMOVMSKB   X1, AX
	PMOVMSKB   X2, BX
	PMOVMSKB   X3, CX
	SHLQ       $16, BX
	SHLQ       $32, CX
	ORQ        BX, AX
	ORQ        CX, AX
	MOVQ       AX, ret+16(FP)
	RET

// func match28Asm(fps *[7]uint64, bcast uint64) uint64
//
// The 28 uint16 lanes span 56 bytes: three full XMM loads plus a MOVQ for
// lanes 24..27 (upper half zeroed). PCMPEQW yields 0xFFFF per matching lane;
// PACKSSWB saturates that to one byte per lane so a single PMOVMSKB covers
// 16 lanes. The zeroed tail lanes of X4 would spuriously match a zero
// fingerprint, so the result is masked to the 28 real lanes.
TEXT ·match28Asm(SB), NOSPLIT, $0-24
	MOVQ       fps+0(FP), SI
	MOVQ       bcast+8(FP), AX
	MOVQ       AX, X0
	PUNPCKLQDQ X0, X0
	MOVOU      (SI), X1
	MOVOU      16(SI), X2
	MOVOU      32(SI), X3
	MOVQ       48(SI), X4
	PCMPEQW    X0, X1
	PCMPEQW    X0, X2
	PCMPEQW    X0, X3
	PCMPEQW    X0, X4
	PACKSSWB   X2, X1
	PACKSSWB   X4, X3
	PMOVMSKB   X1, AX
	PMOVMSKB   X3, BX
	SHLQ       $16, BX
	ORQ        BX, AX
	ANDQ       $0x0FFFFFFF, AX
	MOVQ       AX, ret+16(FP)
	RET

// func matchRange48Asm(fps *[6]uint64, bcast uint64, start, end uint) uint64
TEXT ·matchRange48Asm(SB), NOSPLIT, $0-40
	MOVQ       fps+0(FP), SI
	MOVQ       bcast+8(FP), AX
	MOVQ       AX, X0
	PUNPCKLQDQ X0, X0
	MOVOU      (SI), X1
	MOVOU      16(SI), X2
	MOVOU      32(SI), X3
	PCMPEQB    X0, X1
	PCMPEQB    X0, X2
	PCMPEQB    X0, X3
	PMOVMSKB   X1, AX
	PMOVMSKB   X2, BX
	PMOVMSKB   X3, DX
	SHLQ       $16, BX
	SHLQ       $32, DX
	ORQ        BX, AX
	ORQ        DX, AX
	MOVQ       start+16(FP), CX
	MOVQ       $-1, R9
	SHLQ       CX, R9       // -1 << start: clears lanes below the bucket
	ANDQ       R9, AX
	MOVQ       end+24(FP), CX
	MOVQ       $1, R8
	SHLQ       CX, R8
	DECQ       R8           // (1 << end) - 1: clears lanes past the bucket
	ANDQ       R8, AX
	MOVQ       AX, ret+32(FP)
	RET

// func matchRange28Asm(fps *[7]uint64, bcast uint64, start, end uint) uint64
//
// end <= 28, so the range mask also clears the spurious tail-lane bits that
// match28Asm strips explicitly.
TEXT ·matchRange28Asm(SB), NOSPLIT, $0-40
	MOVQ       fps+0(FP), SI
	MOVQ       bcast+8(FP), AX
	MOVQ       AX, X0
	PUNPCKLQDQ X0, X0
	MOVOU      (SI), X1
	MOVOU      16(SI), X2
	MOVOU      32(SI), X3
	MOVQ       48(SI), X4
	PCMPEQW    X0, X1
	PCMPEQW    X0, X2
	PCMPEQW    X0, X3
	PCMPEQW    X0, X4
	PACKSSWB   X2, X1
	PACKSSWB   X4, X3
	PMOVMSKB   X1, AX
	PMOVMSKB   X3, BX
	SHLQ       $16, BX
	ORQ        BX, AX
	MOVQ       start+16(FP), CX
	MOVQ       $-1, R9
	SHLQ       CX, R9
	ANDQ       R9, AX
	MOVQ       end+24(FP), CX
	MOVQ       $1, R8
	SHLQ       CX, R8
	DECQ       R8
	ANDQ       R8, AX
	MOVQ       AX, ret+32(FP)
	RET
