// Package swar implements SIMD-within-a-register analogs of the AVX-512
// instructions the vector quotient filter paper relies on. VPCMPB (compare 64
// bytes against a broadcast byte, producing a match mask) becomes a
// branch-free zero-detection trick over uint64 words; VPERMB-style fingerprint
// shifts are provided as single-copy in-block moves. Each operation executes a
// small constant number of instructions regardless of how full a block is,
// which is the property the paper's constant-time claim rests on.
package swar

import "encoding/binary"

const (
	onesBytes uint64 = 0x0101010101010101
	highBytes uint64 = 0x8080808080808080
	onesU16   uint64 = 0x0001000100010001
	highU16   uint64 = 0x8000800080008000
)

// BroadcastByte returns a word with b replicated into all 8 byte lanes
// (the analog of VPBROADCASTB).
func BroadcastByte(b byte) uint64 { return uint64(b) * onesBytes }

// BroadcastU16 returns a word with v replicated into all 4 uint16 lanes.
func BroadcastU16(v uint16) uint64 { return uint64(v) * onesU16 }

// MatchByteMask compares each byte lane of word against target and returns an
// 8-bit mask with bit i set iff lane i matches. This is the VPCMPB analog for
// one word. It is exact: the zero-detection expression flags a lane iff the
// lane is zero, and the movemask multiply generates no carries for the
// high-bit-only input pattern.
func MatchByteMask(word uint64, target byte) uint8 {
	x := word ^ BroadcastByte(target)
	// Exact zero-byte detection: lane arithmetic never crosses lanes because
	// the addend tops out at 0x7f+0x7f per lane. (The textbook v-1 borrow
	// trick is *not* exact — it flags the lane above a zero lane.)
	low7 := x & ^highBytes
	t := (low7 + ^highBytes) | x
	zero := ^t & highBytes
	return uint8(((zero >> 7) * 0x0102040810204080) >> 56)
}

// MatchU16Mask compares each 16-bit lane of word against target and returns a
// 4-bit mask with bit i set iff lane i matches.
func MatchU16Mask(word uint64, target uint16) uint8 {
	x := word ^ BroadcastU16(target)
	low15 := x & ^highU16
	t := (low15 + ^highU16) | x
	zero := ^t & highU16
	return uint8(((zero >> 15) * 0x1000200040008000) >> 60)
}

// MatchMaskBytes compares every byte of data (len(data) <= 64, and a multiple
// of 8) against target, returning a bitmask with bit i set iff data[i] ==
// target. This is the whole-block VPCMPB analog used to search a mini-filter's
// fingerprint array in a constant number of word operations.
func MatchMaskBytes(data []byte, target byte) uint64 {
	var mask uint64
	for w := 0; w*8 < len(data); w++ {
		word := binary.LittleEndian.Uint64(data[w*8:])
		mask |= uint64(MatchByteMask(word, target)) << (8 * w)
	}
	return mask
}

// MatchMaskU16 compares every uint16 lane of data (len(data) <= 64, a multiple
// of 4 lanes) against target, returning a bitmask with bit i set iff
// data[i] == target.
func MatchMaskU16(data []uint16, target uint16) uint64 {
	var mask uint64
	for w := 0; w*4 < len(data); w++ {
		word := uint64(data[w*4]) | uint64(data[w*4+1])<<16 |
			uint64(data[w*4+2])<<32 | uint64(data[w*4+3])<<48
		mask |= uint64(MatchU16Mask(word, target)) << (4 * w)
	}
	return mask
}

// MatchMaskBytesRange is MatchMaskBytes restricted to slots [start, end):
// only the words overlapping the range are compared (bucket runs are short,
// so this is typically a single word), and the result is masked to the
// range. start < end <= len(data) required.
func MatchMaskBytesRange(data []byte, target byte, start, end uint) uint64 {
	var mask uint64
	w0, w1 := start>>3, (end-1)>>3
	for w := w0; w <= w1; w++ {
		word := binary.LittleEndian.Uint64(data[w*8:])
		mask |= uint64(MatchByteMask(word, target)) << (8 * w)
	}
	return mask & RangeMask(start, end)
}

// MatchMaskU16Range is MatchMaskU16 restricted to lanes [start, end).
func MatchMaskU16Range(data []uint16, target uint16, start, end uint) uint64 {
	var mask uint64
	w0, w1 := start>>2, (end-1)>>2
	for w := w0; w <= w1; w++ {
		word := uint64(data[w*4]) | uint64(data[w*4+1])<<16 |
			uint64(data[w*4+2])<<32 | uint64(data[w*4+3])<<48
		mask |= uint64(MatchU16Mask(word, target)) << (4 * w)
	}
	return mask & RangeMask(start, end)
}

// RangeMask returns a bitmask with bits [start, end) set. start <= end <= 64.
func RangeMask(start, end uint) uint64 {
	var hi uint64
	if end >= 64 {
		hi = ^uint64(0)
	} else {
		hi = 1<<end - 1
	}
	return hi &^ (1<<start - 1)
}

// ShiftBytesUp shifts data[z:n] up by one position (data[z+1:n+1] = data[z:n])
// in a single move — the VPERMB analog for making room for a fingerprint.
// The caller guarantees n < len(data).
func ShiftBytesUp(data []byte, z, n int) {
	copy(data[z+1:n+1], data[z:n])
}

// ShiftBytesDown shifts data[z+1:n] down by one position, overwriting data[z]
// — the VPERMB analog for deleting a fingerprint.
func ShiftBytesDown(data []byte, z, n int) {
	copy(data[z:n-1], data[z+1:n])
	data[n-1] = 0
}

// ShiftU16Up shifts data[z:n] up by one lane.
func ShiftU16Up(data []uint16, z, n int) {
	copy(data[z+1:n+1], data[z:n])
}

// ShiftU16Down shifts data[z+1:n] down by one lane, overwriting data[z].
func ShiftU16Down(data []uint16, z, n int) {
	copy(data[z:n-1], data[z+1:n])
	data[n-1] = 0
}
