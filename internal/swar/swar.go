// Package swar implements SIMD-within-a-register analogs of the AVX-512
// instructions the vector quotient filter paper relies on. VPCMPB (compare 64
// bytes against a broadcast byte, producing a match mask) becomes a
// branch-free zero-detection trick over uint64 words; VPERMB-style fingerprint
// shifts are single-pass funnel shifts across the block's words. Each
// operation executes a small constant number of instructions regardless of how
// full a block is, which is the property the paper's constant-time claim rests
// on.
//
// All kernels operate on the word-native fingerprint layout: a mini-filter's
// fingerprint lanes are stored pre-assembled as little-endian lane words
// (lane i lives at bits 8·(i mod 8) of word i/8 for byte lanes, bits
// 16·(i mod 4) of word i/4 for uint16 lanes), so the hot path never
// re-assembles words from bytes. Kernels take fixed-size array pointers and
// use only constant indices, so the compiler emits no bounds checks — the
// stdlib substitute for the paper's "small constant instruction count per
// probe" (verified with -gcflags=-d=ssa/check_bnd/debug=1: zero checks in
// this package's match and shift kernels).
package swar

const (
	onesBytes uint64 = 0x0101010101010101
	highBytes uint64 = 0x8080808080808080
	onesU16   uint64 = 0x0001000100010001
	highU16   uint64 = 0x8000800080008000
)

// Words8 and Words16 are the word counts of the two mini-filter fingerprint
// arrays: 48 byte lanes and 28 uint16 lanes, each exactly filling the
// fingerprint region of a 64-byte block.
const (
	Words8  = 6 // 48 byte lanes
	Words16 = 7 // 28 uint16 lanes
)

// BroadcastByte returns a word with b replicated into all 8 byte lanes
// (the analog of VPBROADCASTB). Hot paths broadcast once per operation and
// pass the result to the *B kernels, so a two-block probe pays for one
// multiply.
func BroadcastByte(b byte) uint64 { return uint64(b) * onesBytes }

// BroadcastU16 returns a word with v replicated into all 4 uint16 lanes.
func BroadcastU16(v uint16) uint64 { return uint64(v) * onesU16 }

// matchBytesB compares each byte lane of word against the pre-broadcast
// target and returns an 8-bit mask with bit i set iff lane i matches. This is
// the VPCMPB analog for one word. It is exact: the zero-detection expression
// flags a lane iff the lane is zero, and the movemask multiply generates no
// carries for the high-bit-only input pattern.
func matchBytesB(word, bcast uint64) uint64 {
	x := word ^ bcast
	// Exact zero-byte detection: lane arithmetic never crosses lanes because
	// the addend tops out at 0x7f+0x7f per lane. (The textbook v-1 borrow
	// trick is *not* exact — it flags the lane above a zero lane.)
	low7 := x & ^highBytes
	t := (low7 + ^highBytes) | x
	zero := ^t & highBytes
	return ((zero >> 7) * 0x0102040810204080) >> 56
}

// matchU16B compares each 16-bit lane of word against the pre-broadcast
// target and returns a 4-bit mask with bit i set iff lane i matches.
func matchU16B(word, bcast uint64) uint64 {
	x := word ^ bcast
	low15 := x & ^highU16
	t := (low15 + ^highU16) | x
	zero := ^t & highU16
	return ((zero >> 15) * 0x1000200040008000) >> 60
}

// MatchByteMask is the single-word VPCMPB analog against an unbroadcast
// target byte.
func MatchByteMask(word uint64, target byte) uint8 {
	return uint8(matchBytesB(word, BroadcastByte(target)))
}

// MatchU16Mask is the single-word lane compare against an unbroadcast uint16.
func MatchU16Mask(word uint64, target uint16) uint8 {
	return uint8(matchU16B(word, BroadcastU16(target)))
}

// match48Generic is the portable whole-block VPCMPB analog behind Match48:
// six independent word compares, fully unrolled, no loads beyond the block
// itself and no bounds checks. It is always compiled — on amd64 it is the
// reference the assembly kernel is differentially verified against
// (FuzzMatchParity) and the fallback SetAsmKernels(false) selects.
func match48Generic(fps *[Words8]uint64, bcast uint64) uint64 {
	return matchBytesB(fps[0], bcast) |
		matchBytesB(fps[1], bcast)<<8 |
		matchBytesB(fps[2], bcast)<<16 |
		matchBytesB(fps[3], bcast)<<24 |
		matchBytesB(fps[4], bcast)<<32 |
		matchBytesB(fps[5], bcast)<<40
}

// match28Generic is the 16-bit-lane analog of match48Generic: bit i set iff
// uint16 lane i matches the pre-broadcast target.
func match28Generic(fps *[Words16]uint64, bcast uint64) uint64 {
	return matchU16B(fps[0], bcast) |
		matchU16B(fps[1], bcast)<<4 |
		matchU16B(fps[2], bcast)<<8 |
		matchU16B(fps[3], bcast)<<12 |
		matchU16B(fps[4], bcast)<<16 |
		matchU16B(fps[5], bcast)<<20 |
		matchU16B(fps[6], bcast)<<24
}

// match48RangeGeneric is the portable word-selective range match behind
// Match48Range: only the words overlapping [start, end) are compared, and
// the result is masked to the range. Bucket runs are short — at 85% load
// roughly half are empty (early-out) and the rest almost always fit one word
// — so skipping the other five words' compares beats a branch-free full
// scan in scalar code. The per-word compare is shared with match48Generic
// (matchBytesB), the final mask with everything else (RangeMask): the range
// variant adds only the word-overlap bookkeeping.
func match48RangeGeneric(fps *[Words8]uint64, bcast uint64, start, end uint) uint64 {
	if start >= end {
		return 0
	}
	w0, w1 := start>>3, (end-1)>>3
	var mask uint64
	// The w < Words8 condition both clamps an out-of-contract end and lets
	// the compiler prove fps[w] in bounds (no check in the loop body).
	for w := w0; w < Words8 && w <= w1; w++ {
		mask |= matchBytesB(fps[w], bcast) << (8 * w)
	}
	return mask & RangeMask(start, end)
}

// match28RangeGeneric is match48RangeGeneric for uint16 lanes.
func match28RangeGeneric(fps *[Words16]uint64, bcast uint64, start, end uint) uint64 {
	if start >= end {
		return 0
	}
	w0, w1 := start>>2, (end-1)>>2
	var mask uint64
	for w := w0; w < Words16 && w <= w1; w++ {
		mask |= matchU16B(fps[w], bcast) << (4 * w)
	}
	return mask & RangeMask(start, end)
}

// RangeMask returns a bitmask with bits [start, end) set. start <= end <= 64.
func RangeMask(start, end uint) uint64 {
	var hi uint64
	if end >= 64 {
		hi = ^uint64(0)
	} else {
		hi = 1<<end - 1
	}
	return hi &^ (1<<start - 1)
}

// InsertLane8 shifts byte lanes [z, 47) up by one position (lane i moves to
// lane i+1) and writes fp into lane z — the VPERMB analog for making room for
// a fingerprint, fused with the fingerprint store. Lane 47 falls off the top;
// the caller guarantees the block is not full (its top lanes are zero), so no
// stored fingerprint is lost. 0 <= z <= 47.
func InsertLane8(fps *[Words8]uint64, z int, fp byte) {
	s := uint(z&7) * 8
	keep := uint64(1)<<s - 1 // lanes below z within word z/8
	ins := uint64(fp) << s
	switch z >> 3 {
	case 0:
		fps[5] = fps[5]<<8 | fps[4]>>56
		fps[4] = fps[4]<<8 | fps[3]>>56
		fps[3] = fps[3]<<8 | fps[2]>>56
		fps[2] = fps[2]<<8 | fps[1]>>56
		fps[1] = fps[1]<<8 | fps[0]>>56
		fps[0] = fps[0]&keep | (fps[0]&^keep)<<8 | ins
	case 1:
		fps[5] = fps[5]<<8 | fps[4]>>56
		fps[4] = fps[4]<<8 | fps[3]>>56
		fps[3] = fps[3]<<8 | fps[2]>>56
		fps[2] = fps[2]<<8 | fps[1]>>56
		fps[1] = fps[1]&keep | (fps[1]&^keep)<<8 | ins
	case 2:
		fps[5] = fps[5]<<8 | fps[4]>>56
		fps[4] = fps[4]<<8 | fps[3]>>56
		fps[3] = fps[3]<<8 | fps[2]>>56
		fps[2] = fps[2]&keep | (fps[2]&^keep)<<8 | ins
	case 3:
		fps[5] = fps[5]<<8 | fps[4]>>56
		fps[4] = fps[4]<<8 | fps[3]>>56
		fps[3] = fps[3]&keep | (fps[3]&^keep)<<8 | ins
	case 4:
		fps[5] = fps[5]<<8 | fps[4]>>56
		fps[4] = fps[4]&keep | (fps[4]&^keep)<<8 | ins
	default:
		fps[5] = fps[5]&keep | (fps[5]&^keep)<<8 | ins
	}
}

// RemoveLane8 shifts byte lanes (z, 47] down by one position, overwriting
// lane z and feeding zero into lane 47 — the VPERMB analog for deleting a
// fingerprint. Lanes at or above the block's occupancy are zero before and
// after. 0 <= z <= 47.
func RemoveLane8(fps *[Words8]uint64, z int) {
	s := uint(z&7) * 8
	keep := uint64(1)<<s - 1
	switch z >> 3 {
	case 0:
		fps[0] = fps[0]&keep | (fps[0]>>8|fps[1]<<56)&^keep
		fps[1] = fps[1]>>8 | fps[2]<<56
		fps[2] = fps[2]>>8 | fps[3]<<56
		fps[3] = fps[3]>>8 | fps[4]<<56
		fps[4] = fps[4]>>8 | fps[5]<<56
		fps[5] = fps[5] >> 8
	case 1:
		fps[1] = fps[1]&keep | (fps[1]>>8|fps[2]<<56)&^keep
		fps[2] = fps[2]>>8 | fps[3]<<56
		fps[3] = fps[3]>>8 | fps[4]<<56
		fps[4] = fps[4]>>8 | fps[5]<<56
		fps[5] = fps[5] >> 8
	case 2:
		fps[2] = fps[2]&keep | (fps[2]>>8|fps[3]<<56)&^keep
		fps[3] = fps[3]>>8 | fps[4]<<56
		fps[4] = fps[4]>>8 | fps[5]<<56
		fps[5] = fps[5] >> 8
	case 3:
		fps[3] = fps[3]&keep | (fps[3]>>8|fps[4]<<56)&^keep
		fps[4] = fps[4]>>8 | fps[5]<<56
		fps[5] = fps[5] >> 8
	case 4:
		fps[4] = fps[4]&keep | (fps[4]>>8|fps[5]<<56)&^keep
		fps[5] = fps[5] >> 8
	default:
		fps[5] = fps[5]&keep | fps[5]>>8&^keep
	}
}

// InsertLane16 shifts uint16 lanes [z, 27) up by one position and writes fp
// into lane z; see InsertLane8. 0 <= z <= 27.
func InsertLane16(fps *[Words16]uint64, z int, fp uint16) {
	s := uint(z&3) * 16
	keep := uint64(1)<<s - 1
	ins := uint64(fp) << s
	switch z >> 2 {
	case 0:
		fps[6] = fps[6]<<16 | fps[5]>>48
		fps[5] = fps[5]<<16 | fps[4]>>48
		fps[4] = fps[4]<<16 | fps[3]>>48
		fps[3] = fps[3]<<16 | fps[2]>>48
		fps[2] = fps[2]<<16 | fps[1]>>48
		fps[1] = fps[1]<<16 | fps[0]>>48
		fps[0] = fps[0]&keep | (fps[0]&^keep)<<16 | ins
	case 1:
		fps[6] = fps[6]<<16 | fps[5]>>48
		fps[5] = fps[5]<<16 | fps[4]>>48
		fps[4] = fps[4]<<16 | fps[3]>>48
		fps[3] = fps[3]<<16 | fps[2]>>48
		fps[2] = fps[2]<<16 | fps[1]>>48
		fps[1] = fps[1]&keep | (fps[1]&^keep)<<16 | ins
	case 2:
		fps[6] = fps[6]<<16 | fps[5]>>48
		fps[5] = fps[5]<<16 | fps[4]>>48
		fps[4] = fps[4]<<16 | fps[3]>>48
		fps[3] = fps[3]<<16 | fps[2]>>48
		fps[2] = fps[2]&keep | (fps[2]&^keep)<<16 | ins
	case 3:
		fps[6] = fps[6]<<16 | fps[5]>>48
		fps[5] = fps[5]<<16 | fps[4]>>48
		fps[4] = fps[4]<<16 | fps[3]>>48
		fps[3] = fps[3]&keep | (fps[3]&^keep)<<16 | ins
	case 4:
		fps[6] = fps[6]<<16 | fps[5]>>48
		fps[5] = fps[5]<<16 | fps[4]>>48
		fps[4] = fps[4]&keep | (fps[4]&^keep)<<16 | ins
	case 5:
		fps[6] = fps[6]<<16 | fps[5]>>48
		fps[5] = fps[5]&keep | (fps[5]&^keep)<<16 | ins
	default:
		fps[6] = fps[6]&keep | (fps[6]&^keep)<<16 | ins
	}
}

// RemoveLane16 shifts uint16 lanes (z, 27] down by one position, overwriting
// lane z; see RemoveLane8. 0 <= z <= 27.
func RemoveLane16(fps *[Words16]uint64, z int) {
	s := uint(z&3) * 16
	keep := uint64(1)<<s - 1
	switch z >> 2 {
	case 0:
		fps[0] = fps[0]&keep | (fps[0]>>16|fps[1]<<48)&^keep
		fps[1] = fps[1]>>16 | fps[2]<<48
		fps[2] = fps[2]>>16 | fps[3]<<48
		fps[3] = fps[3]>>16 | fps[4]<<48
		fps[4] = fps[4]>>16 | fps[5]<<48
		fps[5] = fps[5]>>16 | fps[6]<<48
		fps[6] = fps[6] >> 16
	case 1:
		fps[1] = fps[1]&keep | (fps[1]>>16|fps[2]<<48)&^keep
		fps[2] = fps[2]>>16 | fps[3]<<48
		fps[3] = fps[3]>>16 | fps[4]<<48
		fps[4] = fps[4]>>16 | fps[5]<<48
		fps[5] = fps[5]>>16 | fps[6]<<48
		fps[6] = fps[6] >> 16
	case 2:
		fps[2] = fps[2]&keep | (fps[2]>>16|fps[3]<<48)&^keep
		fps[3] = fps[3]>>16 | fps[4]<<48
		fps[4] = fps[4]>>16 | fps[5]<<48
		fps[5] = fps[5]>>16 | fps[6]<<48
		fps[6] = fps[6] >> 16
	case 3:
		fps[3] = fps[3]&keep | (fps[3]>>16|fps[4]<<48)&^keep
		fps[4] = fps[4]>>16 | fps[5]<<48
		fps[5] = fps[5]>>16 | fps[6]<<48
		fps[6] = fps[6] >> 16
	case 4:
		fps[4] = fps[4]&keep | (fps[4]>>16|fps[5]<<48)&^keep
		fps[5] = fps[5]>>16 | fps[6]<<48
		fps[6] = fps[6] >> 16
	case 5:
		fps[5] = fps[5]&keep | (fps[5]>>16|fps[6]<<48)&^keep
		fps[6] = fps[6] >> 16
	default:
		fps[6] = fps[6]&keep | fps[6]>>16&^keep
	}
}

// Lane8 returns byte lane i of the word-native fingerprint array. Lane
// accessors serve the cold paths — the scalar ablation variant,
// serialization, and tests; hot paths use the whole-block kernels above.
func Lane8(fps *[Words8]uint64, i int) byte {
	return byte(fps[i>>3] >> (uint(i&7) * 8))
}

// SetLane8 stores v into byte lane i.
func SetLane8(fps *[Words8]uint64, i int, v byte) {
	s := uint(i&7) * 8
	fps[i>>3] = fps[i>>3]&^(0xff<<s) | uint64(v)<<s
}

// Lane16 returns uint16 lane i of the word-native fingerprint array.
func Lane16(fps *[Words16]uint64, i int) uint16 {
	return uint16(fps[i>>2] >> (uint(i&3) * 16))
}

// SetLane16 stores v into uint16 lane i.
func SetLane16(fps *[Words16]uint64, i int, v uint16) {
	s := uint(i&3) * 16
	fps[i>>2] = fps[i>>2]&^(0xffff<<s) | uint64(v)<<s
}
