package swar

import (
	"sync/atomic"

	"vqf/internal/telemetry"
)

// Kernel dispatch. On amd64 the whole-block match kernels have a second
// implementation in SSE2 assembly (match_amd64.s): three 16-byte unaligned
// loads, PCMPEQB/PCMPEQW byte compares against the broadcast fingerprint and
// a PMOVMSKB movemask — the closest baseline-amd64 analog of the AVX-512
// VPCMPB probe the paper builds on. Both implementations are always present:
// the generic one is the differential reference (FuzzMatchParity asserts
// bit-exact agreement on random blocks) and the portability fallback for
// every other GOARCH or a -tags purego build.
//
// Selection is a package-level atomic so one process can benchmark both
// paths (vqfbench -kernels-impl, the asm-vs-generic regression gate) and so
// toggling under -race tests is sound. The flag is read once per kernel
// call; the load is a plain MOV on amd64 and the branch predicts perfectly,
// which keeps the dispatch cost below measurement noise. On architectures
// without assembly kernels hasAsm is a compile-time false and the asm branch
// folds away entirely.

// useAsm holds whether the assembly kernels are active. It is true at init
// exactly when they exist for this GOARCH (and the build is not purego).
var useAsm atomic.Bool

func init() {
	useAsm.Store(hasAsm)
	recordDispatch()
}

// recordDispatch logs the current kernel selection (asm on/off, fused
// probe availability, whether asm exists at all) to the global event ring,
// so a process's event stream shows which implementation its numbers came
// from — at init and again on every SetAsmKernels toggle.
func recordDispatch() {
	telemetry.Global().Record(telemetry.EvAsmDispatch,
		b2u(AsmKernelsEnabled()), b2u(FastProbeEnabled()), b2u(hasAsm))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// HasAsmKernels reports whether this build contains assembly match kernels
// (amd64 without the purego tag).
func HasAsmKernels() bool { return hasAsm }

// AsmKernelsEnabled reports whether the assembly kernels are currently
// selected.
func AsmKernelsEnabled() bool { return hasAsm && useAsm.Load() }

// SetAsmKernels selects between the assembly and generic match kernels at
// runtime. It reports the resulting state: enabling has no effect on builds
// without assembly kernels. Intended for benchmarks, parity gates and tests;
// concurrent use with running filter operations is safe (operations observe
// one implementation or the other, which agree bit-for-bit).
func SetAsmKernels(enable bool) bool {
	useAsm.Store(enable && hasAsm)
	recordDispatch()
	return AsmKernelsEnabled()
}

// HasFastSelect reports whether the CPU (and build) supports the
// PDEP/TZCNT/POPCNT metadata-select instructions used by the fused probe
// kernels in internal/minifilter. These are post-baseline amd64 extensions
// (BMI1/BMI2, Haswell-era), so unlike the SSE2 match kernels they carry a
// CPUID gate.
func HasFastSelect() bool { return hasFastSelect }

// FastProbeEnabled reports whether fused assembly probe kernels should be
// used: the CPU supports them and assembly kernels are currently selected.
// It shares the SetAsmKernels switch so one toggle moves every kernel
// between its assembly and generic implementation.
func FastProbeEnabled() bool { return hasFastSelect && useAsm.Load() }

// Match48 compares every byte lane of the word-native fingerprint array
// against the pre-broadcast target, returning a bitmask with bit i set iff
// lane i matches — the whole-block VPCMPB analog.
func Match48(fps *[Words8]uint64, bcast uint64) uint64 {
	if hasAsm && useAsm.Load() {
		return match48Asm(fps, bcast)
	}
	return match48Generic(fps, bcast)
}

// Match28 is the 16-bit-lane analog of Match48: bit i set iff uint16 lane i
// matches the pre-broadcast target.
func Match28(fps *[Words16]uint64, bcast uint64) uint64 {
	if hasAsm && useAsm.Load() {
		return match28Asm(fps, bcast)
	}
	return match28Generic(fps, bcast)
}

// Match48Range is Match48 restricted to lanes [start, end): bits outside the
// range are clear. An empty range returns 0 without touching the block —
// roughly half of all bucket probes at 85% load, so the early-out stays in
// front of both implementations.
func Match48Range(fps *[Words8]uint64, bcast uint64, start, end uint) uint64 {
	if start >= end {
		return 0
	}
	if hasAsm && useAsm.Load() {
		return matchRange48Asm(fps, bcast, start, end)
	}
	return match48RangeGeneric(fps, bcast, start, end)
}

// Match28Range is Match28 restricted to lanes [start, end); see Match48Range.
func Match28Range(fps *[Words16]uint64, bcast uint64, start, end uint) uint64 {
	if start >= end {
		return 0
	}
	if hasAsm && useAsm.Load() {
		return matchRange28Asm(fps, bcast, start, end)
	}
	return match28RangeGeneric(fps, bcast, start, end)
}
