package swar

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// Differential parity gate for the assembly match kernels: on builds that
// have them, every exported match kernel must agree bit-for-bit with the
// always-compiled generic implementation, over random blocks, adversarial
// fingerprints (0x00, present, absent) and every [start, end) range. On
// builds without assembly kernels these tests verify the dispatch wrappers
// resolve to the generic path.

func randWords8(r *rand.Rand) [Words8]uint64 {
	var w [Words8]uint64
	for i := range w {
		w[i] = r.Uint64()
	}
	return w
}

func randWords16(r *rand.Rand) [Words16]uint64 {
	var w [Words16]uint64
	for i := range w {
		w[i] = r.Uint64()
	}
	return w
}

func TestMatch48AsmParity(t *testing.T) {
	if !HasAsmKernels() {
		t.Skip("no assembly kernels in this build")
	}
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		fps := randWords8(r)
		fp := byte(r.Uint32())
		if iter%4 == 0 {
			fp = Lane8(&fps, r.Intn(48)) // guaranteed present
		}
		if iter%16 == 1 {
			fp = 0
		}
		bc := BroadcastByte(fp)
		if got, want := match48Asm(&fps, bc), match48Generic(&fps, bc); got != want {
			t.Fatalf("match48 fp %#x: asm %#x generic %#x (fps %v)", fp, got, want, fps)
		}
		for start := uint(0); start <= 48; start++ {
			for _, end := range []uint{start, start + 1, (start + 7) % 49, 48} {
				if end < start || end > 48 {
					continue
				}
				if start >= end {
					continue
				}
				got := matchRange48Asm(&fps, bc, start, end)
				want := match48RangeGeneric(&fps, bc, start, end)
				if got != want {
					t.Fatalf("matchRange48 fp %#x [%d,%d): asm %#x generic %#x", fp, start, end, got, want)
				}
			}
		}
	}
}

func TestMatch28AsmParity(t *testing.T) {
	if !HasAsmKernels() {
		t.Skip("no assembly kernels in this build")
	}
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		fps := randWords16(r)
		fp := uint16(r.Uint32())
		if iter%4 == 0 {
			fp = Lane16(&fps, r.Intn(28))
		}
		if iter%16 == 1 {
			fp = 0 // the zeroed tail lanes of the asm MOVQ load match 0; must be masked
		}
		bc := BroadcastU16(fp)
		if got, want := match28Asm(&fps, bc), match28Generic(&fps, bc); got != want {
			t.Fatalf("match28 fp %#x: asm %#x generic %#x (fps %v)", fp, got, want, fps)
		}
		for start := uint(0); start <= 28; start++ {
			for _, end := range []uint{start + 1, (start + 5) % 29, 28} {
				if end <= start || end > 28 {
					continue
				}
				got := matchRange28Asm(&fps, bc, start, end)
				want := match28RangeGeneric(&fps, bc, start, end)
				if got != want {
					t.Fatalf("matchRange28 fp %#x [%d,%d): asm %#x generic %#x", fp, start, end, got, want)
				}
			}
		}
	}
}

// TestSetAsmKernels verifies the dispatch switch: both settings produce
// identical results through the exported wrappers, and the reported state
// matches the build's capability.
func TestSetAsmKernels(t *testing.T) {
	defer SetAsmKernels(true)
	if got := SetAsmKernels(true); got != HasAsmKernels() {
		t.Fatalf("SetAsmKernels(true) = %v, want %v", got, HasAsmKernels())
	}
	if got := SetAsmKernels(false); got {
		t.Fatal("SetAsmKernels(false) reported asm still enabled")
	}
	r := rand.New(rand.NewSource(3))
	fps8 := randWords8(r)
	fps16 := randWords16(r)
	bc8 := BroadcastByte(0x5a)
	bc16 := BroadcastU16(0xbeef)
	SetAsmKernels(false)
	g48, g28 := Match48(&fps8, bc8), Match28(&fps16, bc16)
	g48r := Match48Range(&fps8, bc8, 3, 17)
	g28r := Match28Range(&fps16, bc16, 2, 11)
	SetAsmKernels(true)
	if a := Match48(&fps8, bc8); a != g48 {
		t.Fatalf("Match48 differs across dispatch: %#x vs %#x", a, g48)
	}
	if a := Match28(&fps16, bc16); a != g28 {
		t.Fatalf("Match28 differs across dispatch: %#x vs %#x", a, g28)
	}
	if a := Match48Range(&fps8, bc8, 3, 17); a != g48r {
		t.Fatalf("Match48Range differs across dispatch: %#x vs %#x", a, g48r)
	}
	if a := Match28Range(&fps16, bc16, 2, 11); a != g28r {
		t.Fatalf("Match28Range differs across dispatch: %#x vs %#x", a, g28r)
	}
}

// FuzzMatchParity fuzzes the asm/generic agreement over arbitrary block
// contents, fingerprints and ranges — the CI asm-parity smoke. The corpus
// bytes fill the widest block; both geometries are checked from the same
// input.
func FuzzMatchParity(f *testing.F) {
	f.Add(make([]byte, 64), uint16(0), uint8(0), uint8(48))
	f.Add([]byte("the quick brown fox jumps over the lazy dog, twice over!"), uint16(0x6f6f), uint8(3), uint8(29))
	f.Fuzz(func(t *testing.T, raw []byte, fp uint16, start8, end8 uint8) {
		if !HasAsmKernels() {
			t.Skip("no assembly kernels in this build")
		}
		var buf [56]byte
		copy(buf[:], raw)
		var fps8 [Words8]uint64
		for i := range fps8 {
			fps8[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		var fps16 [Words16]uint64
		for i := range fps16 {
			fps16[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		bc8 := BroadcastByte(byte(fp))
		bc16 := BroadcastU16(fp)
		if got, want := match48Asm(&fps8, bc8), match48Generic(&fps8, bc8); got != want {
			t.Errorf("match48: asm %#x generic %#x", got, want)
		}
		if got, want := match28Asm(&fps16, bc16), match28Generic(&fps16, bc16); got != want {
			t.Errorf("match28: asm %#x generic %#x", got, want)
		}
		s, e := uint(start8)%49, uint(end8)%49
		if s < e {
			if got, want := matchRange48Asm(&fps8, bc8, s, e), match48RangeGeneric(&fps8, bc8, s, e); got != want {
				t.Errorf("matchRange48 [%d,%d): asm %#x generic %#x", s, e, got, want)
			}
		}
		s16, e16 := s%29, e%29
		if s16 < e16 {
			if got, want := matchRange28Asm(&fps16, bc16, s16, e16), match28RangeGeneric(&fps16, bc16, s16, e16); got != want {
				t.Errorf("matchRange28 [%d,%d): asm %#x generic %#x", s16, e16, got, want)
			}
		}
	})
}
