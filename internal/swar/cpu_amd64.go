//go:build amd64 && !purego

package swar

// cpuid executes the CPUID instruction with the given leaf (EAX) and
// subleaf (ECX); implemented in cpu_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// hasFastSelect reports whether the CPU has the bit-manipulation
// instructions the fused select+match probe kernels need: POPCNT (CPUID
// leaf 1 ECX bit 23), and BMI1/BMI2 for TZCNT and PDEP (leaf 7 subleaf 0
// EBX bits 3 and 8). Unlike the SSE2 match kernels these are not part of
// the amd64 baseline, so the probe kernels are gated at runtime.
var hasFastSelect = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const popcntBit = 1 << 23
	_, b7, _, _ := cpuid(7, 0)
	const bmi1Bit = 1 << 3
	const bmi2Bit = 1 << 8
	return c1&popcntBit != 0 && b7&bmi1Bit != 0 && b7&bmi2Bit != 0
}()
