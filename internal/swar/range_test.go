package swar

import (
	"math/rand"
	"testing"
)

func TestMatchMaskBytesRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 48)
	for trial := 0; trial < 5000; trial++ {
		rng.Read(data)
		target := byte(rng.Intn(256))
		data[rng.Intn(48)] = target
		start := uint(rng.Intn(48))
		end := start + uint(rng.Intn(48-int(start))) + 1
		if end > 48 {
			end = 48
		}
		want := MatchMaskBytes(data, target) & RangeMask(start, end)
		if got := MatchMaskBytesRange(data, target, start, end); got != want {
			t.Fatalf("MatchMaskBytesRange(%d,%d) = %#x, want %#x", start, end, got, want)
		}
	}
}

func TestMatchMaskBytesRangeBoundaries(t *testing.T) {
	data := make([]byte, 48)
	for i := range data {
		data[i] = 0xaa
	}
	// Full range, single-slot ranges at both ends, and a word-straddling one.
	if got := MatchMaskBytesRange(data, 0xaa, 0, 48); got != 1<<48-1 {
		t.Errorf("full range = %#x", got)
	}
	if got := MatchMaskBytesRange(data, 0xaa, 0, 1); got != 1 {
		t.Errorf("first slot = %#x", got)
	}
	if got := MatchMaskBytesRange(data, 0xaa, 47, 48); got != 1<<47 {
		t.Errorf("last slot = %#x", got)
	}
	if got := MatchMaskBytesRange(data, 0xaa, 7, 9); got != 0b11<<7 {
		t.Errorf("straddling range = %#x", got)
	}
	if got := MatchMaskBytesRange(data, 0xbb, 0, 48); got != 0 {
		t.Errorf("no-match = %#x", got)
	}
}

func TestMatchMaskU16RangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]uint16, 28)
	for trial := 0; trial < 5000; trial++ {
		for i := range data {
			data[i] = uint16(rng.Intn(1 << 16))
		}
		target := uint16(rng.Intn(1 << 16))
		data[rng.Intn(28)] = target
		start := uint(rng.Intn(28))
		end := start + uint(rng.Intn(28-int(start))) + 1
		if end > 28 {
			end = 28
		}
		want := MatchMaskU16(data, target) & RangeMask(start, end)
		if got := MatchMaskU16Range(data, target, start, end); got != want {
			t.Fatalf("MatchMaskU16Range(%d,%d) = %#x, want %#x", start, end, got, want)
		}
	}
}

func TestMatchMaskU16RangeBoundaries(t *testing.T) {
	data := make([]uint16, 28)
	for i := range data {
		data[i] = 0x1234
	}
	if got := MatchMaskU16Range(data, 0x1234, 0, 28); got != 1<<28-1 {
		t.Errorf("full range = %#x", got)
	}
	if got := MatchMaskU16Range(data, 0x1234, 27, 28); got != 1<<27 {
		t.Errorf("last lane = %#x", got)
	}
	if got := MatchMaskU16Range(data, 0x1234, 3, 5); got != 0b11<<3 {
		t.Errorf("straddling = %#x", got)
	}
}
