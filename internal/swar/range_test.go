package swar

import (
	"math/rand"
	"testing"
)

// The range variants are defined as the full-mask kernel masked to the range
// (there is exactly one matching implementation per lane width); these tests
// pin that equivalence and the boundary behaviour.

func TestMatch48RangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var lanes [48]byte
	for trial := 0; trial < 5000; trial++ {
		rng.Read(lanes[:])
		target := byte(rng.Intn(256))
		lanes[rng.Intn(48)] = target
		start := uint(rng.Intn(48))
		end := start + uint(rng.Intn(48-int(start))) + 1
		if end > 48 {
			end = 48
		}
		fps := packLanes8(&lanes)
		bc := BroadcastByte(target)
		want := Match48(&fps, bc) & RangeMask(start, end)
		if got := Match48Range(&fps, bc, start, end); got != want {
			t.Fatalf("Match48Range(%d,%d) = %#x, want %#x", start, end, got, want)
		}
	}
}

func TestMatch48RangeBoundaries(t *testing.T) {
	var lanes [48]byte
	for i := range lanes {
		lanes[i] = 0xaa
	}
	fps := packLanes8(&lanes)
	bc := BroadcastByte(0xaa)
	// Full range, single-slot ranges at both ends, and a word-straddling one.
	if got := Match48Range(&fps, bc, 0, 48); got != 1<<48-1 {
		t.Errorf("full range = %#x", got)
	}
	if got := Match48Range(&fps, bc, 0, 1); got != 1 {
		t.Errorf("first slot = %#x", got)
	}
	if got := Match48Range(&fps, bc, 47, 48); got != 1<<47 {
		t.Errorf("last slot = %#x", got)
	}
	if got := Match48Range(&fps, bc, 7, 9); got != 0b11<<7 {
		t.Errorf("straddling range = %#x", got)
	}
	if got := Match48Range(&fps, BroadcastByte(0xbb), 0, 48); got != 0 {
		t.Errorf("no-match = %#x", got)
	}
}

func TestMatch28RangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var lanes [28]uint16
	for trial := 0; trial < 5000; trial++ {
		for i := range lanes {
			lanes[i] = uint16(rng.Intn(1 << 16))
		}
		target := uint16(rng.Intn(1 << 16))
		lanes[rng.Intn(28)] = target
		start := uint(rng.Intn(28))
		end := start + uint(rng.Intn(28-int(start))) + 1
		if end > 28 {
			end = 28
		}
		fps := packLanes16(&lanes)
		bc := BroadcastU16(target)
		want := Match28(&fps, bc) & RangeMask(start, end)
		if got := Match28Range(&fps, bc, start, end); got != want {
			t.Fatalf("Match28Range(%d,%d) = %#x, want %#x", start, end, got, want)
		}
	}
}

func TestMatch28RangeBoundaries(t *testing.T) {
	var lanes [28]uint16
	for i := range lanes {
		lanes[i] = 0x1234
	}
	fps := packLanes16(&lanes)
	bc := BroadcastU16(0x1234)
	if got := Match28Range(&fps, bc, 0, 28); got != 1<<28-1 {
		t.Errorf("full range = %#x", got)
	}
	if got := Match28Range(&fps, bc, 27, 28); got != 1<<27 {
		t.Errorf("last lane = %#x", got)
	}
	if got := Match28Range(&fps, bc, 3, 5); got != 0b11<<3 {
		t.Errorf("straddling = %#x", got)
	}
}
