package elastic

import (
	"math/rand"
	"testing"
)

// TestContainsBatchCascade: batch answers over a multi-level cascade must
// equal per-key Contains exactly (same probes, deterministic state), in
// input order, for both the sequential and concurrent cascades.
func TestContainsBatchCascade(t *testing.T) {
	cfg := Config{TargetFPR: 1e-3, InitialSlots: 1 << 9}
	rng := rand.New(rand.NewSource(21))
	present := make([]uint64, 8000) // forces several growths past 512 slots
	for i := range present {
		present[i] = rng.Uint64()
	}
	mixed := make([]uint64, 0, 2*len(present))
	for _, h := range present {
		mixed = append(mixed, h, rng.Uint64())
	}

	t.Run("sequential", func(t *testing.T) {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range present {
			f.Insert(h)
		}
		if f.NumLevels() < 3 {
			t.Fatalf("scenario too weak: only %d levels", f.NumLevels())
		}
		out := f.ContainsBatch(mixed, nil)
		for i, h := range mixed {
			if out[i] != f.Contains(h) {
				t.Fatalf("out[%d] = %v, Contains = %v", i, out[i], f.Contains(h))
			}
		}
		// Steady state: the second call reuses the grown scratch and dst.
		if avg := testing.AllocsPerRun(10, func() { f.ContainsBatch(mixed, out) }); avg != 0 {
			t.Errorf("cascade ContainsBatch allocates %.1f times per call, want 0", avg)
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		f, err := NewConcurrent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range present {
			f.Insert(h)
		}
		out := f.ContainsBatch(mixed, nil)
		for i, h := range mixed {
			if out[i] != f.Contains(h) {
				t.Fatalf("out[%d] = %v, Contains = %v", i, out[i], f.Contains(h))
			}
		}
	})
}

// TestContainsBatchCascadeEmpty: zero-length batches and empty cascades.
func TestContainsBatchCascadeEmpty(t *testing.T) {
	f, err := New(Config{TargetFPR: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if out := f.ContainsBatch(nil, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	out := f.ContainsBatch([]uint64{1, 2, 3}, nil)
	for i, v := range out {
		if v {
			t.Fatalf("empty cascade claims membership at %d", i)
		}
	}
}
