package elastic

import (
	"sync"
	"sync/atomic"
	"testing"

	"vqf/internal/workload"
)

// compactHammer drives nWorkers insert/lookup/remove goroutines against f
// while a dedicated goroutine loops CompactNow until the workers finish.
// Each worker owns a disjoint key stream: it inserts a batch, verifies
// every acked insert is visible, removes a prefix of the batch, and
// verifies the removed keys' absence is never "undone" by a compaction
// (the live suffix must stay visible throughout). Returns the total number
// of keys left live.
func compactHammer(t *testing.T, f interface {
	Insert(uint64) bool
	Contains(uint64) bool
	Remove(uint64) bool
	CompactNow() CompactionResult
}, nWorkers, rounds, batch int) uint64 {
	t.Helper()
	var live atomic.Uint64
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			stream := workload.NewStream(seed)
			for r := 0; r < rounds; r++ {
				keys := stream.Keys(batch)
				for _, k := range keys {
					if !f.Insert(k) {
						t.Error("insert failed")
						return
					}
				}
				for _, k := range keys {
					if !f.Contains(k) {
						t.Errorf("false negative for acked insert %#x", k)
						return
					}
				}
				cut := batch * 3 / 4
				for _, k := range keys[:cut] {
					if !f.Remove(k) {
						t.Errorf("remove of inserted key %#x failed", k)
						return
					}
				}
				for _, k := range keys[cut:] {
					if !f.Contains(k) {
						t.Errorf("false negative for live key %#x after removes", k)
						return
					}
				}
				live.Add(uint64(batch - cut))
			}
		}(uint64(1000 + w))
	}
	var compactions int
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for !done.Load() {
			if res := f.CompactNow(); res.LevelsMerged > 0 {
				compactions++
			}
		}
	}()
	wg.Wait()
	done.Store(true)
	<-compactorDone
	if compactions == 0 {
		t.Log("warning: no compaction merged anything during the hammer")
	}
	return live.Load()
}

// TestCompactRaceConcurrent hammers a concurrent cascade with churn while
// compactions loop: acked inserts must never go missing and removed keys
// must never resurrect (checked via the exact final count — a resurrection
// would leave the count high).
func TestCompactRaceConcurrent(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds, batch := 12, 1500
	if testing.Short() {
		rounds = 4
	}
	live := compactHammer(t, f, 4, rounds, batch)
	if f.Count() != live {
		t.Fatalf("final count %d, want %d live keys (lost or resurrected instances)", f.Count(), live)
	}
	// Quiesced: every worker's live suffix must still answer true. Workers
	// re-derive their streams deterministically.
	for w := 0; w < 4; w++ {
		stream := workload.NewStream(uint64(1000 + w))
		for r := 0; r < rounds; r++ {
			keys := stream.Keys(batch)
			for _, k := range keys[batch*3/4:] {
				if !f.Contains(k) {
					t.Fatalf("lost live key %#x after quiescence", k)
				}
			}
		}
	}
}

// TestCompactRaceSharded runs the same hammer against a sharded cascade
// with auto-compaction enabled on top of the explicit compaction loop.
func TestCompactRaceSharded(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9,
		CompactMinLevels: 4, CompactMaxLoad: 0.6}
	f, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rounds, batch := 8, 1500
	if testing.Short() {
		rounds = 3
	}
	live := compactHammer(t, f, 4, rounds, batch)
	if f.Count() != live {
		t.Fatalf("final count %d, want %d live keys", f.Count(), live)
	}
	snap := f.Snapshot()
	if snap.Compactions == 0 {
		t.Log("warning: sharded hammer finished without a completed compaction")
	}
}
