package elastic

import (
	"sync"
	"sync/atomic"
	"testing"

	"vqf/internal/workload"
)

func TestConcurrentGrowthCorrectness(t *testing.T) {
	f, err := NewConcurrent(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers       = 4
		keysPerWriter = 8000
	)
	var wg sync.WaitGroup
	keys := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		keys[w] = workload.NewStream(uint64(100 + w)).Keys(keysPerWriter)
		wg.Add(1)
		go func(ks []uint64) {
			defer wg.Done()
			for _, k := range ks {
				if !f.Insert(k) {
					t.Error("concurrent insert failed")
					return
				}
			}
		}(keys[w])
	}
	wg.Wait()
	if f.Count() != writers*keysPerWriter {
		t.Fatalf("count %d != %d", f.Count(), writers*keysPerWriter)
	}
	if f.NumLevels() < 4 {
		t.Fatalf("expected several growth events, got %d levels", f.NumLevels())
	}
	for _, ks := range keys {
		for _, k := range ks {
			if !f.Contains(k) {
				t.Fatal("false negative after concurrent growth")
			}
		}
	}
}

// TestConcurrentReadersDuringGrowth is the acceptance race test: Contains
// runs from many goroutines while a grower drives the cascade through
// multiple level additions. Run under -race this validates the atomic
// level-list publication and the per-level optimistic reads together.
func TestConcurrentReadersDuringGrowth(t *testing.T) {
	f, err := NewConcurrent(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	warm := workload.NewStream(200).Keys(500)
	for _, k := range warm {
		f.Insert(k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			neg := workload.NewStream(seed)
			for !stop.Load() {
				// Inserted keys must always be visible; probe negatives too
				// so the newest-first walk crosses level boundaries.
				for _, k := range warm {
					if !f.Contains(k) {
						t.Error("false negative during growth")
						return
					}
				}
				f.Contains(neg.Next())
				f.Snapshot() // exercises the occupancy scan alongside writers
			}
		}(uint64(300 + r))
	}
	grower := workload.NewStream(400)
	startLevels := f.NumLevels()
	for f.NumLevels() < startLevels+3 {
		f.Insert(grower.Next())
	}
	stop.Store(true)
	wg.Wait()
}

func TestConcurrentRemove(t *testing.T) {
	f, err := NewConcurrent(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(500).Keys(6000)
	for _, k := range keys {
		f.Insert(k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for i := part; i < len(keys); i += 3 {
				if !f.Remove(keys[i]) {
					t.Error("concurrent remove of inserted key failed")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Count() != 0 {
		t.Fatalf("count %d after removing everything", f.Count())
	}
}
