package elastic

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"vqf/internal/workload"
)

func testConfig() Config {
	return Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 10}
}

func TestGrowthAddsLevels(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.NumLevels() != 1 {
		t.Fatalf("fresh cascade has %d levels", f.NumLevels())
	}
	src := workload.NewStream(1)
	keys := src.Keys(40000) // ≈ 39× the initial item budget → several growths
	for _, k := range keys {
		if !f.Insert(k) {
			t.Fatal("elastic insert failed")
		}
	}
	if f.NumLevels() < 4 {
		t.Fatalf("expected ≥4 levels after 40k inserts into 2^10 base, got %d", f.NumLevels())
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("count %d != %d", f.Count(), len(keys))
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatal("false negative across growth")
		}
	}
}

func TestRemoveAcrossLevels(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(2).Keys(10000)
	for _, k := range keys {
		f.Insert(k)
	}
	if f.NumLevels() < 3 {
		t.Fatalf("want ≥3 levels, got %d", f.NumLevels())
	}
	// Every key — including those trapped in old, read-only levels — must be
	// removable.
	for _, k := range keys {
		if !f.Remove(k) {
			t.Fatal("remove of inserted key failed")
		}
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after removing everything", f.Count())
	}
}

func TestBudgetSchedule(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Budgets must sum to ε over the full possible depth.
	var sum float64
	for i := 0; i < MaxLevels; i++ {
		sum += levelBudget(cfg, i)
	}
	if sum > cfg.TargetFPR*(1+1e-9) {
		t.Fatalf("budget sum %g exceeds ε %g", sum, cfg.TargetFPR)
	}
	// Each level's worst-case realized FPR (at its growth trigger) must fit
	// its budget, for every level small enough to ever be allocated (beyond
	// ~2^50 slots the sizing clamp kicks in and the level could not be built).
	for i := 0; i < 24; i++ {
		_, trigger, alloc := levelSizing(cfg, i)
		geomFPR := FPR8Full
		if levelKind(cfg, i) == 16 {
			geomFPR = FPR16Full
		}
		realized := geomFPR * float64(trigger) / float64(alloc)
		if realized > levelBudget(cfg, i)*(1+1e-9) {
			t.Fatalf("level %d: worst-case realized FPR %g exceeds budget %g",
				i, realized, levelBudget(cfg, i))
		}
	}
	// The schedule must tighten: deep levels get 16-bit fingerprints and
	// eventually over-provisioned slots.
	if levelKind(cfg, 0) != 16 { // ε/2 < 8-bit full-load FPR already
		t.Fatalf("level 0 kind %d", levelKind(cfg, 0))
	}
	base20, _, alloc20 := levelSizing(cfg, 20)
	if alloc20 <= base20 {
		t.Fatalf("level 20 not over-provisioned: base %d alloc %d", base20, alloc20)
	}
}

func TestLooseBudgetUses8Bit(t *testing.T) {
	cfg := Config{TargetFPR: 0.02, InitialSlots: 1 << 10}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if levelKind(cfg, 0) != 8 {
		t.Fatalf("ε=0.02 level 0 should use 8-bit fingerprints, got %d-bit", levelKind(cfg, 0))
	}
	if levelKind(cfg, 3) != 16 {
		t.Fatalf("ε=0.02 level 3 should have tightened to 16-bit, got %d-bit", levelKind(cfg, 3))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TargetFPR: 0},
		{TargetFPR: 1.5},
		{TargetFPR: 0.01, GrowthFactor: 1.1},
		{TargetFPR: 0.01, TightenRatio: 0.95},
		{TargetFPR: 0.01, FillThreshold: 0.99},
		{TargetFPR: 0.01, InitialSlots: 4},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSnapshotLevels(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(3).Keys(5000)
	for _, k := range keys {
		f.Insert(k)
	}
	cs := f.Snapshot()
	if len(cs.Levels) != f.NumLevels() {
		t.Fatalf("%d level snapshots for %d levels", len(cs.Levels), f.NumLevels())
	}
	var count uint64
	for _, ls := range cs.Levels {
		count += ls.Count
	}
	if count != cs.Aggregate.Count || count != uint64(len(keys)) {
		t.Fatalf("level counts %d, aggregate %d, want %d", count, cs.Aggregate.Count, len(keys))
	}
	if cs.Aggregate.FPRFullLoad != f.TargetFPR() {
		t.Fatalf("aggregate FPRFullLoad %g != target %g", cs.Aggregate.FPRFullLoad, f.TargetFPR())
	}
	if cs.Aggregate.FPREstimate > f.TargetFPR() {
		t.Fatalf("estimated FPR %g exceeds budget %g", cs.Aggregate.FPREstimate, f.TargetFPR())
	}
	if cs.Aggregate.Ops.Inserts+cs.Aggregate.Ops.ShortcutInserts == 0 {
		t.Fatal("aggregate counters empty")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(4).Keys(12000)
	for _, k := range keys {
		f.Insert(k)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() != f.NumLevels() || g.Count() != f.Count() {
		t.Fatalf("round trip: %d levels/%d items, want %d/%d",
			g.NumLevels(), g.Count(), f.NumLevels(), f.Count())
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatal("false negative after round trip")
		}
	}
	// The reloaded cascade must keep growing with the same schedule.
	more := workload.NewStream(5).Keys(20000)
	for _, k := range more {
		if !g.Insert(k) {
			t.Fatal("insert after reload failed")
		}
	}
	if g.NumLevels() <= f.NumLevels() {
		t.Fatal("reloaded cascade did not grow")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	f, _ := New(testConfig())
	for _, k := range workload.NewStream(6).Keys(100) {
		f.Insert(k)
	}
	var buf bytes.Buffer
	f.WriteTo(&buf)
	data := buf.Bytes()

	if _, err := Read(bytes.NewReader(data[:20])); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Read(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Error("truncated level stream accepted")
	}
	// Forge an absurd level count.
	forged := append([]byte(nil), data...)
	forged[6], forged[7] = 0xff, 0xff
	if _, err := Read(bytes.NewReader(forged)); err == nil {
		t.Error("forged level count accepted")
	}
	// Forge an invalid config float.
	forged = append([]byte(nil), data...)
	for i := 16; i < 24; i++ {
		forged[i] = 0xff // TargetFPR = NaN
	}
	if _, err := Read(bytes.NewReader(forged)); err == nil {
		t.Error("NaN target FPR accepted")
	}
}

func TestInsertNeverFailsBelowBackstop(t *testing.T) {
	// A tight fill threshold plus tiny levels exercises the grow-and-retry
	// path: inserts that lose the two-choice game below the trigger must
	// still land via a fresh level.
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 64, FillThreshold: 0.9}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range workload.NewStream(7).Keys(50000) {
		if !f.Insert(k) {
			t.Fatal("insert failed below MaxLevels")
		}
	}
	if math.Abs(float64(f.Count())-50000) > 0 {
		t.Fatalf("count %d", f.Count())
	}
}

// TestReadRejectsLevelGeometryMismatch: the cascade's per-level geometry is a
// pure function of (config, index), so a level stream whose block count
// disagrees with the declared config must be refused before allocation.
func TestReadRejectsLevelGeometryMismatch(t *testing.T) {
	f, _ := New(testConfig())
	for _, k := range workload.NewStream(7).Keys(100) {
		f.Insert(k)
	}
	var buf bytes.Buffer
	f.WriteTo(&buf)
	data := append([]byte(nil), buf.Bytes()...)
	// First level's core header follows the cascade header and the level
	// record; its block count sits 8 bytes in. Halve it — still a power of
	// two, still fewer bytes than remain, but inconsistent with the level
	// record's declared geometry.
	off := elasticHeaderBytes + levelRecordBytes + 8
	nb := binary.LittleEndian.Uint64(data[off:])
	binary.LittleEndian.PutUint64(data[off:], nb/2)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("level stream with config-inconsistent block count accepted")
	}
}
