package elastic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vqf/internal/workload"
)

// fuseLevelCount returns how many of the cascade's levels are frozen fuse
// levels.
func fuseLevelCount(ls []*level) int {
	n := 0
	for _, l := range ls {
		if fuseKind(l.kind) {
			n++
		}
	}
	return n
}

func TestFreezeChurnedCascade(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := churn(t, f, 21, 30000, 6, 0.75)
	before := f.NumLevels()
	countBefore := f.Count()
	sizeBefore := f.SizeBytes()

	res := f.FreezeNow()
	if res.LevelsFrozen == 0 || res.FuseLevels == 0 {
		t.Fatalf("freeze retired nothing: %+v", res)
	}
	if res.LevelsBefore != before || res.LevelsAfter != f.NumLevels() {
		t.Fatalf("result depths %+v disagree with cascade %d -> %d", res, before, f.NumLevels())
	}
	if fuseLevelCount(f.levels) != res.FuseLevels {
		t.Fatalf("cascade has %d fuse levels, result says %d", fuseLevelCount(f.levels), res.FuseLevels)
	}
	if f.Count() != countBefore {
		t.Fatalf("count changed %d -> %d", countBefore, f.Count())
	}
	if f.SizeBytes() >= sizeBefore {
		t.Fatalf("freeze did not shrink the cascade: %d -> %d bytes", sizeBefore, f.SizeBytes())
	}
	for _, k := range live {
		if !f.Contains(k) {
			t.Fatalf("freeze lost key %#x", k)
		}
	}
	checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)

	// Realized FPR over fresh never-inserted keys stays within the budget.
	probes := workload.NewStream(888).Keys(300000)
	fp := 0
	for _, k := range probes {
		if f.Contains(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(probes)); rate > cfg.TargetFPR {
		t.Fatalf("post-freeze FPR %g exceeds ε %g", rate, cfg.TargetFPR)
	}

	snap := f.Snapshot()
	if snap.Freezes != 1 || snap.FreezeLevelsFrozen != uint64(res.LevelsFrozen) {
		t.Fatalf("snapshot counters %d/%d, want 1/%d",
			snap.Freezes, snap.FreezeLevelsFrozen, res.LevelsFrozen)
	}

	// A second pass has nothing left to take: fuse levels are not sources.
	if res2 := f.FreezeNow(); res2.LevelsFrozen != 0 {
		t.Fatalf("second freeze found sources: %+v", res2)
	}
}

func TestFreezeRemoveSemantics(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	live := churn(t, f, 22, 30000, 6, 0.75)
	if res := f.FreezeNow(); res.FuseLevels == 0 {
		t.Fatal("expected a fuse level")
	}

	countBefore := f.Count()
	victim := live[0]
	if !f.Remove(victim) {
		t.Fatal("remove of frozen key failed")
	}
	if f.Count() != countBefore-1 {
		t.Fatalf("count %d after one remove, want %d", f.Count(), countBefore-1)
	}
	if f.Contains(victim) {
		t.Fatal("fully removed frozen key still answers true")
	}
	// The tombstone ledger caps removes at the frozen instance count: a
	// second remove of the same key must miss, not drive Count below truth.
	if f.Remove(victim) {
		t.Fatal("second remove of a single-instance key succeeded")
	}
	if f.Count() != countBefore-1 {
		t.Fatalf("count drifted to %d after capped re-remove", f.Count())
	}
	// The vault gates ghost removes at the canonical-collision rate (the
	// geometric term of the level's FPR), not at the much larger fuse
	// false-positive rate 2^-fpBits — a bare fuse filter would accept every
	// fuse FP as removable. Probe the frozen level directly (live VQF levels
	// keep the usual fingerprint-collision caveat) and check the ledger
	// stays exact: Count drops by precisely the accepted removes.
	var fl *fuseLevel
	var geomFPR float64
	for _, l := range f.levels {
		if cand, ok := l.filter.(*fuseLevel); ok {
			fl, geomFPR = cand, l.geomFPR
			break
		}
	}
	if fl == nil {
		t.Fatal("no fuse level in cascade")
	}
	canon := geomFPR - math.Pow(2, -float64(fl.fpBits))
	before := fl.Count()
	ghosts := workload.NewStream(777).Keys(200000)
	succ := 0
	for _, g := range ghosts {
		if fl.Remove(g) {
			succ++
		}
	}
	if fl.Count() != before-uint64(succ) {
		t.Fatalf("ledger drift: %d accepted removes moved count %d -> %d",
			succ, before, fl.Count())
	}
	if rate := float64(succ) / float64(len(ghosts)); rate > 4*canon+1e-4 {
		t.Fatalf("ghost removes accepted at %g, canonical-collision bound %g", rate, canon)
	}
}

func TestFreezeBatchParity(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	live := churn(t, f, 23, 30000, 6, 0.7)
	if res := f.FreezeNow(); res.FuseLevels == 0 {
		t.Fatal("expected a fuse level")
	}
	probes := append(append([]uint64(nil), live...), workload.NewStream(555).Keys(5000)...)
	got := f.ContainsBatch(probes, nil)
	for i, k := range probes {
		if got[i] != f.Contains(k) {
			t.Fatalf("batch answer %v for key %#x, single-key %v", got[i], k, !got[i])
		}
	}
}

func TestFreezeThaw(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	live := churn(t, f, 24, 20000, 5, 0.6)
	if res := f.FreezeNow(); res.FuseLevels == 0 {
		t.Fatal("expected a fuse level")
	}
	// Remove well past the ¼ tombstone threshold of every frozen level; the
	// sequential filter thaws inline on the triggering remove.
	cut := len(live) / 2
	for _, k := range live[:cut] {
		if !f.Remove(k) {
			t.Fatalf("remove of live key %#x failed", k)
		}
	}
	if f.thaws == 0 {
		t.Fatal("tombstone pressure never thawed a level")
	}
	for _, l := range f.levels {
		if fl, ok := l.filter.(*fuseLevel); ok && fl.needsThaw() {
			t.Fatal("a fuse level is still past the thaw threshold")
		}
	}
	for _, k := range live[cut:] {
		if !f.Contains(k) {
			t.Fatalf("thaw lost live key %#x", k)
		}
	}
	// Removed keys may surface as ordinary false positives, but no more
	// than that: a thaw bug that forgot tombstones would answer true for
	// (nearly) all of them.
	fp := 0
	for _, k := range live[:cut] {
		if f.Contains(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(cut); rate > 4*cfg.TargetFPR {
		t.Fatalf("removed keys answer true at %g after thaw", rate)
	}
	checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)
}

// TestFreezeDegenerateCascades drives FreezeNow and CompactNow over the
// cascade shapes where there is nothing (or nothing sane) to do: both must
// be explicit no-ops — no panic, no level allocation — and an all-empty
// frozen run must drop into the reclaimed pool rather than build an empty
// fuse level.
func TestFreezeDegenerateCascades(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	t.Run("empty cascade", func(t *testing.T) {
		f, _ := New(cfg)
		if res := f.FreezeNow(); res.LevelsFrozen != 0 || res.LevelsBefore != 1 || res.LevelsAfter != 1 {
			t.Fatalf("freeze on empty cascade: %+v", res)
		}
		if res := f.CompactNow(); res.LevelsMerged != 0 {
			t.Fatalf("compact on empty cascade: %+v", res)
		}
		if f.NumLevels() != 1 || f.Count() != 0 {
			t.Fatalf("empty cascade mutated: %d levels, %d items", f.NumLevels(), f.Count())
		}
	})
	t.Run("single populated level", func(t *testing.T) {
		f, _ := New(cfg)
		for _, k := range workload.NewStream(25).Keys(100) {
			f.Insert(k)
		}
		if res := f.FreezeNow(); res.LevelsFrozen != 0 {
			t.Fatalf("froze the newest level: %+v", res)
		}
		if fuseLevelCount(f.levels) != 0 {
			t.Fatal("fuse level appeared in a single-level cascade")
		}
	})
	t.Run("all-empty frozen run", func(t *testing.T) {
		f, _ := New(cfg)
		keys := workload.NewStream(26).Keys(20000)
		for _, k := range keys {
			f.Insert(k)
		}
		if f.NumLevels() < 4 {
			t.Fatalf("setup produced %d levels", f.NumLevels())
		}
		for _, k := range keys {
			if !f.Remove(k) {
				t.Fatal("remove failed")
			}
		}
		depth := f.NumLevels()
		res := f.FreezeNow()
		if res.LevelsFrozen == 0 || res.FuseLevels != 0 {
			t.Fatalf("empty run should drop, not fuse: %+v", res)
		}
		if f.NumLevels() >= depth {
			t.Fatalf("dropping empties did not shrink: %d -> %d", depth, f.NumLevels())
		}
		if f.reclaimed == 0 {
			t.Fatal("dropped budgets were not reclaimed")
		}
		checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)
	})
}

func TestFreezeSerializeRoundTrip(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	live := churn(t, f, 27, 30000, 6, 0.7)
	if res := f.FreezeNow(); res.FuseLevels == 0 {
		t.Fatal("expected a fuse level")
	}
	// Tombstone some frozen keys (below the thaw threshold) so the ledger
	// rides along in the stream.
	cut := len(live) / 10
	for _, k := range live[:cut] {
		if !f.Remove(k) {
			t.Fatal("remove failed")
		}
	}

	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.sched != f.sched || g.NumLevels() != f.NumLevels() || g.Count() != f.Count() {
		t.Fatalf("reload mismatch: sched %d/%d levels %d/%d count %d/%d",
			g.sched, f.sched, g.NumLevels(), f.NumLevels(), g.Count(), f.Count())
	}
	if g.reclaimed != f.reclaimed {
		t.Fatalf("reclaimed pool %g did not survive the round trip (want %g)", g.reclaimed, f.reclaimed)
	}
	for i := range f.levels {
		if g.levels[i].budget != f.levels[i].budget || g.levels[i].kind != f.levels[i].kind {
			t.Fatalf("level %d parameters did not survive the round trip", i)
		}
	}
	for _, k := range live[cut:] {
		if !g.Contains(k) {
			t.Fatal("reloaded frozen cascade lost a key")
		}
	}
	// Removed keys may still be false positives (that is what ε buys), but
	// the reload must answer exactly as the original does.
	for _, k := range live[:cut] {
		if g.Contains(k) != f.Contains(k) {
			t.Fatalf("reload answer for removed key %#x diverged from original", k)
		}
	}
	// The reloaded ledger keeps enforcing exact removes and thaw pressure.
	if g.Remove(live[0]) {
		t.Fatal("reloaded ledger allowed re-removing a tombstoned key")
	}
	for _, k := range live[cut : len(live)/2] {
		if !g.Remove(k) {
			t.Fatal("remove on reloaded cascade failed")
		}
	}
	checkBudgetInvariant(t, g.cfg, g.levels, g.sched, g.reclaimed)
}

func TestFreezeAutoTrigger(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9,
		AutoFreeze: true, FreezeMaxLoad: 1}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(28).Keys(20000)
	for _, k := range keys {
		f.Insert(k)
	}
	if f.freezes == 0 {
		t.Fatal("auto-freeze never fired across growths")
	}
	if fuseLevelCount(f.levels) == 0 {
		t.Fatal("no fuse level in an auto-freezing cascade")
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatal("auto-freeze lost a key")
		}
	}
	checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)
}

func TestFreezeValidationRejectsBadPolicy(t *testing.T) {
	for _, cfg := range []Config{
		{TargetFPR: 1.0 / 256, FreezeMinAge: -1},
		{TargetFPR: 1.0 / 256, FreezeMaxLoad: 1.5},
		{TargetFPR: 1.0 / 256, FreezeMaxLoad: -0.1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestBudgetInvariantUnderInterleavings is the accounting property test:
// across a seeded random interleaving of grow (insert bursts), remove
// churn, CompactNow, FreezeNow and thaw (the removes trip it), the cascade
// budget ledger must balance after every step — Σ live level budgets +
// reclaimed equals the spent schedule prefix exactly, and adding the
// unspent tail never exceeds ε.
func TestBudgetInvariantUnderInterleavings(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		f, _ := New(cfg)
		stream := workload.NewStream(uint64(29 + seed))
		var liveKeys []uint64
		steps := 60
		if testing.Short() {
			steps = 20
		}
		for step := 0; step < steps; step++ {
			switch rng.Intn(4) {
			case 0: // grow
				batch := stream.Keys(500 + rng.Intn(3000))
				for _, k := range batch {
					if !f.Insert(k) {
						t.Fatal("insert failed")
					}
				}
				liveKeys = append(liveKeys, batch...)
			case 1: // churn (may trip thaw on frozen levels)
				n := len(liveKeys) / 3
				for _, k := range liveKeys[:n] {
					if !f.Remove(k) {
						t.Fatalf("remove of live key %#x failed", k)
					}
				}
				liveKeys = liveKeys[n:]
			case 2:
				f.CompactNow()
			case 3:
				f.FreezeNow()
			}
			checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)
			if f.Count() != uint64(len(liveKeys)) {
				t.Fatalf("seed %d step %d: count %d, want %d live", seed, step, f.Count(), len(liveKeys))
			}
		}
		for _, k := range liveKeys {
			if !f.Contains(k) {
				t.Fatalf("seed %d: lost live key %#x", seed, k)
			}
		}
	}
}
