package elastic

import (
	"sync"
	"time"

	"vqf/internal/core"
	"vqf/internal/minifilter"
	"vqf/internal/telemetry"
)

// Cascade compaction. Growth only ever appends levels, so after
// insert/remove churn a cascade carries many sparse frozen levels and every
// negative lookup pays one probe (≈ one cache miss) per level. Compaction
// walks runs of old levels through the core fingerprint iterator
// (IterateHashes) and rebuilds each run into one right-sized level, cutting
// the per-negative-lookup level count while preserving membership exactly.
//
// FPR accounting: the merged level's budget is the SUM of the merged
// levels' budgets εm = Σ εᵢ, so the cascade-wide invariant Σ budgets ≤ ε is
// untouched. The merged level is sized so that its realized FPR
// (geomFPR·load) stays within εm: it gets at least live·geomFPR/εm slots,
// and at least live/FillThreshold so the rebuild inserts cannot run out of
// two-choice headroom.
//
// Geometry constraints: a run merges only contiguous same-kind levels
// (fingerprints of different widths cannot mix in one block array), and the
// merged block count must not exceed any source level's (canonical hashes
// are only exchangeable across xor-linked filters when the destination mask
// is a suffix of every source mask; see internal/core/iterate.go). When the
// full run cannot satisfy that, the oldest (smallest) levels are dropped
// from the run until it fits or falls below two members.

// schedCap bounds the schedule index. Compaction lets the level LIST stay
// short while the schedule index keeps advancing, so the MaxLevels check no
// longer bounds it; the cap exists for the uint16 serialization field and
// as a runaway backstop (the ever-shrinking per-level budgets make the
// allocation sizes explode long before it is reached).
const schedCap = 1 << 12

// CompactionResult summarizes one CompactNow call.
type CompactionResult struct {
	// LevelsBefore and LevelsAfter are the cascade depths around the call.
	LevelsBefore int
	LevelsAfter  int
	// LevelsMerged is the number of source levels rebuilt into merged
	// levels (0 when no run qualified; LevelsBefore − LevelsAfter +
	// number of merged levels produced).
	LevelsMerged int
}

// compactRun is one contiguous candidate range [lo, hi) of the level list.
type compactRun struct{ lo, hi int }

// compactRuns returns the maximal runs of ≥2 contiguous same-kind VQF
// levels among the frozen levels ls[:len(ls)-1] (the newest level still
// receives inserts and is never merged; immutable fuse levels cannot be
// rebuilt by reinsertion and break runs).
func compactRuns(ls []*level) []compactRun {
	var runs []compactRun
	frozen := len(ls) - 1
	for lo := 0; lo < frozen; {
		if !vqfKind(ls[lo].kind) {
			lo++
			continue
		}
		hi := lo + 1
		for hi < frozen && ls[hi].kind == ls[lo].kind {
			hi++
		}
		if hi-lo >= 2 {
			runs = append(runs, compactRun{lo, hi})
		}
		lo = hi
	}
	return runs
}

// newMergedLevel allocates the destination level of a merge: kind and
// concurrency from the sources, nblocks mini-filter blocks, budget εm.
func newMergedLevel(cfg Config, kind uint8, nblocks uint64, budget float64) *level {
	spb := uint64(minifilter.B8Slots)
	geom := FPR8Full
	if kind == 16 {
		spb = minifilter.B16Slots
		geom = FPR16Full
	}
	slots := nblocks * spb
	lvl := &level{
		kind:    kind,
		budget:  budget,
		trigger: uint64(cfg.FillThreshold * float64(slots)),
		geomFPR: geom,
	}
	if lvl.trigger == 0 {
		lvl.trigger = 1
	}
	opts := core.Options{NoShortcut: cfg.NoShortcut}
	switch {
	case kind == 8 && cfg.Concurrent:
		lvl.filter = core.NewCFilter8(slots, opts)
	case kind == 8:
		lvl.filter = core.NewFilter8(slots, opts)
	case cfg.Concurrent:
		lvl.filter = core.NewCFilter16(slots, opts)
	default:
		lvl.filter = core.NewFilter16(slots, opts)
	}
	return lvl
}

// mergeBlocks returns the block count for merging the run, or 0 when the
// run cannot be merged within its constraints: enough slots that the
// realized FPR at the live load stays within the summed budget εm, enough
// fill headroom for the rebuild inserts, and no more blocks than the
// smallest source (the cross-mask soundness bound).
func mergeBlocks(cfg Config, run []*level) uint64 {
	live := sumCounts(run)
	spb := uint64(run[0].filter.SlotsPerBlock())
	minBlocks := run[0].filter.NumBlocks()
	var budget float64
	for _, l := range run {
		budget += l.budget
		if nb := l.filter.NumBlocks(); nb < minBlocks {
			minBlocks = nb
		}
	}
	need := float64(live) / cfg.FillThreshold
	if byFPR := float64(live) * run[0].geomFPR / budget; byFPR > need {
		need = byFPR
	}
	nblocks := core.BlocksFor(uint64(need), spb)
	if nblocks > minBlocks {
		return 0
	}
	return nblocks
}

// rebuildRun iterates every source level of the run into a fresh merged
// level. On an insert failure (block-pair overflow despite the fill
// headroom) the destination is doubled and rebuilt, up to the cross-mask
// bound; nil means the run could not be merged and the caller keeps the
// originals.
func rebuildRun(cfg Config, run []*level, nblocks uint64) *level {
	minBlocks := run[0].filter.NumBlocks()
	var budget float64
	for _, l := range run {
		budget += l.budget
		if nb := l.filter.NumBlocks(); nb < minBlocks {
			minBlocks = nb
		}
	}
	for ; nblocks <= minBlocks; nblocks *= 2 {
		dst := newMergedLevel(cfg, run[0].kind, nblocks, budget)
		ok := true
		for _, src := range run {
			src.filter.IterateHashes(func(h uint64) bool {
				if !dst.filter.Insert(h) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				break
			}
		}
		if ok {
			return dst
		}
	}
	return nil
}

// shrinkRun drops the oldest (smallest, and therefore most constraining)
// levels from the run until it can be merged, returning the usable suffix
// and its block count; ok is false when no ≥2-level suffix fits.
func shrinkRun(cfg Config, run []*level) (sub []*level, nblocks uint64, ok bool) {
	for len(run) >= 2 {
		if nblocks = mergeBlocks(cfg, run); nblocks != 0 {
			return run, nblocks, true
		}
		run = run[1:]
	}
	return nil, 0, false
}

// mergePlan is one planned merge: the contiguous sub-run ending at level
// index hi (exclusive) and the destination's block count — or, when drop is
// set, an all-empty segment to splice out without replacement (building a
// merged level for zero items would spuriously allocate; the segment's
// budgets retire into the reclaimed pool instead).
type mergePlan struct {
	hi      int
	sub     []*level
	nblocks uint64
	drop    bool
}

// planRun partitions one candidate run into mergeable segments, newest
// first. shrinkRun finds the longest mergeable suffix; the dropped prefix —
// typically the oldest, near-empty levels whose small block counts bound the
// suffix's destination geometry — is then planned as a run of its own. A
// churned cascade thus collapses to one merged level per geometry class
// instead of stranding a head of sparse little levels that every negative
// lookup would keep probing. Plans are returned in descending hi order with
// disjoint segments, so splicing them in order keeps earlier indices valid.
func planRun(cfg Config, r compactRun, ls []*level) []mergePlan {
	var plans []mergePlan
	hi := r.hi
	for hi-r.lo >= 2 {
		seg := ls[r.lo:hi]
		if sumCounts(seg) == 0 {
			// All-empty segment (shrinkRun never selects an empty strict
			// suffix: empty suffixes always merge, so emptiness only
			// surfaces for the whole segment): drop it outright.
			plans = append(plans, mergePlan{hi: hi, sub: seg, drop: true})
			break
		}
		sub, nblocks, ok := shrinkRun(cfg, seg)
		if !ok {
			break
		}
		plans = append(plans, mergePlan{hi: hi, sub: sub, nblocks: nblocks})
		hi -= len(sub)
	}
	return plans
}

// CompactNow merges every qualifying run of frozen levels, synchronously.
// It returns how many levels were merged away (zero when nothing
// qualified — a cascade still growing, or runs whose geometry constraints
// could not be met).
func (f *Filter) CompactNow() CompactionResult {
	res := CompactionResult{LevelsBefore: len(f.levels), LevelsAfter: len(f.levels)}
	runs := compactRuns(f.levels)
	if len(runs) == 0 {
		return res
	}
	frozenLive := sumCounts(f.levels[:len(f.levels)-1])
	f.ring.Record(telemetry.EvCompactStart, uint64(len(f.levels)), frozenLive, 0)
	end := telemetry.Task("vqf.elastic.compact")
	start := time.Now()
	// Splice back to front so earlier run and plan indices stay valid.
	for i := len(runs) - 1; i >= 0; i-- {
		for _, p := range planRun(f.cfg, runs[i], f.levels) {
			lo := p.hi - len(p.sub)
			if p.drop {
				for _, l := range p.sub {
					f.reclaimed += l.budget
				}
				f.levels = append(f.levels[:lo], f.levels[p.hi:]...)
				res.LevelsMerged += len(p.sub)
				continue
			}
			merged := rebuildRun(f.cfg, p.sub, p.nblocks)
			if merged == nil {
				continue // rebuild could not fit; sources stay as-is
			}
			setLevelRing(merged, f.ring)
			stampFrozen(merged)
			f.levels = append(f.levels[:lo+1], f.levels[p.hi:]...)
			f.levels[lo] = merged
			res.LevelsMerged += len(p.sub)
		}
	}
	end()
	res.LevelsAfter = len(f.levels)
	if res.LevelsMerged > 0 {
		f.compactions++
		f.compactionLevels += uint64(res.LevelsMerged)
	}
	f.ring.Record(telemetry.EvCompactFinish,
		uint64(res.LevelsMerged), uint64(res.LevelsAfter), uint64(time.Since(start)))
	return res
}

// maybeCompact runs CompactNow when the automatic trigger condition holds:
// at least CompactMinLevels levels, and the frozen levels loaded at or
// below CompactMaxLoad. Compacting shrinks the level count, so the next
// trigger needs regrowth — the policy cannot thrash.
func (f *Filter) maybeCompact() {
	if f.cfg.CompactMinLevels == 0 || len(f.levels) < f.cfg.CompactMinLevels {
		return
	}
	frozen := f.levels[:len(f.levels)-1]
	if float64(sumCounts(frozen)) <= f.cfg.CompactMaxLoad*float64(sumCapacities(frozen)) {
		f.CompactNow()
	}
}

// compactState is the shared state of one in-flight concurrent compaction:
// the set of levels being rebuilt and the log of removes that hit them
// after the freeze barrier. frozen is written before the state is published
// and read-only afterwards; log appends run under mu and are drained only
// after the compaction's second removeMu write barrier, when no remover can
// still be appending.
type compactState struct {
	frozen map[*level]struct{}
	mu     sync.Mutex
	log    []uint64
}

// reconcile makes the merged level dst agree with its source levels at
// quiescence, given the hashes removed from frozen levels during the build.
// For each distinct logged hash it compares dst's instance count at the
// hash's candidate pair against the sources' surviving instances across all
// source blocks that fold onto that pair (b ≡ p1 or p2 mod dst's block
// count — the xor trick makes the pair closed under mask truncation, see
// internal/core/iterate.go), and removes the surplus. Count differencing is
// order-independent, so duplicate log entries, fingerprint collisions
// between distinct hashes, and removes the builder had already observed all
// resolve to a zero diff.
func reconcile(dst *level, srcs []*level, log []uint64) {
	if len(log) == 0 {
		return
	}
	dstBlocks := dst.filter.NumBlocks()
	seen := make(map[uint64]struct{}, len(log))
	for _, h := range log {
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		p1, p2 := dst.filter.CandidateBlocks(h)
		got := dst.filter.CountAtBlock(p1, h)
		if p2 != p1 {
			got += dst.filter.CountAtBlock(p2, h)
		}
		var want uint64
		for _, src := range srcs {
			srcBlocks := src.filter.NumBlocks()
			for b := p1; b < srcBlocks; b += dstBlocks {
				want += src.filter.CountAtBlock(b, h)
			}
			if p2 != p1 {
				for b := p2; b < srcBlocks; b += dstBlocks {
					want += src.filter.CountAtBlock(b, h)
				}
			}
		}
		for ; got > want; got-- {
			dst.filter.Remove(h)
		}
	}
}

// CompactNow merges every qualifying run of frozen levels while concurrent
// readers stay lock-free and writers keep writing. The protocol:
//
//  1. Plan runs under growMu (which also blocks growth, so the newest
//     level — the only insert target — is stable for the duration).
//  2. Publish the frozen-level set through a removeMu write barrier:
//     every remove thereafter logs hashes it deletes from frozen levels.
//  3. Build each merged level off the hot path by iterating the sources'
//     per-block snapshots (inserts cannot touch frozen levels; removes
//     are captured either by the snapshot or by the log).
//  4. Take removeMu again — draining in-flight removes — reconcile the
//     log against each merged level, atomically swap the level list, and
//     lift the freeze.
//
// Contains never blocks: it works on whichever level list it loaded, and
// source levels stay intact until unreferenced. Inserts block only if they
// need to grow the cascade mid-compaction.
func (f *CFilter) CompactNow() CompactionResult {
	f.growMu.Lock()
	defer f.growMu.Unlock()
	ls := *f.levels.Load()
	res := CompactionResult{LevelsBefore: len(ls), LevelsAfter: len(ls)}

	// Plans are collected in descending hi order (runs back to front, and
	// planRun yields newest-first within a run), so the final splice loop
	// can walk them forward with earlier indices staying valid.
	var plans []mergePlan
	st := &compactState{frozen: map[*level]struct{}{}}
	runs := compactRuns(ls)
	for i := len(runs) - 1; i >= 0; i-- {
		for _, p := range planRun(f.cfg, runs[i], ls) {
			plans = append(plans, p)
			for _, l := range p.sub {
				st.frozen[l] = struct{}{}
			}
		}
	}
	if len(plans) == 0 {
		return res
	}

	f.ring.Record(telemetry.EvCompactStart, uint64(len(ls)), sumCounts(ls[:len(ls)-1]), 0)
	end := telemetry.Task("vqf.elastic.compact")
	start := time.Now()

	f.removeMu.Lock()
	// Sealing inside the barrier shuts the insert fast path on every source:
	// a stale inserter either fully lands before this critical section (and
	// the rebuild below sees its instance) or observes sealed and retries.
	for l := range st.frozen {
		l.sealed.Store(true)
	}
	f.compact.Store(st)
	f.removeMu.Unlock()

	merged := make([]*level, len(plans))
	for i := range plans {
		if plans[i].drop {
			continue
		}
		if m := rebuildRun(f.cfg, plans[i].sub, plans[i].nblocks); m != nil {
			setLevelRing(m, f.ring)
			stampFrozen(m)
			merged[i] = m
		}
	}

	f.removeMu.Lock()
	next := append([]*level(nil), ls...)
	for i := range plans {
		lo := plans[i].hi - len(plans[i].sub)
		if plans[i].drop {
			// Empty at plan time stays empty (no level here can gain
			// fingerprints), so no reconcile is needed.
			for _, l := range plans[i].sub {
				f.addReclaimed(l.budget)
			}
			next = append(next[:lo], next[plans[i].hi:]...)
			res.LevelsMerged += len(plans[i].sub)
			continue
		}
		if merged[i] == nil {
			continue // rebuild could not fit; sources stay live as-is
		}
		reconcile(merged[i], plans[i].sub, st.log)
		next = append(next[:lo+1], next[plans[i].hi:]...)
		next[lo] = merged[i]
		res.LevelsMerged += len(plans[i].sub)
	}
	if res.LevelsMerged > 0 {
		f.levels.Store(&next)
		f.compactions.Add(1)
		f.compactionLevels.Add(uint64(res.LevelsMerged))
	}
	f.compact.Store(nil)
	f.removeMu.Unlock()
	end()
	res.LevelsAfter = len(next)
	f.ring.Record(telemetry.EvCompactFinish,
		uint64(res.LevelsMerged), uint64(res.LevelsAfter), uint64(time.Since(start)))
	return res
}

// maybeCompact fires a background compaction when the automatic trigger
// condition holds; see Filter.maybeCompact. At most one background
// compaction runs at a time (explicit CompactNow calls serialize on growMu
// independently of this gate).
func (f *CFilter) maybeCompact() {
	if f.cfg.CompactMinLevels == 0 {
		return
	}
	ls := *f.levels.Load()
	if len(ls) < f.cfg.CompactMinLevels {
		return
	}
	frozen := ls[:len(ls)-1]
	if float64(sumCounts(frozen)) > f.cfg.CompactMaxLoad*float64(sumCapacities(frozen)) {
		return
	}
	if !f.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer f.compacting.Store(false)
		f.CompactNow()
	}()
}

// CompactNow compacts every shard, summing the per-shard results.
func (f *Sharded) CompactNow() CompactionResult {
	var res CompactionResult
	for _, s := range f.shards {
		r := s.CompactNow()
		res.LevelsBefore += r.LevelsBefore
		res.LevelsAfter += r.LevelsAfter
		res.LevelsMerged += r.LevelsMerged
	}
	return res
}
