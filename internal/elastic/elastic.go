// Package elastic implements an online-growing vector quotient filter: a
// geometric cascade of fixed-size core VQF levels in the style of Bender et
// al.'s cascade filter ("Don't Thrash: How to Cache Your Hash on Flash") and
// Maier et al.'s expandable quotient filters.
//
// A VQF's stored state (bucket-local fingerprints) is not losslessly
// rehashable, so a full filter cannot be rebuilt into a larger one without
// the original keys. The cascade sidesteps that: when the newest level
// reaches its fill threshold, a new level GrowthFactor times larger is
// appended and all subsequent inserts go there. Older levels become
// read-only survivors that lookups still probe (newest-first, short-circuit
// on hit) and removes still search.
//
// # False-positive budget
//
// Probing L levels sums their false-positive rates, so a cascade of
// identical levels would drift past any fixed target as it grows. Instead
// the total budget ε is split geometrically: level i may contribute at most
//
//	εᵢ = ε·(1−r)·rⁱ       (TightenRatio r, default ½)
//
// so Σᵢ εᵢ = ε for any number of levels. Each level meets its εᵢ two ways:
// by geometry (8-bit fingerprints while εᵢ ≥ 2·(48/80)·2⁻⁸, 16-bit below
// that) and, once εᵢ falls below what 16-bit fingerprints deliver, by
// over-provisioning — the level gets geomFPR·FillThreshold/εᵢ times more
// slots than its item budget needs, and a VQF's realized false-positive
// rate scales linearly with its load factor (≈ 2·α·(s/b)·2⁻ʳ at load α).
// With the default ε and r = ½ the first seven levels need no
// over-provisioning at all: 16-bit fingerprints have ≈ 200× more headroom
// than the default target.
package elastic

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"vqf/internal/core"
	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// Analytic full-load false-positive rates of the two core geometries
// (2·(s/b)·2⁻ʳ, paper §5).
const (
	FPR8Full  = 2.0 * float64(minifilter.B8Slots) / float64(minifilter.B8Buckets) / 256
	FPR16Full = 2.0 * float64(minifilter.B16Slots) / float64(minifilter.B16Buckets) / 65536
)

// MaxLevels bounds the cascade depth. With the default growth factor the
// cap is unreachable (it implies 2⁶⁴× the initial capacity); it exists so
// deserialization and runaway growth loops have a hard stop.
const MaxLevels = 64

// Config describes a cascade. The zero value of every field except
// TargetFPR selects a default; Validate fills defaults in place.
type Config struct {
	// TargetFPR is the total false-positive budget ε of the whole cascade,
	// honored no matter how many levels growth appends. Required.
	TargetFPR float64
	// InitialSlots is level 0's item budget in slots; level i's budget is
	// InitialSlots·GrowthFactor^i. Default 1 << 12.
	InitialSlots uint64
	// GrowthFactor is the capacity ratio between consecutive levels.
	// Default 2; must be in [1.5, 16].
	GrowthFactor float64
	// TightenRatio is the geometric decay r of per-level FPR budgets
	// εᵢ = ε·(1−r)·rⁱ. Default 0.5; must be in (0, 0.9].
	TightenRatio float64
	// FillThreshold is the fraction of a level's item budget at which the
	// next level is created. Default 0.85; must be in (0, 0.93].
	FillThreshold float64
	// Concurrent selects the thread-safe core filters (CFilter8/16) for
	// every level.
	Concurrent bool
	// NoShortcut disables the §6.2 single-block insertion shortcut on every
	// level.
	NoShortcut bool
	// CompactMinLevels enables automatic compaction: when the cascade has at
	// least this many levels AND the non-newest levels' mean load factor is
	// at or below CompactMaxLoad, a compaction runs (synchronously after the
	// triggering growth or remove on the sequential filter, in a background
	// goroutine on the concurrent ones). Zero disables the automatic
	// trigger; CompactNow always works. Must be 0 or in [3, MaxLevels].
	CompactMinLevels int
	// CompactMaxLoad is the occupancy-ratio threshold of the automatic
	// trigger: compaction fires only while the frozen (non-newest) levels'
	// combined count/capacity is at or below it, i.e. while they are sparse
	// enough that merging wins back space and probe misses. Default 0.5;
	// must be in (0, 1].
	CompactMaxLoad float64
	// AutoFreeze enables the automatic frozen-tier trigger: after growths
	// and frozen-level removes, VQF levels that have been out of the insert
	// path for at least FreezeMinAge and are loaded at or below
	// FreezeMaxLoad are rebuilt into immutable fuse levels (see freeze.go).
	// FreezeNow always works regardless.
	AutoFreeze bool
	// FreezeMinAge is the minimum time since a level stopped taking inserts
	// before auto-freeze may take it. Zero freezes immediately.
	FreezeMinAge time.Duration
	// FreezeMaxLoad is the load-factor ceiling for auto-freeze eligibility.
	// Default 1 (any load); must be in (0, 1].
	FreezeMaxLoad float64
}

// Validate fills defaulted fields and rejects out-of-range values.
func (c *Config) Validate() error {
	if c.InitialSlots == 0 {
		c.InitialSlots = 1 << 12
	}
	if c.GrowthFactor == 0 {
		c.GrowthFactor = 2
	}
	if c.TightenRatio == 0 {
		c.TightenRatio = 0.5
	}
	if c.FillThreshold == 0 {
		c.FillThreshold = 0.85
	}
	if c.CompactMaxLoad == 0 {
		c.CompactMaxLoad = 0.5
	}
	if c.FreezeMaxLoad == 0 {
		c.FreezeMaxLoad = 1
	}
	switch {
	case !(c.TargetFPR > 0 && c.TargetFPR < 1):
		return fmt.Errorf("elastic: target FPR %g outside (0, 1)", c.TargetFPR)
	case c.InitialSlots < minifilter.B8Slots || c.InitialSlots > 1<<40:
		return fmt.Errorf("elastic: initial slots %d outside [%d, 2^40]", c.InitialSlots, minifilter.B8Slots)
	case c.GrowthFactor < 1.5 || c.GrowthFactor > 16:
		return fmt.Errorf("elastic: growth factor %g outside [1.5, 16]", c.GrowthFactor)
	case c.TightenRatio <= 0 || c.TightenRatio > 0.9:
		return fmt.Errorf("elastic: tighten ratio %g outside (0, 0.9]", c.TightenRatio)
	case c.FillThreshold <= 0 || c.FillThreshold > 0.93:
		return fmt.Errorf("elastic: fill threshold %g outside (0, 0.93]", c.FillThreshold)
	case c.CompactMinLevels != 0 && (c.CompactMinLevels < 3 || c.CompactMinLevels > MaxLevels):
		return fmt.Errorf("elastic: compact min levels %d outside {0} ∪ [3, %d]", c.CompactMinLevels, MaxLevels)
	case c.CompactMaxLoad <= 0 || c.CompactMaxLoad > 1:
		return fmt.Errorf("elastic: compact max load %g outside (0, 1]", c.CompactMaxLoad)
	case c.FreezeMinAge < 0:
		return fmt.Errorf("elastic: freeze min age %v negative", c.FreezeMinAge)
	case c.FreezeMaxLoad <= 0 || c.FreezeMaxLoad > 1:
		return fmt.Errorf("elastic: freeze max load %g outside (0, 1]", c.FreezeMaxLoad)
	}
	return nil
}

// coreFilter is the operation surface shared by the four core variants.
// The iteration quartet (IterateHashes/CandidateBlocks/CountAtBlock/
// NumBlocks) is what compaction rebuilds levels through; see
// internal/core/iterate.go for the canonical-hash soundness argument.
type coreFilter interface {
	Insert(h uint64) bool
	Contains(h uint64) bool
	Remove(h uint64) bool
	Count() uint64
	Capacity() uint64
	SizeBytes() uint64
	Stats() stats.OpCounts
	BlockOccupancies() []uint
	SlotsPerBlock() uint
	IterateHashes(yield func(h uint64) bool) bool
	CandidateBlocks(h uint64) (uint64, uint64)
	CountAtBlock(b, h uint64) uint64
	NumBlocks() uint64
}

// level is one member of the cascade. Once a level stops being the newest
// it receives no more inserts, so all fields are immutable after creation;
// only the underlying filter's contents change (removes, and inserts on the
// newest level).
type level struct {
	filter coreFilter
	// kind is the fingerprint width in bits (8 or 16) for VQF levels, or a
	// frozen-tier kind (kindFuse8/kindFuse16, see freeze.go).
	kind uint8
	// budget is this level's share εᵢ of the cascade's FPR budget.
	budget float64
	// trigger is the item count at which the cascade grows past this level
	// (0 on immutable fuse levels, which take no inserts).
	trigger uint64
	// geomFPR is the level geometry's analytic full-load FPR.
	geomFPR float64
	// frozenAt is the unix-nano time the level left the insert path (0 =
	// unknown, treated as old by the auto-freeze gate). Atomic because the
	// sequential stamp at growth races concurrent snapshot readers only in
	// the CFilter case, but one representation keeps the code shared.
	frozenAt atomic.Int64
	// sealed is set (inside a structural op's first removeMu write barrier)
	// when the level becomes a compaction or freeze source. A concurrent
	// insert that loaded a stale level list can still hold a pointer to a
	// source level whose count dropped back under its trigger; the sealed
	// check under removeMu's read side (see CFilter.insertLevel) turns that
	// insert into a retry instead of a silently lost instance. The flag is
	// never cleared on levels that leave the list, which is what protects
	// arbitrarily stale inserters.
	sealed atomic.Bool
}

// levelBudget returns εᵢ = ε·(1−r)·rⁱ.
func levelBudget(c Config, i int) float64 {
	return c.TargetFPR * (1 - c.TightenRatio) * math.Pow(c.TightenRatio, float64(i))
}

// levelKind returns the fingerprint width for level i: the loosest geometry
// whose full-load FPR fits within the level's budget after the fill
// threshold's load discount, falling back to 16 bits plus over-provisioning.
func levelKind(c Config, i int) uint8 {
	if levelBudget(c, i) >= FPR8Full*c.FillThreshold {
		return 8
	}
	return 16
}

// levelSizing returns level i's item budget (baseSlots), growth trigger and
// allocated slot count. The level is allocated overProv = max(1,
// geomFPR·FillThreshold/εᵢ) times its item budget so that at the trigger
// point its load factor — and therefore its realized FPR — stays within εᵢ:
//
//	realized = geomFPR·load = geomFPR·(FillThreshold·baseSlots/allocSlots)
//	         ≤ geomFPR·FillThreshold/overProv ≤ εᵢ
//
// The core's power-of-two block rounding only adds slack on top.
func levelSizing(c Config, i int) (baseSlots, trigger, allocSlots uint64) {
	fbase := float64(c.InitialSlots) * math.Pow(c.GrowthFactor, float64(i))
	geomFPR := FPR8Full
	if levelKind(c, i) == 16 {
		geomFPR = FPR16Full
	}
	overProv := geomFPR * c.FillThreshold / levelBudget(c, i)
	if overProv < 1 {
		overProv = 1
	}
	falloc := fbase * overProv
	// Clamp the float math well below uint64 overflow. A clamped level
	// nominally breaks its budget, but it also needs ≥ 2^56 slots (petabytes
	// of blocks) — allocation fails long before the budget matters.
	const maxSlots = float64(1 << 56)
	if fbase > maxSlots {
		fbase = maxSlots
	}
	if falloc > maxSlots {
		falloc = maxSlots
	}
	baseSlots = uint64(fbase)
	trigger = uint64(c.FillThreshold * fbase)
	if trigger == 0 {
		trigger = 1
	}
	return baseSlots, trigger, uint64(falloc)
}

// newLevel builds level i of a cascade configured by c.
func newLevel(c Config, i int) *level {
	_, trigger, allocSlots := levelSizing(c, i)
	lvl := &level{
		kind:    levelKind(c, i),
		budget:  levelBudget(c, i),
		trigger: trigger,
		geomFPR: FPR16Full,
	}
	opts := core.Options{NoShortcut: c.NoShortcut}
	switch {
	case lvl.kind == 8 && c.Concurrent:
		lvl.filter = core.NewCFilter8(allocSlots, opts)
		lvl.geomFPR = FPR8Full
	case lvl.kind == 8:
		lvl.filter = core.NewFilter8(allocSlots, opts)
		lvl.geomFPR = FPR8Full
	case c.Concurrent:
		lvl.filter = core.NewCFilter16(allocSlots, opts)
	default:
		lvl.filter = core.NewFilter16(allocSlots, opts)
	}
	return lvl
}

// Filter is a single-threaded elastic VQF. Like the core filters it
// consumes pre-hashed 64-bit keys; hashing and seed handling live in the
// public vqf package.
type Filter struct {
	cfg    Config
	levels []*level
	// sched is the next schedule index growth will build. It only ever
	// increases: compaction shrinks the level LIST but never reuses a
	// schedule slot, which keeps the budget invariant exact — live levels
	// hold Σ_{i<sched} εᵢ between them (merges preserve budget sums) and
	// future levels get Σ_{i≥sched} εᵢ, totalling ε.
	sched int
	ring  *telemetry.Ring
	// compactions / compactionLevels / freezes / freezeLevels / thaws are
	// lifetime totals for telemetry.
	compactions      uint64
	compactionLevels uint64
	freezes          uint64
	freezeLevels     uint64
	thaws            uint64
	// reclaimed is FPR budget retired from dropped (emptied) levels; see
	// Reclaimed.
	reclaimed float64

	// scratch backs ContainsBatch's shrinking working set (batch.go).
	scratch cascadeScratch
}

// New creates an empty cascade with one level.
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Concurrent = false
	return &Filter{cfg: cfg, levels: []*level{newLevel(cfg, 0)}, sched: 1}, nil
}

// Insert adds the pre-hashed key h, growing the cascade when the newest
// level reaches its trigger (or, rarely, rejects the insert below it). It
// returns false only at the MaxLevels backstop.
func (f *Filter) Insert(h uint64) bool {
	for {
		lvl := f.levels[len(f.levels)-1]
		if lvl.filter.Count() < lvl.trigger && lvl.filter.Insert(h) {
			return true
		}
		if len(f.levels) >= MaxLevels || f.sched >= schedCap {
			return false
		}
		stampFrozen(lvl) // the superseded newest level just left the insert path
		f.levels = append(f.levels, buildLevel(f.cfg, f.sched, f.ring, telemetry.EvElasticGrow))
		f.sched++
		f.maybeCompact()
		f.maybeFreeze()
	}
}

// Contains reports whether h may be in the cascade, probing levels
// newest-first: recent items live in the newest (largest) level, so the
// common hit short-circuits after one level's two SWAR block scans.
func (f *Filter) Contains(h uint64) bool {
	for i := len(f.levels) - 1; i >= 0; i-- {
		if f.levels[i].filter.Contains(h) {
			return true
		}
	}
	return false
}

// Remove deletes one previously inserted instance of h, searching levels
// newest-first. It returns false if no level holds a matching fingerprint.
func (f *Filter) Remove(h uint64) bool {
	for i := len(f.levels) - 1; i >= 0; i-- {
		if f.levels[i].filter.Remove(h) {
			if i < len(f.levels)-1 {
				// A frozen level just got sparser; check the auto triggers
				// (maybeThaw rescans, so it tolerates the splices the other
				// two may perform).
				f.maybeThaw()
				f.maybeCompact()
				f.maybeFreeze()
			}
			return true
		}
	}
	return false
}

// Count returns the number of items stored across all levels.
func (f *Filter) Count() uint64 { return sumCounts(f.levels) }

// Capacity returns the total allocated fingerprint slots across all levels.
func (f *Filter) Capacity() uint64 { return sumCapacities(f.levels) }

// SizeBytes returns the cascade's memory footprint.
func (f *Filter) SizeBytes() uint64 { return sumSizes(f.levels) }

// NumLevels returns the current cascade depth.
func (f *Filter) NumLevels() int { return len(f.levels) }

// TargetFPR returns the configured total false-positive budget ε.
func (f *Filter) TargetFPR() float64 { return f.cfg.TargetFPR }

// Stats returns operation counters summed over all levels.
func (f *Filter) Stats() stats.OpCounts { return sumStats(f.levels) }

// Snapshot returns the cascade's structural snapshot: an aggregate plus one
// per-level snapshot, newest level last.
func (f *Filter) Snapshot() stats.CascadeSnapshot {
	cs := snapshotLevels(f.cfg.TargetFPR, f.levels)
	cs.Compactions = f.compactions
	cs.CompactionLevelsMerged = f.compactionLevels
	cs.Freezes = f.freezes
	cs.FreezeLevelsFrozen = f.freezeLevels
	cs.Thaws = f.thaws
	cs.BudgetReclaimed = f.reclaimed
	return cs
}

func sumCounts(ls []*level) uint64 {
	var n uint64
	for _, l := range ls {
		n += l.filter.Count()
	}
	return n
}

func sumCapacities(ls []*level) uint64 {
	var n uint64
	for _, l := range ls {
		n += l.filter.Capacity()
	}
	return n
}

func sumSizes(ls []*level) uint64 {
	var n uint64
	for _, l := range ls {
		n += l.filter.SizeBytes()
	}
	return n
}

func sumStats(ls []*level) stats.OpCounts {
	var total stats.OpCounts
	for _, l := range ls {
		total = total.Add(l.filter.Stats())
	}
	return total
}

// snapshotLevels assembles a CascadeSnapshot from a level list. The
// aggregate's occupancy histogram is the newest level's (the only one
// receiving inserts; levels can mix geometries, so their histograms do not
// merge meaningfully), its FPRFullLoad is the configured budget ε, and its
// FPREstimate sums the per-level realized estimates — the quantity the
// budget actually bounds.
func snapshotLevels(targetFPR float64, ls []*level) stats.CascadeSnapshot {
	cs := stats.CascadeSnapshot{Levels: make([]stats.Snapshot, len(ls))}
	var fprSum float64
	for i, l := range ls {
		snap := stats.BuildSnapshot(
			l.filter.Count(), l.filter.Capacity(), l.filter.SizeBytes(), l.geomFPR,
			l.filter.BlockOccupancies(), l.filter.SlotsPerBlock(), l.filter.Stats())
		cs.Levels[i] = snap
		fprSum += snap.FPREstimate
	}
	newest := ls[len(ls)-1]
	cs.Aggregate = stats.BuildSnapshot(
		sumCounts(ls), sumCapacities(ls), sumSizes(ls), targetFPR,
		newest.filter.BlockOccupancies(), newest.filter.SlotsPerBlock(), sumStats(ls))
	cs.Aggregate.FPREstimate = fprSum
	return cs
}
