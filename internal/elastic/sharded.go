package elastic

import (
	"vqf/internal/stats"
)

// Sharded is a sharded thread-safe elastic filter: a power-of-two array of
// independent concurrent cascades, selected by the top hash bits (the same
// selector the sharded core filters use — the cascade levels consume only
// lower hash bits). Each shard grows independently, so a growth in one
// shard never serializes inserts in another; with a uniform hash the shards
// stay within a few percent of each other in depth and load.
//
// Each shard's FPR is bounded by the configured budget ε, and a query
// probes exactly one shard, so the sharded cascade's FPR is bounded by the
// same ε — no budget splitting across shards is needed.
type Sharded struct {
	shards    []*CFilter
	shardBits uint
	cfg       Config
}

// maxShardBits mirrors the core sharded filters' 256-shard cap.
const maxShardBits = 8

func shardBitsFor(n int) uint {
	bits := uint(0)
	for 1<<bits < n && bits < maxShardBits {
		bits++
	}
	return bits
}

// NewSharded creates a sharded concurrent cascade with nshards shards
// (rounded up to a power of two, clamped to [1, 256]). cfg.InitialSlots is
// the whole filter's initial budget; each shard starts at its 1/nshards
// share (floored at one block) and grows on its own schedule.
func NewSharded(cfg Config, nshards int) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bits := shardBitsFor(nshards)
	n := 1 << bits
	per := cfg.InitialSlots / uint64(n)
	if per < minSlotsPerShard {
		per = minSlotsPerShard
	}
	shardCfg := cfg
	shardCfg.InitialSlots = per
	f := &Sharded{shards: make([]*CFilter, n), shardBits: bits, cfg: cfg}
	for i := range f.shards {
		s, err := NewConcurrent(shardCfg)
		if err != nil {
			return nil, err
		}
		f.shards[i] = s
	}
	return f, nil
}

// minSlotsPerShard keeps a shard's first level at least one 8-bit block even
// when the configured initial budget divides below it.
const minSlotsPerShard = 48

// NumShards returns the shard count (a power of two).
func (f *Sharded) NumShards() int { return len(f.shards) }

func (f *Sharded) shard(h uint64) *CFilter { return f.shards[h>>(64-f.shardBits)] }

// Insert adds the pre-hashed key h to its shard, growing that shard as
// needed. Safe for concurrent use.
func (f *Sharded) Insert(h uint64) bool { return f.shard(h).Insert(h) }

// Contains reports whether h may be in the filter, probing only h's shard.
// Safe for concurrent use and lock-free.
func (f *Sharded) Contains(h uint64) bool { return f.shard(h).Contains(h) }

// Remove deletes one previously inserted instance of h. Safe for concurrent
// use.
func (f *Sharded) Remove(h uint64) bool { return f.shard(h).Remove(h) }

// Count returns the number of items stored across all shards.
func (f *Sharded) Count() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.Count()
	}
	return n
}

// Capacity returns the total allocated fingerprint slots across all shards.
func (f *Sharded) Capacity() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.Capacity()
	}
	return n
}

// SizeBytes returns the memory footprint summed over shards.
func (f *Sharded) SizeBytes() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.SizeBytes()
	}
	return n
}

// NumLevels returns the deepest shard's cascade depth (shards grow
// independently, so depths can differ by a level around growth points).
func (f *Sharded) NumLevels() int {
	max := 0
	for _, s := range f.shards {
		if n := s.NumLevels(); n > max {
			max = n
		}
	}
	return max
}

// TargetFPR returns the configured total false-positive budget ε, which
// every shard — and therefore every query — honors.
func (f *Sharded) TargetFPR() float64 { return f.cfg.TargetFPR }

// Stats returns operation counters summed over all shards' levels.
func (f *Sharded) Stats() stats.OpCounts {
	var total stats.OpCounts
	for _, s := range f.shards {
		total = total.Add(s.Stats())
	}
	return total
}

// ShardSnapshots returns one aggregate cascade snapshot per shard, in
// shard order — the per-shard heat view (each shard's count, load, and op
// counters) behind the sharded imbalance metric.
func (f *Sharded) ShardSnapshots() []stats.Snapshot {
	out := make([]stats.Snapshot, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Snapshot().Aggregate
	}
	return out
}

// Snapshot returns the sharded cascade's structural snapshot. Levels[i]
// merges level i across every shard that has one — shards share a config,
// so level i has the same geometry in every shard and the merge is exact
// as long as the shards have compacted in lockstep (CompactNow compacts
// all shards together; independent auto-triggered compactions can briefly
// misalign level indices, making the per-level merge approximate until the
// shards converge). The aggregate gauges are always exact. The aggregate
// follows the CascadeSnapshot convention: FPRFullLoad is the configured
// budget ε, FPREstimate the sum of merged per-level estimates, and
// Occupancy the newest level's merged distribution.
func (f *Sharded) Snapshot() stats.CascadeSnapshot {
	subs := make([]stats.CascadeSnapshot, len(f.shards))
	depth := 0
	for i, s := range f.shards {
		subs[i] = s.Snapshot()
		if n := len(subs[i].Levels); n > depth {
			depth = n
		}
	}
	cs := stats.CascadeSnapshot{Levels: make([]stats.Snapshot, depth)}
	for _, sub := range subs {
		cs.Compactions += sub.Compactions
		cs.CompactionLevelsMerged += sub.CompactionLevelsMerged
		cs.Freezes += sub.Freezes
		cs.FreezeLevelsFrozen += sub.FreezeLevelsFrozen
		cs.Thaws += sub.Thaws
		cs.BudgetReclaimed += sub.BudgetReclaimed
	}
	var fprSum float64
	for lvl := 0; lvl < depth; lvl++ {
		var merged stats.Snapshot
		for _, sub := range subs {
			if lvl < len(sub.Levels) {
				merged = merged.Merge(sub.Levels[lvl])
			}
		}
		cs.Levels[lvl] = merged
		fprSum += merged.FPREstimate
	}
	newest := cs.Levels[depth-1]
	cs.Aggregate = stats.Snapshot{
		Count:       f.Count(),
		Capacity:    f.Capacity(),
		SizeBytes:   f.SizeBytes(),
		FPRFullLoad: f.cfg.TargetFPR,
		FPREstimate: fprSum,
		Occupancy:   newest.Occupancy,
		Ops:         f.Stats(),
	}
	if cs.Aggregate.Capacity > 0 {
		cs.Aggregate.LoadFactor = float64(cs.Aggregate.Count) / float64(cs.Aggregate.Capacity)
	}
	if cs.Aggregate.Count > 0 {
		cs.Aggregate.BitsPerItem = float64(cs.Aggregate.SizeBytes) * 8 / float64(cs.Aggregate.Count)
	}
	return cs
}
