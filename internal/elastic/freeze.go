package elastic

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vqf/internal/core"
	"vqf/internal/fuse"
	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// Frozen tier. A cascade's old levels are read-mostly after churn, yet each
// keeps paying the VQF's ~25% metadata overhead for update support nobody
// uses anymore. Freezing rebuilds a run of frozen VQF levels into ONE
// immutable binary-fuse level (internal/fuse, ~1.08× entropy overhead),
// keyed by the pair-representative canonical hash (core.FoldHash8/16): both
// candidate blocks of a key map to the same representative, so a membership
// probe costs a single 3-segment fuse lookup instead of two VQF block scans.
//
// FPR accounting: the fuse level inherits the SUM of its sources' budgets
// εf = Σ εᵢ, preserving the cascade invariant Σ budgets + reclaimed ≤ ε.
// Its analytic FPR has two independent terms, each held to εf/2 by planning:
//
//   - canonical collisions: a negative key folds onto one of roughly
//     foldBlocks·buckets·2^srcBits/2 representatives, so colliding with one
//     of the D stored representatives happens with probability
//     ≈ 2·D/(foldBlocks·buckets·2^srcBits) — this is exact membership noise
//     the VQF sources had too (it is their fingerprint collision rate);
//   - fuse fingerprint collisions: 2⁻ʷ for width w ∈ {8, 16}; the planner
//     picks the narrowest width that fits.
//
// Remove semantics: the fuse structure is immutable, so removes go to a
// per-key tombstone ledger bounded by the exact key multiset (the "vault", a
// delta-varint-compressed sorted array of packed keys kept alongside the
// fuse filter — ~⌈log₂ keyspace⌉−6 bits/key). The vault makes Remove exact:
// a fuse false positive can never decrement Count or tombstone a ghost key.
// When tombstones reach ¼ of the frozen population the level thaws — it is
// rebuilt into a right-sized live VQF level (or re-fused without the dead
// keys when the survivors no longer fit the VQF geometry under the fold
// bound).
//
// Concurrency reuses the compaction protocol verbatim (see compact.go):
// plan under growMu, publish the frozen set through a removeMu barrier so
// racing removes log themselves, build off-lock from per-block snapshots,
// then reconcile the log and swap the level list atomically. The fuse
// level's CountAtBlock/CandidateBlocks are defined so reconcile's
// count-differencing is exact in both directions (freeze: fuse as
// destination; thaw: fuse as source): a key's instances are "located" only
// at its representative block.

// Level kinds of the frozen tier, distinct from the VQF fingerprint widths
// 8/16 used as level kinds so serialization and run planning can tell the
// tiers apart. The value encodes the SOURCE geometry the fold keys carry.
const (
	kindFuse8  uint8 = 108
	kindFuse16 uint8 = 116
)

// vqfKind reports whether a level kind is a live VQF geometry (as opposed
// to a frozen fuse level).
func vqfKind(k uint8) bool { return k == 8 || k == 16 }

// fuseKind reports whether a level kind is a frozen fuse tier.
func fuseKind(k uint8) bool { return k == kindFuse8 || k == kindFuse16 }

func fuseKindFor(srcKind uint8) uint8 {
	if srcKind == 8 {
		return kindFuse8
	}
	return kindFuse16
}

// thawNum/thawDen: a fuse level thaws once tombstones cover ≥ 1/4 of the
// population it froze with.
const (
	thawNum = 1
	thawDen = 4
)

// FreezeResult summarizes one FreezeNow call.
type FreezeResult struct {
	// LevelsBefore and LevelsAfter are the cascade depths around the call.
	LevelsBefore int
	LevelsAfter  int
	// LevelsFrozen is the number of source VQF levels rebuilt into fuse
	// levels or dropped empty (0 when no run qualified).
	LevelsFrozen int
	// FuseLevels is the number of immutable fuse levels produced.
	FuseLevels int
}

// tombstone tracks removes against one frozen key. base is the instance
// count at freeze time (immutable); removed counts successful removes,
// never exceeding base (CAS-guarded), so a key can only be removed as many
// times as it was frozen — the exactness the mutable VQF levels guarantee
// by physically deleting fingerprints.
type tombstone struct {
	base    uint64
	removed atomic.Uint64
}

// vaultBlock is the vault's delta-compression block size: one absolute
// anchor per vaultBlock keys, varint deltas between.
const vaultBlock = 64

// vault is the exact sorted multiset support of a fuse level: every
// distinct packed key, delta-varint compressed. It exists because the fuse
// filter alone is approximate — Remove and reconciliation need exact
// instance counts, and thaw needs the keys back.
type vault struct {
	n     int
	index []uint64 // anchor (first packed key) of each block
	offs  []uint32 // byte offset of each block's delta stream in data
	data  []byte
}

// buildVault compresses a sorted slice of distinct packed keys.
func buildVault(sorted []uint64) vault {
	v := vault{n: len(sorted)}
	if v.n == 0 {
		return v
	}
	nb := (v.n + vaultBlock - 1) / vaultBlock
	v.index = make([]uint64, 0, nb)
	v.offs = make([]uint32, 0, nb)
	var buf [binary.MaxVarintLen64]byte
	for i, p := range sorted {
		if i%vaultBlock == 0 {
			v.index = append(v.index, p)
			v.offs = append(v.offs, uint32(len(v.data)))
			continue
		}
		n := binary.PutUvarint(buf[:], p-sorted[i-1])
		v.data = append(v.data, buf[:n]...)
	}
	return v
}

// contains reports whether packed key p is in the vault: binary search over
// the block anchors, then a short delta scan within one block.
func (v *vault) contains(p uint64) bool {
	i := sort.Search(len(v.index), func(i int) bool { return v.index[i] > p }) - 1
	if i < 0 {
		return false
	}
	cur := v.index[i]
	if cur == p {
		return true
	}
	hi := (i + 1) * vaultBlock
	if hi > v.n {
		hi = v.n
	}
	data := v.data[v.offs[i]:]
	for j := i*vaultBlock + 1; j < hi; j++ {
		d, n := binary.Uvarint(data)
		data = data[n:]
		cur += d
		if cur >= p {
			return cur == p
		}
	}
	return false
}

// iterate yields every packed key in ascending order; returns false if
// yield stopped early.
func (v *vault) iterate(yield func(p uint64) bool) bool {
	data := v.data
	var cur uint64
	for i := 0; i < v.n; i++ {
		if i%vaultBlock == 0 {
			cur = v.index[i/vaultBlock]
		} else {
			d, n := binary.Uvarint(data)
			data = data[n:]
			cur += d
		}
		if !yield(cur) {
			return false
		}
	}
	return true
}

func (v *vault) sizeBytes() uint64 {
	return uint64(len(v.data)) + 8*uint64(len(v.index)) + 4*uint64(len(v.offs))
}

// fuseLevel is the immutable coreFilter of a frozen cascade level: a binary
// fuse filter over pair-representative canonical keys, the exact vault, a
// duplicate-instance map (a VQF level is a multiset), and the tombstone
// ledger for removes. All structure except the tombstones is immutable
// after construction, so Contains is lock-free by construction.
type fuseLevel struct {
	// srcKind is the source VQF geometry (8 or 16) whose canonical key
	// space the fold keys live in; fpBits is the fuse fingerprint width.
	srcKind uint8
	fpBits  uint8
	// foldBlocks/foldMask is the fold geometry: the minimum block count of
	// the frozen run (the destination mask must be a suffix of every source
	// mask; see internal/core/iterate.go).
	foldBlocks uint64
	foldMask   uint64

	f8  *fuse.Filter8
	f16 *fuse.Filter16

	vault vault
	// dupes maps packed keys stored more than once to their extra instance
	// count (instances − 1). Usually empty: duplicates require inserting
	// the same key twice or a source-level fingerprint collision.
	dupes map[uint64]uint32

	// baseTotal is the frozen instance total; live = baseTotal − tombTotal.
	baseTotal uint64
	live      atomic.Uint64
	tombTotal atomic.Uint64
	tombs     sync.Map // packed key → *tombstone

	ops stats.Striped
}

// newFuseLevel builds the immutable structures from the folded canonical
// keys of a frozen run (one per stored instance, duplicates allowed; the
// slice is consumed as scratch).
func newFuseLevel(srcKind, fpBits uint8, foldBlocks uint64, keys []uint64) (*fuseLevel, error) {
	l := &fuseLevel{
		srcKind:    srcKind,
		fpBits:     fpBits,
		foldBlocks: foldBlocks,
		foldMask:   foldBlocks - 1,
		baseTotal:  uint64(len(keys)),
	}
	packed := make([]uint64, len(keys))
	for i, k := range keys {
		packed[i] = l.pack(k)
	}
	sort.Slice(packed, func(i, j int) bool { return packed[i] < packed[j] })
	w := 0
	for _, p := range packed {
		if w > 0 && p == packed[w-1] {
			if l.dupes == nil {
				l.dupes = make(map[uint64]uint32)
			}
			l.dupes[p]++
			continue
		}
		packed[w] = p
		w++
	}
	distinct := packed[:w]
	ck := keys[:0]
	for _, p := range distinct {
		ck = append(ck, l.unpack(p))
	}
	var err error
	if fpBits == 8 {
		l.f8, err = fuse.Build8(ck)
	} else {
		l.f16, err = fuse.Build16(ck)
	}
	if err != nil {
		return nil, err
	}
	l.vault = buildVault(distinct)
	l.live.Store(l.baseTotal)
	return l, nil
}

// key folds a raw hash to its pair-representative canonical key.
func (l *fuseLevel) key(h uint64) uint64 {
	if l.srcKind == 8 {
		return core.FoldHash8(h, l.foldMask)
	}
	return core.FoldHash16(h, l.foldMask)
}

// blockOf extracts a canonical key's (representative) block index.
func (l *fuseLevel) blockOf(k uint64) uint64 {
	if l.srcKind == 8 {
		return k >> 24
	}
	return k >> 32
}

// pack maps a canonical key to a dense integer — (block·2^srcBits +
// fingerprint)·buckets + bucket — monotone in (block, fp, bucket), which
// keeps vault deltas small and freeze-time key streams nearly sorted.
func (l *fuseLevel) pack(k uint64) uint64 {
	if l.srcKind == 8 {
		return (k>>16)*minifilter.B8Buckets + (k&0xffff)*minifilter.B8Buckets>>16
	}
	return (k>>16)*minifilter.B16Buckets + (k&0xffff)*minifilter.B16Buckets>>16
}

// unpack inverts pack back to the canonical key.
func (l *fuseLevel) unpack(p uint64) uint64 {
	if l.srcKind == 8 {
		rest, bucket := p/minifilter.B8Buckets, p%minifilter.B8Buckets
		return core.CanonicalHash8(rest>>8, uint(bucket), byte(rest))
	}
	rest, bucket := p/minifilter.B16Buckets, p%minifilter.B16Buckets
	return core.CanonicalHash16(rest>>16, uint(bucket), uint16(rest))
}

func (l *fuseLevel) fuseContains(k uint64) bool {
	if l.fpBits == 8 {
		return l.f8.Contains(k)
	}
	return l.f16.Contains(k)
}

// instances returns how many instances of packed key p were frozen (0 when
// p is not in the vault — exact, immune to fuse false positives).
func (l *fuseLevel) instances(p uint64) uint64 {
	if !l.vault.contains(p) {
		return 0
	}
	n := uint64(1)
	if extra, ok := l.dupes[p]; ok {
		n += uint64(extra)
	}
	return n
}

// netOf returns p's surviving instance count: frozen minus tombstoned.
func (l *fuseLevel) netOf(p uint64) uint64 {
	n := l.instances(p)
	if n == 0 {
		return 0
	}
	if ti, ok := l.tombs.Load(p); ok {
		r := ti.(*tombstone).removed.Load()
		if r >= n {
			return 0
		}
		n -= r
	}
	return n
}

// tombAlive reports whether canonical key k is NOT fully tombstoned. Keys
// absent from the vault (fuse false positives) report alive — they were
// already a false positive within budget, and have no ledger entry.
func (l *fuseLevel) tombAlive(k uint64) bool {
	p := l.pack(k)
	if ti, ok := l.tombs.Load(p); ok {
		t := ti.(*tombstone)
		if t.removed.Load() >= t.base {
			return false
		}
	}
	return true
}

// needsThaw reports whether the tombstone ledger crossed the thaw
// threshold.
func (l *fuseLevel) needsThaw() bool {
	return l.baseTotal > 0 && l.tombTotal.Load()*thawDen >= l.baseTotal*thawNum
}

// Insert always fails: the level is immutable. The cascade never routes
// inserts here (only the newest level takes inserts, and a fuse level is
// never newest), so this is a defensive backstop.
func (l *fuseLevel) Insert(h uint64) bool { return false }

// Contains probes the fuse filter with the folded key — one lookup covers
// both VQF candidate blocks — then consults the tombstone ledger only when
// tombstones exist (the common frozen level skips it with one atomic load).
func (l *fuseLevel) Contains(h uint64) bool {
	k := l.key(h)
	l.ops.Lookup(l.blockOf(k))
	if !l.fuseContains(k) {
		return false
	}
	if l.tombTotal.Load() == 0 {
		return true
	}
	return l.tombAlive(k)
}

// ContainsBatch implements batchProber: folds a tile of keys, probes the
// fuse filter's batched path, then rechecks positives against tombstones.
func (l *fuseLevel) ContainsBatch(hs []uint64, dst []bool) []bool {
	if cap(dst) < len(hs) {
		dst = make([]bool, len(hs))
	}
	out := dst[:len(hs)]
	var tile [256]uint64
	tombs := l.tombTotal.Load() > 0
	for base := 0; base < len(hs); base += len(tile) {
		n := len(hs) - base
		if n > len(tile) {
			n = len(tile)
		}
		for i := 0; i < n; i++ {
			tile[i] = l.key(hs[base+i])
		}
		chunk := out[base : base+n]
		if l.fpBits == 8 {
			l.f8.ContainsBatch(tile[:n], chunk)
		} else {
			l.f16.ContainsBatch(tile[:n], chunk)
		}
		if tombs {
			for i := 0; i < n; i++ {
				if chunk[i] {
					chunk[i] = l.tombAlive(tile[i])
				}
			}
		}
	}
	l.ops.Batch(len(hs))
	return out
}

// Remove tombstones one instance of h. The vault lookup makes it exact: a
// fuse false positive (no vault entry) is a miss, and the CAS loop caps
// removes at the frozen instance count, so Count can never drift below the
// true population.
func (l *fuseLevel) Remove(h uint64) bool {
	k := l.key(h)
	sel := l.blockOf(k)
	if !l.fuseContains(k) {
		l.ops.RemoveMiss(sel)
		return false
	}
	p := l.pack(k)
	inst := l.instances(p)
	if inst == 0 {
		l.ops.RemoveMiss(sel)
		return false
	}
	ti, ok := l.tombs.Load(p)
	if !ok {
		ti, _ = l.tombs.LoadOrStore(p, &tombstone{base: inst})
	}
	t := ti.(*tombstone)
	for {
		r := t.removed.Load()
		if r >= t.base {
			l.ops.RemoveMiss(sel)
			return false
		}
		if t.removed.CompareAndSwap(r, r+1) {
			l.tombTotal.Add(1)
			l.live.Add(^uint64(0))
			l.ops.Remove(sel)
			return true
		}
	}
}

// Count returns the surviving (non-tombstoned) instance count.
func (l *fuseLevel) Count() uint64 { return l.live.Load() }

// Capacity is the frozen population: the level is born full and only
// shrinks, so load factor = live/baseTotal ∈ [0, 1].
func (l *fuseLevel) Capacity() uint64 { return l.baseTotal }

// SizeBytes covers the immutable structures (fuse array + vault); the
// tombstone ledger is transient thaw-bounded state.
func (l *fuseLevel) SizeBytes() uint64 {
	var fb uint64
	if l.fpBits == 8 {
		fb = l.f8.SizeBytes()
	} else {
		fb = l.f16.SizeBytes()
	}
	return fb + l.vault.sizeBytes()
}

func (l *fuseLevel) Stats() stats.OpCounts { return l.ops.Counts() }

// BlockOccupancies returns nil: a fuse level has no slot geometry.
func (l *fuseLevel) BlockOccupancies() []uint { return nil }

// SlotsPerBlock returns 0: no slot geometry.
func (l *fuseLevel) SlotsPerBlock() uint { return 0 }

// IterateHashes yields each surviving key instance's canonical hash —
// already the pair representative under foldMask, so reinsertion into any
// xor-linked filter with ≤ foldBlocks blocks reproduces membership exactly.
func (l *fuseLevel) IterateHashes(yield func(h uint64) bool) bool {
	ok := true
	l.vault.iterate(func(p uint64) bool {
		n := uint64(1)
		if extra, dup := l.dupes[p]; dup {
			n += uint64(extra)
		}
		if ti, found := l.tombs.Load(p); found {
			r := ti.(*tombstone).removed.Load()
			if r >= n {
				return true
			}
			n -= r
		}
		h := l.unpack(p)
		for ; n > 0; n-- {
			if !yield(h) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// CandidateBlocks returns h's candidate pair under the fold mask. Both
// members are reported (not just the representative) so reconcile's stride
// walk covers every source block that folds onto the pair; CountAtBlock
// then locates instances only at the representative, keeping the
// count-differencing exactly-once.
func (l *fuseLevel) CandidateBlocks(h uint64) (uint64, uint64) {
	if l.srcKind == 8 {
		return core.CandidatePair8(h, l.foldMask)
	}
	return core.CandidatePair16(h, l.foldMask)
}

// CountAtBlock counts h's (bucket, fingerprint) instances anchored at block
// b: it synthesizes the canonical hash at b, folds it, and answers only
// when b IS the fold representative — every key instance is counted at
// exactly one block, which is what reconcile's cross-geometry stride sums
// rely on (in both the freeze and thaw directions).
func (l *fuseLevel) CountAtBlock(b, h uint64) uint64 {
	var k uint64
	if l.srcKind == 8 {
		k = core.FoldHash8(h&0xffffff|b<<24, l.foldMask)
	} else {
		k = core.FoldHash16(h&0xffffffff|b<<32, l.foldMask)
	}
	if l.blockOf(k) != b {
		return 0
	}
	return l.netOf(l.pack(k))
}

// NumBlocks returns the fold geometry's block count.
func (l *fuseLevel) NumBlocks() uint64 { return l.foldBlocks }

// freezePlan is one planned freeze: the contiguous sub-run ending at level
// index hi (exclusive), the fold geometry, fuse width and inherited budget
// — or a drop of an all-empty run (budget moves to reclaimed).
type freezePlan struct {
	hi         int
	sub        []*level
	drop       bool
	fpBits     uint8
	foldBlocks uint64
	budget     float64
	geomFPR    float64
}

// freezeRuns returns the maximal runs of ≥1 contiguous same-kind VQF levels
// among the frozen levels ls[:len(ls)-1] that pass the gate (nil gate
// accepts everything). Unlike compaction a single level is a worthwhile
// freeze unit — the win is the representation, not the merge.
func freezeRuns(ls []*level, gate func(*level) bool) []compactRun {
	var runs []compactRun
	frozen := len(ls) - 1
	for lo := 0; lo < frozen; {
		if !vqfKind(ls[lo].kind) || (gate != nil && !gate(ls[lo])) {
			lo++
			continue
		}
		hi := lo + 1
		for hi < frozen && ls[hi].kind == ls[lo].kind && (gate == nil || gate(ls[hi])) {
			hi++
		}
		runs = append(runs, compactRun{lo, hi})
		lo = hi
	}
	return runs
}

// freezeParams checks whether a run can be frozen within its summed budget
// and returns the plan parameters. Both analytic FPR terms are held to
// budget/2: the canonical-collision term is fixed by the fold geometry and
// live count, the fuse term by the narrowest fingerprint width that fits.
// An all-empty run plans as a drop.
func freezeParams(run []*level) (freezePlan, bool) {
	live := sumCounts(run)
	var budget float64
	minBlocks := run[0].filter.NumBlocks()
	for _, l := range run {
		budget += l.budget
		if nb := l.filter.NumBlocks(); nb < minBlocks {
			minBlocks = nb
		}
	}
	if live == 0 {
		return freezePlan{drop: true, budget: budget}, true
	}
	buckets, fpSpace := float64(minifilter.B8Buckets), 256.0
	if run[0].kind == 16 {
		buckets, fpSpace = float64(minifilter.B16Buckets), 65536.0
	}
	canonFPR := 2 * float64(live) / (float64(minBlocks) * buckets * fpSpace)
	if canonFPR > budget/2 {
		return freezePlan{}, false
	}
	var fpBits uint8
	switch {
	case 1.0/256 <= budget/2:
		fpBits = 8
	case 1.0/65536 <= budget/2:
		fpBits = 16
	default:
		return freezePlan{}, false
	}
	return freezePlan{
		fpBits:     fpBits,
		foldBlocks: minBlocks,
		budget:     budget,
		geomFPR:    canonFPR + math.Pow(2, -float64(fpBits)),
	}, true
}

// shrinkFreeze drops the oldest (smallest, most mask-constraining) levels
// from the run until it satisfies freezeParams; ok is false when not even a
// single level fits.
func shrinkFreeze(run []*level) (sub []*level, p freezePlan, ok bool) {
	for len(run) >= 1 {
		if p, ok = freezeParams(run); ok {
			return run, p, true
		}
		run = run[1:]
	}
	return nil, freezePlan{}, false
}

// planFreezes partitions every gated run into freezable segments, newest
// first, mirroring planRun's splice discipline: plans come out in
// descending hi order with disjoint segments.
func planFreezes(ls []*level, gate func(*level) bool) []freezePlan {
	var plans []freezePlan
	runs := freezeRuns(ls, gate)
	for i := len(runs) - 1; i >= 0; i-- {
		hi := runs[i].hi
		for hi > runs[i].lo {
			sub, p, ok := shrinkFreeze(ls[runs[i].lo:hi])
			if !ok {
				break
			}
			p.hi = hi
			p.sub = sub
			plans = append(plans, p)
			hi -= len(sub)
		}
	}
	return plans
}

// buildFuseLevel folds every source instance's canonical hash to its pair
// representative and builds the immutable level. The returned level carries
// the summed budget and the analytic FPR as its geomFPR.
func buildFuseLevel(p freezePlan) (*level, error) {
	srcKind := p.sub[0].kind
	foldMask := p.foldBlocks - 1
	keys := make([]uint64, 0, sumCounts(p.sub))
	for _, src := range p.sub {
		if srcKind == 8 {
			src.filter.IterateHashes(func(h uint64) bool {
				keys = append(keys, core.FoldHash8(h, foldMask))
				return true
			})
		} else {
			src.filter.IterateHashes(func(h uint64) bool {
				keys = append(keys, core.FoldHash16(h, foldMask))
				return true
			})
		}
	}
	fl, err := newFuseLevel(srcKind, p.fpBits, p.foldBlocks, keys)
	if err != nil {
		return nil, err
	}
	lvl := &level{filter: fl, kind: fuseKindFor(srcKind), budget: p.budget, geomFPR: p.geomFPR}
	stampFrozen(lvl)
	return lvl, nil
}

// autoFreezeGate builds the WithAutoFreeze eligibility predicate: a level
// qualifies once it has been frozen (out of the insert path) for at least
// FreezeMinAge and its load factor is at or below FreezeMaxLoad. A zero
// frozenAt stamp (deserialized cascades) counts as old.
func autoFreezeGate(cfg Config) func(*level) bool {
	now := time.Now().UnixNano()
	minAge := cfg.FreezeMinAge.Nanoseconds()
	return func(l *level) bool {
		if fa := l.frozenAt.Load(); fa != 0 && now-fa < minAge {
			return false
		}
		c := l.filter.Capacity()
		return c == 0 || float64(l.filter.Count()) <= cfg.FreezeMaxLoad*float64(c)
	}
}

// FreezeNow rebuilds every qualifying run of frozen VQF levels into
// immutable fuse levels, synchronously. Runs that cannot meet their budget
// in the fuse representation stay as they are; all-empty runs are dropped
// and their budgets retired into the reclaimed pool.
func (f *Filter) FreezeNow() FreezeResult { return f.freeze(nil) }

func (f *Filter) freeze(gate func(*level) bool) FreezeResult {
	res := FreezeResult{LevelsBefore: len(f.levels), LevelsAfter: len(f.levels)}
	plans := planFreezes(f.levels, gate)
	if len(plans) == 0 {
		return res
	}
	var runLive uint64
	for _, p := range plans {
		runLive += sumCounts(p.sub)
	}
	f.ring.Record(telemetry.EvFreezeStart, uint64(len(f.levels)), runLive, 0)
	end := telemetry.Task("vqf.elastic.freeze")
	start := time.Now()
	// Plans arrive in descending hi order; splicing forward keeps earlier
	// indices valid.
	for _, p := range plans {
		lo := p.hi - len(p.sub)
		if p.drop {
			f.reclaimed += p.budget
			f.levels = append(f.levels[:lo], f.levels[p.hi:]...)
			res.LevelsFrozen += len(p.sub)
			continue
		}
		lvl, err := buildFuseLevel(p)
		if err != nil {
			continue // peeling failed (vanishingly rare); sources stay as-is
		}
		f.levels = append(f.levels[:lo+1], f.levels[p.hi:]...)
		f.levels[lo] = lvl
		res.LevelsFrozen += len(p.sub)
		res.FuseLevels++
	}
	end()
	res.LevelsAfter = len(f.levels)
	if res.LevelsFrozen > 0 {
		f.freezes++
		f.freezeLevels += uint64(res.LevelsFrozen)
	}
	f.ring.Record(telemetry.EvFreezeFinish,
		uint64(res.LevelsFrozen), uint64(res.LevelsAfter), uint64(time.Since(start)))
	return res
}

// maybeFreeze runs an auto-gated freeze when the config enables it.
func (f *Filter) maybeFreeze() {
	if !f.cfg.AutoFreeze {
		return
	}
	f.freeze(autoFreezeGate(f.cfg))
}

// maybeThaw thaws any fuse level whose tombstone ledger crossed the
// threshold (inline; the sequential filter has no background goroutines).
func (f *Filter) maybeThaw() {
	for i := 0; i < len(f.levels); i++ {
		if fl, ok := f.levels[i].filter.(*fuseLevel); ok && fl.needsThaw() {
			f.thawAt(i)
		}
	}
}

// thawAt rebuilds the fuse level at index i into live form; a fully
// tombstoned level is dropped and its budget reclaimed.
func (f *Filter) thawAt(i int) {
	lvl := f.levels[i]
	fl := lvl.filter.(*fuseLevel)
	if fl.Count() == 0 {
		f.reclaimed += lvl.budget
		f.levels = append(f.levels[:i], f.levels[i+1:]...)
		f.thaws++
		return
	}
	nlvl := thawedLevel(f.cfg, lvl)
	if nlvl == nil {
		return
	}
	setLevelRing(nlvl, f.ring)
	f.levels[i] = nlvl
	f.thaws++
}

// thawedLevel rebuilds a tombstone-laden fuse level into live form: a
// right-sized VQF level when the survivors fit under the fold's cross-mask
// bound, else a fresh fuse level without the dead keys. nil means the
// rebuild failed and the caller keeps the original.
func thawedLevel(cfg Config, lvl *level) *level {
	fl := lvl.filter.(*fuseLevel)
	live := fl.Count()
	srcKind := fl.srcKind
	spb, geom := uint64(minifilter.B8Slots), FPR8Full
	if srcKind == 16 {
		spb, geom = minifilter.B16Slots, FPR16Full
	}
	need := float64(live) / cfg.FillThreshold
	if byFPR := float64(live) * geom / lvl.budget; byFPR > need {
		need = byFPR
	}
	for nblocks := core.BlocksFor(uint64(need), spb); nblocks <= fl.foldBlocks; nblocks *= 2 {
		dst := newMergedLevel(cfg, srcKind, nblocks, lvl.budget)
		ok := true
		fl.IterateHashes(func(h uint64) bool {
			if !dst.filter.Insert(h) {
				ok = false
				return false
			}
			return true
		})
		if ok {
			stampFrozen(dst)
			return dst
		}
	}
	// Survivors need more blocks than the fold bound allows back into VQF
	// geometry: re-fuse without the tombstoned keys instead.
	keys := make([]uint64, 0, live)
	fl.IterateHashes(func(h uint64) bool {
		keys = append(keys, h)
		return true
	})
	buckets, fpSpace := float64(minifilter.B8Buckets), 256.0
	if srcKind == 16 {
		buckets, fpSpace = float64(minifilter.B16Buckets), 65536.0
	}
	nfl, err := newFuseLevel(srcKind, fl.fpBits, fl.foldBlocks, keys)
	if err != nil {
		return nil
	}
	canonFPR := 2 * float64(nfl.baseTotal) / (float64(fl.foldBlocks) * buckets * fpSpace)
	nl := &level{
		filter:  nfl,
		kind:    lvl.kind,
		budget:  lvl.budget,
		geomFPR: canonFPR + math.Pow(2, -float64(fl.fpBits)),
	}
	stampFrozen(nl)
	return nl
}

// FreezeNow rebuilds every qualifying run of frozen VQF levels into
// immutable fuse levels while readers stay lock-free and writers keep
// writing, reusing the compaction protocol (see CFilter.CompactNow): plan
// under growMu, removeMu barrier to publish the frozen set, off-lock build
// from per-block snapshots, second barrier to reconcile the remove log and
// swap the level list.
func (f *CFilter) FreezeNow() FreezeResult { return f.freeze(nil) }

func (f *CFilter) freeze(gate func(*level) bool) FreezeResult {
	f.growMu.Lock()
	defer f.growMu.Unlock()
	ls := *f.levels.Load()
	res := FreezeResult{LevelsBefore: len(ls), LevelsAfter: len(ls)}
	plans := planFreezes(ls, gate)
	if len(plans) == 0 {
		return res
	}
	st := &compactState{frozen: map[*level]struct{}{}}
	var runLive uint64
	for _, p := range plans {
		runLive += sumCounts(p.sub)
		for _, l := range p.sub {
			st.frozen[l] = struct{}{}
		}
	}
	f.ring.Record(telemetry.EvFreezeStart, uint64(len(ls)), runLive, 0)
	end := telemetry.Task("vqf.elastic.freeze")
	start := time.Now()

	f.removeMu.Lock()
	// Seal the sources inside the barrier so a stale inserter can never land
	// in a run the fuse build has already iterated; see CFilter.insertLevel.
	for l := range st.frozen {
		l.sealed.Store(true)
	}
	f.compact.Store(st)
	f.removeMu.Unlock()

	built := make([]*level, len(plans))
	for i, p := range plans {
		if p.drop {
			continue
		}
		if lvl, err := buildFuseLevel(p); err == nil {
			built[i] = lvl
		}
	}

	f.removeMu.Lock()
	next := append([]*level(nil), ls...)
	for i, p := range plans {
		lo := p.hi - len(p.sub)
		if p.drop {
			// Empty at plan time stays empty: removes cannot hit a level
			// with no surviving fingerprints, so no reconcile is needed.
			f.addReclaimed(p.budget)
			next = append(next[:lo], next[p.hi:]...)
			res.LevelsFrozen += len(p.sub)
			continue
		}
		if built[i] == nil {
			continue
		}
		reconcile(built[i], p.sub, st.log)
		next = append(next[:lo+1], next[p.hi:]...)
		next[lo] = built[i]
		res.LevelsFrozen += len(p.sub)
		res.FuseLevels++
	}
	if res.LevelsFrozen > 0 {
		f.levels.Store(&next)
		f.freezes.Add(1)
		f.freezeLevels.Add(uint64(res.LevelsFrozen))
	}
	f.compact.Store(nil)
	f.removeMu.Unlock()
	end()
	res.LevelsAfter = len(next)
	f.ring.Record(telemetry.EvFreezeFinish,
		uint64(res.LevelsFrozen), uint64(res.LevelsAfter), uint64(time.Since(start)))
	return res
}

// maybeFreeze fires a background auto-gated freeze. The freezing gate keeps
// freeze and thaw goroutines from stacking; explicit FreezeNow calls
// serialize on growMu independently.
func (f *CFilter) maybeFreeze() {
	if !f.cfg.AutoFreeze {
		return
	}
	if len(planFreezes(*f.levels.Load(), autoFreezeGate(f.cfg))) == 0 {
		return
	}
	if !f.freezing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer f.freezing.Store(false)
		f.freeze(autoFreezeGate(f.cfg))
	}()
}

// maybeThaw fires a background thaw pass when some fuse level crossed the
// tombstone threshold.
func (f *CFilter) maybeThaw() {
	if !f.freezing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer f.freezing.Store(false)
		f.thawNow()
	}()
}

// thawNow rebuilds every fuse level past the thaw threshold, one at a time
// under the compaction protocol (the fuse level is the single "frozen"
// source; racing removes log themselves and reconcile replays them against
// the rebuilt level).
func (f *CFilter) thawNow() {
	for {
		f.growMu.Lock()
		ls := *f.levels.Load()
		idx := -1
		for i, lvl := range ls {
			if fl, ok := lvl.filter.(*fuseLevel); ok && fl.needsThaw() {
				idx = i
				break
			}
		}
		if idx < 0 {
			f.growMu.Unlock()
			return
		}
		lvl := ls[idx]
		fl := lvl.filter.(*fuseLevel)

		if fl.Count() == 0 {
			// Fully tombstoned: no remove can hit it again (every key's
			// ledger is saturated), so it can be spliced out directly.
			f.removeMu.Lock()
			next := append([]*level(nil), ls...)
			next = append(next[:idx], next[idx+1:]...)
			f.addReclaimed(lvl.budget)
			f.levels.Store(&next)
			f.thaws.Add(1)
			f.removeMu.Unlock()
			f.growMu.Unlock()
			continue
		}

		st := &compactState{frozen: map[*level]struct{}{lvl: {}}}
		f.removeMu.Lock()
		f.compact.Store(st)
		f.removeMu.Unlock()

		nlvl := thawedLevel(f.cfg, lvl)
		if nlvl != nil {
			setLevelRing(nlvl, f.ring)
		}

		f.removeMu.Lock()
		if nlvl != nil {
			reconcile(nlvl, []*level{lvl}, st.log)
			next := append([]*level(nil), ls...)
			next[idx] = nlvl
			f.levels.Store(&next)
			f.thaws.Add(1)
		}
		f.compact.Store(nil)
		f.removeMu.Unlock()
		f.growMu.Unlock()
		if nlvl == nil {
			return // rebuild failed; retrying immediately would spin
		}
	}
}

// addReclaimed retires budget into the reclaimed pool. Called only under
// growMu; stored as float bits so readers can load it without the lock.
func (f *CFilter) addReclaimed(b float64) {
	f.reclaimed.Store(math.Float64bits(math.Float64frombits(f.reclaimed.Load()) + b))
}

// Reclaimed returns the budget retired from dropped levels; see
// Filter.Reclaimed.
func (f *CFilter) Reclaimed() float64 {
	return math.Float64frombits(f.reclaimed.Load())
}

// Reclaimed returns the total FPR budget retired from dropped (emptied)
// levels. The cascade invariant is
//
//	Σ live level budgets + Reclaimed + ε·rˢᶜʰᵉᵈ = ε
//
// — budgets move between the three pools (future schedule → live levels at
// growth, live → reclaimed at empty-drop) but are never created or reused.
func (f *Filter) Reclaimed() float64 { return f.reclaimed }

// FreezeNow freezes every shard, summing the per-shard results.
func (f *Sharded) FreezeNow() FreezeResult {
	var res FreezeResult
	for _, s := range f.shards {
		r := s.FreezeNow()
		res.LevelsBefore += r.LevelsBefore
		res.LevelsAfter += r.LevelsAfter
		res.LevelsFrozen += r.LevelsFrozen
		res.FuseLevels += r.FuseLevels
	}
	return res
}

// stampFrozen records when a level left the insert path (creation for
// merged/fuse/thawed levels, growth time for a superseded newest level).
func stampFrozen(l *level) { l.frozenAt.Store(time.Now().UnixNano()) }
