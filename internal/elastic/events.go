package elastic

import (
	"time"

	"vqf/internal/telemetry"
)

// Rare-event hooks: cascade growth is the elastic filter's defining latency
// hazard (a multi-millisecond allocation on the insert path), so each
// growth records a structured event — which level was appended, how many
// slots it allocated, and how long the build took — and is wrapped in a
// runtime/trace task so an execution trace shows exactly which goroutine
// paid for it. The ring also propagates into each level's concurrent core
// filter, so seqlock fallbacks inside the cascade land in the same stream.

// SetEventRing attaches r as the cascade's rare-event sink. Call before
// the filter sees traffic.
func (f *Filter) SetEventRing(r *telemetry.Ring) {
	f.ring = r
	for _, lvl := range f.levels {
		setLevelRing(lvl, r)
	}
}

// SetEventRing attaches r as the cascade's rare-event sink. Call before
// sharing the filter across goroutines.
func (f *CFilter) SetEventRing(r *telemetry.Ring) {
	f.ring = r
	for _, lvl := range *f.levels.Load() {
		setLevelRing(lvl, r)
	}
}

// SetEventRing attaches r to every shard's cascade. Call before sharing.
func (f *Sharded) SetEventRing(r *telemetry.Ring) {
	for _, s := range f.shards {
		s.SetEventRing(r)
	}
}

// setLevelRing forwards the ring to a level's core filter when that filter
// has event hooks (the concurrent variants; sequential cores never fall
// back and take no ring).
func setLevelRing(lvl *level, r *telemetry.Ring) {
	if h, ok := lvl.filter.(interface{ SetEventRing(*telemetry.Ring) }); ok {
		h.SetEventRing(r)
	}
}

// buildLevel is newLevel plus observability: a trace task spanning the
// build, and a growth event (A=level index, B=allocated slots, C=build ns)
// in ring. kind distinguishes the sequential append (EvElasticGrow) from
// the concurrent copy-and-swap (EvElasticSwap).
func buildLevel(cfg Config, i int, ring *telemetry.Ring, kind telemetry.EventKind) *level {
	end := telemetry.Task("vqf.elastic.grow")
	start := time.Now()
	lvl := newLevel(cfg, i)
	d := time.Since(start)
	end()
	ring.Record(kind, uint64(i), lvl.filter.Capacity(), uint64(d))
	setLevelRing(lvl, ring)
	return lvl
}
