package elastic

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"vqf/internal/core"
	"vqf/internal/fuse"
	"vqf/internal/minifilter"
)

// Cascade serialization: a header carrying the Config (everything needed to
// regrow the cascade deterministically) followed by each level's stream,
// oldest first.
//
// Version 1 cascades were pure growth products: per-level budgets, triggers
// and geometries were pure functions of (Config, level index) and were
// recomputed on read. Compaction broke that purity — a merged level's
// budget is the sum of the budgets it replaced and its size is chosen from
// its live count, neither derivable from an index — so version 2 prefixes
// each level's core stream with a small record carrying the level's kind,
// block count, budget and trigger, plus the cascade's next schedule index
// in the header (the schedule keeps advancing while compaction keeps the
// level list short, so the level count no longer implies it). Version 3
// adds the frozen tier: the header grows an 8-byte reclaimed-budget field
// (dropping an emptied level retires its εᵢ; without it a reloaded cascade
// would violate the budget invariant), and level records may carry the fuse
// kinds (kindFuse8/kindFuse16) whose streams are fuse levels — see
// writeFuseLevel. Versions 1 and 2 are still read.
//
// Only sequential cascades serialize, matching the core filters.

const (
	magicElastic   = 0x45465156 // "VQFE"
	elasticVersion = 3
	// elasticHeaderBytes: magic(4) version(2) levels(2) flags(2) sched(2)
	// pad(4) targetFPR(8) growth(8) tighten(8) fill(8) initialSlots(8).
	// Version 1 wrote zeros over the sched field (it was padding).
	// Version 3 appends reclaimed(8) — elasticHeaderV3Bytes in total.
	elasticHeaderBytes   = 4 + 2 + 2 + 2 + 2 + 4 + 8 + 8 + 8 + 8 + 8
	elasticHeaderV3Bytes = elasticHeaderBytes + 8

	// levelRecordBytes: kind(1) blocksLog2(1) pad(6) budget(8) trigger(8).
	levelRecordBytes = 1 + 1 + 6 + 8 + 8

	// fuseLevelHeaderBytes: srcKind(1) fpBits(1) pad(6) baseTotal(8)
	// vaultN(8) dupeN(8) tombN(8); see writeFuseLevel.
	fuseLevelHeaderBytes = 1 + 1 + 6 + 8 + 8 + 8 + 8

	eflagNoShortcut = 1 << 0
)

// WriteTo serializes the cascade. It implements io.WriterTo.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var hdr [elasticHeaderV3Bytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicElastic)
	binary.LittleEndian.PutUint16(hdr[4:], elasticVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(f.levels)))
	var flags uint16
	if f.cfg.NoShortcut {
		flags |= eflagNoShortcut
	}
	binary.LittleEndian.PutUint16(hdr[8:], flags)
	binary.LittleEndian.PutUint16(hdr[10:], uint16(f.sched))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(f.cfg.TargetFPR))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(f.cfg.GrowthFactor))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(f.cfg.TightenRatio))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(f.cfg.FillThreshold))
	binary.LittleEndian.PutUint64(hdr[48:], f.cfg.InitialSlots)
	binary.LittleEndian.PutUint64(hdr[56:], math.Float64bits(f.reclaimed))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(hdr))
	for _, lvl := range f.levels {
		var rec [levelRecordBytes]byte
		rec[0] = lvl.kind
		rec[1] = byte(bits.TrailingZeros64(lvl.filter.NumBlocks()))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(lvl.budget))
		binary.LittleEndian.PutUint64(rec[16:], lvl.trigger)
		if _, err := w.Write(rec[:]); err != nil {
			return n, err
		}
		n += int64(len(rec))
		wt, ok := lvl.filter.(io.WriterTo)
		if !ok {
			return n, fmt.Errorf("elastic: level filter %T does not serialize", lvl.filter)
		}
		m, err := wt.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// readLevelStream reads one core filter stream of the given kind, checking
// it against the expected slot count, and wraps it in a level.
func readLevelStream(r io.Reader, kind uint8, slots uint64, budget float64, trigger uint64) (*level, error) {
	lvl := &level{kind: kind, budget: budget, trigger: trigger, geomFPR: FPR16Full}
	if kind == 8 {
		lvl.geomFPR = FPR8Full
		impl, err := core.ReadFilter8Sized(r, slots)
		if err != nil {
			return nil, err
		}
		lvl.filter = impl
	} else {
		impl, err := core.ReadFilter16Sized(r, slots)
		if err != nil {
			return nil, err
		}
		lvl.filter = impl
	}
	return lvl, nil
}

// Read deserializes a cascade written by WriteTo (either version). The
// header's config is validated with the same rules as New, the level count
// is capped at MaxLevels, and every level stream passes through the core
// readers' structural audits, so adversarial input fails cleanly instead of
// allocating absurd amounts or corrupting later operations. Version 2
// additionally audits the per-level records: budgets must be positive and
// sum to at most the configured ε, triggers must fit the level, and the
// schedule index must cover every level ever built.
func Read(r io.Reader) (*Filter, error) {
	var hdr [elasticHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicElastic {
		return nil, fmt.Errorf("%w: bad cascade magic", core.ErrBadFormat)
	}
	version := binary.LittleEndian.Uint16(hdr[4:])
	if version < 1 || version > elasticVersion {
		return nil, fmt.Errorf("%w: unsupported cascade version %d", core.ErrBadFormat, version)
	}
	nlevels := int(binary.LittleEndian.Uint16(hdr[6:]))
	flags := binary.LittleEndian.Uint16(hdr[8:])
	sched := int(binary.LittleEndian.Uint16(hdr[10:]))
	cfg := Config{
		TargetFPR:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:])),
		GrowthFactor:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:])),
		TightenRatio:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:])),
		FillThreshold: math.Float64frombits(binary.LittleEndian.Uint64(hdr[40:])),
		InitialSlots:  binary.LittleEndian.Uint64(hdr[48:]),
		NoShortcut:    flags&eflagNoShortcut != 0,
	}
	if nlevels < 1 || nlevels > MaxLevels {
		return nil, fmt.Errorf("%w: cascade level count %d outside [1, %d]", core.ErrBadFormat, nlevels, MaxLevels)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	f := &Filter{cfg: cfg, levels: make([]*level, 0, nlevels)}
	if version >= 3 {
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
		}
		f.reclaimed = math.Float64frombits(binary.LittleEndian.Uint64(ext[:]))
		if !(f.reclaimed >= 0 && f.reclaimed < cfg.TargetFPR) {
			return nil, fmt.Errorf("%w: reclaimed budget %g outside [0, ε)", core.ErrBadFormat, f.reclaimed)
		}
	}

	if version == 1 {
		// Pure growth product: rebuild every level's parameters from its
		// index; the next schedule index is the level count.
		f.sched = nlevels
		for i := 0; i < nlevels; i++ {
			_, trigger, allocSlots := levelSizing(cfg, i)
			lvl, err := readLevelStream(r, levelKind(cfg, i), allocSlots, levelBudget(cfg, i), trigger)
			if err != nil {
				return nil, fmt.Errorf("level %d: %w", i, err)
			}
			f.levels = append(f.levels, lvl)
		}
		return f, nil
	}

	if sched < nlevels || sched > schedCap {
		return nil, fmt.Errorf("%w: cascade schedule index %d outside [%d, %d]", core.ErrBadFormat, sched, nlevels, schedCap)
	}
	f.sched = sched
	var budgetSum float64
	for i := 0; i < nlevels; i++ {
		var rec [levelRecordBytes]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("level %d: %w: %v", i, core.ErrBadFormat, err)
		}
		kind := rec[0]
		blocksLog2 := rec[1]
		budget := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))
		trigger := binary.LittleEndian.Uint64(rec[16:])
		if kind != 8 && kind != 16 && (version < 3 || !fuseKind(kind)) {
			return nil, fmt.Errorf("%w: level %d fingerprint kind %d", core.ErrBadFormat, i, kind)
		}
		if blocksLog2 > 40 {
			return nil, fmt.Errorf("%w: level %d block count 2^%d", core.ErrBadFormat, i, blocksLog2)
		}
		if !(budget > 0 && budget < 1) {
			return nil, fmt.Errorf("%w: level %d budget %g outside (0, 1)", core.ErrBadFormat, i, budget)
		}
		budgetSum += budget
		if fuseKind(kind) {
			if trigger != 0 {
				return nil, fmt.Errorf("%w: level %d fuse trigger %d nonzero", core.ErrBadFormat, i, trigger)
			}
			lvl, err := readFuseLevel(r, kind, uint64(1)<<blocksLog2, budget)
			if err != nil {
				return nil, fmt.Errorf("level %d: %w", i, err)
			}
			f.levels = append(f.levels, lvl)
			continue
		}
		spb := uint64(minifilter.B16Slots)
		if kind == 8 {
			spb = minifilter.B8Slots
		}
		slots := (uint64(1) << blocksLog2) * spb
		if trigger < 1 || trigger > slots {
			return nil, fmt.Errorf("%w: level %d trigger %d outside [1, %d]", core.ErrBadFormat, i, trigger, slots)
		}
		lvl, err := readLevelStream(r, kind, slots, budget, trigger)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		f.levels = append(f.levels, lvl)
	}
	// Budgets (plus the retired reclaimed pool) must not overspend the
	// cascade's ε; the tiny slack absorbs float summation error (merges and
	// freezes store exact sums of schedule terms).
	if budgetSum+f.reclaimed > cfg.TargetFPR*(1+1e-9) {
		return nil, fmt.Errorf("%w: level budgets sum to %g, exceeding target FPR %g", core.ErrBadFormat, budgetSum+f.reclaimed, cfg.TargetFPR)
	}
	return f, nil
}

// Fuse level stream: the 40-byte header (srcKind, fpBits, instance total and
// the three ledger cardinalities), the fuse filter's own self-delimiting
// stream, then one length-prefixed varint blob carrying the vault's packed
// keys, the duplicate-instance map and the tombstone ledger — each a sorted
// delta-coded sequence (first value absolute, then deltas ≥ 1), so the blob
// compresses like the in-memory vault and the reader gets monotonicity as a
// free structural audit.

// packedEntry pairs a packed vault key with an associated count (duplicate
// extras or tombstoned removes).
type packedEntry struct {
	p, v uint64
}

func appendUvarint(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutUvarint(buf[:], v)]...)
}

// appendEntries delta-codes a sorted (packed, count) sequence.
func appendEntries(b []byte, es []packedEntry) []byte {
	var prev uint64
	for i, e := range es {
		if i == 0 {
			b = appendUvarint(b, e.p)
		} else {
			b = appendUvarint(b, e.p-prev)
		}
		prev = e.p
		b = appendUvarint(b, e.v)
	}
	return b
}

// WriteTo serializes the fuse level's immutable structures and its current
// tombstone ledger. Concurrent removes during serialization can make the
// ledger a sampling snapshot (tombstones are monotone, so every written
// entry is valid; a racing remove may simply be missed) — callers wanting an
// exact image serialize a quiesced filter, same as the core filters.
func (l *fuseLevel) WriteTo(w io.Writer) (int64, error) {
	var tombs []packedEntry
	l.tombs.Range(func(key, val any) bool {
		if r := val.(*tombstone).removed.Load(); r > 0 {
			tombs = append(tombs, packedEntry{key.(uint64), r})
		}
		return true
	})
	sort.Slice(tombs, func(i, j int) bool { return tombs[i].p < tombs[j].p })
	dupes := make([]packedEntry, 0, len(l.dupes))
	for p, extra := range l.dupes {
		dupes = append(dupes, packedEntry{p, uint64(extra)})
	}
	sort.Slice(dupes, func(i, j int) bool { return dupes[i].p < dupes[j].p })

	var hdr [fuseLevelHeaderBytes]byte
	hdr[0] = l.srcKind
	hdr[1] = l.fpBits
	binary.LittleEndian.PutUint64(hdr[8:], l.baseTotal)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(l.vault.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(dupes)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(tombs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(hdr))

	var m int64
	var err error
	if l.fpBits == 8 {
		m, err = l.f8.WriteTo(w)
	} else {
		m, err = l.f16.WriteTo(w)
	}
	n += m
	if err != nil {
		return n, err
	}

	blob := make([]byte, 0, 2*l.vault.n+16)
	var prev uint64
	first := true
	l.vault.iterate(func(p uint64) bool {
		if first {
			blob = appendUvarint(blob, p)
			first = false
		} else {
			blob = appendUvarint(blob, p-prev)
		}
		prev = p
		return true
	})
	blob = appendEntries(blob, dupes)
	blob = appendEntries(blob, tombs)

	var lenbuf [8]byte
	binary.LittleEndian.PutUint64(lenbuf[:], uint64(len(blob)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return n, err
	}
	n += 8
	if _, err := w.Write(blob); err != nil {
		return n, err
	}
	return n + int64(len(blob)), nil
}

// blobUvarint decodes one uvarint from blob, erroring on truncation instead
// of panicking.
func blobUvarint(blob []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(blob)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated fuse level varint stream", core.ErrBadFormat)
	}
	return v, blob[n:], nil
}

// readEntries decodes a delta-coded (packed, count) sequence, enforcing
// strictly increasing keys below bound and counts of at least one.
func readEntries(blob []byte, n, bound uint64, what string) ([]packedEntry, []byte, error) {
	es := make([]packedEntry, 0, n)
	var prev uint64
	var err error
	for i := uint64(0); i < n; i++ {
		var d, v uint64
		if d, blob, err = blobUvarint(blob); err != nil {
			return nil, nil, err
		}
		if i == 0 {
			prev = d
		} else {
			if d == 0 {
				return nil, nil, fmt.Errorf("%w: fuse level %s keys not strictly increasing", core.ErrBadFormat, what)
			}
			prev += d
		}
		if prev >= bound {
			return nil, nil, fmt.Errorf("%w: fuse level %s key %d beyond key space %d", core.ErrBadFormat, what, prev, bound)
		}
		if v, blob, err = blobUvarint(blob); err != nil {
			return nil, nil, err
		}
		if v == 0 {
			return nil, nil, fmt.Errorf("%w: fuse level %s count zero", core.ErrBadFormat, what)
		}
		es = append(es, packedEntry{prev, v})
	}
	return es, blob, nil
}

// readFuseLevel reads one frozen fuse level stream, rebuilding the exact
// in-memory structures and auditing every cross-constraint: the cardinality
// fields must be mutually consistent (vault + duplicate extras = instance
// total, tombstones never exceed what they remove from), every ledger key
// must exist in the vault, and the fuse filter must cover exactly the
// vault's distinct keys.
func readFuseLevel(r io.Reader, kind uint8, foldBlocks uint64, budget float64) (*level, error) {
	var hdr [fuseLevelHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	srcKind := hdr[0]
	fpBits := hdr[1]
	if srcKind != 8 && srcKind != 16 {
		return nil, fmt.Errorf("%w: fuse level source kind %d", core.ErrBadFormat, srcKind)
	}
	if fuseKindFor(srcKind) != kind {
		return nil, fmt.Errorf("%w: fuse level source kind %d under level kind %d", core.ErrBadFormat, srcKind, kind)
	}
	if fpBits != 8 && fpBits != 16 {
		return nil, fmt.Errorf("%w: fuse fingerprint width %d", core.ErrBadFormat, fpBits)
	}
	baseTotal := binary.LittleEndian.Uint64(hdr[8:])
	vaultN := binary.LittleEndian.Uint64(hdr[16:])
	dupeN := binary.LittleEndian.Uint64(hdr[24:])
	tombN := binary.LittleEndian.Uint64(hdr[32:])
	srcBits, buckets := uint64(8), uint64(minifilter.B8Buckets)
	if srcKind == 16 {
		srcBits, buckets = 16, minifilter.B16Buckets
	}
	bound := (foldBlocks << srcBits) * buckets
	if vaultN < 1 || vaultN > bound || vaultN > baseTotal {
		return nil, fmt.Errorf("%w: fuse level vault size %d outside [1, min(%d, %d)]", core.ErrBadFormat, vaultN, bound, baseTotal)
	}
	if dupeN > vaultN || tombN > vaultN {
		return nil, fmt.Errorf("%w: fuse level ledger sizes %d/%d exceed vault %d", core.ErrBadFormat, dupeN, tombN, vaultN)
	}

	l := &fuseLevel{
		srcKind:    srcKind,
		fpBits:     fpBits,
		foldBlocks: foldBlocks,
		foldMask:   foldBlocks - 1,
		baseTotal:  baseTotal,
	}
	var fkeys uint64
	var err error
	if fpBits == 8 {
		l.f8, err = fuse.Read8(r)
		if err == nil {
			fkeys = l.f8.Keys()
		}
	} else {
		l.f16, err = fuse.Read16(r)
		if err == nil {
			fkeys = l.f16.Keys()
		}
	}
	if err != nil {
		return nil, err
	}
	if fkeys != vaultN {
		return nil, fmt.Errorf("%w: fuse filter holds %d keys, vault %d", core.ErrBadFormat, fkeys, vaultN)
	}

	var lenbuf [8]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	blobLen := binary.LittleEndian.Uint64(lenbuf[:])
	if max := binary.MaxVarintLen64 * (vaultN + 2*dupeN + 2*tombN); blobLen > max {
		return nil, fmt.Errorf("%w: fuse level blob length %d exceeds bound %d", core.ErrBadFormat, blobLen, max)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}

	keys := make([]uint64, vaultN)
	var prev uint64
	for i := range keys {
		var d uint64
		if d, blob, err = blobUvarint(blob); err != nil {
			return nil, err
		}
		if i == 0 {
			prev = d
		} else {
			if d == 0 {
				return nil, fmt.Errorf("%w: fuse level vault keys not strictly increasing", core.ErrBadFormat)
			}
			prev += d
		}
		if prev >= bound {
			return nil, fmt.Errorf("%w: fuse level vault key %d beyond key space %d", core.ErrBadFormat, prev, bound)
		}
		keys[i] = prev
	}
	l.vault = buildVault(keys)

	dupes, blob, err := readEntries(blob, dupeN, bound, "duplicate")
	if err != nil {
		return nil, err
	}
	var extraSum uint64
	for _, e := range dupes {
		if !l.vault.contains(e.p) {
			return nil, fmt.Errorf("%w: fuse level duplicate key %d not in vault", core.ErrBadFormat, e.p)
		}
		if e.v > math.MaxUint32 {
			return nil, fmt.Errorf("%w: fuse level duplicate count %d overflows", core.ErrBadFormat, e.v)
		}
		if l.dupes == nil {
			l.dupes = make(map[uint64]uint32, len(dupes))
		}
		l.dupes[e.p] = uint32(e.v)
		extraSum += e.v
	}
	if vaultN+extraSum != baseTotal {
		return nil, fmt.Errorf("%w: fuse level instances %d+%d != total %d", core.ErrBadFormat, vaultN, extraSum, baseTotal)
	}

	tombs, blob, err := readEntries(blob, tombN, bound, "tombstone")
	if err != nil {
		return nil, err
	}
	var removedSum uint64
	for _, e := range tombs {
		inst := l.instances(e.p)
		if inst == 0 {
			return nil, fmt.Errorf("%w: fuse level tombstone key %d not in vault", core.ErrBadFormat, e.p)
		}
		if e.v > inst {
			return nil, fmt.Errorf("%w: fuse level tombstone removes %d of %d instances", core.ErrBadFormat, e.v, inst)
		}
		t := &tombstone{base: inst}
		t.removed.Store(e.v)
		l.tombs.Store(e.p, t)
		removedSum += e.v
	}
	if len(blob) != 0 {
		return nil, fmt.Errorf("%w: fuse level blob has %d trailing bytes", core.ErrBadFormat, len(blob))
	}
	l.tombTotal.Store(removedSum)
	l.live.Store(baseTotal - removedSum)

	canonFPR := 2 * float64(baseTotal) / (float64(foldBlocks) * float64(buckets) * float64(uint64(1)<<srcBits))
	return &level{
		filter:  l,
		kind:    kind,
		budget:  budget,
		geomFPR: canonFPR + math.Pow(2, -float64(fpBits)),
	}, nil
}
