package elastic

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vqf/internal/core"
)

// Cascade serialization: a header carrying the Config (everything needed to
// regrow the cascade deterministically) followed by each level's core
// filter stream, oldest first. Per-level budgets, triggers and geometries
// are pure functions of (Config, level index), so they are recomputed on
// read rather than stored; the core streams' own magic numbers then enforce
// that each level has the geometry the config dictates.
//
// Only sequential cascades serialize, matching the core filters.

const (
	magicElastic   = 0x45465156 // "VQFE"
	elasticVersion = 1
	// elasticHeaderBytes: magic(4) version(2) levels(2) flags(2) pad(6)
	// targetFPR(8) growth(8) tighten(8) fill(8) initialSlots(8).
	elasticHeaderBytes = 4 + 2 + 2 + 2 + 6 + 8 + 8 + 8 + 8 + 8

	eflagNoShortcut = 1 << 0
)

// WriteTo serializes the cascade. It implements io.WriterTo.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var hdr [elasticHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicElastic)
	binary.LittleEndian.PutUint16(hdr[4:], elasticVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(f.levels)))
	var flags uint16
	if f.cfg.NoShortcut {
		flags |= eflagNoShortcut
	}
	binary.LittleEndian.PutUint16(hdr[8:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(f.cfg.TargetFPR))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(f.cfg.GrowthFactor))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(f.cfg.TightenRatio))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(f.cfg.FillThreshold))
	binary.LittleEndian.PutUint64(hdr[48:], f.cfg.InitialSlots)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(hdr))
	for _, lvl := range f.levels {
		wt, ok := lvl.filter.(io.WriterTo)
		if !ok {
			return n, fmt.Errorf("elastic: level filter %T does not serialize", lvl.filter)
		}
		m, err := wt.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read deserializes a cascade written by WriteTo. The header's config is
// validated with the same rules as New, the level count is capped at
// MaxLevels, and every level stream passes through the core readers'
// structural audits, so adversarial input fails cleanly instead of
// allocating absurd amounts or corrupting later operations.
func Read(r io.Reader) (*Filter, error) {
	var hdr [elasticHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicElastic {
		return nil, fmt.Errorf("%w: bad cascade magic", core.ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != elasticVersion {
		return nil, fmt.Errorf("%w: unsupported cascade version %d", core.ErrBadFormat, v)
	}
	nlevels := int(binary.LittleEndian.Uint16(hdr[6:]))
	flags := binary.LittleEndian.Uint16(hdr[8:])
	cfg := Config{
		TargetFPR:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:])),
		GrowthFactor:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:])),
		TightenRatio:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:])),
		FillThreshold: math.Float64frombits(binary.LittleEndian.Uint64(hdr[40:])),
		InitialSlots:  binary.LittleEndian.Uint64(hdr[48:]),
		NoShortcut:    flags&eflagNoShortcut != 0,
	}
	if nlevels < 1 || nlevels > MaxLevels {
		return nil, fmt.Errorf("%w: cascade level count %d outside [1, %d]", core.ErrBadFormat, nlevels, MaxLevels)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	f := &Filter{cfg: cfg, levels: make([]*level, 0, nlevels)}
	for i := 0; i < nlevels; i++ {
		_, trigger, allocSlots := levelSizing(cfg, i)
		lvl := &level{
			kind:    levelKind(cfg, i),
			budget:  levelBudget(cfg, i),
			trigger: trigger,
			geomFPR: FPR16Full,
		}
		// Level geometry is a pure function of (config, index): a stream whose
		// block count disagrees with the declared config is forged or corrupt,
		// and the sized readers reject it before allocating the claimed size.
		if lvl.kind == 8 {
			lvl.geomFPR = FPR8Full
			impl, err := core.ReadFilter8Sized(r, allocSlots)
			if err != nil {
				return nil, fmt.Errorf("level %d: %w", i, err)
			}
			lvl.filter = impl
		} else {
			impl, err := core.ReadFilter16Sized(r, allocSlots)
			if err != nil {
				return nil, fmt.Errorf("level %d: %w", i, err)
			}
			lvl.filter = impl
		}
		f.levels = append(f.levels, lvl)
	}
	return f, nil
}
