package elastic

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"vqf/internal/core"
	"vqf/internal/minifilter"
)

// Cascade serialization: a header carrying the Config (everything needed to
// regrow the cascade deterministically) followed by each level's stream,
// oldest first.
//
// Version 1 cascades were pure growth products: per-level budgets, triggers
// and geometries were pure functions of (Config, level index) and were
// recomputed on read. Compaction broke that purity — a merged level's
// budget is the sum of the budgets it replaced and its size is chosen from
// its live count, neither derivable from an index — so version 2 prefixes
// each level's core stream with a small record carrying the level's kind,
// block count, budget and trigger, plus the cascade's next schedule index
// in the header (the schedule keeps advancing while compaction keeps the
// level list short, so the level count no longer implies it). Version 1
// streams are still read.
//
// Only sequential cascades serialize, matching the core filters.

const (
	magicElastic   = 0x45465156 // "VQFE"
	elasticVersion = 2
	// elasticHeaderBytes: magic(4) version(2) levels(2) flags(2) sched(2)
	// pad(4) targetFPR(8) growth(8) tighten(8) fill(8) initialSlots(8).
	// Version 1 wrote zeros over the sched field (it was padding).
	elasticHeaderBytes = 4 + 2 + 2 + 2 + 2 + 4 + 8 + 8 + 8 + 8 + 8

	// levelRecordBytes: kind(1) blocksLog2(1) pad(6) budget(8) trigger(8).
	levelRecordBytes = 1 + 1 + 6 + 8 + 8

	eflagNoShortcut = 1 << 0
)

// WriteTo serializes the cascade. It implements io.WriterTo.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var hdr [elasticHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicElastic)
	binary.LittleEndian.PutUint16(hdr[4:], elasticVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(f.levels)))
	var flags uint16
	if f.cfg.NoShortcut {
		flags |= eflagNoShortcut
	}
	binary.LittleEndian.PutUint16(hdr[8:], flags)
	binary.LittleEndian.PutUint16(hdr[10:], uint16(f.sched))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(f.cfg.TargetFPR))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(f.cfg.GrowthFactor))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(f.cfg.TightenRatio))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(f.cfg.FillThreshold))
	binary.LittleEndian.PutUint64(hdr[48:], f.cfg.InitialSlots)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(hdr))
	for _, lvl := range f.levels {
		var rec [levelRecordBytes]byte
		rec[0] = lvl.kind
		rec[1] = byte(bits.TrailingZeros64(lvl.filter.NumBlocks()))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(lvl.budget))
		binary.LittleEndian.PutUint64(rec[16:], lvl.trigger)
		if _, err := w.Write(rec[:]); err != nil {
			return n, err
		}
		n += int64(len(rec))
		wt, ok := lvl.filter.(io.WriterTo)
		if !ok {
			return n, fmt.Errorf("elastic: level filter %T does not serialize", lvl.filter)
		}
		m, err := wt.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// readLevelStream reads one core filter stream of the given kind, checking
// it against the expected slot count, and wraps it in a level.
func readLevelStream(r io.Reader, kind uint8, slots uint64, budget float64, trigger uint64) (*level, error) {
	lvl := &level{kind: kind, budget: budget, trigger: trigger, geomFPR: FPR16Full}
	if kind == 8 {
		lvl.geomFPR = FPR8Full
		impl, err := core.ReadFilter8Sized(r, slots)
		if err != nil {
			return nil, err
		}
		lvl.filter = impl
	} else {
		impl, err := core.ReadFilter16Sized(r, slots)
		if err != nil {
			return nil, err
		}
		lvl.filter = impl
	}
	return lvl, nil
}

// Read deserializes a cascade written by WriteTo (either version). The
// header's config is validated with the same rules as New, the level count
// is capped at MaxLevels, and every level stream passes through the core
// readers' structural audits, so adversarial input fails cleanly instead of
// allocating absurd amounts or corrupting later operations. Version 2
// additionally audits the per-level records: budgets must be positive and
// sum to at most the configured ε, triggers must fit the level, and the
// schedule index must cover every level ever built.
func Read(r io.Reader) (*Filter, error) {
	var hdr [elasticHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicElastic {
		return nil, fmt.Errorf("%w: bad cascade magic", core.ErrBadFormat)
	}
	version := binary.LittleEndian.Uint16(hdr[4:])
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: unsupported cascade version %d", core.ErrBadFormat, version)
	}
	nlevels := int(binary.LittleEndian.Uint16(hdr[6:]))
	flags := binary.LittleEndian.Uint16(hdr[8:])
	sched := int(binary.LittleEndian.Uint16(hdr[10:]))
	cfg := Config{
		TargetFPR:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:])),
		GrowthFactor:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:])),
		TightenRatio:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:])),
		FillThreshold: math.Float64frombits(binary.LittleEndian.Uint64(hdr[40:])),
		InitialSlots:  binary.LittleEndian.Uint64(hdr[48:]),
		NoShortcut:    flags&eflagNoShortcut != 0,
	}
	if nlevels < 1 || nlevels > MaxLevels {
		return nil, fmt.Errorf("%w: cascade level count %d outside [1, %d]", core.ErrBadFormat, nlevels, MaxLevels)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadFormat, err)
	}
	f := &Filter{cfg: cfg, levels: make([]*level, 0, nlevels)}

	if version == 1 {
		// Pure growth product: rebuild every level's parameters from its
		// index; the next schedule index is the level count.
		f.sched = nlevels
		for i := 0; i < nlevels; i++ {
			_, trigger, allocSlots := levelSizing(cfg, i)
			lvl, err := readLevelStream(r, levelKind(cfg, i), allocSlots, levelBudget(cfg, i), trigger)
			if err != nil {
				return nil, fmt.Errorf("level %d: %w", i, err)
			}
			f.levels = append(f.levels, lvl)
		}
		return f, nil
	}

	if sched < nlevels || sched > schedCap {
		return nil, fmt.Errorf("%w: cascade schedule index %d outside [%d, %d]", core.ErrBadFormat, sched, nlevels, schedCap)
	}
	f.sched = sched
	var budgetSum float64
	for i := 0; i < nlevels; i++ {
		var rec [levelRecordBytes]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("level %d: %w: %v", i, core.ErrBadFormat, err)
		}
		kind := rec[0]
		blocksLog2 := rec[1]
		budget := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))
		trigger := binary.LittleEndian.Uint64(rec[16:])
		if kind != 8 && kind != 16 {
			return nil, fmt.Errorf("%w: level %d fingerprint kind %d", core.ErrBadFormat, i, kind)
		}
		if blocksLog2 > 40 {
			return nil, fmt.Errorf("%w: level %d block count 2^%d", core.ErrBadFormat, i, blocksLog2)
		}
		if !(budget > 0 && budget < 1) {
			return nil, fmt.Errorf("%w: level %d budget %g outside (0, 1)", core.ErrBadFormat, i, budget)
		}
		budgetSum += budget
		spb := uint64(minifilter.B16Slots)
		if kind == 8 {
			spb = minifilter.B8Slots
		}
		slots := (uint64(1) << blocksLog2) * spb
		if trigger < 1 || trigger > slots {
			return nil, fmt.Errorf("%w: level %d trigger %d outside [1, %d]", core.ErrBadFormat, i, trigger, slots)
		}
		lvl, err := readLevelStream(r, kind, slots, budget, trigger)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		f.levels = append(f.levels, lvl)
	}
	// Budgets must not overspend the cascade's ε; the tiny slack absorbs
	// float summation error (merges store exact sums of schedule terms).
	if budgetSum > cfg.TargetFPR*(1+1e-9) {
		return nil, fmt.Errorf("%w: level budgets sum to %g, exceeding target FPR %g", core.ErrBadFormat, budgetSum, cfg.TargetFPR)
	}
	return f, nil
}
