package elastic

import (
	"sync"
	"sync/atomic"
	"testing"

	"vqf/internal/workload"
)

// freezeHammer is the remove-after-freeze churn hammer. Unlike
// compactHammer (which removes from the batch it just inserted, so removes
// land on the newest, never-frozen level), each worker here keeps a backlog
// and removes 3/4 of the batch it inserted two rounds earlier — by then
// that batch's level has aged out of the insert path and is eligible for
// freezing, so removes race against fuse-level tombstones, the freeze
// build's remove log, and thaw rebuilds. A dedicated goroutine loops
// FreezeNow+CompactNow the whole time. Returns the number of keys left
// live; the lag tail (the last two rounds' batches) is never removed.
func freezeHammer(t *testing.T, f interface {
	Insert(uint64) bool
	Contains(uint64) bool
	Remove(uint64) bool
	FreezeNow() FreezeResult
	CompactNow() CompactionResult
}, nWorkers, rounds, batch int) uint64 {
	t.Helper()
	const lag = 2
	cut := batch * 3 / 4
	var live atomic.Uint64
	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			stream := workload.NewStream(seed)
			var backlog [][]uint64
			for r := 0; r < rounds; r++ {
				keys := stream.Keys(batch)
				for _, k := range keys {
					if !f.Insert(k) {
						t.Error("insert failed")
						return
					}
				}
				for _, k := range keys {
					if !f.Contains(k) {
						t.Errorf("false negative for acked insert %#x", k)
						return
					}
				}
				backlog = append(backlog, keys)
				live.Add(uint64(batch))
				if r < lag {
					continue
				}
				old := backlog[r-lag]
				for _, k := range old[:cut] {
					if !f.Remove(k) {
						t.Errorf("remove of aged key %#x failed", k)
						return
					}
				}
				for _, k := range old[cut:] {
					if !f.Contains(k) {
						t.Errorf("false negative for live aged key %#x", k)
						return
					}
				}
				live.Add(^uint64(cut - 1))
			}
		}(uint64(4000 + w))
	}
	var freezes int
	freezerDone := make(chan struct{})
	go func() {
		defer close(freezerDone)
		for !done.Load() {
			if res := f.FreezeNow(); res.LevelsFrozen > 0 {
				freezes++
			}
			f.CompactNow()
		}
	}()
	wg.Wait()
	done.Store(true)
	<-freezerDone
	if freezes == 0 {
		t.Log("warning: no freeze retired anything during the hammer")
	}
	return live.Load()
}

// TestFreezeRaceConcurrent is the remove-after-freeze regression test on a
// concurrent cascade: churn with aged removes races a freeze/compact loop,
// and the exact final count catches both lost inserts and resurrected
// removes.
func TestFreezeRaceConcurrent(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds, batch := 12, 1500
	if testing.Short() {
		rounds = 5
	}
	live := freezeHammer(t, f, 4, rounds, batch)
	if f.Count() != live {
		t.Fatalf("final count %d, want %d live keys (lost or resurrected instances)", f.Count(), live)
	}
	// Quiesced: re-derive each worker's stream and verify every key that was
	// never removed — the aged suffixes plus the lag tail.
	cut := batch * 3 / 4
	for w := 0; w < 4; w++ {
		stream := workload.NewStream(uint64(4000 + w))
		for r := 0; r < rounds; r++ {
			keys := stream.Keys(batch)
			from := cut
			if r >= rounds-2 {
				from = 0
			}
			for _, k := range keys[from:] {
				if !f.Contains(k) {
					t.Fatalf("lost live key %#x after quiescence", k)
				}
			}
		}
	}
}

// TestFreezeRaceSharded runs the hammer against a sharded cascade with
// auto-freeze and auto-compaction stacked on the explicit loop.
func TestFreezeRaceSharded(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9,
		AutoFreeze: true, FreezeMaxLoad: 1,
		CompactMinLevels: 4, CompactMaxLoad: 0.6}
	f, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rounds, batch := 8, 1500
	if testing.Short() {
		rounds = 3
	}
	live := freezeHammer(t, f, 4, rounds, batch)
	if f.Count() != live {
		t.Fatalf("final count %d, want %d live keys", f.Count(), live)
	}
}

// TestThawRaceConcurrent drives a frozen concurrent cascade past the thaw
// threshold while lookups run: the background thaw (triggered by the
// removes themselves) must splice levels without dropping a live key.
func TestThawRaceConcurrent(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(61).Keys(30000)
	for _, k := range keys {
		if !f.Insert(k) {
			t.Fatal("insert failed")
		}
	}
	if res := f.FreezeNow(); res.FuseLevels == 0 {
		t.Skip("cascade shape yielded no fuse level")
	}

	// Half the goroutines remove the first 60% of the keys (enough to push
	// every fuse level past ¼ tombstones); the rest hammer lookups on the
	// surviving tail.
	cut := len(keys) * 6 / 10
	var removers, lookers sync.WaitGroup
	var done atomic.Bool
	for w := 0; w < 2; w++ {
		removers.Add(1)
		go func(part int) {
			defer removers.Done()
			for i := part; i < cut; i += 2 {
				if !f.Remove(keys[i]) {
					t.Errorf("remove of live key %#x failed", keys[i])
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		lookers.Add(1)
		go func() {
			defer lookers.Done()
			for !done.Load() {
				for _, k := range keys[cut:] {
					if !f.Contains(k) {
						t.Errorf("false negative for never-removed key %#x during thaw", k)
						return
					}
				}
			}
		}()
	}
	removers.Wait()
	done.Store(true)
	lookers.Wait()

	f.thawNow() // drain any remaining over-threshold levels inline
	if f.Count() != uint64(len(keys)-cut) {
		t.Fatalf("count %d after thaw churn, want %d", f.Count(), len(keys)-cut)
	}
	for _, k := range keys[cut:] {
		if !f.Contains(k) {
			t.Fatalf("thaw lost live key %#x", k)
		}
	}
}
