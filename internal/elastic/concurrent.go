package elastic

import (
	"sync"
	"sync/atomic"

	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// CFilter is the thread-safe elastic VQF. The level list is immutable and
// published through an atomic pointer: readers (Contains, Remove, Snapshot)
// load the current list and work on it without any lock, while growth
// builds a copy with one more level and swaps the pointer under growMu.
// A reader holding a pre-swap list still sees every level it needs —
// levels are only ever appended, never mutated in place or removed — so a
// lookup concurrent with growth can at worst miss keys inserted into the
// brand-new level after its load, the same linearization any concurrent
// map allows. Per-level thread safety is the core CFilter8/16 machinery:
// per-block spin locks for writers, seqlock-validated optimistic reads for
// lookups.
type CFilter struct {
	cfg    Config
	levels atomic.Pointer[[]*level]
	ring   *telemetry.Ring
	// growMu serializes growth and compaction; insert and lookup paths
	// never take it.
	growMu sync.Mutex
	// sched is the next schedule index growth will build (see Filter.sched);
	// guarded by growMu.
	sched int

	// removeMu orders removes against a compaction's freeze barrier: every
	// Remove runs under the read side, and compaction takes the write side
	// once to publish its frozen-level set (so later removes log themselves)
	// and once to drain in-flight removes before reconciling and swapping
	// the level list. Contains and Insert never touch it.
	removeMu sync.RWMutex
	// compact, while non-nil, is the in-flight compaction's removal-log
	// state; see compactState.
	compact atomic.Pointer[compactState]
	// compacting gates the automatic trigger so it never stacks background
	// compaction goroutines.
	compacting       atomic.Bool
	compactions      atomic.Uint64
	compactionLevels atomic.Uint64
	// freezing gates the background freeze/thaw goroutines the same way.
	freezing     atomic.Bool
	freezes      atomic.Uint64
	freezeLevels atomic.Uint64
	thaws        atomic.Uint64
	// reclaimed holds retired FPR budget as float64 bits; written only
	// under growMu, read lock-free (see addReclaimed/Reclaimed).
	reclaimed atomic.Uint64
}

// NewConcurrent creates an empty thread-safe cascade with one level.
func NewConcurrent(cfg Config) (*CFilter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Concurrent = true
	f := &CFilter{cfg: cfg, sched: 1}
	ls := []*level{newLevel(cfg, 0)}
	f.levels.Store(&ls)
	return f, nil
}

// Insert adds the pre-hashed key h. Safe for concurrent use. Writers that
// concurrently pass the trigger check can each land one item, so a level
// may exceed its trigger by at most the number of in-flight inserts — a
// relative FPR overshoot of O(writers/trigger), negligible against the
// slack the power-of-two block rounding leaves (and noted in the DESIGN
// budget derivation).
func (f *CFilter) Insert(h uint64) bool {
	for {
		ls := *f.levels.Load()
		lvl := ls[len(ls)-1]
		ok, sealed := f.insertLevel(lvl, h)
		if ok {
			return true
		}
		if sealed {
			continue // a structural op retired lvl; reload the list
		}
		if !f.grow(lvl) {
			return false
		}
	}
}

// insertLevel lands h in lvl unless lvl has been sealed as a compaction or
// freeze source. An inserter can hold a stale level list whose newest entry
// has since been demoted by growth and selected as a source — and churn can
// pull such a level's count back under its trigger, re-opening the fast
// path — so an unchecked raw insert could land in a level the rebuild has
// already iterated and be dropped at the swap. The removeMu read side
// orders this exactly against the op's first write barrier (which sets
// sealed): either the whole section runs before the barrier, in which case
// the off-lock rebuild is guaranteed to observe the landed insert, or the
// sealed check fires and the caller retries against the current list.
// sealed is reported true only for that retry case.
func (f *CFilter) insertLevel(lvl *level, h uint64) (ok, sealed bool) {
	f.removeMu.RLock()
	defer f.removeMu.RUnlock()
	if lvl.sealed.Load() {
		return false, true
	}
	if lvl.filter.Count() >= lvl.trigger {
		return false, false
	}
	return lvl.filter.Insert(h), false
}

// grow appends a new level if seen is still the newest level; a concurrent
// grower who got there first makes this a no-op. The identity check is
// against the newest level pointer, not the list length: compaction can
// SHRINK the list while preserving the newest level, and a length check
// would then mistake the shrink for someone else's growth (or worse, a
// grow-then-compact for no change). It returns false only at the
// MaxLevels/schedule backstop.
func (f *CFilter) grow(seen *level) bool {
	f.growMu.Lock()
	ls := *f.levels.Load()
	if ls[len(ls)-1] != seen {
		f.growMu.Unlock()
		return true // someone else grew; caller retries against the new list
	}
	if len(ls) >= MaxLevels || f.sched >= schedCap {
		f.growMu.Unlock()
		return false
	}
	next := make([]*level, len(ls)+1)
	copy(next, ls)
	next[len(ls)] = buildLevel(f.cfg, f.sched, f.ring, telemetry.EvElasticSwap)
	f.sched++
	stampFrozen(seen) // the superseded newest level just left the insert path
	f.levels.Store(&next)
	f.growMu.Unlock()
	f.maybeCompact()
	f.maybeFreeze()
	return true
}

// Contains reports whether h may be in the cascade. Safe for concurrent
// use and lock-free: one atomic pointer load, then each level's optimistic
// block reads, newest-first with a short-circuit on hit.
func (f *CFilter) Contains(h uint64) bool {
	ls := *f.levels.Load()
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i].filter.Contains(h) {
			return true
		}
	}
	return false
}

// Remove deletes one previously inserted instance of h, searching levels
// newest-first. Safe for concurrent use, including concurrent with a
// compaction: the read side of removeMu brackets the whole operation so a
// compaction's barriers order every remove entirely before or entirely
// after its freeze point, and a remove that lands in a level the compaction
// is rebuilding appends h to the removal log, which the compaction
// reconciles against the merged level before publishing it — a racing
// remove can therefore never resurrect in the merged level.
func (f *CFilter) Remove(h uint64) bool {
	f.removeMu.RLock()
	st := f.compact.Load()
	ls := *f.levels.Load()
	hit := -1
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i].filter.Remove(h) {
			hit = i
			if st != nil {
				if _, frozen := st.frozen[ls[i]]; frozen {
					st.mu.Lock()
					st.log = append(st.log, h)
					st.mu.Unlock()
				}
			}
			break
		}
	}
	f.removeMu.RUnlock()
	if hit < 0 {
		return false
	}
	if hit < len(ls)-1 {
		// A frozen level just got sparser; check the auto triggers.
		if fl, ok := ls[hit].filter.(*fuseLevel); ok && fl.needsThaw() {
			f.maybeThaw()
		}
		f.maybeCompact()
		f.maybeFreeze()
	}
	return true
}

// Count returns the number of items stored across all levels.
func (f *CFilter) Count() uint64 { return sumCounts(*f.levels.Load()) }

// Capacity returns the total allocated fingerprint slots.
func (f *CFilter) Capacity() uint64 { return sumCapacities(*f.levels.Load()) }

// SizeBytes returns the cascade's memory footprint.
func (f *CFilter) SizeBytes() uint64 { return sumSizes(*f.levels.Load()) }

// NumLevels returns the current cascade depth.
func (f *CFilter) NumLevels() int { return len(*f.levels.Load()) }

// TargetFPR returns the configured total false-positive budget ε.
func (f *CFilter) TargetFPR() float64 { return f.cfg.TargetFPR }

// Stats returns operation counters summed over all levels; see the core
// concurrent filters for the consistency contract.
func (f *CFilter) Stats() stats.OpCounts { return sumStats(*f.levels.Load()) }

// Snapshot returns the cascade's structural snapshot. Safe alongside live
// traffic: the level list is an immutable copy and each level's occupancy
// scan uses the optimistic block protocol.
func (f *CFilter) Snapshot() stats.CascadeSnapshot {
	cs := snapshotLevels(f.cfg.TargetFPR, *f.levels.Load())
	cs.Compactions = f.compactions.Load()
	cs.CompactionLevelsMerged = f.compactionLevels.Load()
	cs.Freezes = f.freezes.Load()
	cs.FreezeLevelsFrozen = f.freezeLevels.Load()
	cs.Thaws = f.thaws.Load()
	cs.BudgetReclaimed = f.Reclaimed()
	return cs
}
