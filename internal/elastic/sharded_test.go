package elastic

import (
	"sync"
	"testing"

	"vqf/internal/workload"
)

func TestShardedGrowthCorrectness(t *testing.T) {
	f, err := NewSharded(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumShards() != 4 {
		t.Fatalf("got %d shards, want 4", f.NumShards())
	}
	keys := workload.NewStream(301).Keys(20000)
	for _, h := range keys {
		if !f.Insert(h) {
			t.Fatal("insert failed")
		}
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative after sharded growth")
		}
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("count %d != %d", f.Count(), len(keys))
	}
	if f.NumLevels() < 2 {
		t.Fatalf("expected growth, got %d levels", f.NumLevels())
	}
	for _, h := range keys[:500] {
		if !f.Remove(h) {
			t.Fatal("remove failed")
		}
	}
	if f.Count() != uint64(len(keys)-500) {
		t.Fatalf("count after removes %d", f.Count())
	}
}

func TestShardedConcurrentInsert(t *testing.T) {
	f, err := NewSharded(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	const writers, keysPerWriter = 4, 6000
	var wg sync.WaitGroup
	keys := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		keys[w] = workload.NewStream(uint64(400 + w)).Keys(keysPerWriter)
		wg.Add(1)
		go func(ks []uint64) {
			defer wg.Done()
			for _, k := range ks {
				if !f.Insert(k) {
					t.Error("concurrent sharded insert failed")
					return
				}
			}
		}(keys[w])
	}
	wg.Wait()
	if f.Count() != writers*keysPerWriter {
		t.Fatalf("count %d != %d", f.Count(), writers*keysPerWriter)
	}
	for _, ks := range keys {
		for _, k := range ks {
			if !f.Contains(k) {
				t.Fatal("false negative after concurrent sharded growth")
			}
		}
	}
}

// TestShardedSnapshot checks the level-merged snapshot: per-level gauges sum
// across shards, the aggregate count matches, and the FPR estimate stays
// within the configured budget.
func TestShardedSnapshot(t *testing.T) {
	cfg := testConfig()
	f, err := NewSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(500).Keys(15000)
	for _, h := range keys {
		f.Insert(h)
	}
	cs := f.Snapshot()
	if len(cs.Levels) != f.NumLevels() {
		t.Fatalf("snapshot has %d levels, filter reports %d", len(cs.Levels), f.NumLevels())
	}
	var levelCount, levelCap uint64
	for _, ls := range cs.Levels {
		levelCount += ls.Count
		levelCap += ls.Capacity
	}
	if levelCount != f.Count() {
		t.Fatalf("level counts sum to %d, filter holds %d", levelCount, f.Count())
	}
	if levelCap != f.Capacity() {
		t.Fatalf("level capacities sum to %d, filter has %d", levelCap, f.Capacity())
	}
	if cs.Aggregate.Count != f.Count() {
		t.Fatalf("aggregate count %d != %d", cs.Aggregate.Count, f.Count())
	}
	if cs.Aggregate.FPRFullLoad != cfg.TargetFPR {
		t.Fatalf("aggregate budget %g != configured %g", cs.Aggregate.FPRFullLoad, cfg.TargetFPR)
	}
	if cs.Aggregate.FPREstimate > cfg.TargetFPR {
		t.Fatalf("FPR estimate %g exceeds budget %g", cs.Aggregate.FPREstimate, cfg.TargetFPR)
	}
	if st := f.Stats(); st.Inserts != uint64(len(keys)) {
		t.Fatalf("Stats.Inserts = %d, want %d", st.Inserts, len(keys))
	}
}
