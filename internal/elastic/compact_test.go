package elastic

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"vqf/internal/workload"
)

// churn grows f to at least minLevels levels by inserting keys, then
// removes the given fraction of them (oldest-inserted first, which
// concentrates the holes in the old levels). Returns the still-live keys.
func churn(t *testing.T, f interface {
	Insert(uint64) bool
	Remove(uint64) bool
	NumLevels() int
}, seed uint64, total int, minLevels int, removeFrac float64) []uint64 {
	t.Helper()
	keys := workload.NewStream(seed).Keys(total)
	for _, k := range keys {
		if !f.Insert(k) {
			t.Fatal("insert failed")
		}
	}
	if f.NumLevels() < minLevels {
		t.Fatalf("churn produced %d levels, want ≥%d (raise total)", f.NumLevels(), minLevels)
	}
	cut := int(float64(len(keys)) * removeFrac)
	for _, k := range keys[:cut] {
		if !f.Remove(k) {
			t.Fatal("remove of inserted key failed")
		}
	}
	return keys[cut:]
}

// budgetSum returns the cascade's total live FPR budget.
func budgetSum(ls []*level) float64 {
	var s float64
	for _, l := range ls {
		s += l.budget
	}
	return s
}

// futureBudget sums the schedule terms a cascade with next index sched has
// not yet spent.
func futureBudget(cfg Config, sched, horizon int) float64 {
	var s float64
	for i := sched; i < horizon; i++ {
		s += levelBudget(cfg, i)
	}
	return s
}

// checkBudgetInvariant asserts live budgets plus the reclaimed pool plus
// the unspent schedule tail stay within ε (live + reclaimed must equal
// Σ_{i<sched} εᵢ exactly up to float error: merges and freezes preserve
// sums, and dropping an emptied level moves its budget to reclaimed).
func checkBudgetInvariant(t *testing.T, cfg Config, ls []*level, sched int, reclaimed float64) {
	t.Helper()
	live := budgetSum(ls) + reclaimed
	var spent float64
	for i := 0; i < sched; i++ {
		spent += levelBudget(cfg, i)
	}
	if math.Abs(live-spent) > 1e-12 {
		t.Fatalf("live+reclaimed budgets %g != schedule prefix %g (sched=%d)", live, spent, sched)
	}
	if total := live + futureBudget(cfg, sched, sched+200); total > cfg.TargetFPR*(1+1e-9) {
		t.Fatalf("total budget %g exceeds ε=%g", total, cfg.TargetFPR)
	}
}

func TestCompactMergesChurnedCascade(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := churn(t, f, 11, 30000, 6, 0.75)
	before := f.NumLevels()
	countBefore := f.Count()

	res := f.CompactNow()
	if res.LevelsMerged == 0 || res.LevelsAfter >= before {
		t.Fatalf("compaction did not shrink the cascade: %+v", res)
	}
	if f.NumLevels() != res.LevelsAfter {
		t.Fatalf("NumLevels %d != result %d", f.NumLevels(), res.LevelsAfter)
	}
	if f.Count() != countBefore {
		t.Fatalf("count changed %d -> %d", countBefore, f.Count())
	}
	for _, k := range live {
		if !f.Contains(k) {
			t.Fatalf("compaction lost key %#x", k)
		}
	}
	checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)

	// Realized FPR over fresh never-inserted keys stays within the budget.
	probes := workload.NewStream(999).Keys(300000)
	fp := 0
	for _, k := range probes {
		if f.Contains(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(probes)); rate > cfg.TargetFPR {
		t.Fatalf("post-compaction FPR %g exceeds ε %g", rate, cfg.TargetFPR)
	}

	snap := f.Snapshot()
	if snap.Compactions != 1 || snap.CompactionLevelsMerged != uint64(res.LevelsMerged) {
		t.Fatalf("snapshot counters %d/%d, want 1/%d",
			snap.Compactions, snap.CompactionLevelsMerged, res.LevelsMerged)
	}
}

func TestCompactNoOpOnDenseCascade(t *testing.T) {
	// Without removes every frozen level sits at its trigger load; the
	// merged level cannot be smaller than its sources, so nothing merges.
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	for _, k := range workload.NewStream(12).Keys(20000) {
		f.Insert(k)
	}
	before := f.NumLevels()
	res := f.CompactNow()
	if res.LevelsMerged != 0 || f.NumLevels() != before {
		t.Fatalf("dense cascade compacted: %+v", res)
	}
}

func TestCompactThenGrow(t *testing.T) {
	// After a compaction, further growth must keep drawing fresh schedule
	// indices: re-spending a merged index would double-count its εᵢ.
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	live := churn(t, f, 13, 20000, 5, 0.8)
	schedBefore := f.sched
	if res := f.CompactNow(); res.LevelsMerged == 0 {
		t.Fatal("expected a merge")
	}
	if f.sched != schedBefore {
		t.Fatalf("compaction moved the schedule index %d -> %d", schedBefore, f.sched)
	}
	extra := workload.NewStream(14).Keys(30000)
	for _, k := range extra {
		if !f.Insert(k) {
			t.Fatal("post-compaction insert failed")
		}
	}
	if f.sched <= schedBefore {
		t.Fatal("growth after compaction did not advance the schedule")
	}
	checkBudgetInvariant(t, f.cfg, f.levels, f.sched, f.reclaimed)
	for _, k := range live {
		if !f.Contains(k) {
			t.Fatal("lost pre-compaction key after regrowth")
		}
	}
	for _, k := range extra {
		if !f.Contains(k) {
			t.Fatal("lost post-compaction key")
		}
	}
}

func TestCompactAutoTrigger(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9,
		CompactMinLevels: 4, CompactMaxLoad: 0.5}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(15).Keys(20000)
	for _, k := range keys {
		f.Insert(k)
	}
	levels := f.NumLevels()
	if levels < cfg.CompactMinLevels {
		t.Fatalf("setup produced only %d levels", levels)
	}
	// Drain old keys; once the frozen load crosses below 0.5 a Remove must
	// trigger the compaction inline.
	for _, k := range keys[:len(keys)*3/4] {
		f.Remove(k)
	}
	if f.compactions == 0 {
		t.Fatal("auto-compaction never fired")
	}
	if f.NumLevels() >= levels {
		t.Fatalf("levels did not shrink: %d -> %d", levels, f.NumLevels())
	}
	for _, k := range keys[len(keys)*3/4:] {
		if !f.Contains(k) {
			t.Fatal("auto-compaction lost a live key")
		}
	}
}

func TestCompactValidationRejectsBadPolicy(t *testing.T) {
	for _, cfg := range []Config{
		{TargetFPR: 1.0 / 256, CompactMinLevels: 2},
		{TargetFPR: 1.0 / 256, CompactMinLevels: MaxLevels + 1},
		{TargetFPR: 1.0 / 256, CompactMaxLoad: 1.5},
		{TargetFPR: 1.0 / 256, CompactMaxLoad: -0.1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestCompactSerializeRoundTrip(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	live := churn(t, f, 16, 20000, 5, 0.7)
	if res := f.CompactNow(); res.LevelsMerged == 0 {
		t.Fatal("expected a merge")
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.sched != f.sched || g.NumLevels() != f.NumLevels() || g.Count() != f.Count() {
		t.Fatalf("reload mismatch: sched %d/%d levels %d/%d count %d/%d",
			g.sched, f.sched, g.NumLevels(), f.NumLevels(), g.Count(), f.Count())
	}
	for i := range f.levels {
		if g.levels[i].budget != f.levels[i].budget ||
			g.levels[i].trigger != f.levels[i].trigger ||
			g.levels[i].kind != f.levels[i].kind {
			t.Fatalf("level %d parameters did not survive the round trip", i)
		}
	}
	for _, k := range live {
		if !g.Contains(k) {
			t.Fatal("reloaded cascade lost a key")
		}
	}
	// The reloaded cascade keeps growing on the same schedule.
	for _, k := range workload.NewStream(17).Keys(30000) {
		if !g.Insert(k) {
			t.Fatal("post-reload insert failed")
		}
	}
	checkBudgetInvariant(t, g.cfg, g.levels, g.sched, g.reclaimed)
}

// TestReadV1Stream hand-crafts a version-1 cascade stream (no per-level
// records, zeroed schedule field) for a pure growth product and checks the
// reader reconstructs the same cascade the v1 code would have.
func TestReadV1Stream(t *testing.T) {
	cfg := testConfig()
	f, _ := New(cfg)
	keys := workload.NewStream(18).Keys(20000)
	for _, k := range keys {
		f.Insert(k)
	}

	var buf bytes.Buffer
	var hdr [elasticHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicElastic)
	binary.LittleEndian.PutUint16(hdr[4:], 1)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(f.levels)))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(cfg.TargetFPR))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(f.cfg.GrowthFactor))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(f.cfg.TightenRatio))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(f.cfg.FillThreshold))
	binary.LittleEndian.PutUint64(hdr[48:], f.cfg.InitialSlots)
	buf.Write(hdr[:])
	for _, lvl := range f.levels {
		if _, err := lvl.filter.(io.WriterTo).WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}

	g, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if g.sched != len(f.levels) {
		t.Fatalf("v1 reload sched %d, want level count %d", g.sched, len(f.levels))
	}
	if g.Count() != f.Count() {
		t.Fatalf("v1 reload count %d != %d", g.Count(), f.Count())
	}
	for i := range f.levels {
		if g.levels[i].budget != f.levels[i].budget || g.levels[i].kind != f.levels[i].kind {
			t.Fatalf("v1 reload level %d parameters differ", i)
		}
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatal("v1 reload lost a key")
		}
	}
}

// TestReadRejectsBadLevelRecords audits the v2 per-level record validation.
func TestReadRejectsBadLevelRecords(t *testing.T) {
	cfg := Config{TargetFPR: 1.0 / 256, InitialSlots: 1 << 9}
	f, _ := New(cfg)
	churn(t, f, 19, 20000, 5, 0.7)
	f.CompactNow()
	var buf bytes.Buffer
	f.WriteTo(&buf)
	orig := buf.Bytes()

	patch := func(mutate func(data []byte)) []byte {
		data := append([]byte(nil), orig...)
		mutate(data)
		return data
	}
	rec := elasticHeaderV3Bytes // first level record offset
	for name, data := range map[string][]byte{
		"bad kind":       patch(func(d []byte) { d[rec] = 12 }),
		"huge blocks":    patch(func(d []byte) { d[rec+1] = 60 }),
		"zero budget":    patch(func(d []byte) { binary.LittleEndian.PutUint64(d[rec+8:], 0) }),
		"budget overrun": patch(func(d []byte) { binary.LittleEndian.PutUint64(d[rec+8:], math.Float64bits(0.5)) }),
		"zero trigger":   patch(func(d []byte) { binary.LittleEndian.PutUint64(d[rec+16:], 0) }),
		"sched too low":  patch(func(d []byte) { binary.LittleEndian.PutUint16(d[10:], 0) }),
		"sched too high": patch(func(d []byte) { binary.LittleEndian.PutUint16(d[10:], uint16(schedCap)+1) }),
	} {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
