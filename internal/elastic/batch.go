package elastic

// Batched lookups over the cascade. A naive batched Contains would probe
// every level for every key; instead the working set shrinks as it descends:
// keys found at a level drop out, so older (smaller, colder) levels only see
// the residue. For workloads where most hits land in the newest level this
// probes each key about once, and each level's probes go through the core
// filters' block-address-ordered batch sweep.

// batchProber is implemented by the core filters that provide a batched
// lookup (sequential pipeline for Filter8/16, parallel shards for
// CFilter8/16).
type batchProber interface {
	ContainsBatch(hs []uint64, dst []bool) []bool
}

// cascadeScratch holds the reusable working-set buffers of a batched cascade
// lookup.
type cascadeScratch struct {
	keys []uint64
	pos  []int32
	hits []bool
}

func (s *cascadeScratch) grow(n int) {
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
		s.pos = make([]int32, n)
	}
}

// containsBatchLevels resolves membership for every key of hs across ls,
// newest level first, writing results in input order (out[i] answers hs[i]).
// Every position of out is written exactly once: true when some level hits,
// false for the residue that survives all levels.
func containsBatchLevels(ls []*level, hs []uint64, dst []bool, s *cascadeScratch) []bool {
	if cap(dst) < len(hs) {
		dst = make([]bool, len(hs))
	}
	out := dst[:len(hs)]
	s.grow(len(hs))
	keys, pos := s.keys[:len(hs)], s.pos[:len(hs)]
	copy(keys, hs)
	for i := range pos {
		pos[i] = int32(i)
	}
	n := len(keys)
	for li := len(ls) - 1; li >= 0 && n > 0; li-- {
		lf := ls[li].filter
		m := 0
		if bp, ok := lf.(batchProber); ok {
			s.hits = bp.ContainsBatch(keys[:n], s.hits)
			for i := 0; i < n; i++ {
				if s.hits[i] {
					out[pos[i]] = true
				} else {
					keys[m], pos[m] = keys[i], pos[i]
					m++
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if lf.Contains(keys[i]) {
					out[pos[i]] = true
				} else {
					keys[m], pos[m] = keys[i], pos[i]
					m++
				}
			}
		}
		n = m
	}
	for i := 0; i < n; i++ {
		out[pos[i]] = false
	}
	return out
}

// ContainsBatch reports membership for every key of hs in input order:
// out[i] answers hs[i]. The result reuses dst when it has sufficient
// capacity (dst may be nil). Like every Filter method it is
// single-goroutine; the working-set buffers live on the filter so
// steady-state calls allocate nothing.
func (f *Filter) ContainsBatch(hs []uint64, dst []bool) []bool {
	return containsBatchLevels(f.levels, hs, dst, &f.scratch)
}

// ContainsBatch reports membership for every key of hs in input order; see
// Filter.ContainsBatch. Safe for concurrent use: it works on one atomic
// snapshot of the level list and keeps its working set on the stack.
func (f *CFilter) ContainsBatch(hs []uint64, dst []bool) []bool {
	var s cascadeScratch
	return containsBatchLevels(*f.levels.Load(), hs, dst, &s)
}
