package morton

import (
	"math/rand"
	"testing"
	"unsafe"
)

func TestBlockIsOneCacheLine(t *testing.T) {
	if sz := unsafe.Sizeof(block8{}); sz != 64 {
		t.Fatalf("block8 is %d bytes, want 64", sz)
	}
	if sz := unsafe.Sizeof(block16{}); sz != 64 {
		t.Fatalf("block16 is %d bytes, want 64", sz)
	}
}

func TestFCAOps(t *testing.T) {
	var p0, p1 uint64
	counts := map[uint]uint{}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 5000; step++ {
		bucket := uint(rng.Intn(64))
		c := uint(rng.Intn(4))
		p0, p1 = fcaSet(p0, p1, bucket, c)
		counts[bucket] = c
		if got := fcaCount(p0, p1, bucket); got != c {
			t.Fatalf("fcaCount(%d) = %d, want %d", bucket, got, c)
		}
	}
	// Prefix sums must match a direct sum.
	for bucket := uint(0); bucket <= 64; bucket++ {
		var want uint
		for b := uint(0); b < bucket; b++ {
			want += counts[b]
		}
		if got := fcaPrefix(p0, p1, bucket); got != want {
			t.Fatalf("fcaPrefix(%d) = %d, want %d", bucket, got, want)
		}
	}
	var total uint
	for _, c := range counts {
		total += c
	}
	if got := fcaTotal(p0, p1); got != total {
		t.Fatalf("fcaTotal = %d, want %d", got, total)
	}
}

func TestBlock8InsertContainsRemove(t *testing.T) {
	var b block8
	type entry struct {
		bucket uint
		fp     uint8
	}
	var entries []entry
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < Slots8; i++ {
		e := entry{uint(rng.Intn(64)), uint8(rng.Intn(256))}
		if b.count(e.bucket) >= BucketCap {
			continue // bucket-level rejection is expected behaviour
		}
		if !b.insert(e.bucket, e.fp) {
			t.Fatalf("insert %d failed with total %d", i, b.total())
		}
		entries = append(entries, e)
	}
	for _, e := range entries {
		if !b.contains(e.bucket, e.fp) {
			t.Fatalf("entry (%d,%d) missing", e.bucket, e.fp)
		}
	}
	// slotBucket must agree with the layout.
	for i := uint(0); i < b.total(); i++ {
		bucket := b.slotBucket(i)
		start := fcaPrefix(b.p0, b.p1, bucket)
		if i < start || i >= start+b.count(bucket) {
			t.Fatalf("slotBucket(%d) = %d inconsistent with prefix sums", i, bucket)
		}
	}
	for _, e := range entries {
		if !b.remove(e.bucket, e.fp) {
			t.Fatalf("remove (%d,%d) failed", e.bucket, e.fp)
		}
	}
	if b.total() != 0 {
		t.Fatalf("total = %d after removing all", b.total())
	}
}

func TestBlock8BucketCapEnforced(t *testing.T) {
	var b block8
	for i := 0; i < BucketCap; i++ {
		if !b.insert(7, uint8(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if b.insert(7, 99) {
		t.Fatal("insert into full bucket succeeded")
	}
	if !b.insert(8, 99) {
		t.Fatal("insert into sibling bucket failed")
	}
}

func TestFilter8NoFalseNegatives(t *testing.T) {
	f := New8(1 << 14)
	rng := rand.New(rand.NewSource(3))
	n := f.Capacity() * 90 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at LF %.3f", f.LoadFactor())
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestFilter8FalsePositiveRate(t *testing.T) {
	f := New8(1 << 14)
	rng := rand.New(rand.NewSource(4))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// ≈ 2·(avg bucket load)·2⁻⁸ ≈ 0.005 worst case; allow slack.
	if rate > 0.01 {
		t.Errorf("FPR = %.5f too high", rate)
	}
	if rate == 0 {
		t.Error("FPR of exactly 0 implausible")
	}
}

func TestFilter8ReachesHighLoadFactor(t *testing.T) {
	f := New8(1 << 14)
	rng := rand.New(rand.NewSource(5))
	for f.Insert(rng.Uint64()) {
	}
	if lf := f.LoadFactor(); lf < 0.88 {
		t.Errorf("max load factor %.4f below 0.88", lf)
	}
}

func TestFilter8Remove(t *testing.T) {
	f := New8(1 << 12)
	rng := rand.New(rand.NewSource(6))
	n := f.Capacity() * 80 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatal("insert failed")
		}
		keys = append(keys, h)
	}
	for _, h := range keys[:len(keys)/2] {
		if !f.Remove(h) {
			t.Fatal("remove of inserted key failed")
		}
	}
	for _, h := range keys[len(keys)/2:] {
		if !f.Contains(h) {
			t.Fatal("false negative after removes")
		}
	}
}

func TestFilter8OTAFastNegative(t *testing.T) {
	// At low occupancy nothing has overflowed, so negative lookups must not
	// touch the secondary block; verify via the OTA being clear.
	f := New8(1 << 12)
	rng := rand.New(rand.NewSource(7))
	for f.LoadFactor() < 0.20 {
		f.Insert(rng.Uint64())
	}
	otaSet := 0
	for i := range f.blocks {
		if f.blocks[i].ota != 0 {
			otaSet++
		}
	}
	if frac := float64(otaSet) / float64(len(f.blocks)); frac > 0.20 {
		t.Errorf("%.3f of blocks have overflow bits at 20%% load", frac)
	}
}

func TestFilter8DuplicatesWithinBucketCap(t *testing.T) {
	f := New8(1 << 10)
	const h = 0xabcdef0123456789
	// One bucket holds 3; the pair of candidate buckets holds 6.
	inserted := 0
	for i := 0; i < 6; i++ {
		if f.Insert(h) {
			inserted++
		}
	}
	if inserted < 6 {
		t.Fatalf("only %d/6 duplicate inserts succeeded", inserted)
	}
	for i := 0; i < inserted; i++ {
		if !f.Remove(h) {
			t.Fatalf("duplicate remove %d failed", i)
		}
	}
	if f.Contains(h) {
		t.Error("key present after removing all copies")
	}
}

func TestFilter16Basics(t *testing.T) {
	f := New16(1 << 13)
	rng := rand.New(rand.NewSource(8))
	n := f.Capacity() * 85 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at LF %.3f", f.LoadFactor())
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative (16-bit)")
		}
	}
	fp := 0
	for i := 0; i < 500000; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	if fp > 100 { // ≈ 2·2.2·2⁻¹⁶·500000 ≈ 34 expected
		t.Errorf("%d false positives in 500k probes (16-bit)", fp)
	}
	for _, h := range keys[:100] {
		if !f.Remove(h) {
			t.Fatal("remove failed (16-bit)")
		}
	}
}

func BenchmarkMortonInsertTo90(b *testing.B) {
	f := New8(1 << 18)
	rng := rand.New(rand.NewSource(9))
	target := f.Capacity() * 90 / 100
	for f.Count() < target {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Insert(rng.Uint64()) {
			b.StopTimer()
			f = New8(1 << 18)
			for f.Count() < target {
				f.Insert(rng.Uint64())
			}
			b.StartTimer()
		}
	}
}

func BenchmarkMortonLookup(b *testing.B) {
	f := New8(1 << 18)
	rng := rand.New(rand.NewSource(10))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Contains(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}
