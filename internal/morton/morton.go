package morton

import (
	"math/bits"

	"vqf/internal/hashing"
	"vqf/internal/telemetry"
)

// MaxKicks bounds the cuckoo-eviction walk used when both candidate buckets
// overflow.
const MaxKicks = 500

// EvictionAttempts bounds how many independent eviction walks an insert may
// try; each failed walk is rolled back, so a retry explores a different
// random displacement chain instead of dead-ending on one unlucky victim.
const EvictionAttempts = 8

// Filter8 is a Morton filter with 8-bit fingerprints (target ε ≈ 2⁻⁸ with
// 3-slot logical buckets).
type Filter8 struct {
	blocks   []block8
	mask     uint64
	count    uint64
	kicks    uint64
	rngState uint64
}

// New8 creates a Morton filter with at least nslots fingerprint slots (block
// count rounds up to a power of two; each block stores 46 fingerprints).
func New8(nslots uint64) *Filter8 {
	nblocks := nextPow2((nslots + Slots8 - 1) / Slots8)
	return &Filter8{
		blocks:   make([]block8, nblocks),
		mask:     nblocks - 1,
		rngState: 0x2545f4914f6cdd1d,
	}
}

func nextPow2(x uint64) uint64 {
	if x < 2 {
		return 2
	}
	return 1 << bits.Len64(x-1)
}

func (f *Filter8) rand32() uint32 {
	x := f.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rngState = x
	return uint32(x)
}

// split derives the primary block, logical bucket, fingerprint, and the tag
// feeding the block-pairing xor trick.
func (f *Filter8) split(h uint64) (blk uint64, bucket uint, fp uint8, tag uint64) {
	fp = uint8(h)
	bucket = uint(h>>8) & (BucketsPerBlock - 1)
	blk = (h >> 14) & f.mask
	tag = uint64(bucket)<<8 | uint64(fp)
	return
}

func (f *Filter8) altBlock(blk, tag uint64) uint64 {
	return hashing.AltIndex(blk, tag, f.mask)
}

// Insert adds the pre-hashed key h, biased toward the primary bucket. It
// either succeeds or returns false with the filter unchanged: a failed
// eviction walk is rolled back rather than parking a homeless victim, since
// a parked victim blocks every subsequent insert and a walk can fail far
// below capacity when one bucket pair is saturated by duplicates (see
// testdata/repros/morton*-differential-*). Sustained failure signals a full
// filter (typically ≈95% load) or a saturated pair.
func (f *Filter8) Insert(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	if f.blocks[b1].insert(bucket, fp) {
		f.count++
		return true
	}
	// Overflow from the primary: record it so negative lookups know to probe
	// the secondary bucket.
	f.blocks[b1].otaSet(bucket)
	b2 := f.altBlock(b1, tag)
	if f.blocks[b2].insert(bucket, fp) {
		f.count++
		return true
	}
	// Both candidate buckets overflow: bounded cuckoo eviction out of the
	// secondary block. A greedy walk commits to one displacement chain and
	// can dead-end on one unlucky victim, so failed walks are rolled back
	// and retried with fresh random choices before the insert is rejected.
	for attempt := 0; attempt < EvictionAttempts; attempt++ {
		if f.evictInsert(b2, bucket, fp) {
			f.count++
			return true
		}
	}
	return false
}

// evictInsert runs one bounded eviction walk trying to place fp (whose
// candidate buckets are both full) starting from block b2. pickVictim only
// offers victims whose displacement can make room and whose alternate block
// differs from the current one, so every kick moves the in-flight item to a
// new block. If a block offers no eligible victim, or the walk exhausts
// MaxKicks, the displacement chain is rolled back (reverse order, so
// revisited blocks restore correctly) and the walk reports failure with the
// fingerprint store unchanged.
func (f *Filter8) evictInsert(b2 uint64, bucket uint, fp uint8) bool {
	type move struct {
		blk              uint64
		vBucket, iBucket uint
		vFp, iFp         uint8
	}
	var chain []move
	cur, curBucket, curFp := b2, bucket, fp
	for kick := 0; kick < MaxKicks; kick++ {
		blk := &f.blocks[cur]
		src := cur
		vBucket, vFp, ok := blk.pickVictim(curBucket, curFp, f.rand32(), func(vb uint, vf uint8) bool {
			return f.altBlock(src, uint64(vb)<<8|uint64(vf)) != src
		})
		if !ok {
			break
		}
		// Replace the victim in place: remove it, then insert ours (which
		// pickVictim's constraints guarantee now fits).
		if !blk.remove(vBucket, vFp) || !blk.insert(curBucket, curFp) {
			return false // unreachable
		}
		chain = append(chain, move{cur, vBucket, curBucket, vFp, curFp})
		f.kicks++
		// The victim overflows from this block; track and re-home it.
		blk.otaSet(vBucket)
		cur = f.altBlock(cur, uint64(vBucket)<<8|uint64(vFp))
		curBucket, curFp = vBucket, vFp
		if f.blocks[cur].insert(curBucket, curFp) {
			return true
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		mv := chain[i]
		f.blocks[mv.blk].remove(mv.iBucket, mv.iFp)
		f.blocks[mv.blk].insert(mv.vBucket, mv.vFp)
	}
	telemetry.Global().Record(telemetry.EvEvictionRollback, uint64(len(chain)), b2, 0)
	return false
}

// Contains reports whether the pre-hashed key h may be in the filter. When
// the primary bucket misses and its overflow bit is clear, the secondary
// probe is skipped — the Morton filter's fast negative-lookup path.
func (f *Filter8) Contains(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	blk := &f.blocks[b1]
	if blk.contains(bucket, fp) {
		return true
	}
	if !blk.otaTest(bucket) {
		return false
	}
	return f.blocks[f.altBlock(b1, tag)].contains(bucket, fp)
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
func (f *Filter8) Remove(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	if f.blocks[b1].remove(bucket, fp) {
		f.count--
		return true
	}
	if f.blocks[b1].otaTest(bucket) && f.blocks[f.altBlock(b1, tag)].remove(bucket, fp) {
		f.count--
		return true
	}
	return false
}

// Count returns the number of fingerprints currently stored.
func (f *Filter8) Count() uint64 { return f.count }

// Capacity returns the total number of FSA slots.
func (f *Filter8) Capacity() uint64 { return uint64(len(f.blocks)) * Slots8 }

// LoadFactor returns Count divided by Capacity.
func (f *Filter8) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array.
func (f *Filter8) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Kicks returns the cumulative eviction count (diagnostic).
func (f *Filter8) Kicks() uint64 { return f.kicks }

// Filter16 is a Morton filter with 16-bit fingerprints (target ε ≈ 2⁻¹⁶).
type Filter16 struct {
	blocks   []block16
	mask     uint64
	count    uint64
	kicks    uint64
	rngState uint64
}

// New16 creates a 16-bit-fingerprint Morton filter with at least nslots
// slots (23 per block).
func New16(nslots uint64) *Filter16 {
	nblocks := nextPow2((nslots + Slots16 - 1) / Slots16)
	return &Filter16{
		blocks:   make([]block16, nblocks),
		mask:     nblocks - 1,
		rngState: 0x2545f4914f6cdd1d,
	}
}

func (f *Filter16) rand32() uint32 {
	x := f.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rngState = x
	return uint32(x)
}

func (f *Filter16) split(h uint64) (blk uint64, bucket uint, fp uint16, tag uint64) {
	fp = uint16(h)
	bucket = uint(h>>16) & (BucketsPerBlock - 1)
	blk = (h >> 22) & f.mask
	tag = uint64(bucket)<<16 | uint64(fp)
	return
}

func (f *Filter16) altBlock(blk, tag uint64) uint64 {
	return hashing.AltIndex(blk, tag, f.mask)
}

// Insert adds the pre-hashed key h; see Filter8.Insert. It either succeeds
// or returns false with the filter unchanged.
func (f *Filter16) Insert(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	if f.blocks[b1].insert(bucket, fp) {
		f.count++
		return true
	}
	f.blocks[b1].otaSet(bucket)
	b2 := f.altBlock(b1, tag)
	if f.blocks[b2].insert(bucket, fp) {
		f.count++
		return true
	}
	// See Filter8.Insert: failed walks roll back and retry with fresh
	// random choices before the insert is rejected.
	for attempt := 0; attempt < EvictionAttempts; attempt++ {
		if f.evictInsert(b2, bucket, fp) {
			f.count++
			return true
		}
	}
	return false
}

// evictInsert mirrors Filter8.evictInsert for 16-bit fingerprints.
func (f *Filter16) evictInsert(b2 uint64, bucket uint, fp uint16) bool {
	type move struct {
		blk              uint64
		vBucket, iBucket uint
		vFp, iFp         uint16
	}
	var chain []move
	cur, curBucket, curFp := b2, bucket, fp
	for kick := 0; kick < MaxKicks; kick++ {
		blk := &f.blocks[cur]
		src := cur
		vBucket, vFp, ok := blk.pickVictim(curBucket, curFp, f.rand32(), func(vb uint, vf uint16) bool {
			return f.altBlock(src, uint64(vb)<<16|uint64(vf)) != src
		})
		if !ok {
			break
		}
		if !blk.remove(vBucket, vFp) || !blk.insert(curBucket, curFp) {
			return false // unreachable
		}
		chain = append(chain, move{cur, vBucket, curBucket, vFp, curFp})
		f.kicks++
		blk.otaSet(vBucket)
		cur = f.altBlock(cur, uint64(vBucket)<<16|uint64(vFp))
		curBucket, curFp = vBucket, vFp
		if f.blocks[cur].insert(curBucket, curFp) {
			return true
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		mv := chain[i]
		f.blocks[mv.blk].remove(mv.iBucket, mv.iFp)
		f.blocks[mv.blk].insert(mv.vBucket, mv.vFp)
	}
	telemetry.Global().Record(telemetry.EvEvictionRollback, uint64(len(chain)), b2, 0)
	return false
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter16) Contains(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	blk := &f.blocks[b1]
	if blk.contains(bucket, fp) {
		return true
	}
	if !blk.otaTest(bucket) {
		return false
	}
	return f.blocks[f.altBlock(b1, tag)].contains(bucket, fp)
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
func (f *Filter16) Remove(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	if f.blocks[b1].remove(bucket, fp) {
		f.count--
		return true
	}
	if f.blocks[b1].otaTest(bucket) && f.blocks[f.altBlock(b1, tag)].remove(bucket, fp) {
		f.count--
		return true
	}
	return false
}

// Count returns the number of fingerprints currently stored.
func (f *Filter16) Count() uint64 { return f.count }

// Capacity returns the total number of FSA slots.
func (f *Filter16) Capacity() uint64 { return uint64(len(f.blocks)) * Slots16 }

// LoadFactor returns Count divided by Capacity.
func (f *Filter16) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array.
func (f *Filter16) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Kicks returns the cumulative eviction count (diagnostic).
func (f *Filter16) Kicks() uint64 { return f.kicks }
