package morton

import (
	"math/bits"

	"vqf/internal/hashing"
)

// MaxKicks bounds the cuckoo-eviction walk used when both candidate buckets
// overflow.
const MaxKicks = 500

// Filter8 is a Morton filter with 8-bit fingerprints (target ε ≈ 2⁻⁸ with
// 3-slot logical buckets).
type Filter8 struct {
	blocks   []block8
	mask     uint64
	count    uint64
	kicks    uint64
	rngState uint64
	// An eviction walk that exhausts MaxKicks has already displaced its last
	// victim; parking it here (rather than dropping it) preserves the
	// no-false-negative guarantee. The filter is full while a victim is
	// parked, exactly as in the reference cuckoo filter.
	victimBlock  uint64
	victimBucket uint
	victimFp     uint8
	hasVictim    bool
}

// New8 creates a Morton filter with at least nslots fingerprint slots (block
// count rounds up to a power of two; each block stores 46 fingerprints).
func New8(nslots uint64) *Filter8 {
	nblocks := nextPow2((nslots + Slots8 - 1) / Slots8)
	return &Filter8{
		blocks:   make([]block8, nblocks),
		mask:     nblocks - 1,
		rngState: 0x2545f4914f6cdd1d,
	}
}

func nextPow2(x uint64) uint64 {
	if x < 2 {
		return 2
	}
	return 1 << bits.Len64(x-1)
}

func (f *Filter8) rand32() uint32 {
	x := f.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rngState = x
	return uint32(x)
}

// split derives the primary block, logical bucket, fingerprint, and the tag
// feeding the block-pairing xor trick.
func (f *Filter8) split(h uint64) (blk uint64, bucket uint, fp uint8, tag uint64) {
	fp = uint8(h)
	bucket = uint(h>>8) & (BucketsPerBlock - 1)
	blk = (h >> 14) & f.mask
	tag = uint64(bucket)<<8 | uint64(fp)
	return
}

func (f *Filter8) altBlock(blk, tag uint64) uint64 {
	return hashing.AltIndex(blk, tag, f.mask)
}

// Insert adds the pre-hashed key h, biased toward the primary bucket; it
// returns false when an eviction walk exceeds MaxKicks (the filter is
// effectively full, typically ≈95% load).
func (f *Filter8) Insert(h uint64) bool {
	if f.hasVictim {
		return false
	}
	b1, bucket, fp, tag := f.split(h)
	if f.blocks[b1].insert(bucket, fp) {
		f.count++
		return true
	}
	// Overflow from the primary: record it so negative lookups know to probe
	// the secondary bucket.
	f.blocks[b1].otaSet(bucket)
	b2 := f.altBlock(b1, tag)
	if f.blocks[b2].insert(bucket, fp) {
		f.count++
		return true
	}
	// Both candidate buckets overflow: bounded cuckoo eviction out of the
	// secondary block.
	cur, curBucket, curFp := b2, bucket, fp
	for kick := 0; kick < MaxKicks; kick++ {
		blk := &f.blocks[cur]
		total := blk.total()
		if total == 0 {
			return false // degenerate (block has capacity 0 items yet insert failed)
		}
		victim := uint(f.rand32()) % total
		vBucket := blk.slotBucket(victim)
		vFp := blk.fsa[victim]
		// Replace the victim in place: remove it, then retry our insert.
		if !blk.remove(vBucket, vFp) {
			return false
		}
		if !blk.insert(curBucket, curFp) {
			// Restore and give up: the displaced slot did not free the right
			// bucket (our bucket is at BucketCap even with a slot free).
			blk.insert(vBucket, vFp)
			// Try evicting again from a different victim.
			f.kicks++
			continue
		}
		f.kicks++
		// The victim overflows from this block; track and re-home it.
		blk.otaSet(vBucket)
		cur = f.altBlock(cur, uint64(vBucket)<<8|uint64(vFp))
		curBucket, curFp = vBucket, vFp
		if f.blocks[cur].insert(curBucket, curFp) {
			f.count++
			return true
		}
	}
	// The walk displaced the original item into storage but left the last
	// victim homeless: park it. This insert succeeded; the next fails.
	f.victimBlock, f.victimBucket, f.victimFp = cur, curBucket, curFp
	f.hasVictim = true
	f.count++
	return true
}

// victimMatches reports whether the parked victim is indistinguishable from
// (bucket, fp) with candidate blocks b1/b2.
func (f *Filter8) victimMatches(b1, b2 uint64, bucket uint, fp uint8) bool {
	return f.hasVictim && f.victimBucket == bucket && f.victimFp == fp &&
		(f.victimBlock == b1 || f.victimBlock == b2)
}

// rehomeVictim tries to place the parked victim after a deletion freed space.
func (f *Filter8) rehomeVictim() {
	if !f.hasVictim {
		return
	}
	f.hasVictim = false
	f.count--
	b, bucket, fp := f.victimBlock, f.victimBucket, f.victimFp
	if f.blocks[b].insert(bucket, fp) {
		f.count++
		return
	}
	alt := f.altBlock(b, uint64(bucket)<<8|uint64(fp))
	if f.blocks[alt].insert(bucket, fp) {
		f.blocks[b].otaSet(bucket) // conservative: b may be its primary
		f.count++
		return
	}
	f.victimBlock, f.victimBucket, f.victimFp = b, bucket, fp
	f.hasVictim = true
	f.count++
}

// Contains reports whether the pre-hashed key h may be in the filter. When
// the primary bucket misses and its overflow bit is clear, the secondary
// probe is skipped — the Morton filter's fast negative-lookup path.
func (f *Filter8) Contains(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	blk := &f.blocks[b1]
	if blk.contains(bucket, fp) {
		return true
	}
	if f.hasVictim && f.victimMatches(b1, f.altBlock(b1, tag), bucket, fp) {
		return true
	}
	if !blk.otaTest(bucket) {
		return false
	}
	return f.blocks[f.altBlock(b1, tag)].contains(bucket, fp)
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
func (f *Filter8) Remove(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	b2 := f.altBlock(b1, tag)
	if f.blocks[b1].remove(bucket, fp) {
		f.count--
		f.rehomeVictim()
		return true
	}
	// The OTA gate applies to stored fingerprints; the parked victim is
	// checked regardless (it may predate the relevant overflow bit).
	if f.blocks[b1].otaTest(bucket) && f.blocks[b2].remove(bucket, fp) {
		f.count--
		f.rehomeVictim()
		return true
	}
	if f.victimMatches(b1, b2, bucket, fp) {
		f.hasVictim = false
		f.count--
		return true
	}
	return false
}

// Count returns the number of fingerprints currently stored.
func (f *Filter8) Count() uint64 { return f.count }

// Capacity returns the total number of FSA slots.
func (f *Filter8) Capacity() uint64 { return uint64(len(f.blocks)) * Slots8 }

// LoadFactor returns Count divided by Capacity.
func (f *Filter8) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array.
func (f *Filter8) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Kicks returns the cumulative eviction count (diagnostic).
func (f *Filter8) Kicks() uint64 { return f.kicks }

// Filter16 is a Morton filter with 16-bit fingerprints (target ε ≈ 2⁻¹⁶).
type Filter16 struct {
	blocks   []block16
	mask     uint64
	count    uint64
	kicks    uint64
	rngState uint64
	// Victim cache; see Filter8.
	victimBlock  uint64
	victimBucket uint
	victimFp     uint16
	hasVictim    bool
}

// New16 creates a 16-bit-fingerprint Morton filter with at least nslots
// slots (23 per block).
func New16(nslots uint64) *Filter16 {
	nblocks := nextPow2((nslots + Slots16 - 1) / Slots16)
	return &Filter16{
		blocks:   make([]block16, nblocks),
		mask:     nblocks - 1,
		rngState: 0x2545f4914f6cdd1d,
	}
}

func (f *Filter16) rand32() uint32 {
	x := f.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rngState = x
	return uint32(x)
}

func (f *Filter16) split(h uint64) (blk uint64, bucket uint, fp uint16, tag uint64) {
	fp = uint16(h)
	bucket = uint(h>>16) & (BucketsPerBlock - 1)
	blk = (h >> 22) & f.mask
	tag = uint64(bucket)<<16 | uint64(fp)
	return
}

func (f *Filter16) altBlock(blk, tag uint64) uint64 {
	return hashing.AltIndex(blk, tag, f.mask)
}

// Insert adds the pre-hashed key h; see Filter8.Insert.
func (f *Filter16) Insert(h uint64) bool {
	if f.hasVictim {
		return false
	}
	b1, bucket, fp, tag := f.split(h)
	if f.blocks[b1].insert(bucket, fp) {
		f.count++
		return true
	}
	f.blocks[b1].otaSet(bucket)
	b2 := f.altBlock(b1, tag)
	if f.blocks[b2].insert(bucket, fp) {
		f.count++
		return true
	}
	cur, curBucket, curFp := b2, bucket, fp
	for kick := 0; kick < MaxKicks; kick++ {
		blk := &f.blocks[cur]
		total := blk.total()
		if total == 0 {
			return false
		}
		victim := uint(f.rand32()) % total
		vBucket := blk.slotBucket(victim)
		vFp := blk.fsa[victim]
		if !blk.remove(vBucket, vFp) {
			return false
		}
		if !blk.insert(curBucket, curFp) {
			blk.insert(vBucket, vFp)
			f.kicks++
			continue
		}
		f.kicks++
		blk.otaSet(vBucket)
		cur = f.altBlock(cur, uint64(vBucket)<<16|uint64(vFp))
		curBucket, curFp = vBucket, vFp
		if f.blocks[cur].insert(curBucket, curFp) {
			f.count++
			return true
		}
	}
	f.victimBlock, f.victimBucket, f.victimFp = cur, curBucket, curFp
	f.hasVictim = true
	f.count++
	return true
}

func (f *Filter16) victimMatches(b1, b2 uint64, bucket uint, fp uint16) bool {
	return f.hasVictim && f.victimBucket == bucket && f.victimFp == fp &&
		(f.victimBlock == b1 || f.victimBlock == b2)
}

func (f *Filter16) rehomeVictim() {
	if !f.hasVictim {
		return
	}
	f.hasVictim = false
	f.count--
	b, bucket, fp := f.victimBlock, f.victimBucket, f.victimFp
	if f.blocks[b].insert(bucket, fp) {
		f.count++
		return
	}
	alt := f.altBlock(b, uint64(bucket)<<16|uint64(fp))
	if f.blocks[alt].insert(bucket, fp) {
		f.blocks[b].otaSet(bucket)
		f.count++
		return
	}
	f.victimBlock, f.victimBucket, f.victimFp = b, bucket, fp
	f.hasVictim = true
	f.count++
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter16) Contains(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	blk := &f.blocks[b1]
	if blk.contains(bucket, fp) {
		return true
	}
	if f.hasVictim && f.victimMatches(b1, f.altBlock(b1, tag), bucket, fp) {
		return true
	}
	if !blk.otaTest(bucket) {
		return false
	}
	return f.blocks[f.altBlock(b1, tag)].contains(bucket, fp)
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
func (f *Filter16) Remove(h uint64) bool {
	b1, bucket, fp, tag := f.split(h)
	b2 := f.altBlock(b1, tag)
	if f.blocks[b1].remove(bucket, fp) {
		f.count--
		f.rehomeVictim()
		return true
	}
	if f.blocks[b1].otaTest(bucket) && f.blocks[b2].remove(bucket, fp) {
		f.count--
		f.rehomeVictim()
		return true
	}
	if f.victimMatches(b1, b2, bucket, fp) {
		f.hasVictim = false
		f.count--
		return true
	}
	return false
}

// Count returns the number of fingerprints currently stored.
func (f *Filter16) Count() uint64 { return f.count }

// Capacity returns the total number of FSA slots.
func (f *Filter16) Capacity() uint64 { return uint64(len(f.blocks)) * Slots16 }

// LoadFactor returns Count divided by Capacity.
func (f *Filter16) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array.
func (f *Filter16) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Kicks returns the cumulative eviction count (diagnostic).
func (f *Filter16) Kicks() uint64 { return f.kicks }
