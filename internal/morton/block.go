// Package morton implements the Morton filter of Breslow and Jayasena (VLDB
// 2018), the cuckoo-filter variant the vector quotient filter paper uses as
// its strongest insertion baseline. Each 64-byte block packs an
// underprovisioned fingerprint storage array (FSA), a fullness counter array
// (FCA) of 2-bit counters for 64 logical buckets, and an overflow tracking
// array (OTA) that lets negative lookups skip the secondary bucket probe.
// Insertions are biased toward the primary bucket; block-store overflows
// fall back to the secondary bucket and, when needed, bounded cuckoo
// eviction.
package morton

import "math/bits"

const (
	// BucketsPerBlock is the number of logical buckets per block.
	BucketsPerBlock = 64
	// BucketCap is the maximum fingerprints per logical bucket (the paper's
	// "blocks of size 3" configuration).
	BucketCap = 3
	// OTABits is the width of the overflow tracking array.
	OTABits = 16

	// Slots8 is the FSA capacity with 8-bit fingerprints: 46 slots, so a
	// block is 8+8+2+46 = 64 bytes.
	Slots8 = 46
	// Slots16 is the FSA capacity with 16-bit fingerprints: 23 slots.
	Slots16 = 23
)

// The fullness counter array is stored bit-planar: plane p0 holds each
// counter's low bit, p1 the high bit. A bucket's FSA offset is then a prefix
// popcount over the planes — one popcount per plane, no per-bucket loop.

func fcaCount(p0, p1 uint64, bucket uint) uint {
	return uint(p0>>bucket&1) | uint(p1>>bucket&1)<<1
}

func fcaSet(p0, p1 uint64, bucket uint, c uint) (uint64, uint64) {
	p0 = p0&^(1<<bucket) | uint64(c&1)<<bucket
	p1 = p1&^(1<<bucket) | uint64(c>>1&1)<<bucket
	return p0, p1
}

// fcaPrefix returns the number of fingerprints stored in buckets [0, bucket).
func fcaPrefix(p0, p1 uint64, bucket uint) uint {
	mask := uint64(1)<<bucket - 1
	if bucket >= 64 {
		mask = ^uint64(0)
	}
	return uint(bits.OnesCount64(p0&mask)) + 2*uint(bits.OnesCount64(p1&mask))
}

func fcaTotal(p0, p1 uint64) uint {
	return uint(bits.OnesCount64(p0)) + 2*uint(bits.OnesCount64(p1))
}

// block8 is a Morton block with 8-bit fingerprints. Exactly 64 bytes.
type block8 struct {
	p0, p1 uint64
	ota    uint16
	fsa    [Slots8]uint8
}

func (b *block8) total() uint { return fcaTotal(b.p0, b.p1) }

func (b *block8) count(bucket uint) uint { return fcaCount(b.p0, b.p1, bucket) }

// insert places fp in bucket, reporting false when the bucket or the block
// store is full.
func (b *block8) insert(bucket uint, fp uint8) bool {
	c := b.count(bucket)
	total := b.total()
	if c >= BucketCap || total >= Slots8 {
		return false
	}
	pos := fcaPrefix(b.p0, b.p1, bucket) + c
	copy(b.fsa[pos+1:total+1], b.fsa[pos:total])
	b.fsa[pos] = fp
	b.p0, b.p1 = fcaSet(b.p0, b.p1, bucket, c+1)
	return true
}

func (b *block8) contains(bucket uint, fp uint8) bool {
	start := fcaPrefix(b.p0, b.p1, bucket)
	end := start + b.count(bucket)
	for i := start; i < end; i++ {
		if b.fsa[i] == fp {
			return true
		}
	}
	return false
}

func (b *block8) remove(bucket uint, fp uint8) bool {
	start := fcaPrefix(b.p0, b.p1, bucket)
	c := b.count(bucket)
	for i := start; i < start+c; i++ {
		if b.fsa[i] == fp {
			total := b.total()
			copy(b.fsa[i:total-1], b.fsa[i+1:total])
			b.fsa[total-1] = 0
			b.p0, b.p1 = fcaSet(b.p0, b.p1, bucket, c-1)
			return true
		}
	}
	return false
}

// pickVictim chooses a displacement victim for an insert of fp into bucket,
// starting the scan at a random slot. Two exclusions guarantee the eviction
// walk makes progress instead of cycling inside one block until MaxKicks:
// a victim identical to the incoming item (same bucket, same fingerprint)
// is never eligible — removing it and re-inserting ours is a no-op — and
// escapes (supplied by the caller, true when the victim's alternate block
// differs from this one) must hold, so every successful kick moves the
// in-flight item to a different block. When the bucket is at BucketCap only
// that bucket's entries can make room; when the block store is the
// constraint any entry works. ok is false when no eligible victim exists.
func (b *block8) pickVictim(bucket uint, fp uint8, r uint32, escapes func(uint, uint8) bool) (vBucket uint, vFp uint8, ok bool) {
	start, n := uint(0), b.total()
	if b.count(bucket) >= BucketCap {
		start, n = fcaPrefix(b.p0, b.p1, bucket), b.count(bucket)
	}
	if n == 0 {
		return 0, 0, false
	}
	i := uint(r) % n
	for off := uint(0); off < n; off++ {
		j := start + (i+off)%n
		vb := b.slotBucket(j)
		vf := b.fsa[j]
		if vb == bucket && vf == fp {
			continue
		}
		if !escapes(vb, vf) {
			continue
		}
		return vb, vf, true
	}
	return 0, 0, false
}

// slotBucket returns the bucket owning FSA slot i (used when choosing an
// eviction victim).
func (b *block8) slotBucket(i uint) uint {
	var sum uint
	for bucket := uint(0); bucket < BucketsPerBlock; bucket++ {
		sum += b.count(bucket)
		if i < sum {
			return bucket
		}
	}
	return BucketsPerBlock - 1 // unreachable for i < total()
}

func (b *block8) otaSet(bucket uint)       { b.ota |= 1 << (bucket % OTABits) }
func (b *block8) otaTest(bucket uint) bool { return b.ota>>(bucket%OTABits)&1 == 1 }

// block16 is a Morton block with 16-bit fingerprints. Exactly 64 bytes.
type block16 struct {
	p0, p1 uint64
	ota    uint16
	fsa    [Slots16]uint16
}

func (b *block16) total() uint { return fcaTotal(b.p0, b.p1) }

func (b *block16) count(bucket uint) uint { return fcaCount(b.p0, b.p1, bucket) }

func (b *block16) insert(bucket uint, fp uint16) bool {
	c := b.count(bucket)
	total := b.total()
	if c >= BucketCap || total >= Slots16 {
		return false
	}
	pos := fcaPrefix(b.p0, b.p1, bucket) + c
	copy(b.fsa[pos+1:total+1], b.fsa[pos:total])
	b.fsa[pos] = fp
	b.p0, b.p1 = fcaSet(b.p0, b.p1, bucket, c+1)
	return true
}

func (b *block16) contains(bucket uint, fp uint16) bool {
	start := fcaPrefix(b.p0, b.p1, bucket)
	end := start + b.count(bucket)
	for i := start; i < end; i++ {
		if b.fsa[i] == fp {
			return true
		}
	}
	return false
}

func (b *block16) remove(bucket uint, fp uint16) bool {
	start := fcaPrefix(b.p0, b.p1, bucket)
	c := b.count(bucket)
	for i := start; i < start+c; i++ {
		if b.fsa[i] == fp {
			total := b.total()
			copy(b.fsa[i:total-1], b.fsa[i+1:total])
			b.fsa[total-1] = 0
			b.p0, b.p1 = fcaSet(b.p0, b.p1, bucket, c-1)
			return true
		}
	}
	return false
}

// pickVictim mirrors block8.pickVictim for 16-bit fingerprints.
func (b *block16) pickVictim(bucket uint, fp uint16, r uint32, escapes func(uint, uint16) bool) (vBucket uint, vFp uint16, ok bool) {
	start, n := uint(0), b.total()
	if b.count(bucket) >= BucketCap {
		start, n = fcaPrefix(b.p0, b.p1, bucket), b.count(bucket)
	}
	if n == 0 {
		return 0, 0, false
	}
	i := uint(r) % n
	for off := uint(0); off < n; off++ {
		j := start + (i+off)%n
		vb := b.slotBucket(j)
		vf := b.fsa[j]
		if vb == bucket && vf == fp {
			continue
		}
		if !escapes(vb, vf) {
			continue
		}
		return vb, vf, true
	}
	return 0, 0, false
}

func (b *block16) slotBucket(i uint) uint {
	var sum uint
	for bucket := uint(0); bucket < BucketsPerBlock; bucket++ {
		sum += b.count(bucket)
		if i < sum {
			return bucket
		}
	}
	return BucketsPerBlock - 1
}

func (b *block16) otaSet(bucket uint)       { b.ota |= 1 << (bucket % OTABits) }
func (b *block16) otaTest(bucket uint) bool { return b.ota>>(bucket%OTABits)&1 == 1 }
