package morton

import (
	"math/rand"
	"testing"
)

// TestModelBasedOps validates the Morton filter against an exact fingerprint
// model: keys sharing (bucket, fp) and the same unordered block pair are
// mutually confusable; all others must behave exactly.
func TestModelBasedOps(t *testing.T) {
	f := New8(1 << 10)
	rng := rand.New(rand.NewSource(1))
	type fpKey struct {
		blk    uint64
		bucket uint
		fp     uint8
	}
	ident := func(h uint64) fpKey {
		b, bucket, fp, tag := f.split(h)
		alt := f.altBlock(b, tag)
		if alt < b {
			b = alt
		}
		return fpKey{b, bucket, fp}
	}
	model := map[fpKey]int{}
	var live []uint64
	for step := 0; step < 100000; step++ {
		switch r := rng.Intn(10); {
		case r < 4:
			if f.LoadFactor() > 0.88 {
				continue
			}
			h := rng.Uint64()
			if !f.Insert(h) {
				continue
			}
			model[ident(h)]++
			live = append(live, h)
		case r < 7:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			k := ident(h)
			if !f.Remove(h) {
				t.Fatalf("step %d: remove of live key failed (model %d)", step, model[k])
			}
			model[k]--
			if model[k] == 0 {
				delete(model, k)
			}
		default:
			// Random probes: a positive answer must be justified by a stored
			// twin (no spurious positives). The converse does NOT hold for
			// the Morton filter: a probe sharing (bucket, fp) with a key
			// inserted from the *other* side of the block pair can miss,
			// because the probe's primary block has no overflow bit — the
			// OTA legitimately suppresses the secondary check. That behaviour
			// reduces false positives and violates nothing: the
			// no-false-negative guarantee covers inserted keys only, which
			// the live-key check below enforces exactly.
			h := rng.Uint64()
			if f.Contains(h) && model[ident(h)] == 0 {
				t.Fatalf("step %d: contains=true but model empty", step)
			}
			if len(live) > 0 {
				if !f.Contains(live[rng.Intn(len(live))]) {
					t.Fatalf("step %d: false negative for inserted key", step)
				}
			}
		}
		if step%4096 == 0 {
			var total int
			for _, c := range model {
				total += c
			}
			if int(f.Count()) != total {
				t.Fatalf("step %d: count %d, model %d", step, f.Count(), total)
			}
		}
	}
}
