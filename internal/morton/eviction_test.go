package morton

import (
	"math/rand"
	"testing"
)

// TestEvictionPreservesLookup fills the filter near capacity (forcing the
// cuckoo-eviction path) and verifies every inserted key is still reachable
// through the OTA-guided lookup.
func TestEvictionPreservesLookup(t *testing.T) {
	f := New8(1 << 12)
	rng := rand.New(rand.NewSource(1))
	var keys []uint64
	for {
		h := rng.Uint64()
		if !f.Insert(h) {
			break
		}
		keys = append(keys, h)
	}
	if f.Kicks() == 0 {
		t.Fatal("filling to failure performed no evictions; test ineffective")
	}
	t.Logf("filled to LF %.4f with %d evictions", f.LoadFactor(), f.Kicks())
	for i, h := range keys {
		if !f.Contains(h) {
			t.Fatalf("key %d/%d lost after evictions", i, len(keys))
		}
	}
}

// TestDeleteAfterEviction deletes keys from a filter whose contents were
// rearranged by evictions; every delete of an inserted key must succeed.
func TestDeleteAfterEviction(t *testing.T) {
	f := New8(1 << 10)
	rng := rand.New(rand.NewSource(2))
	var keys []uint64
	for {
		h := rng.Uint64()
		if !f.Insert(h) {
			break
		}
		keys = append(keys, h)
	}
	perm := rand.New(rand.NewSource(3)).Perm(len(keys))
	for _, i := range perm {
		if !f.Remove(keys[i]) {
			t.Fatalf("remove of inserted key failed after evictions")
		}
	}
	if f.Count() != 0 {
		t.Fatalf("count %d after removing everything", f.Count())
	}
}

// TestOTAGrowsWithLoad sanity-checks the overflow-tracking behaviour: OTA
// bits should be rare at low load and common near capacity.
func TestOTAGrowsWithLoad(t *testing.T) {
	f := New8(1 << 12)
	rng := rand.New(rand.NewSource(4))
	otaFraction := func() float64 {
		set := 0
		for i := range f.blocks {
			if f.blocks[i].ota != 0 {
				set++
			}
		}
		return float64(set) / float64(len(f.blocks))
	}
	for f.LoadFactor() < 0.30 {
		f.Insert(rng.Uint64())
	}
	low := otaFraction()
	for f.LoadFactor() < 0.90 {
		if !f.Insert(rng.Uint64()) {
			break
		}
	}
	high := otaFraction()
	if high <= low {
		t.Errorf("OTA fraction did not grow with load: %.3f -> %.3f", low, high)
	}
}

// TestDuplicateFloodDoesNotWedge is the regression test for the oracle
// finding morton{8,16}-differential (see testdata/repros/): flooding one key
// past its pair's bucket capacity used to send the eviction walk into a
// twin-swapping cycle that parked a victim and wedged the whole filter at
// <1% load. Overflow duplicates must now be rejected cleanly, leaving the
// filter fully usable for other keys.
func TestDuplicateFloodDoesNotWedge(t *testing.T) {
	t.Run("8", func(t *testing.T) {
		f := New8(4096)
		const dup = 0x5ee61ac0ad4b8000
		accepted := 0
		for i := 0; i < 20; i++ {
			if f.Insert(dup) {
				accepted++
			}
		}
		if accepted < BucketCap || accepted > 2*BucketCap {
			t.Fatalf("accepted %d duplicates, want within [%d, %d]", accepted, BucketCap, 2*BucketCap)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			if h := rng.Uint64(); !f.Insert(h) {
				t.Fatalf("fresh insert %d failed after duplicate flood (filter wedged)", i)
			}
		}
		for i := 0; i < accepted; i++ {
			if !f.Remove(dup) {
				t.Fatalf("remove of accepted duplicate %d/%d failed", i, accepted)
			}
		}
	})
	t.Run("16", func(t *testing.T) {
		f := New16(4096)
		const dup = 0x8664d6e0196c5900
		accepted := 0
		for i := 0; i < 20; i++ {
			if f.Insert(dup) {
				accepted++
			}
		}
		if accepted < BucketCap || accepted > 2*BucketCap {
			t.Fatalf("accepted %d duplicates, want within [%d, %d]", accepted, BucketCap, 2*BucketCap)
		}
		rng := rand.New(rand.NewSource(43))
		for i := 0; i < 500; i++ {
			if h := rng.Uint64(); !f.Insert(h) {
				t.Fatalf("fresh insert %d failed after duplicate flood (filter wedged)", i)
			}
		}
		for i := 0; i < accepted; i++ {
			if !f.Remove(dup) {
				t.Fatalf("remove of accepted duplicate %d/%d failed", i, accepted)
			}
		}
	})
}
