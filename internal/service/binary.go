package service

import (
	"bufio"
	"context"
	"errors"
	"net"
	"os"
)

// Binary data plane. Each connection gets one goroutine that loops:
// read frame → hash keys → one batch call on the target filter → write
// response. All per-connection buffers (frame, decoded keys, hashes,
// result bools, response body) are reused across frames, so a sustained
// batch stream runs allocation-free in steady state and every frame
// costs two syscalls (one read, one write) for any batch size — the
// amortization that makes the batched wire path beat per-key HTTP by an
// order of magnitude.

// serveBinary accepts binary-protocol connections until the listener
// closes (shutdown).
func (s *Server) serveBinary() {
	for {
		c, err := s.binLn.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.draining.Load() {
			c.Close()
			continue
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(c)
	}
}

// connScratch is the per-connection reusable state.
type connScratch struct {
	frame  []byte
	req    request
	hashes []uint64
	found  []bool
	vals   []byte
	body   []byte
}

// handleConn serves one binary connection until EOF, error, or drain.
func (s *Server) handleConn(c net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
		s.connWg.Done()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var sc connScratch
	for !s.draining.Load() {
		payload, err := readFrame(br, sc.frame, s.cfg.MaxFrameBytes)
		sc.frame = payload[:cap(payload)]
		if err != nil {
			// EOF, drain nudge (read deadline), or a framing violation: in
			// every case the stream is unrecoverable — stop reading. Anything
			// already acknowledged has been flushed.
			break
		}
		if err := s.handleFrame(payload, bw, &sc); err != nil {
			break
		}
		// Flush when no further request is already buffered: pipelining
		// clients get one flush per burst, request-response clients one per
		// frame. Acknowledgment = bytes handed to the kernel here.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				break
			}
		}
	}
	bw.Flush()
}

// handleFrame decodes and executes one request frame, writing its
// response into bw. Returns an error only for unrecoverable connection
// states; per-request problems are reported in-band via status codes.
func (s *Server) handleFrame(payload []byte, bw *bufio.Writer, sc *connScratch) error {
	if err := parseRequest(payload, &sc.req); err != nil {
		// Framing was intact (length prefix consumed) but the payload is
		// malformed; report and keep the connection.
		return writeResponse(bw, 0, statusBadRequest, 0, nil)
	}
	req := &sc.req
	if req.op == opPing {
		return writeResponse(bw, opPing, statusOK, 0, nil)
	}
	if s.draining.Load() {
		return writeResponse(bw, req.op, statusDraining, 0, nil)
	}
	h, err := s.reg.get(req.name)
	if err != nil {
		return writeResponse(bw, req.op, statusNoFilter, 0, nil)
	}
	sc.hashes = h.HashUint64s(req.keys, sc.hashes)
	ctx, cancel := s.opContext(context.Background())
	defer cancel()
	status := func(err error) byte {
		switch {
		case err == nil:
			return statusOK
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
			return statusTimeout
		case errors.Is(err, ErrWrongKind):
			return statusWrongKind
		default:
			return statusBadRequest
		}
	}
	switch req.op {
	case opInsert:
		n, err := h.Insert(ctx, sc.hashes)
		return writeResponse(bw, req.op, status(err), uint32(n), nil)
	case opContains:
		found, err := h.Contains(ctx, sc.hashes, sc.found)
		sc.found = found
		if err != nil {
			return writeResponse(bw, req.op, status(err), 0, nil)
		}
		sc.body = packBools(sc.body[:0], found)
		return writeResponse(bw, req.op, statusOK, uint32(len(found)), sc.body)
	case opRemove:
		n, err := h.Remove(ctx, sc.hashes)
		return writeResponse(bw, req.op, status(err), uint32(n), nil)
	case opPut:
		n, err := h.Put(ctx, sc.hashes, req.vals, req.flags&flagUpdate != 0)
		return writeResponse(bw, req.op, status(err), uint32(n), nil)
	case opGet:
		vals, found, err := h.Get(ctx, sc.hashes, sc.vals, sc.found)
		sc.vals, sc.found = vals, found
		if err != nil {
			return writeResponse(bw, req.op, status(err), 0, nil)
		}
		sc.body = packBools(sc.body[:0], found)
		sc.body = append(sc.body, vals...)
		return writeResponse(bw, req.op, statusOK, uint32(len(found)), sc.body)
	default:
		return writeResponse(bw, req.op, statusBadRequest, 0, nil)
	}
}
