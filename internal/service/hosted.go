package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sync"

	"vqf"
	"vqf/internal/hashing"
)

// Kind names a hostable filter variant. The daemon hosts every public
// filter shape that can round-trip through the serialization envelopes,
// which is what makes snapshot/warm-restart total over the registry.
type Kind string

const (
	// KindPlain is a single-threaded vqf.Filter (vqf.New); the service
	// serializes access to it with the hosted lock.
	KindPlain Kind = "plain"
	// KindConcurrent is a thread-safe vqf.Filter (vqf.NewConcurrent);
	// data-plane requests run on it concurrently.
	KindConcurrent Kind = "concurrent"
	// KindSharded is a sharded concurrent vqf.Filter (vqf.NewSharded):
	// batch frames fan out over shard-disjoint workers.
	KindSharded Kind = "sharded"
	// KindElastic is an online-growing vqf.Elastic (vqf.NewElastic). The
	// sequential cascade is hosted — it is the variant that serializes —
	// with access serialized by the hosted lock.
	KindElastic Kind = "elastic"
	// KindMap is a value-associating vqf.Map; opPut/opGet carry the value
	// byte per key.
	KindMap Kind = "map"
)

// Kinds lists every hostable kind.
func Kinds() []Kind {
	return []Kind{KindPlain, KindConcurrent, KindSharded, KindElastic, KindMap}
}

// Spec declares one named filter: its kind and construction parameters.
// It is the create-request body of the admin API and the per-filter
// record of the snapshot manifest (the hash seed must persist so raw keys
// hash identically after a warm restart).
type Spec struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Capacity is the provisioned item count (for KindElastic, the initial
	// capacity the first level is provisioned for). 0 means 1<<20.
	Capacity uint64 `json:"capacity,omitempty"`
	// FPR is the target false-positive rate; 0 means the package default
	// (the 8-bit geometry's ≈0.0047).
	FPR float64 `json:"fpr,omitempty"`
	// Shards is the shard count for KindSharded (0 = GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// Seed is the hash seed for raw keys; it travels in the manifest.
	Seed uint64 `json:"seed,omitempty"`
}

// nameRe bounds filter names so they are safe as snapshot file names and
// URL path segments.
var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

// minSupportedFPR mirrors the package's 2^-17 floor so Spec validation
// rejects what the constructors would panic on.
const minSupportedFPR = 1.0 / (1 << 17)

// normalize validates the spec and fills defaults in place.
func (s *Spec) normalize() error {
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("service: invalid filter name %q (want %s)", s.Name, nameRe)
	}
	switch s.Kind {
	case KindPlain, KindConcurrent, KindSharded, KindElastic, KindMap:
	default:
		return fmt.Errorf("service: unknown filter kind %q", s.Kind)
	}
	if s.Capacity == 0 {
		s.Capacity = 1 << 20
	}
	if s.Capacity > 1<<34 {
		return fmt.Errorf("service: capacity %d exceeds the 2^34 hosting limit", s.Capacity)
	}
	if s.FPR != 0 && (s.FPR < minSupportedFPR || s.FPR >= 1) {
		return fmt.Errorf("service: false-positive rate %g outside [2^-17, 1)", s.FPR)
	}
	if s.Kind == KindSharded && s.Shards == 0 {
		s.Shards = runtime.GOMAXPROCS(0)
	}
	if s.Kind != KindSharded {
		s.Shards = 0
	}
	return nil
}

// options renders the spec's construction options.
func (s *Spec) options() []vqf.Option {
	opts := []vqf.Option{vqf.WithSeed(s.Seed)}
	if s.FPR != 0 {
		opts = append(opts, vqf.WithFalsePositiveRate(s.FPR))
	}
	return opts
}

// Service-level operation errors; the HTTP and binary front ends map them
// to their own status vocabularies.
var (
	ErrNotFound   = errors.New("service: no such filter")
	ErrExists     = errors.New("service: filter already exists")
	ErrWrongKind  = errors.New("service: operation requires a map filter")
	ErrNotElastic = errors.New("service: operation requires an elastic filter")
	ErrDraining   = errors.New("service: server draining")
)

// hosted is one named filter plus its service-level lock. Exactly one of
// filter/elastic/kv is non-nil.
//
// Locking: snapshotting needs quiescence (WriteTo rejects in-flight
// writers) and the sequential kinds need mutual exclusion the filter
// itself does not provide, so every hosted filter carries a RWMutex.
// Data-plane ops on internally thread-safe kinds (concurrent, sharded)
// take the read side — they exclude only snapshots, not each other — and
// sequential kinds (plain, elastic, map) take the write side. Snapshot
// always takes the write side. Per-op deadlines are enforced at the lock:
// a request that waited past its deadline (queued behind a snapshot or a
// long batch) is rejected before touching the filter.
type hosted struct {
	spec       Spec
	threadSafe bool
	mu         sync.RWMutex
	filter     *vqf.Filter
	elastic    *vqf.Elastic
	kv         *vqf.Map
}

// newHosted constructs the filter a spec describes. The spec must be
// normalized.
func newHosted(spec Spec) (*hosted, error) {
	h := &hosted{spec: spec}
	opts := spec.options()
	switch spec.Kind {
	case KindPlain:
		h.filter = vqf.New(spec.Capacity, opts...)
	case KindConcurrent:
		h.filter = vqf.NewConcurrent(spec.Capacity, opts...)
		h.threadSafe = true
	case KindSharded:
		h.filter = vqf.NewSharded(spec.Capacity, spec.Shards, opts...)
		h.threadSafe = true
	case KindElastic:
		h.elastic = vqf.NewElastic(append(opts, vqf.WithInitialCapacity(spec.Capacity))...)
	case KindMap:
		h.kv = vqf.NewMap(spec.Capacity, opts...)
	default:
		return nil, fmt.Errorf("service: unknown filter kind %q", spec.Kind)
	}
	return h, nil
}

// lockOp acquires the data-plane side of the hosted lock, honoring ctx's
// deadline: if the deadline passed while waiting for the lock the lock is
// released again and the context error returned.
func (h *hosted) lockOp(ctx context.Context) (unlock func(), err error) {
	if h.threadSafe {
		h.mu.RLock()
		unlock = h.mu.RUnlock
	} else {
		h.mu.Lock()
		unlock = h.mu.Unlock
	}
	if err := ctx.Err(); err != nil {
		unlock()
		return nil, err
	}
	return unlock, nil
}

// HashUint64s hashes raw 64-bit keys with the filter's seed into dst
// (reused when large enough). Safe without the lock: the seed is
// immutable.
func (h *hosted) HashUint64s(keys []uint64, dst []uint64) []uint64 {
	if cap(dst) < len(keys) {
		dst = make([]uint64, len(keys))
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = hashing.HashUint64(k, h.spec.Seed)
	}
	return dst
}

// HashStrings hashes string keys with the filter's seed into dst.
func (h *hosted) HashStrings(keys []string, dst []uint64) []uint64 {
	if cap(dst) < len(keys) {
		dst = make([]uint64, len(keys))
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = hashing.HashString(k, h.spec.Seed)
	}
	return dst
}

// Insert inserts pre-hashed keys and returns how many were stored (the
// rest hit full blocks). On a map filter, keys are stored with value 0.
func (h *hosted) Insert(ctx context.Context, hs []uint64) (int, error) {
	unlock, err := h.lockOp(ctx)
	if err != nil {
		return 0, err
	}
	defer unlock()
	switch {
	case h.filter != nil:
		return h.filter.AddHashBatch(hs), nil
	case h.elastic != nil:
		return h.elastic.AddHashBatch(hs), nil
	default:
		n := 0
		for _, kh := range hs {
			if h.kv.PutHash(kh, 0) == nil {
				n++
			}
		}
		return n, nil
	}
}

// Contains reports membership for pre-hashed keys into dst (reused when
// large enough).
func (h *hosted) Contains(ctx context.Context, hs []uint64, dst []bool) ([]bool, error) {
	unlock, err := h.lockOp(ctx)
	if err != nil {
		return dst, err
	}
	defer unlock()
	switch {
	case h.filter != nil:
		return h.filter.ContainsHashBatch(hs, dst), nil
	case h.elastic != nil:
		return h.elastic.ContainsHashBatch(hs, dst), nil
	default:
		if cap(dst) < len(hs) {
			dst = make([]bool, len(hs))
		}
		dst = dst[:len(hs)]
		for i, kh := range hs {
			_, dst[i] = h.kv.GetHash(kh)
		}
		return dst, nil
	}
}

// Remove removes one instance of each pre-hashed key, returning how many
// were found.
func (h *hosted) Remove(ctx context.Context, hs []uint64) (int, error) {
	unlock, err := h.lockOp(ctx)
	if err != nil {
		return 0, err
	}
	defer unlock()
	switch {
	case h.filter != nil:
		return h.filter.RemoveHashBatch(hs), nil
	case h.elastic != nil:
		return h.elastic.RemoveHashBatch(hs), nil
	default:
		n := 0
		for _, kh := range hs {
			if h.kv.DeleteHash(kh) {
				n++
			}
		}
		return n, nil
	}
}

// Put stores (or with update, rewrites) key→value pairs on a map filter,
// returning how many succeeded.
func (h *hosted) Put(ctx context.Context, hs []uint64, vals []byte, update bool) (int, error) {
	if h.kv == nil {
		return 0, ErrWrongKind
	}
	unlock, err := h.lockOp(ctx)
	if err != nil {
		return 0, err
	}
	defer unlock()
	n := 0
	for i, kh := range hs {
		if update {
			if h.kv.UpdateHash(kh, vals[i]) {
				n++
			}
		} else if h.kv.PutHash(kh, vals[i]) == nil {
			n++
		}
	}
	return n, nil
}

// Get looks up values on a map filter: found[i] reports presence and
// vals[i] the stored byte (0 when absent). Both slices are reused when
// large enough.
func (h *hosted) Get(ctx context.Context, hs []uint64, vals []byte, found []bool) ([]byte, []bool, error) {
	if h.kv == nil {
		return vals, found, ErrWrongKind
	}
	unlock, err := h.lockOp(ctx)
	if err != nil {
		return vals, found, err
	}
	defer unlock()
	if cap(vals) < len(hs) {
		vals = make([]byte, len(hs))
	}
	vals = vals[:len(hs)]
	if cap(found) < len(hs) {
		found = make([]bool, len(hs))
	}
	found = found[:len(hs)]
	for i, kh := range hs {
		vals[i], found[i] = h.kv.GetHash(kh)
	}
	return vals, found, nil
}

// Compact runs a cascade compaction on an elastic filter, merging runs of
// sparse old levels; ErrNotElastic for every other kind. It takes the
// write side of the hosted lock — the hosted cascade is the sequential
// variant, and holding the write side also means a snapshot can never
// observe a half-spliced level list.
func (h *hosted) Compact(ctx context.Context) (vqf.CompactionResult, error) {
	if h.elastic == nil {
		return vqf.CompactionResult{}, ErrNotElastic
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return vqf.CompactionResult{}, err
	}
	return h.elastic.CompactNow(), nil
}

// Freeze rebuilds an elastic filter's qualifying old levels into immutable
// fuse levels; ErrNotElastic for every other kind. Locking matches Compact.
func (h *hosted) Freeze(ctx context.Context) (vqf.FreezeResult, error) {
	if h.elastic == nil {
		return vqf.FreezeResult{}, ErrNotElastic
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return vqf.FreezeResult{}, err
	}
	return h.elastic.FreezeNow(), nil
}

// Count returns the hosted filter's stored-item count.
func (h *hosted) Count() uint64 {
	switch {
	case h.filter != nil:
		return h.filter.Count()
	case h.elastic != nil:
		return h.elastic.Count()
	default:
		return h.kv.Count()
	}
}

// Capacity returns the hosted filter's current slot capacity.
func (h *hosted) Capacity() uint64 {
	switch {
	case h.filter != nil:
		return h.filter.Capacity()
	case h.elastic != nil:
		return h.elastic.Capacity()
	default:
		return h.kv.Capacity()
	}
}

// SizeBytes returns the hosted filter's memory footprint.
func (h *hosted) SizeBytes() uint64 {
	switch {
	case h.filter != nil:
		return h.filter.SizeBytes()
	case h.elastic != nil:
		return h.elastic.SizeBytes()
	default:
		return h.kv.SizeBytes()
	}
}

// Source returns the filter as a metrics source (every kind implements
// vqf.Source).
func (h *hosted) Source() vqf.Source {
	switch {
	case h.filter != nil:
		return h.filter
	case h.elastic != nil:
		return h.elastic
	default:
		return h.kv
	}
}

// EventSource returns the filter's event ring, or nil for kinds without
// one (vqf.Map).
func (h *hosted) EventSource() vqf.EventSource {
	switch {
	case h.filter != nil:
		return h.filter
	case h.elastic != nil:
		return h.elastic
	default:
		return nil
	}
}

// writeTo serializes the hosted filter through its envelope. The caller
// must hold the write lock (quiescence: WriteTo rejects in-flight
// writers).
func (h *hosted) writeTo(w io.Writer) (int64, error) {
	switch {
	case h.filter != nil:
		return h.filter.WriteTo(w)
	case h.elastic != nil:
		return h.elastic.WriteTo(w)
	default:
		return h.kv.WriteTo(w)
	}
}

// readHosted deserializes a filter of the spec's kind from r, wrapping it
// as a hosted filter. It is the warm-restart counterpart of writeTo: each
// kind dispatches to the envelope reader that reconstructs the variant
// the daemon hosts for that kind.
func readHosted(spec Spec, r io.Reader) (*hosted, error) {
	h := &hosted{spec: spec}
	var err error
	switch spec.Kind {
	case KindPlain:
		h.filter, err = vqf.Read(r)
	case KindConcurrent:
		h.filter, err = vqf.ReadConcurrent(r)
		h.threadSafe = true
	case KindSharded:
		h.filter, err = vqf.Read(r) // sharded streams always load sharded
		h.threadSafe = true
	case KindElastic:
		h.elastic, err = vqf.ReadElastic(r)
	case KindMap:
		h.kv, err = vqf.NewMapFromReader(r)
	default:
		return nil, fmt.Errorf("service: unknown filter kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return h, nil
}
