// Package service is the filter-as-a-service layer behind cmd/vqfd: a
// registry of named hosted filters (plain, concurrent, sharded, elastic,
// kv map), an HTTP/JSON admin+data API, a length-prefixed binary protocol
// whose frames carry batches of keys straight into the radix-partitioned
// batch kernels, snapshot persistence with warm restart, and graceful
// drain-then-snapshot shutdown. Everything is stdlib-only, like the rest
// of the repository.
package service

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary wire protocol. Both directions use the same outer framing: a
// 4-byte little-endian payload length followed by the payload. Payloads:
//
//	request:  op(1) flags(1) nameLen(2) name(nameLen) count(4)
//	          keys(count × 8, little-endian uint64)
//	          [values(count × 1), opPut only]
//	response: op(1) status(1) reserved(2) count(4) body
//
// Keys are raw 64-bit client keys: the server hashes them with the target
// filter's seed and dispatches the whole frame into one batch call
// (InsertBatch/ContainsBatch/RemoveBatch), so per-key cost on the wire is
// 8 bytes and per-key cost in the server is one hash plus its share of a
// single batch-kernel invocation. Responses carry a count (keys inserted/
// removed, or keys echoed for lookups) and, for lookups, a packed
// presence bitmap (bit i = key i present, LSB-first); opGet appends one
// value byte per key after the bitmap.
//
// The protocol is strictly request-response per frame but clients may
// pipeline: the server answers frames in arrival order and delays its
// write-buffer flush while more requests are already buffered.
const (
	opInsert   byte = 1 // membership insert (map kind: put with value 0)
	opContains byte = 2 // membership query (map kind: presence of key)
	opRemove   byte = 3 // membership remove (map kind: delete)
	opPut      byte = 4 // map only: store key→value; flagUpdate updates in place
	opGet      byte = 5 // map only: value lookup (bitmap + value bytes)
	opPing     byte = 6 // liveness/flush probe, no name or keys required
)

// Response status codes.
const (
	statusOK         byte = 0
	statusNoFilter   byte = 1 // no hosted filter with that name
	statusBadRequest byte = 2 // malformed frame (op, lengths, counts)
	statusDraining   byte = 3 // server is shutting down
	statusTimeout    byte = 4 // per-filter op timeout expired while queued
	statusWrongKind  byte = 5 // opPut/opGet on a non-map filter
	statusFull       byte = 6 // reserved: not currently sent (partial inserts report counts)
)

// statusText names a wire status for client error messages.
func statusText(status byte) string {
	switch status {
	case statusOK:
		return "ok"
	case statusNoFilter:
		return "no such filter"
	case statusBadRequest:
		return "bad request"
	case statusDraining:
		return "server draining"
	case statusTimeout:
		return "op timeout"
	case statusWrongKind:
		return "wrong filter kind"
	case statusFull:
		return "filter full"
	}
	return fmt.Sprintf("unknown status %d", status)
}

// flagUpdate, on opPut, updates the values of already-stored keys instead
// of inserting new fingerprints (vqf.Map.Update semantics).
const flagUpdate byte = 1

const (
	// DefaultMaxFrameBytes bounds one frame's payload; at 8 bytes per key a
	// 16 MiB frame carries ~2M keys, far beyond any sensible batch.
	DefaultMaxFrameBytes = 16 << 20
	// maxNameBytes bounds the filter-name field (names are validated to be
	// much shorter at create time; this bounds hostile frames).
	maxNameBytes = 1 << 10
	// reqFixedBytes is the fixed part of a request payload.
	reqFixedBytes = 1 + 1 + 2 + 4
	// respFixedBytes is the fixed part of a response payload.
	respFixedBytes = 1 + 1 + 2 + 4
)

// readFrame reads one length-prefixed frame payload into buf (grown as
// needed) and returns the payload slice.
func readFrame(r *bufio.Reader, buf []byte, maxLen int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxLen {
		return buf, fmt.Errorf("service: frame payload %d exceeds limit %d", n, maxLen)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, fmt.Errorf("service: short frame: %w", err)
	}
	return buf, nil
}

// request is one decoded data-plane request. keys aliases the decoder's
// scratch and is only valid until the next parse on the same scratch.
type request struct {
	op    byte
	flags byte
	name  string
	keys  []uint64
	vals  []byte
}

// appendRequest appends an encoded request frame (length prefix included)
// to dst. vals must be empty or len(keys) long (opPut).
func appendRequest(dst []byte, op, flags byte, name string, keys []uint64, vals []byte) ([]byte, error) {
	if len(name) > maxNameBytes {
		return dst, fmt.Errorf("service: filter name %d bytes exceeds %d", len(name), maxNameBytes)
	}
	if len(vals) != 0 && len(vals) != len(keys) {
		return dst, fmt.Errorf("service: %d values for %d keys", len(vals), len(keys))
	}
	payload := reqFixedBytes + len(name) + 8*len(keys) + len(vals)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = append(dst, op, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	dst = append(dst, vals...)
	return dst, nil
}

// parseRequest decodes a request payload. req.keys reuses the prior
// backing array when large enough; req.name and req.vals alias payload.
func parseRequest(payload []byte, req *request) error {
	if len(payload) < reqFixedBytes {
		return fmt.Errorf("service: request payload %d bytes, want >= %d", len(payload), reqFixedBytes)
	}
	req.op = payload[0]
	req.flags = payload[1]
	nameLen := int(binary.LittleEndian.Uint16(payload[2:]))
	if nameLen > maxNameBytes || reqFixedBytes-4+nameLen+4 > len(payload) {
		return fmt.Errorf("service: request name length %d overruns payload", nameLen)
	}
	p := payload[4:]
	req.name = string(p[:nameLen])
	p = p[nameLen:]
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	wantVals := 0
	if req.op == opPut {
		wantVals = count
	}
	if count < 0 || len(p) != 8*count+wantVals {
		return fmt.Errorf("service: request body %d bytes for %d keys (op %d)", len(p), count, req.op)
	}
	if cap(req.keys) < count {
		req.keys = make([]uint64, count)
	}
	req.keys = req.keys[:count]
	for i := range req.keys {
		req.keys[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	req.vals = p[8*count:]
	return nil
}

// response is one decoded data-plane response; body aliases the parse
// buffer.
type response struct {
	op     byte
	status byte
	count  uint32
	body   []byte
}

// writeResponse writes an encoded response frame to w.
func writeResponse(w *bufio.Writer, op, status byte, count uint32, body []byte) error {
	var hdr [4 + respFixedBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(respFixedBytes+len(body)))
	hdr[4], hdr[5] = op, status
	binary.LittleEndian.PutUint32(hdr[8:], count)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// parseResponse decodes a response payload.
func parseResponse(payload []byte, resp *response) error {
	if len(payload) < respFixedBytes {
		return fmt.Errorf("service: response payload %d bytes, want >= %d", len(payload), respFixedBytes)
	}
	resp.op = payload[0]
	resp.status = payload[1]
	resp.count = binary.LittleEndian.Uint32(payload[4:])
	resp.body = payload[respFixedBytes:]
	return nil
}

// packBools appends bs as an LSB-first bitmap to dst.
func packBools(dst []byte, bs []bool) []byte {
	n := (len(bs) + 7) / 8
	start := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	for i, b := range bs {
		if b {
			dst[start+i/8] |= 1 << (i % 8)
		}
	}
	return dst
}

// unpackBools decodes an n-bool LSB-first bitmap from src into dst
// (reused when large enough).
func unpackBools(src []byte, n int, dst []bool) ([]bool, error) {
	if len(src) < (n+7)/8 {
		return dst, fmt.Errorf("service: bitmap %d bytes for %d bools", len(src), n)
	}
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = src[i/8]&(1<<(i%8)) != 0
	}
	return dst, nil
}
