package service

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []struct {
		op    byte
		flags byte
		name  string
		keys  []uint64
		vals  []byte
	}{
		{opPing, 0, "", nil, nil},
		{opInsert, 0, "hot", []uint64{1, 2, 3, 0xdeadbeefcafef00d}, nil},
		{opContains, 0, "a.filter-name_0", []uint64{42}, nil},
		{opPut, flagUpdate, "kv", []uint64{7, 8}, []byte{200, 201}},
		{opRemove, 0, "x", nil, nil},
	}
	var buf []byte
	var req request
	for _, c := range cases {
		frame, err := appendRequest(buf[:0], c.op, c.flags, c.name, c.keys, c.vals)
		if err != nil {
			t.Fatalf("append %+v: %v", c, err)
		}
		// Strip the 4-byte length prefix: parseRequest sees only the payload.
		if err := parseRequest(frame[4:], &req); err != nil {
			t.Fatalf("parse %+v: %v", c, err)
		}
		if req.op != c.op || req.flags != c.flags || req.name != c.name {
			t.Fatalf("decoded header %d/%d/%q, want %d/%d/%q", req.op, req.flags, req.name, c.op, c.flags, c.name)
		}
		if len(req.keys) != len(c.keys) {
			t.Fatalf("decoded %d keys, want %d", len(req.keys), len(c.keys))
		}
		for i := range c.keys {
			if req.keys[i] != c.keys[i] {
				t.Fatalf("key %d decoded %d, want %d", i, req.keys[i], c.keys[i])
			}
		}
		if !bytes.Equal(req.vals, c.vals) && len(c.vals) > 0 {
			t.Fatalf("decoded vals %v, want %v", req.vals, c.vals)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	w := bufio.NewWriter(&sink)
	body := []byte{0b10101010, 0x05}
	if err := writeResponse(w, opGet, statusOK, 8, body); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&sink)
	payload, err := readFrame(r, nil, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := parseResponse(payload, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.op != opGet || resp.status != statusOK || resp.count != 8 || !bytes.Equal(resp.body, body) {
		t.Fatalf("decoded %+v body=%v, want op=%d status=%d count=8 body=%v", resp, resp.body, opGet, statusOK, body)
	}
}

func TestPackUnpackBools(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 513} {
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = i%3 == 0
		}
		packed := packBools(nil, bs)
		if want := (n + 7) / 8; len(packed) != want {
			t.Fatalf("n=%d packed to %d bytes, want %d", n, len(packed), want)
		}
		got, err := unpackBools(packed, n, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range bs {
			if got[i] != bs[i] {
				t.Fatalf("n=%d bit %d decoded %v, want %v", n, i, got[i], bs[i])
			}
		}
	}
	if _, err := unpackBools([]byte{0}, 9, nil); err == nil {
		t.Fatal("short bitmap not rejected")
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	frame, err := appendRequest(nil, opInsert, 0, "f", make([]uint64, 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = readFrame(bufio.NewReader(bytes.NewReader(frame)), nil, 64)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

func TestParseRequestMalformed(t *testing.T) {
	var req request
	cases := map[string][]byte{
		"short payload":      {1, 0, 0},
		"name overrun":       {1, 0, 255, 255, 'x'},
		"body count overrun": append([]byte{1, 0, 0, 0}, 255, 0, 0, 0),
	}
	for name, payload := range cases {
		if err := parseRequest(payload, &req); err == nil {
			t.Errorf("%s: not rejected", name)
		}
	}
	// opPut without its value bytes is malformed.
	frame, err := appendRequest(nil, opInsert, 0, "f", []uint64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), frame[4:]...)
	payload[0] = opPut
	if err := parseRequest(payload, &req); err == nil {
		t.Error("opPut missing values not rejected")
	}
}
