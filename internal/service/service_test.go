package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vqf/internal/workload"
)

// startServer runs a server on loopback ports for one test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.BinaryAddr == "" {
		cfg.BinaryAddr = "127.0.0.1:0"
	}
	cfg.Logf = t.Logf
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

func TestSpecNormalize(t *testing.T) {
	bad := []Spec{
		{Name: "", Kind: KindPlain},
		{Name: "/etc/passwd", Kind: KindPlain},
		{Name: "../escape", Kind: KindPlain},
		{Name: strings.Repeat("x", 200), Kind: KindPlain},
		{Name: "ok", Kind: "bloom"},
		{Name: "ok", Kind: KindPlain, FPR: 2},
		{Name: "ok", Kind: KindPlain, FPR: 1e-9},
		{Name: "ok", Kind: KindPlain, Capacity: 1 << 40},
	}
	for _, s := range bad {
		if err := s.normalize(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	s := Spec{Name: "ok", Kind: KindSharded}
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Capacity != 1<<20 || s.Shards == 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	p := Spec{Name: "ok", Kind: KindPlain, Shards: 9}
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	if p.Shards != 0 {
		t.Fatalf("shards %d retained on non-sharded kind", p.Shards)
	}
}

func TestRegistryCRUD(t *testing.T) {
	reg := NewRegistry()
	for _, kind := range Kinds() {
		if _, err := reg.Create(Spec{Name: "f-" + string(kind), Kind: kind, Capacity: 1 << 10}); err != nil {
			t.Fatalf("create %s: %v", kind, err)
		}
	}
	if _, err := reg.Create(Spec{Name: "f-plain", Kind: KindPlain}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if got := reg.Len(); got != len(Kinds()) {
		t.Fatalf("Len %d, want %d", got, len(Kinds()))
	}
	infos := reg.List()
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("List not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
	if err := reg.Drop("f-map"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drop("f-map"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if _, err := reg.get("f-map"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after drop: %v", err)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	srv := startServer(t, Config{})
	admin := NewAdmin("http://" + srv.HTTPAddr())

	info, err := admin.Create(Spec{Name: "web", Kind: KindConcurrent, Capacity: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "web" || info.SlotCap == 0 {
		t.Fatalf("create info %+v", info)
	}
	if _, err := admin.Create(Spec{Name: "web", Kind: KindPlain}); err == nil {
		t.Fatal("duplicate create accepted over HTTP")
	}

	keys := workload.NewStream(7).Keys(3000)
	if n, err := admin.InsertU64("web", keys); err != nil || n != len(keys) {
		t.Fatalf("insert %d/%d: %v", n, len(keys), err)
	}
	found, err := admin.ContainsU64("web", keys[:100])
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("inserted key %d reported absent", i)
		}
	}
	if n, err := admin.RemoveU64("web", keys[:10]); err != nil || n != 10 {
		t.Fatalf("remove %d: %v", n, err)
	}

	infos, err := admin.List()
	if err != nil || len(infos) != 1 {
		t.Fatalf("list %v: %v", infos, err)
	}
	if infos[0].Count != uint64(len(keys)-10) {
		t.Fatalf("listed count %d, want %d", infos[0].Count, len(keys)-10)
	}

	// String keys go through the same data op.
	body := `{"keys":["alpha","beta"]}`
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/filters/web/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("string insert status %d", resp.StatusCode)
	}

	// /metrics exports the live registry.
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `vqf_items{filter="web"}`) {
		t.Fatalf("metrics missing the hosted filter:\n%s", metrics)
	}

	if err := admin.Drop("web"); err != nil {
		t.Fatal(err)
	}
	if err := admin.Drop("web"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("drop of missing filter: %v", err)
	}
}

func TestBinaryEndToEnd(t *testing.T) {
	srv := startServer(t, Config{})
	if _, err := srv.Registry().Create(Spec{Name: "hot", Kind: KindSharded, Capacity: 1 << 14, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Create(Spec{Name: "kv", Kind: KindMap, Capacity: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.BinaryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	keys := workload.NewStream(9).Keys(5000)
	if n, err := c.Insert("hot", keys); err != nil || n != len(keys) {
		t.Fatalf("insert %d/%d: %v", n, len(keys), err)
	}
	found, err := c.Contains("hot", keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("key %d absent after insert", i)
		}
	}
	neg := workload.NewStream(10).Keys(5000)
	found, err = c.Contains("hot", neg, found)
	if err != nil {
		t.Fatal(err)
	}
	fps := 0
	for _, ok := range found {
		if ok {
			fps++
		}
	}
	if fps > len(neg)/50 { // ε≈0.5%, 2% is far outside plausible noise
		t.Fatalf("%d/%d false positives", fps, len(neg))
	}
	if n, err := c.Remove("hot", keys[:100]); err != nil || n != 100 {
		t.Fatalf("remove %d: %v", n, err)
	}

	// Map ops: put, get, update.
	mk := workload.NewStream(11).Keys(500)
	vals := make([]byte, len(mk))
	for i := range vals {
		vals[i] = byte(i)
	}
	if n, err := c.Put("kv", mk, vals); err != nil || n != len(mk) {
		t.Fatalf("put %d: %v", n, err)
	}
	gotVals, gotFound, err := c.Get("kv", mk, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mk {
		if !gotFound[i] || gotVals[i] != vals[i] {
			t.Fatalf("get key %d: found=%v val=%d want %d", i, gotFound[i], gotVals[i], vals[i])
		}
	}
	for i := range vals {
		vals[i] = byte(i + 1)
	}
	if n, err := c.Update("kv", mk, vals); err != nil || n != len(mk) {
		t.Fatalf("update %d: %v", n, err)
	}
	gotVals, gotFound, err = c.Get("kv", mk, gotVals, gotFound)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mk {
		if !gotFound[i] || gotVals[i] != vals[i] {
			t.Fatalf("updated key %d: val=%d want %d", i, gotVals[i], vals[i])
		}
	}

	// In-band errors keep the connection usable.
	if _, err := c.Insert("nope", keys[:1]); err == nil || !strings.Contains(err.Error(), "no such filter") {
		t.Fatalf("missing filter: %v", err)
	}
	if _, err := c.Put("hot", mk[:1], vals[:1]); err == nil || !strings.Contains(err.Error(), "wrong filter kind") {
		t.Fatalf("put on non-map: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after in-band errors: %v", err)
	}
}

// TestBinaryConcurrentClients drives the data plane from many connections
// at once; run under -race this checks the server's shared state.
func TestBinaryConcurrentClients(t *testing.T) {
	srv := startServer(t, Config{})
	if _, err := srv.Registry().Create(Spec{Name: "par", Kind: KindSharded, Capacity: 1 << 16, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.BinaryAddr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			keys := workload.NewStream(uint64(100 + g)).Keys(2000)
			var found []bool
			for lo := 0; lo < len(keys); lo += 64 {
				hi := lo + 64
				if hi > len(keys) {
					hi = len(keys)
				}
				if _, err := c.Insert("par", keys[lo:hi]); err != nil {
					errs <- err
					return
				}
				if found, err = c.Contains("par", keys[lo:hi], found); err != nil {
					errs <- err
					return
				}
				for _, ok := range found {
					if !ok {
						errs <- errors.New("just-inserted key absent")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOpTimeout(t *testing.T) {
	srv := startServer(t, Config{OpTimeout: time.Nanosecond})
	if _, err := srv.Registry().Create(Spec{Name: "slow", Kind: KindPlain, Capacity: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	// A 1ns budget always expires before the lock check, so every data op
	// reports the timeout status on both protocols.
	admin := NewAdmin("http://" + srv.HTTPAddr())
	if _, err := admin.InsertU64("slow", []uint64{1}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("HTTP timeout: %v", err)
	}
	c, err := Dial(srv.BinaryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert("slow", []uint64{1}); err == nil || !strings.Contains(err.Error(), "op timeout") {
		t.Fatalf("binary timeout: %v", err)
	}
	// Admin ops don't carry the data-plane deadline.
	if _, err := admin.List(); err != nil {
		t.Fatalf("admin list under tiny op timeout: %v", err)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	srv, err := New(Config{HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
