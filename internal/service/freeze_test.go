package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vqf/internal/workload"
)

// TestHTTPFreeze exercises the admin freeze op end-to-end: a churned
// elastic cascade retires old levels into fuse levels, keeps its live keys,
// still serves removes against the frozen tier, and a non-elastic filter
// rejects the op.
func TestHTTPFreeze(t *testing.T) {
	srv := startServer(t, Config{})
	admin := NewAdmin("http://" + srv.HTTPAddr())

	if _, err := admin.Create(Spec{Name: "cold", Kind: KindElastic, Capacity: 512, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	h, err := srv.reg.get("cold")
	if err != nil {
		t.Fatal(err)
	}
	live := churnElastic(t, h, 37, 20000)

	res, err := admin.Freeze("cold")
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelsFrozen == 0 || res.FuseLevels == 0 {
		t.Fatalf("freeze retired nothing: %+v", res)
	}
	ctx := context.Background()
	found, err := h.Contains(ctx, live, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("live key %d lost after admin freeze", i)
		}
	}
	// Removes against the frozen tier go to tombstones but must still count.
	cut := len(live) / 8
	if n, err := h.Remove(ctx, live[:cut]); err != nil || n != cut {
		t.Fatalf("remove after freeze %d/%d: %v", n, cut, err)
	}

	// A frozen cascade must snapshot and restore intact.
	dir := t.TempDir()
	if _, err := srv.reg.SnapshotTo(dir); err != nil {
		t.Fatal(err)
	}
	loaded, warns := LoadDir(dir)
	if len(warns) != 0 {
		t.Fatalf("frozen snapshot restored with warnings: %v", warns)
	}
	restored, err := loaded.get("cold")
	if err != nil {
		t.Fatal(err)
	}
	found, err = restored.Contains(ctx, live[cut:], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("restored frozen cascade lost live key %d", i)
		}
	}

	if _, err := admin.Create(Spec{Name: "flat2", Kind: KindPlain, Capacity: 4096}); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Freeze("flat2"); err == nil || !strings.Contains(err.Error(), "elastic") {
		t.Fatalf("freeze on a plain filter: %v", err)
	}
	if _, err := admin.Freeze("missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("freeze on a missing filter: %v", err)
	}
}

// TestFreezeNotElastic checks the hosted-level error for every non-elastic
// kind.
func TestFreezeNotElastic(t *testing.T) {
	reg := NewRegistry()
	for _, kind := range Kinds() {
		if kind == KindElastic {
			continue
		}
		name := "nf-" + string(kind)
		if _, err := reg.Create(Spec{Name: name, Kind: kind, Capacity: 4096}); err != nil {
			t.Fatal(err)
		}
		h, _ := reg.get(name)
		if _, err := h.Freeze(context.Background()); !errors.Is(err, ErrNotElastic) {
			t.Fatalf("%s: Freeze error %v, want ErrNotElastic", kind, err)
		}
	}
}

// TestFreezeKeepsServing races lookups and removes against an admin freeze
// on a hosted cascade: nothing may be lost and nothing may deadlock.
func TestFreezeKeepsServing(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create(Spec{Name: "serve", Kind: KindElastic, Capacity: 512, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	h, err := reg.get("serve")
	if err != nil {
		t.Fatal(err)
	}
	live := churnElastic(t, h, 53, 15000)
	ctx := context.Background()

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.Freeze(ctx)
		h.Freeze(ctx) // second pass: idempotent no-op
	}()
	extra := h.HashUint64s(workload.NewStream(99).Keys(3000), nil)
	h.Insert(ctx, extra)
	<-done

	found, err := h.Contains(ctx, live, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("live key %d lost across freeze", i)
		}
	}
}
