package service

import (
	"sort"
	"sync"

	"vqf"
)

// Registry is the set of named hosted filters a daemon serves. All
// methods are safe for concurrent use; the registry lock guards only the
// name→filter map (held for map lookups, never across filter
// operations), so data-plane traffic on different filters shares no
// lock at all.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*hosted
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]*hosted{}}
}

// Info is the list/inspect view of one hosted filter: its spec plus
// current structural numbers.
type Info struct {
	Spec
	Count      uint64  `json:"count"`
	SlotCap    uint64  `json:"slot_capacity"`
	LoadFactor float64 `json:"load_factor"`
	SizeBytes  uint64  `json:"size_bytes"`
}

// info snapshots one hosted filter's Info.
func (h *hosted) info() Info {
	count, capacity := h.Count(), h.Capacity()
	lf := 0.0
	if capacity > 0 {
		lf = float64(count) / float64(capacity)
	}
	return Info{Spec: h.spec, Count: count, SlotCap: capacity, LoadFactor: lf, SizeBytes: h.SizeBytes()}
}

// Create validates spec, constructs its filter, and registers it.
// It returns ErrExists if the name is taken.
func (r *Registry) Create(spec Spec) (Info, error) {
	if err := spec.normalize(); err != nil {
		return Info{}, err
	}
	h, err := newHosted(spec)
	if err != nil {
		return Info{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[spec.Name]; ok {
		return Info{}, ErrExists
	}
	r.m[spec.Name] = h
	return h.info(), nil
}

// Drop removes the named filter, returning ErrNotFound if absent. An
// in-flight operation holding the hosted lock completes normally; the
// filter's memory is reclaimed when the last reference drops.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; !ok {
		return ErrNotFound
	}
	delete(r.m, name)
	return nil
}

// get returns the named hosted filter.
func (r *Registry) get(name string) (*hosted, error) {
	r.mu.RLock()
	h, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return h, nil
}

// Len returns the number of hosted filters.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// List returns every hosted filter's Info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	hs := make([]*hosted, 0, len(r.m))
	for _, h := range r.m {
		hs = append(hs, h)
	}
	r.mu.RUnlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].spec.Name < hs[j].spec.Name })
	out := make([]Info, len(hs))
	for i, h := range hs {
		out[i] = h.info()
	}
	return out
}

// Sources returns the current filters as metrics sources for
// vqf.MetricsHandler. The daemon rebuilds the handler per scrape, so
// filters created after startup are exported too.
func (r *Registry) Sources() map[string]vqf.Source {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]vqf.Source, len(r.m))
	for name, h := range r.m {
		out[name] = h.Source()
	}
	return out
}

// EventSources returns the current filters' event rings for
// vqf.EventsHandler (kinds without a ring are omitted; the handler adds
// the process-global ring itself).
func (r *Registry) EventSources() map[string]vqf.EventSource {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]vqf.EventSource, len(r.m))
	for name, h := range r.m {
		if es := h.EventSource(); es != nil {
			out[name] = es
		}
	}
	return out
}

// snapshotSet returns the hosted filters sorted by name (the snapshot
// iteration order, so manifests are deterministic).
func (r *Registry) snapshotSet() []*hosted {
	r.mu.RLock()
	hs := make([]*hosted, 0, len(r.m))
	for _, h := range r.m {
		hs = append(hs, h)
	}
	r.mu.RUnlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].spec.Name < hs[j].spec.Name })
	return hs
}

// replace atomically swaps the registry contents for the given set (the
// restore path). In-flight operations on replaced filters complete
// against the old instances.
func (r *Registry) replace(m map[string]*hosted) {
	r.mu.Lock()
	r.m = m
	r.mu.Unlock()
}
