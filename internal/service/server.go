package service

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures one Server.
type Config struct {
	// HTTPAddr is the admin+data HTTP listen address (host:port; port 0
	// picks a free port). Empty means "127.0.0.1:0".
	HTTPAddr string
	// BinaryAddr is the binary-protocol listen address; empty disables the
	// binary listener.
	BinaryAddr string
	// DataDir is the snapshot directory. Empty disables persistence: no
	// warm restart, no periodic or shutdown snapshots, and the snapshot
	// admin endpoint reports failure.
	DataDir string
	// SnapshotEvery, when positive, snapshots the registry to DataDir on
	// this period in addition to the final shutdown snapshot.
	SnapshotEvery time.Duration
	// OpTimeout bounds how long a data-plane request may wait for its
	// filter (queued behind a snapshot or another request on a sequential
	// filter) before being rejected. 0 means 5s.
	OpTimeout time.Duration
	// MaxFrameBytes bounds one binary frame's payload; 0 means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Logf receives operational log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Server hosts a Registry behind the two listeners. Create with New,
// start with Start, stop with Shutdown.
type Server struct {
	cfg Config
	reg *Registry
	// loadWarns holds warm-restart warnings for the daemon to log.
	loadWarns []error

	httpLn  net.Listener
	binLn   net.Listener
	httpSrv *http.Server

	// draining flips once at shutdown: binary connections stop reading new
	// frames after their in-flight response is flushed.
	draining atomic.Bool
	// connMu/conns tracks live binary connections so Shutdown can nudge
	// reads blocked on idle sockets; connWg waits for their handlers to
	// finish flushing acknowledged responses.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWg sync.WaitGroup

	// stopBg stops the periodic-snapshot loop.
	stopBg chan struct{}
	bgWg   sync.WaitGroup

	// snapMu serializes whole-registry snapshots (periodic vs admin vs
	// shutdown) so two writers never race on the manifest.
	snapMu sync.Mutex
}

// New builds a server, performing the warm restart from cfg.DataDir when
// one is configured: every filter recorded in the snapshot manifest is
// deserialized and hosted again under its original name, kind and seed.
// Per-filter load problems become Warnings, never construction errors.
func New(cfg Config) (*Server, error) {
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{
		cfg:    cfg,
		reg:    NewRegistry(),
		conns:  map[net.Conn]struct{}{},
		stopBg: make(chan struct{}),
	}
	if cfg.DataDir != "" {
		reg, warns := LoadDir(cfg.DataDir)
		s.reg = reg
		s.loadWarns = warns
	}
	return s, nil
}

// Registry returns the server's filter registry (shared, live).
func (s *Server) Registry() *Registry { return s.reg }

// Warnings returns the warm-restart warnings collected by New.
func (s *Server) Warnings() []error { return s.loadWarns }

// Start binds the listeners and begins serving. The bound addresses are
// available from HTTPAddr/BinaryAddr afterwards (useful with port 0).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("service: listen http %s: %w", s.cfg.HTTPAddr, err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.httpHandler()}
	go func() {
		if err := s.httpSrv.Serve(s.httpLn); err != nil && err != http.ErrServerClosed {
			s.cfg.Logf("vqfd: http serve: %v", err)
		}
	}()
	if s.cfg.BinaryAddr != "" {
		bln, err := net.Listen("tcp", s.cfg.BinaryAddr)
		if err != nil {
			s.httpSrv.Close()
			return fmt.Errorf("service: listen binary %s: %w", s.cfg.BinaryAddr, err)
		}
		s.binLn = bln
		go s.serveBinary()
	}
	if s.cfg.DataDir != "" && s.cfg.SnapshotEvery > 0 {
		s.bgWg.Add(1)
		go s.snapshotLoop()
	}
	return nil
}

// HTTPAddr returns the bound HTTP address (after Start).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// BinaryAddr returns the bound binary-protocol address (after Start), or
// "" when the binary listener is disabled.
func (s *Server) BinaryAddr() string {
	if s.binLn == nil {
		return ""
	}
	return s.binLn.Addr().String()
}

// snapshotLoop runs the periodic snapshot until shutdown.
func (s *Server) snapshotLoop() {
	defer s.bgWg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := s.SnapshotNow(); err != nil {
				s.cfg.Logf("vqfd: periodic snapshot: %v", err)
			}
		case <-s.stopBg:
			return
		}
	}
}

// SnapshotNow writes a snapshot of the current registry to the
// configured data directory.
func (s *Server) SnapshotNow() (Manifest, error) {
	if s.cfg.DataDir == "" {
		return Manifest{}, fmt.Errorf("service: no data directory configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.reg.SnapshotTo(s.cfg.DataDir)
}

// ReloadFromDisk replaces the registry contents with the last committed
// snapshot (the admin restore operation). Returns the number of filters
// loaded plus per-filter warnings.
func (s *Server) ReloadFromDisk() (int, []error, error) {
	if s.cfg.DataDir == "" {
		return 0, nil, fmt.Errorf("service: no data directory configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	reg, warns := LoadDir(s.cfg.DataDir)
	s.reg.replace(reg.m)
	return s.reg.Len(), warns, nil
}

// Shutdown drains and stops the server: stop accepting, let every
// in-flight request finish and flush its response, then — with the data
// plane quiescent — write the final snapshot. An insert acknowledged on
// either protocol before Shutdown returns is therefore in the snapshot;
// that is the warm-restart durability contract SIGTERM relies on. The
// context bounds the drain; expiry force-closes stragglers (losing only
// un-acknowledged work) but the final snapshot is still written.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil // already shut down
	}
	close(s.stopBg)

	// Binary plane: stop accepting, nudge idle reads, wait for handlers.
	if s.binLn != nil {
		s.binLn.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now()) // unblock reads waiting for a next frame
	}
	s.connMu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = fmt.Errorf("service: drain: %w", ctx.Err())
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
	}

	// HTTP plane: net/http's Shutdown drains in-flight handlers.
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("service: http drain: %w", err)
		}
	}
	s.bgWg.Wait()

	if s.cfg.DataDir != "" {
		if _, err := s.SnapshotNow(); err != nil {
			return fmt.Errorf("service: final snapshot: %w", err)
		}
	}
	return drainErr
}

// opContext returns the per-operation deadline context.
func (s *Server) opContext(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, s.cfg.OpTimeout)
}
