package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client speaks the binary data-plane protocol to a vqfd. It is the
// shared client code the examples, the CLI and the load harness build
// on. A Client is NOT safe for concurrent use — it owns one connection
// and its reusable buffers; use one Client per goroutine (they are
// cheap: one TCP connection and a few KiB of scratch each).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// out accumulates the encoded request; in holds response payloads.
	out  []byte
	in   []byte
	resp response
}

// Dial connects a binary-protocol client to addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // request-response: don't Nagle-delay small frames
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one request frame and reads its response.
func (c *Client) do(op, flags byte, name string, keys []uint64, vals []byte) (*response, error) {
	out, err := appendRequest(c.out[:0], op, flags, name, keys, vals)
	c.out = out
	if err != nil {
		return nil, err
	}
	if _, err := c.bw.Write(out); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.br, c.in, DefaultMaxFrameBytes)
	c.in = payload[:cap(payload)]
	if err != nil {
		return nil, err
	}
	if err := parseResponse(payload, &c.resp); err != nil {
		return nil, err
	}
	if c.resp.status != statusOK {
		return &c.resp, fmt.Errorf("service: %s %q: %s", opName(op), name, statusText(c.resp.status))
	}
	return &c.resp, nil
}

// opName names a wire op for error messages.
func opName(op byte) string {
	switch op {
	case opInsert:
		return "insert"
	case opContains:
		return "contains"
	case opRemove:
		return "remove"
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opPing:
		return "ping"
	}
	return fmt.Sprintf("op%d", op)
}

// Ping round-trips an empty frame (liveness check).
func (c *Client) Ping() error {
	_, err := c.do(opPing, 0, "", nil, nil)
	return err
}

// Insert inserts a batch of raw 64-bit keys into the named filter,
// returning how many were stored (the rest hit full blocks).
func (c *Client) Insert(name string, keys []uint64) (int, error) {
	resp, err := c.do(opInsert, 0, name, keys, nil)
	if err != nil {
		return 0, err
	}
	return int(resp.count), nil
}

// Contains reports membership for a batch of raw keys, in input order.
// dst is reused when large enough.
func (c *Client) Contains(name string, keys []uint64, dst []bool) ([]bool, error) {
	resp, err := c.do(opContains, 0, name, keys, nil)
	if err != nil {
		return dst, err
	}
	return unpackBools(resp.body, len(keys), dst)
}

// Remove removes one instance of each raw key, returning how many were
// found and removed.
func (c *Client) Remove(name string, keys []uint64) (int, error) {
	resp, err := c.do(opRemove, 0, name, keys, nil)
	if err != nil {
		return 0, err
	}
	return int(resp.count), nil
}

// Put stores key→value pairs on a map filter (vals[i] rides with
// keys[i]), returning how many were stored.
func (c *Client) Put(name string, keys []uint64, vals []byte) (int, error) {
	resp, err := c.do(opPut, 0, name, keys, vals)
	if err != nil {
		return 0, err
	}
	return int(resp.count), nil
}

// Update rewrites the values of already-stored keys on a map filter,
// returning how many keys were found and updated.
func (c *Client) Update(name string, keys []uint64, vals []byte) (int, error) {
	resp, err := c.do(opPut, flagUpdate, name, keys, vals)
	if err != nil {
		return 0, err
	}
	return int(resp.count), nil
}

// Get looks up values on a map filter: found[i] reports presence,
// vals[i] the stored byte. Both slices are reused when large enough.
func (c *Client) Get(name string, keys []uint64, vals []byte, found []bool) ([]byte, []bool, error) {
	resp, err := c.do(opGet, 0, name, keys, nil)
	if err != nil {
		return vals, found, err
	}
	bitmap := (len(keys) + 7) / 8
	if len(resp.body) < bitmap+len(keys) {
		return vals, found, fmt.Errorf("service: get response body %d bytes for %d keys", len(resp.body), len(keys))
	}
	found, err = unpackBools(resp.body[:bitmap], len(keys), found)
	if err != nil {
		return vals, found, err
	}
	if cap(vals) < len(keys) {
		vals = make([]byte, len(keys))
	}
	vals = vals[:len(keys)]
	copy(vals, resp.body[bitmap:])
	return vals, found, nil
}

// Admin speaks the HTTP admin+data API of a vqfd.
type Admin struct {
	base string
	hc   *http.Client
}

// NewAdmin returns an admin client for the daemon's HTTP base URL
// (e.g. "http://127.0.0.1:7071").
func NewAdmin(base string) *Admin {
	return &Admin{base: strings.TrimRight(base, "/"), hc: &http.Client{Timeout: 60 * time.Second}}
}

// doJSON performs one JSON request; out may be nil to discard the body.
func (a *Admin) doJSON(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, a.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return fmt.Errorf("service: %s %s: %s (%s)", method, path, resp.Status, e.Error)
		}
		return fmt.Errorf("service: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Create registers a new filter from spec.
func (a *Admin) Create(spec Spec) (Info, error) {
	var info Info
	err := a.doJSON("POST", "/v1/filters", spec, &info)
	return info, err
}

// Drop removes the named filter.
func (a *Admin) Drop(name string) error {
	return a.doJSON("DELETE", "/v1/filters/"+name, nil, nil)
}

// List returns every hosted filter's Info.
func (a *Admin) List() ([]Info, error) {
	var out struct {
		Filters []Info `json:"filters"`
	}
	err := a.doJSON("GET", "/v1/filters", nil, &out)
	return out.Filters, err
}

// Inspect returns one filter's Info.
func (a *Admin) Inspect(name string) (Info, error) {
	var info Info
	err := a.doJSON("GET", "/v1/filters/"+name, nil, &info)
	return info, err
}

// SnapshotResult summarizes a snapshot or restore admin call.
type SnapshotResult struct {
	Dir      string   `json:"dir"`
	Filters  int      `json:"filters"`
	Bytes    int64    `json:"bytes"`
	Warnings []string `json:"warnings"`
}

// Snapshot asks the daemon to write a snapshot to its data directory.
func (a *Admin) Snapshot() (SnapshotResult, error) {
	var res SnapshotResult
	err := a.doJSON("POST", "/v1/snapshot", nil, &res)
	return res, err
}

// Restore asks the daemon to reload its registry from the last committed
// snapshot in its data directory.
func (a *Admin) Restore() (SnapshotResult, error) {
	var res SnapshotResult
	err := a.doJSON("POST", "/v1/restore", nil, &res)
	return res, err
}

// InsertU64 inserts raw keys over the HTTP data plane (the slow,
// JSON-encoded path; the binary Client is the fast one).
func (a *Admin) InsertU64(name string, keys []uint64) (int, error) {
	var out struct {
		Inserted int `json:"inserted"`
	}
	err := a.doJSON("POST", "/v1/filters/"+name+"/insert", map[string]any{"u64": keys}, &out)
	return out.Inserted, err
}

// ContainsU64 queries raw keys over the HTTP data plane.
func (a *Admin) ContainsU64(name string, keys []uint64) ([]bool, error) {
	var out struct {
		Found []bool `json:"found"`
	}
	err := a.doJSON("POST", "/v1/filters/"+name+"/contains", map[string]any{"u64": keys}, &out)
	return out.Found, err
}

// RemoveU64 removes raw keys over the HTTP data plane.
func (a *Admin) RemoveU64(name string, keys []uint64) (int, error) {
	var out struct {
		Removed int `json:"removed"`
	}
	err := a.doJSON("POST", "/v1/filters/"+name+"/remove", map[string]any{"u64": keys}, &out)
	return out.Removed, err
}

// CompactResult reports one admin-triggered cascade compaction.
type CompactResult struct {
	LevelsBefore int `json:"levels_before"`
	LevelsAfter  int `json:"levels_after"`
	LevelsMerged int `json:"levels_merged"`
}

// Compact asks the daemon to compact an elastic filter's cascade, merging
// runs of sparse old levels. Non-elastic filters report an error.
func (a *Admin) Compact(name string) (CompactResult, error) {
	var res CompactResult
	err := a.doJSON("POST", "/v1/filters/"+name+"/compact", map[string]any{}, &res)
	return res, err
}

// FreezeResult reports one admin-triggered freeze pass.
type FreezeResult struct {
	LevelsBefore int `json:"levels_before"`
	LevelsAfter  int `json:"levels_after"`
	LevelsFrozen int `json:"levels_frozen"`
	FuseLevels   int `json:"fuse_levels"`
}

// Freeze asks the daemon to rebuild an elastic filter's qualifying old
// levels into immutable fuse levels. Non-elastic filters report an error.
func (a *Admin) Freeze(name string) (FreezeResult, error) {
	var res FreezeResult
	err := a.doJSON("POST", "/v1/filters/"+name+"/freeze", map[string]any{}, &res)
	return res, err
}
