package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"vqf/internal/workload"
)

// churnElastic drives a hosted elastic filter deep into a sparse cascade:
// insert enough to stack levels, then remove an old prefix. Returns the
// still-live key hashes.
func churnElastic(t *testing.T, h *hosted, seed uint64, total int) []uint64 {
	t.Helper()
	ctx := context.Background()
	hs := h.HashUint64s(workload.NewStream(seed).Keys(total), nil)
	if n, err := h.Insert(ctx, hs); err != nil || n != total {
		t.Fatalf("insert %d/%d: %v", n, total, err)
	}
	cut := total * 3 / 4
	if n, err := h.Remove(ctx, hs[:cut]); err != nil || n != cut {
		t.Fatalf("remove %d/%d: %v", n, cut, err)
	}
	return hs[cut:]
}

// TestHTTPCompact exercises the admin compact op end-to-end: a churned
// elastic cascade shrinks its level count, keeps its live keys, and a
// non-elastic filter rejects the op.
func TestHTTPCompact(t *testing.T) {
	srv := startServer(t, Config{})
	admin := NewAdmin("http://" + srv.HTTPAddr())

	if _, err := admin.Create(Spec{Name: "grow", Kind: KindElastic, Capacity: 512, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	h, err := srv.reg.get("grow")
	if err != nil {
		t.Fatal(err)
	}
	live := churnElastic(t, h, 31, 20000)

	res, err := admin.Compact("grow")
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelsMerged == 0 || res.LevelsAfter >= res.LevelsBefore {
		t.Fatalf("compaction did not shrink the cascade: %+v", res)
	}
	found, err := h.Contains(context.Background(), live, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("live key %d lost after admin compaction", i)
		}
	}

	if _, err := admin.Create(Spec{Name: "flat", Kind: KindPlain, Capacity: 4096}); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Compact("flat"); err == nil || !strings.Contains(err.Error(), "elastic") {
		t.Fatalf("compact on a plain filter: %v", err)
	}
	if _, err := admin.Compact("missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("compact on a missing filter: %v", err)
	}
}

// TestCompactNotElastic checks the hosted-level error for every
// non-elastic kind.
func TestCompactNotElastic(t *testing.T) {
	reg := NewRegistry()
	for _, kind := range Kinds() {
		if kind == KindElastic {
			continue
		}
		name := "ne-" + string(kind)
		if _, err := reg.Create(Spec{Name: name, Kind: kind, Capacity: 4096}); err != nil {
			t.Fatal(err)
		}
		h, _ := reg.get(name)
		if _, err := h.Compact(context.Background()); !errors.Is(err, ErrNotElastic) {
			t.Fatalf("%s: Compact error %v, want ErrNotElastic", kind, err)
		}
	}
}

// TestSnapshotDuringCompaction is the snapshot-consistency test: snapshots
// race a loop of compactions and churn on a hosted elastic filter. The
// hosted write lock orders each snapshot entirely before or after any
// compaction, so every snapshot must restore to a filter that answers true
// for every key live at that snapshot's cut — never a torn level list.
func TestSnapshotDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.Create(Spec{Name: "snap", Kind: KindElastic, Capacity: 512, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	h, err := reg.get("snap")
	if err != nil {
		t.Fatal(err)
	}
	// Stable live set, established before the race: every snapshot must
	// contain it regardless of where it lands relative to a compaction.
	stable := churnElastic(t, h, 41, 15000)

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		churnStream := workload.NewStream(77)
		for {
			select {
			case <-stop:
				return
			default:
			}
			hs := h.HashUint64s(churnStream.Keys(2000), nil)
			h.Insert(ctx, hs)
			h.Remove(ctx, hs[:1500])
			h.Compact(ctx)
		}
	}()

	for i := 0; i < 8; i++ {
		man, err := reg.SnapshotTo(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(man.Filters) != 1 {
			t.Fatalf("manifest filters %d", len(man.Filters))
		}
		loaded, warns := LoadDir(dir)
		if len(warns) != 0 {
			t.Fatalf("snapshot %d restored with warnings: %v", i, warns)
		}
		restored, err := loaded.get("snap")
		if err != nil {
			t.Fatal(err)
		}
		found, err := restored.Contains(ctx, stable, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j, ok := range found {
			if !ok {
				t.Fatalf("snapshot %d: stable key %d missing from restored filter", i, j)
			}
		}
	}
	close(stop)
	wg.Wait()
}
