package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vqf/internal/workload"
)

// TestWarmRestartAllKinds round-trips every hostable kind through
// snapshot → LoadDir and verifies counts, membership, and (for the map
// kind) stored values survive.
func TestWarmRestartAllKinds(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	ctx := context.Background()
	const n = 4000
	keys := workload.NewStream(21).Keys(n)
	for _, kind := range Kinds() {
		name := "wr-" + string(kind)
		if _, err := reg.Create(Spec{Name: name, Kind: kind, Capacity: 1 << 14, Seed: 99}); err != nil {
			t.Fatalf("create %s: %v", kind, err)
		}
		h, err := reg.get(name)
		if err != nil {
			t.Fatal(err)
		}
		hs := h.HashUint64s(keys, nil)
		if kind == KindMap {
			vals := make([]byte, n)
			for i := range vals {
				vals[i] = byte(i * 7)
			}
			if got, err := h.Put(ctx, hs, vals, false); err != nil || got != n {
				t.Fatalf("%s put %d/%d: %v", kind, got, n, err)
			}
		} else {
			if got, err := h.Insert(ctx, hs); err != nil || got != n {
				t.Fatalf("%s insert %d/%d: %v", kind, got, n, err)
			}
		}
	}

	man, err := reg.SnapshotTo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Filters) != len(Kinds()) {
		t.Fatalf("manifest has %d filters, want %d", len(man.Filters), len(Kinds()))
	}

	loaded, warns := LoadDir(dir)
	if len(warns) != 0 {
		t.Fatalf("warnings on clean load: %v", warns)
	}
	for _, kind := range Kinds() {
		name := "wr-" + string(kind)
		orig, _ := reg.get(name)
		h, err := loaded.get(name)
		if err != nil {
			t.Fatalf("%s missing after restart", kind)
		}
		if got, want := h.Count(), orig.Count(); got != want {
			t.Fatalf("%s count %d after restart, want %d", kind, got, want)
		}
		if h.spec.Seed != 99 {
			t.Fatalf("%s seed %d after restart, want 99", kind, h.spec.Seed)
		}
		hs := h.HashUint64s(keys, nil)
		found, err := h.Contains(ctx, hs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range found {
			if !ok {
				t.Fatalf("%s key %d absent after restart", kind, i)
			}
		}
		if kind == KindMap {
			// Fingerprint collisions can make a stored key resolve to another
			// key's value, so the contract is bit-parity with the pre-snapshot
			// filter, not the originally-written values.
			wantVals, wantFound, err := orig.Get(ctx, hs, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			vals, vfound, err := h.Get(ctx, hs, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range hs {
				if vfound[i] != wantFound[i] || vals[i] != wantVals[i] {
					t.Fatalf("map key %d diverged across restart: found=%v val=%d, want found=%v val=%d",
						i, vfound[i], vals[i], wantFound[i], wantVals[i])
				}
			}
		}
	}
}

func TestLoadDirColdStart(t *testing.T) {
	reg, warns := LoadDir(filepath.Join(t.TempDir(), "nonexistent"))
	if len(warns) != 0 || reg.Len() != 0 {
		t.Fatalf("cold start: %d filters, warns %v", reg.Len(), warns)
	}
}

func TestLoadDirCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, warns := LoadDir(dir)
	if reg.Len() != 0 {
		t.Fatalf("corrupt manifest loaded %d filters", reg.Len())
	}
	if len(warns) != 1 || !strings.Contains(warns[0].Error(), "corrupt manifest") {
		t.Fatalf("warnings: %v", warns)
	}
}

// TestLoadDirTruncatedFile corrupts one filter file; the rest of the
// snapshot must still load, with a warning naming the loss.
func TestLoadDirTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	ctx := context.Background()
	keys := workload.NewStream(5).Keys(1000)
	for _, name := range []string{"keep", "lose"} {
		if _, err := reg.Create(Spec{Name: name, Kind: KindPlain, Capacity: 1 << 12}); err != nil {
			t.Fatal(err)
		}
		h, _ := reg.get(name)
		if _, err := h.Insert(ctx, h.HashUint64s(keys, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.SnapshotTo(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "lose"+snapshotSuffix)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	loaded, warns := LoadDir(dir)
	if len(warns) != 1 || !strings.Contains(warns[0].Error(), `"lose"`) {
		t.Fatalf("warnings: %v", warns)
	}
	if _, err := loaded.get("lose"); err == nil {
		t.Fatal("truncated filter loaded anyway")
	}
	h, err := loaded.get("keep")
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 1000 {
		t.Fatalf("intact filter count %d after partial restart", h.Count())
	}
}

// TestLoadDirBitFlip flips one byte mid-file; the CRC must catch it.
func TestLoadDirBitFlip(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	if _, err := reg.Create(Spec{Name: "crc", Kind: KindConcurrent, Capacity: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	h, _ := reg.get("crc")
	if _, err := h.Insert(context.Background(), h.HashUint64s(workload.NewStream(6).Keys(500), nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SnapshotTo(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "crc"+snapshotSuffix)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, warns := LoadDir(dir)
	if loaded.Len() != 0 {
		t.Fatal("bit-flipped filter loaded anyway")
	}
	if len(warns) != 1 || !strings.Contains(warns[0].Error(), "CRC mismatch") {
		t.Fatalf("warnings: %v", warns)
	}
}

// TestSnapshotRemovesStale drops a filter between snapshots; the second
// snapshot must delete its orphaned file.
func TestSnapshotRemovesStale(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	for _, name := range []string{"a", "b"} {
		if _, err := reg.Create(Spec{Name: name, Kind: KindPlain, Capacity: 1 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.SnapshotTo(dir); err != nil {
		t.Fatal(err)
	}
	if err := reg.Drop("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SnapshotTo(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b"+snapshotSuffix)); !os.IsNotExist(err) {
		t.Fatalf("dropped filter's file still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a"+snapshotSuffix)); err != nil {
		t.Fatalf("live filter's file missing: %v", err)
	}
	loaded, warns := LoadDir(dir)
	if len(warns) != 0 || loaded.Len() != 1 {
		t.Fatalf("reload after drop: %d filters, warns %v", loaded.Len(), warns)
	}
}

// TestServerFinalSnapshot checks the Shutdown contract end to end in
// process: inserts acknowledged over the binary protocol are present after
// constructing a new server on the same data directory.
func TestServerFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv := startServer(t, Config{DataDir: dir})
	if _, err := srv.Registry().Create(Spec{Name: "durable", Kind: KindSharded, Capacity: 1 << 14}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.BinaryAddr())
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.NewStream(33).Keys(2500)
	if n, err := c.Insert("durable", keys); err != nil || n != len(keys) {
		t.Fatalf("insert %d: %v", n, err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{HTTPAddr: "127.0.0.1:0", DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(srv2.Warnings()) != 0 {
		t.Fatalf("restart warnings: %v", srv2.Warnings())
	}
	h, err := srv2.Registry().get("durable")
	if err != nil {
		t.Fatal(err)
	}
	found, err := h.Contains(context.Background(), h.HashUint64s(keys, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if !ok {
			t.Fatalf("acknowledged key %d lost across restart", i)
		}
	}
}
