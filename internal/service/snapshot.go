package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Snapshot persistence. A snapshot directory holds one serialized filter
// per hosted name (<name>.vqf, the existing envelope streams written by
// WriteTo) plus MANIFEST.json naming the set. Writes are crash-safe by
// ordering: every filter file is written to a .tmp sibling, fsynced and
// renamed before the manifest is; the manifest itself commits the same
// way, so a reader either sees the previous complete snapshot or the new
// one, never a torn mix. Each manifest entry records the filter's spec
// (kind, seed — required to reconstruct and to hash raw keys
// identically), byte length, CRC32 and item count, so truncated or
// corrupted filter files are detected and skipped at warm restart instead
// of being loaded as garbage.

// ManifestName is the snapshot directory's manifest file name.
const ManifestName = "MANIFEST.json"

// manifestVersion is bumped when the directory layout changes.
const manifestVersion = 1

// snapshotSuffix is the per-filter file suffix.
const snapshotSuffix = ".vqf"

// ManifestEntry records one serialized filter.
type ManifestEntry struct {
	Spec
	// File is the filter's file name within the snapshot directory.
	File string `json:"file"`
	// Bytes and CRC32 (IEEE) fingerprint the file's exact content.
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
	// Count is the filter's item count at snapshot time; a mismatch after
	// deserialization marks the file corrupt.
	Count uint64 `json:"count"`
}

// Manifest names the filters of one complete snapshot.
type Manifest struct {
	Version int             `json:"version"`
	SavedAt time.Time       `json:"saved_at"`
	Filters []ManifestEntry `json:"filters"`
}

// crcWriter tees writes into a CRC32 and a byte count.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// writeFileAtomic writes one filter to dir/name via tmp+fsync+rename and
// returns its length and CRC.
func writeFileAtomic(dir, name string, h *hosted) (int64, uint32, error) {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := h.writeTo(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := cw.w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	return cw.n, cw.crc, nil
}

// syncDir fsyncs a directory so completed renames survive power loss.
// Errors are ignored on filesystems that reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// SnapshotTo writes a complete snapshot of the registry into dir,
// creating it as needed, and returns the committed manifest. Each filter
// is written under its own write lock (quiescent, so WriteTo's
// concurrent-writer check never trips); filters are locked one at a
// time, so traffic on the others continues while each is written. After
// the manifest commits, filter files from dropped names are removed.
func (r *Registry) SnapshotTo(dir string) (Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, err
	}
	man := Manifest{Version: manifestVersion, SavedAt: time.Now().UTC()}
	for _, h := range r.snapshotSet() {
		file := h.spec.Name + snapshotSuffix
		h.mu.Lock()
		count := h.Count()
		n, crc, err := writeFileAtomic(dir, file, h)
		h.mu.Unlock()
		if err != nil {
			return Manifest{}, fmt.Errorf("service: snapshot %q: %w", h.spec.Name, err)
		}
		man.Filters = append(man.Filters, ManifestEntry{
			Spec: h.spec, File: file, Bytes: n, CRC32: crc, Count: count,
		})
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return Manifest{}, err
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return Manifest{}, err
	}
	syncDir(dir)
	removeStale(dir, man)
	return man, nil
}

// removeStale deletes filter files the committed manifest no longer
// references (dropped filters, abandoned tmp files).
func removeStale(dir string, man Manifest) {
	live := make(map[string]bool, len(man.Filters))
	for _, e := range man.Filters {
		live[e.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		name := de.Name()
		stale := strings.HasSuffix(name, ".tmp") ||
			(strings.HasSuffix(name, snapshotSuffix) && !live[name])
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// LoadDir reconstructs a registry from a snapshot directory (the warm
// restart). It is deliberately forgiving: a missing directory or
// manifest yields an empty registry; a corrupt manifest or a filter file
// whose length, CRC or item count disagrees with its manifest entry
// yields a warning for that unit while everything verifiable still
// loads. The daemon always starts; warnings tell the operator what was
// lost.
func LoadDir(dir string) (*Registry, []error) {
	reg := NewRegistry()
	var warns []error
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return reg, nil // cold start: nothing persisted yet
		}
		return reg, []error{fmt.Errorf("service: reading manifest: %w", err)}
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return reg, []error{fmt.Errorf("service: corrupt manifest (starting empty): %w", err)}
	}
	if man.Version != manifestVersion {
		return reg, []error{fmt.Errorf("service: manifest version %d unsupported (want %d)", man.Version, manifestVersion)}
	}
	m := make(map[string]*hosted, len(man.Filters))
	for _, e := range man.Filters {
		h, err := loadEntry(dir, e)
		if err != nil {
			warns = append(warns, fmt.Errorf("service: skipping %q: %w", e.Name, err))
			continue
		}
		m[e.Name] = h
	}
	reg.replace(m)
	return reg, warns
}

// loadEntry verifies and deserializes one manifest entry.
func loadEntry(dir string, e ManifestEntry) (*hosted, error) {
	spec := e.Spec
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	if filepath.Base(e.File) != e.File || !strings.HasSuffix(e.File, snapshotSuffix) {
		return nil, fmt.Errorf("manifest names invalid file %q", e.File)
	}
	buf, err := os.ReadFile(filepath.Join(dir, e.File))
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) != e.Bytes {
		return nil, fmt.Errorf("file is %d bytes, manifest says %d (truncated?)", len(buf), e.Bytes)
	}
	if crc := crc32.ChecksumIEEE(buf); crc != e.CRC32 {
		return nil, fmt.Errorf("CRC mismatch (file %08x, manifest %08x)", crc, e.CRC32)
	}
	h, err := readHosted(spec, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	if got := h.Count(); got != e.Count {
		return nil, fmt.Errorf("deserialized count %d, manifest says %d", got, e.Count)
	}
	return h, nil
}
