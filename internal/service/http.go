package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"vqf"
)

// HTTP API. Admin surface:
//
//	POST   /v1/filters          create (body: Spec)           → Info
//	GET    /v1/filters          list                          → {"filters":[Info]}
//	GET    /v1/filters/{name}   inspect                       → Info
//	DELETE /v1/filters/{name}   drop                          → 204
//	POST   /v1/snapshot         snapshot registry to DataDir  → summary
//	POST   /v1/restore          reload registry from DataDir  → summary
//	GET    /healthz             liveness                      → {"status":"ok"}
//
// Data surface (per filter; keys as strings and/or raw uint64s):
//
//	POST /v1/filters/{name}/insert    {"keys":[...], "u64":[...]}            → {"inserted":n}
//	POST /v1/filters/{name}/contains  {"keys":[...], "u64":[...]}            → {"found":[bool]}
//	POST /v1/filters/{name}/remove    {"keys":[...], "u64":[...]}            → {"removed":n}
//	POST /v1/filters/{name}/put       {"u64":[...], "values":[0..255], "update":bool} → {"stored":n}
//	POST /v1/filters/{name}/get       {"keys":[...], "u64":[...]}            → {"found":[bool],"values":[n]}
//	POST /v1/filters/{name}/compact   {}                                     → {"levels_before","levels_after","levels_merged"}
//	POST /v1/filters/{name}/freeze    {}                                     → {"levels_before","levels_after","levels_frozen","fuse_levels"}
//
// Observability: /metrics (Prometheus text) and /debug/vqf/events (JSON)
// are rebuilt from the live registry per scrape, so filters created after
// startup are exported without re-mounting anything.
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/filters", s.handleCreate)
	mux.HandleFunc("GET /v1/filters", s.handleList)
	mux.HandleFunc("GET /v1/filters/{name}", s.handleInspect)
	mux.HandleFunc("DELETE /v1/filters/{name}", s.handleDrop)
	mux.HandleFunc("POST /v1/filters/{name}/{op}", s.handleData)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/restore", s.handleRestore)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		vqf.MetricsHandler(s.reg.Sources()).ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /debug/vqf/events", func(w http.ResponseWriter, r *http.Request) {
		vqf.EventsHandler(s.reg.EventSources()).ServeHTTP(w, r)
	})
	return mux
}

// maxJSONBody bounds request bodies (a 512-key u64 batch is ~10 KiB; this
// allows far larger bulk loads while stopping unbounded reads).
const maxJSONBody = 64 << 20

// httpError writes a JSON error with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decodeJSON decodes the request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxJSONBody))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// opError maps a service error to its HTTP response.
func opError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrExists):
		httpError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrWrongKind), errors.Is(err, ErrNotElastic):
		httpError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, errTimeout):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// errTimeout matches per-op deadline expiry from hosted.lockOp.
var errTimeout = errors.New("service: op timeout")

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := decodeJSON(r, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	info, err := s.reg.Create(spec)
	if err != nil {
		opError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"filters": s.reg.List()})
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	h, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		opError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, h.info())
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Drop(r.PathValue("name")); err != nil {
		opError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// dataRequest is the shared data-plane body: string keys, raw uint64
// keys, or both (u64 keys are processed after string keys; responses
// follow that order).
type dataRequest struct {
	Keys   []string `json:"keys,omitempty"`
	U64    []uint64 `json:"u64,omitempty"`
	Values []int    `json:"values,omitempty"`
	Update bool     `json:"update,omitempty"`
}

// hashKeys renders the request's combined key list as filter hashes.
func (d *dataRequest) hashKeys(h *hosted) []uint64 {
	hs := make([]uint64, 0, len(d.Keys)+len(d.U64))
	hs = h.HashStrings(d.Keys, hs[:0])
	if len(d.U64) > 0 {
		tail := h.HashUint64s(d.U64, nil)
		hs = append(hs, tail...)
	}
	return hs
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	h, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		opError(w, err)
		return
	}
	var body dataRequest
	if err := decodeJSON(r, &body); err != nil {
		httpError(w, http.StatusBadRequest, "decoding keys: %v", err)
		return
	}
	hs := body.hashKeys(h)
	ctx, cancel := s.opContext(r.Context())
	defer cancel()
	wrap := func(err error) error {
		if errors.Is(err, context.DeadlineExceeded) {
			return errTimeout
		}
		return err
	}
	switch r.PathValue("op") {
	case "insert":
		n, err := h.Insert(ctx, hs)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"inserted": n})
	case "contains":
		found, err := h.Contains(ctx, hs, nil)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"found": found})
	case "remove":
		n, err := h.Remove(ctx, hs)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"removed": n})
	case "put":
		if len(body.Values) != len(hs) {
			httpError(w, http.StatusBadRequest, "%d values for %d keys", len(body.Values), len(hs))
			return
		}
		vals := make([]byte, len(body.Values))
		for i, v := range body.Values {
			if v < 0 || v > 255 {
				httpError(w, http.StatusBadRequest, "value %d outside [0,255]", v)
				return
			}
			vals[i] = byte(v)
		}
		n, err := h.Put(ctx, hs, vals, body.Update)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"stored": n})
	case "get":
		vals, found, err := h.Get(ctx, hs, nil, nil)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		ints := make([]int, len(vals))
		for i, v := range vals {
			ints[i] = int(v)
		}
		writeJSON(w, http.StatusOK, map[string]any{"found": found, "values": ints})
	case "compact":
		res, err := h.Compact(ctx)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{
			"levels_before": res.LevelsBefore,
			"levels_after":  res.LevelsAfter,
			"levels_merged": res.LevelsMerged,
		})
	case "freeze":
		res, err := h.Freeze(ctx)
		if err != nil {
			opError(w, wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{
			"levels_before": res.LevelsBefore,
			"levels_after":  res.LevelsAfter,
			"levels_frozen": res.LevelsFrozen,
			"fuse_levels":   res.FuseLevels,
		})
	default:
		httpError(w, http.StatusNotFound, "unknown data op %q", r.PathValue("op"))
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	man, err := s.SnapshotNow()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	var bytes int64
	for _, e := range man.Filters {
		bytes += e.Bytes
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir": s.cfg.DataDir, "filters": len(man.Filters), "bytes": bytes,
		"saved_at": man.SavedAt,
	})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	n, warns, err := s.ReloadFromDisk()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	warnStrs := make([]string, len(warns))
	for i, werr := range warns {
		warnStrs[i] = werr.Error()
	}
	writeJSON(w, http.StatusOK, map[string]any{"filters": n, "warnings": warnStrs})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.draining.Load()})
}
