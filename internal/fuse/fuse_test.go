package fuse

import (
	"bytes"
	"math"
	"testing"

	"vqf/internal/hashing"
)

// randKeys derives n keys from a seed-tagged input space; distinct seeds
// give disjoint key sets (Mix64 is a bijection, so the inputs must not
// overlap — the seed goes in the high bits, the index in the low).
func randKeys(n int, seed uint64) []uint64 {
	ks := make([]uint64, n)
	for i := range ks {
		ks[i] = hashing.Mix64(seed<<40 + uint64(i) + 1)
	}
	return ks
}

func TestNoFalseNegatives8(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 100, 10000, 100000} {
		keys := randKeys(n, 0x1234)
		fl, err := Build8(keys)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if fl.Keys() != uint64(n) {
			t.Fatalf("n=%d: Keys()=%d", n, fl.Keys())
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				t.Fatalf("n=%d: false negative for %#x", n, k)
			}
		}
	}
}

func TestNoFalseNegatives16(t *testing.T) {
	keys := randKeys(50000, 0xabcd)
	fl, err := Build16(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !fl.Contains(k) {
			t.Fatalf("false negative for %#x", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	keys := randKeys(100000, 0x5555)
	fl8, err := Build8(keys)
	if err != nil {
		t.Fatal(err)
	}
	fl16, err := Build16(keys)
	if err != nil {
		t.Fatal(err)
	}
	const probes = 200000
	fp8, fp16 := 0, 0
	for i := 0; i < probes; i++ {
		k := hashing.Mix64(0x9999<<40 + uint64(i))
		if fl8.Contains(k) {
			fp8++
		}
		if fl16.Contains(k) {
			fp16++
		}
	}
	// ≈ probes·2⁻⁸ ≈ 781 and ≈ probes·2⁻¹⁶ ≈ 3; allow 4σ-ish slack.
	if got, want := float64(fp8)/probes, math.Pow(2, -8); got > 1.5*want {
		t.Errorf("8-bit FPR %g, want ≈%g", got, want)
	}
	if fp16 > 20 {
		t.Errorf("16-bit false positives %d over %d probes", fp16, probes)
	}
}

func TestBitsPerKey(t *testing.T) {
	keys := randKeys(1<<20, 0x777)
	fl, err := Build8(keys)
	if err != nil {
		t.Fatal(err)
	}
	if bpk := fl.BitsPerKey(); bpk > 9.5 {
		t.Errorf("8-bit filter at %g bits/key, want ≤ 9.5", bpk)
	}
}

func TestBatchMatchesSingle(t *testing.T) {
	keys := randKeys(5000, 0x31415)
	fl, err := Build16(keys)
	if err != nil {
		t.Fatal(err)
	}
	probe := append(append([]uint64(nil), keys[:700]...), randKeys(700, 0x282)...)
	var dst []bool
	dst = fl.ContainsBatch(probe, dst)
	for i, k := range probe {
		if dst[i] != fl.Contains(k) {
			t.Fatalf("batch[%d] = %v, single = %v", i, dst[i], fl.Contains(k))
		}
	}
	// dst reuse must not reallocate.
	again := fl.ContainsBatch(probe[:100], dst)
	if &again[0] != &dst[0] {
		t.Error("batch did not reuse dst")
	}
}

func TestDuplicateKeys(t *testing.T) {
	base := randKeys(1000, 0x99)
	keys := append(append([]uint64(nil), base...), base[:500]...) // heavy duplication
	fl, err := Build8(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range base {
		if !fl.Contains(k) {
			t.Fatalf("false negative for duplicated key %#x", k)
		}
	}
	if fl.Keys() != 1000 {
		t.Errorf("Keys() = %d after dedupe, want 1000", fl.Keys())
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5000} {
		keys := randKeys(n, 0x4242)
		fl, err := Build16(keys)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := fl.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		got, err := Read16(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, k := range keys {
			if !got.Contains(k) {
				t.Fatalf("n=%d: false negative after round trip", n)
			}
		}
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("n=%d: re-serialization not byte-identical", n)
		}
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	keys := randKeys(100, 0x1)
	fl, _ := Build8(keys)
	var buf bytes.Buffer
	if _, err := fl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Read16(bytes.NewReader(good)); err == nil {
		t.Error("Read16 accepted an 8-bit stream")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff // magic
	if _, err := Read8(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := Read8(bytes.NewReader(good[:20])); err == nil {
		t.Error("accepted truncated stream")
	}
	bad = append([]byte(nil), good...)
	bad[16] = 3 // non-power-of-two segment length
	if _, err := Read8(bytes.NewReader(bad)); err == nil {
		t.Error("accepted non-power-of-two segment length")
	}
}

func TestEmptyFilterAnswersFalse(t *testing.T) {
	fl, err := Build8(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if fl.Contains(hashing.Mix64(uint64(i))) {
			t.Fatal("empty filter answered true")
		}
	}
}
