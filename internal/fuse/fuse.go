// Package fuse implements static 3-wise binary fuse filters ("Binary Fuse
// Filters: Fast and Smaller Than Xor Filters", Graf & Lemire), the immutable
// cold tier behind the elastic cascade's frozen levels. A filter is built
// once from a complete key set and answers Contains forever after with a
// single fingerprint comparison against the xor of three array cells; there
// is no insert, no remove, and no per-slot metadata, which is what brings
// the space overhead down to ≈1.13·w bits per key at fingerprint width w
// against the VQF's w/α + metadata.
//
// Keys are opaque 64-bit values (the elastic tier feeds canonical VQF hashes
// through here; see internal/core/iterate.go). Duplicate keys cannot be
// represented — Build deduplicates defensively after repeated peeling
// failures, but callers that track multiplicities must do so outside the
// filter.
package fuse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"vqf/internal/hashing"
)

// ErrBuildFailed reports that peeling failed for every attempted seed. With
// deduplicated keys the per-attempt failure probability is well under 1%, so
// hitting the attempt cap in practice means the key slice is pathological
// (e.g. adversarially constructed against the mixer).
var ErrBuildFailed = errors.New("fuse: build failed to find a peelable seed")

// maxBuildIterations bounds the reseed-and-retry loop; dedupeAtIteration is
// when a stubborn build sorts and deduplicates its private key copy (the
// reference implementations' remedy for the overwhelmingly common cause of
// repeated failure).
const (
	maxBuildIterations = 100
	dedupeAtIteration  = 10
)

type fpuint interface{ ~uint8 | ~uint16 }

// filter is the generic core shared by the 8- and 16-bit variants. The
// segment layout follows the paper: the array is segmentCount+2 segments of
// segmentLength cells, a key's first cell index lands uniformly in the first
// segmentCount segments, and its other two cells sit in the following two
// segments at xor-perturbed offsets — the locality that makes the 3-cell
// probe touch three nearby-ish cache lines instead of three random ones.
type filter[F fpuint] struct {
	seed               uint64
	segmentLength      uint32
	segmentLengthMask  uint32
	segmentCount       uint32
	segmentCountLength uint32
	fingerprints       []F
	keys               uint64 // distinct keys built in
}

// calcSegmentLength is the paper's tuning for 3-wise fuse graphs, capped so
// one segment stays comfortably inside L2.
func calcSegmentLength(size uint32) uint32 {
	if size == 0 {
		return 4
	}
	sl := uint32(1) << uint(math.Floor(math.Log(float64(size))/math.Log(3.33)+2.25))
	if sl < 1 {
		sl = 1
	}
	if sl > 262144 {
		sl = 262144
	}
	return sl
}

// calcSizeFactor is the paper's array-size multiplier: asymptotically 1.125,
// larger for small filters where peeling needs more slack.
func calcSizeFactor(size uint32) float64 {
	if size < 2 {
		return 2
	}
	return math.Max(1.125, 0.875+0.25*math.Log(1e6)/math.Log(float64(size)))
}

// layout initializes the segment geometry for size keys and allocates the
// fingerprint array.
func (f *filter[F]) layout(size uint32) {
	f.segmentLength = calcSegmentLength(size)
	f.segmentLengthMask = f.segmentLength - 1
	capacity := uint32(math.Round(float64(size) * calcSizeFactor(size)))
	initCount := (capacity+f.segmentLength-1)/f.segmentLength - 2
	arrayLength := (initCount + 2) * f.segmentLength
	segmentCount := (arrayLength + f.segmentLength - 1) / f.segmentLength
	if segmentCount <= 2 {
		segmentCount = 1
	} else {
		segmentCount -= 2
	}
	arrayLength = (segmentCount + 2) * f.segmentLength
	f.segmentCount = segmentCount
	f.segmentCountLength = segmentCount * f.segmentLength
	f.fingerprints = make([]F, arrayLength)
}

// cells derives a key hash's three cell indices: the high word of
// hash·segmentCountLength picks the base segment, the next two segments get
// xor-perturbed offsets from independent hash bits.
func (f *filter[F]) cells(hash uint64) (h0, h1, h2 uint32) {
	hi, _ := bits.Mul64(hash, uint64(f.segmentCountLength))
	h0 = uint32(hi)
	h1 = h0 + f.segmentLength
	h2 = h1 + f.segmentLength
	h1 ^= uint32(hash>>18) & f.segmentLengthMask
	h2 ^= uint32(hash) & f.segmentLengthMask
	return
}

func fingerprintOf[F fpuint](hash uint64) F {
	return F(hash ^ (hash >> 32))
}

// contains probes the three cells of k and compares fingerprints. An empty
// filter answers false outright — its all-zero array would otherwise match
// the ~2⁻ʷ of keys whose fingerprint is zero.
func (f *filter[F]) contains(k uint64) bool {
	if f.keys == 0 {
		return false
	}
	hash := hashing.Mix64Seeded(k, f.seed)
	fp := fingerprintOf[F](hash)
	h0, h1, h2 := f.cells(hash)
	return fp^f.fingerprints[h0]^f.fingerprints[h1]^f.fingerprints[h2] == 0
}

// batchTile is the working-set size of the two-pass batched probe: hashes
// are mixed for a whole tile first, then the probe loop runs with the mixer
// out of the way — the same split-the-dependency-chain discipline as the
// core filters' radix-batched sweeps, with the tile small enough to live on
// the stack so steady-state batches allocate nothing.
const batchTile = 256

// containsBatch answers membership for every key of ks in input order,
// reusing dst when it has capacity.
func (f *filter[F]) containsBatch(ks []uint64, dst []bool) []bool {
	if cap(dst) < len(ks) {
		dst = make([]bool, len(ks))
	}
	out := dst[:len(ks)]
	if f.keys == 0 {
		for i := range out {
			out[i] = false
		}
		return out
	}
	var hashes [batchTile]uint64
	for base := 0; base < len(ks); base += batchTile {
		n := len(ks) - base
		if n > batchTile {
			n = batchTile
		}
		for i := 0; i < n; i++ {
			hashes[i] = hashing.Mix64Seeded(ks[base+i], f.seed)
		}
		for i := 0; i < n; i++ {
			hash := hashes[i]
			h0, h1, h2 := f.cells(hash)
			out[base+i] = fingerprintOf[F](hash)^f.fingerprints[h0]^f.fingerprints[h1]^f.fingerprints[h2] == 0
		}
	}
	return out
}

// buildSeed is the deterministic per-attempt seed schedule. Builds must be
// reproducible (serialized filters round-trip byte-identically), so the
// schedule is a fixed mixer walk rather than a random source.
func buildSeed(iteration int) uint64 {
	return hashing.Mix64(uint64(iteration+1) * 0x9e3779b97f4a7c15)
}

// populate runs the peeling construction: count and xor-aggregate every
// key's hash into its three cells, repeatedly peel cells holding exactly one
// key, then assign fingerprints in reverse peel order so each key's xor
// identity holds. On a failed peel it reseeds and retries; at
// dedupeAtIteration it deduplicates a private copy of the keys.
func (f *filter[F]) populate(keys []uint64) error {
	if len(keys) == 0 {
		f.keys = 0
		return nil
	}
	size := uint32(len(keys))
	f.layout(size)
	capacity := uint32(len(f.fingerprints))

	alone := make([]uint32, capacity)
	// t2count packs a cell's key count (high 6 bits) with the xor of the
	// cell-role indices (0/1/2) of those keys: when the count drops to one,
	// the low bits name which of the remaining key's three cells this is.
	t2count := make([]uint8, capacity)
	t2hash := make([]uint64, capacity)
	reverseOrder := make([]uint64, size+1)
	reverseH := make([]uint8, size)

	deduped := false
	for iteration := 0; ; iteration++ {
		if iteration == maxBuildIterations {
			return ErrBuildFailed
		}
		if iteration == dedupeAtIteration && !deduped {
			keys = dedupe(keys)
			size = uint32(len(keys))
			f.keys = 0
			f.layout(size)
			capacity = uint32(len(f.fingerprints))
			alone = make([]uint32, capacity)
			t2count = make([]uint8, capacity)
			t2hash = make([]uint64, capacity)
			reverseOrder = make([]uint64, size+1)
			reverseH = make([]uint8, size)
			deduped = true
		}
		f.seed = buildSeed(iteration)

		overflow := false
		for _, k := range keys {
			hash := hashing.Mix64Seeded(k, f.seed)
			h0, h1, h2 := f.cells(hash)
			t2count[h0] += 4
			t2hash[h0] ^= hash
			t2count[h1] += 4
			t2count[h1] ^= 1
			t2hash[h1] ^= hash
			t2count[h2] += 4
			t2count[h2] ^= 2
			t2hash[h2] ^= hash
			// 64+ keys in one cell wraps the packed count; only massive key
			// duplication gets there. Abort to the dedupe/retry path rather
			// than corrupt the counts.
			if t2count[h0] < 4 || t2count[h1] < 4 || t2count[h2] < 4 {
				overflow = true
				break
			}
		}

		stacksize := uint32(0)
		if !overflow {
			alonePos := 0
			for i := uint32(0); i < capacity; i++ {
				if t2count[i]>>2 == 1 {
					alone[alonePos] = i
					alonePos++
				}
			}
			for alonePos > 0 {
				alonePos--
				index := alone[alonePos]
				if t2count[index]>>2 != 1 {
					continue
				}
				hash := t2hash[index]
				found := t2count[index] & 3
				reverseH[stacksize] = found
				reverseOrder[stacksize] = hash
				stacksize++
				h0, h1, h2 := f.cells(hash)
				cellAt := [5]uint32{h0, h1, h2, h0, h1}
				for off := uint8(1); off <= 2; off++ {
					other := cellAt[found+off]
					role := found + off
					if role >= 3 {
						role -= 3
					}
					t2count[other] -= 4
					t2count[other] ^= role
					t2hash[other] ^= hash
					if t2count[other]>>2 == 1 {
						alone[alonePos] = other
						alonePos++
					}
				}
			}
		}

		if stacksize == size {
			// Full peel: assign fingerprints newest-peeled first, so the two
			// cells each key shares with later-peeled keys are final when its
			// own cell is written.
			for i := int(size) - 1; i >= 0; i-- {
				hash := reverseOrder[i]
				fp := fingerprintOf[F](hash)
				h0, h1, h2 := f.cells(hash)
				found := reverseH[i]
				cellAt := [5]uint32{h0, h1, h2, h0, h1}
				f.fingerprints[cellAt[found]] = fp ^
					f.fingerprints[cellAt[found+1]] ^ f.fingerprints[cellAt[found+2]]
			}
			f.keys = uint64(size)
			return nil
		}

		for i := range t2count {
			t2count[i] = 0
			t2hash[i] = 0
		}
	}
}

// dedupe returns a sorted copy of keys with duplicates removed; the caller's
// slice is left untouched.
func dedupe(keys []uint64) []uint64 {
	cp := append([]uint64(nil), keys...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:0]
	for i, k := range cp {
		if i == 0 || k != cp[i-1] {
			out = append(out, k)
		}
	}
	return out
}

// Filter8 is a static binary fuse filter with 8-bit fingerprints (FPR ≈ 2⁻⁸),
// mirroring the VQF cascade's 8-bit level geometry class.
type Filter8 struct{ f filter[uint8] }

// Filter16 is a static binary fuse filter with 16-bit fingerprints
// (FPR ≈ 2⁻¹⁶), mirroring the 16-bit level geometry class.
type Filter16 struct{ f filter[uint16] }

// Build8 constructs an 8-bit filter over keys (order-insensitive; the slice
// is not retained). Duplicate keys are tolerated but collapse to one
// membership entry.
func Build8(keys []uint64) (*Filter8, error) {
	fl := &Filter8{}
	if err := fl.f.populate(keys); err != nil {
		return nil, err
	}
	return fl, nil
}

// Build16 constructs a 16-bit filter over keys; see Build8.
func Build16(keys []uint64) (*Filter16, error) {
	fl := &Filter16{}
	if err := fl.f.populate(keys); err != nil {
		return nil, err
	}
	return fl, nil
}

// Contains reports whether k may be in the set: always true for built-in
// keys, true with probability ≈2⁻⁸ otherwise. Safe for concurrent use (the
// filter is immutable).
func (fl *Filter8) Contains(k uint64) bool { return fl.f.contains(k) }

// Contains reports whether k may be in the set; false positives ≈2⁻¹⁶.
func (fl *Filter16) Contains(k uint64) bool { return fl.f.contains(k) }

// ContainsBatch answers membership for every key of ks in input order,
// reusing dst when it has capacity (dst may be nil). Safe for concurrent use.
func (fl *Filter8) ContainsBatch(ks []uint64, dst []bool) []bool {
	return fl.f.containsBatch(ks, dst)
}

// ContainsBatch answers membership for every key of ks; see Filter8.
func (fl *Filter16) ContainsBatch(ks []uint64, dst []bool) []bool {
	return fl.f.containsBatch(ks, dst)
}

// Keys returns the number of distinct keys the filter was built over.
func (fl *Filter8) Keys() uint64 { return fl.f.keys }

// Keys returns the number of distinct keys the filter was built over.
func (fl *Filter16) Keys() uint64 { return fl.f.keys }

// SizeBytes returns the fingerprint array's footprint.
func (fl *Filter8) SizeBytes() uint64 { return uint64(len(fl.f.fingerprints)) }

// SizeBytes returns the fingerprint array's footprint.
func (fl *Filter16) SizeBytes() uint64 { return 2 * uint64(len(fl.f.fingerprints)) }

// BitsPerKey returns the realized space cost, ≈1.13·8 for a large filter.
func (fl *Filter8) BitsPerKey() float64 { return bitsPerKey(fl.SizeBytes(), fl.f.keys) }

// BitsPerKey returns the realized space cost, ≈1.13·16 for a large filter.
func (fl *Filter16) BitsPerKey() float64 { return bitsPerKey(fl.SizeBytes(), fl.f.keys) }

func bitsPerKey(sizeBytes, keys uint64) float64 {
	if keys == 0 {
		return 0
	}
	return float64(sizeBytes) * 8 / float64(keys)
}

// Serialization: a fixed header followed by the fingerprint array in
// little-endian cell order. The geometry fields are audited on read so a
// corrupt or adversarial stream fails cleanly.
const (
	magicFuse       = 0x46465156 // "VQFF"
	fuseVersion     = 1
	fuseHeaderBytes = 4 + 2 + 2 + 8 + 4 + 4 + 8 // magic, version, fpBits, seed, segLen, segCount, keys
	maxArrayLength  = 1 << 32
)

func (f *filter[F]) writeTo(w io.Writer, fpBits uint16) (int64, error) {
	var hdr [fuseHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicFuse)
	binary.LittleEndian.PutUint16(hdr[4:], fuseVersion)
	binary.LittleEndian.PutUint16(hdr[6:], fpBits)
	binary.LittleEndian.PutUint64(hdr[8:], f.seed)
	binary.LittleEndian.PutUint32(hdr[16:], f.segmentLength)
	binary.LittleEndian.PutUint32(hdr[20:], f.segmentCount)
	binary.LittleEndian.PutUint64(hdr[24:], f.keys)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n := int64(len(hdr))
	if f.keys == 0 {
		return n, nil
	}
	buf := make([]byte, len(f.fingerprints)*int(fpBits)/8)
	if fpBits == 8 {
		for i, fp := range f.fingerprints {
			buf[i] = byte(fp)
		}
	} else {
		for i, fp := range f.fingerprints {
			binary.LittleEndian.PutUint16(buf[2*i:], uint16(fp))
		}
	}
	m, err := w.Write(buf)
	return n + int64(m), err
}

func readFilter[F fpuint](r io.Reader, wantBits uint16) (*filter[F], error) {
	var hdr [fuseHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("fuse: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicFuse {
		return nil, errors.New("fuse: bad magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != fuseVersion {
		return nil, fmt.Errorf("fuse: unsupported version %d", v)
	}
	if got := binary.LittleEndian.Uint16(hdr[6:]); got != wantBits {
		return nil, fmt.Errorf("fuse: fingerprint width %d, want %d", got, wantBits)
	}
	f := &filter[F]{
		seed:          binary.LittleEndian.Uint64(hdr[8:]),
		segmentLength: binary.LittleEndian.Uint32(hdr[16:]),
		segmentCount:  binary.LittleEndian.Uint32(hdr[20:]),
		keys:          binary.LittleEndian.Uint64(hdr[24:]),
	}
	if f.keys == 0 {
		return f, nil
	}
	if f.segmentLength == 0 || f.segmentLength&(f.segmentLength-1) != 0 || f.segmentLength > 262144 {
		return nil, fmt.Errorf("fuse: segment length %d", f.segmentLength)
	}
	if f.segmentCount == 0 {
		return nil, errors.New("fuse: zero segment count")
	}
	arrayLength := (uint64(f.segmentCount) + 2) * uint64(f.segmentLength)
	if arrayLength > maxArrayLength {
		return nil, fmt.Errorf("fuse: array length %d exceeds cap", arrayLength)
	}
	if f.keys > arrayLength {
		return nil, fmt.Errorf("fuse: %d keys exceed array length %d", f.keys, arrayLength)
	}
	f.segmentLengthMask = f.segmentLength - 1
	f.segmentCountLength = f.segmentCount * f.segmentLength
	f.fingerprints = make([]F, arrayLength)
	buf := make([]byte, int(arrayLength)*int(wantBits)/8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("fuse: short fingerprint array: %w", err)
	}
	if wantBits == 8 {
		for i := range f.fingerprints {
			f.fingerprints[i] = F(buf[i])
		}
	} else {
		for i := range f.fingerprints {
			f.fingerprints[i] = F(binary.LittleEndian.Uint16(buf[2*i:]))
		}
	}
	return f, nil
}

// WriteTo serializes the filter; it implements io.WriterTo.
func (fl *Filter8) WriteTo(w io.Writer) (int64, error) { return fl.f.writeTo(w, 8) }

// WriteTo serializes the filter; it implements io.WriterTo.
func (fl *Filter16) WriteTo(w io.Writer) (int64, error) { return fl.f.writeTo(w, 16) }

// Read8 deserializes a Filter8 written by WriteTo.
func Read8(r io.Reader) (*Filter8, error) {
	f, err := readFilter[uint8](r, 8)
	if err != nil {
		return nil, err
	}
	return &Filter8{f: *f}, nil
}

// Read16 deserializes a Filter16 written by WriteTo.
func Read16(r io.Reader) (*Filter16, error) {
	f, err := readFilter[uint16](r, 16)
	if err != nil {
		return nil, err
	}
	return &Filter16{f: *f}, nil
}
