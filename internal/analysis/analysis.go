// Package analysis implements the paper's Section 5 space analysis: the
// bits-per-item formulas of Table 1, the false-positive-rate-versus-space
// curves of Figure 2, and the metadata-overhead curve of Figure 3.
package analysis

import "math"

// Load factors assumed by the paper when comparing filters (Table 1 and
// Figure 2): quotient, cuckoo and Morton filters operate to 95% occupancy
// (multiplicative overhead 1.053), the VQF to 93% (1.0753), Bloom to 100%.
const (
	LoadQF    = 0.95
	LoadVQF   = 0.93
	LoadBloom = 1.00
)

// BitsPerItem returns each filter's bits-per-item at false-positive rate eps,
// per Table 1 of the paper.
type BitsPerItem struct {
	Bloom, Quotient, Cuckoo, Morton, VQF float64
}

// Table1 evaluates the Table 1 space formulas at false-positive rate eps.
func Table1(eps float64) BitsPerItem {
	lg := -math.Log2(eps)
	return BitsPerItem{
		Bloom:    1.44 * lg,
		Quotient: (lg + 2.125) / LoadQF,
		Cuckoo:   (lg + 3) / LoadQF,
		Morton:   (lg + 2.5) / LoadQF,
		VQF:      (lg + 2.914) / LoadVQF,
	}
}

// Figure2Point holds one x-value of Figure 2: the achievable −log₂(ε) for a
// space budget of bits per element, per filter (higher is better).
type Figure2Point struct {
	BitsPerElement float64
	Bloom          float64
	Quotient       float64
	Cuckoo         float64
	VQF            float64
}

// Figure2 returns the −log₂(ε)-versus-space curves of Figure 2 for
// bits-per-element values from lo to hi in the given step.
func Figure2(lo, hi, step float64) []Figure2Point {
	var out []Figure2Point
	for x := lo; x <= hi+1e-9; x += step {
		out = append(out, Figure2Point{
			BitsPerElement: x,
			// Bloom: ε = 2^(−x·ln2), i.e. −log₂ε = x·ln2.
			Bloom: clampNonNeg(x * math.Ln2),
			// Fingerprint filters: x = (−log₂ε + K)/α → −log₂ε = x·α − K.
			Quotient: clampNonNeg(x*LoadQF - 2.125),
			Cuckoo:   clampNonNeg(x*LoadQF - 3),
			VQF:      clampNonNeg(x*LoadVQF - 2.914),
		})
	}
	return out
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// OverheadBits is Figure 3's y-axis: the metadata overhead log₂(s/b)+b/s of
// a mini-filter with s slots and b buckets, as a function of u = s/b.
func OverheadBits(u float64) float64 {
	return math.Log2(u) + 1/u
}

// OptimalRatio is the s/b ratio minimizing OverheadBits: ln 2.
func OptimalRatio() float64 { return math.Ln2 }

// Figure3Point is one sample of the Figure 3 curve.
type Figure3Point struct {
	Ratio    float64 // s/b
	Overhead float64 // log₂(s/b)+b/s
}

// Figure3 samples the overhead curve over [lo, hi].
func Figure3(lo, hi, step float64) []Figure3Point {
	var out []Figure3Point
	for u := lo; u <= hi+1e-9; u += step {
		out = append(out, Figure3Point{Ratio: u, Overhead: OverheadBits(u)})
	}
	return out
}

// ChosenConfigs returns the paper's two implementation points on the
// Figure 3 curve: (s=48, b=80) and (s=28, b=36).
func ChosenConfigs() []struct {
	S, B     int
	Ratio    float64
	Overhead float64
} {
	configs := []struct{ S, B int }{{48, 80}, {28, 36}}
	out := make([]struct {
		S, B     int
		Ratio    float64
		Overhead float64
	}, len(configs))
	for i, c := range configs {
		u := float64(c.S) / float64(c.B)
		out[i].S, out[i].B = c.S, c.B
		out[i].Ratio = u
		out[i].Overhead = OverheadBits(u)
	}
	return out
}

// VQFAnalyticFPR returns the vector quotient filter's analytic full-load
// false-positive rate for a geometry with s slots, b buckets and r-bit
// fingerprints: ε ≤ 2·(s/b)·2⁻ʳ (paper §5).
func VQFAnalyticFPR(s, b, r int) float64 {
	return 2 * float64(s) / float64(b) * math.Pow(2, -float64(r))
}

// SpaceEfficiency is the paper's Table 2 metric: n·log₂(1/ε)/S, where n is
// the item count at maximum occupancy, eps the achieved false-positive rate,
// and sizeBits the filter's total size in bits.
func SpaceEfficiency(n uint64, eps float64, sizeBits uint64) float64 {
	return float64(n) * -math.Log2(eps) / float64(sizeBits)
}
