package analysis

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Benchmark-sample statistics in the style of benchstat: summarize repeated
// measurements as mean ± 95% confidence interval, and compare old/new sample
// sets with an interval-overlap significance test. Used by the vqfbench
// `kernels` experiment and its CI regression gate.

// tCrit95 holds two-sided Student-t critical values at 95% confidence for
// 1..30 degrees of freedom; beyond that the normal approximation is used.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanCI95 returns the sample mean and the half-width of its two-sided 95%
// confidence interval under Student's t. A single sample has an infinite
// interval; an empty slice returns zeros.
func MeanCI95(xs []float64) (mean, half float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if len(xs) == 1 {
		return mean, math.Inf(1)
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	half = tCrit(len(xs)-1) * sd / math.Sqrt(float64(len(xs)))
	return mean, half
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// BenchDelta is the comparison of two sample sets of a higher-is-better
// metric (throughput).
type BenchDelta struct {
	OldMean float64 `json:"old_mean"`
	OldCI   float64 `json:"old_ci95"`
	NewMean float64 `json:"new_mean"`
	NewCI   float64 `json:"new_ci95"`
	// DeltaPct is the relative change of the means in percent:
	// positive = faster, negative = slower.
	DeltaPct float64 `json:"delta_pct"`
	// Significant reports that the two 95% confidence intervals do not
	// overlap — the same conservative test benchstat's interval display
	// invites. Noisy samples (wide intervals) are never significant.
	Significant bool `json:"significant"`
}

// CompareBench summarizes the change from oldSamples to newSamples.
func CompareBench(oldSamples, newSamples []float64) BenchDelta {
	om, oci := MeanCI95(oldSamples)
	nm, nci := MeanCI95(newSamples)
	d := BenchDelta{OldMean: om, OldCI: oci, NewMean: nm, NewCI: nci}
	if om > 0 {
		d.DeltaPct = (nm - om) / om * 100
	}
	d.Significant = om-oci > nm+nci || nm-nci > om+oci
	return d
}

// ErrTooFewSamples is returned by CompareBenchChecked when either side has
// fewer than two samples.
var ErrTooFewSamples = errors.New("analysis: need at least 2 samples per side")

// CompareBenchChecked is CompareBench for gating contexts. With fewer than
// two samples on a side the confidence interval is infinite, so no slowdown
// could ever register as significant and a gate built on the comparison
// would pass vacuously — it must refuse instead.
func CompareBenchChecked(oldSamples, newSamples []float64) (BenchDelta, error) {
	if len(oldSamples) < 2 || len(newSamples) < 2 {
		return BenchDelta{}, fmt.Errorf("%w (got %d old, %d new)",
			ErrTooFewSamples, len(oldSamples), len(newSamples))
	}
	return CompareBench(oldSamples, newSamples), nil
}

// Regression reports whether d is a statistically significant slowdown of
// more than thresholdPct percent. Insignificant deltas (overlapping
// intervals) never count: a regression gate should fail on evidence, not on
// noise.
func (d BenchDelta) Regression(thresholdPct float64) bool {
	return d.DeltaPct < -thresholdPct && d.Significant
}
