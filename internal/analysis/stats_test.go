package analysis

import (
	"errors"
	"math"
	"testing"
)

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{10, 12, 11, 9, 13})
	if math.Abs(mean-11) > 1e-9 {
		t.Fatalf("mean = %v, want 11", mean)
	}
	// sd = sqrt(2.5), t(4) = 2.776: half = 2.776*sqrt(2.5)/sqrt(5) ≈ 1.963
	if math.Abs(half-1.9629) > 1e-3 {
		t.Fatalf("half-width = %v, want ≈1.963", half)
	}
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Fatalf("empty samples: %v ± %v", m, h)
	}
	if _, h := MeanCI95([]float64{5}); !math.IsInf(h, 1) {
		t.Fatalf("single sample must have infinite interval, got %v", h)
	}
	// Identical samples: zero-width interval.
	if m, h := MeanCI95([]float64{7, 7, 7, 7}); m != 7 || h != 0 {
		t.Fatalf("constant samples: %v ± %v", m, h)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestCompareBenchSignificance(t *testing.T) {
	// Tight samples, clearly apart: significant change.
	d := CompareBench([]float64{100, 101, 99, 100}, []float64{80, 81, 79, 80})
	if !d.Significant {
		t.Fatal("clear 20% drop not flagged significant")
	}
	if math.Abs(d.DeltaPct+20) > 0.5 {
		t.Fatalf("delta = %v, want ≈ -20", d.DeltaPct)
	}
	if !d.Regression(5) {
		t.Fatal("significant 20% drop must fail a 5% gate")
	}
	if d.Regression(25) {
		t.Fatal("20% drop must pass a 25% gate")
	}

	// Same means, wide noise: never significant, never a regression.
	noisy := CompareBench([]float64{100, 140, 60, 110}, []float64{90, 130, 50, 100})
	if noisy.Significant {
		t.Fatal("overlapping intervals flagged significant")
	}
	if noisy.Regression(5) {
		t.Fatal("noise flagged as regression")
	}

	// Improvement: significant but not a regression.
	up := CompareBench([]float64{100, 101, 99, 100}, []float64{120, 121, 119, 120})
	if !up.Significant || up.Regression(5) {
		t.Fatalf("improvement misclassified: %+v", up)
	}
}

func TestCompareBenchSingleSample(t *testing.T) {
	// One sample per side has infinite intervals: never significant, so a
	// gate fed single-sample runs can warn but not fail.
	d := CompareBench([]float64{100}, []float64{50})
	if d.Significant || d.Regression(5) {
		t.Fatal("single-sample comparison cannot be significant")
	}
}

// TestTCritEdges pins the degrees-of-freedom boundary behavior: df<1 yields
// an infinite critical value (one sample tells you nothing), the table
// endpoints are hit exactly, and past the table the normal approximation
// takes over.
func TestTCritEdges(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-1, math.Inf(1)},
		{0, math.Inf(1)},
		{1, 12.706},
		{2, 4.303},
		{30, 2.042},
		{31, 1.960},
		{1000, 1.960},
	}
	for _, c := range cases {
		if got := tCrit(c.df); got != c.want {
			t.Errorf("tCrit(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}

// TestMeanCI95Edges: empty input is all zeros; a single sample has a defined
// mean but an infinite interval — it must never look precise.
func TestMeanCI95Edges(t *testing.T) {
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Errorf("MeanCI95(nil) = (%v, %v), want zeros", m, h)
	}
	m, h := MeanCI95([]float64{3.5})
	if m != 3.5 || !math.IsInf(h, 1) {
		t.Errorf("MeanCI95(single) = (%v, %v), want (3.5, +Inf)", m, h)
	}
}

// TestCompareBenchCheckedRefusal: the gating comparison must refuse
// sub-minimal sample sets instead of returning a vacuously insignificant
// delta that a regression gate would read as "pass".
func TestCompareBenchCheckedRefusal(t *testing.T) {
	good := []float64{10, 11, 10.5}
	for name, pair := range map[string][2][]float64{
		"empty-old":  {nil, good},
		"empty-new":  {good, nil},
		"single-old": {{10}, good},
		"single-new": {good, {1}},
		"both-bad":   {{10}, {1}},
	} {
		if _, err := CompareBenchChecked(pair[0], pair[1]); !errors.Is(err, ErrTooFewSamples) {
			t.Errorf("%s: err = %v, want ErrTooFewSamples", name, err)
		}
	}
	// A clear significant slowdown with adequate samples still reports.
	d, err := CompareBenchChecked([]float64{100, 101, 99}, []float64{50, 51, 49})
	if err != nil {
		t.Fatalf("valid comparison refused: %v", err)
	}
	if !d.Regression(10) {
		t.Errorf("50%% slowdown not flagged: %+v", d)
	}
	// The unchecked path remains vacuous by design — document the contrast.
	if d := CompareBench([]float64{100}, []float64{50}); d.Significant {
		t.Errorf("single-sample CompareBench claimed significance: %+v", d)
	}
}
