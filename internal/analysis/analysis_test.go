package analysis

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable1AtOnePercent(t *testing.T) {
	// ε = 2⁻⁸: log₂(1/ε) = 8.
	got := Table1(1.0 / 256)
	if !approx(got.Bloom, 1.44*8, 0.01) {
		t.Errorf("Bloom = %.3f", got.Bloom)
	}
	if !approx(got.Quotient, (8+2.125)/0.95, 0.01) {
		t.Errorf("Quotient = %.3f", got.Quotient)
	}
	if !approx(got.Cuckoo, (8+3)/0.95, 0.01) {
		t.Errorf("Cuckoo = %.3f", got.Cuckoo)
	}
	if !approx(got.Morton, (8+2.5)/0.95, 0.01) {
		t.Errorf("Morton = %.3f", got.Morton)
	}
	if !approx(got.VQF, (8+2.914)/0.93, 0.01) {
		t.Errorf("VQF = %.3f", got.VQF)
	}
	// Ordering at ε=2⁻⁸: QF < Morton < Cuckoo, and QF < VQF (the VQF's lower
	// additive overhead is offset by its lower max load factor).
	if !(got.Quotient < got.Morton && got.Morton < got.Cuckoo && got.Quotient < got.VQF) {
		t.Errorf("unexpected ordering: %+v", got)
	}
	// At ε=2⁻¹⁶ the Bloom filter's multiplicative overhead dominates and it
	// is the largest of all.
	tight := Table1(1.0 / 65536)
	for name, v := range map[string]float64{
		"QF": tight.Quotient, "CF": tight.Cuckoo, "MF": tight.Morton, "VQF": tight.VQF,
	} {
		if v >= tight.Bloom {
			t.Errorf("at ε=2⁻¹⁶, %s (%.2f) should be below Bloom (%.2f)", name, v, tight.Bloom)
		}
	}
}

func TestBloomCrossover(t *testing.T) {
	// Paper §2: the quotient filter beats Bloom whenever ε ≤ 1/64.
	atLoose := Table1(1.0 / 16)
	if atLoose.Quotient < atLoose.Bloom {
		t.Errorf("at ε=1/16 Bloom should be smaller: QF=%.2f BF=%.2f",
			atLoose.Quotient, atLoose.Bloom)
	}
	atTight := Table1(1.0 / 256)
	if atTight.Quotient > atTight.Bloom {
		t.Errorf("at ε=2⁻⁸ QF should be smaller: QF=%.2f BF=%.2f",
			atTight.Quotient, atTight.Bloom)
	}
}

func TestFigure2Monotone(t *testing.T) {
	pts := Figure2(5, 25, 1)
	if len(pts) != 21 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].VQF < pts[i-1].VQF || pts[i].Bloom < pts[i-1].Bloom {
			t.Fatal("curves must be nondecreasing in space budget")
		}
	}
	// At large budgets the Bloom filter's 1.44× multiplicative overhead
	// makes it worst; at small budgets its zero additive overhead wins.
	last := pts[len(pts)-1]
	if last.Bloom >= last.VQF || last.Bloom >= last.Quotient {
		t.Errorf("at 25 bits Bloom should achieve the lowest −log₂ε: %+v", last)
	}
	first := pts[0]
	if first.Bloom <= first.VQF {
		t.Errorf("at 5 bits Bloom should achieve the highest −log₂ε: %+v", first)
	}
}

func TestFigure3PaperValues(t *testing.T) {
	// §6.1: the chosen configs give 0.93 and 0.923 overhead bits; optimum
	// 0.914 at s/b = ln 2.
	configs := ChosenConfigs()
	if !approx(configs[0].Overhead, 0.93, 0.005) {
		t.Errorf("(48,80) overhead = %.4f, want ≈0.930", configs[0].Overhead)
	}
	if !approx(configs[1].Overhead, 0.923, 0.005) {
		t.Errorf("(28,36) overhead = %.4f, want ≈0.923", configs[1].Overhead)
	}
	if !approx(OverheadBits(OptimalRatio()), 0.914, 0.001) {
		t.Errorf("optimal overhead = %.4f, want ≈0.914", OverheadBits(OptimalRatio()))
	}
}

func TestFigure3OptimalIsMinimum(t *testing.T) {
	opt := OverheadBits(OptimalRatio())
	for _, p := range Figure3(0.5, 1.0, 0.01) {
		if p.Overhead < opt-1e-9 {
			t.Fatalf("overhead at %.2f (%.5f) below the analytic optimum %.5f",
				p.Ratio, p.Overhead, opt)
		}
	}
}

func TestVQFAnalyticFPR(t *testing.T) {
	// Paper abstract/§5: prototype supports ε ≈ 0.004 (8-bit) and
	// ≈ 0.000023 (16-bit).
	if got := VQFAnalyticFPR(48, 80, 8); !approx(got, 0.0047, 0.0003) {
		t.Errorf("8-bit FPR = %.5f", got)
	}
	if got := VQFAnalyticFPR(28, 36, 16); !approx(got, 0.000023, 0.000002) {
		t.Errorf("16-bit FPR = %.7f", got)
	}
}

func TestSpaceEfficiency(t *testing.T) {
	// A perfect filter storing n items at ε with exactly n·log₂(1/ε) bits
	// has efficiency 1.
	if got := SpaceEfficiency(1000, 1.0/256, 8000); !approx(got, 1.0, 1e-9) {
		t.Errorf("efficiency = %f, want 1", got)
	}
	if got := SpaceEfficiency(1000, 1.0/256, 16000); !approx(got, 0.5, 1e-9) {
		t.Errorf("efficiency = %f, want 0.5", got)
	}
}
