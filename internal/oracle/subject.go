package oracle

import (
	"fmt"

	"vqf/internal/bloom"
	"vqf/internal/core"
	"vqf/internal/cuckoo"
	"vqf/internal/elastic"
	"vqf/internal/morton"
	"vqf/internal/quotient"
	"vqf/internal/rsqf"
)

// Instance is the operation surface every subject exposes: the same
// pre-hashed single-key API the harness benchmarks through.
type Instance interface {
	Insert(h uint64) bool
	Contains(h uint64) bool
	Remove(h uint64) bool
	Count() uint64
}

// insertBatcher, removeBatcher and containsBatcher are the optional batch
// surfaces; the batch-equivalence property applies to whichever a subject's
// instance implements.
type insertBatcher interface{ InsertBatch([]uint64) int }
type removeBatcher interface{ RemoveBatch([]uint64) int }
type containsBatcher interface {
	ContainsBatch([]uint64, []bool) []bool
}

// lockedReader is the concurrent filters' locked read path, the baseline the
// optimistic seqlock path must agree with.
type lockedReader interface{ ContainsLocked(h uint64) bool }

// Subject names one filter variant and knows how to build an instance with a
// given slot budget.
type Subject struct {
	Name string
	// NoRemove marks variants without deletion (plain Bloom): trace removes
	// are skipped on both filter and model.
	NoRemove bool
	// Concurrent marks instances safe for multi-goroutine use; only these run
	// the optimistic-vs-locked property.
	Concurrent bool
	// FPRBound is the variant's expected false-positive ceiling at the
	// oracle's operating load. The differential property fails only well past
	// it (4× plus a fixed probe allowance), so the check flags broken hashing
	// or metadata corruption, never binomial noise.
	FPRBound float64
	New      func(nslots uint64) (Instance, error)
}

// kvAdapter drives the value-associating KVFilter8 through the set surface.
// Insert stores a key-derived value to exercise the parallel value lane, but
// Contains checks presence only: the map's documented contract is that Get
// returns the value of *a* matching fingerprint, so two live keys whose
// 8-bit fingerprints collide legitimately read each other's value — the
// oracle must not promote that ε-probability event into a failure. (The
// value lane's shifting is covered by the package's own unit tests.)
type kvAdapter struct{ m *core.KVFilter8 }

func (a kvAdapter) Insert(h uint64) bool { return a.m.Put(h, byte(h>>5)) }
func (a kvAdapter) Contains(h uint64) bool {
	_, ok := a.m.Get(h)
	return ok
}
func (a kvAdapter) Remove(h uint64) bool { return a.m.Delete(h) }
func (a kvAdapter) Count() uint64        { return a.m.Count() }

// wrap converts a concrete (filter, error) constructor result to the
// Instance interface, mapping a failed construction to a nil interface (not
// a typed-nil pointer).
func wrap[T Instance](f T, err error) (Instance, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Subjects returns every filter variant the oracle drives: the VQF core
// filters (both geometries, with and without the §6.2 shortcut), the
// concurrent filters, the elastic cascades, the Map adapter, and the
// comparator implementations benchmarked by the paper.
func Subjects() []Subject {
	mk := func(f Instance) (Instance, error) { return f, nil }
	return []Subject{
		{Name: "filter8", FPRBound: 0.006,
			New: func(n uint64) (Instance, error) { return mk(core.NewFilter8(n, core.Options{})) }},
		{Name: "filter8-noshortcut", FPRBound: 0.006,
			New: func(n uint64) (Instance, error) { return mk(core.NewFilter8(n, core.Options{NoShortcut: true})) }},
		{Name: "filter16", FPRBound: 5e-5,
			New: func(n uint64) (Instance, error) { return mk(core.NewFilter16(n, core.Options{})) }},
		{Name: "filter16-noshortcut", FPRBound: 5e-5,
			New: func(n uint64) (Instance, error) { return mk(core.NewFilter16(n, core.Options{NoShortcut: true})) }},
		{Name: "cfilter8", Concurrent: true, FPRBound: 0.006,
			New: func(n uint64) (Instance, error) { return mk(core.NewCFilter8(n, core.Options{})) }},
		{Name: "cfilter16", Concurrent: true, FPRBound: 5e-5,
			New: func(n uint64) (Instance, error) { return mk(core.NewCFilter16(n, core.Options{})) }},
		{Name: "map", FPRBound: 0.006,
			New: func(n uint64) (Instance, error) { return mk(kvAdapter{core.NewKV8(n)}) }},
		{Name: "elastic", FPRBound: 1.0 / 128,
			New: func(n uint64) (Instance, error) {
				return wrap(elastic.New(elastic.Config{TargetFPR: 1.0 / 128, InitialSlots: 1 << 10}))
			}},
		{Name: "elastic-concurrent", Concurrent: true, FPRBound: 1.0 / 128,
			New: func(n uint64) (Instance, error) {
				return wrap(elastic.NewConcurrent(elastic.Config{TargetFPR: 1.0 / 128, InitialSlots: 1 << 10}))
			}},
		// The frozen-tier subjects run the same cascade with the most
		// aggressive freeze policy expressible (no age gate, any load), so
		// every growth immediately rebuilds old levels into fuse levels and
		// the whole trace — removes, queries, duplicate churn — exercises the
		// immutable tier's vault, tombstone and thaw paths.
		{Name: "elastic-frozen", FPRBound: 1.0 / 128,
			New: func(n uint64) (Instance, error) {
				return wrap(elastic.New(elastic.Config{TargetFPR: 1.0 / 128, InitialSlots: 1 << 9,
					AutoFreeze: true, FreezeMaxLoad: 1}))
			}},
		{Name: "elastic-frozen-concurrent", Concurrent: true, FPRBound: 1.0 / 128,
			New: func(n uint64) (Instance, error) {
				return wrap(elastic.NewConcurrent(elastic.Config{TargetFPR: 1.0 / 128, InitialSlots: 1 << 9,
					AutoFreeze: true, FreezeMaxLoad: 1}))
			}},
		{Name: "rsqf8", FPRBound: 0.008,
			New: func(n uint64) (Instance, error) { return wrap(rsqf.NewForSlots(n, 8)) }},
		{Name: "rsqf16", FPRBound: 1e-4,
			New: func(n uint64) (Instance, error) { return wrap(rsqf.NewForSlots(n, 16)) }},
		{Name: "qf-classic", FPRBound: 0.008,
			New: func(n uint64) (Instance, error) { return wrap(quotient.NewForSlots(n, 8)) }},
		{Name: "cuckoo12", FPRBound: 0.003,
			New: func(n uint64) (Instance, error) { return wrap(cuckoo.New(n, 12)) }},
		{Name: "cuckoo16", FPRBound: 2e-4,
			New: func(n uint64) (Instance, error) { return wrap(cuckoo.New(n, 16)) }},
		{Name: "morton8", FPRBound: 0.008,
			New: func(n uint64) (Instance, error) { return mk(morton.New8(n)) }},
		{Name: "morton16", FPRBound: 5e-5,
			New: func(n uint64) (Instance, error) { return mk(morton.New16(n)) }},
		{Name: "bloom", NoRemove: true, FPRBound: 1.0 / 128,
			New: func(n uint64) (Instance, error) { return mk(bloom.New(n, 1.0/256)) }},
		{Name: "bloom-counting", FPRBound: 1.0 / 128,
			New: func(n uint64) (Instance, error) { return mk(bloom.NewCounting(n, 1.0/256)) }},
	}
}

// SubjectByName resolves a repro header's subject.
func SubjectByName(name string) (Subject, error) {
	for _, s := range Subjects() {
		if s.Name == name {
			return s, nil
		}
	}
	return Subject{}, fmt.Errorf("oracle: unknown subject %q", name)
}
