package oracle

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vqf"
	"vqf/internal/elastic"
)

// A Property is one equivalence check replayed over (subject, trace) pairs.
type Property struct {
	Name string
	// Applies filters the subject set; nil means every subject.
	Applies func(Subject) bool
	Check   func(Subject, Trace) error
}

// Properties returns the oracle's seven equivalence properties.
func Properties() []Property {
	return []Property{
		{Name: "differential", Check: checkDifferential},
		{Name: "batch-equiv", Applies: hasAnyBatch, Check: checkBatchEquivalence},
		{Name: "optimistic-equiv", Applies: func(s Subject) bool { return s.Concurrent }, Check: checkOptimisticEquivalence},
		{Name: "serialize-identity", Applies: func(s Subject) bool { return s.Name == "filter8" }, Check: checkSerializeIdentity},
		{Name: "elastic-equiv", Applies: func(s Subject) bool { return s.Name == "elastic" }, Check: checkElasticEquivalence},
		{Name: "iterate-rebuild", Applies: hasIterate, Check: checkIterateRebuild},
		{Name: "freeze-equiv", Applies: hasFreeze, Check: checkFreezeEquivalence},
	}
}

// PropertyByName resolves a repro header's property.
func PropertyByName(name string) (Property, error) {
	for _, p := range Properties() {
		if p.Name == name {
			return p, nil
		}
	}
	return Property{}, fmt.Errorf("oracle: unknown property %q", name)
}

func hasAnyBatch(s Subject) bool {
	inst, err := s.New(1024)
	if err != nil {
		return false
	}
	if _, ok := inst.(insertBatcher); ok {
		return true
	}
	if _, ok := inst.(containsBatcher); ok {
		return true
	}
	return false
}

// hashIterator is the fingerprint-iteration surface the core VQF filters
// expose: yield every stored fingerprint as a canonical hash that range-
// reduces back to the same (block, bucket, fingerprint).
type hashIterator interface {
	IterateHashes(yield func(h uint64) bool) bool
}

func hasIterate(s Subject) bool {
	inst, err := s.New(1024)
	if err != nil {
		return false
	}
	_, ok := inst.(hashIterator)
	return ok
}

// checkIterateRebuild replays the trace, then iterates the end-state filter
// and re-inserts every yielded canonical hash into a fresh instance of the
// same subject. The rebuild must accept every hash, hold exactly the same
// count, and answer positive for every key the original held — the
// iterator's contract is that its output is a lossless re-insertable image
// of the stored fingerprints.
func checkIterateRebuild(s Subject, tr Trace) error {
	inst, err := s.New(tr.NSlots)
	if err != nil {
		return fmt.Errorf("constructing %s(%d): %v", s.Name, tr.NSlots, err)
	}
	m := newModel()
	if err := replay(s, inst, m, tr); err != nil {
		return err
	}
	src := inst.(hashIterator)
	dst, err := s.New(tr.NSlots)
	if err != nil {
		return fmt.Errorf("constructing rebuild target: %v", err)
	}
	var insertFail error
	n := uint64(0)
	src.IterateHashes(func(h uint64) bool {
		if !dst.Insert(h) {
			insertFail = fmt.Errorf("rebuild rejected yielded hash %#x at count %d", h, n)
			return false
		}
		n++
		return true
	})
	if insertFail != nil {
		return insertFail
	}
	if dst.Count() != inst.Count() {
		return fmt.Errorf("rebuild holds %d fingerprints, source %d", dst.Count(), inst.Count())
	}
	for _, k := range m.liveKeys() {
		if !dst.Contains(k) {
			return fmt.Errorf("rebuild lost live key %#x", k)
		}
	}
	return nil
}

// freezer is the frozen-tier surface the elastic cascades expose: rebuild
// qualifying retired levels into immutable fuse levels.
type freezer interface {
	FreezeNow() elastic.FreezeResult
}

func hasFreeze(s Subject) bool {
	inst, err := s.New(1024)
	if err != nil {
		return false
	}
	_, ok := inst.(freezer)
	return ok
}

// checkFreezeEquivalence is the frozen tier's ground-truth property: replay
// the trace, force a full freeze pass, and the cascade must still be
// semantically the same filter — no false negative for any live key, the
// exact model count, and fresh-key FPR within the budget allowance. Then
// remove half the live keys (every one must succeed against the now-frozen
// tier, tombstones included, possibly thawing levels back to VQF) and audit
// the surviving half plus the exact count again.
func checkFreezeEquivalence(s Subject, tr Trace) error {
	inst, err := s.New(tr.NSlots)
	if err != nil {
		return fmt.Errorf("constructing %s(%d): %v", s.Name, tr.NSlots, err)
	}
	m := newModel()
	if err := replay(s, inst, m, tr); err != nil {
		return err
	}
	inst.(freezer).FreezeNow()
	live := m.liveKeys()
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	for _, k := range live {
		if !inst.Contains(k) {
			return fmt.Errorf("post-freeze false negative for live key %#x", k)
		}
	}
	if got, want := inst.Count(), uint64(m.count()); got != want {
		return fmt.Errorf("post-freeze Count() = %d, exact model holds %d", got, want)
	}
	if s.FPRBound > 0 {
		hits := 0
		for i := 0; i < fprProbes; i++ {
			if inst.Contains(probeKeyFor(tr.NSlots^0xf0e2, i)) {
				hits++
			}
		}
		if limit := int(4*s.FPRBound*fprProbes) + 10; hits > limit {
			return fmt.Errorf("post-freeze %d/%d fresh-key hits, limit %d (bound %g)",
				hits, fprProbes, limit, s.FPRBound)
		}
	}
	// Remove half the live keys: each must land exactly once (the frozen
	// tier's vault keeps removes exact), and enough of them pushes fuse
	// levels through their tombstone threshold and back to VQF.
	cut := len(live) / 2
	for _, k := range live[:cut] {
		if !inst.Remove(k) {
			return fmt.Errorf("post-freeze remove of live key %#x failed", k)
		}
		m.remove(k)
	}
	if got, want := inst.Count(), uint64(m.count()); got != want {
		return fmt.Errorf("post-thaw Count() = %d, exact model holds %d", got, want)
	}
	for _, k := range live[cut:] {
		if !inst.Contains(k) {
			return fmt.Errorf("post-thaw false negative for live key %#x", k)
		}
	}
	return nil
}

// replay drives one instance and the exact model through the trace,
// enforcing replay closure: removes of non-live keys are skipped on both
// sides, and inserts the filter rejects are left out of the model. Query ops
// assert the no-false-negative guarantee as they go.
func replay(s Subject, inst Instance, m *model, tr Trace) error {
	for i, op := range tr.Ops {
		switch op.Kind {
		case OpInsert:
			if inst.Insert(op.Key) {
				m.insert(op.Key)
			} else if !m.live(op.Key) && m.count() < int(tr.NSlots)/2 {
				// A fresh key failing far below capacity is a bug. A
				// duplicate failing is not: fingerprint filters bound how
				// many identical copies two candidate buckets can hold
				// (cuckoo-family: 2×bucket-cap), so a rejected duplicate is
				// within contract — the model simply doesn't record it.
				return fmt.Errorf("op %d: insert of %#x failed at %d/%d live keys, far below capacity",
					i, op.Key, m.count(), tr.NSlots)
			}
		case OpRemove:
			if s.NoRemove || !m.live(op.Key) {
				continue
			}
			if !inst.Remove(op.Key) {
				return fmt.Errorf("op %d: remove of live key %#x failed", i, op.Key)
			}
			m.remove(op.Key)
		case OpQuery:
			if m.live(op.Key) && !inst.Contains(op.Key) {
				return fmt.Errorf("op %d: false negative for live key %#x", i, op.Key)
			}
		}
	}
	return nil
}

// fprProbes is the fresh-key sample size for the false-positive check.
const fprProbes = 20000

// checkDifferential is the ground-truth property: replay the trace against
// the exact model, then audit the end state — every live key answers
// positive, the stored count matches the model exactly, and the
// false-positive rate over fresh keys stays within 4× the variant's bound
// plus a 10-hit allowance (never flaky, still catches broken hashing).
func checkDifferential(s Subject, tr Trace) error {
	inst, err := s.New(tr.NSlots)
	if err != nil {
		return fmt.Errorf("constructing %s(%d): %v", s.Name, tr.NSlots, err)
	}
	m := newModel()
	if err := replay(s, inst, m, tr); err != nil {
		return err
	}
	for _, k := range m.liveKeys() {
		if !inst.Contains(k) {
			return fmt.Errorf("end state: false negative for live key %#x", k)
		}
	}
	if got, want := inst.Count(), uint64(m.count()); got != want {
		return fmt.Errorf("end state: Count() = %d, exact model holds %d", got, want)
	}
	if s.FPRBound > 0 {
		hits := 0
		for i := 0; i < fprProbes; i++ {
			if inst.Contains(probeKeyFor(tr.NSlots, i)) {
				hits++
			}
		}
		if limit := int(4*s.FPRBound*fprProbes) + 10; hits > limit {
			return fmt.Errorf("end state: %d/%d fresh-key hits, limit %d (bound %g)",
				hits, fprProbes, limit, s.FPRBound)
		}
	}
	return nil
}

// checkBatchEquivalence: batch operations must be semantically equivalent to
// one-at-a-time operations. Two sub-checks: (a) on the very same instance,
// ContainsBatch must agree elementwise with per-key Contains — bit-exact,
// false positives included; (b) a twin instance fed the trace through the
// batch APIs must hold the same key multiset as the one fed per-op: equal
// counts and no false negatives for live keys. Physical placement may differ
// (batching radix-reorders inserts), so absent-key answers are not compared
// across twins.
func checkBatchEquivalence(s Subject, tr Trace) error {
	single, err := s.New(tr.NSlots)
	if err != nil {
		return err
	}
	batched, err := s.New(tr.NSlots)
	if err != nil {
		return err
	}
	m := newModel()
	if err := replay(s, single, m, tr); err != nil {
		return fmt.Errorf("per-op replay: %w", err)
	}

	bm := newModel()
	ib, canIB := batched.(insertBatcher)
	rb, canRB := batched.(removeBatcher)
	run := make([]uint64, 0, len(tr.Ops))
	flush := func(kind OpKind) error {
		if len(run) == 0 {
			return nil
		}
		defer func() { run = run[:0] }()
		switch kind {
		case OpInsert:
			var n int
			if canIB {
				n = ib.InsertBatch(run)
			} else {
				for _, k := range run {
					if batched.Insert(k) {
						n++
					}
				}
			}
			if n != len(run) {
				return fmt.Errorf("batch insert of %d keys stored %d below capacity", len(run), n)
			}
			for _, k := range run {
				bm.insert(k)
			}
		case OpRemove:
			var n int
			if canRB {
				n = rb.RemoveBatch(run)
			} else {
				for _, k := range run {
					if batched.Remove(k) {
						n++
					}
				}
			}
			if n != len(run) {
				return fmt.Errorf("batch remove of %d live keys removed %d", len(run), n)
			}
			for _, k := range run {
				bm.remove(k)
			}
		}
		return nil
	}
	// Runs of consecutive same-kind ops flush as one batch call. Remove
	// eligibility must account for the un-flushed run: pending inserts make a
	// key removable, pending removes use up its copies.
	var pendingKind OpKind
	pending := make(map[uint64]int)
	for _, op := range tr.Ops {
		kind := op.Kind
		if kind == OpQuery {
			continue // queries are checked against the end state below
		}
		if kind == OpRemove {
			if s.NoRemove {
				continue
			}
			avail := bm.counts[op.Key]
			switch pendingKind {
			case OpInsert:
				avail += pending[op.Key]
			case OpRemove:
				avail -= pending[op.Key]
			}
			if avail <= 0 {
				continue
			}
		}
		if kind != pendingKind {
			if err := flush(pendingKind); err != nil {
				return err
			}
			clear(pending)
			pendingKind = kind
		}
		run = append(run, op.Key)
		pending[op.Key]++
	}
	if err := flush(pendingKind); err != nil {
		return err
	}

	if sc, bc := single.Count(), batched.Count(); sc != bc {
		return fmt.Errorf("per-op count %d != batched count %d", sc, bc)
	}
	live := m.liveKeys()
	for _, k := range live {
		if !batched.Contains(k) {
			return fmt.Errorf("batched twin: false negative for live key %#x", k)
		}
	}
	// Sub-check (a): same instance, batch vs per-key lookup, bit-exact.
	if cb, ok := batched.(containsBatcher); ok {
		probes := append([]uint64(nil), live...)
		for i := 0; i < 1024; i++ {
			probes = append(probes, probeKeyFor(tr.NSlots^0x5a5a, i))
		}
		got := cb.ContainsBatch(probes, nil)
		for i, k := range probes {
			if want := batched.Contains(k); got[i] != want {
				return fmt.Errorf("ContainsBatch[%d] (%#x) = %v, per-key Contains = %v", i, k, got[i], want)
			}
		}
	}
	return nil
}

// checkOptimisticEquivalence: under concurrent churn of disjoint keys, the
// optimistic (seqlock) read path and the locked read path must both uphold
// the no-false-negative guarantee for pinned keys — keys inserted before the
// churn and never removed. A torn or stale optimistic read that slips past
// the version check shows up here as a pinned-key miss.
func checkOptimisticEquivalence(s Subject, tr Trace) error {
	inst, err := s.New(tr.NSlots)
	if err != nil {
		return err
	}
	pinned := make([]uint64, 0, 512)
	seen := make(map[uint64]bool)
	for _, op := range tr.Ops {
		if op.Kind == OpInsert && !seen[op.Key] && len(pinned) < 512 {
			seen[op.Key] = true
			pinned = append(pinned, op.Key)
		}
	}
	for _, k := range pinned {
		if !inst.Insert(k) {
			return fmt.Errorf("pinning insert of %#x failed below capacity", k)
		}
	}
	lr, hasLocked := inst.(lockedReader)

	const churners = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := splitmix64{state: uint64(id)*0x9e3779b97f4a7c15 + 1}
			local := make([]uint64, 0, 64)
			for !stop.Load() {
				if len(local) < 64 && rng.next()%3 != 0 {
					k := probeKeyFor(uint64(id)<<32|0xc0ffee, int(rng.next()%1_000_000))
					if seen[k] {
						continue // never collide with a pinned key
					}
					if inst.Insert(k) {
						local = append(local, k)
					}
				} else if len(local) > 0 {
					inst.Remove(local[len(local)-1])
					local = local[:len(local)-1]
				}
			}
			for _, k := range local {
				inst.Remove(k)
			}
		}(w)
	}
	var failure error
	for round := 0; round < 60 && failure == nil; round++ {
		for _, k := range pinned {
			if !inst.Contains(k) {
				failure = fmt.Errorf("optimistic read lost pinned key %#x during churn", k)
				break
			}
			if hasLocked && !lr.ContainsLocked(k) {
				failure = fmt.Errorf("locked read lost pinned key %#x during churn", k)
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if failure != nil {
		return failure
	}
	// Quiesced: both read paths must agree exactly, and pinned keys remain.
	for _, k := range pinned {
		opt := inst.Contains(k)
		if !opt {
			return fmt.Errorf("pinned key %#x missing after churn quiesced", k)
		}
		if hasLocked && lr.ContainsLocked(k) != opt {
			return fmt.Errorf("quiesced read paths disagree on %#x", k)
		}
	}
	return nil
}

// checkSerializeIdentity: serialize→deserialize must be the identity for all
// three envelope kinds (Filter, Map, Elastic). The reloaded instance must
// answer every probe — live, removed and fresh — exactly as the original,
// false positives included, and re-serializing must produce the identical
// byte stream.
func checkSerializeIdentity(_ Subject, tr Trace) error {
	m := newModel()

	filt := vqf.New(tr.NSlots)
	vmap := vqf.NewMap(tr.NSlots)
	el := vqf.NewElastic(vqf.WithInitialCapacity(1024), vqf.WithFalsePositiveRate(1.0/128))
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpInsert:
			if err := filt.AddHash(op.Key); err != nil {
				return fmt.Errorf("filter AddHash: %v", err)
			}
			if err := vmap.PutHash(op.Key, byte(op.Key>>7)); err != nil {
				return fmt.Errorf("map PutHash: %v", err)
			}
			if err := el.AddHash(op.Key); err != nil {
				return fmt.Errorf("elastic AddHash: %v", err)
			}
			m.insert(op.Key)
		case OpRemove:
			if !m.live(op.Key) {
				continue
			}
			filt.RemoveHash(op.Key)
			vmap.DeleteHash(op.Key)
			el.RemoveHash(op.Key)
			m.remove(op.Key)
		}
	}

	probes := m.liveKeys()
	for i := 0; i < 2048; i++ {
		probes = append(probes, probeKeyFor(tr.NSlots^0x7e57, i))
	}

	// Kind 1: Filter.
	var buf bytes.Buffer
	if _, err := filt.WriteTo(&buf); err != nil {
		return fmt.Errorf("filter serialize: %v", err)
	}
	stream := buf.Bytes()
	filt2, err := vqf.Read(bytes.NewReader(stream))
	if err != nil {
		return fmt.Errorf("filter deserialize: %v", err)
	}
	if filt2.Count() != filt.Count() {
		return fmt.Errorf("filter count changed across round-trip: %d -> %d", filt.Count(), filt2.Count())
	}
	for _, k := range probes {
		if filt.ContainsHash(k) != filt2.ContainsHash(k) {
			return fmt.Errorf("filter answers differ for %#x after round-trip", k)
		}
	}
	var buf2 bytes.Buffer
	if _, err := filt2.WriteTo(&buf2); err != nil {
		return fmt.Errorf("filter re-serialize: %v", err)
	}
	if !bytes.Equal(stream, buf2.Bytes()) {
		return fmt.Errorf("filter re-serialization is not byte-identical")
	}

	// Kind 2: Map (membership and stored values).
	buf.Reset()
	if _, err := vmap.WriteTo(&buf); err != nil {
		return fmt.Errorf("map serialize: %v", err)
	}
	vmap2, err := vqf.NewMapFromReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("map deserialize: %v", err)
	}
	for _, k := range probes {
		v1, ok1 := vmap.GetHash(k)
		v2, ok2 := vmap2.GetHash(k)
		if ok1 != ok2 || v1 != v2 {
			return fmt.Errorf("map answers differ for %#x after round-trip: (%d,%v) vs (%d,%v)",
				k, v1, ok1, v2, ok2)
		}
	}

	// Kind 3: Elastic.
	buf.Reset()
	if _, err := el.WriteTo(&buf); err != nil {
		return fmt.Errorf("elastic serialize: %v", err)
	}
	el2, err := vqf.ReadElastic(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("elastic deserialize: %v", err)
	}
	if el2.Count() != el.Count() || el2.Levels() != el.Levels() {
		return fmt.Errorf("elastic shape changed across round-trip: %d keys/%d levels -> %d/%d",
			el.Count(), el.Levels(), el2.Count(), el2.Levels())
	}
	for _, k := range probes {
		if el.ContainsHash(k) != el2.ContainsHash(k) {
			return fmt.Errorf("elastic answers differ for %#x after round-trip", k)
		}
	}
	return nil
}

// checkElasticEquivalence: a cascade that grew through several levels must be
// semantically equivalent to one flat filter holding the same keyset — same
// count, no false negatives — and its false-positive rate must honor the
// configured whole-cascade budget (the per-level budgets εᵢ = ε(1−r)rⁱ sum
// to at most ε), within the same 4× statistical allowance as the
// differential check.
func checkElasticEquivalence(s Subject, tr Trace) error {
	casc, err := s.New(tr.NSlots)
	if err != nil {
		return err
	}
	// The flat reference is a 16-bit core filter sized for the whole trace:
	// its FPR (≈2⁻¹⁵) is far below the cascade budget, so any reference miss
	// is a genuine false negative, not comparator noise.
	flat, err := SubjectByName("filter16")
	if err != nil {
		return err
	}
	ref, err := flat.New(tr.NSlots)
	if err != nil {
		return err
	}
	m := newModel()
	for i, op := range tr.Ops {
		switch op.Kind {
		case OpInsert:
			if !casc.Insert(op.Key) {
				return fmt.Errorf("op %d: cascade insert of %#x failed (growth should absorb it)", i, op.Key)
			}
			if !ref.Insert(op.Key) {
				return fmt.Errorf("op %d: reference insert of %#x failed", i, op.Key)
			}
			m.insert(op.Key)
		case OpRemove:
			if !m.live(op.Key) {
				continue
			}
			if !casc.Remove(op.Key) {
				return fmt.Errorf("op %d: cascade remove of live key %#x failed", i, op.Key)
			}
			ref.Remove(op.Key)
			m.remove(op.Key)
		case OpQuery:
			if m.live(op.Key) && !casc.Contains(op.Key) {
				return fmt.Errorf("op %d: cascade false negative for live key %#x", i, op.Key)
			}
		}
	}
	if cc, rc := casc.Count(), ref.Count(); cc != rc {
		return fmt.Errorf("cascade count %d != flat reference count %d", cc, rc)
	}
	for _, k := range m.liveKeys() {
		if !casc.Contains(k) {
			return fmt.Errorf("cascade false negative for live key %#x", k)
		}
		if !ref.Contains(k) {
			return fmt.Errorf("flat reference false negative for live key %#x", k)
		}
	}
	hits := 0
	for i := 0; i < fprProbes; i++ {
		if casc.Contains(probeKeyFor(tr.NSlots^0xe1a5, i)) {
			hits++
		}
	}
	if limit := int(4*s.FPRBound*fprProbes) + 10; hits > limit {
		return fmt.Errorf("cascade FPR %d/%d exceeds budget limit %d (ε=%g)",
			hits, fprProbes, limit, s.FPRBound)
	}
	return nil
}
