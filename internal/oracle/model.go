package oracle

// model is the exact ground truth: a multiset of live keys. Filters answer
// approximately; the model answers exactly, and the differential property
// holds each filter to its one hard guarantee — no false negatives for keys
// that are live in the model.
type model struct {
	counts map[uint64]int
	total  int
}

func newModel() *model {
	return &model{counts: make(map[uint64]int)}
}

func (m *model) insert(k uint64) {
	m.counts[k]++
	m.total++
}

// remove decrements one instance of k, reporting whether k was live. Callers
// replaying a trace skip the filter op entirely when this returns false —
// the subsequence-closure rule that keeps shrinking sound.
func (m *model) remove(k uint64) bool {
	if m.counts[k] == 0 {
		return false
	}
	m.counts[k]--
	if m.counts[k] == 0 {
		delete(m.counts, k)
	}
	m.total--
	return true
}

func (m *model) live(k uint64) bool { return m.counts[k] > 0 }

func (m *model) count() int { return m.total }

// liveKeys returns the distinct live keys (order unspecified).
func (m *model) liveKeys() []uint64 {
	keys := make([]uint64, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	return keys
}
