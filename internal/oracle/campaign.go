package oracle

import (
	"fmt"
	"os"
	"path/filepath"
)

// Config bounds a verification campaign.
type Config struct {
	// Seed derives every trace deterministically; a CI failure log's seed
	// reproduces the exact campaign locally.
	Seed uint64
	// Rounds is the number of traces per (subject, property) pair.
	Rounds int
	// Ops and Universe bound each generated trace.
	Ops      int
	Universe int
	// ReproDir, when non-empty, receives a shrunk .trace file per failure.
	ReproDir string
	// Log, when non-nil, receives one line per campaign event.
	Log func(format string, args ...any)
}

// Failure is one property violation, already shrunk.
type Failure struct {
	Subject  string
	Property string
	Seed     uint64
	Err      error
	Trace    Trace
	// ReproPath is the emitted trace file, if ReproDir was set.
	ReproPath string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s/%s (seed %#x, %d ops after shrink): %v",
		f.Subject, f.Property, f.Seed, len(f.Trace.Ops), f.Err)
}

// Run executes the campaign: every property against every subject it applies
// to, Rounds traces each. Failures are shrunk to minimal traces and, when
// ReproDir is set, emitted as replayable repro files named
// <subject>-<property>-<seed>.trace.
func Run(cfg Config) []Failure {
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var failures []Failure
	for _, prop := range Properties() {
		for _, sub := range Subjects() {
			if prop.Applies != nil && !prop.Applies(sub) {
				continue
			}
			for round := 0; round < cfg.Rounds; round++ {
				seed := cfg.Seed ^ mixSeed(sub.Name, prop.Name, round)
				tr := Generate(seed, GenConfig{Ops: cfg.Ops, Universe: cfg.Universe})
				err := prop.Check(sub, tr)
				if err == nil {
					continue
				}
				logf("oracle: %s/%s failed (seed %#x): %v — shrinking %d ops",
					sub.Name, prop.Name, seed, err, len(tr.Ops))
				shrunk := Shrink(tr, func(cand Trace) bool {
					return prop.Check(sub, cand) != nil
				})
				// Re-run to capture the minimal trace's own error message.
				ferr := prop.Check(sub, shrunk)
				if ferr == nil {
					ferr = err // non-deterministic failure: keep the original
				}
				f := Failure{Subject: sub.Name, Property: prop.Name, Seed: seed, Err: ferr, Trace: shrunk}
				if cfg.ReproDir != "" {
					if path, werr := emitRepro(cfg.ReproDir, f); werr != nil {
						logf("oracle: writing repro: %v", werr)
					} else {
						f.ReproPath = path
					}
				}
				logf("oracle: shrunk to %d ops: %v", len(shrunk.Ops), ferr)
				failures = append(failures, f)
			}
		}
	}
	return failures
}

// mixSeed folds subject, property and round into a seed offset so every
// (subject, property, round) cell sees an independent trace.
func mixSeed(subject, property string, round int) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range []string{subject, property} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	return h ^ uint64(round)*0x9e3779b97f4a7c15
}

// emitRepro writes the shrunk trace as a replayable repro file.
func emitRepro(dir string, f Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s-%x.trace", f.Subject, f.Property, f.Seed))
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer file.Close()
	if err := WriteTrace(file, f.Subject, f.Property, f.Trace); err != nil {
		return "", err
	}
	return path, nil
}

// ReplayRepro re-runs one parsed repro file's property; nil means the bug it
// recorded stays fixed.
func ReplayRepro(rep Repro) error {
	sub, err := SubjectByName(rep.Subject)
	if err != nil {
		return err
	}
	prop, err := PropertyByName(rep.Property)
	if err != nil {
		return err
	}
	return prop.Check(sub, rep.Trace)
}
