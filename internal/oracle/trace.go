// Package oracle is the differential and metamorphic verification subsystem:
// it drives every filter variant in the module through randomized operation
// traces against an exact ground-truth multiset, cross-checks the
// equivalence properties the codebase relies on (batch ≡ one-at-a-time,
// optimistic ≡ locked reads, serialize ≡ identity, elastic cascade ≡ flat
// filter), shrinks any failure to a minimal reproducing trace, and emits it
// as a regression artifact under testdata/repros/.
//
// The design follows the differential-testing methodology of the Xor Filters
// paper (validate probabilistic filters against an exact set) and the
// metamorphic style of cross-implementation agreement the VQF paper itself
// uses in its evaluation (§7): properties compare two executions that must
// agree, so no property needs to know a filter's exact false-positive
// behavior — only its guarantees.
package oracle

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// OpKind is a trace operation type.
type OpKind uint8

const (
	// OpInsert adds a key.
	OpInsert OpKind = iota
	// OpRemove removes one instance of a key. During replay a remove whose
	// key is not live in the exact model is skipped entirely — this closure
	// under subsequence is what makes shrinking sound: any subset of a trace
	// is itself a valid trace.
	OpRemove
	// OpQuery asserts no-false-negative membership for live keys.
	OpQuery
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpQuery:
		return "query"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one trace operation on a pre-hashed 64-bit key. Keys are used as
// hashes directly (the public API's AddHash path), so a trace replays
// identically regardless of any instance's seed.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Trace is a replayable operation sequence plus the sizing its subject needs.
type Trace struct {
	// NSlots is the slot budget the subject is built with; sized by the
	// generator so the live set stays below every variant's maximum load.
	NSlots uint64
	Ops    []Op
}

// splitmix64 is the PRNG used everywhere in the oracle: tiny, seedable and
// deterministic across runs, so a failure seed in a CI log reproduces
// locally. (math/rand would also do, but an explicit generator keeps traces
// stable across Go releases.)
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// keyFor maps (seed, index) into a dense key universe. A small universe
// forces fingerprint collisions and duplicate inserts — the regimes where
// multiset semantics and remove ordering actually bite.
func keyFor(seed uint64, idx, universe int) uint64 {
	g := splitmix64{state: seed ^ uint64(idx%universe)*0x2545f4914f6cdd1d}
	return g.next()
}

// probeKeyFor yields keys provably outside the trace universe (different
// derivation chain), for false-positive measurement.
func probeKeyFor(seed uint64, idx int) uint64 {
	g := splitmix64{state: (seed ^ 0xabcdef123456789) + uint64(idx)*0x9e3779b97f4a7c15}
	v := g.next()
	return g.next() ^ v<<1
}

// GenConfig bounds trace generation.
type GenConfig struct {
	Ops      int // total operations per trace
	Universe int // distinct keys drawn from
}

// Generate builds a randomized trace from seed: ~55% inserts, ~20% removes
// of currently-live keys, ~25% queries (live and fresh keys mixed). The
// subject's slot budget is sized so the peak live count stays below ~60%
// load — every variant's safe operating region — so inserts are expected to
// succeed and a failed insert is itself suspicious.
func Generate(seed uint64, cfg GenConfig) Trace {
	rng := splitmix64{state: seed}
	live := make([]uint64, 0, cfg.Ops)
	ops := make([]Op, 0, cfg.Ops)
	peak := 0
	for i := 0; i < cfg.Ops; i++ {
		r := rng.next() % 100
		switch {
		case r < 55 || len(live) == 0:
			k := keyFor(seed, int(rng.next()%uint64(cfg.Universe)), cfg.Universe)
			ops = append(ops, Op{OpInsert, k})
			live = append(live, k)
			if len(live) > peak {
				peak = len(live)
			}
		case r < 75:
			j := int(rng.next() % uint64(len(live)))
			ops = append(ops, Op{OpRemove, live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			if rng.next()%2 == 0 && len(live) > 0 {
				ops = append(ops, Op{OpQuery, live[int(rng.next()%uint64(len(live)))]})
			} else {
				ops = append(ops, Op{OpQuery, keyFor(seed, int(rng.next()%uint64(cfg.Universe)), cfg.Universe)})
			}
		}
	}
	nslots := uint64(peak)*5/3 + 256 // peak load ≤ 60%
	return Trace{NSlots: nslots, Ops: ops}
}

// WriteTrace serializes a trace in the one-op-per-line repro format. The
// header records the subject and property so the repro test can re-run the
// exact failing check.
func WriteTrace(w io.Writer, subject, property string, tr Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vqf oracle repro\n")
	fmt.Fprintf(bw, "subject %s\n", subject)
	fmt.Fprintf(bw, "property %s\n", property)
	fmt.Fprintf(bw, "nslots %d\n", tr.NSlots)
	for _, op := range tr.Ops {
		fmt.Fprintf(bw, "%s %#x\n", op.Kind, op.Key)
	}
	return bw.Flush()
}

// Repro is a parsed repro file: the trace plus the subject/property pair it
// must be replayed against.
type Repro struct {
	Subject  string
	Property string
	Trace    Trace
}

// ParseRepro reads the WriteTrace format.
func ParseRepro(r io.Reader) (Repro, error) {
	var rep Repro
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return rep, fmt.Errorf("oracle: malformed repro line %q", line)
		}
		switch fields[0] {
		case "subject":
			rep.Subject = fields[1]
		case "property":
			rep.Property = fields[1]
		case "nslots":
			n, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return rep, fmt.Errorf("oracle: bad nslots %q: %v", fields[1], err)
			}
			rep.Trace.NSlots = n
		case "insert", "remove", "query":
			k, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return rep, fmt.Errorf("oracle: bad key %q: %v", fields[1], err)
			}
			var kind OpKind
			switch fields[0] {
			case "insert":
				kind = OpInsert
			case "remove":
				kind = OpRemove
			default:
				kind = OpQuery
			}
			rep.Trace.Ops = append(rep.Trace.Ops, Op{kind, k})
		default:
			return rep, fmt.Errorf("oracle: unknown repro directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if rep.Subject == "" || rep.Property == "" {
		return rep, fmt.Errorf("oracle: repro missing subject or property header")
	}
	return rep, nil
}
