package oracle

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// -oracle.long enables the CI soak: many more rounds and longer traces.
// Short mode (go test -short) runs a minimal smoke campaign.
var (
	longCampaign = flag.Bool("oracle.long", false, "run the long oracle soak campaign")
	campaignSeed = flag.Uint64("oracle.seed", 0x5eed0f5eed, "campaign base seed")
)

func campaignConfig(t *testing.T) Config {
	cfg := Config{
		Seed:     *campaignSeed,
		Rounds:   2,
		Ops:      4000,
		Universe: 1200,
		Log:      t.Logf,
	}
	if testing.Short() {
		cfg.Rounds, cfg.Ops, cfg.Universe = 1, 1200, 400
	}
	if *longCampaign {
		cfg.Rounds, cfg.Ops, cfg.Universe = 8, 20000, 5000
	}
	return cfg
}

// TestCampaign is the oracle's main entry point under go test: every
// property across every applicable subject. Failures arrive pre-shrunk with
// a repro file under the test's temp dir; promote such a file into
// testdata/repros/ when fixing the bug it found.
func TestCampaign(t *testing.T) {
	cfg := campaignConfig(t)
	cfg.ReproDir = t.TempDir()
	for _, f := range Run(cfg) {
		data, _ := os.ReadFile(f.ReproPath)
		t.Errorf("%s\nrepro trace (%s):\n%s", f, f.ReproPath, data)
	}
}

// TestReprosStayFixed replays every committed repro trace: each one is the
// minimal witness of a bug this repo fixed, and must keep passing.
func TestReprosStayFixed(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "repros")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".trace") {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ParseRepro(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if err := ReplayRepro(rep); err != nil {
				t.Errorf("regression: %v", err)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no committed repro traces found")
	}
}

// TestTraceRoundTrip pins the repro text format: write→parse→write is the
// identity.
func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(42, GenConfig{Ops: 300, Universe: 64})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "filter8", "differential", tr); err != nil {
		t.Fatal(err)
	}
	rep, err := ParseRepro(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Subject != "filter8" || rep.Property != "differential" {
		t.Fatalf("header lost: %+v", rep)
	}
	if rep.Trace.NSlots != tr.NSlots || !reflect.DeepEqual(rep.Trace.Ops, tr.Ops) {
		t.Fatal("trace mutated across round-trip")
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, rep.Subject, rep.Property, rep.Trace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized repro differs")
	}
}

// TestShrinkMinimizes checks the shrinker on a synthetic failure: a
// predicate that needs one specific insert followed by one specific remove
// must shrink to exactly those two ops.
func TestShrinkMinimizes(t *testing.T) {
	tr := Generate(7, GenConfig{Ops: 2000, Universe: 500})
	const needle = 0xdeadbeef
	tr.Ops[137] = Op{OpInsert, needle}
	tr.Ops[1490] = Op{OpRemove, needle}
	fails := func(c Trace) bool {
		seenInsert := false
		for _, op := range c.Ops {
			if op.Kind == OpInsert && op.Key == needle {
				seenInsert = true
			}
			if op.Kind == OpRemove && op.Key == needle && seenInsert {
				return true
			}
		}
		return false
	}
	if !fails(tr) {
		t.Fatal("synthetic predicate does not fail on the full trace")
	}
	got := Shrink(tr, fails)
	if len(got.Ops) != 2 {
		t.Fatalf("shrunk to %d ops, want 2: %v", len(got.Ops), got.Ops)
	}
	if got.Ops[0] != (Op{OpInsert, needle}) || got.Ops[1] != (Op{OpRemove, needle}) {
		t.Fatalf("wrong minimal trace: %v", got.Ops)
	}
}

// TestSubjectsBuild verifies every registered subject constructs at the
// campaign's standard sizing and that capability flags match reality.
func TestSubjectsBuild(t *testing.T) {
	for _, s := range Subjects() {
		inst, err := s.New(4096)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if !inst.Insert(12345) {
			t.Errorf("%s: first insert failed", s.Name)
		}
		if !inst.Contains(12345) {
			t.Errorf("%s: inserted key missing", s.Name)
		}
		if s.Concurrent {
			if _, ok := inst.(lockedReader); !ok && strings.HasPrefix(s.Name, "cfilter") {
				t.Errorf("%s: concurrent core filter without ContainsLocked", s.Name)
			}
		}
	}
}
