package oracle

// Shrink reduces a failing trace to a locally minimal one with the classic
// ddmin strategy: repeatedly try dropping chunks of halving size, keeping
// any reduction that still fails. Traces are closed under subsequence
// (replay skips removes of non-live keys), so every candidate is a valid
// trace and the shrunk result replays standalone.
//
// fails must be deterministic for a fixed trace; the concurrent property is
// shrunk best-effort (a race that stops reproducing simply stops shrinking).
// The step budget bounds worst-case work on large traces.
func Shrink(tr Trace, fails func(Trace) bool) Trace {
	const maxSteps = 2000
	steps := 0
	chunk := len(tr.Ops) / 2
	for chunk >= 1 && steps < maxSteps {
		reduced := false
		for start := 0; start < len(tr.Ops) && steps < maxSteps; {
			end := start + chunk
			if end > len(tr.Ops) {
				end = len(tr.Ops)
			}
			cand := Trace{NSlots: tr.NSlots}
			cand.Ops = append(cand.Ops, tr.Ops[:start]...)
			cand.Ops = append(cand.Ops, tr.Ops[end:]...)
			steps++
			if len(cand.Ops) < len(tr.Ops) && fails(cand) {
				tr = cand
				reduced = true
				// Keep start: the next chunk slid into this position.
			} else {
				start = end
			}
		}
		if !reduced || chunk == 1 {
			chunk /= 2
		}
	}
	return tr
}
