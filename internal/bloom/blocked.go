package bloom

import (
	"math/bits"

	"vqf/internal/hashing"
)

// Blocked is a blocked Bloom filter [Putze et al. 2007]: each key's k bits
// all fall in one 512-bit (cache-line) block, so operations touch exactly one
// cache line. It trades a slightly higher false-positive rate for locality.
type Blocked struct {
	blocks [][8]uint64 // 512-bit blocks
	mask   uint64
	k      uint
	n      uint64
}

// NewBlocked creates a blocked Bloom filter sized for n items at roughly the
// given false-positive rate. The per-block rate is inflated by block-load
// variance, so k is chosen one higher than the classic optimum.
func NewBlocked(n uint64, fpr float64) *Blocked {
	m, k := Params(n, fpr)
	nblocks := nextPow2((m + 511) / 512)
	return &Blocked{blocks: make([][8]uint64, nblocks), mask: nblocks - 1, k: k + 1}
}

func nextPow2(x uint64) uint64 {
	if x < 1 {
		return 1
	}
	return 1 << bits.Len64(x-1)
}

// Insert adds the pre-hashed key h. It always succeeds.
func (f *Blocked) Insert(h uint64) bool {
	b := &f.blocks[h&f.mask]
	g := hashing.Mix64(h)
	for i := uint(0); i < f.k; i++ {
		bit := g & 511
		g = g>>9 | g<<55 // consume 9 bits per index
		b[bit>>6] |= 1 << (bit & 63)
	}
	f.n++
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Blocked) Contains(h uint64) bool {
	b := &f.blocks[h&f.mask]
	g := hashing.Mix64(h)
	for i := uint(0); i < f.k; i++ {
		bit := g & 511
		g = g>>9 | g<<55
		if b[bit>>6]>>(bit&63)&1 == 0 {
			return false
		}
	}
	return true
}

// Remove is unsupported on a blocked Bloom filter; it always returns false.
func (f *Blocked) Remove(uint64) bool { return false }

// Count returns the number of inserted items.
func (f *Blocked) Count() uint64 { return f.n }

// Capacity mirrors Filter.Capacity for the blocked layout.
func (f *Blocked) Capacity() uint64 {
	return uint64(float64(len(f.blocks)*512) * 0.693 / float64(f.k))
}

// SizeBytes returns the memory footprint of the block array.
func (f *Blocked) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Counting is a counting Bloom filter [Fan et al. 2000]: each bit of the
// standard filter becomes a 4-bit saturating counter, enabling deletion at a
// 4× space cost.
type Counting struct {
	counters []uint8 // one 4-bit counter per nibble, stored one per byte here
	m        uint64
	k        uint
	n        uint64
}

// NewCounting creates a counting Bloom filter sized for n items at the given
// target false-positive rate.
func NewCounting(n uint64, fpr float64) *Counting {
	m, k := Params(n, fpr)
	return &Counting{counters: make([]uint8, m), m: m, k: k}
}

const countingMax = 15 // 4-bit saturating counters

// Insert adds the pre-hashed key h. It always succeeds.
func (f *Counting) Insert(h uint64) bool {
	h1, h2 := deriveHashes(h)
	for i := uint(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.counters[idx] < countingMax {
			f.counters[idx]++
		}
	}
	f.n++
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Counting) Contains(h uint64) bool {
	h1, h2 := deriveHashes(h)
	for i := uint(0); i < f.k; i++ {
		if f.counters[(h1+uint64(i)*h2)%f.m] == 0 {
			return false
		}
	}
	return true
}

// Remove deletes one inserted instance of the pre-hashed key h. Removing a
// key that was never inserted may corrupt the filter (standard CBF hazard).
// Saturated counters are left untouched, which can only cause false
// positives, never false negatives.
func (f *Counting) Remove(h uint64) bool {
	if !f.Contains(h) {
		return false
	}
	h1, h2 := deriveHashes(h)
	for i := uint(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.counters[idx] > 0 && f.counters[idx] < countingMax {
			f.counters[idx]--
		}
	}
	f.n--
	return true
}

// Count returns the number of inserted items.
func (f *Counting) Count() uint64 { return f.n }

// Capacity mirrors Filter.Capacity.
func (f *Counting) Capacity() uint64 {
	return uint64(float64(f.m) * 0.693 / float64(f.k))
}

// SizeBytes returns the footprint of an ideal 4-bit-packed counter array
// (the in-memory representation here spends a byte per counter for speed;
// space accounting uses the packed size, as the paper's Table 1 does).
func (f *Counting) SizeBytes() uint64 { return f.m / 2 }
