package bloom

import (
	"math"
	"math/rand"
	"testing"
)

func TestParams(t *testing.T) {
	m, k := Params(1000, 0.01)
	// Textbook values: m ≈ 9585, k ≈ 7.
	if m < 9000 || m > 10000 {
		t.Errorf("m = %d, want ≈9585", m)
	}
	if k != 7 {
		t.Errorf("k = %d, want 7", k)
	}
	// Degenerate inputs must not panic or return zero hashes.
	if _, k := Params(0, 0.5); k < 1 {
		t.Error("k < 1 for degenerate params")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := New(10000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestBloomFPRWithinBound(t *testing.T) {
	const n = 20000
	f := New(n, 0.01)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.02 {
		t.Errorf("FPR = %.4f, want ≤ 0.02 for 1%% target", rate)
	}
	if rate < 0.001 {
		t.Errorf("FPR = %.4f implausibly low for 1%% target", rate)
	}
	// At optimal sizing roughly half the bits are set.
	if fr := f.FillRatio(); math.Abs(fr-0.5) > 0.05 {
		t.Errorf("fill ratio %.3f, want ≈0.5", fr)
	}
}

func TestBloomRemoveUnsupported(t *testing.T) {
	f := New(100, 0.01)
	f.Insert(42)
	if f.Remove(42) {
		t.Error("Remove on plain Bloom filter returned true")
	}
	if !f.Contains(42) {
		t.Error("key vanished")
	}
}

func TestBlockedNoFalseNegatives(t *testing.T) {
	f := NewBlocked(10000, 0.01)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative in blocked bloom")
		}
	}
}

func TestBlockedFPRReasonable(t *testing.T) {
	const n = 20000
	f := NewBlocked(n, 0.01)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	// Blocked filters pay block-variance: allow up to 4× the target.
	if rate := float64(fp) / probes; rate > 0.04 {
		t.Errorf("blocked FPR = %.4f too high", rate)
	}
}

func TestCountingInsertRemove(t *testing.T) {
	f := NewCounting(10000, 0.01)
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Insert(keys[i])
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
	// Remove half; the rest must remain.
	for _, h := range keys[:2500] {
		if !f.Remove(h) {
			t.Fatal("remove of inserted key failed")
		}
	}
	for _, h := range keys[2500:] {
		if !f.Contains(h) {
			t.Fatal("false negative after removes")
		}
	}
	still := 0
	for _, h := range keys[:2500] {
		if f.Contains(h) {
			still++
		}
	}
	if frac := float64(still) / 2500; frac > 0.05 {
		t.Errorf("%.3f of removed keys still present", frac)
	}
}

func TestCountingRemoveAbsent(t *testing.T) {
	f := NewCounting(1000, 0.01)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		f.Insert(rng.Uint64())
	}
	removed := 0
	for i := 0; i < 10000; i++ {
		if f.Remove(rng.Uint64()) {
			removed++
		}
	}
	if removed > 300 { // bounded by FPR ≈ 1%
		t.Errorf("%d/10000 absent removes succeeded", removed)
	}
}

func TestSizeAccounting(t *testing.T) {
	f := New(100000, 0.01)
	// ~9.585 bits/key → ~120 KB.
	if f.SizeBytes() < 100000 || f.SizeBytes() > 150000 {
		t.Errorf("plain bloom size = %d bytes", f.SizeBytes())
	}
	c := NewCounting(100000, 0.01)
	if c.SizeBytes() < 4*f.SizeBytes()/2 {
		t.Errorf("counting filter not ≈4× larger: %d vs %d", c.SizeBytes(), f.SizeBytes())
	}
	b := NewBlocked(100000, 0.01)
	if b.SizeBytes()%64 != 0 {
		t.Errorf("blocked size %d not block-aligned", b.SizeBytes())
	}
}

func BenchmarkBloomInsert(b *testing.B) {
	f := New(uint64(b.N)+1000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkBloomContains(b *testing.B) {
	f := New(1<<20, 0.01)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<20; i++ {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Contains(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkBlockedInsert(b *testing.B) {
	f := NewBlocked(uint64(b.N)+1000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
