package bloom

import (
	"testing"
	"testing/quick"
)

// Property: Params is monotone — more keys or a tighter FPR never shrink the
// bit budget.
func TestParamsMonotone(t *testing.T) {
	prop := func(n16 uint16, f8 uint8) bool {
		n := uint64(n16) + 1
		fpr := (float64(f8%99) + 1) / 200 // (0, 0.5]
		m1, k1 := Params(n, fpr)
		m2, _ := Params(n*2, fpr)
		m3, k3 := Params(n, fpr/4)
		return m2 >= m1 && m3 >= m1 && k1 >= 1 && k3 >= k1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserted keys are always found, for all three Bloom variants.
func TestPropertyNoFalseNegatives(t *testing.T) {
	plain := New(5000, 0.01)
	blocked := NewBlocked(5000, 0.01)
	counting := NewCounting(5000, 0.01)
	prop := func(h uint64) bool {
		plain.Insert(h)
		blocked.Insert(h)
		counting.Insert(h)
		return plain.Contains(h) && blocked.Contains(h) && counting.Contains(h)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: counting-bloom remove of an inserted key succeeds and never
// removes unrelated keys.
func TestPropertyCountingRemove(t *testing.T) {
	f := NewCounting(5000, 0.001)
	anchor := uint64(0x1234567890abcdef)
	f.Insert(anchor)
	prop := func(h uint64) bool {
		if h == anchor {
			return true
		}
		f.Insert(h)
		if !f.Remove(h) {
			return false
		}
		return f.Contains(anchor)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
