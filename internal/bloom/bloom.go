// Package bloom implements the Bloom filter family used as comparators and
// related work in the vector quotient filter paper: the standard Bloom filter
// [Bloom 1970], the cache-friendly blocked Bloom filter [Putze et al. 2007],
// and the deletion-capable counting Bloom filter [Fan et al. 2000].
//
// All filters consume pre-hashed 64-bit keys; the k index hashes are derived
// with double hashing, which preserves the asymptotic false-positive rate.
package bloom

import (
	"math"

	"vqf/internal/bitvec"
	"vqf/internal/hashing"
)

// Filter is a standard Bloom filter: k bit positions per key in one shared
// bit array. It supports Insert and Contains; deletion is impossible.
type Filter struct {
	bits *bitvec.Bitset
	m    uint64 // number of bits
	k    uint   // hashes per key
	n    uint64 // inserted items
}

// Params returns the optimal bit count m and hash count k for n items at
// false-positive rate fpr: m = −n·ln(fpr)/ln²2, k = (m/n)·ln2.
func Params(n uint64, fpr float64) (m uint64, k uint) {
	if n == 0 {
		n = 1
	}
	ln2 := math.Ln2
	m = uint64(math.Ceil(-float64(n) * math.Log(fpr) / (ln2 * ln2)))
	k = uint(math.Round(float64(m) / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	return m, k
}

// New creates a Bloom filter sized for n items at the given target
// false-positive rate.
func New(n uint64, fpr float64) *Filter {
	m, k := Params(n, fpr)
	return &Filter{bits: bitvec.NewBitset(m), m: m, k: k}
}

// NewExplicit creates a Bloom filter with m bits and k hash functions.
func NewExplicit(m uint64, k uint) *Filter {
	return &Filter{bits: bitvec.NewBitset(m), m: m, k: k}
}

// indexes derives the i-th bit position for hash h by double hashing.
func (f *Filter) index(h1, h2 uint64, i uint) uint64 {
	return (h1 + uint64(i)*h2) % f.m
}

func deriveHashes(h uint64) (uint64, uint64) {
	h1 := h
	h2 := hashing.Mix64(h) | 1 // odd, so strides cover the table
	return h1, h2
}

// Insert adds the pre-hashed key h. It always succeeds.
func (f *Filter) Insert(h uint64) bool {
	h1, h2 := deriveHashes(h)
	for i := uint(0); i < f.k; i++ {
		f.bits.Set(f.index(h1, h2, i))
	}
	f.n++
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter) Contains(h uint64) bool {
	h1, h2 := deriveHashes(h)
	for i := uint(0); i < f.k; i++ {
		if !f.bits.Test(f.index(h1, h2, i)) {
			return false
		}
	}
	return true
}

// Remove is unsupported on a plain Bloom filter; it always returns false.
func (f *Filter) Remove(uint64) bool { return false }

// Count returns the number of inserted items.
func (f *Filter) Count() uint64 { return f.n }

// Capacity returns the item count the filter was sized for; a Bloom filter
// has no hard capacity, so this reports the optimal-n for its bit count.
func (f *Filter) Capacity() uint64 {
	// n_opt = m · ln²2 / (k · ln2) … for optimally-sized filters n = m·ln2/k.
	return uint64(float64(f.m) * math.Ln2 / float64(f.k))
}

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() uint64 { return f.bits.SizeBits() / 8 }

// K returns the number of hash functions.
func (f *Filter) K() uint { return f.k }

// FillRatio returns the fraction of set bits (diagnostic).
func (f *Filter) FillRatio() float64 {
	return float64(f.bits.Count()) / float64(f.m)
}
