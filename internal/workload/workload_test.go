package workload

import (
	"math"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with equal seeds diverged")
		}
	}
	c := NewStream(43)
	same := 0
	a2 := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestStreamUniformity(t *testing.T) {
	s := NewStream(1)
	const buckets = 16
	counts := make([]int, buckets)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[s.Next()>>60]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 45 {
		t.Errorf("chi2 = %.1f, stream too skewed", chi2)
	}
}

func TestStreamKeysDistinct(t *testing.T) {
	keys := NewStream(2).Keys(100000)
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate key in 100k uniform draws (implausible)")
		}
		seen[k] = true
	}
}

func TestMixedStreamComposition(t *testing.T) {
	init := NewStream(3).Keys(3000)
	m := NewMixedStream(4, init)
	counts := map[OpKind]int{}
	inserted := map[uint64]int{}
	for _, k := range init {
		inserted[k]++
	}
	for i := 0; i < 30000; i++ {
		op := m.Next()
		counts[op.Kind]++
		switch op.Kind {
		case OpInsert:
			inserted[op.Key]++
		case OpDelete:
			if inserted[op.Key] == 0 {
				t.Fatalf("op %d: delete of never-inserted key", i)
			}
			inserted[op.Key]--
		case OpLookup:
			if inserted[op.Key] == 0 {
				t.Fatalf("op %d: lookup of non-live key", i)
			}
		}
	}
	if counts[OpInsert] != counts[OpDelete] || counts[OpInsert] != counts[OpLookup] {
		t.Errorf("ops not equally divided: %v", counts)
	}
}

func TestMixedStreamKeepsLoadConstant(t *testing.T) {
	init := NewStream(5).Keys(1000)
	m := NewMixedStream(6, init)
	net := 0
	for i := 0; i < 9999; i++ {
		switch m.Next().Kind {
		case OpInsert:
			net++
		case OpDelete:
			net--
		}
	}
	if net < -1 || net > 1 {
		t.Errorf("net live-set drift = %d over 9999 ops", net)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(7, 1.5, 1<<20)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// The most popular key should take a large share and the distribution
	// should be far from uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Errorf("hottest key only %.4f of draws; zipf(1.5) should be skewed", float64(max)/n)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct keys drawn", len(counts))
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(8, 1.2, 1000), NewZipf(8, 1.2, 1000)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipf streams with equal seeds diverged")
		}
	}
}

func TestStreamAvalanche(t *testing.T) {
	// Consecutive outputs should differ in about half their bits.
	s := NewStream(9)
	prev := s.Next()
	var total float64
	const n = 2000
	for i := 0; i < n; i++ {
		cur := s.Next()
		total += float64(popcount(prev ^ cur))
		prev = cur
	}
	if mean := total / n; math.Abs(mean-32) > 3 {
		t.Errorf("mean bit difference %.2f, want ≈32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
