// Package workload generates the input streams of the paper's Section 7
// benchmarks: uniform-random 64-bit hash values for inserts and successful
// lookups, disjoint streams for random (almost-all-negative) lookups, mixed
// insert/delete/lookup operation streams for the write-heavy application
// workload, and zipfian streams for skewed-access scenarios in the examples.
//
// All generators are deterministic for a given seed, so every experiment is
// reproducible bit for bit.
package workload

import "math/rand"

// Stream is a deterministic uniform 64-bit value generator (splitmix64).
// The zero value is a valid stream with seed 0.
type Stream struct {
	state uint64
}

// NewStream returns a stream seeded with seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Next returns the next uniform 64-bit value.
func (s *Stream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Keys returns the next n values as a slice.
func (s *Stream) Keys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Op is one operation of a mixed workload.
type Op struct {
	Kind OpKind
	Key  uint64
}

// OpKind enumerates mixed-workload operation types.
type OpKind uint8

// Mixed-workload operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpLookup
)

// MixedStream produces the paper's write-heavy application workload (§7.5):
// operations equally divided between insertions, deletions and lookups,
// executed against a filter held at a constant load factor. Deletions target
// previously inserted keys (the deletion-safety contract every
// deletion-capable filter imposes); the stream tracks the live set
// internally in FIFO order.
type MixedStream struct {
	src   *Stream
	rng   *rand.Rand
	live  []uint64
	head  int // FIFO cursor into live
	phase uint8
}

// NewMixedStream creates a mixed stream whose deletions recycle the given
// initial live set (the keys used to pre-fill the filter).
func NewMixedStream(seed uint64, initialLive []uint64) *MixedStream {
	live := make([]uint64, len(initialLive))
	copy(live, initialLive)
	return &MixedStream{
		src:  NewStream(seed ^ 0xabcdef),
		rng:  rand.New(rand.NewSource(int64(seed) + 7)),
		live: live,
	}
}

// Next returns the next operation, cycling insert → delete → lookup so that
// the filter's load factor stays constant.
func (m *MixedStream) Next() Op {
	defer func() { m.phase = (m.phase + 1) % 3 }()
	switch m.phase {
	case 0: // insert a fresh key, adding it to the live set
		k := m.src.Next()
		m.live = append(m.live, k)
		return Op{OpInsert, k}
	case 1: // delete the oldest live key
		k := m.live[m.head]
		m.head++
		if m.head > len(m.live)/2 { // compact occasionally
			m.live = append(m.live[:0], m.live[m.head:]...)
			m.head = 0
		}
		return Op{OpDelete, k}
	default: // look up a random live key
		idx := m.head + m.rng.Intn(len(m.live)-m.head)
		return Op{OpLookup, m.live[idx]}
	}
}

// Zipf produces a skewed stream of keys drawn from a universe of n items
// with zipfian parameter s > 1 (used by the example applications to model
// skewed access patterns).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a zipfian generator over [0, n) with exponent s.
func NewZipf(seed uint64, s float64, n uint64) *Zipf {
	r := rand.New(rand.NewSource(int64(seed)))
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Next returns the next zipf-distributed key index.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }
