package hashing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must produce distinct outputs (spot check a large set).
	seen := make(map[uint64]uint64, 100000)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64AvalancheRough(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	rng := rand.New(rand.NewSource(1))
	var total, count float64
	for i := 0; i < 2000; i++ {
		x := rng.Uint64()
		bit := uint(rng.Intn(64))
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		total += float64(popcount(d))
		count++
	}
	mean := total / count
	if mean < 28 || mean > 36 {
		t.Errorf("avalanche mean = %.2f bits, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestMix64SeededIndependence(t *testing.T) {
	// Different seeds must give (practically) independent hashes.
	if Mix64Seeded(42, 1) == Mix64Seeded(42, 2) {
		t.Error("seeds 1 and 2 collide on input 42")
	}
	matches := 0
	for i := uint64(0); i < 10000; i++ {
		if Mix64Seeded(i, 7)&0xff == Mix64Seeded(i, 8)&0xff {
			matches++
		}
	}
	// Expect ~10000/256 ≈ 39 matches on the low byte.
	if matches > 120 {
		t.Errorf("low-byte agreement between seeds = %d/10000, too correlated", matches)
	}
}

func TestReduce32Bounds(t *testing.T) {
	f := func(x uint32, n32 uint32) bool {
		n := n32%1000 + 1
		return Reduce32(x, n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestReduce32Uniformity(t *testing.T) {
	// Chi-squared test of Reduce32 over 16 buckets with uniform inputs.
	const buckets = 16
	const samples = 160000
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[Reduce32(rng.Uint32(), buckets)]++
	}
	expected := float64(samples) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile ≈ 37.7.
	if chi2 > 45 {
		t.Errorf("chi2 = %.1f, distribution too skewed", chi2)
	}
}

func TestReduce64Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		n := uint64(rng.Intn(1<<20) + 1)
		if got := Reduce64(rng.Uint64(), n); got >= n {
			t.Fatalf("Reduce64 out of range: %d >= %d", got, n)
		}
	}
}

func TestAltIndexInvolution(t *testing.T) {
	f := func(idx, tag uint64, logk uint8) bool {
		mask := uint64(1)<<(logk%24+1) - 1
		i := idx & mask
		alt := AltIndex(i, tag, mask)
		return alt <= mask && AltIndex(alt, tag, mask) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAltIndexMoves(t *testing.T) {
	// With a nonzero tag, the alternate index should usually differ.
	same := 0
	const mask = 1<<16 - 1
	for i := uint64(0); i < 10000; i++ {
		tag := Mix64(i)&0xff + 1
		if AltIndex(i&mask, tag, mask) == i&mask {
			same++
		}
	}
	if same > 50 {
		t.Errorf("alt == primary for %d/10000 items", same)
	}
}

func TestHashBytesKnownVectors(t *testing.T) {
	// Official XXH64 test vectors.
	cases := []struct {
		data string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"", 1, 0xd5afba1336a3be4b},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"as", 0, 0x1c330fb2d66be179},
		{"asd", 0, 0x631c37ce72a97393},
		{"asdf", 0, 0x415872f599cea71e},
		{"Call me Ishmael. Some years ago--never mind how long precisely-", 0, 0x02a2e85470d6fd96},
	}
	for _, c := range cases {
		if got := HashBytes([]byte(c.data), c.seed); got != c.want {
			t.Errorf("HashBytes(%q, %d) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestHashStringMatchesHashBytes(t *testing.T) {
	inputs := []string{"", "x", "hello world", string(make([]byte, 63)),
		string(make([]byte, 64)), string(make([]byte, 65)), string(make([]byte, 1000))}
	for _, s := range inputs {
		if HashString(s, 99) != HashBytes([]byte(s), 99) {
			t.Errorf("HashString(%d bytes) != HashBytes", len(s))
		}
	}
}

func TestHashBytesAllLengths(t *testing.T) {
	// Every length 0..128 must hash without panicking and lengths must not
	// collide trivially.
	data := make([]byte, 128)
	rand.New(rand.NewSource(4)).Read(data)
	seen := map[uint64]int{}
	for n := 0; n <= 128; n++ {
		h := HashBytes(data[:n], 0)
		if prev, ok := seen[h]; ok {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[h] = n
	}
}

func TestHashUint64Distribution(t *testing.T) {
	// Sequential keys must spread across high bits (used for block indexes).
	const buckets = 64
	counts := make([]int, buckets)
	const samples = 64000
	for i := uint64(0); i < samples; i++ {
		counts[HashUint64(i, 0)>>58]++
	}
	expected := float64(samples) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.25 {
			t.Errorf("bucket %d count %d deviates >25%% from %f", i, c, expected)
		}
	}
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix64(uint64(i))
	}
	_ = sink
}

func BenchmarkHashBytes16(b *testing.B) {
	data := make([]byte, 16)
	b.SetBytes(16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += HashBytes(data, uint64(i))
	}
	_ = sink
}

func BenchmarkHashBytes256(b *testing.B) {
	data := make([]byte, 256)
	b.SetBytes(256)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += HashBytes(data, uint64(i))
	}
	_ = sink
}
