package hashing

import "encoding/binary"

// This file implements the XXH64 hash algorithm from scratch (stdlib-only
// reproduction; no third-party dependency). It is the byte-string entry point
// of the public filter API: downstream users hash arbitrary keys once and the
// filters consume the resulting 64-bit values, matching the paper's
// methodology of benchmarking on pre-hashed uniform 64-bit inputs.

const (
	prime1 uint64 = 0x9e3779b185ebca87
	prime2 uint64 = 0xc2b2ae3d27d4eb4f
	prime3 uint64 = 0x165667b19e3779f9
	prime4 uint64 = 0x85ebca77c2b2ae63
	prime5 uint64 = 0x27d4eb2f165667c5
)

func rol64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rol64(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

// HashBytes computes the 64-bit XXH64 hash of data under the given seed.
func HashBytes(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(data) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(data[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(data[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(data[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(data[24:32]))
			data = data[32:]
		}
		h = rol64(v1, 1) + rol64(v2, 7) + rol64(v3, 12) + rol64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(data) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(data[:8]))
		h = rol64(h, 27)*prime1 + prime4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(data[:4])) * prime1
		h = rol64(h, 23)*prime2 + prime3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime5
		h = rol64(h, 11) * prime1
	}

	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// HashString computes the 64-bit XXH64 hash of s under the given seed without
// allocating.
func HashString(s string, seed uint64) uint64 {
	// Process in chunks to avoid a string→[]byte copy of the whole key.
	// Keys are typically short; a 64-byte stack buffer covers one pass.
	if len(s) <= 64 {
		var buf [64]byte
		copy(buf[:], s)
		return HashBytes(buf[:len(s)], seed)
	}
	return HashBytes([]byte(s), seed)
}

// HashUint64 hashes a 64-bit key under a seed. It composes the splitmix64
// finalizer with a seed offset, which is cheaper than running XXH64 over the
// 8 bytes and has equivalent mixing quality for this use.
func HashUint64(x, seed uint64) uint64 { return Mix64Seeded(x, seed) }
