// Package hashing provides the hash functions every filter in this repository
// is built on: a 64-bit finalizer-quality mixer, a seeded byte-string hash,
// Lemire's multiplicative range reduction, and the multiply-xor derivation of
// a secondary block index from a primary index and a fingerprint (the "xor
// trick" of the cuckoo and vector quotient filters).
package hashing

// Murmur3Mul is the 32-bit MurmurHash3 multiplication constant the vector
// quotient filter and cuckoo filter use to spread a small fingerprint across
// block-index bits before xor-ing ("a simple multiply-and-xor technique").
const Murmur3Mul = 0x5bd1e995

// Mix64 is the splitmix64 finalizer: a fast, high-quality bijective mixer on
// 64-bit values. Filters apply it to caller-provided hashes when they need
// additional independent bits.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix64Seeded mixes x with a seed, producing an independent 64-bit hash per
// seed. Used to derive the k hash functions of a Bloom filter and independent
// hash families in tests.
func Mix64Seeded(x, seed uint64) uint64 {
	return Mix64(x + seed*0x9e3779b97f4a7c15)
}

// Reduce32 maps a uniform 32-bit value x onto [0, n) without division
// (Lemire's multiply-shift reduction).
func Reduce32(x uint32, n uint32) uint32 {
	return uint32(uint64(x) * uint64(n) >> 32)
}

// Reduce64 maps a uniform 64-bit value x onto [0, n) without division, using
// only the high 32 bits of x for the reduction (sufficient for the bucket
// counts used here, which are far below 2^32).
func Reduce64(x uint64, n uint64) uint64 {
	return uint64(Reduce32(uint32(x>>32), uint32(n)))
}

// AltIndex derives the partner block index for a (block, tag) pair under a
// power-of-two block count: alt = (idx ^ (tag * Murmur3Mul)) & mask. Because
// xor is an involution, AltIndex(AltIndex(i, tag, mask), tag, mask) == i,
// which is what allows a deletion to locate an item's other candidate block
// from whichever block it is found in.
func AltIndex(idx, tag, mask uint64) uint64 {
	return (idx ^ (tag * Murmur3Mul)) & mask
}
