package harness

import (
	"math/rand"
	"time"

	"vqf/internal/analysis"
	"vqf/internal/core"
	"vqf/internal/telemetry"
	"vqf/internal/workload"
)

// Kernel microbenchmarks: repeated timed runs of the fused hot-path kernels
// (single-key Insert/Contains/Remove and the sequential batch pipeline) on
// both geometries at a fixed load factor. Unlike the paper-figure sweeps,
// these exist to feed a regression gate: each op is sampled Reps times and
// reported with a benchstat-style mean ± 95% CI so an old-vs-new comparison
// can tell a real slowdown from run-to-run noise.

// KernelConfig parameterizes a RunKernels invocation.
type KernelConfig struct {
	// NSlots is the requested slot count (rounded up by the filters).
	NSlots uint64
	// Load is the fill fraction at which lookups/removes run (default 0.85).
	Load float64
	// Batch is the key count per sequential batch call (default 1<<14).
	Batch int
	// Reps is the number of timed samples per op (default 5).
	Reps int
	// Seed drives the deterministic workload streams.
	Seed uint64
}

func (c *KernelConfig) defaults() {
	if c.Load == 0 {
		c.Load = 0.85
	}
	if c.Batch == 0 {
		c.Batch = 1 << 14
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
}

// KernelResult is one op's samples with their benchstat-style summary.
// Latency, when present, is a per-operation latency digest from one
// dedicated every-op-timed pass run after the throughput samples — the
// clock read perturbs per-op cost, so the quantiles and the Mops column
// come from separate passes and the throughput numbers stay clean.
type KernelResult struct {
	Name    string             `json:"name"`
	Mops    float64            `json:"mops"`
	CI95    float64            `json:"ci95_mops"`
	Samples []float64          `json:"samples_mops"`
	Latency *telemetry.Summary `json:"latency_ns,omitempty"`
}

// kernelFilter is the surface the kernel benchmarks exercise; both
// sequential core geometries satisfy it.
type kernelFilter interface {
	Insert(h uint64) bool
	Contains(h uint64) bool
	Remove(h uint64) bool
	Capacity() uint64
	InsertBatch(hs []uint64) int
	ContainsBatch(hs []uint64, dst []bool) []bool
	RemoveBatch(hs []uint64) int
}

// RunKernels measures the hot-path kernels of both geometries and returns
// one result per (geometry, op). Result names are stable identifiers — the
// regression gate matches old and new runs by them.
func RunKernels(cfg KernelConfig) []KernelResult {
	cfg.defaults()
	var out []KernelResult
	out = append(out, runKernelGeom(cfg, "filter8", func() kernelFilter {
		return core.NewFilter8(cfg.NSlots, core.Options{})
	})...)
	out = append(out, runKernelGeom(cfg, "filter16", func() kernelFilter {
		return core.NewFilter16(cfg.NSlots, core.Options{})
	})...)
	return out
}

func runKernelGeom(cfg KernelConfig, geom string, mk func() kernelFilter) []KernelResult {
	f := mk()
	n := uint64(float64(f.Capacity()) * cfg.Load)
	keys := workload.NewStream(cfg.Seed).Keys(int(n))
	absent := workload.NewStream(cfg.Seed ^ 0x5ca1ab1e0ddba11).Keys(int(n))
	// Lookups and removes probe in an order unrelated to insertion order, so
	// the single-key ops see the random cache-line walk the batch pipeline is
	// built to avoid.
	probe := append([]uint64(nil), keys...)
	rand.New(rand.NewSource(int64(cfg.Seed))).Shuffle(len(probe), func(i, j int) {
		probe[i], probe[j] = probe[j], probe[i]
	})
	dst := make([]bool, cfg.Batch)

	// Steady-state kernels run against one filter held at the target load;
	// the remove kernels drain it and their restore refills untimed.
	for _, h := range keys {
		f.Insert(h)
	}
	refill := func() {
		for _, h := range keys {
			f.Insert(h)
		}
	}

	// Each kernel is one entry; op returns the operation count for the timed
	// run and restore (nil when op leaves state unchanged) rolls the filter
	// state back untimed. Within a round the order matters only in that every
	// remove kernel restores before the next kernel runs.
	// lat is the op's every-op-timed latency pass: it times each individual
	// call (or each batch call, recorded as per-key amortized observations)
	// into the histogram. It runs once, after all throughput reps, and any
	// restore applies to it too.
	type kernelSpec struct {
		name    string
		op      func() uint64
		restore func()
		lat     func(lh *telemetry.Hist)
	}
	specs := []kernelSpec{
		// Fill throughput: a fresh filter per sample so every rep inserts
		// over the same empty-to-Load range.
		{"insert", func() uint64 {
			g := mk()
			for _, h := range keys {
				g.Insert(h)
			}
			return n
		}, nil, func(lh *telemetry.Hist) {
			g := mk()
			for _, h := range keys {
				start := time.Now()
				g.Insert(h)
				lh.Record(h, uint64(time.Since(start)))
			}
		}},
		{"insert-batch", func() uint64 {
			g := mk()
			for lo := 0; lo < len(keys); lo += cfg.Batch {
				g.InsertBatch(keys[lo:min(lo+cfg.Batch, len(keys))])
			}
			return n
		}, nil, func(lh *telemetry.Hist) {
			g := mk()
			for lo := 0; lo < len(keys); lo += cfg.Batch {
				b := keys[lo:min(lo+cfg.Batch, len(keys))]
				start := time.Now()
				g.InsertBatch(b)
				d := uint64(time.Since(start))
				lh.RecordN(uint64(lo), d/uint64(len(b)), uint64(len(b)), d)
			}
		}},
		{"lookup-pos", func() uint64 {
			got := 0
			for _, h := range probe {
				if f.Contains(h) {
					got++
				}
			}
			if uint64(got) != n {
				panic("harness: false negative in kernel benchmark")
			}
			return n
		}, nil, func(lh *telemetry.Hist) {
			for _, h := range probe {
				start := time.Now()
				f.Contains(h)
				lh.Record(h, uint64(time.Since(start)))
			}
		}},
		{"lookup-rand", func() uint64 {
			sink := 0
			for _, h := range absent {
				if f.Contains(h) {
					sink++
				}
			}
			_ = sink
			return n
		}, nil, func(lh *telemetry.Hist) {
			for _, h := range absent {
				start := time.Now()
				f.Contains(h)
				lh.Record(h, uint64(time.Since(start)))
			}
		}},
		{"contains-batch", func() uint64 {
			for lo := 0; lo < len(probe); lo += cfg.Batch {
				f.ContainsBatch(probe[lo:min(lo+cfg.Batch, len(probe))], dst)
			}
			return n
		}, nil, func(lh *telemetry.Hist) {
			for lo := 0; lo < len(probe); lo += cfg.Batch {
				b := probe[lo:min(lo+cfg.Batch, len(probe))]
				start := time.Now()
				f.ContainsBatch(b, dst)
				d := uint64(time.Since(start))
				lh.RecordN(uint64(lo), d/uint64(len(b)), uint64(len(b)), d)
			}
		}},
		{"remove", func() uint64 {
			for _, h := range probe {
				if !f.Remove(h) {
					panic("harness: remove failed in kernel benchmark")
				}
			}
			return n
		}, refill, func(lh *telemetry.Hist) {
			for _, h := range probe {
				start := time.Now()
				f.Remove(h)
				lh.Record(h, uint64(time.Since(start)))
			}
		}},
		{"remove-batch", func() uint64 {
			for lo := 0; lo < len(probe); lo += cfg.Batch {
				f.RemoveBatch(probe[lo:min(lo+cfg.Batch, len(probe))])
			}
			return n
		}, refill, func(lh *telemetry.Hist) {
			for lo := 0; lo < len(probe); lo += cfg.Batch {
				b := probe[lo:min(lo+cfg.Batch, len(probe))]
				start := time.Now()
				f.RemoveBatch(b)
				d := uint64(time.Since(start))
				lh.RecordN(uint64(lo), d/uint64(len(b)), uint64(len(b)), d)
			}
		}},
	}

	// Sampling is interleaved: round r times every kernel once, rather than
	// taking all Reps samples of one kernel back to back. On hosts with
	// coarse-grained interference (a shared vCPU being throttled for seconds
	// at a time) consecutive sampling concentrates a slow window into one
	// kernel's entire sample set, which reads as a large, falsely significant
	// regression; round-robin spreads the window across kernels so it widens
	// confidence intervals instead of silently biasing one mean.
	out := make([]KernelResult, len(specs))
	for i, s := range specs {
		out[i] = KernelResult{Name: geom + "/" + s.name, Samples: make([]float64, 0, cfg.Reps)}
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		for i, s := range specs {
			start := time.Now()
			ops := s.op()
			out[i].Samples = append(out[i].Samples, mops(ops, time.Since(start)))
			if s.restore != nil {
				s.restore()
			}
		}
	}
	for i := range out {
		out[i].Mops, out[i].CI95 = analysis.MeanCI95(out[i].Samples)
	}
	// One latency pass per kernel, after every throughput sample is in: the
	// per-op clock reads make this pass slower than a throughput rep, and
	// running it last keeps that perturbation out of the Mops samples.
	for i, s := range specs {
		var lh telemetry.Hist
		s.lat(&lh)
		if s.restore != nil {
			s.restore()
		}
		sum := lh.Snapshot().Summary()
		out[i].Latency = &sum
	}
	return out
}
