package harness

import (
	"time"

	"vqf/internal/workload"
)

// MixedResult is one Table 3 row: aggregate throughput for a write-heavy
// workload (equal parts insert, delete, lookup) at a 90% load factor.
type MixedResult struct {
	Name   string
	Mops   float64
	Failed bool
}

// RunMixed fills the filter to 90% load, then executes ops operations from
// the paper's write-heavy application workload and reports aggregate
// throughput.
func RunMixed(spec Spec, nslots uint64, ops int, seed uint64) MixedResult {
	f, err := spec.New(nslots)
	if err != nil {
		return MixedResult{Name: spec.Name, Failed: true}
	}
	n := f.Capacity() * 90 / 100
	ins := workload.NewStream(seed)
	live := make([]uint64, 0, n)
	for uint64(len(live)) < n {
		h := ins.Next()
		if !f.Insert(h) {
			return MixedResult{Name: spec.Name, Failed: true}
		}
		live = append(live, h)
	}

	stream := workload.NewMixedStream(seed^0xfeed, live)
	start := time.Now()
	for i := 0; i < ops; i++ {
		op := stream.Next()
		switch op.Kind {
		case workload.OpInsert:
			if !f.Insert(op.Key) {
				return MixedResult{Name: spec.Name, Failed: true}
			}
		case workload.OpDelete:
			if !f.Remove(op.Key) {
				panic("harness: mixed-workload delete of live key failed for " + spec.Name)
			}
		case workload.OpLookup:
			if !f.Contains(op.Key) {
				panic("harness: mixed-workload false negative for " + spec.Name)
			}
		}
	}
	return MixedResult{Name: spec.Name, Mops: mops(uint64(ops), time.Since(start))}
}
