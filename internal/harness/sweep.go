package harness

import (
	"time"

	"vqf/internal/stats"
	"vqf/internal/workload"
)

// SweepPoint is one x-position of Figures 4/5: throughput measured at (or
// across the 5% slice ending at) the given load factor. The JSON tags are
// the schema of BENCH_fig4.json / BENCH_fig5.json.
type SweepPoint struct {
	LoadPct        int     `json:"load_pct"`         // load factor at the end of the slice, in percent
	InsertMops     float64 `json:"insert_mops"`      // instantaneous insert throughput over the slice
	PosLookupMops  float64 `json:"pos_lookup_mops"`  // successful lookups at this load factor
	RandLookupMops float64 `json:"rand_lookup_mops"` // uniform-random (mostly negative) lookups
	DeleteMops     float64 `json:"delete_mops"`      // deletes over the slice from this load downward
}

// SweepResult is a filter's full load-factor sweep.
type SweepResult struct {
	Name   string       `json:"name"`
	Points []SweepPoint `json:"points"`
	// Failed is set if an insertion failed before reaching the target load
	// (the point list is then truncated).
	Failed bool `json:"failed,omitempty"`
	// Stats is the filter's operation-counter totals after the sweep, for
	// filters that expose them (the VQF variants); nil otherwise. On averaged
	// sweeps it reports the final repetition (each repetition is a fresh
	// filter running an identical operation sequence).
	Stats *stats.OpCounts `json:"stats,omitempty"`
}

// RunSweep reproduces the Figure 4/5 microbenchmark for one filter: fill in
// 5% slices measuring instantaneous insert throughput, measure successful
// and random lookups after each slice, then delete back down in 5% slices.
// queriesPerPoint bounds the lookup sample per measurement point.
func RunSweep(spec Spec, nslots uint64, queriesPerPoint int, seed uint64) SweepResult {
	f, err := spec.New(nslots)
	if err != nil {
		return SweepResult{Name: spec.Name, Failed: true}
	}
	Observe(spec.Name, f)
	cap := f.Capacity()
	slice := cap * 5 / 100
	maxSlices := int(spec.MaxLoad*100) / 5 // e.g. 18 slices to 90%, 19 to 95%

	ins := workload.NewStream(seed)
	neg := workload.NewStream(seed ^ 0xdeadbeefcafef00d)
	inserted := make([]uint64, 0, cap)
	res := SweepResult{Name: spec.Name}

	for s := 1; s <= maxSlices; s++ {
		// Insert one 5% slice, timed.
		start := time.Now()
		for uint64(len(inserted)) < uint64(s)*slice {
			h := ins.Next()
			if !f.Insert(h) {
				res.Failed = true
				return res
			}
			inserted = append(inserted, h)
		}
		insMops := mops(slice, time.Since(start))

		// Successful lookups: sample previously inserted keys.
		qn := queriesPerPoint
		if qn > len(inserted) {
			qn = len(inserted)
		}
		stride := len(inserted) / qn
		if stride == 0 {
			stride = 1
		}
		start = time.Now()
		got := 0
		for i := 0; i < qn; i++ {
			if f.Contains(inserted[(i*stride)%len(inserted)]) {
				got++
			}
		}
		posMops := mops(uint64(qn), time.Since(start))
		if got != qn {
			// A false negative would invalidate the whole benchmark.
			panic("harness: false negative during sweep of " + spec.Name)
		}

		// Random (almost entirely negative) lookups.
		start = time.Now()
		sink := 0
		for i := 0; i < queriesPerPoint; i++ {
			if f.Contains(neg.Next()) {
				sink++
			}
		}
		randMops := mops(uint64(queriesPerPoint), time.Since(start))
		_ = sink

		res.Points = append(res.Points, SweepPoint{
			LoadPct:        s * 5,
			InsertMops:     insMops,
			PosLookupMops:  posMops,
			RandLookupMops: randMops,
		})
	}

	// Delete back down in 5% slices (skip for no-delete filters).
	if !spec.NoDelete {
		for s := maxSlices; s >= 1; s-- {
			lo := uint64(s-1) * slice
			start := time.Now()
			for uint64(len(inserted)) > lo {
				h := inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
				if !f.Remove(h) {
					panic("harness: remove of inserted key failed for " + spec.Name)
				}
			}
			res.Points[s-1].DeleteMops = mops(slice, time.Since(start))
		}
	}
	if sp, ok := f.(statsProvider); ok {
		c := sp.Stats()
		res.Stats = &c
	}
	return res
}

func mops(ops uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// RunSweepAveraged runs RunSweep repeat times with distinct seeds and
// averages each point, damping scheduler noise on busy machines. A failed
// repetition fails the whole sweep.
func RunSweepAveraged(spec Spec, nslots uint64, queriesPerPoint, repeat int, seed uint64) SweepResult {
	if repeat < 1 {
		repeat = 1
	}
	var acc SweepResult
	for r := 0; r < repeat; r++ {
		res := RunSweep(spec, nslots, queriesPerPoint, seed+uint64(r)*0x9e37)
		if res.Failed {
			return res
		}
		if r == 0 {
			acc = res
			continue
		}
		acc.Stats = res.Stats
		for i := range acc.Points {
			acc.Points[i].InsertMops += res.Points[i].InsertMops
			acc.Points[i].PosLookupMops += res.Points[i].PosLookupMops
			acc.Points[i].RandLookupMops += res.Points[i].RandLookupMops
			acc.Points[i].DeleteMops += res.Points[i].DeleteMops
		}
	}
	inv := 1 / float64(repeat)
	for i := range acc.Points {
		acc.Points[i].InsertMops *= inv
		acc.Points[i].PosLookupMops *= inv
		acc.Points[i].RandLookupMops *= inv
		acc.Points[i].DeleteMops *= inv
	}
	return acc
}
