package harness

import (
	"time"

	"vqf/internal/elastic"
	"vqf/internal/workload"
)

// The compaction experiment: drive an elastic cascade through insert/remove
// churn until it carries many sparse frozen levels, measure negative-lookup
// throughput (the cost compaction exists to restore — every negative probe
// pays one cache miss per level), compact, and measure again. The
// before/after pair quantifies the claim that cascade compaction recovers
// the short-cascade lookup profile after churn without spending any of the
// false-positive budget.

// CompactSide is the measurement taken on one side of the compaction.
type CompactSide struct {
	Levels        int     `json:"levels"`
	Items         uint64  `json:"items"`
	NegLookupMops float64 `json:"neg_lookup_mops"` // never-inserted keys
	PosLookupMops float64 `json:"pos_lookup_mops"` // live keys
	MeasuredFPR   float64 `json:"measured_fpr"`    // over `probes` fresh keys
	BitsPerItem   float64 `json:"bits_per_item"`
}

// CompactResult is a full churn-compact-measure run. The JSON tags are the
// schema of BENCH_compact.json.
type CompactResult struct {
	TargetFPR    float64     `json:"target_fpr"`
	InitialSlots uint64      `json:"initial_slots"`
	TotalItems   uint64      `json:"total_items"`
	RemovedFrac  float64     `json:"removed_frac"`
	Before       CompactSide `json:"before"`
	After        CompactSide `json:"after"`
	LevelsMerged int         `json:"levels_merged"`
	CompactMs    float64     `json:"compact_ms"`
	// NegSpeedup is After.NegLookupMops / Before.NegLookupMops, the
	// headline number (target ≥2 on a cascade churned to ≥6 levels).
	NegSpeedup float64 `json:"neg_speedup"`
	// Failed is set if any live key went missing or an insert failed.
	Failed bool `json:"failed,omitempty"`
}

// RunCompact fills a sequential elastic cascade with totalItems keys
// (growing it through several levels), removes removedFrac of them oldest
// first (hollowing out the frozen levels), measures both lookup paths and
// the realized FPR, compacts, re-verifies every live key and measures
// again. queries bounds the per-side lookup op count; probes the fresh-key
// FPR sample.
func RunCompact(cfg elastic.Config, totalItems uint64, removedFrac float64, probes, queries int, seed uint64) CompactResult {
	if err := cfg.Validate(); err != nil {
		panic("harness: compact config: " + err.Error())
	}
	f, err := elastic.New(cfg)
	if err != nil {
		panic("harness: compact config: " + err.Error())
	}
	res := CompactResult{
		TargetFPR:    cfg.TargetFPR,
		InitialSlots: cfg.InitialSlots,
		TotalItems:   totalItems,
		RemovedFrac:  removedFrac,
	}

	ins := workload.NewStream(seed)
	keys := make([]uint64, 0, totalItems)
	for uint64(len(keys)) < totalItems {
		h := ins.Next()
		if !f.Insert(h) {
			res.Failed = true
			return res
		}
		keys = append(keys, h)
	}
	cut := int(float64(len(keys)) * removedFrac)
	for _, h := range keys[:cut] {
		if !f.Remove(h) {
			res.Failed = true
			return res
		}
	}
	live := keys[cut:]

	side := func(negSeed uint64) CompactSide {
		s := CompactSide{Levels: f.NumLevels(), Items: f.Count()}
		if n := f.Count(); n > 0 {
			s.BitsPerItem = float64(f.SizeBytes()) * 8 / float64(n)
		}

		qn := queries
		if qn > len(live) {
			qn = len(live)
		}
		t0 := time.Now()
		got := 0
		for i := 0; i < qn; i++ {
			if f.Contains(live[i]) {
				got++
			}
		}
		s.PosLookupMops = mops(uint64(qn), time.Since(t0))
		if got != qn {
			res.Failed = true
		}

		// Negative throughput and FPR share one fresh-key pass: with a
		// realized FPR around 2^-8 virtually every probe is a true negative,
		// so the timing is the negative-lookup cost.
		neg := workload.NewStream(negSeed)
		t0 = time.Now()
		fps := 0
		for i := 0; i < probes; i++ {
			if f.Contains(neg.Next()) {
				fps++
			}
		}
		s.NegLookupMops = mops(uint64(probes), time.Since(t0))
		s.MeasuredFPR = float64(fps) / float64(probes)
		return s
	}

	// The same fresh-key stream on both sides: any probe that flips from
	// negative to positive across the compaction would be a correctness bug,
	// and identical streams also make the FPR numbers directly comparable.
	negSeed := seed ^ 0xdeadbeefcafef00d
	res.Before = side(negSeed)

	t0 := time.Now()
	cr := f.CompactNow()
	res.CompactMs = float64(time.Since(t0).Microseconds()) / 1000
	res.LevelsMerged = cr.LevelsMerged

	for _, h := range live {
		if !f.Contains(h) {
			res.Failed = true
			return res
		}
	}
	res.After = side(negSeed)
	if res.Before.NegLookupMops > 0 {
		res.NegSpeedup = res.After.NegLookupMops / res.Before.NegLookupMops
	}
	return res
}
