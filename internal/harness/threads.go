package harness

import (
	"sync"
	"time"

	"vqf/internal/core"
	"vqf/internal/workload"
)

// ThreadResult is one Table 4 row: aggregate insert throughput with the
// given number of concurrent threads.
type ThreadResult struct {
	Threads int
	Mops    float64
}

// RunThreadScaling reproduces Table 4: the thread-safe vector quotient
// filter (8-bit fingerprints, shortcut enabled, per-block lock bits) is
// filled to 85% load by each thread count in turn, inserting disjoint key
// streams, and the wall-clock aggregate throughput is reported.
//
// Scaling is bounded by the physical cores available; the paper used 4
// cores, and EXPERIMENTS.md records the core count of the reproduction box.
func RunThreadScaling(nslots uint64, threads []int, seed uint64) []ThreadResult {
	out := make([]ThreadResult, 0, len(threads))
	for _, t := range threads {
		f := core.NewCFilter8(nslots, core.Options{})
		total := f.Capacity() * 85 / 100
		per := total / uint64(t)

		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := workload.NewStream(seed + uint64(w)*0o7777)
				for i := uint64(0); i < per; i++ {
					f.Insert(s.Next())
				}
			}(w)
		}
		wg.Wait()
		out = append(out, ThreadResult{Threads: t, Mops: mops(per*uint64(t), time.Since(start))})
	}
	return out
}

// ReaderScalingResult is one row of the reader-scaling sweep: aggregate
// throughput at one goroutine count for a pure-lookup workload and a 90/10
// read-mostly mixed workload, each measured twice — once through the
// lock-acquiring lookup baseline (CFilter8.ContainsLocked) and once through
// the lock-free optimistic path (CFilter8.Contains). The JSON tags are the
// schema of BENCH_concurrent.json.
type ReaderScalingResult struct {
	Threads          int     `json:"threads"`
	LookupLockedMops float64 `json:"lookup_locked_mops"`
	LookupOptMops    float64 `json:"lookup_optimistic_mops"`
	MixedLockedMops  float64 `json:"mixed90_locked_mops"`
	MixedOptMops     float64 `json:"mixed90_optimistic_mops"`
	// Deltas of the filter's optimistic-read counters across this row's
	// measurements (all four workloads at this thread count): how often the
	// seqlock protocol conflicted with writers and how often it gave up and
	// took a lock.
	OptAttempts  uint64 `json:"optimistic_attempts"`
	OptRetries   uint64 `json:"optimistic_retries"`
	OptFallbacks uint64 `json:"optimistic_fallbacks"`
}

// RunReaderScaling measures how concurrent queries scale with goroutines.
// A thread-safe 8-bit filter is filled once to 85% load; then, for each
// goroutine count, four aggregate-throughput measurements run: pure lookups
// (half present keys, half random probes) and a 90% lookup / 10% write mix,
// each with the locked and the optimistic lookup path. opsPerThread is the
// per-goroutine operation count of one measurement; each measurement runs
// repeat times and the best throughput is kept (scheduler noise only ever
// slows a run down, so max is the least-biased estimator).
func RunReaderScaling(nslots uint64, threads []int, opsPerThread, repeat int, seed uint64) []ReaderScalingResult {
	f := core.NewCFilter8(nslots, core.Options{})
	total := f.Capacity() * 85 / 100
	fill := workload.NewStream(seed)
	keys := make([]uint64, 0, total)
	for uint64(len(keys)) < total {
		h := fill.Next()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}

	if repeat < 1 {
		repeat = 1
	}
	best := func(run func() float64) float64 {
		m := 0.0
		for i := 0; i < repeat; i++ {
			if v := run(); v > m {
				m = v
			}
		}
		return m
	}
	Observe("vqf-concurrent", f)
	out := make([]ReaderScalingResult, 0, len(threads))
	for _, t := range threads {
		r := ReaderScalingResult{Threads: t}
		prev := f.Stats()
		r.LookupLockedMops = best(func() float64 {
			return runLookups(f, keys, t, opsPerThread, seed, f.ContainsLocked)
		})
		r.LookupOptMops = best(func() float64 {
			return runLookups(f, keys, t, opsPerThread, seed, f.Contains)
		})
		r.MixedLockedMops = best(func() float64 {
			return runMixed90(f, keys, t, opsPerThread, seed, f.ContainsLocked)
		})
		r.MixedOptMops = best(func() float64 {
			return runMixed90(f, keys, t, opsPerThread, seed, f.Contains)
		})
		d := f.Stats().Sub(prev)
		r.OptAttempts, r.OptRetries, r.OptFallbacks = d.OptAttempts, d.OptRetries, d.OptFallbacks
		out = append(out, r)
	}
	return out
}

// runLookups measures aggregate pure-lookup throughput: each goroutine
// alternates probes of present keys and uniformly random keys (mostly
// negative), the paper's successful/random lookup mix.
func runLookups(f *core.CFilter8, keys []uint64, threads, opsPerThread int, seed uint64, contains func(uint64) bool) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := workload.NewStream(seed ^ uint64(w+1)*0x9e3779b97f4a7c15)
			for i := 0; i < opsPerThread; i++ {
				h := s.Next()
				if i&1 == 0 {
					h = keys[h%uint64(len(keys))]
				}
				contains(h)
			}
		}(w)
	}
	wg.Wait()
	return mops(uint64(threads)*uint64(opsPerThread), time.Since(start))
}

// runMixed90 measures a read-mostly workload: 90% lookups through the given
// lookup path, 10% writes (alternating inserts of fresh keys and removes of
// the worker's own previous inserts, so the load factor stays put). The
// writes always go through the locked mutation path — what varies between
// the two measurements is only how the lookups read.
func runMixed90(f *core.CFilter8, keys []uint64, threads, opsPerThread int, seed uint64, contains func(uint64) bool) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := workload.NewStream(seed ^ uint64(w+1)*0xbf58476d1ce4e5b9)
			var churn []uint64
			for i := 0; i < opsPerThread; i++ {
				h := s.Next()
				if i%10 == 9 {
					if len(churn) > 0 && (i%20 == 19 || len(churn) > 64) {
						k := churn[len(churn)-1]
						churn = churn[:len(churn)-1]
						f.Remove(k)
					} else if f.Insert(h) {
						churn = append(churn, h)
					}
					continue
				}
				if i&1 == 0 {
					h = keys[h%uint64(len(keys))]
				}
				contains(h)
			}
			// Restore the load factor for the next measurement.
			for _, k := range churn {
				f.Remove(k)
			}
		}(w)
	}
	wg.Wait()
	return mops(uint64(threads)*uint64(opsPerThread), time.Since(start))
}
