package harness

import (
	"sync"
	"time"

	"vqf/internal/core"
	"vqf/internal/workload"
)

// ThreadResult is one Table 4 row: aggregate insert throughput with the
// given number of concurrent threads.
type ThreadResult struct {
	Threads int
	Mops    float64
}

// RunThreadScaling reproduces Table 4: the thread-safe vector quotient
// filter (8-bit fingerprints, shortcut enabled, per-block lock bits) is
// filled to 85% load by each thread count in turn, inserting disjoint key
// streams, and the wall-clock aggregate throughput is reported.
//
// Scaling is bounded by the physical cores available; the paper used 4
// cores, and EXPERIMENTS.md records the core count of the reproduction box.
func RunThreadScaling(nslots uint64, threads []int, seed uint64) []ThreadResult {
	out := make([]ThreadResult, 0, len(threads))
	for _, t := range threads {
		f := core.NewCFilter8(nslots, core.Options{})
		total := f.Capacity() * 85 / 100
		per := total / uint64(t)

		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := workload.NewStream(seed + uint64(w)*0o7777)
				for i := uint64(0); i < per; i++ {
					f.Insert(s.Next())
				}
			}(w)
		}
		wg.Wait()
		out = append(out, ThreadResult{Threads: t, Mops: mops(per*uint64(t), time.Since(start))})
	}
	return out
}
