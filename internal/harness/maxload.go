package harness

import (
	"vqf/internal/core"
	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/workload"
)

// MaxLoadRow is one configuration of the §3.4/§6.2 maximum-load-factor
// experiments: the load factor at which the first insertion fails.
type MaxLoadRow struct {
	Config  string
	MaxLoad float64
}

// RunMaxLoad reproduces the paper's maximum-load-factor measurements for the
// VQF's design choices: independent second hash (94.85% in the paper), the
// xor trick (94.40%), and the shortcut optimization at 75%, 87.5% and
// 95.83% thresholds (93.56%, 90%, 64.83%).
func RunMaxLoad(nslots uint64, seed uint64) []MaxLoadRow {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"independent-hash, no shortcut", core.Options{NoShortcut: true, IndependentHash: true}},
		{"xor-trick, no shortcut", core.Options{NoShortcut: true}},
		{"shortcut 75% (36/48)", core.Options{}},
		{"shortcut 87.5% (42/48)", core.Options{ShortcutThreshold: 42}},
		{"shortcut 95.83% (46/48)", core.Options{ShortcutThreshold: 46}},
	}
	rows := make([]MaxLoadRow, 0, len(configs))
	for _, c := range configs {
		f := core.NewFilter8(nslots, c.opts)
		s := workload.NewStream(seed)
		for f.Insert(s.Next()) {
		}
		rows = append(rows, MaxLoadRow{Config: c.name, MaxLoad: f.LoadFactor()})
	}
	return rows
}

// ChoiceStats summarizes block-occupancy dispersion for a placement policy —
// the design-choice ablation behind Theorem 1 (power-of-two-choices keeps
// the maximum block load near the mean, enabling high load factors). The
// JSON tags are the schema of BENCH_choices.json.
type ChoiceStats struct {
	Policy    string  `json:"policy"`
	Load      float64 `json:"load"`
	MeanOcc   float64 `json:"mean_occ"`
	MinOcc    uint    `json:"min_occ"`
	MaxOcc    uint    `json:"max_occ"`
	StddevOcc float64 `json:"stddev_occ"`
	FullPct   float64 `json:"full_pct"` // percent of blocks at capacity
}

// RunChoices fills a VQF to the target load under two placement policies —
// two-choice (paper) and greedy single-choice (always the primary block,
// via a shortcut threshold equal to the block capacity) — and reports the
// block-occupancy distribution of each.
func RunChoices(nslots uint64, load float64, seed uint64) []ChoiceStats {
	policies := []struct {
		name string
		opts core.Options
	}{
		{"two-choice", core.Options{NoShortcut: true}},
		{"single-choice-greedy", core.Options{ShortcutThreshold: minifilter.B8Slots}},
	}
	out := make([]ChoiceStats, 0, len(policies))
	for _, p := range policies {
		f := core.NewFilter8(nslots, p.opts)
		n := uint64(float64(f.Capacity()) * load)
		s := workload.NewStream(seed)
		for f.Count() < n {
			if !f.Insert(s.Next()) {
				break
			}
		}
		occ := stats.BuildOccupancy(f.BlockOccupancies(), minifilter.B8Slots)
		out = append(out, ChoiceStats{
			Policy:    p.name,
			Load:      f.LoadFactor(),
			MeanOcc:   occ.Mean,
			MinOcc:    occ.Min,
			MaxOcc:    occ.Max,
			StddevOcc: occ.Stddev,
			FullPct:   float64(occ.FullBlocks) / float64(occ.Blocks) * 100,
		})
	}
	return out
}
