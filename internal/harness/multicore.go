package harness

import (
	"runtime"
	"sync"
	"time"

	"vqf/internal/core"
	"vqf/internal/telemetry"
	"vqf/internal/workload"
)

// The multicore experiment measures how the thread-safe filter variants
// scale with cores, GOMAXPROCS swept across a thread ladder. Three variants
// run the same workloads:
//
//   - locked: CFilter8 with lock-acquiring lookups (ContainsLocked) — the
//     paper's baseline concurrency scheme, every reader takes the block lock.
//   - optimistic: CFilter8 with seqlock lookups (Contains) — readers are
//     lock-free but all threads still share one filter's locks on writes and
//     one set of striped counters.
//   - sharded: Sharded8 — shard-private locks, version stripes, and counters;
//     writes on different shards share no mutable cache lines.
//
// Per thread count and variant, three workloads: concurrent single-key
// inserts filling a fresh filter to 85% (write scaling), concurrent
// single-key lookups at 85% load (read scaling), and repeated whole-batch
// ContainsBatch calls whose internal worker pool is bounded by GOMAXPROCS
// (batch scaling — on the sharded variant this is the shard-disjoint path).
//
// Scaling efficiency is Mops(t) / (t · Mops(1)) per workload: 1.0 is
// perfect linear scaling. On a host with fewer cores than t the ladder
// time-slices; RunMulticore warns loudly (WarnUnderprovisioned) and the
// efficiency column records the honest sub-1/t result rather than
// extrapolating.

// MulticoreConfig parameterizes RunMulticore.
type MulticoreConfig struct {
	NSlots       uint64
	Threads      []int // GOMAXPROCS ladder, ascending; 1 must come first for efficiency baselines
	OpsPerThread int   // single-key lookup ops per goroutine per measurement
	Repeat       int   // samples per measurement; best is kept
	Seed         uint64
	Shards       int // shard count for the sharded variant
}

// MulticorePoint is one (variant, thread count) measurement.
type MulticorePoint struct {
	Threads    int     `json:"threads"`
	InsertMops float64 `json:"insert_mops"`
	LookupMops float64 `json:"lookup_mops"`
	BatchMops  float64 `json:"batch_lookup_mops"`
	// InsertEff/LookupEff/BatchEff are this row's scaling efficiencies
	// relative to the variant's 1-thread row.
	InsertEff float64 `json:"insert_efficiency"`
	LookupEff float64 `json:"lookup_efficiency"`
	BatchEff  float64 `json:"batch_efficiency"`
	// LookupLatency is the per-op lookup latency digest at this thread
	// count, from a dedicated sampled pass run after the throughput
	// measurements (every 16th op is timed, so the clock reads cannot
	// depress the Mops columns).
	LookupLatency *telemetry.Summary `json:"lookup_latency_ns,omitempty"`
}

// MulticoreVariant is one filter variant's scaling series.
type MulticoreVariant struct {
	Variant string           `json:"variant"`
	Points  []MulticorePoint `json:"points"`
}

// mcFilter is the surface the multicore workloads drive.
type mcFilter interface {
	Insert(h uint64) bool
	ContainsBatch(hs []uint64, dst []bool) []bool
}

// mcVariant bundles a variant's constructors: fresh builds a filter, and
// contains selects the lookup path under measurement.
type mcVariant struct {
	name     string
	fresh    func() mcFilter
	contains func(mcFilter) func(uint64) bool
}

// RunMulticore sweeps the thread ladder for all three variants. GOMAXPROCS
// is set to each thread count for the duration of its measurements and
// restored afterwards; thread counts beyond the host's CPUs trigger the
// underprovisioning warning (and still run, honestly slow).
func RunMulticore(cfg MulticoreConfig) []MulticoreVariant {
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	if cfg.Shards < 2 {
		cfg.Shards = 8
	}
	variants := []mcVariant{
		{
			name:  "locked",
			fresh: func() mcFilter { return core.NewCFilter8(cfg.NSlots, core.Options{}) },
			contains: func(f mcFilter) func(uint64) bool {
				return f.(*core.CFilter8).ContainsLocked
			},
		},
		{
			name:  "optimistic",
			fresh: func() mcFilter { return core.NewCFilter8(cfg.NSlots, core.Options{}) },
			contains: func(f mcFilter) func(uint64) bool {
				return f.(*core.CFilter8).Contains
			},
		},
		{
			name:  "sharded",
			fresh: func() mcFilter { return core.NewSharded8(cfg.NSlots, cfg.Shards, core.Options{}) },
			contains: func(f mcFilter) func(uint64) bool {
				return f.(*core.Sharded8).Contains
			},
		},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	out := make([]MulticoreVariant, 0, len(variants))
	for _, v := range variants {
		mv := MulticoreVariant{Variant: v.name}
		// Lookup workloads run against one prefilled filter per variant.
		prefilled := v.fresh()
		keys := fillTo85(prefilled, cfg.NSlots, cfg.Seed)
		probe := makeProbe(keys, cfg.Seed^0xabcd)
		var base MulticorePoint
		for i, t := range cfg.Threads {
			runtime.GOMAXPROCS(t)
			WarnUnderprovisioned(t)
			p := MulticorePoint{Threads: t}
			p.InsertMops = bestOf(cfg.Repeat, func() float64 {
				return mcInsertFill(v.fresh(), cfg.NSlots, t, cfg.Seed)
			})
			p.LookupMops = bestOf(cfg.Repeat, func() float64 {
				return mcLookups(v.contains(prefilled), keys, t, cfg.OpsPerThread, cfg.Seed)
			})
			p.BatchMops = bestOf(cfg.Repeat, func() float64 {
				return mcBatchLookups(prefilled, probe)
			})
			p.LookupLatency = mcLookupLatency(v.contains(prefilled), keys, t, cfg.OpsPerThread, cfg.Seed)
			if i == 0 {
				base = p
			}
			p.InsertEff = efficiency(p.InsertMops, base.InsertMops, t, base.Threads)
			p.LookupEff = efficiency(p.LookupMops, base.LookupMops, t, base.Threads)
			p.BatchEff = efficiency(p.BatchMops, base.BatchMops, t, base.Threads)
			mv.Points = append(mv.Points, p)
		}
		runtime.GOMAXPROCS(prev)
		out = append(out, mv)
	}
	return out
}

// efficiency returns the scaling efficiency of mops at t threads relative
// to baseMops at baseT threads (normally 1).
func efficiency(mops, baseMops float64, t, baseT int) float64 {
	if baseMops == 0 || t == 0 {
		return 0
	}
	return (mops / baseMops) * float64(baseT) / float64(t)
}

func bestOf(repeat int, run func() float64) float64 {
	m := 0.0
	for i := 0; i < repeat; i++ {
		if v := run(); v > m {
			m = v
		}
	}
	return m
}

// fillTo85 fills f to 85% of nslots and returns the inserted keys.
func fillTo85(f mcFilter, nslots, seed uint64) []uint64 {
	total := nslots * 85 / 100
	s := workload.NewStream(seed)
	keys := make([]uint64, 0, total)
	for uint64(len(keys)) < total {
		h := s.Next()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	return keys
}

// makeProbe builds the batch-lookup buffer: half present keys, half random.
func makeProbe(keys []uint64, seed uint64) []uint64 {
	s := workload.NewStream(seed)
	probe := make([]uint64, len(keys))
	for i := range probe {
		if i&1 == 0 {
			probe[i] = keys[i]
		} else {
			probe[i] = s.Next()
		}
	}
	return probe
}

// mcInsertFill measures aggregate insert throughput: t goroutines fill a
// fresh filter to 85% with disjoint streams.
func mcInsertFill(f mcFilter, nslots uint64, t int, seed uint64) float64 {
	total := nslots * 85 / 100
	per := total / uint64(t)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := workload.NewStream(seed + uint64(w)*0o7777)
			for i := uint64(0); i < per; i++ {
				f.Insert(s.Next())
			}
		}(w)
	}
	wg.Wait()
	return mops(per*uint64(t), time.Since(start))
}

// mcLookups measures aggregate single-key lookup throughput through the
// variant's lookup path: half present keys, half random probes.
func mcLookups(contains func(uint64) bool, keys []uint64, t, opsPerThread int, seed uint64) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := workload.NewStream(seed ^ uint64(w+1)*0x9e3779b97f4a7c15)
			for i := 0; i < opsPerThread; i++ {
				h := s.Next()
				if i&1 == 0 {
					h = keys[h%uint64(len(keys))]
				}
				contains(h)
			}
		}(w)
	}
	wg.Wait()
	return mops(uint64(t)*uint64(opsPerThread), time.Since(start))
}

// mcLookupLatency runs the single-key lookup workload once more with every
// 16th operation individually timed into a shared concurrent histogram, and
// returns the quantile digest. Sampling keeps the two clock reads off 15 of
// 16 ops, so the contention profile the timed ops observe stays close to
// the untimed throughput run's.
func mcLookupLatency(contains func(uint64) bool, keys []uint64, t, opsPerThread int, seed uint64) *telemetry.Summary {
	var lh telemetry.Hist
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := workload.NewStream(seed ^ uint64(w+1)*0x9e3779b97f4a7c15)
			for i := 0; i < opsPerThread; i++ {
				h := s.Next()
				if i&1 == 0 {
					h = keys[h%uint64(len(keys))]
				}
				if i&15 == 0 {
					start := time.Now()
					contains(h)
					lh.Record(h, uint64(time.Since(start)))
				} else {
					contains(h)
				}
			}
		}(w)
	}
	wg.Wait()
	sum := lh.Snapshot().Summary()
	return &sum
}

// mcBatchLookups measures one whole-batch ContainsBatch call; the filter's
// internal worker pool provides the parallelism (bounded by GOMAXPROCS).
func mcBatchLookups(f mcFilter, probe []uint64) float64 {
	dst := make([]bool, len(probe))
	start := time.Now()
	f.ContainsBatch(probe, dst)
	return mops(uint64(len(probe)), time.Since(start))
}
