package harness

import (
	"sort"
	"time"

	"vqf/internal/analysis"
	"vqf/internal/telemetry"
	"vqf/internal/workload"
)

// The observe experiment quantifies the telemetry layer itself, answering
// the two questions that decide whether latency sampling can stay on in
// production: what does the sampling gate cost at each rate (overhead, vs a
// sampling-off baseline measured in the same run), and how accurate are the
// log-bucketed histogram quantiles against an exact-sample oracle. It
// drives the public API (vqf.NewConcurrent + WithLatencySampling), injected
// as a constructor by cmd/vqfbench, because that is where the gate lives —
// an internal-core measurement would miss the hot-path cost being claimed.
// (The constructor is injected rather than imported: the root package's own
// tests use this harness, so importing the root here would cycle.)

// ObserveFilter is the surface RunObserve drives — the hashed-key hot path
// of the public Filter.
type ObserveFilter interface {
	Capacity() uint64
	AddHash(h uint64) error
	ContainsHash(h uint64) bool
}

// ObserveConfig parameterizes RunObserve.
type ObserveConfig struct {
	// NewFilter builds a fresh filter with the given latency sampling rate
	// (0 = off). Required.
	NewFilter func(rate int) ObserveFilter
	// LookupSummary extracts a filter's recorded single-key lookup latency
	// digest, reporting ok=false when sampling is off. Optional; when nil
	// the overhead rows omit their latency column.
	LookupSummary func(f ObserveFilter) (telemetry.Summary, bool)
	// Rates is the sampling-rate ladder; it must start with 0 (sampling
	// off), the baseline every overhead percentage is relative to.
	// Default {0, 64, 8, 1}.
	Rates []int
	// Reps is the number of timed samples per (rate, workload). Default 5.
	Reps int
	// Seed drives the deterministic workload streams.
	Seed uint64
	// OracleOps is the number of individually timed lookups feeding the
	// quantile-accuracy check. Default 200000.
	OracleOps int
}

func (c *ObserveConfig) defaults() {
	if len(c.Rates) == 0 {
		c.Rates = []int{0, 64, 8, 1}
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.OracleOps == 0 {
		c.OracleOps = 200000
	}
}

// ObservePoint is one sampling rate's overhead measurement. Overhead
// percentages are relative to the rate-0 row of the same run (positive =
// slower than sampling off); with run-to-run noise they can go slightly
// negative, which reads as "below the noise floor".
type ObservePoint struct {
	Rate              int                `json:"rate"`
	InsertMops        float64            `json:"insert_mops"`
	InsertCI95        float64            `json:"insert_ci95_mops"`
	LookupMops        float64            `json:"lookup_mops"`
	LookupCI95        float64            `json:"lookup_ci95_mops"`
	InsertOverheadPct float64            `json:"insert_overhead_pct"`
	LookupOverheadPct float64            `json:"lookup_overhead_pct"`
	LookupLatency     *telemetry.Summary `json:"lookup_latency_ns,omitempty"`
}

// ObserveQuantile compares one histogram quantile against the exact-sample
// oracle. BucketDelta is BucketIndex(hist) − BucketIndex(oracle): 0 means
// the histogram reported the oracle value's own bucket, ±1 an adjacent one.
type ObserveQuantile struct {
	Quantile    string `json:"quantile"`
	OracleNs    uint64 `json:"oracle_ns"`
	HistNs      uint64 `json:"hist_ns"`
	BucketDelta int    `json:"bucket_delta"`
}

// ObserveResult is the observe experiment's output.
type ObserveResult struct {
	// Keys is the fill size (85% of the built filter's capacity).
	Keys int `json:"keys"`
	// Points is one overhead row per sampling rate, rate 0 first.
	Points []ObservePoint `json:"points"`
	// Accuracy compares histogram quantiles to the exact-sample oracle.
	Accuracy []ObserveQuantile `json:"accuracy"`
	// MaxAbsBucketDelta is the worst |BucketDelta| across Accuracy — the
	// single number the <=1-bucket acceptance bound checks.
	MaxAbsBucketDelta int `json:"max_abs_bucket_delta"`
}

// RunObserve measures sampling-gate overhead across the rate ladder and
// histogram quantile accuracy against an exact oracle.
func RunObserve(cfg ObserveConfig) ObserveResult {
	cfg.defaults()
	n := int(cfg.NewFilter(0).Capacity() * 85 / 100)
	keys := workload.NewStream(cfg.Seed).Keys(n)
	probe := makeProbe(keys, cfg.Seed^0x0b5e71e5)

	// Overhead ladder. Sampling is round-robin across rates (all rates once
	// per round, Reps rounds) for the same reason the kernel benchmarks
	// interleave: a host-interference window then widens every rate's CI
	// instead of silently biasing one rate's mean — which here would
	// fabricate or mask the very overhead being measured.
	ins := make([][]float64, len(cfg.Rates))
	lkp := make([][]float64, len(cfg.Rates))
	lat := make([]*telemetry.Summary, len(cfg.Rates))
	for rep := 0; rep < cfg.Reps; rep++ {
		for i, rate := range cfg.Rates {
			f := cfg.NewFilter(rate)
			start := time.Now()
			for _, h := range keys {
				f.AddHash(h)
			}
			ins[i] = append(ins[i], mops(uint64(n), time.Since(start)))
			start = time.Now()
			for _, h := range probe {
				f.ContainsHash(h)
			}
			lkp[i] = append(lkp[i], mops(uint64(len(probe)), time.Since(start)))
			if cfg.LookupSummary != nil {
				if s, ok := cfg.LookupSummary(f); ok {
					lat[i] = &s
				}
			}
		}
	}
	out := ObserveResult{Keys: n}
	var baseIns, baseLkp float64
	for i, rate := range cfg.Rates {
		p := ObservePoint{Rate: rate, LookupLatency: lat[i]}
		p.InsertMops, p.InsertCI95 = analysis.MeanCI95(ins[i])
		p.LookupMops, p.LookupCI95 = analysis.MeanCI95(lkp[i])
		if i == 0 {
			baseIns, baseLkp = p.InsertMops, p.LookupMops
		}
		if baseIns > 0 {
			p.InsertOverheadPct = (baseIns - p.InsertMops) / baseIns * 100
		}
		if baseLkp > 0 {
			p.LookupOverheadPct = (baseLkp - p.LookupMops) / baseLkp * 100
		}
		out.Points = append(out.Points, p)
	}

	// Quantile accuracy: time OracleOps lookups individually, feeding each
	// exact duration to both a histogram and a raw-sample slice, then
	// compare the histogram's quantiles to the sorted samples'. Both sides
	// see the identical observations, so any disagreement is pure bucketing
	// error — bounded by one bucket (≤12.5% relative) by construction.
	f := cfg.NewFilter(0)
	for _, h := range keys {
		f.AddHash(h)
	}
	ops := cfg.OracleOps
	if ops > len(probe) {
		ops = len(probe)
	}
	var hist telemetry.Hist
	samples := make([]uint64, 0, ops)
	for _, h := range probe[:ops] {
		start := time.Now()
		f.ContainsHash(h)
		d := uint64(time.Since(start))
		hist.Record(h, d)
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := hist.Snapshot()
	for _, q := range []struct {
		label string
		p     float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}} {
		// Upper-rank convention matching HistSnapshot.Quantile: the k-th
		// smallest sample with k = max(1, floor(p·count)).
		rank := int(q.p * float64(len(samples)))
		if rank < 1 {
			rank = 1
		}
		if rank > len(samples) {
			rank = len(samples)
		}
		oracle := samples[rank-1]
		hq := snap.Quantile(q.p)
		delta := telemetry.BucketIndex(hq) - telemetry.BucketIndex(oracle)
		out.Accuracy = append(out.Accuracy, ObserveQuantile{
			Quantile: q.label, OracleNs: oracle, HistNs: hq, BucketDelta: delta,
		})
		if delta < 0 {
			delta = -delta
		}
		if delta > out.MaxAbsBucketDelta {
			out.MaxAbsBucketDelta = delta
		}
	}
	return out
}
