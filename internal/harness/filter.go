// Package harness drives the paper's Section 7 evaluation: load-factor
// sweeps (Figures 4 and 5), aggregate-throughput runs (Figure 6), empirical
// space and false-positive measurement (Table 2), the write-heavy mixed
// workload (Table 3), multi-threaded insert scaling (Table 4), and the
// maximum-load-factor experiments of Sections 3.4 and 6.2.
//
// Every experiment consumes deterministic workload streams, sizes all
// filters for a common slot count, and reports throughput in millions of
// operations per second, mirroring the paper's methodology: the time to
// generate inputs is excluded, and filters are exercised through the same
// one-at-a-time operation API.
package harness

import (
	"math/bits"

	"vqf/internal/bloom"
	"vqf/internal/core"
	"vqf/internal/cuckoo"
	"vqf/internal/morton"
	"vqf/internal/quotient"
	"vqf/internal/rsqf"
)

// Filter is the operation surface every benchmarked filter exposes. All
// methods take pre-hashed 64-bit keys.
type Filter interface {
	Insert(h uint64) bool
	Contains(h uint64) bool
	Remove(h uint64) bool
	Count() uint64
	Capacity() uint64
	SizeBytes() uint64
}

// Spec names a filter configuration and knows how to build one with a given
// slot budget.
type Spec struct {
	Name string
	// MaxLoad is the benchmark fill target (fraction of Capacity): 0.90 for
	// the VQF (which supports ≈93% max), 0.95 for the others, per §7.1.
	MaxLoad float64
	// NoDelete marks filters without deletion support (plain Bloom).
	NoDelete bool
	New      func(nslots uint64) (Filter, error)
}

// The paper's Figure 4–6 line-up at target ε ≈ 2⁻⁸ (Table 2 configurations):
// VQF with 8-bit fingerprints, with and without the shortcut optimization;
// quotient filter with 8-bit remainders; cuckoo filter with 12-bit
// fingerprints (chosen so its FPR roughly matches); Morton filter with 8-bit
// fingerprints.

// SpecVQF8 is the vector quotient filter, no shortcut.
func SpecVQF8() Spec {
	return Spec{Name: "vqf", MaxLoad: 0.90, New: func(n uint64) (Filter, error) {
		return core.NewFilter8(n, core.Options{NoShortcut: true}), nil
	}}
}

// SpecVQF8Shortcut is the vector quotient filter with the §6.2 shortcut.
func SpecVQF8Shortcut() Spec {
	return Spec{Name: "vqf-shortcut", MaxLoad: 0.90, New: func(n uint64) (Filter, error) {
		return core.NewFilter8(n, core.Options{}), nil
	}}
}

// SpecVQF8Generic is the scalar-loop ablation variant (§7.7 analog).
func SpecVQF8Generic() Spec {
	return Spec{Name: "vqf-generic", MaxLoad: 0.90, New: func(n uint64) (Filter, error) {
		return core.NewFilter8(n, core.Options{Generic: true}), nil
	}}
}

// SpecQF8 is the quotient filter with 8-bit remainders: the rank-and-select
// encoding (internal/rsqf), matching the paper's CQF comparator.
func SpecQF8() Spec {
	return Spec{Name: "qf", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return rsqf.NewForSlots(n, 8)
	}}
}

// SpecQFClassic8 is the classic 3-bit-metadata quotient filter (the
// resizable/mergeable variant), reported alongside Table 2 for reference.
func SpecQFClassic8() Spec {
	return Spec{Name: "qf-classic", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return quotient.New(log2ceil(n), 8)
	}}
}

// SpecCF12 is the cuckoo filter with 12-bit fingerprints.
func SpecCF12() Spec {
	return Spec{Name: "cf", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return cuckoo.New(n, 12)
	}}
}

// SpecMF8 is the Morton filter with 8-bit fingerprints.
func SpecMF8() Spec {
	return Spec{Name: "mf", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return morton.New8(n), nil
	}}
}

// SpecBloom8 is a standard Bloom filter targeting ε = 2⁻⁸ (used for the
// space comparisons; it cannot delete).
func SpecBloom8() Spec {
	return Spec{Name: "bloom", MaxLoad: 0.95, NoDelete: true, New: func(n uint64) (Filter, error) {
		return bloom.New(n*95/100, 1.0/256), nil
	}}
}

// SpecsFPR8 is the paper's ε ≈ 2⁻⁸ filter line-up for Figures 4–6.
func SpecsFPR8() []Spec {
	return []Spec{SpecVQF8(), SpecVQF8Shortcut(), SpecQF8(), SpecCF12(), SpecMF8()}
}

// The ε ≈ 2⁻¹⁶ line-up: 16-bit fingerprints everywhere (the cuckoo filter's
// 16-bit config has a higher FPR, as the paper's Table 2 notes).

// SpecVQF16 is the 16-bit vector quotient filter, no shortcut.
func SpecVQF16() Spec {
	return Spec{Name: "vqf16", MaxLoad: 0.88, New: func(n uint64) (Filter, error) {
		return core.NewFilter16(n, core.Options{NoShortcut: true}), nil
	}}
}

// SpecVQF16Shortcut is the 16-bit VQF with the shortcut optimization.
func SpecVQF16Shortcut() Spec {
	return Spec{Name: "vqf16-shortcut", MaxLoad: 0.88, New: func(n uint64) (Filter, error) {
		return core.NewFilter16(n, core.Options{}), nil
	}}
}

// SpecVQF16Generic is the 16-bit scalar-loop ablation variant.
func SpecVQF16Generic() Spec {
	return Spec{Name: "vqf16-generic", MaxLoad: 0.88, New: func(n uint64) (Filter, error) {
		return core.NewFilter16(n, core.Options{Generic: true}), nil
	}}
}

// SpecQF16 is the rank-and-select quotient filter with 16-bit remainders.
func SpecQF16() Spec {
	return Spec{Name: "qf16", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return rsqf.NewForSlots(n, 16)
	}}
}

// SpecCF16 is the cuckoo filter with 16-bit fingerprints.
func SpecCF16() Spec {
	return Spec{Name: "cf16", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return cuckoo.New(n, 16)
	}}
}

// SpecMF16 is the Morton filter with 16-bit fingerprints.
func SpecMF16() Spec {
	return Spec{Name: "mf16", MaxLoad: 0.95, New: func(n uint64) (Filter, error) {
		return morton.New16(n), nil
	}}
}

// SpecsFPR16 is the ε ≈ 2⁻¹⁶ line-up for Figure 6c/6d.
func SpecsFPR16() []Spec {
	return []Spec{SpecVQF16(), SpecVQF16Shortcut(), SpecQF16(), SpecCF16(), SpecMF16()}
}

func log2ceil(n uint64) uint {
	if n <= 2 {
		return 1
	}
	return uint(bits.Len64(n - 1))
}
