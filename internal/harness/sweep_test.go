package harness

import "testing"

func TestRunSweepAveragedMatchesShape(t *testing.T) {
	res := RunSweepAveraged(SpecVQF8Shortcut(), 1<<13, 1000, 2, 5)
	if res.Failed {
		t.Fatal("averaged sweep failed")
	}
	if len(res.Points) != 18 {
		t.Fatalf("%d points, want 18", len(res.Points))
	}
	for _, p := range res.Points {
		if p.InsertMops <= 0 || p.DeleteMops <= 0 {
			t.Fatalf("nonpositive averaged throughput at %d%%", p.LoadPct)
		}
	}
}

func TestRunSweepAveragedRepeatClamped(t *testing.T) {
	res := RunSweepAveraged(SpecCF12(), 1<<12, 500, 0, 7) // repeat < 1 treated as 1
	if res.Failed || len(res.Points) == 0 {
		t.Fatal("sweep with clamped repeat failed")
	}
}
