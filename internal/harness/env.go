package harness

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"vqf/internal/swar"
)

// BenchEnv records the execution environment of a benchmark run. Every
// BENCH_*.json artifact embeds one, so a number can always be traced back to
// the parallelism, architecture, and kernel implementation that produced it
// — scaling results from a 1-CPU container and a 32-core box are not
// comparable, and the stamp makes the difference visible instead of silent.
type BenchEnv struct {
	// GoMaxProcs is runtime.GOMAXPROCS at capture time: the parallelism the
	// Go scheduler will actually use.
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU is runtime.NumCPU(): the logical CPUs the OS exposes.
	NumCPU int `json:"num_cpu"`
	// PhysicalCores is the distinct physical core count parsed from
	// /proc/cpuinfo, or 0 when unavailable (non-Linux, restricted
	// container). SMT siblings share execution resources, so scaling past
	// PhysicalCores is not expected to be linear.
	PhysicalCores int    `json:"physical_cores"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GoVersion     string `json:"go_version"`
	// AsmKernels reports whether the hand-written assembly match kernels
	// were enabled; FastProbe whether the fused BMI2 probe kernels were
	// available and enabled (both false on non-amd64 and purego builds).
	AsmKernels bool `json:"asm_kernels"`
	FastProbe  bool `json:"fast_probe"`
}

// CaptureEnv snapshots the current benchmark environment.
func CaptureEnv() BenchEnv {
	return BenchEnv{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		PhysicalCores: physicalCores(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoVersion:     runtime.Version(),
		AsmKernels:    swar.AsmKernelsEnabled(),
		FastProbe:     swar.FastProbeEnabled(),
	}
}

// physicalCores counts distinct (physical id, core id) pairs in
// /proc/cpuinfo: the physical cores behind the logical CPUs. Returns 0 when
// the topology cannot be read.
func physicalCores() int {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return 0
	}
	cores := map[string]bool{}
	var phys, core string
	for _, line := range strings.Split(string(buf), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			if phys != "" || core != "" {
				cores[phys+"/"+core] = true
			}
			phys, core = "", ""
			continue
		}
		switch strings.TrimSpace(key) {
		case "physical id":
			phys = strings.TrimSpace(val)
		case "core id":
			core = strings.TrimSpace(val)
		}
	}
	if phys != "" || core != "" {
		cores[phys+"/"+core] = true
	}
	return len(cores)
}

// WarnUnderprovisioned prints a loud warning to stderr when a scaling
// experiment asks for more threads than the runtime will schedule in
// parallel: the resulting "scaling" numbers measure time-slicing, not
// cores, and must not be read as the filter's parallel speedup. It returns
// true when the warning fired.
func WarnUnderprovisioned(requested int) bool {
	avail := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < avail {
		avail = n
	}
	if requested <= avail {
		return false
	}
	fmt.Fprintf(os.Stderr,
		"\n*** WARNING: scaling experiment requested %d threads but only %d can run in parallel ***\n"+
			"*** (GOMAXPROCS=%d, NumCPU=%d). Thread counts beyond %d time-slice on the same cores; ***\n"+
			"*** their Mops/s do NOT measure multi-core scaling. Re-run on a machine with >= %d CPUs. ***\n\n",
		requested, avail, runtime.GOMAXPROCS(0), runtime.NumCPU(), avail, requested)
	return true
}
