package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"vqf/internal/telemetry"
	"vqf/internal/workload"
)

// The service experiment measures the daemon's two wire protocols under a
// closed-loop multi-connection load: each connection issues one request,
// waits for the acknowledgment, and immediately issues the next, so
// measured throughput includes the full network round trip, framing and
// server-side batch execution — the number a remote client actually sees.
// The driver here is protocol-agnostic (the harness cannot import the
// service package: the root package's in-package tests import the harness,
// and the service hosts root-package filters); cmd/vqfbench supplies the
// per-protocol issue functions.

// ServiceConfig parameterizes RunServiceLoad.
type ServiceConfig struct {
	// Protocol labels the measurement ("http", "binary").
	Protocol string
	// Conns is the number of concurrent closed-loop connections.
	Conns int
	// Ops is the total number of keys one measurement issues (split across
	// connections, grouped into Batch-sized requests).
	Ops int
	// Batch is the number of keys per request.
	Batch int
	// Seed generates the query key stream; use the stream that prefilled
	// the filter so lookups hit.
	Seed uint64
}

// ServicePoint is one (protocol, batch size) measurement.
type ServicePoint struct {
	Protocol string  `json:"protocol"`
	Batch    int     `json:"batch"`
	Conns    int     `json:"conns"`
	Ops      int     `json:"ops"`
	Seconds  float64 `json:"seconds"`
	// Mops is end-to-end keys per microsecond across all connections.
	Mops float64 `json:"mops"`
	// RequestLatency digests per-request (not per-key) round-trip latency.
	RequestLatency telemetry.Summary `json:"request_latency"`
}

// RunServiceLoad drives one closed-loop measurement: Conns goroutines
// split a shared key stream into Batch-sized requests, each goroutine
// issuing its next request the moment the previous one is acknowledged.
// issue is called with the connection index and that request's keys; a
// non-nil return is a transport failure and aborts the run. Per-request
// round-trip latency lands in a concurrent histogram; throughput is
// end-to-end keys over wall time.
func RunServiceLoad(cfg ServiceConfig, issue func(conn int, keys []uint64) error) (ServicePoint, error) {
	keys := workload.NewStream(cfg.Seed).Keys(cfg.Ops)
	var next atomic.Int64
	var hist telemetry.Hist
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(conn int) {
			defer wg.Done()
			sel := uint64(conn)
			for firstErr.Load() == nil {
				lo := int(next.Add(int64(cfg.Batch))) - cfg.Batch
				if lo >= len(keys) {
					return
				}
				hi := lo + cfg.Batch
				if hi > len(keys) {
					hi = len(keys)
				}
				t0 := time.Now()
				if err := issue(conn, keys[lo:hi]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				hist.Record(sel, uint64(time.Since(t0)))
				sel += 0x9e3779b97f4a7c15 // spread stripe selection per request
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ServicePoint{}, err
	}
	return ServicePoint{
		Protocol:       cfg.Protocol,
		Batch:          cfg.Batch,
		Conns:          cfg.Conns,
		Ops:            cfg.Ops,
		Seconds:        elapsed.Seconds(),
		Mops:           float64(cfg.Ops) / elapsed.Seconds() / 1e6,
		RequestLatency: hist.Snapshot().Summary(),
	}, nil
}
