package harness

import (
	"strings"
	"testing"
)

// The harness tests run every experiment at a deliberately small scale: the
// goal is to validate the machinery (slice accounting, stream plumbing, the
// false-negative and delete assertions built into each run), not to produce
// publication numbers.

const testSlots = 1 << 14

func TestRunSweepAllSpecs(t *testing.T) {
	for _, spec := range append(SpecsFPR8(), SpecsFPR16()...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := RunSweep(spec, testSlots, 2000, 42)
			if res.Failed {
				t.Fatalf("%s: sweep failed before target load", spec.Name)
			}
			wantPoints := int(spec.MaxLoad*100) / 5
			if len(res.Points) != wantPoints {
				t.Fatalf("%s: %d points, want %d", spec.Name, len(res.Points), wantPoints)
			}
			for _, p := range res.Points {
				if p.InsertMops <= 0 || p.PosLookupMops <= 0 || p.RandLookupMops <= 0 {
					t.Fatalf("%s: nonpositive throughput at %d%%: %+v", spec.Name, p.LoadPct, p)
				}
				if p.DeleteMops <= 0 {
					t.Fatalf("%s: missing delete throughput at %d%%", spec.Name, p.LoadPct)
				}
			}
		})
	}
}

func TestRunAggregateAllSpecs(t *testing.T) {
	for _, spec := range SpecsFPR8() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := RunAggregate(spec, testSlots, 7)
			if res.Failed {
				t.Fatalf("%s: aggregate run failed", spec.Name)
			}
			if res.InsertMops <= 0 || res.PosLookupMops <= 0 ||
				res.RandLookupMops <= 0 || res.DeleteMops <= 0 {
				t.Fatalf("%s: nonpositive aggregate throughput: %+v", spec.Name, res)
			}
		})
	}
}

func TestRunMixed(t *testing.T) {
	for _, spec := range []Spec{SpecVQF8Shortcut(), SpecCF12(), SpecMF8()} {
		res := RunMixed(spec, testSlots, 30000, 9)
		if res.Failed {
			t.Fatalf("%s: mixed run failed", spec.Name)
		}
		if res.Mops <= 0 {
			t.Fatalf("%s: nonpositive mixed throughput", spec.Name)
		}
	}
}

func TestRunThreadScaling(t *testing.T) {
	rows := RunThreadScaling(testSlots, []int{1, 2}, 11)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Mops <= 0 {
			t.Fatalf("thread=%d throughput %f", r.Threads, r.Mops)
		}
	}
}

func TestRunSpace(t *testing.T) {
	rows := RunSpace(append(SpecsFPR8(), SpecBloom8()), testSlots, 200000, 13)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Items == 0 || r.SpaceMB <= 0 || r.BitsPerKey <= 0 {
			t.Fatalf("degenerate space row: %+v", r)
		}
		// All ε≈2⁻⁸-class filters should measure within a few bits of 8.
		if r.LogFPR < 5 || r.LogFPR > 14 {
			t.Errorf("%s: measured log FPR %.2f outside plausible range", r.Name, r.LogFPR)
		}
		if r.Efficiency <= 0.3 || r.Efficiency > 1.0 {
			t.Errorf("%s: efficiency %.3f outside (0.3, 1.0]", r.Name, r.Efficiency)
		}
	}
}

func TestRunMaxLoad(t *testing.T) {
	rows := RunMaxLoad(1<<15, 17)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.MaxLoad < 0.3 || r.MaxLoad > 1.0 {
			t.Fatalf("%s: implausible max load %.3f", r.Config, r.MaxLoad)
		}
		byName[r.Config] = r.MaxLoad
	}
	// Shape assertions from §3.4/§6.2: xor ≲ independent; aggressive
	// shortcut thresholds reduce the max load.
	if byName["shortcut 95.83% (46/48)"] >= byName["shortcut 75% (36/48)"] {
		t.Error("95.83% threshold should lower max load vs 75%")
	}
	if byName["xor-trick, no shortcut"] < byName["shortcut 75% (36/48)"]-0.02 {
		t.Error("no-shortcut max load should not be far below shortcut")
	}
}

func TestRunChoices(t *testing.T) {
	rows := RunChoices(1<<15, 0.85, 19)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var two, one ChoiceStats
	for _, r := range rows {
		if r.Policy == "two-choice" {
			two = r
		} else {
			one = r
		}
	}
	// Theorem 1's point: two choices shrink occupancy dispersion.
	if two.StddevOcc >= one.StddevOcc {
		t.Errorf("two-choice stddev %.2f not below single-choice %.2f",
			two.StddevOcc, one.StddevOcc)
	}
	if two.FullPct > one.FullPct {
		t.Errorf("two-choice has more full blocks (%.2f%%) than single-choice (%.2f%%)",
			two.FullPct, one.FullPct)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.500") || !strings.Contains(s, "22") {
		t.Errorf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("bad CSV header: %q", csv)
	}
}

func TestSpecCapacitiesComparable(t *testing.T) {
	// All specs sized with the same slot budget should end up within 2× of
	// one another (power-of-two rounding) — a sanity check that Table 2
	// space comparisons are apples-to-apples.
	for _, spec := range SpecsFPR8() {
		f, err := spec.New(testSlots)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		c := f.Capacity()
		if c < testSlots || c > testSlots*3 {
			t.Errorf("%s: capacity %d for %d requested slots", spec.Name, c, testSlots)
		}
	}
}
