package harness

import (
	"time"

	"vqf/internal/workload"
)

// AggregateResult holds the Figure 6 bars for one filter: total throughput
// for a full fill, full query passes, and a full drain.
type AggregateResult struct {
	Name           string
	InsertMops     float64
	PosLookupMops  float64
	RandLookupMops float64
	DeleteMops     float64
	Failed         bool
}

// RunAggregate measures aggregate throughput: inserting from empty to the
// spec's maximum load, looking up every inserted key, performing an equal
// number of random lookups, and deleting every key.
func RunAggregate(spec Spec, nslots uint64, seed uint64) AggregateResult {
	f, err := spec.New(nslots)
	if err != nil {
		return AggregateResult{Name: spec.Name, Failed: true}
	}
	n := uint64(float64(f.Capacity()) * spec.MaxLoad)
	ins := workload.NewStream(seed)
	neg := workload.NewStream(seed ^ 0x5ca1ab1e0ddba11)
	inserted := make([]uint64, 0, n)
	res := AggregateResult{Name: spec.Name}

	start := time.Now()
	for uint64(len(inserted)) < n {
		h := ins.Next()
		if !f.Insert(h) {
			res.Failed = true
			return res
		}
		inserted = append(inserted, h)
	}
	res.InsertMops = mops(n, time.Since(start))

	start = time.Now()
	got := 0
	for _, h := range inserted {
		if f.Contains(h) {
			got++
		}
	}
	res.PosLookupMops = mops(n, time.Since(start))
	if uint64(got) != n {
		panic("harness: false negative during aggregate run of " + spec.Name)
	}

	start = time.Now()
	sink := 0
	for i := uint64(0); i < n; i++ {
		if f.Contains(neg.Next()) {
			sink++
		}
	}
	res.RandLookupMops = mops(n, time.Since(start))
	_ = sink

	if !spec.NoDelete {
		start = time.Now()
		for _, h := range inserted {
			if !f.Remove(h) {
				panic("harness: remove failed during aggregate run of " + spec.Name)
			}
		}
		res.DeleteMops = mops(n, time.Since(start))
	}
	return res
}
