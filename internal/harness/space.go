package harness

import (
	"math"

	"vqf/internal/analysis"
	"vqf/internal/workload"
)

// SpaceRow is one Table 2 row: the empirical space usage and false-positive
// rate of a filter filled to its maximum benchmark load.
type SpaceRow struct {
	Name       string
	Items      uint64  // items held at maximum occupancy
	LogFPR     float64 // −log₂ of the measured false-positive rate
	SpaceMB    float64
	BitsPerKey float64
	Efficiency float64 // n·log₂(1/ε)/S, the paper's space-efficiency metric
}

// RunSpace fills each filter to its maximum load and measures space and
// false-positive rate with the given number of uniform probes.
func RunSpace(specs []Spec, nslots uint64, probes int, seed uint64) []SpaceRow {
	rows := make([]SpaceRow, 0, len(specs))
	for _, spec := range specs {
		f, err := spec.New(nslots)
		if err != nil {
			continue // unbuildable config: no row rather than a crash
		}
		n := uint64(float64(f.Capacity()) * spec.MaxLoad)
		ins := workload.NewStream(seed)
		var count uint64
		for count < n {
			if !f.Insert(ins.Next()) {
				break
			}
			count++
		}
		neg := workload.NewStream(seed ^ 0xfa15e9051717e5)
		fp := 0
		for i := 0; i < probes; i++ {
			if f.Contains(neg.Next()) {
				fp++
			}
		}
		eps := float64(fp) / float64(probes)
		logFPR := math.Inf(1)
		if eps > 0 {
			logFPR = -math.Log2(eps)
		}
		sizeBits := f.SizeBytes() * 8
		rows = append(rows, SpaceRow{
			Name:       spec.Name,
			Items:      count,
			LogFPR:     logFPR,
			SpaceMB:    float64(f.SizeBytes()) / (1 << 20),
			BitsPerKey: float64(sizeBits) / float64(count),
			Efficiency: analysis.SpaceEfficiency(count, eps, sizeBits),
		})
	}
	return rows
}
