package harness

import (
	"io"
	"sort"
	"sync"

	"vqf/internal/minifilter"
	"vqf/internal/stats"
)

// Live-filter observability. Experiments register the filters they are
// exercising with Observe; anything holding the registry (cmd/vqfbench's
// -httpserve metrics endpoint) can render Prometheus snapshots of the
// in-flight filters with WriteObservedMetrics. Registration is best-effort:
// only filters exposing the stats introspection surface (the VQF variants)
// are kept, comparator filters are silently skipped.

// statsProvider is the introspection surface the VQF variants expose on top
// of the benchmark Filter interface.
type statsProvider interface {
	Stats() stats.OpCounts
	BlockOccupancies() []uint
	SlotsPerBlock() uint
}

var (
	obsMu sync.Mutex
	// observed maps exposition label → live snapshot closure. A re-register
	// under the same label replaces the previous filter, so the endpoint
	// always shows the current repetition's filter.
	observed = map[string]func() stats.Snapshot{}
)

// Observe registers f under the given exposition label if it supports stats
// introspection; otherwise it is a no-op. Safe for concurrent use.
func Observe(name string, f Filter) {
	sp, ok := f.(statsProvider)
	if !ok {
		return
	}
	snap := func() stats.Snapshot {
		return stats.BuildSnapshot(
			f.Count(), f.Capacity(), f.SizeBytes(), fprForGeometry(sp.SlotsPerBlock()),
			sp.BlockOccupancies(), sp.SlotsPerBlock(), sp.Stats())
	}
	obsMu.Lock()
	observed[name] = snap
	obsMu.Unlock()
}

// ObserveSnapshot registers a live snapshot closure directly, for sources
// that don't fit the statsProvider shape (the elastic cascade registers its
// aggregate snapshot this way — per-block occupancy lives in the levels).
func ObserveSnapshot(name string, snap func() stats.Snapshot) {
	obsMu.Lock()
	observed[name] = snap
	obsMu.Unlock()
}

// fprForGeometry returns the analytic full-load false-positive rate of the
// VQF geometry with the given slots per block (paper §5).
func fprForGeometry(slotsPerBlock uint) float64 {
	switch slotsPerBlock {
	case minifilter.B8Slots:
		return 2 * float64(minifilter.B8Slots) / float64(minifilter.B8Buckets) / 256
	case minifilter.B16Slots:
		return 2 * float64(minifilter.B16Slots) / float64(minifilter.B16Buckets) / 65536
	}
	return 0
}

// WriteObservedMetrics renders a fresh snapshot of every observed filter in
// Prometheus text format (stats.ContentType). Snapshots of concurrent
// filters are safe alongside live traffic. Snapshots of sequential filters
// are unsynchronized reads: acceptable for a debugging endpoint (torn
// occupancy values are clamped by BuildOccupancy, counters are monotone
// word reads), but not a memory-model-clean path — a race-detector build
// will flag a scrape overlapping a sequential benchmark loop.
func WriteObservedMetrics(w io.Writer) error {
	obsMu.Lock()
	names := make([]string, 0, len(observed))
	for name := range observed {
		names = append(names, name)
	}
	sort.Strings(names)
	snaps := make([]stats.NamedSnapshot, 0, len(names))
	for _, name := range names {
		snaps = append(snaps, stats.NamedSnapshot{Name: name, Snap: observed[name]()})
	}
	obsMu.Unlock()
	return stats.WriteMetrics(w, snaps)
}
