package harness

import "testing"

func TestRunAggregate16BitSpecs(t *testing.T) {
	for _, spec := range SpecsFPR16() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := RunAggregate(spec, 1<<13, 21)
			if res.Failed {
				t.Fatalf("%s: aggregate run failed", spec.Name)
			}
			if res.InsertMops <= 0 || res.PosLookupMops <= 0 ||
				res.RandLookupMops <= 0 || res.DeleteMops <= 0 {
				t.Fatalf("%s: nonpositive throughput: %+v", spec.Name, res)
			}
		})
	}
}

func TestRunAggregateBloomSkipsDeletes(t *testing.T) {
	res := RunAggregate(SpecBloom8(), 1<<13, 23)
	if res.Failed {
		t.Fatal("bloom aggregate failed")
	}
	if res.DeleteMops != 0 {
		t.Errorf("no-delete filter reported delete throughput %f", res.DeleteMops)
	}
	if res.InsertMops <= 0 {
		t.Error("bloom insert throughput nonpositive")
	}
}

func TestRunAggregateClassicQF(t *testing.T) {
	res := RunAggregate(SpecQFClassic8(), 1<<12, 25)
	if res.Failed {
		t.Fatal("classic quotient filter aggregate failed")
	}
	if res.DeleteMops <= 0 {
		t.Error("classic QF delete throughput nonpositive")
	}
}
