package harness

import "testing"

// TestRunKernelsSmoke runs the kernel microbenchmarks at toy scale and
// checks the result inventory: every geometry/op pair present, every sample
// positive, summaries populated.
func TestRunKernelsSmoke(t *testing.T) {
	results := RunKernels(KernelConfig{NSlots: 1 << 12, Batch: 512, Reps: 2, Seed: 7})
	want := map[string]bool{}
	for _, geom := range []string{"filter8", "filter16"} {
		for _, op := range []string{"insert", "insert-batch", "lookup-pos",
			"lookup-rand", "contains-batch", "remove", "remove-batch"} {
			want[geom+"/"+op] = false
		}
	}
	for _, r := range results {
		seen, ok := want[r.Name]
		if !ok {
			t.Fatalf("unexpected kernel %q", r.Name)
		}
		if seen {
			t.Fatalf("duplicate kernel %q", r.Name)
		}
		want[r.Name] = true
		if len(r.Samples) != 2 {
			t.Fatalf("%s: %d samples, want 2", r.Name, len(r.Samples))
		}
		if r.Mops <= 0 {
			t.Fatalf("%s: non-positive throughput %v", r.Name, r.Mops)
		}
		for _, s := range r.Samples {
			if s <= 0 {
				t.Fatalf("%s: non-positive sample %v", r.Name, s)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("kernel %q missing from results", name)
		}
	}
}
