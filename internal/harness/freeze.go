package harness

import (
	"time"

	"vqf/internal/elastic"
	"vqf/internal/workload"
)

// The freeze experiment: drive an elastic cascade through an lsmstore-style
// churn — totalItems keys inserted in order, then the oldest removedFrac of
// them deleted the way an LSM store drops obsolete runs, except that every
// SurvivorStride-th old key lives on (the long-lived keys every run rewrite
// carries forward). That leaves the old levels sparse: mostly dead slots
// with a thin population of survivors, the exact state the frozen tier is
// for.
//
// Two cascades are built from the identical key stream and churned
// identically, then maintained two different ways:
//
//   - the all-VQF cascade runs CompactNow, merging the sparse old runs into
//     one dense VQF level — the best a mutable-only cascade can do;
//   - the mixed-tier cascade runs FreezeNow directly on the churned state,
//     rebuilding the sparse old runs into one immutable binary-fuse level
//     and dropping the empty ones.
//
// Freezing must act on the *churned* cascade: compaction first would pack
// the survivors into a dense VQF level that a fuse rebuild (which pays a
// vault of canonical keys for removability) cannot beat. The comparison
// quantifies the frozen tier's claim: same keys, same false-positive
// budget, a fraction of the churned cascade's bits per item, and no
// negative-lookup regression versus the compacted all-VQF cascade.

// SurvivorStride is the long-lived-key period of the churn: within the
// removed oldest prefix, every SurvivorStride-th key is kept.
const SurvivorStride = 16

// FreezeSide is the measurement taken at one phase of the run.
type FreezeSide struct {
	Levels        int     `json:"levels"`
	FuseLevels    int     `json:"fuse_levels"`
	Items         uint64  `json:"items"`
	NegLookupMops float64 `json:"neg_lookup_mops"` // never-inserted keys
	PosLookupMops float64 `json:"pos_lookup_mops"` // live keys
	MeasuredFPR   float64 `json:"measured_fpr"`    // over `probes` fresh keys
	BitsPerItem   float64 `json:"bits_per_item"`
}

// FreezeResult is a full churn/compact-vs-freeze run. The JSON tags are the
// schema of BENCH_freeze.json.
type FreezeResult struct {
	TargetFPR    float64    `json:"target_fpr"`
	InitialSlots uint64     `json:"initial_slots"`
	TotalItems   uint64     `json:"total_items"`
	RemovedFrac  float64    `json:"removed_frac"`
	Churned      FreezeSide `json:"churned"`   // after churn, before any maintenance
	Compacted    FreezeSide `json:"compacted"` // after CompactNow (all-VQF baseline)
	Frozen       FreezeSide `json:"frozen"`    // after FreezeNow on the churned twin (mixed VQF/fuse)
	LevelsFrozen int        `json:"levels_frozen"`
	FuseLevels   int        `json:"fuse_levels"`
	FreezeMs     float64    `json:"freeze_ms"`
	// BitsRatioVsChurned is Frozen.BitsPerItem / Churned.BitsPerItem, the
	// headline space number (target ≤0.60 at equal measured FPR). Both
	// sides hold the same keys, so this is exactly the byte ratio.
	BitsRatioVsChurned float64 `json:"bits_ratio_vs_churned"`
	// NegRatioVsCompacted is Frozen.NegLookupMops / Compacted.NegLookupMops
	// (target ≥1: freezing must not give back compaction's lookup win).
	NegRatioVsCompacted float64 `json:"neg_ratio_vs_compacted"`
	// Failed is set if any live key went missing or an op was rejected.
	Failed bool `json:"failed,omitempty"`
}

// RunFreeze builds two identical sequential cascades from the same key
// stream, churns both (oldest removedFrac removed, every SurvivorStride-th
// old key surviving), then compacts one (the all-VQF baseline) and freezes
// the other (the mixed VQF/fuse tier). Every live key is re-verified after
// each structural pass. queries bounds the per-side positive-lookup op
// count; probes the fresh-key FPR/negative-lookup sample.
func RunFreeze(cfg elastic.Config, totalItems uint64, removedFrac float64, probes, queries int, seed uint64) FreezeResult {
	if err := cfg.Validate(); err != nil {
		panic("harness: freeze config: " + err.Error())
	}
	res := FreezeResult{
		TargetFPR:    cfg.TargetFPR,
		InitialSlots: cfg.InitialSlots,
		TotalItems:   totalItems,
		RemovedFrac:  removedFrac,
	}
	build := func() *elastic.Filter {
		f, err := elastic.New(cfg)
		if err != nil {
			panic("harness: freeze config: " + err.Error())
		}
		return f
	}
	allVQF, mixed := build(), build()

	ins := workload.NewStream(seed)
	keys := make([]uint64, 0, totalItems)
	for uint64(len(keys)) < totalItems {
		h := ins.Next()
		if !allVQF.Insert(h) || !mixed.Insert(h) {
			res.Failed = true
			return res
		}
		keys = append(keys, h)
	}
	cut := int(float64(len(keys)) * removedFrac)
	live := make([]uint64, 0, len(keys)-cut+cut/SurvivorStride)
	for i, h := range keys[:cut] {
		if i%SurvivorStride == 0 {
			live = append(live, h) // long-lived key: survives the run drop
			continue
		}
		if !allVQF.Remove(h) || !mixed.Remove(h) {
			res.Failed = true
			return res
		}
	}
	live = append(live, keys[cut:]...)

	side := func(f *elastic.Filter, fuseLevels int, negSeed uint64) FreezeSide {
		s := FreezeSide{Levels: f.NumLevels(), FuseLevels: fuseLevels, Items: f.Count()}
		if n := f.Count(); n > 0 {
			s.BitsPerItem = float64(f.SizeBytes()) * 8 / float64(n)
		}

		qn := queries
		if qn > len(live) {
			qn = len(live)
		}
		t0 := time.Now()
		got := 0
		for i := 0; i < qn; i++ {
			if f.Contains(live[i]) {
				got++
			}
		}
		s.PosLookupMops = mops(uint64(qn), time.Since(t0))
		if got != qn {
			res.Failed = true
		}

		// One fresh-key pass serves both the negative-lookup timing and the
		// FPR estimate (virtually every probe is a true negative).
		neg := workload.NewStream(negSeed)
		t0 = time.Now()
		fps := 0
		for i := 0; i < probes; i++ {
			if f.Contains(neg.Next()) {
				fps++
			}
		}
		s.NegLookupMops = mops(uint64(probes), time.Since(t0))
		s.MeasuredFPR = float64(fps) / float64(probes)
		return s
	}

	// The same fresh-key stream on every side keeps the FPR numbers directly
	// comparable and would expose any probe flipping negative→positive
	// across a structural pass.
	negSeed := seed ^ 0xdeadbeefcafef00d
	res.Churned = side(allVQF, 0, negSeed)

	allVQF.CompactNow()
	for _, h := range live {
		if !allVQF.Contains(h) {
			res.Failed = true
			return res
		}
	}
	res.Compacted = side(allVQF, 0, negSeed)

	t0 := time.Now()
	fr := mixed.FreezeNow()
	res.FreezeMs = float64(time.Since(t0).Microseconds()) / 1000
	res.LevelsFrozen = fr.LevelsFrozen
	res.FuseLevels = fr.FuseLevels
	for _, h := range live {
		if !mixed.Contains(h) {
			res.Failed = true
			return res
		}
	}
	res.Frozen = side(mixed, fr.FuseLevels, negSeed)

	if res.Churned.BitsPerItem > 0 {
		res.BitsRatioVsChurned = res.Frozen.BitsPerItem / res.Churned.BitsPerItem
	}
	if res.Compacted.NegLookupMops > 0 {
		res.NegRatioVsCompacted = res.Frozen.NegLookupMops / res.Compacted.NegLookupMops
	}
	return res
}
