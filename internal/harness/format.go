package harness

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for the experiment driver's output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
