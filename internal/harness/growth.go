package harness

import (
	"time"

	"vqf/internal/elastic"
	"vqf/internal/stats"
	"vqf/internal/workload"
)

// The elastic growth experiment: fill an elastic cascade far past its initial
// capacity and record, for each level lifetime (the span during which that
// level is the newest), the insert throughput, the measured false-positive
// rate at the moment the next growth triggers, and lookup throughput as a
// function of how many levels a probe must traverse. Together the segments
// show the two costs growth is supposed to bound: FPR (must stay under the
// configured ε at every checkpoint) and lookup time (grows with level count
// until the newest level absorbs most probes).

// GrowthSegment is one level lifetime. The JSON tags are the schema of
// BENCH_elastic.json.
type GrowthSegment struct {
	Levels         int     `json:"levels"`           // level count during this segment
	Items          uint64  `json:"items"`            // cumulative items at segment end
	InsertMops     float64 `json:"insert_mops"`      // insert throughput over the segment
	PosLookupMops  float64 `json:"pos_lookup_mops"`  // successful lookups at segment end
	RandLookupMops float64 `json:"rand_lookup_mops"` // uniform-random (mostly negative) lookups
	MeasuredFPR    float64 `json:"measured_fpr"`     // over `probes` never-inserted keys at segment end
	BitsPerItem    float64 `json:"bits_per_item"`    // total cascade size over items held
}

// GrowthResult is a full growth run.
type GrowthResult struct {
	TargetFPR    float64         `json:"target_fpr"`
	GrowthFactor float64         `json:"growth_factor"`
	TightenRatio float64         `json:"tighten_ratio"`
	InitialSlots uint64          `json:"initial_slots"`
	GrowthEvents int             `json:"growth_events"`
	Segments     []GrowthSegment `json:"segments"`
	// Failed is set if an insert failed (level backstop reached).
	Failed bool `json:"failed,omitempty"`
}

// RunGrowth fills an elastic cascade with totalItems keys, snapping a
// measurement segment at every growth event (and a final one at the end).
// Panics on invalid config, like the other harness runners do on broken
// invariants — the config comes from the benchmark driver, not user input.
func RunGrowth(cfg elastic.Config, totalItems uint64, probes, queries int, seed uint64) GrowthResult {
	if err := cfg.Validate(); err != nil {
		panic("harness: growth config: " + err.Error())
	}
	f, err := elastic.New(cfg)
	if err != nil {
		panic("harness: growth config: " + err.Error())
	}
	ObserveSnapshot("elastic", func() stats.Snapshot { return f.Snapshot().Aggregate })
	res := GrowthResult{
		TargetFPR:    cfg.TargetFPR,
		GrowthFactor: cfg.GrowthFactor,
		TightenRatio: cfg.TightenRatio,
		InitialSlots: cfg.InitialSlots,
	}

	ins := workload.NewStream(seed)
	neg := workload.NewStream(seed ^ 0xdeadbeefcafef00d)
	inserted := make([]uint64, 0, totalItems)

	segment := func(start time.Time, segItems uint64) GrowthSegment {
		seg := GrowthSegment{
			Levels:     f.NumLevels(),
			Items:      f.Count(),
			InsertMops: mops(segItems, time.Since(start)),
		}
		if n := f.Count(); n > 0 {
			seg.BitsPerItem = float64(f.SizeBytes()) * 8 / float64(n)
		}

		qn := queries
		if qn > len(inserted) {
			qn = len(inserted)
		}
		stride := len(inserted) / qn
		if stride == 0 {
			stride = 1
		}
		t0 := time.Now()
		got := 0
		for i := 0; i < qn; i++ {
			if f.Contains(inserted[(i*stride)%len(inserted)]) {
				got++
			}
		}
		seg.PosLookupMops = mops(uint64(qn), time.Since(t0))
		if got != qn {
			panic("harness: false negative during elastic growth run")
		}

		t0 = time.Now()
		fps := 0
		for i := 0; i < probes; i++ {
			if f.Contains(neg.Next()) {
				fps++
			}
		}
		seg.RandLookupMops = mops(uint64(probes), time.Since(t0))
		seg.MeasuredFPR = float64(fps) / float64(probes)
		return seg
	}

	levels := f.NumLevels()
	segStart := time.Now()
	var segItems uint64
	for uint64(len(inserted)) < totalItems {
		h := ins.Next()
		if !f.Insert(h) {
			res.Failed = true
			break
		}
		inserted = append(inserted, h)
		segItems++
		if n := f.NumLevels(); n != levels {
			// Growth event: close the segment that just ended.
			res.Segments = append(res.Segments, segment(segStart, segItems))
			res.GrowthEvents += n - levels
			levels = n
			segStart = time.Now()
			segItems = 0
		}
	}
	if segItems > 0 {
		res.Segments = append(res.Segments, segment(segStart, segItems))
	}
	return res
}
