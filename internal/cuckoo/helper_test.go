package cuckoo

// mustNew builds a filter from statically valid test parameters.
func mustNew(nslots uint64, fpBits uint) *Filter {
	f, err := New(nslots, fpBits)
	if err != nil {
		panic(err)
	}
	return f
}
