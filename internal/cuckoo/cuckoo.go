// Package cuckoo implements the cuckoo filter of Fan, Andersen, Kaminsky and
// Mitzenmacher (CoNEXT 2014), the configuration benchmarked by the vector
// quotient filter paper: buckets of 4 fingerprint slots, 12- or 16-bit
// fingerprints packed tightly, partial-key cuckoo hashing with a bounded
// random-walk eviction (500 kicks), and deletion via the xor trick.
package cuckoo

import (
	"math/bits"

	"vqf/internal/hashing"
)

// SlotsPerBucket is the bucket width recommended by the cuckoo filter
// authors (block size 4 in the VQF paper's terminology).
const SlotsPerBucket = 4

// MaxKicks bounds the eviction random walk, as in the reference
// implementation.
const MaxKicks = 500

// Filter is a cuckoo filter. Fingerprints are fpBits wide, packed without
// padding; a zero fingerprint encodes an empty slot, so raw fingerprints are
// mapped into [1, 2^fpBits).
type Filter struct {
	table    *packedTable
	mask     uint64 // numBuckets - 1
	fpBits   uint
	fpMask   uint64
	count    uint64
	kicks    uint64 // total evictions performed (diagnostic)
	rngState uint64
	// victim holds an evicted fingerprint that could not be re-placed, as in
	// the reference implementation; the filter is full once it is occupied.
	victim       uint64
	victimBucket uint64
	hasVictim    bool
}

// New creates a cuckoo filter with at least nslots fingerprint slots and
// fpBits-bit fingerprints (12 and 16 are the paper's configurations). The
// bucket count rounds up to a power of two.
func New(nslots uint64, fpBits uint) *Filter {
	if fpBits < 4 || fpBits > 32 {
		panic("cuckoo: fingerprint width out of range")
	}
	buckets := nextPow2((nslots + SlotsPerBucket - 1) / SlotsPerBucket)
	return &Filter{
		table:    newPackedTable(buckets*SlotsPerBucket, fpBits),
		mask:     buckets - 1,
		fpBits:   fpBits,
		fpMask:   1<<fpBits - 1,
		rngState: 0x853c49e6748fea9b,
	}
}

func nextPow2(x uint64) uint64 {
	if x < 2 {
		return 2
	}
	return 1 << bits.Len64(x-1)
}

// split derives the primary bucket and nonzero fingerprint for a key hash.
func (f *Filter) split(h uint64) (bucket uint64, fp uint64) {
	fp = h & f.fpMask
	if fp == 0 {
		fp = 1 // zero encodes an empty slot
	}
	bucket = (h >> f.fpBits) & f.mask
	return
}

// altBucket returns the partner bucket for (bucket, fp): the xor trick that
// lets lookups and deletes reach both candidate buckets from either side.
func (f *Filter) altBucket(bucket, fp uint64) uint64 {
	return hashing.AltIndex(bucket, fp, f.mask)
}

func (f *Filter) bucketInsert(bucket, fp uint64) bool {
	base := bucket * SlotsPerBucket
	for s := uint64(0); s < SlotsPerBucket; s++ {
		if f.table.get(base+s) == 0 {
			f.table.set(base+s, fp)
			return true
		}
	}
	return false
}

func (f *Filter) bucketContains(bucket, fp uint64) bool {
	base := bucket * SlotsPerBucket
	for s := uint64(0); s < SlotsPerBucket; s++ {
		if f.table.get(base+s) == fp {
			return true
		}
	}
	return false
}

func (f *Filter) bucketRemove(bucket, fp uint64) bool {
	base := bucket * SlotsPerBucket
	for s := uint64(0); s < SlotsPerBucket; s++ {
		if f.table.get(base+s) == fp {
			f.table.set(base+s, 0)
			return true
		}
	}
	return false
}

// rand32 is a small xorshift generator used to pick eviction victims; the
// filter is deterministic for a fixed operation sequence.
func (f *Filter) rand32() uint32 {
	x := f.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rngState = x
	return uint32(x)
}

// Insert adds the pre-hashed key h. It returns false once an eviction walk
// exceeds MaxKicks while a previous victim is still pending — the filter is
// then full (typically at ≈95% load).
func (f *Filter) Insert(h uint64) bool {
	if f.hasVictim {
		return false
	}
	bucket, fp := f.split(h)
	if f.bucketInsert(bucket, fp) {
		f.count++
		return true
	}
	alt := f.altBucket(bucket, fp)
	if f.bucketInsert(alt, fp) {
		f.count++
		return true
	}
	// Both buckets full: random-walk eviction starting from a random side.
	cur := bucket
	if f.rand32()&1 == 1 {
		cur = alt
	}
	curFp := fp
	for kick := 0; kick < MaxKicks; kick++ {
		slot := cur*SlotsPerBucket + uint64(f.rand32()%SlotsPerBucket)
		evicted := f.table.get(slot)
		f.table.set(slot, curFp)
		f.kicks++
		curFp = evicted
		cur = f.altBucket(cur, curFp)
		if f.bucketInsert(cur, curFp) {
			f.count++
			return true
		}
	}
	// Could not re-place the last evicted fingerprint: park it as the victim.
	// The original key is stored (it displaced the victim), so this insert
	// succeeds; the *next* insert fails, as in the reference implementation.
	f.victim = curFp
	f.victimBucket = cur
	f.hasVictim = true
	f.count++
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter) Contains(h uint64) bool {
	bucket, fp := f.split(h)
	if f.bucketContains(bucket, fp) {
		return true
	}
	if f.hasVictim && fp == f.victim &&
		(f.victimBucket == bucket || f.victimBucket == f.altBucket(bucket, fp)) {
		return true
	}
	return f.bucketContains(f.altBucket(bucket, fp), fp)
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
func (f *Filter) Remove(h uint64) bool {
	bucket, fp := f.split(h)
	if f.bucketRemove(bucket, fp) || f.bucketRemove(f.altBucket(bucket, fp), fp) {
		f.count--
		// A pending victim can now be re-homed.
		if f.hasVictim {
			f.hasVictim = false
			v, vb := f.victim, f.victimBucket
			f.count--
			f.insertExisting(vb, v)
		}
		return true
	}
	if f.hasVictim && fp == f.victim &&
		(f.victimBucket == bucket || f.victimBucket == f.altBucket(bucket, fp)) {
		f.hasVictim = false
		f.count--
		return true
	}
	return false
}

// insertExisting re-inserts a parked fingerprint at its known bucket.
func (f *Filter) insertExisting(bucket, fp uint64) {
	if f.bucketInsert(bucket, fp) {
		f.count++
		return
	}
	alt := f.altBucket(bucket, fp)
	if f.bucketInsert(alt, fp) {
		f.count++
		return
	}
	cur, curFp := bucket, fp
	for kick := 0; kick < MaxKicks; kick++ {
		slot := cur*SlotsPerBucket + uint64(f.rand32()%SlotsPerBucket)
		evicted := f.table.get(slot)
		f.table.set(slot, curFp)
		curFp = evicted
		cur = f.altBucket(cur, curFp)
		if f.bucketInsert(cur, curFp) {
			f.count++
			return
		}
	}
	f.victim = curFp
	f.victimBucket = cur
	f.hasVictim = true
	f.count++
}

// Count returns the number of fingerprints currently stored.
func (f *Filter) Count() uint64 { return f.count }

// Capacity returns the total number of fingerprint slots.
func (f *Filter) Capacity() uint64 { return (f.mask + 1) * SlotsPerBucket }

// LoadFactor returns Count divided by Capacity.
func (f *Filter) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the packed fingerprint table.
func (f *Filter) SizeBytes() uint64 { return f.table.sizeBytes() }

// Kicks returns the cumulative number of evictions (diagnostic: this is the
// collision-resolution work that grows with load factor).
func (f *Filter) Kicks() uint64 { return f.kicks }
