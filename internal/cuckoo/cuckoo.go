// Package cuckoo implements the cuckoo filter of Fan, Andersen, Kaminsky and
// Mitzenmacher (CoNEXT 2014), the configuration benchmarked by the vector
// quotient filter paper: buckets of 4 fingerprint slots, 12- or 16-bit
// fingerprints packed tightly, partial-key cuckoo hashing with a bounded
// random-walk eviction (500 kicks), and deletion via the xor trick.
package cuckoo

import (
	"fmt"
	"math/bits"

	"vqf/internal/hashing"
	"vqf/internal/telemetry"
)

// SlotsPerBucket is the bucket width recommended by the cuckoo filter
// authors (block size 4 in the VQF paper's terminology).
const SlotsPerBucket = 4

// MaxKicks bounds the eviction random walk, as in the reference
// implementation.
const MaxKicks = 500

// EvictionAttempts bounds how many independent eviction walks an insert may
// try: each failed walk is rolled back, so a retry explores a different
// random displacement chain instead of dead-ending on one unlucky victim.
const EvictionAttempts = 8

// Filter is a cuckoo filter. Fingerprints are fpBits wide, packed without
// padding; a zero fingerprint encodes an empty slot, so raw fingerprints are
// mapped into [1, 2^fpBits).
type Filter struct {
	table    *packedTable
	mask     uint64 // numBuckets - 1
	fpBits   uint
	fpMask   uint64
	count    uint64
	kicks    uint64 // total evictions performed (diagnostic)
	rngState uint64
}

// MaxSlots bounds the requested slot count: 2^42 slots of 32-bit
// fingerprints is a multi-terabyte table, and the cap keeps the packed-table
// bit arithmetic far from uint64 overflow.
const MaxSlots = 1 << 42

// New creates a cuckoo filter with at least nslots fingerprint slots and
// fpBits-bit fingerprints (12 and 16 are the paper's configurations). The
// bucket count rounds up to a power of two. Out-of-range parameters are
// reported as an error, so run-time configuration (harness, oracle) cannot
// panic the process.
func New(nslots uint64, fpBits uint) (*Filter, error) {
	if fpBits < 4 || fpBits > 32 {
		return nil, fmt.Errorf("cuckoo: fingerprint width %d outside [4, 32]", fpBits)
	}
	if nslots > MaxSlots {
		return nil, fmt.Errorf("cuckoo: %d slots exceeds maximum 2^42", nslots)
	}
	buckets := nextPow2((nslots + SlotsPerBucket - 1) / SlotsPerBucket)
	return &Filter{
		table:    newPackedTable(buckets*SlotsPerBucket, fpBits),
		mask:     buckets - 1,
		fpBits:   fpBits,
		fpMask:   1<<fpBits - 1,
		rngState: 0x853c49e6748fea9b,
	}, nil
}

func nextPow2(x uint64) uint64 {
	if x < 2 {
		return 2
	}
	return 1 << bits.Len64(x-1)
}

// split derives the primary bucket and nonzero fingerprint for a key hash.
func (f *Filter) split(h uint64) (bucket uint64, fp uint64) {
	fp = h & f.fpMask
	if fp == 0 {
		fp = 1 // zero encodes an empty slot
	}
	bucket = (h >> f.fpBits) & f.mask
	return
}

// altBucket returns the partner bucket for (bucket, fp): the xor trick that
// lets lookups and deletes reach both candidate buckets from either side.
func (f *Filter) altBucket(bucket, fp uint64) uint64 {
	return hashing.AltIndex(bucket, fp, f.mask)
}

func (f *Filter) bucketInsert(bucket, fp uint64) bool {
	base := bucket * SlotsPerBucket
	for s := uint64(0); s < SlotsPerBucket; s++ {
		if f.table.get(base+s) == 0 {
			f.table.set(base+s, fp)
			return true
		}
	}
	return false
}

func (f *Filter) bucketContains(bucket, fp uint64) bool {
	base := bucket * SlotsPerBucket
	for s := uint64(0); s < SlotsPerBucket; s++ {
		if f.table.get(base+s) == fp {
			return true
		}
	}
	return false
}

func (f *Filter) bucketRemove(bucket, fp uint64) bool {
	base := bucket * SlotsPerBucket
	for s := uint64(0); s < SlotsPerBucket; s++ {
		if f.table.get(base+s) == fp {
			f.table.set(base+s, 0)
			return true
		}
	}
	return false
}

// rand32 is a small xorshift generator used to pick eviction victims; the
// filter is deterministic for a fixed operation sequence.
func (f *Filter) rand32() uint32 {
	x := f.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rngState = x
	return uint32(x)
}

// Insert adds the pre-hashed key h. It either succeeds or returns false with
// the filter unchanged: a failed eviction walk is rolled back rather than
// parking a homeless victim, because a parked victim blocks every subsequent
// insert — and a walk can fail far below capacity when one bucket pair is
// saturated by duplicates or self-paired fingerprints (see
// testdata/repros/cuckoo12-differential-*). Sustained failure therefore
// signals a full filter (typically ≈95% load) or a saturated pair, and the
// filter stays usable for other keys either way.
func (f *Filter) Insert(h uint64) bool {
	bucket, fp := f.split(h)
	if f.bucketInsert(bucket, fp) {
		f.count++
		return true
	}
	alt := f.altBucket(bucket, fp)
	if f.bucketInsert(alt, fp) {
		f.count++
		return true
	}
	// Both buckets full: random-walk eviction. A greedy walk commits to one
	// displacement chain, and a single unlucky victim choice (one whose own
	// pair is saturated) dead-ends even when a sibling victim would have
	// worked — so a failed walk is rolled back and retried with fresh random
	// choices before giving up.
	for attempt := 0; attempt < EvictionAttempts; attempt++ {
		if f.evictInsert(bucket, alt, fp) {
			f.count++
			return true
		}
	}
	return false
}

// evictInsert runs one bounded random-walk eviction trying to place fp
// (whose candidate buckets are both full). A victim is only eligible when
// displacing it can make progress: an identical fingerprint is a no-op swap,
// and a fingerprint whose partner bucket is this same bucket just bounces
// back. When a bucket holds nothing but ineligible entries, or the walk
// exhausts MaxKicks, the displacement chain is rolled back (reverse order,
// so revisited slots restore correctly) and the walk reports failure with
// the table unchanged.
func (f *Filter) evictInsert(bucket, alt, fp uint64) bool {
	type move struct{ slot, prev uint64 }
	var chain []move
	cur := bucket
	if f.rand32()&1 == 1 {
		cur = alt
	}
	curFp := fp
	for kick := 0; kick < MaxKicks; kick++ {
		base := cur * SlotsPerBucket
		r := uint64(f.rand32() % SlotsPerBucket)
		slot, evicted, found := uint64(0), uint64(0), false
		for s := uint64(0); s < SlotsPerBucket; s++ {
			cand := base + (r+s)%SlotsPerBucket
			vf := f.table.get(cand)
			if vf == curFp || f.altBucket(cur, vf) == cur {
				continue
			}
			slot, evicted, found = cand, vf, true
			break
		}
		if !found {
			break
		}
		f.table.set(slot, curFp)
		chain = append(chain, move{slot, evicted})
		f.kicks++
		curFp = evicted
		cur = f.altBucket(cur, curFp)
		if f.bucketInsert(cur, curFp) {
			return true
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		f.table.set(chain[i].slot, chain[i].prev)
	}
	telemetry.Global().Record(telemetry.EvEvictionRollback, uint64(len(chain)), bucket, 0)
	return false
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter) Contains(h uint64) bool {
	bucket, fp := f.split(h)
	if f.bucketContains(bucket, fp) {
		return true
	}
	return f.bucketContains(f.altBucket(bucket, fp), fp)
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
func (f *Filter) Remove(h uint64) bool {
	bucket, fp := f.split(h)
	if f.bucketRemove(bucket, fp) || f.bucketRemove(f.altBucket(bucket, fp), fp) {
		f.count--
		return true
	}
	return false
}

// Count returns the number of fingerprints currently stored.
func (f *Filter) Count() uint64 { return f.count }

// Capacity returns the total number of fingerprint slots.
func (f *Filter) Capacity() uint64 { return (f.mask + 1) * SlotsPerBucket }

// LoadFactor returns Count divided by Capacity.
func (f *Filter) LoadFactor() float64 { return float64(f.count) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the packed fingerprint table.
func (f *Filter) SizeBytes() uint64 { return f.table.sizeBytes() }

// Kicks returns the cumulative number of evictions (diagnostic: this is the
// collision-resolution work that grows with load factor).
func (f *Filter) Kicks() uint64 { return f.kicks }
