package cuckoo

// packedTable stores fixed-width fingerprints back to back with no padding,
// as the reference cuckoo filter's SingleTable does; 12-bit fingerprints
// really cost 12 bits. Entries may straddle word boundaries.
type packedTable struct {
	words []uint64
	width uint
	mask  uint64
	n     uint64
}

func newPackedTable(n uint64, width uint) *packedTable {
	totalBits := n * uint64(width)
	return &packedTable{
		words: make([]uint64, (totalBits+63)/64+1), // +1 pad word for straddle reads
		width: width,
		mask:  1<<width - 1,
		n:     n,
	}
}

func (t *packedTable) get(i uint64) uint64 {
	bit := i * uint64(t.width)
	w, off := bit>>6, bit&63
	v := t.words[w] >> off
	if off+uint64(t.width) > 64 {
		v |= t.words[w+1] << (64 - off)
	}
	return v & t.mask
}

func (t *packedTable) set(i uint64, v uint64) {
	bit := i * uint64(t.width)
	w, off := bit>>6, bit&63
	t.words[w] = t.words[w]&^(t.mask<<off) | v<<off
	if off+uint64(t.width) > 64 {
		rem := 64 - off
		t.words[w+1] = t.words[w+1]&^(t.mask>>rem) | v>>rem
	}
}

// sizeBytes reports the exact packed footprint (excluding the pad word),
// matching the space accounting of the paper's Table 2.
func (t *packedTable) sizeBytes() uint64 {
	return (t.n*uint64(t.width) + 7) / 8
}
