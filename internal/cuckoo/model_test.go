package cuckoo

import (
	"math/rand"
	"testing"
)

// TestModelBasedOps validates the cuckoo filter against an exact fingerprint
// model under random churn. Two keys are mutually confusable exactly when
// they share a fingerprint and an unordered candidate-bucket pair, so the
// model key is (min(b1,b2), fp).
func TestModelBasedOps(t *testing.T) {
	f := mustNew(1<<10, 12)
	rng := rand.New(rand.NewSource(1))
	type fpKey struct {
		bucket uint64
		fp     uint64
	}
	ident := func(h uint64) fpKey {
		b, fp := f.split(h)
		alt := f.altBucket(b, fp)
		if alt < b {
			b = alt
		}
		return fpKey{b, fp}
	}
	model := map[fpKey]int{}
	var live []uint64
	for step := 0; step < 100000; step++ {
		switch r := rng.Intn(10); {
		case r < 4:
			if f.LoadFactor() > 0.90 {
				continue
			}
			h := rng.Uint64()
			if !f.Insert(h) {
				continue // eviction failure near capacity is allowed
			}
			model[ident(h)]++
			live = append(live, h)
		case r < 7:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			k := ident(h)
			if !f.Remove(h) {
				t.Fatalf("step %d: remove of live key failed (model %d)", step, model[k])
			}
			model[k]--
			if model[k] == 0 {
				delete(model, k)
			}
		default:
			h := rng.Uint64()
			want := model[ident(h)] > 0
			if got := f.Contains(h); got != want {
				t.Fatalf("step %d: contains=%v, model %v", step, got, want)
			}
		}
		if step%4096 == 0 {
			var total int
			for _, c := range model {
				total += c
			}
			if int(f.Count()) != total {
				t.Fatalf("step %d: count %d, model %d", step, f.Count(), total)
			}
		}
	}
}
