package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedTable(t *testing.T) {
	for _, width := range []uint{12, 16, 5, 31} {
		pt := newPackedTable(1000, width)
		model := make([]uint64, 1000)
		rng := rand.New(rand.NewSource(int64(width)))
		for step := 0; step < 20000; step++ {
			i := uint64(rng.Intn(1000))
			v := rng.Uint64() & pt.mask
			pt.set(i, v)
			model[i] = v
			j := uint64(rng.Intn(1000))
			if got := pt.get(j); got != model[j] {
				t.Fatalf("width %d: get(%d) = %#x, want %#x", width, j, got, model[j])
			}
		}
	}
}

func TestPackedTableBoundary(t *testing.T) {
	// 12-bit entries straddle word boundaries at indexes 5, 10, ...
	pt := newPackedTable(64, 12)
	for i := uint64(0); i < 64; i++ {
		pt.set(i, (i*37+1)&0xfff)
	}
	for i := uint64(0); i < 64; i++ {
		if got := pt.get(i); got != (i*37+1)&0xfff {
			t.Fatalf("get(%d) = %#x", i, got)
		}
	}
}

func TestCuckooNoFalseNegatives(t *testing.T) {
	f := mustNew(1<<14, 12)
	rng := rand.New(rand.NewSource(1))
	n := f.Capacity() * 90 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at LF %.3f", f.LoadFactor())
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestCuckooFalsePositiveRate(t *testing.T) {
	f := mustNew(1<<14, 12)
	rng := rand.New(rand.NewSource(2))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Analytic: 2·4·2⁻¹² ≈ 0.002 at full; allow 2× slack.
	if rate > 0.004 {
		t.Errorf("FPR = %.5f too high", rate)
	}
	if rate == 0 {
		t.Error("FPR of exactly 0 implausible")
	}
}

func TestCuckooReachesHighLoadFactor(t *testing.T) {
	f := mustNew(1<<14, 12)
	rng := rand.New(rand.NewSource(3))
	for f.Insert(rng.Uint64()) {
	}
	if lf := f.LoadFactor(); lf < 0.93 {
		t.Errorf("max load factor %.4f below 0.93", lf)
	}
	if f.Kicks() == 0 {
		t.Error("no evictions recorded while filling to capacity")
	}
}

func TestCuckooRemove(t *testing.T) {
	f := mustNew(1<<12, 16)
	rng := rand.New(rand.NewSource(4))
	n := f.Capacity() * 80 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatal("insert failed")
		}
		keys = append(keys, h)
	}
	for _, h := range keys[:len(keys)/2] {
		if !f.Remove(h) {
			t.Fatal("remove of inserted key failed")
		}
	}
	for _, h := range keys[len(keys)/2:] {
		if !f.Contains(h) {
			t.Fatal("false negative after removes")
		}
	}
	if f.Count() != uint64(len(keys)-len(keys)/2) {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestCuckooInsertAfterFullFails(t *testing.T) {
	f := mustNew(1<<10, 12)
	rng := rand.New(rand.NewSource(5))
	inserted := uint64(0)
	for f.Insert(rng.Uint64()) {
		inserted++
	}
	// A failed insert rolls its eviction walk back: the filter stays at the
	// load it reached and keeps working for keys whose buckets have room.
	if f.Count() != inserted {
		t.Fatalf("Count = %d after %d successful inserts", f.Count(), inserted)
	}
	if f.LoadFactor() < 0.90 {
		t.Fatalf("filled only to load factor %.3f before first failure", f.LoadFactor())
	}
	// Removing frees space and re-enables insertion.
	removed := 0
	rng2 := rand.New(rand.NewSource(5))
	for removed < 100 {
		if f.Remove(rng2.Uint64()) {
			removed++
		}
	}
	ok := false
	for i := 0; i < 200 && !ok; i++ {
		ok = f.Insert(rng.Uint64())
	}
	if !ok {
		t.Fatal("insert still failing after 100 removes")
	}
}

func TestCuckooDuplicates(t *testing.T) {
	f := mustNew(1<<10, 16)
	const h = 0x1122334455667788
	// A bucket holds 4 slots and the pair holds 8 copies max.
	for i := 0; i < 8; i++ {
		if !f.Insert(h) {
			t.Fatalf("duplicate insert %d failed", i)
		}
	}
	for i := 0; i < 8; i++ {
		if !f.Remove(h) {
			t.Fatalf("duplicate remove %d failed", i)
		}
	}
	if f.Contains(h) {
		t.Error("key present after removing all copies")
	}
}

func TestCuckooAltBucketInvolution(t *testing.T) {
	f := mustNew(1<<12, 12)
	prop := func(h uint64) bool {
		b, fp := f.split(h)
		alt := f.altBucket(b, fp)
		return f.altBucket(alt, fp) == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCuckooSizeAccounting(t *testing.T) {
	f := mustNew(1<<12, 12)
	want := f.Capacity() * 12 / 8
	if f.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d (12 bits/slot packed)", f.SizeBytes(), want)
	}
}

func BenchmarkCuckooInsertTo50(b *testing.B) { benchInsert(b, 50) }
func BenchmarkCuckooInsertTo90(b *testing.B) { benchInsert(b, 90) }

func benchInsert(b *testing.B, pct uint64) {
	f := mustNew(1<<18, 12)
	rng := rand.New(rand.NewSource(6))
	target := f.Capacity() * pct / 100
	for f.Count() < target {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := rng.Uint64()
		if !f.Insert(h) {
			b.StopTimer()
			f2 := mustNew(1<<18, 12)
			rng2 := rand.New(rand.NewSource(7))
			for f2.Count() < target {
				f2.Insert(rng2.Uint64())
			}
			f = f2
			b.StartTimer()
		}
	}
}

func BenchmarkCuckooLookup(b *testing.B) {
	f := mustNew(1<<18, 12)
	rng := rand.New(rand.NewSource(8))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Contains(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

// TestCuckooDuplicateFloodDoesNotWedge mirrors the morton oracle finding for
// the cuckoo filter: a key whose partner bucket equals its primary (the xor
// offset hashes to zero) can store at most SlotsPerBucket copies, and
// flooding past that used to cycle the eviction walk into parking a victim,
// after which every insert failed. Overflow duplicates must be rejected
// without wedging the filter.
func TestCuckooDuplicateFloodDoesNotWedge(t *testing.T) {
	f := mustNew(1<<12, 12)
	// Find a self-paired key: altBucket(bucket, fp) == bucket.
	var dup uint64
	found := false
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1_000_000; i++ {
		h := rng.Uint64()
		bucket, fp := f.split(h)
		if f.altBucket(bucket, fp) == bucket {
			dup, found = h, true
			break
		}
	}
	if !found {
		t.Skip("no self-paired key found in sample")
	}
	accepted := 0
	for i := 0; i < 20; i++ {
		if f.Insert(dup) {
			accepted++
		}
	}
	if accepted != SlotsPerBucket {
		t.Fatalf("accepted %d duplicates of a self-paired key, want %d", accepted, SlotsPerBucket)
	}
	for i := 0; i < 500; i++ {
		if h := rng.Uint64(); !f.Insert(h) {
			t.Fatalf("fresh insert %d failed after duplicate flood (filter wedged)", i)
		}
	}
	for i := 0; i < accepted; i++ {
		if !f.Remove(dup) {
			t.Fatalf("remove of accepted duplicate %d/%d failed", i, accepted)
		}
	}
}
