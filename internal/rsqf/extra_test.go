package rsqf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewForSlotsBounds(t *testing.T) {
	cases := []struct {
		nslots uint64
		minCap uint64
	}{
		{1, 64},
		{64, 64},
		{65, 128},
		{1 << 20, 1 << 20},
		{1<<20 + 1, 1 << 21},
	}
	for _, c := range cases {
		f := mustNewForSlots(t, c.nslots, 8)
		if f.Capacity() < c.minCap {
			t.Errorf("NewForSlots(%d) capacity %d < %d", c.nslots, f.Capacity(), c.minCap)
		}
	}
	// Zero slots used to panic (bits.Len64 of 2^64-1 demanded 64 quotient
	// bits); it must now yield the minimum geometry.
	if f := mustNewForSlots(t, 0, 8); f.Capacity() < 64 {
		t.Errorf("NewForSlots(0) capacity %d < 64", f.Capacity())
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	for name, fn := range map[string]func() (*Filter, error){
		"qbits-small":  func() (*Filter, error) { return New(2, 8) },
		"qbits-big":    func() (*Filter, error) { return New(50, 8) },
		"rbits-odd":    func() (*Filter, error) { return New(10, 12) },
		"slots-excess": func() (*Filter, error) { return NewForSlots(1<<62, 8) },
	} {
		t.Run(name, func(t *testing.T) {
			if f, err := fn(); err == nil || f != nil {
				t.Errorf("got (%v, %v), want nil filter and an error", f, err)
			}
		})
	}
}

// Property: insert-then-contains always holds below the load ceiling.
func TestPropertyInsertThenContains(t *testing.T) {
	f := mustNew(10, 8)
	prop := func(h uint64) bool {
		if f.LoadFactor() > 0.93 {
			f = mustNew(10, 8)
		}
		if !f.Insert(h) {
			return false
		}
		return f.Contains(h)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPaddingAbsorbsTailClusters(t *testing.T) {
	// Hammer the top quotient with distinct remainders: the run extends into
	// the padding region beyond the last quotient slot.
	f := mustNew(6, 8)
	top := f.Capacity() - 1
	var keys []uint64
	for r := uint64(0); r < 40; r++ {
		h := top<<8 | r
		if !f.Insert(h) {
			t.Fatalf("insert %d into top quotient failed", r)
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative in padding region")
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, h := range keys {
		if !f.Remove(h) {
			t.Fatal("remove from padding region failed")
		}
	}
	if f.Count() != 0 {
		t.Fatalf("count %d", f.Count())
	}
}

func BenchmarkRemoveAt90(b *testing.B) {
	f := mustNew(18, 8)
	rng := rand.New(rand.NewSource(1))
	var keys []uint64
	for f.LoadFactor() < 0.90 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	b.ResetTimer()
	j := 0
	for i := 0; i < b.N; i++ {
		if j >= len(keys) {
			b.StopTimer()
			f = mustNew(18, 8)
			keys = keys[:0]
			for f.LoadFactor() < 0.90 {
				h := rng.Uint64()
				if f.Insert(h) {
					keys = append(keys, h)
				}
			}
			j = 0
			b.StartTimer()
		}
		f.Remove(keys[j])
		j++
	}
}
