package rsqf

import "testing"

// mustNew is a test helper for in-range geometries where New cannot fail.
func mustNew(qbits, rbits uint) *Filter {
	f, err := New(qbits, rbits)
	if err != nil {
		panic("rsqf: test geometry rejected: " + err.Error())
	}
	return f
}

// mustNewForSlots mirrors mustNew for slot-count construction.
func mustNewForSlots(t *testing.T, nslots uint64, rbits uint) *Filter {
	t.Helper()
	f, err := NewForSlots(nslots, rbits)
	if err != nil {
		t.Fatalf("NewForSlots(%d, %d): %v", nslots, rbits, err)
	}
	return f
}
