package rsqf

import (
	"fmt"
	"math/bits"
)

// CheckInvariants audits the filter's rank-and-select structure against a
// ground-truth reconstruction that uses no offsets: it walks every occupied
// quotient in order, derives each run's true extent from the runends
// bitvector alone, and verifies that the offset-accelerated runEnd agrees.
// It also checks global bit balance (one runend per occupied quotient) and
// that stored slots match Count.
func (f *Filter) CheckInvariants() error {
	var occTotal, reTotal int
	for i := range f.occupieds {
		occTotal += bits.OnesCount64(f.occupieds[i])
		reTotal += bits.OnesCount64(f.runends[i])
	}
	if occTotal != reTotal {
		return fmt.Errorf("%d occupied quotients but %d runends", occTotal, reTotal)
	}

	// Ground-truth walk: runs appear in quotient order; run i ends at the
	// i-th runend at or after max(q_i, previous end + 1).
	prevEnd := int64(-1)
	var slots uint64
	for q := uint64(0); q < f.nslots; q++ {
		if !f.getOccupied(q) {
			continue
		}
		start := uint64(prevEnd + 1)
		if start < q {
			start = q
		}
		end := start
		for end < f.xnslots && !f.getRunend(end) {
			end++
		}
		if end >= f.xnslots {
			return fmt.Errorf("quotient %d: no runend found from slot %d", q, start)
		}
		got, err := f.runEndChecked(q)
		if err != nil {
			return fmt.Errorf("quotient %d: %w", q, err)
		}
		if got != end {
			return fmt.Errorf("quotient %d: runEnd=%d, ground truth %d (offset corruption)", q, got, end)
		}
		slots += end - start + 1
		prevEnd = int64(end)
	}
	if slots != f.count {
		return fmt.Errorf("runs hold %d slots but count is %d", slots, f.count)
	}
	return nil
}

// runEndChecked wraps runEnd so that corrupted offsets — which can send its
// select walk past the end of the table — surface as errors instead of
// panics during validation.
func (f *Filter) runEndChecked(q uint64) (end uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runEnd walked out of bounds: %v (offset corruption)", r)
		}
	}()
	return f.runEnd(q), nil
}

// CorruptOffsetForTesting overwrites a block offset (white-box hook for the
// failure-injection tests).
func (f *Filter) CorruptOffsetForTesting(block uint64, v uint16) { f.offsets[block] = v }
