// Package rsqf implements the rank-and-select quotient filter of Pandey,
// Bender, Johnson and Patro (SIGMOD 2017) — the actual comparator benchmarked
// as "quotient filter" in the vector quotient filter paper (its reference
// [43], minus the variable-size counters).
//
// Like the classic quotient filter, an RSQF stores r-bit remainders at or
// after their q-bit quotient's slot, grouped into sorted runs. Instead of
// three metadata bits per slot, it keeps two bitvectors — occupieds (does
// quotient x have a run?) and runends (is slot i the last of some run?) —
// plus one small offset per 64-slot block that anchors rank/select
// navigation, for 2.25 metadata bits per slot in this layout (2.125 in the
// paper's, which uses 8-bit offsets with a saturation path). Finding a run
// is a handful of word operations at any load factor, so lookups do not
// degrade the way a scan-based quotient filter's do; inserts still shift
// cluster suffixes, which is the load-dependent cost the VQF paper measures.
//
// The table is linear (not circular): following the reference implementation,
// a padding region of 10·√(nslots) slots absorbs clusters that spill past
// the last quotient.
package rsqf

import (
	"fmt"
	"math"
	"math/bits"

	"vqf/internal/bitvec"
)

// Filter is a rank-and-select quotient filter with 2^qbits quotients and
// rbits-bit remainders, supporting insert, lookup and delete with multiset
// semantics.
type Filter struct {
	occupieds  []uint64
	runends    []uint64
	offsets    []uint16
	remainders []byte
	qbits      uint
	rbits      uint
	width      uint // remainder bytes per slot
	nslots     uint64
	xnslots    uint64 // nslots plus end padding
	count      uint64
}

// Quotient-width bounds: below 6 bits the 64-slot block machinery has
// nothing to anchor to; above 40 the table would be terabytes and the size
// arithmetic approaches uint64 overflow.
const (
	MinQBits = 6
	MaxQBits = 40
)

// New creates an RSQF with 2^qbits quotient slots and rbits-bit remainders
// (8 or 16). Out-of-range parameters are reported as an error — run-time
// sizing (harness, oracle) must be recoverable; panics are reserved for
// internal invariant violations (e.g. block-offset overflow).
func New(qbits, rbits uint) (*Filter, error) {
	if qbits < MinQBits || qbits > MaxQBits {
		return nil, fmt.Errorf("rsqf: qbits %d outside [%d, %d]", qbits, MinQBits, MaxQBits)
	}
	if rbits != 8 && rbits != 16 {
		return nil, fmt.Errorf("rsqf: rbits %d, want 8 or 16", rbits)
	}
	nslots := uint64(1) << qbits
	pad := (uint64(10*math.Sqrt(float64(nslots))) + 64) &^ 63
	xn := nslots + pad
	words := xn / 64
	width := rbits / 8
	return &Filter{
		occupieds:  make([]uint64, words),
		runends:    make([]uint64, words),
		offsets:    make([]uint16, words),
		remainders: make([]byte, xn*uint64(width)),
		qbits:      qbits,
		rbits:      rbits,
		width:      width,
		nslots:     nslots,
		xnslots:    xn,
	}, nil
}

// NewForSlots creates a filter with at least nslots quotient slots. Slot
// counts that would need more than MaxQBits quotient bits are rejected;
// nslots of zero or one gets the minimum geometry.
func NewForSlots(nslots uint64, rbits uint) (*Filter, error) {
	q := uint(MinQBits)
	if nslots > 2 {
		if lg := uint(bits.Len64(nslots - 1)); lg > q {
			q = lg
		}
	}
	return New(q, rbits)
}

func maskLow(n uint64) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<n - 1
}

func (f *Filter) getOccupied(i uint64) bool { return f.occupieds[i>>6]>>(i&63)&1 == 1 }
func (f *Filter) setOccupied(i uint64)      { f.occupieds[i>>6] |= 1 << (i & 63) }
func (f *Filter) clearOccupied(i uint64)    { f.occupieds[i>>6] &^= 1 << (i & 63) }

func (f *Filter) getRunend(i uint64) bool { return f.runends[i>>6]>>(i&63)&1 == 1 }
func (f *Filter) setRunend(i uint64)      { f.runends[i>>6] |= 1 << (i & 63) }
func (f *Filter) clearRunend(i uint64)    { f.runends[i>>6] &^= 1 << (i & 63) }
func (f *Filter) toggleRunend(i uint64)   { f.runends[i>>6] ^= 1 << (i & 63) }

func (f *Filter) getRem(i uint64) uint64 {
	if f.width == 1 {
		return uint64(f.remainders[i])
	}
	j := i * 2
	return uint64(f.remainders[j]) | uint64(f.remainders[j+1])<<8
}

func (f *Filter) setRem(i uint64, r uint64) {
	if f.width == 1 {
		f.remainders[i] = byte(r)
		return
	}
	j := i * 2
	f.remainders[j] = byte(r)
	f.remainders[j+1] = byte(r >> 8)
}

// split derives quotient and remainder from a key hash.
func (f *Filter) split(h uint64) (q, r uint64) {
	return (h >> f.rbits) & (f.nslots - 1), h & (1<<f.rbits - 1)
}

// selectIgnore returns the position of the k-th set bit of x after clearing
// the low `ignore` bits, or 64 if there is none.
func selectIgnore(x uint64, ignore, k uint64) uint64 {
	return uint64(bitvec.Select64(x&^maskLow(ignore), uint(k)))
}

// runEnd returns the position of the runend associated with slot q: the end
// of q's run if q is occupied, otherwise the end of the last run at or
// before q (clamped to be at least q). This is the offset-anchored
// rank/select navigation of the RSQF (one rank, one or two selects).
func (f *Filter) runEnd(q uint64) uint64 {
	bi := q >> 6
	so := q & 63
	boff := uint64(f.offsets[bi])

	rank := uint64(bits.OnesCount64(f.occupieds[bi] & maskLow(so+1)))
	if rank == 0 {
		if boff <= so {
			return q
		}
		return 64*bi + boff - 1
	}

	rbi := bi + boff>>6
	ignore := boff & 63
	rrank := rank - 1
	rpos := selectIgnore(f.runends[rbi], ignore, rrank)
	if rpos == 64 {
		for {
			rrank -= uint64(bits.OnesCount64(f.runends[rbi] &^ maskLow(ignore)))
			rbi++
			ignore = 0
			rpos = selectIgnore(f.runends[rbi], 0, rrank)
			if rpos != 64 {
				break
			}
		}
	}
	end := 64*rbi + rpos
	if end < q {
		return q
	}
	return end
}

// offsetLowerBound returns a lower bound on how many items occupying slots
// >= slot have quotients <= slot; zero means the slot is empty.
func (f *Filter) offsetLowerBound(slot uint64) uint64 {
	bi, so := slot>>6, slot&63
	boff := uint64(f.offsets[bi])
	occ := f.occupieds[bi] & maskLow(so+1)
	if boff <= so {
		runends := (f.runends[bi] & maskLow(so)) >> boff
		return uint64(bits.OnesCount64(occ)) - uint64(bits.OnesCount64(runends))
	}
	return boff - so + uint64(bits.OnesCount64(occ))
}

func (f *Filter) isEmptySlot(slot uint64) bool { return f.offsetLowerBound(slot) == 0 }

// findFirstEmptySlot returns the first empty slot at or after from.
func (f *Filter) findFirstEmptySlot(from uint64) uint64 {
	for {
		t := f.offsetLowerBound(from)
		if t == 0 {
			return from
		}
		from += t
	}
}

// runStart returns the first slot of q's run (valid when q is occupied).
func (f *Filter) runStart(q uint64) uint64 {
	if q == 0 {
		return 0
	}
	s := f.runEnd(q-1) + 1
	if s < q {
		return q
	}
	return s
}

// shiftRemaindersRight moves remainders [start, empty) up one slot.
func (f *Filter) shiftRemaindersRight(start, empty uint64) {
	w := uint64(f.width)
	copy(f.remainders[(start+1)*w:(empty+1)*w], f.remainders[start*w:empty*w])
}

// shiftRunendsRight moves runend bits [start, empty) up one position and
// clears bit start. Bit empty receives the former bit empty-1; bits above
// empty are untouched.
func (f *Filter) shiftRunendsRight(start, empty uint64) {
	if empty == start {
		return
	}
	fw, lw := start>>6, empty>>6
	carry := uint64(0)
	for w := fw; w <= lw; w++ {
		cur := f.runends[w]
		shifted := cur<<1 | carry
		nextCarry := cur >> 63
		newWord := shifted
		if w == fw {
			b := start & 63
			low := maskLow(b)
			newWord = cur&low | shifted&^low&^(1<<b)
		}
		if w == lw {
			b := empty & 63
			var keep uint64
			if b < 63 {
				keep = ^maskLow(b + 1)
			}
			newWord = newWord&^keep | cur&keep
		}
		f.runends[w] = newWord
		carry = nextCarry
	}
}

// Insert adds the pre-hashed key h, returning false when the table (plus its
// end padding) has no empty slot for it. Runs are kept sorted; duplicates
// are stored adjacently (multiset semantics).
func (f *Filter) Insert(h uint64) bool {
	q, r := f.split(h)

	if f.isEmptySlot(q) {
		f.setRunend(q)
		f.setRem(q, r)
		f.setOccupied(q)
		f.count++
		return true
	}

	runend := f.runEnd(q)
	insertIdx := runend + 1
	const (
		opNewRun = iota
		opAppend
		opBefore
	)
	op := opNewRun
	if f.getOccupied(q) {
		idx := f.runStart(q)
		for idx <= runend && f.getRem(idx) < r {
			idx++
		}
		if idx <= runend {
			insertIdx = idx
			op = opBefore
		} else {
			op = opAppend
		}
	}

	empty := f.findFirstEmptySlot(q)
	if empty >= f.xnslots-1 {
		return false
	}
	f.shiftRemaindersRight(insertIdx, empty)
	f.setRem(insertIdx, r)
	f.shiftRunendsRight(insertIdx, empty)
	switch op {
	case opNewRun:
		f.setRunend(insertIdx)
	case opAppend:
		f.clearRunend(insertIdx - 1)
		f.setRunend(insertIdx)
	case opBefore:
		f.clearRunend(insertIdx)
	}
	for i := q>>6 + 1; i <= empty>>6; i++ {
		if f.offsets[i] == ^uint16(0) {
			panic("rsqf: block offset overflow (cluster longer than 65535 slots)")
		}
		f.offsets[i]++
	}
	f.setOccupied(q)
	f.count++
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter) Contains(h uint64) bool {
	q, r := f.split(h)
	if !f.getOccupied(q) {
		return false
	}
	end := f.runEnd(q)
	for i := f.runStart(q); i <= end; i++ {
		rem := f.getRem(i)
		if rem == r {
			return true
		}
		if rem > r {
			return false // runs are sorted
		}
	}
	return false
}

// Remove deletes one previously inserted instance of the pre-hashed key h,
// returning false if its fingerprint is absent.
func (f *Filter) Remove(h uint64) bool {
	q, r := f.split(h)
	if !f.getOccupied(q) {
		return false
	}
	start := f.runStart(q)
	end := f.runEnd(q)
	pos := uint64(0)
	found := false
	for i := start; i <= end; i++ {
		rem := f.getRem(i)
		if rem == r {
			pos, found = i, true
			break
		}
		if rem > r {
			return false
		}
	}
	if !found {
		return false
	}
	f.removeAt(q, pos, start == end)
	f.count--
	return true
}

// removeAt deletes the remainder at slot pos of quotient q's run, shifting
// the rest of the cluster left and repairing runends, occupieds and offsets.
// This is the single-item case of the reference implementation's
// remove-and-shift routine.
func (f *Filter) removeAt(q, pos uint64, onlyItem bool) {
	// Runend repair for the vacated slot: if the deleted element ended its
	// run and was not its only element, the preceding slot becomes the end.
	if f.getRunend(pos) {
		if pos > q && !f.getRunend(pos-1) {
			f.setRunend(pos - 1)
		}
	}

	// Slide the remainder of the cluster left one slot, run by run. The
	// distance-tracking loop is ported from the reference implementation:
	// currentBucket tracks which quotient's run is sliding so that runs are
	// never moved before their canonical slot (which instead shortens the
	// shift distance and leaves truly empty slots behind).
	currentBucket := q
	currentSlot := pos
	currentDistance := uint64(1)
	for currentDistance > 0 {
		if f.getRunend(currentSlot + currentDistance - 1) {
			for {
				currentBucket++
				if currentBucket >= currentSlot+currentDistance || f.getOccupied(currentBucket) {
					break
				}
			}
			if currentBucket <= currentSlot {
				f.moveSlot(currentSlot, currentSlot+currentDistance)
				currentSlot++
			} else if currentBucket <= currentSlot+currentDistance {
				for i := currentSlot; i < currentSlot+currentDistance; i++ {
					f.setRem(i, 0)
					f.clearRunend(i)
				}
				currentDistance = currentSlot + currentDistance - currentBucket
				currentSlot = currentBucket
			} else {
				currentDistance = 0
			}
		} else {
			f.moveSlot(currentSlot, currentSlot+currentDistance)
			currentSlot++
		}
	}

	if onlyItem {
		f.clearOccupied(q)
	}

	// Recompute block offsets from the deletion point rightward until one is
	// already correct (ported from the reference implementation).
	block := q >> 6
	for {
		if block+1 >= uint64(len(f.offsets)) {
			break
		}
		lastIdx := 64*block + 63
		re := f.runEnd(lastIdx)
		var newOff uint64
		if re>>6 == block {
			newOff = 0
		} else {
			newOff = re - lastIdx
		}
		if uint64(f.offsets[block+1]) == newOff {
			break
		}
		f.offsets[block+1] = uint16(newOff)
		block++
	}
}

// moveSlot copies slot src into dst (remainder and runend bit). Freed tail
// slots are zeroed explicitly by the caller's gap-creation branch.
func (f *Filter) moveSlot(dst, src uint64) {
	f.setRem(dst, f.getRem(src))
	if f.getRunend(dst) != f.getRunend(src) {
		f.toggleRunend(dst)
	}
}

// Count returns the number of remainders currently stored.
func (f *Filter) Count() uint64 { return f.count }

// Capacity returns the number of quotient slots (excluding end padding).
// Practical operation tops out at ≈95% of this.
func (f *Filter) Capacity() uint64 { return f.nslots }

// LoadFactor returns Count divided by Capacity.
func (f *Filter) LoadFactor() float64 { return float64(f.count) / float64(f.nslots) }

// SizeBytes returns the in-memory footprint: occupieds, runends, offsets and
// remainders, including end padding.
func (f *Filter) SizeBytes() uint64 {
	return uint64(len(f.occupieds)+len(f.runends))*8 +
		uint64(len(f.offsets))*2 + uint64(len(f.remainders))
}
