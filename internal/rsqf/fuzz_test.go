package rsqf

import (
	"encoding/binary"
	"testing"
)

// FuzzOpSequence drives a tiny RSQF with fuzz-chosen operations (9-byte
// records: op, 8-byte key hash) against an exact fingerprint model,
// validating structural invariants as it goes.
func FuzzOpSequence(f *testing.F) {
	seed := make([]byte, 0, 90)
	for i := 0; i < 10; i++ {
		rec := make([]byte, 9)
		rec[0] = byte(i % 3)
		binary.LittleEndian.PutUint64(rec[1:], uint64(i)*0x9e3779b97f4a7c15)
		seed = append(seed, rec...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		filter := mustNew(6, 8) // 64 quotients: dense clusters come quickly
		type fpKey struct{ fq, fr uint64 }
		model := map[fpKey]int{}
		total := 0
		for i := 0; i+8 < len(data); i += 9 {
			h := binary.LittleEndian.Uint64(data[i+1:])
			fq, fr := filter.split(h)
			k := fpKey{fq, fr}
			switch data[i] % 3 {
			case 0:
				if filter.LoadFactor() > 0.9 {
					continue
				}
				if filter.Insert(h) {
					model[k]++
					total++
				}
			case 1:
				ok := filter.Remove(h)
				if ok != (model[k] > 0) {
					t.Fatalf("remove ok=%v model=%d", ok, model[k])
				}
				if ok {
					model[k]--
					total--
				}
			case 2:
				if got, want := filter.Contains(h), model[k] > 0; got != want {
					t.Fatalf("contains=%v want %v", got, want)
				}
			}
		}
		if int(filter.Count()) != total {
			t.Fatalf("count %d, model %d", filter.Count(), total)
		}
		if err := filter.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
