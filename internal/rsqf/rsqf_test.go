package rsqf

import (
	"math/rand"
	"testing"
)

func TestInsertContainsBasic(t *testing.T) {
	f := mustNew(10, 8)
	keys := []uint64{0, 1, 0xdeadbeef, 1 << 40, ^uint64(0)}
	for _, h := range keys {
		if !f.Insert(h) {
			t.Fatalf("Insert(%#x) failed", h)
		}
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatalf("Contains(%#x) false after insert", h)
		}
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestNoFalseNegativesAt95(t *testing.T) {
	f := mustNew(14, 8)
	rng := rand.New(rand.NewSource(1))
	n := f.Capacity() * 95 / 100
	keys := make([]uint64, 0, n)
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("insert failed at LF %.3f", f.LoadFactor())
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := mustNew(14, 8)
	rng := rand.New(rand.NewSource(2))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.007 {
		t.Errorf("FPR = %.5f too high", rate)
	}
	if rate == 0 {
		t.Error("FPR of exactly 0 implausible")
	}
}

// TestModelBasedOps validates the RSQF against an exact fingerprint multiset
// under random insert/delete/lookup churn, including dense clusters.
func TestModelBasedOps(t *testing.T) {
	f := mustNew(8, 8)
	rng := rand.New(rand.NewSource(3))
	type fpKey struct{ fq, fr uint64 }
	model := map[fpKey]int{}
	var live []uint64
	for step := 0; step < 200000; step++ {
		switch r := rng.Intn(10); {
		case r < 4:
			if f.LoadFactor() > 0.95 {
				continue
			}
			h := rng.Uint64()
			fq, fr := f.split(h)
			if !f.Insert(h) {
				t.Fatalf("step %d: insert failed at LF %.3f", step, f.LoadFactor())
			}
			model[fpKey{fq, fr}]++
			live = append(live, h)
		case r < 7:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			fq, fr := f.split(h)
			k := fpKey{fq, fr}
			if !f.Remove(h) {
				t.Fatalf("step %d: remove of inserted key failed (model %d)", step, model[k])
			}
			model[k]--
			if model[k] == 0 {
				delete(model, k)
			}
		default:
			if len(live) > 0 {
				if !f.Contains(live[rng.Intn(len(live))]) {
					t.Fatalf("step %d: false negative", step)
				}
			}
			h := rng.Uint64()
			fq, fr := f.split(h)
			want := model[fpKey{fq, fr}] > 0
			if got := f.Contains(h); got != want {
				t.Fatalf("step %d: Contains=%v, model says %v (q=%d r=%d)", step, got, want, fq, fr)
			}
		}
		if step%4096 == 0 {
			var total int
			for _, c := range model {
				total += c
			}
			if f.Count() != uint64(total) {
				t.Fatalf("step %d: Count=%d model=%d", step, f.Count(), total)
			}
		}
	}
}

func TestDeleteHeavyChurnAtHighLoad(t *testing.T) {
	f := mustNew(10, 8)
	rng := rand.New(rand.NewSource(4))
	var live []uint64
	for f.LoadFactor() < 0.90 {
		h := rng.Uint64()
		if f.Insert(h) {
			live = append(live, h)
		}
	}
	for step := 0; step < 50000; step++ {
		i := rng.Intn(len(live))
		if !f.Remove(live[i]) {
			t.Fatalf("step %d: remove failed", step)
		}
		h := rng.Uint64()
		if !f.Insert(h) {
			t.Fatalf("step %d: insert failed at LF %.3f", step, f.LoadFactor())
		}
		live[i] = h
	}
	for _, h := range live {
		if !f.Contains(h) {
			t.Fatal("false negative after churn")
		}
	}
}

func TestDuplicatesMultiset(t *testing.T) {
	f := mustNew(8, 8)
	const h = 0x123456789abcdef0
	for i := 0; i < 5; i++ {
		if !f.Insert(h) {
			t.Fatalf("duplicate insert %d failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		if !f.Contains(h) {
			t.Fatal("key missing")
		}
		if !f.Remove(h) {
			t.Fatalf("duplicate remove %d failed", i)
		}
	}
	if f.Contains(h) || f.Remove(h) {
		t.Error("key still present after removing all copies")
	}
}

func TestDenseTailQuotients(t *testing.T) {
	// Clusters at the top quotients must spill into the padding region and
	// still delete cleanly.
	f := mustNew(6, 8) // 64 quotients
	var keys []uint64
	for i := 0; i < 30; i++ {
		h := uint64(60+(i&3))<<8 | uint64(i*7+1)
		if !f.Insert(h) {
			t.Fatalf("insert %d failed", i)
		}
		keys = append(keys, h)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatalf("false negative for tail key %#x", h)
		}
	}
	order := rand.New(rand.NewSource(5)).Perm(len(keys))
	for _, i := range order {
		if !f.Remove(keys[i]) {
			t.Fatalf("remove of tail key %#x failed", keys[i])
		}
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d after removing all", f.Count())
	}
}

func TestOffsetsConsistencyAfterChurn(t *testing.T) {
	// After heavy churn, runEnd computed with offsets must agree with ground
	// truth derived by a full scan.
	f := mustNew(9, 8)
	rng := rand.New(rand.NewSource(6))
	var live []uint64
	for step := 0; step < 30000; step++ {
		if f.LoadFactor() < 0.9 && rng.Intn(2) == 0 {
			h := rng.Uint64()
			if f.Insert(h) {
				live = append(live, h)
			}
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			if !f.Remove(live[i]) {
				t.Fatalf("step %d: remove failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Ground truth: replay every slot by walking occupieds/runends globally.
	// Verify every live key is still found (exercises runEnd via offsets for
	// every quotient).
	for _, h := range live {
		if !f.Contains(h) {
			t.Fatal("false negative after churn (offset corruption?)")
		}
	}
}

func TestRemoveAbsent(t *testing.T) {
	f := mustNew(12, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		f.Insert(rng.Uint64())
	}
	removed := 0
	for i := 0; i < 10000; i++ {
		if f.Remove(rng.Uint64()) {
			removed++
		}
	}
	if removed > 100 {
		t.Errorf("%d/10000 absent removes succeeded", removed)
	}
}

func TestSixteenBitRemainders(t *testing.T) {
	f := mustNew(12, 16)
	rng := rand.New(rand.NewSource(8))
	keys := make([]uint64, 0, 3500)
	for len(keys) < 3500 {
		h := rng.Uint64()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("false negative (16-bit)")
		}
	}
	fp := 0
	for i := 0; i < 500000; i++ {
		if f.Contains(rng.Uint64()) {
			fp++
		}
	}
	if fp > 40 {
		t.Errorf("%d false positives in 500k probes (16-bit)", fp)
	}
	for _, h := range keys[:500] {
		if !f.Remove(h) {
			t.Fatal("remove failed (16-bit)")
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	f := mustNew(12, 8)
	// 2.25 metadata bits + 8 remainder bits per slot, plus padding.
	min := f.Capacity() * (8 + 2) / 8
	if f.SizeBytes() < min {
		t.Errorf("SizeBytes %d below minimum plausible %d", f.SizeBytes(), min)
	}
	if f.SizeBytes() > min*2 {
		t.Errorf("SizeBytes %d implausibly large", f.SizeBytes())
	}
}

func BenchmarkInsertTo90(b *testing.B) {
	f := mustNew(18, 8)
	rng := rand.New(rand.NewSource(9))
	target := f.Capacity() * 90 / 100
	for f.Count() < target {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Insert(rng.Uint64()) {
			b.Fatal("full")
		}
		if f.LoadFactor() > 0.95 {
			b.StopTimer()
			f = mustNew(18, 8)
			for f.Count() < target {
				f.Insert(rng.Uint64())
			}
			b.StartTimer()
		}
	}
}

func BenchmarkLookupAt90(b *testing.B) {
	f := mustNew(18, 8)
	rng := rand.New(rand.NewSource(10))
	for f.LoadFactor() < 0.90 {
		f.Insert(rng.Uint64())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Contains(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}
