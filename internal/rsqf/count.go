package rsqf

// CountOf returns the number of stored instances of the pre-hashed key h's
// fingerprint. Because the filter is a multiset with duplicates stored
// adjacently in sorted runs, counting is a bounded scan of one run — the
// membership-counting facility of the counting quotient filter [43], with
// unary (repeated-remainder) encoding in place of the CQF's variable-size
// counters.
func (f *Filter) CountOf(h uint64) uint64 {
	q, r := f.split(h)
	if !f.getOccupied(q) {
		return 0
	}
	end := f.runEnd(q)
	var n uint64
	for i := f.runStart(q); i <= end; i++ {
		rem := f.getRem(i)
		if rem == r {
			n++
		} else if rem > r {
			break
		}
	}
	return n
}
