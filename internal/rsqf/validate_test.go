package rsqf

import (
	"math/rand"
	"testing"
)

func TestInvariantsHoldUnderChurn(t *testing.T) {
	f := mustNew(9, 8)
	rng := rand.New(rand.NewSource(1))
	var live []uint64
	for step := 0; step < 20000; step++ {
		if rng.Intn(2) == 0 && f.LoadFactor() < 0.93 {
			h := rng.Uint64()
			if f.Insert(h) {
				live = append(live, h)
			}
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			if !f.Remove(live[i]) {
				t.Fatalf("step %d: remove of live key failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%2500 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsDetectOffsetCorruption(t *testing.T) {
	f := mustNew(9, 8)
	rng := rand.New(rand.NewSource(2))
	for f.LoadFactor() < 0.85 {
		f.Insert(rng.Uint64())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("clean filter fails validation: %v", err)
	}
	// Corrupt a block offset: at 85% load most blocks have nonzero offsets,
	// so a large bogus value must break some quotient's runEnd.
	f.CorruptOffsetForTesting(3, 999)
	if f.CheckInvariants() == nil {
		t.Error("offset corruption passed validation")
	}
}

func TestInvariantsAtEmptyAndFull(t *testing.T) {
	f := mustNew(8, 8)
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("empty filter: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for f.LoadFactor() < 0.95 {
		if !f.Insert(rng.Uint64()) {
			break
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("95%%-full filter: %v", err)
	}
}
