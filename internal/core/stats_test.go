package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/workload"
)

// monotone checks that every counter of cur is ≥ the same counter of prev.
func monotone(prev, cur stats.OpCounts) bool {
	d := cur.Sub(prev)
	// Unsigned subtraction wraps on regression; any component at or above
	// 1<<63 means cur < prev.
	for _, v := range []uint64{d.Inserts, d.InsertFailures, d.ShortcutInserts, d.Lookups,
		d.Removes, d.RemoveMisses, d.OptAttempts, d.OptRetries, d.OptFallbacks,
		d.BatchOps, d.BatchKeys} {
		if v >= 1<<63 {
			return false
		}
	}
	return true
}

// TestStatsUnderContention hammers a concurrent filter with parallel
// readers, writers, and a stats sampler (run with -race in CI), then checks
// the retry/fallback accounting invariants against the op totals.
func TestStatsUnderContention(t *testing.T) {
	f := NewCFilter8(1<<14, Options{})
	fill := workload.NewStream(7)
	keys := make([]uint64, 0, f.Capacity()/2)
	for uint64(len(keys)) < f.Capacity()/2 {
		h := fill.Next()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	base := f.Stats()

	const (
		writers = 2
		readers = 2
		perG    = 20000
	)
	var workersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			s := workload.NewStream(uint64(100 + w))
			var churn []uint64
			for i := 0; i < perG; i++ {
				if len(churn) > 32 {
					k := churn[len(churn)-1]
					churn = churn[:len(churn)-1]
					f.Remove(k)
					continue
				}
				h := s.Next()
				if f.Insert(h) {
					churn = append(churn, h)
				}
			}
			for _, k := range churn {
				f.Remove(k)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		workersWG.Add(1)
		go func(r int) {
			defer workersWG.Done()
			s := workload.NewStream(uint64(200 + r))
			for i := 0; i < perG; i++ {
				h := s.Next()
				if i&1 == 0 {
					h = keys[h%uint64(len(keys))]
					if !f.Contains(h) {
						panic("false negative under contention")
					}
				} else {
					f.Contains(h)
				}
			}
		}(r)
	}

	// Sampler: counters must be individually monotone while ops are in
	// flight, and structural snapshots must never block or corrupt anything.
	var stop atomic.Bool
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	samples := 0
	go func() {
		defer samplerWG.Done()
		prev := f.Stats()
		for !stop.Load() {
			cur := f.Stats()
			if !monotone(prev, cur) {
				panic("stats regressed between samples")
			}
			prev = cur
			f.BlockOccupancies() // concurrent structural snapshot
			samples++
		}
	}()

	workersWG.Wait()
	stop.Store(true)
	samplerWG.Wait()
	if samples == 0 {
		t.Fatal("sampler never ran")
	}

	st := f.Stats().Sub(base)
	if st.OptRetries < uint64(minifilter.OptRetryBudget)*st.OptFallbacks {
		t.Fatalf("retries %d < budget %d × fallbacks %d",
			st.OptRetries, minifilter.OptRetryBudget, st.OptFallbacks)
	}
	if st.OptAttempts < st.Lookups {
		t.Fatalf("attempts %d < lookups %d", st.OptAttempts, st.Lookups)
	}
	if maxAtt := 2*st.Lookups + st.Inserts + st.InsertFailures; st.OptAttempts > maxAtt {
		t.Fatalf("attempts %d > bound %d", st.OptAttempts, maxAtt)
	}
	total := f.Stats()
	if total.Inserts-total.Removes != f.Count() {
		t.Fatalf("inserts−removes = %d, Count = %d", total.Inserts-total.Removes, f.Count())
	}
}

// TestStatsUnderContention16 runs the same invariants on the 16-bit variant.
func TestStatsUnderContention16(t *testing.T) {
	f := NewCFilter16(1<<13, Options{})
	s := workload.NewStream(9)
	keys := make([]uint64, 0, f.Capacity()/2)
	for uint64(len(keys)) < f.Capacity()/2 {
		h := s.Next()
		if f.Insert(h) {
			keys = append(keys, h)
		}
	}
	base := f.Stats()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := workload.NewStream(uint64(300 + g))
			for i := 0; i < 10000; i++ {
				if g == 0 && i%5 == 0 {
					h := s.Next()
					if f.Insert(h) {
						f.Remove(h)
					}
					continue
				}
				f.Contains(keys[s.Next()%uint64(len(keys))])
			}
		}(g)
	}
	wg.Wait()
	st := f.Stats().Sub(base)
	if st.OptRetries < uint64(minifilter.OptRetryBudget)*st.OptFallbacks {
		t.Fatalf("retries %d < budget × fallbacks %d", st.OptRetries, st.OptFallbacks)
	}
	if st.OptAttempts < st.Lookups {
		t.Fatalf("attempts %d < lookups %d", st.OptAttempts, st.Lookups)
	}
	if f.Stats().Inserts-f.Stats().Removes != f.Count() {
		t.Fatalf("count mismatch")
	}
}
