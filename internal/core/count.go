package core

import "math/bits"

// CountOf returns the number of stored instances of the pre-hashed key h's
// fingerprint across its two candidate blocks: the VQF analog of the
// counting quotient filter's membership counting, using one SWAR match mask
// per block.
func (f *Filter8) CountOf(h uint64) uint64 {
	b1, bucket, fp, tag := split8(h, f.mask)
	n := uint64(bits.OnesCount64(f.blocks[b1].FindSlots(bucket, fp)))
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	if b2 != b1 {
		n += uint64(bits.OnesCount64(f.blocks[b2].FindSlots(bucket, fp)))
	}
	return n
}
