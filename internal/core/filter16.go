package core

import (
	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/swar"
)

// Filter16 is a single-threaded vector quotient filter with 16-bit
// fingerprints (target false-positive rate ≈ 2⁻¹⁶; empirically ≈ 0.000023,
// paper §5). Blocks hold 28 slots across 36 buckets in one 64-byte cache
// line.
type Filter16 struct {
	blocks []minifilter.Block16
	mask   uint64
	count  uint64
	opts   Options
	thresh uint
	st     stats.Local

	// scratch backs the sequential batch pipeline (batch.go); owning it here
	// makes steady-state batch calls allocation-free.
	scratch batchScratch
}

// NewFilter16 creates a filter with at least nslots fingerprint slots; see
// NewFilter8 for sizing semantics.
func NewFilter16(nslots uint64, opts Options) *Filter16 {
	k := blocksFor(nslots, minifilter.B16Slots)
	f := &Filter16{
		blocks: make([]minifilter.Block16, k),
		mask:   k - 1,
		opts:   opts,
		thresh: opts.threshold(minifilter.B16Slots, defThreshold16),
	}
	for i := range f.blocks {
		f.blocks[i].Reset()
	}
	return f
}

// Capacity returns the total number of fingerprint slots.
func (f *Filter16) Capacity() uint64 {
	return uint64(len(f.blocks)) * minifilter.B16Slots
}

// Count returns the number of fingerprints currently stored.
func (f *Filter16) Count() uint64 { return f.count }

// LoadFactor returns Count divided by Capacity.
func (f *Filter16) LoadFactor() float64 {
	return float64(f.count) / float64(f.Capacity())
}

// NumBlocks returns the number of mini-filter blocks.
func (f *Filter16) NumBlocks() uint64 { return uint64(len(f.blocks)) }

// SizeBytes returns the memory footprint of the block array.
func (f *Filter16) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Insert adds the pre-hashed key h to the filter; see Filter8.Insert.
func (f *Filter16) Insert(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	if f.opts.Generic {
		return f.insertGeneric(h, b1, bucket, fp, tag)
	}
	blk1 := &f.blocks[b1]
	occ1 := blk1.Occupancy()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.Insert(bucket, fp)
		f.count++
		f.st.ShortcutInsert()
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	blk := blk1
	if f.blocks[b2].Occupancy() < occ1 {
		blk = &f.blocks[b2]
	}
	if !blk.Insert(bucket, fp) {
		f.st.InsertFailure()
		return false
	}
	f.count++
	f.st.Insert()
	return true
}

func (f *Filter16) insertGeneric(h, b1 uint64, bucket uint, fp uint16, tag uint64) bool {
	blk1 := &f.blocks[b1]
	occ1 := blk1.OccupancyGeneric()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.InsertGeneric(bucket, fp)
		f.count++
		f.st.ShortcutInsert()
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	blk := blk1
	if f.blocks[b2].OccupancyGeneric() < occ1 {
		blk = &f.blocks[b2]
	}
	if !blk.InsertGeneric(bucket, fp) {
		f.st.InsertFailure()
		return false
	}
	f.count++
	f.st.Insert()
	return true
}

// Contains reports whether the pre-hashed key h may be in the filter.
func (f *Filter16) Contains(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	f.st.Lookup()
	if f.opts.Generic {
		if f.blocks[b1].ContainsGeneric(bucket, fp) {
			return true
		}
		b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
		return f.blocks[b2].ContainsGeneric(bucket, fp)
	}
	// Broadcast the fingerprint once; both block probes reuse it.
	bc := swar.BroadcastU16(fp)
	if f.blocks[b1].Probe(bucket, bc) != 0 {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	return f.blocks[b2].Probe(bucket, bc) != 0
}

// Remove deletes one previously inserted instance of the pre-hashed key h;
// see Filter8.Remove for the deletion-safety contract.
func (f *Filter16) Remove(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	b2 := secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
	if f.opts.Generic {
		if f.blocks[b1].RemoveGeneric(bucket, fp) || f.blocks[b2].RemoveGeneric(bucket, fp) {
			f.count--
			f.st.Remove()
			return true
		}
		f.st.RemoveMiss()
		return false
	}
	bc := swar.BroadcastU16(fp)
	if f.blocks[b1].RemoveB(bucket, bc) || f.blocks[b2].RemoveB(bucket, bc) {
		f.count--
		f.st.Remove()
		return true
	}
	f.st.RemoveMiss()
	return false
}

// BlockOccupancies returns the occupancy of every block.
func (f *Filter16) BlockOccupancies() []uint {
	out := make([]uint, len(f.blocks))
	for i := range f.blocks {
		out[i] = f.blocks[i].Occupancy()
	}
	return out
}

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *Filter16) SlotsPerBlock() uint { return minifilter.B16Slots }

// Stats returns the filter's operation counters; see Filter8.Stats.
func (f *Filter16) Stats() stats.OpCounts { return f.st.Counts() }
