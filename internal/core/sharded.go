package core

// Sharded concurrent filters: a power-of-two array of independent CFilter8/16
// instances, selected by the *top* hash bits. Sharding multiplies every
// contended resource — block locks, seqlock version stripes, striped stats
// counters, the count accumulator — by the shard count, because each shard is
// a self-contained filter with private instances of all of them (each
// separately heap-allocated, so shards never share cache lines). The filter
// semantics are unchanged: a key's two candidate blocks both live in its
// shard, so lookups still touch at most two cache lines plus the shard
// pointer.
//
// Shard selection uses the highest shardBits of the hash, disjoint from the
// bits the in-shard geometry consumes (bucket and fingerprint from the low
// bits, primary block from bit 24/32 up — see split8/split16) for any filter
// below 2^(40−shardBits) blocks per shard, which is beyond the serializer's
// 2^40-block cap anyway. Keys therefore spread near-uniformly and
// independently of their in-shard placement.
//
// Batch operations radix-partition the keys by shard and fan the partitions
// out over a worker pool in which each worker *owns* the shards it claims
// (atomic-cursor claiming): two workers never operate on the same shard, so
// batch workers contend on nothing at all — not even the secondary-block
// collisions the single-filter parallel batches retain. Within its claimed
// partition a worker re-partitions by primary block for the sequential
// sweep locality of the non-sharded batch path.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/telemetry"
)

// maxShardBits bounds the shard count to 256: beyond the core counts of any
// machine this code plausibly meets, and it keeps the shard radix one byte.
const maxShardBits = 8

// shardBitsFor returns ceil(log2(n)) clamped to [0, maxShardBits]; n <= 0
// selects a single shard.
func shardBitsFor(n int) uint {
	bits := uint(0)
	for 1<<bits < n && bits < maxShardBits {
		bits++
	}
	return bits
}

// shardOf returns the shard index of hash h: its top shardBits bits. For
// shardBits == 0 the shift count is 64, which in Go yields 0 — every key
// lands in the single shard.
func shardOf(h uint64, shardBits uint) uint64 { return h >> (64 - shardBits) }

// shardPartition reorders hs so keys of the same shard are adjacent; shard s
// occupies sorted[bounds[s]:bounds[s+1]].
func shardPartition(hs []uint64, shardBits uint) (sorted []uint64, bounds []int) {
	n := 1 << shardBits
	counts := make([]int, n)
	for _, h := range hs {
		counts[shardOf(h, shardBits)]++
	}
	bounds = make([]int, n+1)
	sum := 0
	for i, c := range counts {
		bounds[i] = sum
		sum += c
	}
	bounds[n] = sum
	sorted = make([]uint64, len(hs))
	next := counts // reuse: next[i] becomes the write cursor for shard i
	copy(next, bounds[:n])
	for _, h := range hs {
		s := shardOf(h, shardBits)
		sorted[next[s]] = h
		next[s]++
	}
	return sorted, bounds
}

// shardPartitionIdx is shardPartition carrying each key's original position,
// for order-sensitive scatter (ContainsBatch). Indices are int32; callers
// segment larger batches (maxIdxSegment) first.
func shardPartitionIdx(hs []uint64, shardBits uint) (sorted []uint64, idx []int32, bounds []int) {
	n := 1 << shardBits
	counts := make([]int, n)
	for _, h := range hs {
		counts[shardOf(h, shardBits)]++
	}
	bounds = make([]int, n+1)
	sum := 0
	for i, c := range counts {
		bounds[i] = sum
		sum += c
	}
	bounds[n] = sum
	sorted = make([]uint64, len(hs))
	idx = make([]int32, len(hs))
	next := counts
	copy(next, bounds[:n])
	for i, h := range hs {
		s := shardOf(h, shardBits)
		sorted[next[s]] = h
		idx[next[s]] = int32(i)
		next[s]++
	}
	return sorted, idx, bounds
}

// shardBatchWorkers returns the worker-pool size for a sharded batch of n
// keys over nshards shards: bounded by GOMAXPROCS, the shard count (workers
// own whole shards), and the ~4k-keys-per-worker floor shared with the
// non-sharded parallel batches.
func shardBatchWorkers(n, nshards int) int {
	w := runtime.GOMAXPROCS(0)
	if w > nshards {
		w = nshards
	}
	if byLoad := n / minParallelBatch; w > byLoad {
		w = byLoad
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sharded8 is a sharded thread-safe filter with 8-bit fingerprints: an array
// of CFilter8 shards selected by the top hash bits. All single-key
// operations delegate to one shard; batch operations partition by shard and
// run shard-disjoint workers.
type Sharded8 struct {
	shards    []*CFilter8
	shardBits uint
	ring      *telemetry.Ring
}

// NewSharded8 creates a sharded filter with at least nslots total slots
// spread over nshards shards (rounded up to a power of two, clamped to
// [1, 256]). Each shard is an independent CFilter8 sized for its share.
func NewSharded8(nslots uint64, nshards int, opts Options) *Sharded8 {
	bits := shardBitsFor(nshards)
	n := uint64(1) << bits
	per := (nslots + n - 1) / n
	f := &Sharded8{shards: make([]*CFilter8, n), shardBits: bits}
	for i := range f.shards {
		f.shards[i] = NewCFilter8(per, opts)
	}
	return f
}

// NumShards returns the shard count (a power of two).
func (f *Sharded8) NumShards() int { return len(f.shards) }

// ShardCounts returns each shard's current item count, for balance
// diagnostics.
func (f *Sharded8) ShardCounts() []uint64 {
	out := make([]uint64, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Count()
	}
	return out
}

// ShardSnapshots returns one full structural snapshot per shard, in shard
// order. fprFullLoad is the geometry's analytic full-load FPR (a constant
// shared by every shard). Cost is O(total blocks), same as one aggregate
// snapshot.
func (f *Sharded8) ShardSnapshots(fprFullLoad float64) []stats.Snapshot {
	out := make([]stats.Snapshot, len(f.shards))
	for i, s := range f.shards {
		out[i] = stats.BuildSnapshot(s.Count(), s.Capacity(), s.SizeBytes(), fprFullLoad,
			s.BlockOccupancies(), minifilter.B8Slots, s.Stats())
	}
	return out
}

func (f *Sharded8) shard(h uint64) *CFilter8 { return f.shards[shardOf(h, f.shardBits)] }

// Insert adds the pre-hashed key h to its shard. Safe for concurrent use.
func (f *Sharded8) Insert(h uint64) bool { return f.shard(h).Insert(h) }

// Contains reports whether h may be in the filter; lock-free on the common
// path. Safe for concurrent use.
func (f *Sharded8) Contains(h uint64) bool { return f.shard(h).Contains(h) }

// Remove deletes one previously inserted instance of h. Safe for concurrent
// use.
func (f *Sharded8) Remove(h uint64) bool { return f.shard(h).Remove(h) }

// Count returns the number of fingerprints stored across all shards.
func (f *Sharded8) Count() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.Count()
	}
	return n
}

// Capacity returns the total slots across all shards.
func (f *Sharded8) Capacity() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.Capacity()
	}
	return n
}

// LoadFactor returns Count divided by Capacity.
func (f *Sharded8) LoadFactor() float64 { return float64(f.Count()) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint summed over shards.
func (f *Sharded8) SizeBytes() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.SizeBytes()
	}
	return n
}

// Stats returns operation counters summed across shards. Each shard's
// counters are private (no cross-shard contention); the sum inherits the
// per-counter exactness and monotonicity of the striped carriers.
func (f *Sharded8) Stats() stats.OpCounts {
	var total stats.OpCounts
	for _, s := range f.shards {
		total = total.Add(s.Stats())
	}
	return total
}

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *Sharded8) SlotsPerBlock() uint { return minifilter.B8Slots }

// BlockOccupancies returns the concatenated per-block occupancies of every
// shard, in shard order — all shards share one geometry, so the combined
// vector feeds the same histogram a single filter's would.
func (f *Sharded8) BlockOccupancies() []uint {
	var out []uint
	for _, s := range f.shards {
		out = append(out, s.BlockOccupancies()...)
	}
	return out
}

// InsertBatch inserts the keys of hs in parallel with shard-disjoint
// workers, returning the number successfully inserted. Safe for concurrent
// use alongside any other operations.
func (f *Sharded8) InsertBatch(hs []uint64) int {
	return shardedCount8(f, hs, (*CFilter8).InsertBatch, (*CFilter8).Insert)
}

// RemoveBatch removes one instance of each key of hs in parallel with
// shard-disjoint workers, returning the number found and removed.
func (f *Sharded8) RemoveBatch(hs []uint64) int {
	return shardedCount8(f, hs, (*CFilter8).RemoveBatch, (*CFilter8).Remove)
}

// shardedCount8 partitions hs by shard and applies the batch (whole
// partition) or single-key form of an operation with shard-disjoint
// workers; see the package comment for the contention argument.
func shardedCount8(f *Sharded8, hs []uint64, batch func(*CFilter8, []uint64) int, op func(*CFilter8, uint64) bool) int {
	if len(f.shards) == 1 {
		return batch(f.shards[0], hs)
	}
	sorted, bounds := shardPartition(hs, f.shardBits)
	w := shardBatchWorkers(len(hs), len(f.shards))
	if w == 1 {
		// One worker: keep the shard partition for locality but let each
		// shard's own batch path handle its segment (it may still fan out
		// across blocks if GOMAXPROCS allows).
		total := 0
		for s := range f.shards {
			if seg := sorted[bounds[s]:bounds[s+1]]; len(seg) > 0 {
				total += batch(f.shards[s], seg)
			}
		}
		return total
	}
	var cursor, total, active atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, fed := 0, false
			for {
				s := int(cursor.Add(1)) - 1
				if s >= len(f.shards) {
					break
				}
				seg := sorted[bounds[s]:bounds[s+1]]
				if len(seg) == 0 {
					continue
				}
				fed = true
				shard := f.shards[s]
				shard.st.Batch(len(seg))
				if len(seg) >= minBatchPartition {
					segSorted, _ := radixPartition(seg, shard.mask, blockShift8)
					seg = segSorted
				}
				for _, h := range seg {
					if op(shard, h) {
						n++
					}
				}
			}
			if fed {
				active.Add(1)
			}
			total.Add(int64(n))
		}()
	}
	wg.Wait()
	stallEvent(f.ring, int(active.Load()), w, len(hs))
	return int(total.Load())
}

// ContainsBatch reports membership for every key of hs in input order;
// lookups run lock-free with shard-disjoint workers. The result reuses dst
// if it has sufficient capacity (dst may be nil).
func (f *Sharded8) ContainsBatch(hs []uint64, dst []bool) []bool {
	if len(f.shards) == 1 {
		return f.shards[0].ContainsBatch(hs, dst)
	}
	out := resizeBools(dst, len(hs))
	shardedContains(len(f.shards), f.shardBits, hs, out, func(s int, seg []uint64, segOut []bool, idx []int32, lo, hi int) {
		shard := f.shards[s]
		shard.st.Batch(hi - lo)
		for j := lo; j < hi; j++ {
			segOut[idx[j]] = shard.Contains(seg[j])
		}
	})
	return out
}

// shardedContains partitions hs by shard (segmented so int32 scatter indices
// always fit) and invokes scan for each shard's slice, either inline or from
// shard-disjoint workers. scan receives the partition-sorted keys, the
// original-position scatter array, and the shard's [lo, hi) range in them.
func shardedContains(nshards int, shardBits uint, hs []uint64, out []bool, scan func(s int, sorted []uint64, segOut []bool, idx []int32, lo, hi int)) {
	for off := 0; off < len(hs); off += maxIdxSegment {
		end := min(off+maxIdxSegment, len(hs))
		seg, segOut := hs[off:end], out[off:end]
		sorted, idx, bounds := shardPartitionIdx(seg, shardBits)
		w := shardBatchWorkers(len(seg), nshards)
		if w == 1 {
			for s := 0; s < nshards; s++ {
				if bounds[s] < bounds[s+1] {
					scan(s, sorted, segOut, idx, bounds[s], bounds[s+1])
				}
			}
			continue
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(cursor.Add(1)) - 1
					if s >= nshards {
						break
					}
					if bounds[s] < bounds[s+1] {
						scan(s, sorted, segOut, idx, bounds[s], bounds[s+1])
					}
				}
			}()
		}
		wg.Wait()
	}
}

// Sharded16 is the sharded thread-safe filter with 16-bit fingerprints; see
// Sharded8.
type Sharded16 struct {
	shards    []*CFilter16
	shardBits uint
	ring      *telemetry.Ring
}

// NewSharded16 creates a sharded 16-bit-fingerprint filter; see NewSharded8.
func NewSharded16(nslots uint64, nshards int, opts Options) *Sharded16 {
	bits := shardBitsFor(nshards)
	n := uint64(1) << bits
	per := (nslots + n - 1) / n
	f := &Sharded16{shards: make([]*CFilter16, n), shardBits: bits}
	for i := range f.shards {
		f.shards[i] = NewCFilter16(per, opts)
	}
	return f
}

// NumShards returns the shard count (a power of two).
func (f *Sharded16) NumShards() int { return len(f.shards) }

// ShardCounts returns each shard's current item count.
func (f *Sharded16) ShardCounts() []uint64 {
	out := make([]uint64, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Count()
	}
	return out
}

// ShardSnapshots returns one full structural snapshot per shard; see
// Sharded8.ShardSnapshots.
func (f *Sharded16) ShardSnapshots(fprFullLoad float64) []stats.Snapshot {
	out := make([]stats.Snapshot, len(f.shards))
	for i, s := range f.shards {
		out[i] = stats.BuildSnapshot(s.Count(), s.Capacity(), s.SizeBytes(), fprFullLoad,
			s.BlockOccupancies(), minifilter.B16Slots, s.Stats())
	}
	return out
}

func (f *Sharded16) shard(h uint64) *CFilter16 { return f.shards[shardOf(h, f.shardBits)] }

// Insert adds the pre-hashed key h to its shard. Safe for concurrent use.
func (f *Sharded16) Insert(h uint64) bool { return f.shard(h).Insert(h) }

// Contains reports whether h may be in the filter; lock-free on the common
// path. Safe for concurrent use.
func (f *Sharded16) Contains(h uint64) bool { return f.shard(h).Contains(h) }

// Remove deletes one previously inserted instance of h. Safe for concurrent
// use.
func (f *Sharded16) Remove(h uint64) bool { return f.shard(h).Remove(h) }

// Count returns the number of fingerprints stored across all shards.
func (f *Sharded16) Count() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.Count()
	}
	return n
}

// Capacity returns the total slots across all shards.
func (f *Sharded16) Capacity() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.Capacity()
	}
	return n
}

// LoadFactor returns Count divided by Capacity.
func (f *Sharded16) LoadFactor() float64 { return float64(f.Count()) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint summed over shards.
func (f *Sharded16) SizeBytes() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.SizeBytes()
	}
	return n
}

// Stats returns operation counters summed across shards; see Sharded8.Stats.
func (f *Sharded16) Stats() stats.OpCounts {
	var total stats.OpCounts
	for _, s := range f.shards {
		total = total.Add(s.Stats())
	}
	return total
}

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *Sharded16) SlotsPerBlock() uint { return minifilter.B16Slots }

// BlockOccupancies returns the concatenated per-block occupancies of every
// shard, in shard order.
func (f *Sharded16) BlockOccupancies() []uint {
	var out []uint
	for _, s := range f.shards {
		out = append(out, s.BlockOccupancies()...)
	}
	return out
}

// InsertBatch inserts the keys of hs in parallel with shard-disjoint
// workers; see Sharded8.InsertBatch.
func (f *Sharded16) InsertBatch(hs []uint64) int {
	return shardedCount16(f, hs, (*CFilter16).InsertBatch, (*CFilter16).Insert)
}

// RemoveBatch removes one instance of each key of hs in parallel with
// shard-disjoint workers; see Sharded8.RemoveBatch.
func (f *Sharded16) RemoveBatch(hs []uint64) int {
	return shardedCount16(f, hs, (*CFilter16).RemoveBatch, (*CFilter16).Remove)
}

func shardedCount16(f *Sharded16, hs []uint64, batch func(*CFilter16, []uint64) int, op func(*CFilter16, uint64) bool) int {
	if len(f.shards) == 1 {
		return batch(f.shards[0], hs)
	}
	sorted, bounds := shardPartition(hs, f.shardBits)
	w := shardBatchWorkers(len(hs), len(f.shards))
	if w == 1 {
		total := 0
		for s := range f.shards {
			if seg := sorted[bounds[s]:bounds[s+1]]; len(seg) > 0 {
				total += batch(f.shards[s], seg)
			}
		}
		return total
	}
	var cursor, total, active atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, fed := 0, false
			for {
				s := int(cursor.Add(1)) - 1
				if s >= len(f.shards) {
					break
				}
				seg := sorted[bounds[s]:bounds[s+1]]
				if len(seg) == 0 {
					continue
				}
				fed = true
				shard := f.shards[s]
				shard.st.Batch(len(seg))
				if len(seg) >= minBatchPartition {
					segSorted, _ := radixPartition(seg, shard.mask, blockShift16)
					seg = segSorted
				}
				for _, h := range seg {
					if op(shard, h) {
						n++
					}
				}
			}
			if fed {
				active.Add(1)
			}
			total.Add(int64(n))
		}()
	}
	wg.Wait()
	stallEvent(f.ring, int(active.Load()), w, len(hs))
	return int(total.Load())
}

// ContainsBatch reports membership for every key of hs in input order; see
// Sharded8.ContainsBatch.
func (f *Sharded16) ContainsBatch(hs []uint64, dst []bool) []bool {
	if len(f.shards) == 1 {
		return f.shards[0].ContainsBatch(hs, dst)
	}
	out := resizeBools(dst, len(hs))
	shardedContains(len(f.shards), f.shardBits, hs, out, func(s int, seg []uint64, segOut []bool, idx []int32, lo, hi int) {
		shard := f.shards[s]
		shard.st.Batch(hi - lo)
		for j := lo; j < hi; j++ {
			segOut[idx[j]] = shard.Contains(seg[j])
		}
	})
	return out
}
