package core

import (
	"math/rand"
	"testing"

	"vqf/internal/hashing"
	"vqf/internal/minifilter"
)

// TestCanonLow16Exact checks the canonical low-16 reconstruction against
// every bucket of both geometries: the reconstructed value must range-reduce
// back to its bucket, and must be a valid 16-bit value.
func TestCanonLow16Exact(t *testing.T) {
	for bucket := uint(0); bucket < minifilter.B8Buckets; bucket++ {
		x := canonLow16(bucket, minifilter.B8Buckets)
		if x >= 1<<16 {
			t.Fatalf("bucket %d: low16 %#x overflows 16 bits", bucket, x)
		}
		if got := uint(uint32(x) * minifilter.B8Buckets >> 16); got != bucket {
			t.Fatalf("bucket %d: low16 %#x reduces to %d", bucket, x, got)
		}
	}
	for bucket := uint(0); bucket < minifilter.B16Buckets; bucket++ {
		x := canonLow16(bucket, minifilter.B16Buckets)
		if x >= 1<<16 {
			t.Fatalf("bucket %d: low16 %#x overflows 16 bits", bucket, x)
		}
		if got := uint(uint32(x) * minifilter.B16Buckets >> 16); got != bucket {
			t.Fatalf("bucket %d: low16 %#x reduces to %d", bucket, x, got)
		}
	}
}

// TestCanonicalHashRoundTrip checks that splitting a canonical hash yields
// back exactly the (block, bucket, fingerprint) it was built from, for both
// geometries and a spread of block masks.
func TestCanonicalHashRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, maskBits := range []uint{1, 4, 10, 20} {
		mask := uint64(1)<<maskBits - 1
		for i := 0; i < 2000; i++ {
			b := rng.Uint64() & mask
			bucket := uint(rng.Intn(minifilter.B8Buckets))
			fp := byte(rng.Intn(256))
			h := CanonicalHash8(b, bucket, fp)
			gb, gbucket, gfp, _ := split8(h, mask)
			if gb != b || gbucket != bucket || gfp != fp {
				t.Fatalf("split8(canon8(%d,%d,%#x)) = (%d,%d,%#x)", b, bucket, fp, gb, gbucket, gfp)
			}

			bucket16 := uint(rng.Intn(minifilter.B16Buckets))
			fp16 := uint16(rng.Uint32())
			h16 := CanonicalHash16(b, bucket16, fp16)
			gb, gbucket16, gfp16, _ := split16(h16, mask)
			if gb != b || gbucket16 != bucket16 || gfp16 != fp16 {
				t.Fatalf("split16(canon16(%d,%d,%#x)) = (%d,%d,%#x)", b, bucket16, fp16, gb, gbucket16, gfp16)
			}
		}
	}
}

// TestCanonicalHashPairCommutes checks the cross-size soundness claim: for a
// hash h with candidate pair {p1, p2} under a large mask, the canonical hash
// rebuilt from EITHER candidate block has, under any smaller mask, a
// candidate pair equal to {p1&mask', (p1^tagmix)&mask'} — the original
// hash's pair in the smaller filter.
func TestCanonicalHashPairCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bigMask := uint64(1)<<16 - 1
	for _, smallBits := range []uint{1, 5, 9, 16} {
		small := uint64(1)<<smallBits - 1
		for i := 0; i < 5000; i++ {
			h := rng.Uint64()
			b1, bucket, fp, tag := split8(h, bigMask)
			b2 := hashing.AltIndex(b1, tag, bigMask)
			wantA, wantB := b1&small, hashing.AltIndex(b1&small, tag, small)
			for _, src := range []uint64{b1, b2} {
				hh := CanonicalHash8(src, bucket, fp)
				p1, pbucket, pfp, ptag := split8(hh, small)
				if pbucket != bucket || pfp != fp || ptag != tag {
					t.Fatalf("canonical hash changed (bucket,fp)")
				}
				p2 := hashing.AltIndex(p1, ptag, small)
				if !(p1 == wantA && p2 == wantB) && !(p1 == wantB && p2 == wantA) {
					t.Fatalf("mask %#x src %d: pair {%d,%d}, want {%d,%d}", small, src, p1, p2, wantA, wantB)
				}
			}
		}
	}
}

// TestIterateRebuild fills filters to high load, iterates them, reinserts
// every canonical hash into a fresh filter of the SAME size and into one a
// quarter the size, and checks Contains is preserved for every original key
// plus exact count preservation.
func TestIterateRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 2500
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}

	t.Run("filter8", func(t *testing.T) {
		src := NewFilter8(8192, Options{})
		for _, h := range keys {
			if !src.Insert(h) {
				t.Fatal("source insert failed")
			}
		}
		for _, factor := range []uint64{1, 4} {
			dst := NewFilter8(8192/factor, Options{})
			src.IterateHashes(func(h uint64) bool {
				if !dst.Insert(h) {
					t.Fatalf("rebuild insert failed at count %d", dst.Count())
				}
				return true
			})
			if dst.Count() != src.Count() {
				t.Fatalf("rebuild count %d, want %d", dst.Count(), src.Count())
			}
			for _, h := range keys {
				if !dst.Contains(h) {
					t.Fatalf("factor %d: rebuilt filter lost key %#x", factor, h)
				}
			}
		}
	})

	t.Run("cfilter16", func(t *testing.T) {
		src := NewCFilter16(8192, Options{})
		for _, h := range keys {
			if !src.Insert(h) {
				t.Fatal("source insert failed")
			}
		}
		dst := NewFilter16(2048, Options{})
		src.IterateHashes(func(h uint64) bool {
			if !dst.Insert(h) {
				t.Fatalf("rebuild insert failed at count %d", dst.Count())
			}
			return true
		})
		if dst.Count() != src.Count() {
			t.Fatalf("rebuild count %d, want %d", dst.Count(), src.Count())
		}
		for _, h := range keys {
			if !dst.Contains(h) {
				t.Fatalf("rebuilt filter lost key %#x", h)
			}
		}
	})
}

// TestCountAtBlock checks instance counting against duplicate inserts.
func TestCountAtBlock(t *testing.T) {
	f := NewFilter8(4096, Options{NoShortcut: true})
	h := uint64(0x1234_5678_9abc_def0)
	for i := 0; i < 3; i++ {
		if !f.Insert(h) {
			t.Fatal("insert failed")
		}
	}
	p1, p2 := f.CandidateBlocks(h)
	got := f.CountAtBlock(p1, h)
	if p2 != p1 {
		got += f.CountAtBlock(p2, h)
	}
	if got != 3 {
		t.Fatalf("counted %d instances across the pair, want 3", got)
	}

	cf := NewCFilter16(4096, Options{})
	for i := 0; i < 2; i++ {
		if !cf.Insert(h) {
			t.Fatal("insert failed")
		}
	}
	q1, q2 := cf.CandidateBlocks(h)
	got = cf.CountAtBlock(q1, h)
	if q2 != q1 {
		got += cf.CountAtBlock(q2, h)
	}
	if got != 2 {
		t.Fatalf("counted %d instances across the pair, want 2", got)
	}
}
