package core

import (
	"testing"
	"testing/quick"
)

// Property: any key inserted into a non-full filter is immediately visible,
// and CountOf is at least 1.
func TestPropertyInsertThenContains(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	prop := func(h uint64) bool {
		if f.LoadFactor() > 0.90 {
			f = NewFilter8(1<<12, Options{})
		}
		if !f.Insert(h) {
			return false
		}
		return f.Contains(h) && f.CountOf(h) >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: insert followed by remove returns the filter to a state where
// count is unchanged, and the key is gone unless a colliding twin remains.
func TestPropertyInsertRemoveCount(t *testing.T) {
	f := NewFilter8(1<<12, Options{})
	prop := func(h uint64) bool {
		if f.LoadFactor() > 0.90 {
			f = NewFilter8(1<<12, Options{})
		}
		before := f.Count()
		pre := f.CountOf(h)
		if !f.Insert(h) {
			return false
		}
		if !f.Remove(h) {
			return false
		}
		return f.Count() == before && f.CountOf(h) == pre
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the xor-linked secondary block always round-trips, and the
// independent-hash secondary is deterministic.
func TestPropertySecondaryBlock(t *testing.T) {
	const mask = 1<<16 - 1
	prop := func(h uint64) bool {
		b1, _, _, tag := split8(h, mask)
		b2 := secondary(h, b1, tag, mask, false)
		back := secondary(h, b2, tag, mask, false)
		indep1 := secondary(h, b1, tag, mask, true)
		indep2 := secondary(h, b1, tag, mask, true)
		return back == b1 && b2 <= mask && indep1 == indep2 && indep1 <= mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: both filter geometries agree that a key inserted into one filter
// instance is found by a second instance only at false-positive rates
// (instances share no state).
func TestPropertyInstancesIndependent(t *testing.T) {
	a := NewFilter8(1<<12, Options{})
	b := NewFilter8(1<<12, Options{})
	hits := 0
	const n = 3000
	for i := 0; i < n; i++ {
		h := uint64(i)*0x9e3779b97f4a7c15 + 12345
		if !a.Insert(h) {
			t.Fatal("insert failed")
		}
		if b.Contains(h) {
			hits++
		}
	}
	if hits > 0 {
		t.Fatalf("empty filter reported %d/%d keys present", hits, n)
	}
}
