package core

import (
	"sync/atomic"

	"vqf/internal/minifilter"
)

// CFilter8 is the thread-safe vector quotient filter with 8-bit fingerprints
// (paper §6.3). Each block's top metadata bit is a spin lock; an operation
// locks at most two blocks, always in increasing index order, so the filter
// scales with cores as long as threads mostly touch distinct blocks.
type CFilter8 struct {
	blocks []minifilter.Block8
	mask   uint64
	count  atomic.Uint64
	opts   Options
	thresh uint
}

// NewCFilter8 creates a thread-safe filter with at least nslots slots; see
// NewFilter8 for sizing semantics. IndependentHash and Generic options are
// not supported on the concurrent variants and are ignored.
func NewCFilter8(nslots uint64, opts Options) *CFilter8 {
	k := blocksFor(nslots, minifilter.B8Slots)
	f := &CFilter8{
		blocks: make([]minifilter.Block8, k),
		mask:   k - 1,
		opts:   opts,
		thresh: opts.threshold(minifilter.B8Slots, defThreshold8),
	}
	for i := range f.blocks {
		f.blocks[i].Reset()
		// Locked-mode convention: the stored top bit is purely the lock flag.
		// A fresh block is empty, so the natural top bit is already 0.
	}
	return f
}

// Capacity returns the total number of fingerprint slots.
func (f *CFilter8) Capacity() uint64 { return uint64(len(f.blocks)) * minifilter.B8Slots }

// Count returns the number of fingerprints currently stored.
func (f *CFilter8) Count() uint64 { return f.count.Load() }

// LoadFactor returns Count divided by Capacity.
func (f *CFilter8) LoadFactor() float64 { return float64(f.Count()) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array.
func (f *CFilter8) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Insert adds the pre-hashed key h, returning false if both candidate blocks
// are full. Safe for concurrent use.
func (f *CFilter8) Insert(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	occ1 := blk1.OccupancyLocked()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.InsertLocked(bucket, fp)
		blk1.Unlock()
		f.count.Add(1)
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		ok := blk1.InsertLocked(bucket, fp)
		blk1.Unlock()
		if ok {
			f.count.Add(1)
		}
		return ok
	}
	blk2 := &f.blocks[b2]
	// Lock-ordering protocol: if the secondary block has the lower index,
	// release the primary and re-acquire in increasing order (§6.3).
	if b2 < b1 {
		blk1.Unlock()
		blk2.Lock()
		blk1.Lock()
		occ1 = blk1.OccupancyLocked()
	} else {
		blk2.Lock()
	}
	occ2 := blk2.OccupancyLocked()
	tgt, other := blk1, blk2
	if occ2 < occ1 {
		tgt, other = blk2, blk1
	}
	other.Unlock()
	ok := tgt.InsertLocked(bucket, fp)
	tgt.Unlock()
	if ok {
		f.count.Add(1)
	}
	return ok
}

// Contains reports whether the pre-hashed key h may be in the filter. Safe
// for concurrent use; each block is locked only for the duration of its
// fingerprint scan.
func (f *CFilter8) Contains(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	found := blk1.ContainsLocked(bucket, fp)
	blk1.Unlock()
	if found {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	found = blk2.ContainsLocked(bucket, fp)
	blk2.Unlock()
	return found
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
// Safe for concurrent use.
func (f *CFilter8) Remove(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	ok := blk1.RemoveLocked(bucket, fp)
	blk1.Unlock()
	if ok {
		f.count.Add(^uint64(0))
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	ok = blk2.RemoveLocked(bucket, fp)
	blk2.Unlock()
	if ok {
		f.count.Add(^uint64(0))
	}
	return ok
}

// CFilter16 is the thread-safe vector quotient filter with 16-bit
// fingerprints; see CFilter8.
type CFilter16 struct {
	blocks []minifilter.Block16
	mask   uint64
	count  atomic.Uint64
	opts   Options
	thresh uint
}

// NewCFilter16 creates a thread-safe 16-bit-fingerprint filter.
func NewCFilter16(nslots uint64, opts Options) *CFilter16 {
	k := blocksFor(nslots, minifilter.B16Slots)
	f := &CFilter16{
		blocks: make([]minifilter.Block16, k),
		mask:   k - 1,
		opts:   opts,
		thresh: opts.threshold(minifilter.B16Slots, defThreshold16),
	}
	for i := range f.blocks {
		f.blocks[i].Reset()
	}
	return f
}

// Capacity returns the total number of fingerprint slots.
func (f *CFilter16) Capacity() uint64 { return uint64(len(f.blocks)) * minifilter.B16Slots }

// Count returns the number of fingerprints currently stored.
func (f *CFilter16) Count() uint64 { return f.count.Load() }

// LoadFactor returns Count divided by Capacity.
func (f *CFilter16) LoadFactor() float64 { return float64(f.Count()) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array.
func (f *CFilter16) SizeBytes() uint64 { return uint64(len(f.blocks)) * 64 }

// Insert adds the pre-hashed key h. Safe for concurrent use.
func (f *CFilter16) Insert(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	occ1 := blk1.OccupancyLocked()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.InsertLocked(bucket, fp)
		blk1.Unlock()
		f.count.Add(1)
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		ok := blk1.InsertLocked(bucket, fp)
		blk1.Unlock()
		if ok {
			f.count.Add(1)
		}
		return ok
	}
	blk2 := &f.blocks[b2]
	if b2 < b1 {
		blk1.Unlock()
		blk2.Lock()
		blk1.Lock()
		occ1 = blk1.OccupancyLocked()
	} else {
		blk2.Lock()
	}
	occ2 := blk2.OccupancyLocked()
	tgt, other := blk1, blk2
	if occ2 < occ1 {
		tgt, other = blk2, blk1
	}
	other.Unlock()
	ok := tgt.InsertLocked(bucket, fp)
	tgt.Unlock()
	if ok {
		f.count.Add(1)
	}
	return ok
}

// Contains reports whether the pre-hashed key h may be in the filter. Safe
// for concurrent use.
func (f *CFilter16) Contains(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	found := blk1.ContainsLocked(bucket, fp)
	blk1.Unlock()
	if found {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	found = blk2.ContainsLocked(bucket, fp)
	blk2.Unlock()
	return found
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
// Safe for concurrent use.
func (f *CFilter16) Remove(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	ok := blk1.RemoveLocked(bucket, fp)
	blk1.Unlock()
	if ok {
		f.count.Add(^uint64(0))
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	ok = blk2.RemoveLocked(bucket, fp)
	blk2.Unlock()
	if ok {
		f.count.Add(^uint64(0))
	}
	return ok
}
