package core

import (
	"sync/atomic"

	"vqf/internal/minifilter"
	"vqf/internal/stats"
	"vqf/internal/swar"
	"vqf/internal/telemetry"
)

// Concurrent filter variants (paper §6.3, extended). Writers take per-block
// spin locks (the top metadata bit of each block), at most two per
// operation, always in increasing index order. Queries are lock-free on the
// common path: they use the seqlock-style optimistic snapshot protocol of
// internal/minifilter/optimistic.go, validated against a striped array of
// version counters that writers bump on every mutation (UnlockBump). A
// lookup therefore costs zero atomic read-modify-writes unless it collides
// with an in-flight writer on the same block, in which case it retries and
// eventually falls back to the lock.

// seqStripes is the number of seqlock version counters a concurrent filter
// keeps. Blocks share stripes by low index bits; a shared stripe can cause a
// spurious reader retry when an unrelated block on the same stripe is
// written, but never a missed conflict. The cap keeps the side array at
// 32 KiB regardless of filter size.
const seqStripes = 1 << 12

func seqStripesFor(nblocks uint64) uint64 {
	if nblocks < seqStripes {
		return nblocks // always a power of two, like the block count
	}
	return seqStripes
}

// CFilter8 is the thread-safe vector quotient filter with 8-bit
// fingerprints. Inserts and removes lock at most two blocks; Contains is
// lock-free (optimistic) on the common path.
type CFilter8 struct {
	blocks  []minifilter.Block8
	seqs    []atomic.Uint64
	seqMask uint64
	mask    uint64
	count   atomic.Uint64
	opts    Options
	thresh  uint
	st      stats.Striped
	ring    *telemetry.Ring
}

// NewCFilter8 creates a thread-safe filter with at least nslots slots; see
// NewFilter8 for sizing semantics. IndependentHash and Generic options are
// not supported on the concurrent variants and are ignored.
func NewCFilter8(nslots uint64, opts Options) *CFilter8 {
	k := blocksFor(nslots, minifilter.B8Slots)
	f := &CFilter8{
		blocks: make([]minifilter.Block8, k),
		seqs:   make([]atomic.Uint64, seqStripesFor(k)),
		mask:   k - 1,
		opts:   opts,
		thresh: opts.threshold(minifilter.B8Slots, defThreshold8),
	}
	f.seqMask = uint64(len(f.seqs)) - 1
	for i := range f.blocks {
		f.blocks[i].Reset()
		// Locked-mode convention: the stored top bit is purely the lock flag.
		// A fresh block is empty, so the natural top bit is already 0.
	}
	return f
}

// seq returns the version stripe for block index b.
func (f *CFilter8) seq(b uint64) *atomic.Uint64 { return &f.seqs[b&f.seqMask] }

// Capacity returns the total number of fingerprint slots.
func (f *CFilter8) Capacity() uint64 { return uint64(len(f.blocks)) * minifilter.B8Slots }

// Count returns the number of fingerprints currently stored.
func (f *CFilter8) Count() uint64 { return f.count.Load() }

// LoadFactor returns Count divided by Capacity.
func (f *CFilter8) LoadFactor() float64 { return float64(f.Count()) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array and the seqlock
// version stripes.
func (f *CFilter8) SizeBytes() uint64 {
	return uint64(len(f.blocks))*64 + uint64(len(f.seqs))*8
}

// Insert adds the pre-hashed key h, returning false if both candidate blocks
// are full. Safe for concurrent use. The shortcut occupancy probe is
// optimistic, so the common low-occupancy insert acquires exactly one lock.
func (f *CFilter8) Insert(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	blk1 := &f.blocks[b1]
	seq1 := f.seq(b1)
	if !f.opts.NoShortcut {
		occ, retries, ok := blk1.OccupancyOptimisticCounted(seq1)
		f.st.Optimistic(b1, retries, !ok)
		if !ok {
			f.fallbackEvent(b1, retries)
		}
		if ok && occ < f.thresh {
			blk1.Lock()
			// Re-check under the lock: a racing writer may have filled the
			// block past the threshold since the probe.
			if blk1.OccupancyLocked() < f.thresh {
				blk1.InsertLocked(bucket, fp)
				blk1.UnlockBump(seq1)
				f.count.Add(1)
				f.st.ShortcutInsert(b1)
				return true
			}
			blk1.Unlock()
		}
	}
	blk1.Lock()
	occ1 := blk1.OccupancyLocked()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.InsertLocked(bucket, fp)
		blk1.UnlockBump(seq1)
		f.count.Add(1)
		f.st.ShortcutInsert(b1)
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		ok := blk1.InsertLocked(bucket, fp)
		if ok {
			blk1.UnlockBump(seq1)
			f.count.Add(1)
			f.st.Insert(b1)
		} else {
			blk1.Unlock()
			f.st.InsertFailure(b1)
		}
		return ok
	}
	blk2 := &f.blocks[b2]
	// Lock-ordering protocol: if the secondary block has the lower index,
	// release the primary and re-acquire in increasing order (§6.3).
	if b2 < b1 {
		blk1.Unlock()
		blk2.Lock()
		blk1.Lock()
		occ1 = blk1.OccupancyLocked()
	} else {
		blk2.Lock()
	}
	occ2 := blk2.OccupancyLocked()
	tgt, other, tgtSeq := blk1, blk2, seq1
	if occ2 < occ1 {
		tgt, other, tgtSeq = blk2, blk1, f.seq(b2)
	}
	other.Unlock()
	ok := tgt.InsertLocked(bucket, fp)
	if ok {
		tgt.UnlockBump(tgtSeq)
		f.count.Add(1)
		f.st.Insert(b1)
	} else {
		tgt.Unlock()
		f.st.InsertFailure(b1)
	}
	return ok
}

// Contains reports whether the pre-hashed key h may be in the filter. Safe
// for concurrent use and lock-free on the common path: each candidate block
// is snapshotted optimistically and scanned without acquiring its lock.
func (f *CFilter8) Contains(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	f.st.Lookup(b1)
	bc := swar.BroadcastByte(fp)
	found, retries, fellBack := f.blocks[b1].ContainsOptimisticCountedB(f.seq(b1), bucket, bc)
	f.st.Optimistic(b1, retries, fellBack)
	if fellBack {
		f.fallbackEvent(b1, retries)
	}
	if found {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	found, retries, fellBack = f.blocks[b2].ContainsOptimisticCountedB(f.seq(b2), bucket, bc)
	f.st.Optimistic(b1, retries, fellBack)
	if fellBack {
		f.fallbackEvent(b2, retries)
	}
	return found
}

// ContainsLocked is the pre-optimistic lookup path: it acquires each
// candidate block's spin lock for the duration of its fingerprint scan. It
// is retained as the baseline the reader-scaling benchmark compares the
// optimistic path against (cmd/vqfbench concurrent); application code
// should use Contains.
func (f *CFilter8) ContainsLocked(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	f.st.Lookup(b1)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	found := blk1.ContainsLocked(bucket, fp)
	blk1.Unlock()
	if found {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	found = blk2.ContainsLocked(bucket, fp)
	blk2.Unlock()
	return found
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
// Safe for concurrent use.
func (f *CFilter8) Remove(h uint64) bool {
	b1, bucket, fp, tag := split8(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	ok := blk1.RemoveLocked(bucket, fp)
	if ok {
		blk1.UnlockBump(f.seq(b1))
		f.count.Add(^uint64(0))
		f.st.Remove(b1)
		return true
	}
	blk1.Unlock()
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		f.st.RemoveMiss(b1)
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	ok = blk2.RemoveLocked(bucket, fp)
	if ok {
		blk2.UnlockBump(f.seq(b2))
		f.count.Add(^uint64(0))
		f.st.Remove(b1)
	} else {
		blk2.Unlock()
		f.st.RemoveMiss(b1)
	}
	return ok
}

// Stats returns the filter's operation counters. Safe for concurrent use:
// stripes are summed with atomic loads and writers are never blocked. Each
// counter is individually exact and monotone across calls, but a snapshot
// taken while operations are in flight is not a consistent cut (see
// internal/stats).
func (f *CFilter8) Stats() stats.OpCounts { return f.st.Counts() }

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *CFilter8) SlotsPerBlock() uint { return minifilter.B8Slots }

// BlockOccupancies returns a point-in-time occupancy of every block. Safe
// for concurrent use; each block is read with the validated optimistic
// protocol (falling back to a brief single-block lock on repeated
// conflicts), so writers are never blocked for more than one block's
// critical section. Blocks are sampled one at a time: the vector is exact
// per block but not a consistent cut of the whole filter. Snapshot reads are
// not recorded in the operation counters.
func (f *CFilter8) BlockOccupancies() []uint {
	out := make([]uint, len(f.blocks))
	for i := range f.blocks {
		b := uint64(i)
		if occ, ok := f.blocks[i].OccupancyOptimistic(f.seq(b)); ok {
			out[i] = occ
			continue
		}
		f.blocks[i].Lock()
		out[i] = f.blocks[i].OccupancyLocked()
		f.blocks[i].Unlock()
	}
	return out
}

// CFilter16 is the thread-safe vector quotient filter with 16-bit
// fingerprints; see CFilter8.
type CFilter16 struct {
	blocks  []minifilter.Block16
	seqs    []atomic.Uint64
	seqMask uint64
	mask    uint64
	count   atomic.Uint64
	opts    Options
	thresh  uint
	st      stats.Striped
	ring    *telemetry.Ring
}

// NewCFilter16 creates a thread-safe 16-bit-fingerprint filter.
func NewCFilter16(nslots uint64, opts Options) *CFilter16 {
	k := blocksFor(nslots, minifilter.B16Slots)
	f := &CFilter16{
		blocks: make([]minifilter.Block16, k),
		seqs:   make([]atomic.Uint64, seqStripesFor(k)),
		mask:   k - 1,
		opts:   opts,
		thresh: opts.threshold(minifilter.B16Slots, defThreshold16),
	}
	f.seqMask = uint64(len(f.seqs)) - 1
	for i := range f.blocks {
		f.blocks[i].Reset()
	}
	return f
}

// seq returns the version stripe for block index b.
func (f *CFilter16) seq(b uint64) *atomic.Uint64 { return &f.seqs[b&f.seqMask] }

// Capacity returns the total number of fingerprint slots.
func (f *CFilter16) Capacity() uint64 { return uint64(len(f.blocks)) * minifilter.B16Slots }

// Count returns the number of fingerprints currently stored.
func (f *CFilter16) Count() uint64 { return f.count.Load() }

// LoadFactor returns Count divided by Capacity.
func (f *CFilter16) LoadFactor() float64 { return float64(f.Count()) / float64(f.Capacity()) }

// SizeBytes returns the memory footprint of the block array and the seqlock
// version stripes.
func (f *CFilter16) SizeBytes() uint64 {
	return uint64(len(f.blocks))*64 + uint64(len(f.seqs))*8
}

// Insert adds the pre-hashed key h. Safe for concurrent use; see
// CFilter8.Insert.
func (f *CFilter16) Insert(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	blk1 := &f.blocks[b1]
	seq1 := f.seq(b1)
	if !f.opts.NoShortcut {
		occ, retries, ok := blk1.OccupancyOptimisticCounted(seq1)
		f.st.Optimistic(b1, retries, !ok)
		if !ok {
			f.fallbackEvent(b1, retries)
		}
		if ok && occ < f.thresh {
			blk1.Lock()
			if blk1.OccupancyLocked() < f.thresh {
				blk1.InsertLocked(bucket, fp)
				blk1.UnlockBump(seq1)
				f.count.Add(1)
				f.st.ShortcutInsert(b1)
				return true
			}
			blk1.Unlock()
		}
	}
	blk1.Lock()
	occ1 := blk1.OccupancyLocked()
	if !f.opts.NoShortcut && occ1 < f.thresh {
		blk1.InsertLocked(bucket, fp)
		blk1.UnlockBump(seq1)
		f.count.Add(1)
		f.st.ShortcutInsert(b1)
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		ok := blk1.InsertLocked(bucket, fp)
		if ok {
			blk1.UnlockBump(seq1)
			f.count.Add(1)
			f.st.Insert(b1)
		} else {
			blk1.Unlock()
			f.st.InsertFailure(b1)
		}
		return ok
	}
	blk2 := &f.blocks[b2]
	if b2 < b1 {
		blk1.Unlock()
		blk2.Lock()
		blk1.Lock()
		occ1 = blk1.OccupancyLocked()
	} else {
		blk2.Lock()
	}
	occ2 := blk2.OccupancyLocked()
	tgt, other, tgtSeq := blk1, blk2, seq1
	if occ2 < occ1 {
		tgt, other, tgtSeq = blk2, blk1, f.seq(b2)
	}
	other.Unlock()
	ok := tgt.InsertLocked(bucket, fp)
	if ok {
		tgt.UnlockBump(tgtSeq)
		f.count.Add(1)
		f.st.Insert(b1)
	} else {
		tgt.Unlock()
		f.st.InsertFailure(b1)
	}
	return ok
}

// Contains reports whether the pre-hashed key h may be in the filter. Safe
// for concurrent use and lock-free on the common path.
func (f *CFilter16) Contains(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	f.st.Lookup(b1)
	bc := swar.BroadcastU16(fp)
	found, retries, fellBack := f.blocks[b1].ContainsOptimisticCountedB(f.seq(b1), bucket, bc)
	f.st.Optimistic(b1, retries, fellBack)
	if fellBack {
		f.fallbackEvent(b1, retries)
	}
	if found {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	found, retries, fellBack = f.blocks[b2].ContainsOptimisticCountedB(f.seq(b2), bucket, bc)
	f.st.Optimistic(b1, retries, fellBack)
	if fellBack {
		f.fallbackEvent(b2, retries)
	}
	return found
}

// ContainsLocked is the lock-acquiring lookup baseline; see
// CFilter8.ContainsLocked.
func (f *CFilter16) ContainsLocked(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	f.st.Lookup(b1)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	found := blk1.ContainsLocked(bucket, fp)
	blk1.Unlock()
	if found {
		return true
	}
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	found = blk2.ContainsLocked(bucket, fp)
	blk2.Unlock()
	return found
}

// Remove deletes one previously inserted instance of the pre-hashed key h.
// Safe for concurrent use.
func (f *CFilter16) Remove(h uint64) bool {
	b1, bucket, fp, tag := split16(h, f.mask)
	blk1 := &f.blocks[b1]
	blk1.Lock()
	ok := blk1.RemoveLocked(bucket, fp)
	if ok {
		blk1.UnlockBump(f.seq(b1))
		f.count.Add(^uint64(0))
		f.st.Remove(b1)
		return true
	}
	blk1.Unlock()
	b2 := secondary(h, b1, tag, f.mask, false)
	if b2 == b1 {
		f.st.RemoveMiss(b1)
		return false
	}
	blk2 := &f.blocks[b2]
	blk2.Lock()
	ok = blk2.RemoveLocked(bucket, fp)
	if ok {
		blk2.UnlockBump(f.seq(b2))
		f.count.Add(^uint64(0))
		f.st.Remove(b1)
	} else {
		blk2.Unlock()
		f.st.RemoveMiss(b1)
	}
	return ok
}

// Stats returns the filter's operation counters; see CFilter8.Stats.
func (f *CFilter16) Stats() stats.OpCounts { return f.st.Counts() }

// SlotsPerBlock returns the fingerprint slots per mini-filter block.
func (f *CFilter16) SlotsPerBlock() uint { return minifilter.B16Slots }

// BlockOccupancies returns a point-in-time occupancy of every block; see
// CFilter8.BlockOccupancies.
func (f *CFilter16) BlockOccupancies() []uint {
	out := make([]uint, len(f.blocks))
	for i := range f.blocks {
		b := uint64(i)
		if occ, ok := f.blocks[i].OccupancyOptimistic(f.seq(b)); ok {
			out[i] = occ
			continue
		}
		f.blocks[i].Lock()
		out[i] = f.blocks[i].OccupancyLocked()
		f.blocks[i].Unlock()
	}
	return out
}
