package core

import "vqf/internal/telemetry"

// Rare-event hooks. A filter records structured diagnostics into an
// attached telemetry.Ring: seqlock retry-exhaustion fallbacks here, claim
// stalls in the sharded batch pools (sharded.go). The ring pointer is
// plain (not atomic): attach it right after construction, before the
// filter sees traffic — the same publication contract as every other
// constructor-time option. A nil ring (the default) costs one predicted
// branch on the paths that would record, all of which are already rare.

// SetEventRing attaches r as the filter's rare-event sink. Call before
// sharing the filter across goroutines.
func (f *CFilter8) SetEventRing(r *telemetry.Ring) { f.ring = r }

// SetEventRing attaches r as the filter's rare-event sink. Call before
// sharing the filter across goroutines.
func (f *CFilter16) SetEventRing(r *telemetry.Ring) { f.ring = r }

// SetEventRing attaches r to the sharded filter and every shard, so shard
// fallbacks and pool stalls land in one stream.
func (f *Sharded8) SetEventRing(r *telemetry.Ring) {
	f.ring = r
	for _, s := range f.shards {
		s.SetEventRing(r)
	}
}

// SetEventRing attaches r to the sharded filter and every shard.
func (f *Sharded16) SetEventRing(r *telemetry.Ring) {
	f.ring = r
	for _, s := range f.shards {
		s.SetEventRing(r)
	}
}

func (f *CFilter8) fallbackEvent(b uint64, retries uint) {
	if f.ring != nil {
		f.ring.Record(telemetry.EvSeqlockFallback, b, uint64(retries), 0)
	}
}

func (f *CFilter16) fallbackEvent(b uint64, retries uint) {
	if f.ring != nil {
		f.ring.Record(telemetry.EvSeqlockFallback, b, uint64(retries), 0)
	}
}

// stallEvent records a sharded-batch pool that finished with idle workers:
// the shard partition was too skewed (or too small) to feed every claimed
// worker. active is the number of workers that claimed at least one
// non-empty shard segment out of a pool of w, over a batch of keys keys.
func stallEvent(ring *telemetry.Ring, active, w, keys int) {
	if ring != nil && active < w {
		ring.Record(telemetry.EvShardClaimStall, uint64(w-active), uint64(w), uint64(keys))
	}
}
