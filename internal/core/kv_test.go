package core

import (
	"math/rand"
	"testing"
)

func TestKVPutGet(t *testing.T) {
	f := NewKV8(1 << 14)
	rng := rand.New(rand.NewSource(1))
	keys := make(map[uint64]byte)
	n := f.Capacity() * 80 / 100
	for uint64(len(keys)) < n {
		h := rng.Uint64()
		if _, dup := keys[h]; dup {
			continue
		}
		v := byte(rng.Intn(256))
		if !f.Put(h, v) {
			t.Fatalf("Put failed at LF %.3f", f.LoadFactor())
		}
		keys[h] = v
	}
	wrong := 0
	for h, v := range keys {
		got, ok := f.Get(h)
		if !ok {
			t.Fatal("Get miss for stored key (false negative)")
		}
		if got != v {
			wrong++ // possible only via fingerprint collision
		}
	}
	// Collision-caused wrong values are bounded by ≈ n·ε.
	if frac := float64(wrong) / float64(len(keys)); frac > 0.02 {
		t.Errorf("%.4f of lookups returned a collided value", frac)
	}
}

func TestKVGetAbsent(t *testing.T) {
	f := NewKV8(1 << 12)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		f.Put(rng.Uint64(), byte(i))
	}
	hits := 0
	for i := 0; i < 100000; i++ {
		if _, ok := f.Get(rng.Uint64()); ok {
			hits++
		}
	}
	if rate := float64(hits) / 100000; rate > 0.01 {
		t.Errorf("absent-key hit rate %.5f too high", rate)
	}
}

func TestKVUpdate(t *testing.T) {
	f := NewKV8(1 << 10)
	const h = 0x1122334455667788
	if !f.Put(h, 7) {
		t.Fatal("put failed")
	}
	if !f.Update(h, 9) {
		t.Fatal("update failed")
	}
	if v, ok := f.Get(h); !ok || v != 9 {
		t.Fatalf("Get = (%d, %v), want (9, true)", v, ok)
	}
	if f.Update(h^0x1, 3) {
		t.Log("note: update of absent key matched a collision (allowed, rare)")
	}
}

func TestKVDelete(t *testing.T) {
	f := NewKV8(1 << 12)
	rng := rand.New(rand.NewSource(3))
	type pair struct {
		h uint64
		v byte
	}
	var pairs []pair
	for i := 0; i < 2000; i++ {
		p := pair{rng.Uint64(), byte(rng.Intn(256))}
		if !f.Put(p.h, p.v) {
			t.Fatal("put failed")
		}
		pairs = append(pairs, p)
	}
	for _, p := range pairs[:1000] {
		if !f.Delete(p.h) {
			t.Fatal("delete of stored key failed")
		}
	}
	if f.Count() != 1000 {
		t.Fatalf("Count = %d", f.Count())
	}
	// Remaining pairs still resolve to their values (minus rare collisions).
	wrong := 0
	for _, p := range pairs[1000:] {
		v, ok := f.Get(p.h)
		if !ok {
			t.Fatal("false negative after deletes")
		}
		if v != p.v {
			wrong++
		}
	}
	if wrong > 40 {
		t.Errorf("%d/1000 wrong values after deletes", wrong)
	}
}

func TestKVValuesTrackShifts(t *testing.T) {
	// Force many keys into one block's buckets so inserts shift fingerprints;
	// the values must follow their fingerprints exactly.
	f := NewKV8(96) // 2 blocks
	rng := rand.New(rand.NewSource(4))
	type pair struct {
		h uint64
		v byte
	}
	var pairs []pair
	for i := 0; i < 60; i++ {
		p := pair{rng.Uint64(), byte(i + 1)}
		if !f.Put(p.h, p.v) {
			break // tiny filter may fill; that's fine
		}
		pairs = append(pairs, p)
	}
	wrong := 0
	for _, p := range pairs {
		v, ok := f.Get(p.h)
		if !ok {
			t.Fatal("false negative in dense block")
		}
		if v != p.v {
			wrong++
		}
	}
	// In a 2-block filter fingerprint collisions are plausible but must stay
	// rare relative to 60 keys.
	if wrong > 3 {
		t.Errorf("%d/%d values wrong after dense shifting", wrong, len(pairs))
	}
}

func TestKVModelBased(t *testing.T) {
	f := NewKV8(1 << 10)
	rng := rand.New(rand.NewSource(5))
	type fpID struct {
		blk    uint64
		bucket uint
		fp     byte
	}
	// Model on fingerprint identity: Get returns the value of some key with
	// the same fingerprint identity. Keys are mutually confusable exactly
	// when they share (bucket, fp) and the same unordered block pair, so the
	// identity uses the smaller block index of the pair.
	ident := func(h uint64) fpID {
		b1, bucket, fp, tag := split8(h, f.mask)
		b2 := secondary(h, b1, tag, f.mask, false)
		if b2 < b1 {
			b1 = b2
		}
		return fpID{b1, bucket, fp}
	}
	model := map[fpID][]byte{}
	var live []uint64
	for step := 0; step < 50000; step++ {
		switch {
		case rng.Intn(2) == 0 && f.LoadFactor() < 0.85:
			h := rng.Uint64()
			v := byte(rng.Intn(256))
			if !f.Put(h, v) {
				continue
			}
			id := ident(h)
			model[id] = append(model[id], v)
			live = append(live, h)
		case len(live) > 0:
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			id := ident(h)
			if !f.Delete(h) {
				t.Fatalf("step %d: delete of live key failed", step)
			}
			if len(model[id]) == 0 {
				t.Fatalf("step %d: model empty for deleted key", step)
			}
			model[id] = model[id][:len(model[id])-1]
			if len(model[id]) == 0 {
				delete(model, id)
			}
		}
		if step%1000 == 0 && len(live) > 0 {
			h := live[rng.Intn(len(live))]
			v, ok := f.Get(h)
			if !ok {
				t.Fatalf("step %d: false negative", step)
			}
			id := ident(h)
			found := false
			for _, mv := range model[id] {
				if mv == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("step %d: Get returned %d, not among identity's values %v",
					step, v, model[id])
			}
		}
	}
}
