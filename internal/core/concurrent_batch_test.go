package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestCFilter8BatchRoundTrip(t *testing.T) {
	f := NewCFilter8(1<<15, Options{})
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 20000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	if got := f.InsertBatch(keys); got != len(keys) {
		t.Fatalf("InsertBatch = %d, want %d", got, len(keys))
	}
	if f.Count() != uint64(len(keys)) {
		t.Fatalf("Count = %d, want %d", f.Count(), len(keys))
	}

	// ContainsBatch must answer in input order and agree with Contains,
	// for present and absent keys interleaved.
	probes := make([]uint64, 0, len(keys)*2)
	for i, h := range keys {
		probes = append(probes, h)
		if i%2 == 0 {
			probes = append(probes, rng.Uint64())
		}
	}
	out := f.ContainsBatch(probes, nil)
	if len(out) != len(probes) {
		t.Fatalf("ContainsBatch len = %d, want %d", len(out), len(probes))
	}
	for i, h := range probes {
		if out[i] != f.Contains(h) {
			t.Fatalf("probe %d: batch=%v single=%v", i, out[i], f.Contains(h))
		}
	}
	// dst reuse: a result slice with enough capacity is returned in place.
	reuse := make([]bool, len(probes)+5)
	out2 := f.ContainsBatch(probes, reuse)
	if &out2[0] != &reuse[0] || len(out2) != len(probes) {
		t.Fatal("ContainsBatch did not reuse dst")
	}

	// RemoveBatch: every inserted key is found and removed exactly once.
	half := keys[:len(keys)/2]
	if got := f.RemoveBatch(half); got != len(half) {
		t.Fatalf("RemoveBatch = %d, want %d", got, len(half))
	}
	if f.Count() != uint64(len(keys)-len(half)) {
		t.Fatalf("Count after RemoveBatch = %d, want %d", f.Count(), len(keys)-len(half))
	}
	for _, h := range keys[len(keys)/2:] {
		if !f.Contains(h) {
			t.Fatal("remaining key missing after RemoveBatch")
		}
	}
}

func TestCFilter16BatchRoundTrip(t *testing.T) {
	f := NewCFilter16(1<<14, Options{})
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	if got := f.InsertBatch(keys); got != len(keys) {
		t.Fatalf("InsertBatch = %d, want %d", got, len(keys))
	}
	out := f.ContainsBatch(keys, nil)
	for i := range out {
		if !out[i] {
			t.Fatal("inserted key missing from ContainsBatch")
		}
	}
	if got := f.RemoveBatch(keys); got != len(keys) {
		t.Fatalf("RemoveBatch = %d, want %d", got, len(keys))
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d after full RemoveBatch", f.Count())
	}
}

// TestCFilter8BatchSmall exercises the sequential (non-partitioned,
// single-worker) fallback paths.
func TestCFilter8BatchSmall(t *testing.T) {
	f := NewCFilter8(1<<10, Options{})
	keys := []uint64{1, 2, 3, 4, 5}
	if got := f.InsertBatch(keys); got != len(keys) {
		t.Fatalf("InsertBatch = %d", got)
	}
	out := f.ContainsBatch(keys, nil)
	for i := range out {
		if !out[i] {
			t.Fatal("small-batch key missing")
		}
	}
	if got := f.RemoveBatch(keys); got != len(keys) {
		t.Fatalf("RemoveBatch = %d", got)
	}
}

// TestCFilter8BatchMatchesSequentialCount checks the parallel insert path
// against the sequential filter on an identical radix-ordered stream: the
// number of stored fingerprints and membership answers must agree.
func TestCFilter8BatchMatchesSequentialCount(t *testing.T) {
	cf := NewCFilter8(1<<14, Options{})
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 12000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	got := cf.InsertBatch(keys)
	if got != len(keys) {
		t.Fatalf("InsertBatch = %d, want %d", got, len(keys))
	}
	for _, h := range keys {
		if !cf.Contains(h) {
			t.Fatal("batch-inserted key missing")
		}
	}
}

// TestCFilter8BatchConcurrentWithPointOps runs InsertBatch concurrently
// with point queries and removes on an overlapping key space; under -race
// this crosses the batch worker pool with the optimistic read path.
func TestCFilter8BatchConcurrentWithPointOps(t *testing.T) {
	f := NewCFilter8(1<<15, Options{})
	rng := rand.New(rand.NewSource(4))
	stable := make([]uint64, 2000)
	for i := range stable {
		stable[i] = rng.Uint64()
		if !f.Insert(stable[i]) {
			t.Fatal("stable insert failed")
		}
	}
	batch := make([]uint64, 30000)
	for i := range batch {
		batch[i] = rng.Uint64()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if got := f.InsertBatch(batch); got != len(batch) {
			t.Errorf("InsertBatch = %d, want %d", got, len(batch))
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 20000; i++ {
			if !f.Contains(stable[rng.Intn(len(stable))]) {
				t.Error("false negative on stable key during batch insert")
				return
			}
		}
	}()
	wg.Wait()
	if got := f.RemoveBatch(batch); got != len(batch) {
		t.Fatalf("RemoveBatch = %d, want %d", got, len(batch))
	}
}

// TestParallelContainsSingleWorkerSegmented pins the GOMAXPROCS=1 fallback of
// parallelShardContains: it, too, carries int32 scatter indices and must
// segment oversized batches rather than overflow. maxIdxSegment is shrunk so
// the boundary is actually crossed.
func TestParallelContainsSingleWorkerSegmented(t *testing.T) {
	old := maxIdxSegment
	maxIdxSegment = 300
	defer func() { maxIdxSegment = old }()
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	f := NewCFilter8(1<<13, Options{})
	rng := rand.New(rand.NewSource(16))
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	f.InsertBatch(keys)
	probes := make([]uint64, 0, 1024)
	for i := 0; i < 1024; i++ {
		if i%2 == 0 {
			probes = append(probes, keys[i%len(keys)])
		} else {
			probes = append(probes, rng.Uint64())
		}
	}
	out := f.ContainsBatch(probes, nil)
	for i, h := range probes {
		if out[i] != f.Contains(h) {
			t.Fatalf("probe %d: batch=%v single=%v", i, out[i], f.Contains(h))
		}
	}
}
