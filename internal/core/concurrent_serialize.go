package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"

	"vqf/internal/minifilter"
)

// Serialization for the concurrent and sharded filters. Concurrent filters
// serialize to the *same* stream format as their sequential counterparts
// (magic "VQF1"/"VQF2"): the only in-memory difference is the locked-mode
// metadata convention — the stored top bit is the lock flag, and a full
// block's final bucket terminator is implicit — so each block is converted
// to the plain form on the way out and back on the way in:
//
//   - write: a quiescent locked-mode block has the lock bit clear; if its
//     remaining metadata carries only 79 (resp. 35) terminators the block is
//     full and the plain form's top bit IS the final terminator, so it is
//     set. Otherwise the forms are bit-identical.
//   - read: a plain block's top bit is set exactly when the block is full;
//     clearing it unconditionally yields the stored locked form.
//
// One format means a filter persisted by a sequential writer can be loaded
// into a concurrent (or sharded) reader and vice versa.
//
// WriteTo requires the filter to be quiescent: no concurrent writers (a held
// lock bit is detected and reported as an error, but the fingerprint reads
// are not torn-proof, so "no writers" is the caller's contract, not one the
// encoder can enforce).
//
// A sharded filter serializes as a small sub-header (geometry and shard
// count) followed by each shard's stream in shard order; the envelope kind
// and hash seed live a layer up, in the public package.

const (
	shardMagic       = 0x48535156 // "VQSH"
	shardHeaderBytes = 4 + 2 + 2 + 4 + 4
)

// errLockedBlock reports a serialization attempt on a filter with an active
// writer.
func errLockedBlock(i int) error {
	return fmt.Errorf("core: block %d is locked; serialization requires a quiescent filter", i)
}

// WriteTo serializes the filter in the sequential Filter8 stream format; it
// implements io.WriterTo. The filter must be quiescent (see the file
// comment).
func (f *CFilter8) WriteTo(w io.Writer) (int64, error) {
	if err := writeHeader(w, magic8, uint64(len(f.blocks)), f.count.Load(), f.opts); err != nil {
		return 0, err
	}
	n := int64(headerBytes)
	buf := make([]byte, 64)
	for i := range f.blocks {
		b := &f.blocks[i]
		lo, hi := b.MetaLo, b.MetaHi
		if hi&minifilter.LockBit != 0 {
			return n, errLockedBlock(i)
		}
		if bits.OnesCount64(lo)+bits.OnesCount64(hi) == minifilter.B8Buckets-1 {
			hi |= minifilter.LockBit // full: the top bit is the 80th terminator
		}
		binary.LittleEndian.PutUint64(buf[0:], lo)
		binary.LittleEndian.PutUint64(buf[8:], hi)
		for j, word := range b.Fps {
			binary.LittleEndian.PutUint64(buf[16+8*j:], word)
		}
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadCFilter8 deserializes a concurrent filter from a Filter8-format stream
// (written by either CFilter8.WriteTo or Filter8.WriteTo).
func ReadCFilter8(r io.Reader) (*CFilter8, error) {
	p, err := readFilter8(r, 0) // validates header, caps, and invariants
	if err != nil {
		return nil, err
	}
	f := &CFilter8{
		blocks: p.blocks,
		seqs:   make([]atomic.Uint64, seqStripesFor(uint64(len(p.blocks)))),
		mask:   p.mask,
		opts:   p.opts,
		thresh: p.opts.threshold(minifilter.B8Slots, defThreshold8),
	}
	f.seqMask = uint64(len(f.seqs)) - 1
	f.count.Store(p.count)
	for i := range f.blocks {
		f.blocks[i].MetaHi &^= minifilter.LockBit // plain full-bit -> locked stored form
	}
	return f, nil
}

// WriteTo serializes the filter in the sequential Filter16 stream format; it
// implements io.WriterTo. The filter must be quiescent.
func (f *CFilter16) WriteTo(w io.Writer) (int64, error) {
	if err := writeHeader(w, magic16, uint64(len(f.blocks)), f.count.Load(), f.opts); err != nil {
		return 0, err
	}
	n := int64(headerBytes)
	buf := make([]byte, 64)
	for i := range f.blocks {
		b := &f.blocks[i]
		meta := b.Meta
		if meta&minifilter.LockBit != 0 {
			return n, errLockedBlock(i)
		}
		if bits.OnesCount64(meta) == minifilter.B16Buckets-1 {
			meta |= minifilter.LockBit // full: the top bit is the 36th terminator
		}
		binary.LittleEndian.PutUint64(buf[0:], meta)
		for j, word := range b.Fps {
			binary.LittleEndian.PutUint64(buf[8+8*j:], word)
		}
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadCFilter16 deserializes a concurrent filter from a Filter16-format
// stream.
func ReadCFilter16(r io.Reader) (*CFilter16, error) {
	p, err := readFilter16(r, 0)
	if err != nil {
		return nil, err
	}
	f := &CFilter16{
		blocks: p.blocks,
		seqs:   make([]atomic.Uint64, seqStripesFor(uint64(len(p.blocks)))),
		mask:   p.mask,
		opts:   p.opts,
		thresh: p.opts.threshold(minifilter.B16Slots, defThreshold16),
	}
	f.seqMask = uint64(len(f.seqs)) - 1
	f.count.Store(p.count)
	for i := range f.blocks {
		f.blocks[i].Meta &^= minifilter.LockBit
	}
	return f, nil
}

// writeShardHeader emits the sharded sub-header: magic, version, geometry
// kind (8 or 16), shard count.
func writeShardHeader(w io.Writer, geom uint16, nshards uint32) (int64, error) {
	var hdr [shardHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint16(hdr[4:], serialVersion)
	binary.LittleEndian.PutUint16(hdr[6:], geom)
	binary.LittleEndian.PutUint32(hdr[8:], nshards)
	n, err := w.Write(hdr[:])
	return int64(n), err
}

func readShardHeader(r io.Reader) (geom uint16, nshards uint32, err error) {
	var hdr [shardHeaderBytes]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		return 0, 0, fmt.Errorf("%w: bad shard magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != serialVersion {
		return 0, 0, fmt.Errorf("%w: unsupported shard version %d", ErrBadFormat, v)
	}
	geom = binary.LittleEndian.Uint16(hdr[6:])
	if geom != 8 && geom != 16 {
		return 0, 0, fmt.Errorf("%w: unknown shard geometry %d", ErrBadFormat, geom)
	}
	nshards = binary.LittleEndian.Uint32(hdr[8:])
	if nshards == 0 || nshards > 1<<maxShardBits || nshards&(nshards-1) != 0 {
		return 0, 0, fmt.Errorf("%w: shard count %d not a power of two in [1, %d]",
			ErrBadFormat, nshards, 1<<maxShardBits)
	}
	return geom, nshards, nil
}

// WriteTo serializes the sharded filter: the shard sub-header followed by
// each shard's stream. It implements io.WriterTo; the filter must be
// quiescent.
func (f *Sharded8) WriteTo(w io.Writer) (int64, error) {
	n, err := writeShardHeader(w, 8, uint32(len(f.shards)))
	if err != nil {
		return n, err
	}
	for _, s := range f.shards {
		m, err := s.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// WriteTo serializes the sharded filter; see Sharded8.WriteTo.
func (f *Sharded16) WriteTo(w io.Writer) (int64, error) {
	n, err := writeShardHeader(w, 16, uint32(len(f.shards)))
	if err != nil {
		return n, err
	}
	for _, s := range f.shards {
		m, err := s.WriteTo(w)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadSharded deserializes a sharded filter written by Sharded8.WriteTo or
// Sharded16.WriteTo; exactly one of the returns is non-nil on success (the
// stream records which geometry it holds).
func ReadSharded(r io.Reader) (*Sharded8, *Sharded16, error) {
	geom, nshards, err := readShardHeader(r)
	if err != nil {
		return nil, nil, err
	}
	bits := shardBitsFor(int(nshards))
	if geom == 8 {
		f := &Sharded8{shards: make([]*CFilter8, nshards), shardBits: bits}
		for i := range f.shards {
			if f.shards[i], err = ReadCFilter8(r); err != nil {
				return nil, nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return f, nil, nil
	}
	f := &Sharded16{shards: make([]*CFilter16, nshards), shardBits: bits}
	for i := range f.shards {
		if f.shards[i], err = ReadCFilter16(r); err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil, f, nil
}
