package core

import (
	"math/bits"

	"vqf/internal/hashing"
	"vqf/internal/minifilter"
	"vqf/internal/swar"
)

// Fingerprint iteration and canonical hash reconstruction. A VQF block
// stores only (bucket, fingerprint) pairs; the key hash that produced them
// is gone. But every bit of the hash the filter ever consults is a function
// of (block index, bucket, fingerprint), so a canonical preimage hash can be
// reconstructed: any h̃ with the same low-16 bucket selector, the same
// fingerprint field, and the iterated block as its primary index is
// indistinguishable from the original hash to this filter. That is what
// makes compaction's rebuild-by-reinsertion exact rather than approximate.
//
// Cross-size soundness: a canonical hash is also indistinguishable from the
// original to any SMALLER xor-linked filter of the same fingerprint width.
// The secondary index b2 = b1 ^ (tag·M) means truncating both sides by a
// smaller power-of-two mask' commutes with the xor: the iterated block b
// (whether it was the item's primary or secondary home) satisfies
// b&mask' ∈ {b1&mask', (b1^(tag·M))&mask'} — exactly the candidate pair the
// original hash has in the smaller filter. Under Options.IndependentHash the
// secondary derivation is not linear in the block index, so rebuilding into
// a different geometry is unsound; elastic levels never use it, and the
// iterate-rebuild oracle property covers only xor-linked filters.

// canonLow16 returns the smallest 16-bit value whose Lemire range reduction
// (x·nbuckets >> 16) yields bucket. ceil(bucket·2¹⁶ / nbuckets) is exact:
// floor((bucket·2¹⁶+nb−1)/nb · nb / 2¹⁶) = bucket for every bucket < nb.
func canonLow16(bucket uint, nbuckets uint) uint64 {
	return (uint64(bucket)<<16 + uint64(nbuckets) - 1) / uint64(nbuckets)
}

// CanonicalHash8 reconstructs a canonical preimage hash for an item iterated
// from block b of an 8-bit-fingerprint filter: split8 maps it back to
// exactly (b&mask, bucket, fp) on any filter whose block mask covers b.
func CanonicalHash8(b uint64, bucket uint, fp byte) uint64 {
	return canonLow16(bucket, minifilter.B8Buckets) | uint64(fp)<<16 | b<<24
}

// CanonicalHash16 reconstructs a canonical preimage hash for an item
// iterated from block b of a 16-bit-fingerprint filter; see CanonicalHash8.
func CanonicalHash16(b uint64, bucket uint, fp uint16) uint64 {
	return canonLow16(bucket, minifilter.B16Buckets) | uint64(fp)<<16 | b<<32
}

// BlocksFor exposes the geometry's block-count rounding (power of two,
// minimum 2) so cascade compaction can size a merged level without
// duplicating the rule.
func BlocksFor(nslots, slotsPerBlock uint64) uint64 {
	return blocksFor(nslots, slotsPerBlock)
}

// FoldHash8 returns the canonical representative hash of h's candidate
// block PAIR under the given block mask (mask = blocks−1, power of two
// minus one): the canonical hash anchored at the smaller of the two
// xor-linked candidate blocks. Every hash indistinguishable from h to an
// 8-bit-fingerprint filter of that size — including any canonical hash
// iterated from a LARGER xor-linked filter that stored h — folds to the
// same representative: the candidate pair is closed under mask truncation
// (see the package comment), and min() picks the same element regardless of
// which member the input hash was anchored at. The frozen tier keys its
// immutable filters by this value, collapsing the two-block probe of the
// VQF geometry into one exact-match key.
func FoldHash8(h, mask uint64) uint64 {
	b1, bucket, fp, tag := split8(h, mask)
	if b2 := hashing.AltIndex(b1, tag, mask); b2 < b1 {
		b1 = b2
	}
	return CanonicalHash8(b1, bucket, fp)
}

// CandidatePair8 returns h's two xor-linked candidate block indices in an
// 8-bit-fingerprint geometry under the given block mask (equal when the tag
// maps the primary block onto itself). FoldHash8 anchors its representative
// at the smaller of the two; callers that must enumerate every block a key
// can occupy — reconcile's stride walk over a frozen fuse level — need both.
func CandidatePair8(h, mask uint64) (uint64, uint64) {
	b1, _, _, tag := split8(h, mask)
	return b1, hashing.AltIndex(b1, tag, mask)
}

// CandidatePair16 returns h's two candidate block indices in a
// 16-bit-fingerprint geometry; see CandidatePair8.
func CandidatePair16(h, mask uint64) (uint64, uint64) {
	b1, _, _, tag := split16(h, mask)
	return b1, hashing.AltIndex(b1, tag, mask)
}

// FoldHash16 returns the canonical pair-representative hash of h for the
// 16-bit-fingerprint geometry; see FoldHash8.
func FoldHash16(h, mask uint64) uint64 {
	b1, bucket, fp, tag := split16(h, mask)
	if b2 := hashing.AltIndex(b1, tag, mask); b2 < b1 {
		b1 = b2
	}
	return CanonicalHash16(b1, bucket, fp)
}

// IterateHashes yields one canonical hash per stored fingerprint instance,
// in block order. Reinserting every yielded hash into a fresh filter
// reproduces this filter's contents exactly (same Contains/CountOf
// behaviour, modulo block-choice placement). It returns false if yield
// stopped the walk early.
func (f *Filter8) IterateHashes(yield func(h uint64) bool) bool {
	for i := range f.blocks {
		b := uint64(i)
		if !f.blocks[i].Iterate(func(bucket uint, fp byte) bool {
			return yield(CanonicalHash8(b, bucket, fp))
		}) {
			return false
		}
	}
	return true
}

// IterateHashes yields one canonical hash per stored fingerprint instance;
// see Filter8.IterateHashes.
func (f *Filter16) IterateHashes(yield func(h uint64) bool) bool {
	for i := range f.blocks {
		b := uint64(i)
		if !f.blocks[i].Iterate(func(bucket uint, fp uint16) bool {
			return yield(CanonicalHash16(b, bucket, fp))
		}) {
			return false
		}
	}
	return true
}

// IterateHashes yields one canonical hash per stored fingerprint instance,
// in block order, safe alongside concurrent writers. Each block is walked
// from one internally consistent snapshot (see
// minifilter.Block8.SnapshotIterate); the walk as a whole is a point-in-time
// view only per block, not across blocks — callers needing a cross-block
// consistent view must quiesce writers (compaction freezes inserts to the
// levels it walks and reconciles racing removes through a log).
func (f *CFilter8) IterateHashes(yield func(h uint64) bool) bool {
	for i := range f.blocks {
		b := uint64(i)
		if !f.blocks[i].SnapshotIterate(f.seq(b), func(bucket uint, fp byte) bool {
			return yield(CanonicalHash8(b, bucket, fp))
		}) {
			return false
		}
	}
	return true
}

// IterateHashes yields one canonical hash per stored fingerprint instance;
// see CFilter8.IterateHashes.
func (f *CFilter16) IterateHashes(yield func(h uint64) bool) bool {
	for i := range f.blocks {
		b := uint64(i)
		if !f.blocks[i].SnapshotIterate(f.seq(b), func(bucket uint, fp uint16) bool {
			return yield(CanonicalHash16(b, bucket, fp))
		}) {
			return false
		}
	}
	return true
}

// NumBlocks returns the number of mini-filter blocks.
func (f *CFilter8) NumBlocks() uint64 { return uint64(len(f.blocks)) }

// NumBlocks returns the number of mini-filter blocks.
func (f *CFilter16) NumBlocks() uint64 { return uint64(len(f.blocks)) }

// CandidateBlocks returns the two block indices the pre-hashed key h may
// occupy (equal when the xor trick maps a tag back onto its primary block).
func (f *Filter8) CandidateBlocks(h uint64) (uint64, uint64) {
	b1, _, _, tag := split8(h, f.mask)
	return b1, secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
}

// CandidateBlocks returns the two candidate block indices for h.
func (f *Filter16) CandidateBlocks(h uint64) (uint64, uint64) {
	b1, _, _, tag := split16(h, f.mask)
	return b1, secondary(h, b1, tag, f.mask, f.opts.IndependentHash)
}

// CandidateBlocks returns the two candidate block indices for h.
func (f *CFilter8) CandidateBlocks(h uint64) (uint64, uint64) {
	b1, _, _, tag := split8(h, f.mask)
	return b1, secondary(h, b1, tag, f.mask, false)
}

// CandidateBlocks returns the two candidate block indices for h.
func (f *CFilter16) CandidateBlocks(h uint64) (uint64, uint64) {
	b1, _, _, tag := split16(h, f.mask)
	return b1, secondary(h, b1, tag, f.mask, false)
}

// CountAtBlock returns the number of fingerprint instances matching h's
// (bucket, fingerprint) stored in block b — which need not be one of h's own
// candidate blocks; compaction counts a hash's instances across all source
// blocks that fold onto a destination pair.
func (f *Filter8) CountAtBlock(b, h uint64) uint64 {
	_, bucket, fp, _ := split8(h, f.mask)
	return uint64(bits.OnesCount64(f.blocks[b].Probe(bucket, swar.BroadcastByte(fp))))
}

// CountAtBlock returns the number of matching instances in block b; see
// Filter8.CountAtBlock.
func (f *Filter16) CountAtBlock(b, h uint64) uint64 {
	_, bucket, fp, _ := split16(h, f.mask)
	return uint64(bits.OnesCount64(f.blocks[b].Probe(bucket, swar.BroadcastU16(fp))))
}

// CountAtBlock returns the number of matching instances in block b from a
// consistent lock-free block snapshot; see Filter8.CountAtBlock.
func (f *CFilter8) CountAtBlock(b, h uint64) uint64 {
	_, bucket, fp, _ := split8(h, f.mask)
	return uint64(bits.OnesCount64(f.blocks[b].ProbeOptimistic(f.seq(b), bucket, swar.BroadcastByte(fp))))
}

// CountAtBlock returns the number of matching instances in block b; see
// CFilter8.CountAtBlock.
func (f *CFilter16) CountAtBlock(b, h uint64) uint64 {
	_, bucket, fp, _ := split16(h, f.mask)
	return uint64(bits.OnesCount64(f.blocks[b].ProbeOptimistic(f.seq(b), bucket, swar.BroadcastU16(fp))))
}
