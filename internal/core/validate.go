package core

import (
	"fmt"
	"math/bits"

	"vqf/internal/minifilter"
)

// CheckInvariants verifies the filter's structural invariants: every block's
// metadata holds exactly B8Buckets terminator bits with no used bits above
// the final one, and block occupancies sum to Count. It returns a
// descriptive error for the first violation found; the test suite uses it
// for corruption (failure-injection) testing and long-churn audits.
func (f *Filter8) CheckInvariants() error {
	return checkBlocks8(f.blocks, f.count)
}

// CheckInvariants verifies the value-associating filter's structural
// invariants (the value array is opaque bytes, so the block audit is the
// whole check); see Filter8.CheckInvariants.
func (f *KVFilter8) CheckInvariants() error {
	if uint64(len(f.vals)) != uint64(len(f.blocks))*minifilter.B8Slots {
		return fmt.Errorf("value array holds %d bytes for %d blocks", len(f.vals), len(f.blocks))
	}
	return checkBlocks8(f.blocks, f.count)
}

// checkBlocks8 audits an 8-bit-geometry block array: every block holds
// exactly B8Buckets terminator bits with no used bits above the final one,
// and occupancies sum to count.
func checkBlocks8(blocks []minifilter.Block8, count uint64) error {
	var total uint64
	for i := range blocks {
		b := &blocks[i]
		ones := bits.OnesCount64(b.MetaLo) + bits.OnesCount64(b.MetaHi)
		if ones != minifilter.B8Buckets {
			return fmt.Errorf("block %d: %d terminator bits, want %d", i, ones, minifilter.B8Buckets)
		}
		occ := b.Occupancy()
		if occ > minifilter.B8Slots {
			return fmt.Errorf("block %d: occupancy %d exceeds %d slots", i, occ, minifilter.B8Slots)
		}
		// No metadata bit may lie above the final terminator.
		used := minifilter.B8Buckets + occ
		if used < 128 {
			loMask, hiMask := usedMask128(uint(used))
			if b.MetaLo&^loMask != 0 || b.MetaHi&^hiMask != 0 {
				return fmt.Errorf("block %d: metadata bits above the final terminator", i)
			}
		}
		total += uint64(occ)
	}
	if total != count {
		return fmt.Errorf("occupancy sum %d != count %d", total, count)
	}
	return nil
}

func usedMask128(used uint) (lo, hi uint64) {
	if used >= 128 {
		return ^uint64(0), ^uint64(0)
	}
	if used >= 64 {
		return ^uint64(0), 1<<(used-64) - 1
	}
	return 1<<used - 1, 0
}

// CheckInvariants verifies the 16-bit filter's structural invariants; see
// Filter8.CheckInvariants.
func (f *Filter16) CheckInvariants() error {
	var total uint64
	for i := range f.blocks {
		b := &f.blocks[i]
		if ones := bits.OnesCount64(b.Meta); ones != minifilter.B16Buckets {
			return fmt.Errorf("block %d: %d terminator bits, want %d", i, ones, minifilter.B16Buckets)
		}
		occ := b.Occupancy()
		if occ > minifilter.B16Slots {
			return fmt.Errorf("block %d: occupancy %d exceeds %d slots", i, occ, minifilter.B16Slots)
		}
		used := minifilter.B16Buckets + occ
		if used < 64 && b.Meta&^(1<<used-1) != 0 {
			return fmt.Errorf("block %d: metadata bits above the final terminator", i)
		}
		total += uint64(occ)
	}
	if total != f.count {
		return fmt.Errorf("occupancy sum %d != count %d", total, f.count)
	}
	return nil
}

// Blocks exposes the block array for white-box corruption tests.
func (f *Filter8) Blocks() []minifilter.Block8 { return f.blocks }
