package core

import (
	"math/rand"
	"sync"
	"testing"
)

// keyForBlock8 builds a hash whose primary block (8-bit geometry) is block.
func keyForBlock8(rng *rand.Rand, mask, block uint64) uint64 {
	h := rng.Uint64()
	return (h &^ (mask << blockShift8)) | block<<blockShift8
}

// TestCFilter8TargetedTwoBlockInterleaving interleaves lock-free optimistic
// Contains with concurrent Insert/Remove traffic concentrated on two
// specific blocks — the conflict-heavy case the seqlock protocol must
// survive. Pinned keys (inserted once, never removed) must never produce a
// false negative, no matter how much churn their blocks see. Run with -race
// to also check the atomic-publication contract end to end.
func TestCFilter8TargetedTwoBlockInterleaving(t *testing.T) {
	f := NewCFilter8(1<<12, Options{})
	const blockA, blockB = 3, 99
	rng := rand.New(rand.NewSource(1))

	var pinned []uint64
	for _, blk := range []uint64{blockA, blockB} {
		for i := 0; i < 20; i++ {
			h := keyForBlock8(rng, f.mask, blk)
			if !f.Insert(h) {
				t.Fatal("pin insert failed")
			}
			pinned = append(pinned, h)
		}
	}

	const writers, readers, ops = 2, 4, 8000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint64
			for i := 0; i < ops; i++ {
				if len(mine) > 0 && (rng.Intn(2) == 0 || len(mine) > 16) {
					h := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if !f.Remove(h) {
						t.Error("own churn key missing on remove")
						return
					}
					continue
				}
				blk := uint64(blockA)
				if rng.Intn(2) == 0 {
					blk = blockB
				}
				h := keyForBlock8(rng, f.mask, blk)
				if f.Insert(h) {
					mine = append(mine, h)
				}
			}
			for _, h := range mine {
				if !f.Remove(h) {
					t.Error("own churn key missing at drain")
					return
				}
			}
		}(int64(w + 11))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				if !f.Contains(pinned[rng.Intn(len(pinned))]) {
					t.Error("false negative on pinned key under churn")
					return
				}
				// Unasserted probes on the churned blocks: hits, misses and
				// torn-snapshot candidates all exercise the retry path.
				blk := uint64(blockA)
				if rng.Intn(2) == 0 {
					blk = blockB
				}
				f.Contains(keyForBlock8(rng, f.mask, blk))
			}
		}(int64(r + 31))
	}
	wg.Wait()
	for _, h := range pinned {
		if !f.Contains(h) {
			t.Fatal("pinned key missing after churn")
		}
	}
}

// TestCFilter16OptimisticUnderChurn is a lighter 16-bit version of the
// targeted interleaving test.
func TestCFilter16OptimisticUnderChurn(t *testing.T) {
	f := NewCFilter16(1<<12, Options{})
	rng := rand.New(rand.NewSource(5))
	const block = 7
	var pinned []uint64
	for i := 0; i < 10; i++ {
		h := rng.Uint64()&^(f.mask<<blockShift16) | block<<blockShift16
		if !f.Insert(h) {
			t.Fatal("pin insert failed")
		}
		pinned = append(pinned, h)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 8000; i++ {
			h := rng.Uint64()&^(f.mask<<blockShift16) | block<<blockShift16
			if f.Insert(h) {
				if !f.Remove(h) {
					t.Error("own key missing")
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 8000; i++ {
			if !f.Contains(pinned[rng.Intn(len(pinned))]) {
				t.Error("false negative on pinned key under churn")
				return
			}
		}
	}()
	wg.Wait()
}

// TestCFilter8ContainsLockedBaselineAgrees pins the benchmark baseline to
// the optimistic path: on a quiescent filter the two lookups must agree on
// every probe.
func TestCFilter8ContainsLockedBaselineAgrees(t *testing.T) {
	f := NewCFilter8(1<<14, Options{})
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		if !f.Insert(keys[i]) {
			t.Fatal("insert failed")
		}
	}
	for _, h := range keys {
		if !f.Contains(h) || !f.ContainsLocked(h) {
			t.Fatal("false negative")
		}
	}
	for i := 0; i < 50000; i++ {
		h := rng.Uint64()
		if f.Contains(h) != f.ContainsLocked(h) {
			t.Fatal("optimistic and locked lookups disagree")
		}
	}
}
