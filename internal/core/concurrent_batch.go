package core

// Parallel batch operations for the concurrent filters. Keys are
// radix-partitioned by primary block (the same partitioning the sequential
// batch path uses for locality, batch.go) and the shards are fanned out
// across a bounded worker pool. Because a shard is a contiguous range of
// primary-block prefixes, two workers never write the same primary block
// concurrently; secondary-block collisions across shards remain possible and
// are serialized by the per-block locks, so correctness never depends on the
// partitioning — it only removes almost all lock contention and restores the
// sequential batch path's cache locality within each worker.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minParallelBatch is the batch size below which spawning workers costs more
// than it saves and the keys are processed on the calling goroutine.
const minParallelBatch = 4096

// batchWorkers returns the worker-pool size for a batch of n keys: bounded
// by GOMAXPROCS, the shard count, and a floor of ~4k keys per worker.
func batchWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > batchShards {
		w = batchShards
	}
	if byLoad := n / minParallelBatch; w > byLoad {
		w = byLoad
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelShardCount applies op to every key of hs, sharded across workers,
// and returns the number of true results. Workers claim shards with an
// atomic cursor, which load-balances skewed partitions.
func parallelShardCount(hs []uint64, mask uint64, blockShift uint, op func(uint64) bool) int {
	w := batchWorkers(len(hs))
	if w == 1 {
		if len(hs) >= minBatchPartition {
			sorted, _ := radixPartition(hs, mask, blockShift)
			return applyCount(sorted, op)
		}
		return applyCount(hs, op)
	}
	sorted, bounds := radixPartition(hs, mask, blockShift)
	var cursor, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for {
				s := int(cursor.Add(1)) - 1
				if s >= batchShards {
					break
				}
				n += applyCount(sorted[bounds[s]:bounds[s+1]], op)
			}
			total.Add(int64(n))
		}()
	}
	wg.Wait()
	return int(total.Load())
}

// parallelShardContains fills out[i] with contains(hs[i]), sharded across
// workers. out must have len(hs) elements; each position is written by
// exactly one worker (the index array scatters shard results back to caller
// order), so no synchronization on out is needed beyond the final Wait.
func parallelShardContains(hs []uint64, out []bool, mask uint64, blockShift uint, contains func(uint64) bool) {
	w := batchWorkers(len(hs))
	if w == 1 {
		if len(hs) < minBatchPartition {
			for i, h := range hs {
				out[i] = contains(h)
			}
			return
		}
		// Same int32 index-width concern as below: a GOMAXPROCS=1 process can
		// still be handed a multi-billion-key batch.
		for off := 0; off < len(hs); off += maxIdxSegment {
			end := min(off+maxIdxSegment, len(hs))
			seg, segOut := hs[off:end], out[off:end]
			sorted, idx, _ := radixPartitionIdx(seg, mask, blockShift)
			for j, h := range sorted {
				segOut[idx[j]] = contains(h)
			}
		}
		return
	}
	// radixPartitionIdx carries int32 positions; segment huge batches so the
	// indices always fit.
	for off := 0; off < len(hs); off += maxIdxSegment {
		end := min(off+maxIdxSegment, len(hs))
		seg, segOut := hs[off:end], out[off:end]
		sorted, idx, bounds := radixPartitionIdx(seg, mask, blockShift)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(cursor.Add(1)) - 1
					if s >= batchShards {
						break
					}
					for j := bounds[s]; j < bounds[s+1]; j++ {
						segOut[idx[j]] = contains(sorted[j])
					}
				}
			}()
		}
		wg.Wait()
	}
}

// resizeBools returns dst resized to n, reallocating only if its capacity is
// insufficient.
func resizeBools(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}

// InsertBatch inserts the keys of hs in parallel, returning the number
// successfully inserted. Every key is attempted (the result is a success
// count, not a prefix length — see Filter8.InsertBatch) and the insertion
// order is unspecified. Safe for concurrent use alongside any other
// operations.
func (f *CFilter8) InsertBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	return parallelShardCount(hs, f.mask, blockShift8, f.Insert)
}

// RemoveBatch removes one previously inserted instance of each key of hs in
// parallel, returning the number found and removed. Safe for concurrent use.
func (f *CFilter8) RemoveBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	return parallelShardCount(hs, f.mask, blockShift8, f.Remove)
}

// ContainsBatch reports membership for every key of hs, in input order:
// result[i] corresponds to hs[i]. Lookups run lock-free in parallel. The
// result reuses dst if it has sufficient capacity (dst may be nil). Safe for
// concurrent use.
func (f *CFilter8) ContainsBatch(hs []uint64, dst []bool) []bool {
	f.st.Batch(len(hs))
	out := resizeBools(dst, len(hs))
	parallelShardContains(hs, out, f.mask, blockShift8, f.Contains)
	return out
}

// InsertBatch inserts the keys of hs in parallel; see CFilter8.InsertBatch.
func (f *CFilter16) InsertBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	return parallelShardCount(hs, f.mask, blockShift16, f.Insert)
}

// RemoveBatch removes one instance of each key of hs in parallel; see
// CFilter8.RemoveBatch.
func (f *CFilter16) RemoveBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	return parallelShardCount(hs, f.mask, blockShift16, f.Remove)
}

// ContainsBatch reports membership for every key of hs in input order; see
// CFilter8.ContainsBatch.
func (f *CFilter16) ContainsBatch(hs []uint64, dst []bool) []bool {
	f.st.Batch(len(hs))
	out := resizeBools(dst, len(hs))
	parallelShardContains(hs, out, f.mask, blockShift16, f.Contains)
	return out
}
