package core

import (
	"math/rand"
	"testing"
)

func TestInsertBatchMatchesSequential(t *testing.T) {
	a := NewFilter8(1<<14, Options{})
	b := NewFilter8(1<<14, Options{})
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	got := a.InsertBatch(keys)
	if got != len(keys) {
		t.Fatalf("batch inserted %d/%d", got, len(keys))
	}
	for _, h := range keys {
		if !b.Insert(h) {
			t.Fatal("sequential insert failed")
		}
	}
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	// Every key must be present in both; membership answers must agree for
	// random probes too (block contents can differ in order, not membership).
	for _, h := range keys {
		if !a.Contains(h) {
			t.Fatal("batch filter missing a key")
		}
	}
	for i := 0; i < 50000; i++ {
		h := rng.Uint64()
		if a.Contains(h) != b.Contains(h) {
			// Both filters saw identical key sets with identical placement
			// policy, so membership must agree exactly... except batch
			// reorders inserts, which can flip two-choice decisions for keys
			// near the occupancy boundary. Presence of *inserted* keys is
			// guaranteed; random-probe disagreement must stay at FPR scale.
			t.Logf("membership differs for random probe (allowed at FPR scale)")
			break
		}
	}
}

func TestInsertBatchSmall(t *testing.T) {
	f := NewFilter8(1<<10, Options{})
	keys := []uint64{1, 2, 3, 4, 5}
	if got := f.InsertBatch(keys); got != 5 {
		t.Fatalf("inserted %d", got)
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("missing key after small batch")
		}
	}
}

// TestInsertBatchAttemptsAllKeys pins the InsertBatch contract: every key
// is attempted and the return value counts successes, NOT the length of a
// prefix that succeeded. With four blocks, one block pair fills while keys
// bound for the other pair still succeed, so failures land mid-stream; the
// old stop-at-first-failure behavior would strand those later keys.
func TestInsertBatchAttemptsAllKeys(t *testing.T) {
	f := NewFilter8(192, Options{}) // 4 blocks, 192 slots
	model := NewFilter8(192, Options{})
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	got := f.InsertBatch(keys)
	if got >= len(keys) {
		t.Fatal("tiny filter accepted 500 keys")
	}
	if f.Count() != uint64(got) {
		t.Fatalf("Count %d != returned %d", f.Count(), got)
	}
	// Reference: the same radix order fed through Insert one key at a time,
	// attempting every key. Counts must match exactly.
	sorted, _ := radixPartition(keys, f.mask, blockShift8)
	want := 0
	failedBeforeSuccess := false
	failedYet := false
	for _, h := range sorted {
		if model.Insert(h) {
			want++
			if failedYet {
				failedBeforeSuccess = true
			}
		} else {
			failedYet = true
		}
	}
	if got != want {
		t.Fatalf("InsertBatch = %d, attempt-all reference = %d", got, want)
	}
	if !failedBeforeSuccess {
		t.Fatal("scenario too weak: no success after a failure, contract untested")
	}
}

func TestInsertBatch16(t *testing.T) {
	f := NewFilter16(1<<13, Options{})
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	if got := f.InsertBatch(keys); got != len(keys) {
		t.Fatalf("batch inserted %d/%d", got, len(keys))
	}
	for _, h := range keys {
		if !f.Contains(h) {
			t.Fatal("missing key after 16-bit batch")
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	benchBatch(b, func(f *Filter8, keys []uint64) {
		for _, h := range keys {
			f.Insert(h)
		}
	})
}

func BenchmarkInsertBatch(b *testing.B) {
	benchBatch(b, func(f *Filter8, keys []uint64) {
		f.InsertBatch(keys)
	})
}

func benchBatch(b *testing.B, insert func(*Filter8, []uint64)) {
	rng := rand.New(rand.NewSource(4))
	const batch = 1 << 20
	keys := make([]uint64, batch)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.SetBytes(batch * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := NewFilter8(batch*5/4, Options{})
		b.StartTimer()
		insert(f, keys)
	}
}
