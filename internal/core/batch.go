package core

// Batch operations. The Morton filter paper (and §7.1 of the VQF paper)
// highlights bulk workloads: when many keys arrive at once, sorting them by
// primary block turns the filter's random cache-line walk into a
// mostly-sequential sweep. All batch APIs — sequential and concurrent —
// share the radix-partitioning helpers below; the concurrent filters
// additionally fan the partitions out across a worker pool
// (concurrent_batch.go).

const (
	batchRadixBits = 8
	batchShards    = 1 << batchRadixBits

	// minBatchPartition is the batch size below which radix-grouping
	// overhead isn't worth it and keys are processed in caller order.
	minBatchPartition = 256
)

// blockShift8/blockShift16 are the hash bit offsets of the primary block
// index for the two geometries (see split8/split16).
const (
	blockShift8  = 24
	blockShift16 = 32
)

// maxIdxSegment bounds any single radix pass that carries int32 scatter
// indices (partitionIdx/radixPartitionIdx); larger batches are processed in
// segments so the indices always fit. A variable so tests can shrink it and
// exercise the segmented path without multi-gigabyte inputs.
var maxIdxSegment = 1 << 30

// batchRadix maps a key hash to its shard: the top batchRadixBits bits of
// the primary block index. effShift is precomputed by effectiveShift(mask).
// The final mask is a no-op by construction; it lets the compiler prove
// shard-array indexing in bounds in the partition loops.
func batchRadix(h, mask uint64, blockShift, effShift uint) int {
	return int(((h>>blockShift)&mask)>>effShift) & (batchShards - 1)
}

// radixPartition reorders hs by shard, so that keys sharing a primary-block
// prefix are adjacent. It returns the reordered keys and the shard bounds:
// shard s occupies sorted[bounds[s]:bounds[s+1]].
func radixPartition(hs []uint64, mask uint64, blockShift uint) (sorted []uint64, bounds [batchShards + 1]int) {
	effShift := effectiveShift(mask)
	var counts [batchShards]int
	for _, h := range hs {
		counts[batchRadix(h, mask, blockShift, effShift)]++
	}
	sum := 0
	for i, c := range counts {
		bounds[i] = sum
		sum += c
	}
	bounds[batchShards] = sum
	sorted = make([]uint64, len(hs))
	next := bounds
	for _, h := range hs {
		r := batchRadix(h, mask, blockShift, effShift)
		sorted[next[r]] = h
		next[r]++
	}
	return sorted, bounds
}

// radixPartitionIdx is radixPartition carrying each key's position in hs, so
// order-sensitive results (ContainsBatch) can be scattered back. Indices are
// int32; callers split larger batches first.
func radixPartitionIdx(hs []uint64, mask uint64, blockShift uint) (sorted []uint64, idx []int32, bounds [batchShards + 1]int) {
	effShift := effectiveShift(mask)
	var counts [batchShards]int
	for _, h := range hs {
		counts[batchRadix(h, mask, blockShift, effShift)]++
	}
	sum := 0
	for i, c := range counts {
		bounds[i] = sum
		sum += c
	}
	bounds[batchShards] = sum
	sorted = make([]uint64, len(hs))
	idx = make([]int32, len(hs))
	next := bounds
	for i, h := range hs {
		r := batchRadix(h, mask, blockShift, effShift)
		sorted[next[r]] = h
		idx[next[r]] = int32(i)
		next[r]++
	}
	return sorted, idx, bounds
}

// applyCount applies op to every key and returns the number of successes.
func applyCount(hs []uint64, op func(uint64) bool) int {
	n := 0
	for _, h := range hs {
		if op(h) {
			n++
		}
	}
	return n
}

// batchPrefetchDist is how many keys ahead of the sweep cursor a block's
// first metadata word is demand-loaded. Go has no prefetch intrinsic, so the
// pipeline issues a real load for the upcoming block and folds it into a
// sink the filter keeps; by the time the sweep reaches that key its cache
// line is (usually) resident. Eight keys ≈ one partition stride of
// out-of-order window on current cores.
const batchPrefetchDist = 8

// batchScratch holds the reusable buffers of the sequential batch pipeline,
// owned by a filter so steady-state batch calls allocate nothing. The
// sequential filters are single-goroutine by contract, which is what makes
// a per-filter scratch sound. sink accumulates the prefetch loads so the
// compiler cannot eliminate them.
type batchScratch struct {
	sorted []uint64
	idx    []int32
	sink   uint64
}

// partition radix-groups hs by primary block into the reusable sorted
// buffer: keys sharing a block-index prefix become adjacent, so the sweep
// walks the block array in address order and touches each 64-byte block once
// per batch.
func (s *batchScratch) partition(hs []uint64, mask uint64, blockShift uint) []uint64 {
	effShift := effectiveShift(mask)
	var counts [batchShards]int
	for _, h := range hs {
		counts[batchRadix(h, mask, blockShift, effShift)]++
	}
	var next [batchShards]int
	sum := 0
	for i, c := range counts {
		next[i] = sum
		sum += c
	}
	if cap(s.sorted) < len(hs) {
		s.sorted = make([]uint64, len(hs))
	}
	sorted := s.sorted[:len(hs)]
	for _, h := range hs {
		r := batchRadix(h, mask, blockShift, effShift)
		sorted[next[r]] = h
		next[r]++
	}
	return sorted
}

// partitionIdx is partition carrying each key's position in hs, so
// order-sensitive results (ContainsBatch) scatter back to input order.
// Indices are int32; callers split larger batches first.
func (s *batchScratch) partitionIdx(hs []uint64, mask uint64, blockShift uint) ([]uint64, []int32) {
	effShift := effectiveShift(mask)
	var counts [batchShards]int
	for _, h := range hs {
		counts[batchRadix(h, mask, blockShift, effShift)]++
	}
	var next [batchShards]int
	sum := 0
	for i, c := range counts {
		next[i] = sum
		sum += c
	}
	// Grown separately from partition's sorted buffer: either method may run
	// first and each only grows what it uses.
	if cap(s.sorted) < len(hs) {
		s.sorted = make([]uint64, len(hs))
	}
	if cap(s.idx) < len(hs) {
		s.idx = make([]int32, len(hs))
	}
	sorted, idx := s.sorted[:len(hs)], s.idx[:len(hs)]
	for i, h := range hs {
		r := batchRadix(h, mask, blockShift, effShift)
		sorted[next[r]] = h
		idx[next[r]] = int32(i)
		next[r]++
	}
	return sorted, idx
}

// InsertBatch inserts the keys of hs, returning the number successfully
// inserted. Every key is attempted, even after an insert fails: when the
// filter approaches capacity the successes can come from anywhere in hs, not
// a prefix of it (insertion order is a locality-driven radix reorder, not
// caller order). Duplicates are stored like repeated Insert calls.
func (f *Filter8) InsertBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	if len(hs) < minBatchPartition {
		return applyCount(hs, f.Insert)
	}
	sorted := f.scratch.partition(hs, f.mask, blockShift8)
	n := 0
	sink := f.scratch.sink
	for i, h := range sorted {
		if i+batchPrefetchDist < len(sorted) {
			sink ^= f.blocks[(sorted[i+batchPrefetchDist]>>blockShift8)&f.mask].MetaLo
		}
		if f.Insert(h) {
			n++
		}
	}
	f.scratch.sink = sink
	return n
}

// ContainsBatch reports membership for every key of hs in input order:
// result[i] corresponds to hs[i], even though the probes themselves run in
// radix-reordered block-address order. The result reuses dst if it has
// sufficient capacity (dst may be nil).
func (f *Filter8) ContainsBatch(hs []uint64, dst []bool) []bool {
	f.st.Batch(len(hs))
	out := resizeBools(dst, len(hs))
	if len(hs) < minBatchPartition {
		for i, h := range hs {
			out[i] = f.Contains(h)
		}
		return out
	}
	for off := 0; off < len(hs); off += maxIdxSegment {
		end := min(off+maxIdxSegment, len(hs))
		f.containsSegment(hs[off:end], out[off:end])
	}
	return out
}

// containsSegment probes one index-safe segment in radix order, scattering
// results back to segment order.
func (f *Filter8) containsSegment(hs []uint64, out []bool) {
	sorted, idx := f.scratch.partitionIdx(hs, f.mask, blockShift8)
	sink := f.scratch.sink
	for i, h := range sorted {
		if i+batchPrefetchDist < len(sorted) {
			sink ^= f.blocks[(sorted[i+batchPrefetchDist]>>blockShift8)&f.mask].MetaLo
		}
		out[idx[i]] = f.Contains(h)
	}
	f.scratch.sink = sink
}

// RemoveBatch removes one previously inserted instance of each key of hs,
// returning the number found and removed. Like InsertBatch, keys are
// processed in block-address order, not caller order.
func (f *Filter8) RemoveBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	if len(hs) < minBatchPartition {
		return applyCount(hs, f.Remove)
	}
	sorted := f.scratch.partition(hs, f.mask, blockShift8)
	n := 0
	sink := f.scratch.sink
	for i, h := range sorted {
		if i+batchPrefetchDist < len(sorted) {
			sink ^= f.blocks[(sorted[i+batchPrefetchDist]>>blockShift8)&f.mask].MetaLo
		}
		if f.Remove(h) {
			n++
		}
	}
	f.scratch.sink = sink
	return n
}

// InsertBatch inserts the keys of hs; see Filter8.InsertBatch.
func (f *Filter16) InsertBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	if len(hs) < minBatchPartition {
		return applyCount(hs, f.Insert)
	}
	sorted := f.scratch.partition(hs, f.mask, blockShift16)
	n := 0
	sink := f.scratch.sink
	for i, h := range sorted {
		if i+batchPrefetchDist < len(sorted) {
			sink ^= f.blocks[(sorted[i+batchPrefetchDist]>>blockShift16)&f.mask].Meta
		}
		if f.Insert(h) {
			n++
		}
	}
	f.scratch.sink = sink
	return n
}

// ContainsBatch reports membership for every key of hs in input order; see
// Filter8.ContainsBatch.
func (f *Filter16) ContainsBatch(hs []uint64, dst []bool) []bool {
	f.st.Batch(len(hs))
	out := resizeBools(dst, len(hs))
	if len(hs) < minBatchPartition {
		for i, h := range hs {
			out[i] = f.Contains(h)
		}
		return out
	}
	for off := 0; off < len(hs); off += maxIdxSegment {
		end := min(off+maxIdxSegment, len(hs))
		f.containsSegment(hs[off:end], out[off:end])
	}
	return out
}

// containsSegment probes one index-safe segment in radix order, scattering
// results back to segment order.
func (f *Filter16) containsSegment(hs []uint64, out []bool) {
	sorted, idx := f.scratch.partitionIdx(hs, f.mask, blockShift16)
	sink := f.scratch.sink
	for i, h := range sorted {
		if i+batchPrefetchDist < len(sorted) {
			sink ^= f.blocks[(sorted[i+batchPrefetchDist]>>blockShift16)&f.mask].Meta
		}
		out[idx[i]] = f.Contains(h)
	}
	f.scratch.sink = sink
}

// RemoveBatch removes one instance of each key of hs; see
// Filter8.RemoveBatch.
func (f *Filter16) RemoveBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	if len(hs) < minBatchPartition {
		return applyCount(hs, f.Remove)
	}
	sorted := f.scratch.partition(hs, f.mask, blockShift16)
	n := 0
	sink := f.scratch.sink
	for i, h := range sorted {
		if i+batchPrefetchDist < len(sorted) {
			sink ^= f.blocks[(sorted[i+batchPrefetchDist]>>blockShift16)&f.mask].Meta
		}
		if f.Remove(h) {
			n++
		}
	}
	f.scratch.sink = sink
	return n
}

// effectiveShift returns how far to shift a block index so its top
// batchRadixBits bits remain.
func effectiveShift(mask uint64) uint {
	bitsUsed := uint(0)
	for m := mask; m != 0; m >>= 1 {
		bitsUsed++
	}
	if bitsUsed <= batchRadixBits {
		return 0
	}
	return bitsUsed - batchRadixBits
}
