package core

// Batch insertion. The Morton filter paper (and §7.1 of the VQF paper)
// highlights bulk-insertion workloads: when many keys arrive at once, sorting
// them by primary block turns the filter's random cache-line walk into a
// mostly-sequential sweep. The batch API groups keys by primary-block radix
// before inserting; per-key work is unchanged, so correctness is identical
// to a loop of Insert calls (the paper benchmarks one-at-a-time APIs, so the
// harness does not use this path — it exists as the bulk-load entry point
// and is covered by the ablation bench).

const batchRadixBits = 8

// InsertBatch inserts every key of hs, returning the number successfully
// inserted (equal to len(hs) unless the filter fills). Keys are processed
// grouped by primary-block prefix to improve locality; duplicates are stored
// like repeated Insert calls.
func (f *Filter8) InsertBatch(hs []uint64) int {
	if len(hs) < 256 {
		// Grouping overhead isn't worth it for tiny batches.
		n := 0
		for _, h := range hs {
			if !f.Insert(h) {
				return n
			}
			n++
		}
		return n
	}
	// Radix-partition by the top bits of the primary block index.
	shift := effectiveShift(f.mask)
	var counts [1 << batchRadixBits]int
	for _, h := range hs {
		counts[radixOf8(h, f.mask, shift)]++
	}
	var offsets [1 << batchRadixBits]int
	sum := 0
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	sorted := make([]uint64, len(hs))
	next := offsets
	for _, h := range hs {
		r := radixOf8(h, f.mask, shift)
		sorted[next[r]] = h
		next[r]++
	}
	n := 0
	for _, h := range sorted {
		if !f.Insert(h) {
			return n
		}
		n++
	}
	return n
}

// InsertBatch inserts every key of hs; see Filter8.InsertBatch.
func (f *Filter16) InsertBatch(hs []uint64) int {
	if len(hs) < 256 {
		n := 0
		for _, h := range hs {
			if !f.Insert(h) {
				return n
			}
			n++
		}
		return n
	}
	shift := effectiveShift(f.mask)
	var counts [1 << batchRadixBits]int
	for _, h := range hs {
		counts[radixOf16(h, f.mask, shift)]++
	}
	var offsets [1 << batchRadixBits]int
	sum := 0
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	sorted := make([]uint64, len(hs))
	next := offsets
	for _, h := range hs {
		r := radixOf16(h, f.mask, shift)
		sorted[next[r]] = h
		next[r]++
	}
	n := 0
	for _, h := range sorted {
		if !f.Insert(h) {
			return n
		}
		n++
	}
	return n
}

// effectiveShift returns how far to shift a block index so its top
// batchRadixBits bits remain.
func effectiveShift(mask uint64) uint {
	bitsUsed := uint(0)
	for m := mask; m != 0; m >>= 1 {
		bitsUsed++
	}
	if bitsUsed <= batchRadixBits {
		return 0
	}
	return bitsUsed - batchRadixBits
}

func radixOf8(h, mask uint64, shift uint) int {
	b1 := (h >> 24) & mask
	return int(b1 >> shift)
}

func radixOf16(h, mask uint64, shift uint) int {
	b1 := (h >> 32) & mask
	return int(b1 >> shift)
}
