package core

// Batch operations. The Morton filter paper (and §7.1 of the VQF paper)
// highlights bulk workloads: when many keys arrive at once, sorting them by
// primary block turns the filter's random cache-line walk into a
// mostly-sequential sweep. All batch APIs — sequential and concurrent —
// share the radix-partitioning helpers below; the concurrent filters
// additionally fan the partitions out across a worker pool
// (concurrent_batch.go).

const (
	batchRadixBits = 8
	batchShards    = 1 << batchRadixBits

	// minBatchPartition is the batch size below which radix-grouping
	// overhead isn't worth it and keys are processed in caller order.
	minBatchPartition = 256
)

// blockShift8/blockShift16 are the hash bit offsets of the primary block
// index for the two geometries (see split8/split16).
const (
	blockShift8  = 24
	blockShift16 = 32
)

// batchRadix maps a key hash to its shard: the top batchRadixBits bits of
// the primary block index. effShift is precomputed by effectiveShift(mask).
func batchRadix(h, mask uint64, blockShift, effShift uint) int {
	return int(((h >> blockShift) & mask) >> effShift)
}

// radixPartition reorders hs by shard, so that keys sharing a primary-block
// prefix are adjacent. It returns the reordered keys and the shard bounds:
// shard s occupies sorted[bounds[s]:bounds[s+1]].
func radixPartition(hs []uint64, mask uint64, blockShift uint) (sorted []uint64, bounds [batchShards + 1]int) {
	effShift := effectiveShift(mask)
	var counts [batchShards]int
	for _, h := range hs {
		counts[batchRadix(h, mask, blockShift, effShift)]++
	}
	sum := 0
	for i, c := range counts {
		bounds[i] = sum
		sum += c
	}
	bounds[batchShards] = sum
	sorted = make([]uint64, len(hs))
	next := bounds
	for _, h := range hs {
		r := batchRadix(h, mask, blockShift, effShift)
		sorted[next[r]] = h
		next[r]++
	}
	return sorted, bounds
}

// radixPartitionIdx is radixPartition carrying each key's position in hs, so
// order-sensitive results (ContainsBatch) can be scattered back. Indices are
// int32; callers split larger batches first.
func radixPartitionIdx(hs []uint64, mask uint64, blockShift uint) (sorted []uint64, idx []int32, bounds [batchShards + 1]int) {
	effShift := effectiveShift(mask)
	var counts [batchShards]int
	for _, h := range hs {
		counts[batchRadix(h, mask, blockShift, effShift)]++
	}
	sum := 0
	for i, c := range counts {
		bounds[i] = sum
		sum += c
	}
	bounds[batchShards] = sum
	sorted = make([]uint64, len(hs))
	idx = make([]int32, len(hs))
	next := bounds
	for i, h := range hs {
		r := batchRadix(h, mask, blockShift, effShift)
		sorted[next[r]] = h
		idx[next[r]] = int32(i)
		next[r]++
	}
	return sorted, idx, bounds
}

// applyCount applies op to every key and returns the number of successes.
func applyCount(hs []uint64, op func(uint64) bool) int {
	n := 0
	for _, h := range hs {
		if op(h) {
			n++
		}
	}
	return n
}

// InsertBatch inserts the keys of hs, returning the number successfully
// inserted. Every key is attempted, even after an insert fails: when the
// filter approaches capacity the successes can come from anywhere in hs, not
// a prefix of it (insertion order is a locality-driven radix reorder, not
// caller order). Duplicates are stored like repeated Insert calls.
func (f *Filter8) InsertBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	if len(hs) < minBatchPartition {
		return applyCount(hs, f.Insert)
	}
	sorted, _ := radixPartition(hs, f.mask, blockShift8)
	return applyCount(sorted, f.Insert)
}

// InsertBatch inserts the keys of hs; see Filter8.InsertBatch.
func (f *Filter16) InsertBatch(hs []uint64) int {
	f.st.Batch(len(hs))
	if len(hs) < minBatchPartition {
		return applyCount(hs, f.Insert)
	}
	sorted, _ := radixPartition(hs, f.mask, blockShift16)
	return applyCount(sorted, f.Insert)
}

// effectiveShift returns how far to shift a block index so its top
// batchRadixBits bits remain.
func effectiveShift(mask uint64) uint {
	bitsUsed := uint(0)
	for m := mask; m != 0; m >>= 1 {
		bitsUsed++
	}
	if bitsUsed <= batchRadixBits {
		return 0
	}
	return bitsUsed - batchRadixBits
}
