package core

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCFilter8SingleThreadedSemantics(t *testing.T) {
	// Used single-threaded, the concurrent filter must behave like Filter8.
	cf := NewCFilter8(1<<14, Options{})
	sf := NewFilter8(1<<14, Options{})
	rng := rand.New(rand.NewSource(1))
	var keys []uint64
	for step := 0; step < 30000; step++ {
		switch rng.Intn(3) {
		case 0:
			h := rng.Uint64()
			a, b := cf.Insert(h), sf.Insert(h)
			if a != b {
				t.Fatalf("step %d: insert diverged", step)
			}
			if a {
				keys = append(keys, h)
			}
		case 1:
			if len(keys) == 0 {
				continue
			}
			i := rng.Intn(len(keys))
			h := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			if a, b := cf.Remove(h), sf.Remove(h); a != b {
				t.Fatalf("step %d: remove diverged", step)
			}
		case 2:
			h := rng.Uint64()
			if a, b := cf.Contains(h), sf.Contains(h); a != b {
				t.Fatalf("step %d: contains diverged", step)
			}
		}
		if cf.Count() != sf.Count() {
			t.Fatalf("step %d: counts diverged %d vs %d", step, cf.Count(), sf.Count())
		}
	}
}

func TestCFilter8ParallelInsertsAllFound(t *testing.T) {
	f := NewCFilter8(1<<16, Options{})
	const workers = 4
	perWorker := f.Capacity() * 85 / 100 / workers
	var wg sync.WaitGroup
	keys := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 10)))
			for i := uint64(0); i < perWorker; i++ {
				h := rng.Uint64()
				if !f.Insert(h) {
					t.Errorf("worker %d: insert %d failed", w, i)
					return
				}
				keys[w] = append(keys[w], h)
			}
		}(w)
	}
	wg.Wait()
	if f.Count() != perWorker*workers {
		t.Fatalf("Count = %d, want %d", f.Count(), perWorker*workers)
	}
	for w := range keys {
		for _, h := range keys[w] {
			if !f.Contains(h) {
				t.Fatalf("false negative after concurrent inserts")
			}
		}
	}
}

func TestCFilter8ConcurrentMixedWorkload(t *testing.T) {
	f := NewCFilter8(1<<14, Options{})
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint64
			for i := 0; i < 20000; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(3) == 0:
					h := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if !f.Remove(h) {
						t.Error("own key missing on remove")
						return
					}
				case rng.Intn(2) == 0 && uint64(len(mine)) < f.Capacity()/8:
					h := rng.Uint64()
					if f.Insert(h) {
						mine = append(mine, h)
					}
				default:
					f.Contains(rng.Uint64())
				}
			}
			for _, h := range mine {
				if !f.Remove(h) {
					t.Error("own key missing at drain")
					return
				}
			}
		}(int64(w + 50))
	}
	wg.Wait()
	if f.Count() != 0 {
		t.Fatalf("Count = %d after drain", f.Count())
	}
}

func TestCFilter16ParallelInserts(t *testing.T) {
	f := NewCFilter16(1<<14, Options{})
	const workers = 4
	perWorker := f.Capacity() * 85 / 100 / workers
	var wg sync.WaitGroup
	keys := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 30)))
			for i := uint64(0); i < perWorker; i++ {
				h := rng.Uint64()
				if !f.Insert(h) {
					t.Errorf("worker %d: insert failed", w)
					return
				}
				keys[w] = append(keys[w], h)
			}
		}(w)
	}
	wg.Wait()
	for w := range keys {
		for _, h := range keys[w] {
			if !f.Contains(h) {
				t.Fatal("false negative after concurrent inserts")
			}
		}
	}
}

func TestCFilter16SingleThreadedSemantics(t *testing.T) {
	cf := NewCFilter16(1<<13, Options{})
	sf := NewFilter16(1<<13, Options{})
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 20000; step++ {
		h := rng.Uint64()
		if rng.Intn(2) == 0 {
			if a, b := cf.Insert(h), sf.Insert(h); a != b {
				t.Fatalf("step %d: insert diverged", step)
			}
		} else {
			if a, b := cf.Contains(h), sf.Contains(h); a != b {
				t.Fatalf("step %d: contains diverged", step)
			}
		}
	}
}

func TestCFilter8ReachesHighLoadFactor(t *testing.T) {
	f := NewCFilter8(1<<14, Options{})
	rng := rand.New(rand.NewSource(3))
	for f.Insert(rng.Uint64()) {
	}
	if lf := f.LoadFactor(); lf < 0.90 {
		t.Errorf("max load factor %.4f below 0.90", lf)
	}
}
